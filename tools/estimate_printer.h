// The estimates block ldp_aggregate and ldp_serve both print. The two
// tools' estimate sections must stay byte-identical — the net-e2e CI job
// diffs a network campaign's output against the file-based run — so the
// format (confidence-interval math, printf strings, epoch headers) lives
// in exactly one place.

#ifndef LDP_TOOLS_ESTIMATE_PRINTER_H_
#define LDP_TOOLS_ESTIMATE_PRINTER_H_

#include <cstdio>

#include "aggregate/confidence.h"
#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/sampled_numeric.h"
#include "data/schema.h"

namespace ldp::tools {

/// Prints every epoch's estimates (numeric means with confidence
/// intervals in native units, categorical frequencies) for `session`.
/// `selected_epoch` restricts the output to one epoch (-1 = all). Returns
/// 0, or 1 after printing an error to stderr.
inline int PrintSessionEstimates(const data::Schema& schema,
                                 const api::Pipeline& pipeline,
                                 const api::ServerSession& session,
                                 double confidence, long selected_epoch) {
  const uint32_t d = pipeline.dimension();
  auto sampled = SampledNumericMechanism::Create(pipeline.config().mechanism,
                                                 pipeline.epsilon(), d);
  for (uint32_t epoch = 0; epoch < session.num_epochs(); ++epoch) {
    if (selected_epoch >= 0 &&
        epoch != static_cast<uint32_t>(selected_epoch)) {
      continue;
    }
    auto n = session.num_reports(epoch);
    if (!n.ok()) {
      std::fprintf(stderr, "%s\n", n.status().ToString().c_str());
      return 1;
    }
    if (session.num_epochs() > 1) {
      std::printf("=== epoch %u (%llu reports) ===\n", epoch,
                  static_cast<unsigned long long>(n.value()));
    }
    std::printf("numeric attribute means (+/- %.0f%% CI, native units):\n",
                confidence * 100.0);
    for (uint32_t col = 0; col < d; ++col) {
      const data::ColumnSpec& spec = schema.column(col);
      if (spec.type != data::ColumnType::kNumeric) continue;
      auto mean = session.EstimateMean(col, epoch);
      if (!mean.ok()) {
        std::fprintf(stderr, "%s\n", mean.status().ToString().c_str());
        return 1;
      }
      const double mid = (spec.hi + spec.lo) / 2.0;
      const double half = (spec.hi - spec.lo) / 2.0;
      auto interval = aggregate::SampledMeanConfidenceInterval(
          mean.value(), sampled.value(), n.value(), confidence);
      if (!interval.ok()) {
        std::fprintf(stderr, "%s\n", interval.status().ToString().c_str());
        return 1;
      }
      std::printf("  %-20s %12.4f  [%0.4f, %0.4f]\n", spec.name.c_str(),
                  mid + half * interval.value().estimate,
                  mid + half * interval.value().lo,
                  mid + half * interval.value().hi);
    }

    std::printf("\ncategorical attribute frequencies:\n");
    for (uint32_t col = 0; col < d; ++col) {
      const data::ColumnSpec& spec = schema.column(col);
      if (spec.type != data::ColumnType::kCategorical) continue;
      auto freqs = session.EstimateFrequencies(col, epoch);
      if (!freqs.ok()) {
        std::fprintf(stderr, "%s\n", freqs.status().ToString().c_str());
        return 1;
      }
      std::printf("  %s:", spec.name.c_str());
      for (const double f : freqs.value()) std::printf(" %.4f", f);
      std::printf("\n");
    }
    if (epoch + 1 < session.num_epochs()) std::printf("\n");
  }
  return 0;
}

}  // namespace ldp::tools

#endif  // LDP_TOOLS_ESTIMATE_PRINTER_H_
