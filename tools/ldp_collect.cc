// ldp_collect: runs the paper's collection pipeline over a CSV of user
// records and prints ε-LDP estimates (with confidence intervals) for every
// attribute. Each CSV row plays one user; nothing but the simulated
// perturbed reports influences the estimates.
//
//   ldp_collect --schema FILE --data FILE --epsilon E
//               [--mechanism hm|pm] [--oracle oue|grr|sue|olh|he|the]
//               [--seed S] [--confidence C] [--threads T]
//
// Implementation: an api::Pipeline ClientSession/ServerSession pair in one
// process. Rows stream through data::CsvRowReader one at a time — each is
// normalised, perturbed, wire-encoded and fed to the server session, then
// dropped — so memory stays O(schema) no matter how many rows the CSV
// carries (a cheap first pass counts rows to fix the chunk boundaries).
// Rows are fed as one server shard per SplitRange chunk of the requested
// --threads, closed in order, so the printed estimates are bit-identical to
// the materializing CollectProposed simulation with the same seed and
// thread count (and to an ldp_report | ldp_aggregate split with matching
// shards).
//
// Note on --threads: the streaming loop itself is sequential (the CSV
// reader is the pipeline); the flag only fixes the chunk boundaries so the
// output stays reproducible against pooled in-process runs and sharded
// splits. For parallel collection at scale, split the work with
// `ldp_report --shards` and aggregate with `ldp_aggregate --threads`.
//
// The schema file format is documented in src/data/schema_text.h;
// ldp_generate produces compatible pairs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "aggregate/confidence.h"
#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/sampled_numeric.h"
#include "core/variance.h"
#include "data/csv.h"
#include "data/schema_text.h"
#include "tool_flags.h"
#include "stream/report_stream.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_collect --schema FILE --data FILE --epsilon E\n"
      "                   [--mechanism hm|pm] [--oracle "
      "oue|grr|sue|olh|he|the]\n"
      "                   [--seed S] [--confidence C] [--threads T]\n"
      "                   [--reporter-id ID] [--metrics-out FILE]\n"
      "                   [--version]\n"
      "--threads fixes the summation chunk boundaries for bit-compatible\n"
      "output with pooled/sharded runs; the streaming loop is sequential.\n"
      "--reporter-id charges the run's privacy budget to that reporter's\n"
      "ledger (once per epoch) instead of only the anonymous campaign plan.\n"
      "--metrics-out dumps the run's telemetry registry as JSON at exit.\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::HandleVersionFlag(argc, argv, "ldp_collect")) return 0;
  std::string schema_path, data_path, metrics_out;
  double epsilon = 0.0;
  double confidence = 0.95;
  uint64_t seed = 1;
  unsigned threads = 0;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  tools::IdentityFlags identity;
  std::string identity_error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--confidence") {
      confidence = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (tools::ParseIdentityFlag(arg, next, tools::kFlagReporterId,
                                        &identity, &identity_error)) {
      if (!identity_error.empty()) {
        std::fprintf(stderr, "%s\n", identity_error.c_str());
        Usage();
        return 2;
      }
    } else if (arg == "--mechanism") {
      if (!tools::ParseMechanismFlag(next(), &mechanism)) {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!tools::ParseOracleFlag(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (schema_path.empty() || data_path.empty() || epsilon <= 0.0) {
    Usage();
    return 2;
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto row_count = data::CountCsvDataRows(data_path);
  if (!row_count.ok()) {
    std::fprintf(stderr, "%s\n", row_count.status().ToString().c_str());
    return 1;
  }
  const uint64_t n = row_count.value();
  if (n == 0) {
    std::fprintf(stderr, "dataset is empty\n");
    return 1;
  }

  auto config = api::PipelineConfig::FromSchema(schema.value(), epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  config.value().mechanism = mechanism;
  config.value().oracle = oracle;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  obs::MetricsRegistry registry;
  api::ServerSessionOptions session_options;
  session_options.metrics = &registry;
  auto client = pipeline.value().NewClient();
  auto server = pipeline.value().NewServer(session_options);
  if (!client.ok() || !server.ok()) {
    std::fprintf(stderr, "%s\n",
                 (client.ok() ? server.status() : client.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  api::ServerSession& session = server.value();

  // Chunk boundaries mirror what ParallelFor would use for --threads
  // workers, so the chunk-ordered reduction lands on the same bits as the
  // pooled in-process simulation ever did.
  const std::vector<IndexRange> ranges =
      threads > 1 ? SplitRange(n, static_cast<uint64_t>(threads) * 4)
                  : SplitRange(n, 1);

  auto reader = data::CsvRowReader::Open(schema.value(), data_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const uint32_t d = schema.value().num_columns();
  std::vector<double> numeric_row;
  std::vector<uint32_t> category_row;
  MixedTuple tuple(d);
  const std::string header_bytes = client.value().EncodeHeader();
  std::string buffer;
  for (const IndexRange& range : ranges) {
    auto opened = session.OpenShard(identity.reporter_id);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    const size_t shard = opened.value();
    buffer.assign(header_bytes);
    for (uint64_t row = range.begin; row < range.end; ++row) {
      auto more = reader.value().NextRow(&numeric_row, &category_row);
      if (!more.ok()) {
        std::fprintf(stderr, "%s\n", more.status().ToString().c_str());
        return 1;
      }
      if (!more.value()) {
        std::fprintf(stderr, "%s shrank between passes\n", data_path.c_str());
        return 1;
      }
      api::RowToTuple(schema.value(), numeric_row, category_row, &tuple);
      Rng rng = api::UserRng(seed, row);
      auto payload = client.value().EncodeReport(tuple, &rng);
      if (!payload.ok()) {
        std::fprintf(stderr, "%s\n", payload.status().ToString().c_str());
        return 1;
      }
      Status framed = stream::AppendFrame(payload.value(), &buffer);
      if (framed.ok() && buffer.size() >= 64 * 1024) {
        framed = session.Feed(shard, buffer);
        buffer.clear();
      }
      if (!framed.ok()) {
        std::fprintf(stderr, "%s\n", framed.ToString().c_str());
        return 1;
      }
    }
    Status fed = session.Feed(shard, buffer);
    if (fed.ok()) fed = session.CloseShard(shard);
    if (!fed.ok()) {
      std::fprintf(stderr, "%s\n", fed.ToString().c_str());
      return 1;
    }
  }

  const uint32_t k = pipeline.value().k();
  std::printf("collected %llu users under eps = %g (mechanism %s, oracle "
              "%s; %u of %u attributes sampled per user)\n\n",
              static_cast<unsigned long long>(n), epsilon,
              MechanismKindToString(mechanism),
              FrequencyOracleKindToString(oracle), k, d);

  // Confidence machinery: the sampled mechanism matching the collection run.
  auto sampled = SampledNumericMechanism::Create(mechanism, epsilon, d);
  std::printf("numeric attribute means (+/- %.0f%% CI, native units):\n",
              confidence * 100.0);
  for (uint32_t col = 0; col < d; ++col) {
    const data::ColumnSpec& spec = schema.value().column(col);
    if (spec.type != data::ColumnType::kNumeric) continue;
    auto mean = session.EstimateMean(col, 0);
    if (!mean.ok()) {
      std::fprintf(stderr, "%s\n", mean.status().ToString().c_str());
      return 1;
    }
    const double mid = (spec.hi + spec.lo) / 2.0;
    const double half = (spec.hi - spec.lo) / 2.0;
    auto interval = aggregate::SampledMeanConfidenceInterval(
        mean.value(), sampled.value(), n, confidence);
    if (!interval.ok()) {
      std::fprintf(stderr, "%s\n", interval.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-20s %12.4f  [%0.4f, %0.4f]\n", spec.name.c_str(),
                mid + half * interval.value().estimate,
                mid + half * interval.value().lo,
                mid + half * interval.value().hi);
  }

  std::printf("\ncategorical attribute frequencies:\n");
  for (uint32_t col = 0; col < d; ++col) {
    const data::ColumnSpec& spec = schema.value().column(col);
    if (spec.type != data::ColumnType::kCategorical) continue;
    auto freqs = session.EstimateFrequencies(col, 0);
    if (!freqs.ok()) {
      std::fprintf(stderr, "%s\n", freqs.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s:", spec.name.c_str());
    for (const double f : freqs.value()) {
      std::printf(" %.4f", f);
    }
    std::printf("\n");
  }

  if (!metrics_out.empty() && !tools::WriteMetricsFile(metrics_out, registry)) {
    return 1;
  }
  return 0;
}
