// ldp_collect: runs the paper's collection pipeline over a CSV of user
// records and prints ε-LDP estimates (with confidence intervals) for every
// attribute. Each CSV row plays one user; nothing but the simulated
// perturbed reports influences the estimates.
//
//   ldp_collect --schema FILE --data FILE --epsilon E
//               [--mechanism hm|pm] [--oracle oue|grr|sue|olh|he|the]
//               [--seed S] [--confidence C] [--threads T]
//
// The schema file format is documented in src/data/schema_text.h;
// ldp_generate produces compatible pairs.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "aggregate/collector.h"
#include "aggregate/confidence.h"
#include "core/sampled_numeric.h"
#include "core/variance.h"
#include "data/csv.h"
#include "data/encode.h"
#include "data/schema_text.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_collect --schema FILE --data FILE --epsilon E\n"
      "                   [--mechanism hm|pm] [--oracle "
      "oue|grr|sue|olh|he|the]\n"
      "                   [--seed S] [--confidence C] [--threads T]\n");
}

bool ParseOracle(const std::string& name, FrequencyOracleKind* kind) {
  if (name == "oue") *kind = FrequencyOracleKind::kOue;
  else if (name == "grr") *kind = FrequencyOracleKind::kGrr;
  else if (name == "sue") *kind = FrequencyOracleKind::kSue;
  else if (name == "olh") *kind = FrequencyOracleKind::kOlh;
  else if (name == "he") *kind = FrequencyOracleKind::kHe;
  else if (name == "the") *kind = FrequencyOracleKind::kThe;
  else return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, data_path;
  double epsilon = 0.0;
  double confidence = 0.95;
  uint64_t seed = 1;
  unsigned threads = 0;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--confidence") {
      confidence = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--mechanism") {
      const std::string name = next();
      if (name == "hm") {
        mechanism = MechanismKind::kHybrid;
      } else if (name == "pm") {
        mechanism = MechanismKind::kPiecewise;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!ParseOracle(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (schema_path.empty() || data_path.empty() || epsilon <= 0.0) {
    Usage();
    return 2;
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto table = data::ReadCsv(schema.value(), data_path);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  const data::Dataset normalized = data::NormalizeNumeric(table.value());

  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  auto output = aggregate::CollectProposed(normalized, epsilon, seed,
                                           mechanism, oracle, pool.get());
  if (!output.ok()) {
    std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
    return 1;
  }

  const uint64_t n = table.value().num_rows();
  const uint32_t d = schema.value().num_columns();
  const uint32_t k = AttributeSampleCount(epsilon, d);
  std::printf("collected %llu users under eps = %g (mechanism %s, oracle "
              "%s; %u of %u attributes sampled per user)\n\n",
              static_cast<unsigned long long>(n), epsilon,
              MechanismKindToString(mechanism),
              FrequencyOracleKindToString(oracle), k, d);

  // Confidence machinery: the sampled mechanism matching the collection run.
  auto sampled = SampledNumericMechanism::Create(mechanism, epsilon, d);
  std::printf("numeric attribute means (+/- %.0f%% CI, native units):\n",
              confidence * 100.0);
  for (size_t j = 0; j < output.value().numeric_columns.size(); ++j) {
    const uint32_t col = output.value().numeric_columns[j];
    const data::ColumnSpec& spec = schema.value().column(col);
    const double mid = (spec.hi + spec.lo) / 2.0;
    const double half = (spec.hi - spec.lo) / 2.0;
    auto interval = aggregate::SampledMeanConfidenceInterval(
        output.value().estimated_means[j], sampled.value(), n, confidence);
    std::printf("  %-20s %12.4f  [%0.4f, %0.4f]\n", spec.name.c_str(),
                mid + half * interval.value().estimate,
                mid + half * interval.value().lo,
                mid + half * interval.value().hi);
  }

  std::printf("\ncategorical attribute frequencies:\n");
  for (size_t c = 0; c < output.value().categorical_columns.size(); ++c) {
    const uint32_t col = output.value().categorical_columns[c];
    const data::ColumnSpec& spec = schema.value().column(col);
    std::printf("  %s:", spec.name.c_str());
    for (const double f : output.value().estimated_frequencies[c]) {
      std::printf(" %.4f", f);
    }
    std::printf("\n");
  }
  return 0;
}
