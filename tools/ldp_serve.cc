// ldp_serve: the deployed collector — an api::Pipeline ServerSession behind
// a net::ReportServer, ingesting privatized report streams from remote
// ldp_report --connect reporters over TCP or a Unix-domain socket. Each
// connection negotiates its stream header (schema hash, ε, mechanism/oracle
// kinds) before a single report byte is decoded, then becomes one session
// shard: framing errors, disconnects, and slow-loris stalls poison or
// abandon only that shard. Closed shards merge in client ordinal order;
// with --expect-shards N (a strict barrier over ordinals 0..N-1) a
// campaign of reporters reproduces the file-based
// `ldp_aggregate shard-0 ... shard-N-1` run bit for bit no matter when
// each reporter connects or finishes.
//
//   ldp_serve --schema FILE --epsilon E --listen tcp:HOST:PORT|unix:PATH
//             [--expect-shards N] [--mechanism hm|pm]
//             [--oracle oue|grr|sue|olh|he|the]
//             [--stream auto|mixed|numeric] [--epochs N]
//             [--acceptors N] [--threads T] [--strict] [--max-rejected N]
//             [--idle-timeout-ms N] [--confidence C]
//             [--snapshot-out FILE]
//
// SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight reporters
// finish (bounded by the idle timeout), then write the session snapshot
// (--snapshot-out) and print per-epoch estimates in ldp_aggregate's format.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "data/schema_text.h"
#include "tool_flags.h"
#include "estimate_printer.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "stream/shard_ingester.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_serve --schema FILE --epsilon E --listen ENDPOINT\n"
      "                 [--expect-shards N] [--mechanism hm|pm]\n"
      "                 [--oracle oue|grr|sue|olh|he|the]\n"
      "                 [--stream auto|mixed|numeric] [--epochs N]\n"
      "                 [--acceptors N] [--threads T] [--strict]\n"
      "                 [--max-rejected N] [--idle-timeout-ms N]\n"
      "                 [--confidence C] [--snapshot-out FILE]\n"
      "ENDPOINT is tcp:HOST:PORT (port 0 = ephemeral, printed on stdout)\n"
      "or unix:PATH. SIGTERM drains and writes the snapshot/estimates.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, listen_spec, snapshot_out;
  double epsilon = 0.0;
  double confidence = 0.95;
  uint32_t epochs = 1;
  unsigned threads = 0;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  api::WirePreference wire = api::WirePreference::kAuto;
  stream::ShardIngester::Options ingest_options;
  net::ReportServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--listen") {
      listen_spec = next();
    } else if (arg == "--epochs") {
      epochs = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--expect-shards") {
      server_options.expected_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--acceptors") {
      server_options.acceptors =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--idle-timeout-ms") {
      server_options.idle_timeout_ms =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--strict") {
      ingest_options.strict = true;
    } else if (arg == "--max-rejected") {
      ingest_options.max_rejected = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--confidence") {
      confidence = std::strtod(next(), nullptr);
    } else if (arg == "--snapshot-out") {
      snapshot_out = next();
    } else if (arg == "--mechanism") {
      if (!tools::ParseMechanismFlag(next(), &mechanism)) {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!tools::ParseOracleFlag(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else if (arg == "--stream") {
      if (!tools::ParseWireFlag(next(), &wire)) {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (schema_path.empty() || listen_spec.empty() || epsilon <= 0.0 ||
      epochs == 0) {
    Usage();
    return 2;
  }

  auto endpoint = net::Endpoint::Parse(listen_spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "%s\n", endpoint.status().ToString().c_str());
    return 1;
  }
  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto config = api::PipelineConfig::FromSchema(schema.value(), epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  config.value().mechanism = mechanism;
  config.value().oracle = oracle;
  config.value().wire = wire;
  config.value().plan.epochs = epochs;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  api::ServerSessionOptions session_options;
  session_options.ingest = ingest_options;
  session_options.ingest_threads = threads;
  auto server_session = pipeline.value().NewServer(session_options);
  if (!server_session.ok()) {
    std::fprintf(stderr, "%s\n", server_session.status().ToString().c_str());
    return 1;
  }
  api::ServerSession& session = server_session.value();

  auto server = net::ReportServer::Start(&session, pipeline.value().header(),
                                         endpoint.value(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("listening on %s (%s stream, eps = %g/epoch, %u epoch plan, "
              "%u acceptor(s), %u session thread(s))\n",
              server.value()->endpoint().ToString().c_str(),
              stream::ReportStreamKindToString(pipeline.value().stream_kind()),
              epsilon, epochs, server_options.acceptors, threads);
  std::fflush(stdout);

  // The acceptors own all the work; this thread just waits for the signal.
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("draining...\n");
  std::fflush(stdout);
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  uint64_t total_reports = 0;
  for (uint32_t epoch = 0; epoch < session.num_epochs(); ++epoch) {
    auto n = session.num_reports(epoch);
    if (n.ok()) total_reports += n.value();
  }
  std::printf(
      "served %llu connection(s): %llu shard(s) merged, %llu discarded, "
      "%llu abandoned, %llu hello-rejected, %llu protocol error(s)\n",
      static_cast<unsigned long long>(stats.connections),
      static_cast<unsigned long long>(stats.shards_merged),
      static_cast<unsigned long long>(stats.shards_discarded),
      static_cast<unsigned long long>(stats.shards_abandoned),
      static_cast<unsigned long long>(stats.hello_rejected),
      static_cast<unsigned long long>(stats.protocol_errors));
  std::printf("%llu report(s) across %u epoch(s), eps spent %g\n\n",
              static_cast<unsigned long long>(total_reports),
              session.num_epochs(), session.epsilon_spent());

  if (!snapshot_out.empty()) {
    const std::string bytes = session.Snapshot();
    std::ofstream out(snapshot_out, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", snapshot_out.c_str());
      return 1;
    }
    std::printf("wrote session snapshot to %s (%zu bytes, %u epoch(s))\n\n",
                snapshot_out.c_str(), bytes.size(), session.num_epochs());
  }

  return tools::PrintSessionEstimates(schema.value(), pipeline.value(),
                                      session, confidence,
                                      /*selected_epoch=*/-1);
}
