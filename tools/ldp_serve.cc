// ldp_serve: the deployed collector — an api::Pipeline ServerSession behind
// a net::ReportServer, ingesting privatized report streams from remote
// ldp_report --connect reporters over TCP or a Unix-domain socket. Each
// connection negotiates its stream header (schema hash, ε, mechanism/oracle
// kinds) before a single report byte is decoded, then becomes one session
// shard: framing errors, disconnects, and slow-loris stalls poison or
// abandon only that shard. Closed shards merge in client ordinal order;
// with --expect-shards N (a strict barrier over ordinals 0..N-1) a
// campaign of reporters reproduces the file-based
// `ldp_aggregate shard-0 ... shard-N-1` run bit for bit no matter when
// each reporter connects or finishes.
//
//   ldp_serve --schema FILE --epsilon E --listen tcp:HOST:PORT|unix:PATH
//             [--expect-shards N] [--mechanism hm|pm]
//             [--oracle oue|grr|sue|olh|he|the]
//             [--stream auto|mixed|numeric] [--epochs N]
//             [--acceptors N] [--poller epoll|poll] [--threads T]
//             [--strict] [--max-rejected N]
//             [--idle-timeout-ms N] [--confidence C]
//             [--snapshot-out FILE] [--metrics ENDPOINT]
//             [--stats-interval-s N] [--journal-out FILE]
//             [--trace-out FILE] [--wal-dir DIR] [--wal-fsync]
//             [--accept-snapshots] [--relay-to ENDPOINT] [--node-id N]
//             [--relay-interval-s N] [--campaign-key KEY] [--version]
//
// SIGTERM/SIGINT drain gracefully: stop accepting, let in-flight reporters
// finish (bounded by the idle timeout), then write the session snapshot
// (--snapshot-out) and print per-epoch estimates in ldp_aggregate's format.
//
// Distributed tier (src/relay/): --wal-dir journals every accepted frame to
// a per-shard write-ahead log before it reaches the session, so restarting
// after a crash with the same flags replays to the exact pre-crash state
// (reporters that reconnect are told how many bytes are already durable
// and skip them). --relay-to turns this node into an edge that
// periodically — and finally, at drain — ships its cumulative session
// snapshot upstream; the upstream (run with --accept-snapshots) folds the
// latest snapshot per node in ascending --node-id order at its own drain,
// which keeps a two-tier campaign bit-identical to the tree-shaped
// file-based run.
//
// Observability: every run carries an obs::MetricsRegistry and campaign
// EventJournal wired through the session, ingester, thread pool, and
// network server. `--metrics tcp:HOST:PORT|unix:PATH` serves them live
// (GET /metrics Prometheus text, /metrics.json, /journal, /trace,
// /healthz); `--stats-interval-s N` prints a one-line stderr summary every
// N seconds; `--journal-out`/`--trace-out` dump the event journal at exit
// as JSON lines / Chrome trace JSON. Exit stats are the registry's own
// JSON serialization — the same bytes a live scrape would have returned,
// so the two can never drift. Telemetry is write-only observation: the
// estimates are bit-identical with every flag above on or off.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "data/schema_text.h"
#include "tool_flags.h"
#include "estimate_printer.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "obs/exposition.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "relay/forwarder.h"
#include "relay/frame_wal.h"
#include "stream/shard_ingester.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_serve --schema FILE --epsilon E --listen ENDPOINT\n"
      "                 [--expect-shards N] [--mechanism hm|pm]\n"
      "                 [--oracle oue|grr|sue|olh|he|the]\n"
      "                 [--stream auto|mixed|numeric] [--epochs N]\n"
      "                 [--acceptors N] [--poller epoll|poll] [--threads T]\n"
      "                 [--strict] [--max-rejected N] [--idle-timeout-ms N]\n"
      "                 [--confidence C] [--snapshot-out FILE]\n"
      "                 [--metrics ENDPOINT] [--stats-interval-s N]\n"
      "                 [--journal-out FILE] [--trace-out FILE]\n"
      "                 [--wal-dir DIR] [--wal-fsync] [--accept-snapshots]\n"
      "                 [--relay-to ENDPOINT] [--node-id N]\n"
      "                 [--relay-interval-s N] [--campaign-key KEY]\n"
      "                 [--version]\n"
      "ENDPOINT is tcp:HOST:PORT (port 0 = ephemeral, printed on stdout)\n"
      "or unix:PATH. SIGTERM drains and writes the snapshot/estimates.\n"
      "--campaign-key requires protocol v3 HELLOs carrying a reporter id\n"
      "authenticated with the shared key; spend is then accounted per\n"
      "reporter and unauthenticated connections are refused.\n"
      "--metrics serves GET /metrics (Prometheus text), /metrics.json,\n"
      "/journal, /trace and /healthz on a second endpoint.\n"
      "--wal-dir journals accepted frames for exact crash replay;\n"
      "--relay-to ships this node's session snapshot upstream (an edge);\n"
      "--accept-snapshots lets this node fold downstream edges (a root).\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::HandleVersionFlag(argc, argv, "ldp_serve")) return 0;
  std::string schema_path, listen_spec, snapshot_out;
  std::string metrics_spec, journal_out, trace_out;
  std::string wal_dir, relay_spec;
  bool wal_fsync = false;
  tools::IdentityFlags identity;
  std::string identity_error;
  relay::RelayForwarderOptions relay_options;
  unsigned stats_interval_s = 0;
  double epsilon = 0.0;
  double confidence = 0.95;
  uint32_t epochs = 1;
  unsigned threads = 0;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  api::WirePreference wire = api::WirePreference::kAuto;
  stream::ShardIngester::Options ingest_options;
  net::ReportServerOptions server_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--listen") {
      listen_spec = next();
    } else if (arg == "--epochs") {
      epochs = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--expect-shards") {
      server_options.expected_shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--acceptors") {
      server_options.acceptors =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--poller") {
      const std::string backend = next();
      if (backend == "epoll") {
        server_options.poller = net::PollerBackend::kEpoll;
      } else if (backend == "poll") {
        server_options.poller = net::PollerBackend::kPoll;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--idle-timeout-ms") {
      server_options.idle_timeout_ms =
          static_cast<int>(std::strtol(next(), nullptr, 10));
    } else if (arg == "--strict") {
      ingest_options.strict = true;
    } else if (arg == "--max-rejected") {
      ingest_options.max_rejected = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--confidence") {
      confidence = std::strtod(next(), nullptr);
    } else if (arg == "--snapshot-out") {
      snapshot_out = next();
    } else if (arg == "--metrics") {
      metrics_spec = next();
    } else if (arg == "--stats-interval-s") {
      stats_interval_s =
          static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--journal-out") {
      journal_out = next();
    } else if (arg == "--trace-out") {
      trace_out = next();
    } else if (arg == "--wal-dir") {
      wal_dir = next();
    } else if (arg == "--wal-fsync") {
      wal_fsync = true;
    } else if (arg == "--accept-snapshots") {
      server_options.accept_snapshots = true;
    } else if (arg == "--relay-to") {
      relay_spec = next();
    } else if (tools::ParseIdentityFlag(
                   arg, next, tools::kFlagCampaignKey | tools::kFlagNodeId,
                   &identity, &identity_error)) {
      if (!identity_error.empty()) {
        std::fprintf(stderr, "%s\n", identity_error.c_str());
        Usage();
        return 2;
      }
    } else if (arg == "--relay-interval-s") {
      relay_options.interval_ms =
          static_cast<int>(std::strtol(next(), nullptr, 10)) * 1000;
    } else if (arg == "--mechanism") {
      if (!tools::ParseMechanismFlag(next(), &mechanism)) {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!tools::ParseOracleFlag(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else if (arg == "--stream") {
      if (!tools::ParseWireFlag(next(), &wire)) {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (schema_path.empty() || listen_spec.empty() || epsilon <= 0.0 ||
      epochs == 0) {
    Usage();
    return 2;
  }
  relay_options.node_id = identity.node_id;
  server_options.campaign_key = identity.campaign_key;

  auto endpoint = net::Endpoint::Parse(listen_spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "%s\n", endpoint.status().ToString().c_str());
    return 1;
  }
  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto config = api::PipelineConfig::FromSchema(schema.value(), epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  config.value().mechanism = mechanism;
  config.value().oracle = oracle;
  config.value().wire = wire;
  config.value().plan.epochs = epochs;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  // Telemetry is always on: the registry and journal are cheap enough to
  // carry unconditionally, and the exit stats below are their serialization.
  obs::MetricsRegistry registry;
  obs::EventJournal journal(8192);

  api::ServerSessionOptions session_options;
  session_options.ingest = ingest_options;
  session_options.ingest_threads = threads;
  session_options.metrics = &registry;
  session_options.journal = &journal;
  auto server_session = pipeline.value().NewServer(session_options);
  if (!server_session.ok()) {
    std::fprintf(stderr, "%s\n", server_session.status().ToString().c_str());
    return 1;
  }
  api::ServerSession& session = server_session.value();

  // The WAL replays before the server starts listening: a crashed run's
  // frames are back in the session, still-open shards become resume
  // entries, and already-merged ordinals seed the barrier as done.
  const stream::StreamHeader expected_header = pipeline.value().header();
  std::unique_ptr<relay::FrameWal> wal;
  relay::WalReplaySummary replay;
  if (!wal_dir.empty()) {
    relay::FrameWal::Options wal_options;
    wal_options.fsync = wal_fsync;
    wal_options.expected = &expected_header;
    wal_options.metrics = &registry;
    wal_options.journal = &journal;
    auto opened =
        relay::FrameWal::Open(wal_dir, &session, wal_options, &replay);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    wal = std::move(opened).value();
    server_options.wal = wal.get();
    server_options.resume_shards = replay.resume_shards;
    server_options.completed_ordinals = replay.completed_ordinals;
    if (replay.shards_replayed + replay.shards_resumed +
            replay.shards_corrupt + replay.truncated_tails >
        0) {
      std::printf(
          "wal replay: %llu shard(s) merged, %llu resumable, %llu corrupt, "
          "%llu frame(s), %llu torn tail(s) truncated\n",
          static_cast<unsigned long long>(replay.shards_replayed),
          static_cast<unsigned long long>(replay.shards_resumed),
          static_cast<unsigned long long>(replay.shards_corrupt),
          static_cast<unsigned long long>(replay.frames_replayed),
          static_cast<unsigned long long>(replay.truncated_tails));
    }
  }

  server_options.metrics = &registry;
  server_options.journal = &journal;
  auto server = net::ReportServer::Start(&session, expected_header,
                                         endpoint.value(), server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<obs::MetricsServer> metrics_server;
  if (!metrics_spec.empty()) {
    auto metrics_endpoint = net::Endpoint::Parse(metrics_spec);
    if (!metrics_endpoint.ok()) {
      std::fprintf(stderr, "%s\n",
                   metrics_endpoint.status().ToString().c_str());
      return 1;
    }
    auto started = obs::MetricsServer::Start(metrics_endpoint.value(),
                                             &registry, &journal);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    metrics_server = std::move(started).value();
  }

  std::unique_ptr<relay::RelayForwarder> forwarder;
  if (!relay_spec.empty()) {
    auto upstream = net::Endpoint::Parse(relay_spec);
    if (!upstream.ok()) {
      std::fprintf(stderr, "%s\n", upstream.status().ToString().c_str());
      return 1;
    }
    relay_options.metrics = &registry;
    relay_options.journal = &journal;
    auto started =
        relay::RelayForwarder::Start(&session, upstream.value(),
                                     relay_options);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
      return 1;
    }
    forwarder = std::move(started).value();
    std::printf("relaying to %s as node %llu\n", relay_spec.c_str(),
                static_cast<unsigned long long>(relay_options.node_id));
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::printf("listening on %s (%s stream, eps = %g/epoch, %u epoch plan, "
              "%u event loop(s), %u session thread(s))\n",
              server.value()->endpoint().ToString().c_str(),
              stream::ReportStreamKindToString(pipeline.value().stream_kind()),
              epsilon, epochs, server_options.acceptors, threads);
  if (metrics_server != nullptr) {
    std::printf("metrics on %s\n",
                metrics_server->endpoint().ToString().c_str());
  }
  std::fflush(stdout);

  // Handles for the periodic summary; get-or-create, so these are the same
  // cells the session/server instrumentation writes through.
  const obs::IngestMetrics ingest_view =
      obs::IngestMetrics::ForRegistry(&registry);
  const obs::NetServerMetrics net_view =
      obs::NetServerMetrics::ForRegistry(&registry);

  // The event loops own all the work; this thread just waits for the
  // signal.
  const auto stats_interval = std::chrono::seconds(
      stats_interval_s == 0 ? 0 : stats_interval_s);
  auto next_stats = std::chrono::steady_clock::now() + stats_interval;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (stats_interval_s != 0 &&
        std::chrono::steady_clock::now() >= next_stats) {
      next_stats += stats_interval;
      std::fprintf(
          stderr,
          "[stats] conns=%llu accepted=%llu rejected=%llu bytes=%llu "
          "merged=%llu abandoned=%llu refused=%llu\n",
          static_cast<unsigned long long>(net_view.connections->Value()),
          static_cast<unsigned long long>(ingest_view.accepted->Value()),
          static_cast<unsigned long long>(ingest_view.rejected->Value()),
          static_cast<unsigned long long>(ingest_view.bytes->Value()),
          static_cast<unsigned long long>(net_view.shards_merged->Value()),
          static_cast<unsigned long long>(net_view.shards_abandoned->Value()),
          static_cast<unsigned long long>(net_view.hello_refused->Value()));
      std::fflush(stderr);
    }
  }
  std::printf("draining...\n");
  std::fflush(stdout);
  // Drain order: flip /healthz first (load balancers route away), finish
  // in-flight shards, ship the edge's final cumulative snapshot upstream,
  // fold whatever downstream edges shipped here, then stop the scrape
  // endpoint — so a last scrape still sees the post-fold counters.
  if (metrics_server != nullptr) metrics_server->SetDraining(true);
  server.value()->Stop(/*drain=*/true);
  if (forwarder != nullptr) {
    const Status flushed = forwarder->Stop(/*final_flush=*/true);
    if (!flushed.ok()) {
      std::fprintf(stderr, "relay final flush failed: %s\n",
                   flushed.ToString().c_str());
    }
  }
  {
    const Status folded = server.value()->FoldRelaySnapshots();
    if (!folded.ok()) {
      std::fprintf(stderr, "relay fold failed: %s\n",
                   folded.ToString().c_str());
    }
  }
  if (metrics_server != nullptr) metrics_server->Stop();

  // Exit stats are the registry's own JSON serialization — byte-compatible
  // with what a live /metrics.json scrape would have returned at this
  // instant, so the two views cannot drift apart.
  std::printf("exit stats: %s\n", obs::ToJson(registry).c_str());

  // Per-reporter budget accounting: one line per authenticated reporter id.
  // The anonymous ledger (empty id) is the campaign plan itself — its spend
  // is the session's epsilon_spent(), already covered by the estimates.
  for (const auto& [reporter, ledger] : session.accountant().ledgers()) {
    if (reporter == kAnonymousReporter) continue;
    std::printf("reporter %s: eps spent %g of %g over %zu epoch(s), "
                "%llu refusal(s)\n",
                reporter.c_str(), ledger.spent,
                session.accountant().lifetime_budget(),
                ledger.epoch_spend.size(),
                static_cast<unsigned long long>(ledger.refusals));
  }

  if (!journal_out.empty()) {
    std::ofstream out(journal_out, std::ios::trunc);
    const std::string lines = journal.ToJsonLines();
    out.write(lines.data(), static_cast<std::streamsize>(lines.size()));
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", journal_out.c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::trunc);
    const std::string trace = journal.ToChromeTrace();
    out.write(trace.data(), static_cast<std::streamsize>(trace.size()));
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", trace_out.c_str());
      return 1;
    }
  }

  if (!snapshot_out.empty()) {
    const std::string bytes = session.Snapshot();
    std::ofstream out(snapshot_out, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", snapshot_out.c_str());
      return 1;
    }
    std::printf("wrote session snapshot to %s (%zu bytes, %u epoch(s))\n\n",
                snapshot_out.c_str(), bytes.size(), session.num_epochs());
  }

  return tools::PrintSessionEstimates(schema.value(), pipeline.value(),
                                      session, confidence,
                                      /*selected_epoch=*/-1);
}
