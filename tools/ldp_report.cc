// ldp_report: the client half of the deployment split. Streams a CSV of
// user records row by row, perturbs each row on the "device" under ε-LDP,
// and writes the privatized reports as framed report streams
// (src/stream/report_stream.h) — one shard file per slice of the population
// — ready to be shipped to an ldp_aggregate server. Nothing but the
// perturbed reports is written out, and memory stays O(schema) regardless
// of row count: the table is never materialized (a cheap first pass counts
// rows to fix the shard boundaries, then the privatizing pass streams).
//
//   ldp_report --schema FILE --data FILE --epsilon E --out PREFIX
//              [--shards N] [--mechanism hm|pm]
//              [--oracle oue|grr|sue|olh|he|the] [--seed S]
//
// Produces PREFIX.shard-000.ldps ... PREFIX.shard-<N-1>.ldps. Shard
// boundaries follow util/threadpool.h SplitRange, and user `row` draws from
// aggregate::UserRng(seed, row): aggregating the shards in order reproduces
// an in-process CollectProposed run with the same seed and chunking bit for
// bit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "aggregate/collector.h"
#include "data/csv.h"
#include "data/schema_text.h"
#include "stream/report_stream.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_report --schema FILE --data FILE --epsilon E --out PREFIX\n"
      "                  [--shards N] [--mechanism hm|pm]\n"
      "                  [--oracle oue|grr|sue|olh|he|the] [--seed S]\n");
}

bool ParseOracle(const std::string& name, FrequencyOracleKind* kind) {
  if (name == "oue") *kind = FrequencyOracleKind::kOue;
  else if (name == "grr") *kind = FrequencyOracleKind::kGrr;
  else if (name == "sue") *kind = FrequencyOracleKind::kSue;
  else if (name == "olh") *kind = FrequencyOracleKind::kOlh;
  else if (name == "he") *kind = FrequencyOracleKind::kHe;
  else if (name == "the") *kind = FrequencyOracleKind::kThe;
  else return false;
  return true;
}

std::string ShardPath(const std::string& prefix, size_t shard) {
  // Five digits keep lexicographic shell-glob order equal to numeric shard
  // order (ldp_aggregate reduces in argument order, and bit-exact
  // reproduction depends on it) for any realistic shard count.
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".shard-%05zu.ldps", shard);
  return prefix + suffix;
}

// Counts data rows (non-empty lines after the header) so the shard
// boundaries can be fixed before the streaming pass; row-level validation
// happens in that second pass.
Result<uint64_t> CountCsvRows(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  uint64_t rows = 0;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  if (in.bad()) {
    return Status::IoError("read error on " + path);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, data_path, prefix;
  double epsilon = 0.0;
  uint64_t seed = 1;
  uint64_t shards = 1;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      prefix = next();
    } else if (arg == "--shards") {
      shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mechanism") {
      const std::string name = next();
      if (name == "hm") {
        mechanism = MechanismKind::kHybrid;
      } else if (name == "pm") {
        mechanism = MechanismKind::kPiecewise;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!ParseOracle(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (schema_path.empty() || data_path.empty() || prefix.empty() ||
      epsilon <= 0.0 || shards == 0) {
    Usage();
    return 2;
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto row_count = CountCsvRows(data_path);
  if (!row_count.ok()) {
    std::fprintf(stderr, "%s\n", row_count.status().ToString().c_str());
    return 1;
  }
  const uint64_t n = row_count.value();
  if (n == 0) {
    std::fprintf(stderr, "dataset is empty\n");
    return 1;
  }

  auto mixed_schema = aggregate::ToMixedSchema(schema.value());
  if (!mixed_schema.ok()) {
    std::fprintf(stderr, "%s\n", mixed_schema.status().ToString().c_str());
    return 1;
  }
  auto collector_result = MixedTupleCollector::Create(
      std::move(mixed_schema).value(), epsilon, mechanism, oracle);
  if (!collector_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 collector_result.status().ToString().c_str());
    return 1;
  }
  const MixedTupleCollector& collector = collector_result.value();
  const stream::StreamHeader header = stream::MakeMixedStreamHeader(collector);

  // Second pass: stream rows, normalizing each numeric cell from its schema
  // [lo, hi] to the mechanisms' canonical [-1, 1] with the same arithmetic
  // as data::NormalizeNumeric — bit-identical to the materializing pipeline
  // ldp_collect runs, which the reproduction contract depends on.
  auto reader = data::CsvRowReader::Open(schema.value(), data_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const uint32_t d = schema.value().num_columns();
  const std::vector<IndexRange> ranges = SplitRange(n, shards);
  std::vector<double> numeric_row;
  std::vector<uint32_t> category_row;
  MixedTuple tuple(d);
  uint64_t total_bytes = 0;
  for (size_t s = 0; s < ranges.size(); ++s) {
    const std::string path = ShardPath(prefix, s);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    stream::ReportStreamWriter writer(&out, header);
    for (uint64_t row = ranges[s].begin; row < ranges[s].end; ++row) {
      auto more = reader.value().NextRow(&numeric_row, &category_row);
      if (!more.ok()) {
        std::fprintf(stderr, "%s\n", more.status().ToString().c_str());
        return 1;
      }
      if (!more.value()) {
        std::fprintf(stderr, "%s shrank between passes\n", data_path.c_str());
        return 1;
      }
      for (uint32_t col = 0; col < d; ++col) {
        const data::ColumnSpec& spec = schema.value().column(col);
        if (spec.type == data::ColumnType::kNumeric) {
          const double mid = (spec.hi + spec.lo) / 2.0;
          const double half_width = (spec.hi - spec.lo) / 2.0;
          tuple[col].numeric = (numeric_row[col] - mid) / half_width;
        } else {
          tuple[col].category = category_row[col];
        }
      }
      Rng rng = aggregate::UserRng(seed, row);
      const Status status =
          writer.WriteMixedReport(collector.Perturb(tuple, &rng), collector);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", path.c_str());
      return 1;
    }
    total_bytes += writer.bytes_written();
  }
  // The shard boundaries were fixed by the counting pass; rows appearing
  // after it (a still-running exporter?) would otherwise be dropped
  // silently. Symmetric with the shrink check above.
  auto trailing = reader.value().NextRow(&numeric_row, &category_row);
  if (!trailing.ok()) {
    std::fprintf(stderr, "%s\n", trailing.status().ToString().c_str());
    return 1;
  }
  if (trailing.value()) {
    std::fprintf(stderr, "%s grew between passes\n", data_path.c_str());
    return 1;
  }

  std::printf(
      "privatized %llu users under eps = %g (mechanism %s, oracle %s; %u of "
      "%u attributes sampled per user)\n"
      "wrote %zu shard stream(s) to %s.shard-*.ldps (%llu bytes)\n",
      static_cast<unsigned long long>(n), epsilon,
      MechanismKindToString(mechanism), FrequencyOracleKindToString(oracle),
      collector.k(), d, ranges.size(), prefix.c_str(),
      static_cast<unsigned long long>(total_bytes));
  return 0;
}
