// ldp_report: the client half of the deployment split. Streams a CSV of
// user records row by row, perturbs each row on the "device" under ε-LDP
// through an api::ClientSession, and writes the privatized reports as framed
// report streams (src/stream/report_stream.h) — one shard file per slice of
// the population — ready to be shipped to an ldp_aggregate server. Nothing
// but the perturbed reports is written out, and memory stays O(schema)
// regardless of row count: the table is never materialized (a cheap first
// pass counts rows to fix the shard boundaries, then the privatizing pass
// streams).
//
//   ldp_report --schema FILE --data FILE --epsilon E --out PREFIX
//              [--shards N] [--mechanism hm|pm]
//              [--oracle oue|grr|sue|olh|he|the]
//              [--stream auto|mixed|numeric] [--seed S]
//
// The stream kind follows the schema by default: mixed (Section IV-C) when
// any column is categorical, the Algorithm-4 numeric kind when all columns
// are numeric; --stream mixed forces the mixed wire format either way.
//
// Produces PREFIX.shard-000.ldps ... PREFIX.shard-<N-1>.ldps. Shard
// boundaries follow util/threadpool.h SplitRange, and user `row` draws from
// api::UserRng(seed, row): aggregating the shards in order reproduces an
// in-process ldp_collect run with the same seed and chunking bit for bit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "data/csv.h"
#include "data/schema_text.h"
#include "stream/report_stream.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_report --schema FILE --data FILE --epsilon E --out PREFIX\n"
      "                  [--shards N] [--mechanism hm|pm]\n"
      "                  [--oracle oue|grr|sue|olh|he|the]\n"
      "                  [--stream auto|mixed|numeric] [--seed S]\n");
}

bool ParseOracle(const std::string& name, FrequencyOracleKind* kind) {
  if (name == "oue") *kind = FrequencyOracleKind::kOue;
  else if (name == "grr") *kind = FrequencyOracleKind::kGrr;
  else if (name == "sue") *kind = FrequencyOracleKind::kSue;
  else if (name == "olh") *kind = FrequencyOracleKind::kOlh;
  else if (name == "he") *kind = FrequencyOracleKind::kHe;
  else if (name == "the") *kind = FrequencyOracleKind::kThe;
  else return false;
  return true;
}

std::string ShardPath(const std::string& prefix, size_t shard) {
  // Five digits keep lexicographic shell-glob order equal to numeric shard
  // order (ldp_aggregate reduces in argument order, and bit-exact
  // reproduction depends on it) for any realistic shard count.
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), ".shard-%05zu.ldps", shard);
  return prefix + suffix;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, data_path, prefix;
  double epsilon = 0.0;
  uint64_t seed = 1;
  uint64_t shards = 1;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  api::WirePreference wire = api::WirePreference::kAuto;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      prefix = next();
    } else if (arg == "--shards") {
      shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--mechanism") {
      const std::string name = next();
      if (name == "hm") {
        mechanism = MechanismKind::kHybrid;
      } else if (name == "pm") {
        mechanism = MechanismKind::kPiecewise;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!ParseOracle(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else if (arg == "--stream") {
      const std::string name = next();
      if (name == "auto") {
        wire = api::WirePreference::kAuto;
      } else if (name == "mixed") {
        wire = api::WirePreference::kMixed;
      } else if (name == "numeric") {
        wire = api::WirePreference::kNumeric;
      } else {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  if (schema_path.empty() || data_path.empty() || prefix.empty() ||
      epsilon <= 0.0 || shards == 0) {
    Usage();
    return 2;
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto row_count = data::CountCsvDataRows(data_path);
  if (!row_count.ok()) {
    std::fprintf(stderr, "%s\n", row_count.status().ToString().c_str());
    return 1;
  }
  const uint64_t n = row_count.value();
  if (n == 0) {
    std::fprintf(stderr, "dataset is empty\n");
    return 1;
  }

  auto config = api::PipelineConfig::FromSchema(schema.value(), epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  config.value().mechanism = mechanism;
  config.value().oracle = oracle;
  config.value().wire = wire;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto client = pipeline.value().NewClient();
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  // Second pass: stream rows, normalizing each numeric cell from its schema
  // [lo, hi] to the mechanisms' canonical [-1, 1] with the same arithmetic
  // as data::NormalizeNumeric — bit-identical to the materializing pipeline,
  // which the reproduction contract depends on.
  auto reader = data::CsvRowReader::Open(schema.value(), data_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const uint32_t d = schema.value().num_columns();
  const std::vector<IndexRange> ranges = SplitRange(n, shards);
  std::vector<double> numeric_row;
  std::vector<uint32_t> category_row;
  MixedTuple tuple(d);
  uint64_t total_bytes = 0;
  for (size_t s = 0; s < ranges.size(); ++s) {
    const std::string path = ShardPath(prefix, s);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    stream::ReportStreamWriter writer(&out, client.value().header());
    for (uint64_t row = ranges[s].begin; row < ranges[s].end; ++row) {
      auto more = reader.value().NextRow(&numeric_row, &category_row);
      if (!more.ok()) {
        std::fprintf(stderr, "%s\n", more.status().ToString().c_str());
        return 1;
      }
      if (!more.value()) {
        std::fprintf(stderr, "%s shrank between passes\n", data_path.c_str());
        return 1;
      }
      api::RowToTuple(schema.value(), numeric_row, category_row, &tuple);
      Rng rng = api::UserRng(seed, row);
      const Status status = client.value().WriteReport(&writer, tuple, &rng);
      if (!status.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     status.ToString().c_str());
        return 1;
      }
    }
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", path.c_str());
      return 1;
    }
    total_bytes += writer.bytes_written();
  }
  // The shard boundaries were fixed by the counting pass; rows appearing
  // after it (a still-running exporter?) would otherwise be dropped
  // silently. Symmetric with the shrink check above.
  auto trailing = reader.value().NextRow(&numeric_row, &category_row);
  if (!trailing.ok()) {
    std::fprintf(stderr, "%s\n", trailing.status().ToString().c_str());
    return 1;
  }
  if (trailing.value()) {
    std::fprintf(stderr, "%s grew between passes\n", data_path.c_str());
    return 1;
  }

  std::printf(
      "privatized %llu users under eps = %g (%s stream, mechanism %s, oracle "
      "%s; %u of %u attributes sampled per user)\n"
      "wrote %zu shard stream(s) to %s.shard-*.ldps (%llu bytes)\n",
      static_cast<unsigned long long>(n), epsilon,
      stream::ReportStreamKindToString(pipeline.value().stream_kind()),
      MechanismKindToString(mechanism), FrequencyOracleKindToString(oracle),
      pipeline.value().k(), d, ranges.size(), prefix.c_str(),
      static_cast<unsigned long long>(total_bytes));
  return 0;
}
