// ldp_report: the client half of the deployment split. Streams a CSV of
// user records row by row, perturbs each row on the "device" under ε-LDP
// through an api::ClientSession, and ships the privatized reports as framed
// report streams (src/stream/report_stream.h) — either as one shard file
// per slice of the population (ready for ldp_aggregate), or, with
// --connect, streamed live to an ldp_serve collector over TCP or a
// Unix-domain socket. Nothing but the perturbed reports leaves the process,
// and memory stays O(schema) regardless of row count: the table is never
// materialized (a cheap first pass counts rows to fix the shard
// boundaries, then the privatizing pass streams).
//
//   ldp_report --schema FILE --data FILE --epsilon E
//              (--out PREFIX | --connect tcp:HOST:PORT|unix:PATH)
//              [--shards N] [--shard-index I] [--mechanism hm|pm]
//              [--oracle oue|grr|sue|olh|he|the]
//              [--stream auto|mixed|numeric] [--seed S]
//              [--reporter-id ID --campaign-key KEY]
//
// The stream kind follows the schema by default: mixed (Section IV-C) when
// any column is categorical, the Algorithm-4 numeric kind when all columns
// are numeric; --stream mixed forces the mixed wire format either way.
//
// File mode produces PREFIX.shard-000.ldps ... PREFIX.shard-<N-1>.ldps.
// Connect mode opens one collector connection per shard and HELLOs the
// shard's index as its merge ordinal. Either way, shard boundaries follow
// util/threadpool.h SplitRange and user `row` draws from
// api::UserRng(seed, row), so aggregating the shards in (ordinal) order
// reproduces an in-process ldp_collect run with the same seed and chunking
// bit for bit — including across the network. --shard-index I restricts
// this invocation to shard I (same boundaries, same randomness), which is
// how a fleet of concurrent reporter processes splits one campaign.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "data/csv.h"
#include "data/schema_text.h"
#include "tool_flags.h"
#include "net/client.h"
#include "net/socket.h"
#include "stream/report_stream.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_report --schema FILE --data FILE --epsilon E\n"
      "                  (--out PREFIX | --connect ENDPOINT)\n"
      "                  [--shards N] [--shard-index I] [--mechanism hm|pm]\n"
      "                  [--oracle oue|grr|sue|olh|he|the]\n"
      "                  [--stream auto|mixed|numeric] [--seed S]\n"
      "                  [--reporter-id ID --campaign-key KEY]\n"
      "                  [--metrics-out FILE] [--version]\n"
      "ENDPOINT is tcp:HOST:PORT or unix:PATH (an ldp_serve collector).\n"
      "--reporter-id/--campaign-key authenticate --connect HELLOs (protocol\n"
      "v3) so the collector charges this reporter's budget exactly once per\n"
      "epoch; both must be given together and match the collector's key.\n"
      "--metrics-out dumps reporter-side telemetry as JSON at exit.\n");
}

std::string ShardPath(const std::string& prefix, size_t shard) {
  // Five digits keep lexicographic shell-glob order equal to numeric shard
  // order (ldp_aggregate reduces in argument order, and bit-exact
  // reproduction depends on it) for any realistic shard count.
  char suffix[48];
  std::snprintf(suffix, sizeof(suffix), ".shard-%05zu.ldps", shard);
  return prefix + suffix;
}

// Where one shard's bytes go: a file (writer mode) or a collector
// connection (connect mode). Both consume the identical byte stream.
struct ShardSink {
  virtual ~ShardSink() = default;
  virtual Status Write(const std::string& bytes) = 0;
  /// Finalizes the shard; returns bytes shipped.
  virtual Result<uint64_t> Finish() = 0;
};

struct FileShardSink : ShardSink {
  explicit FileShardSink(const std::string& path)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {}

  Status Write(const std::string& bytes) override {
    if (!out_.is_open()) {
      return Status::IoError("cannot open '" + path_ + "' for writing");
    }
    out_.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    bytes_ += bytes.size();
    return out_.good() ? Status::OK()
                       : Status::IoError("write error on '" + path_ + "'");
  }

  Result<uint64_t> Finish() override {
    out_.flush();
    if (!out_.good()) {
      return Status::IoError("write error on '" + path_ + "'");
    }
    return bytes_;
  }

  std::string path_;
  std::ofstream out_;
  uint64_t bytes_ = 0;
};

struct NetShardSink : ShardSink {
  NetShardSink(net::CollectorClient client, uint64_t reports)
      : client_(std::move(client)),
        skip_(client_.resume_offset()),
        reports_(reports) {}

  Status Write(const std::string& bytes) override {
    bytes_ += bytes.size();
    // Resume handshake (HELLO_OK.resume_offset): the collector's WAL
    // already holds this many post-header bytes from a pre-crash run of
    // the same deterministic stream — skip them instead of re-sending.
    if (skip_ > 0) {
      if (bytes.size() <= skip_) {
        skip_ -= bytes.size();
        return Status::OK();
      }
      const Status sent = client_.Send(bytes.data() + skip_,
                                       bytes.size() - skip_);
      skip_ = 0;
      return sent;
    }
    return client_.Send(bytes);
  }

  Result<uint64_t> Finish() override {
    Result<net::ShardCloseSummary> summary = client_.Close();
    if (!summary.ok()) return summary.status();
    if (!summary.value().status.ok()) {
      return Status(summary.value().status.code(),
                    "collector discarded the shard: " +
                        summary.value().status.message());
    }
    if (summary.value().stats.accepted != reports_) {
      return Status::Internal(
          "collector accepted " +
          std::to_string(summary.value().stats.accepted) + " of " +
          std::to_string(reports_) + " reports");
    }
    return bytes_;
  }

  net::CollectorClient client_;
  uint64_t skip_;  // durable bytes left to swallow before real sends
  uint64_t reports_;
  uint64_t bytes_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (tools::HandleVersionFlag(argc, argv, "ldp_report")) return 0;
  std::string schema_path, data_path, prefix, connect_spec, metrics_out;
  double epsilon = 0.0;
  uint64_t seed = 1;
  uint64_t shards = 1;
  long shard_index = -1;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  api::WirePreference wire = api::WirePreference::kAuto;
  tools::IdentityFlags identity;
  std::string identity_error;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (arg == "--out") {
      prefix = next();
    } else if (arg == "--connect") {
      connect_spec = next();
    } else if (arg == "--shards") {
      shards = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--shard-index") {
      const char* text = next();
      char* end = nullptr;
      shard_index = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || shard_index < 0) {
        Usage();
        return 2;
      }
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (tools::ParseIdentityFlag(
                   arg, next, tools::kFlagReporterId | tools::kFlagCampaignKey,
                   &identity, &identity_error)) {
      if (!identity_error.empty()) {
        std::fprintf(stderr, "%s\n", identity_error.c_str());
        Usage();
        return 2;
      }
    } else if (arg == "--mechanism") {
      if (!tools::ParseMechanismFlag(next(), &mechanism)) {
        Usage();
        return 2;
      }
    } else if (arg == "--oracle") {
      if (!tools::ParseOracleFlag(next(), &oracle)) {
        Usage();
        return 2;
      }
    } else if (arg == "--stream") {
      if (!tools::ParseWireFlag(next(), &wire)) {
        Usage();
        return 2;
      }
    } else {
      Usage();
      return 2;
    }
  }
  const bool connect_mode = !connect_spec.empty();
  if (schema_path.empty() || data_path.empty() || epsilon <= 0.0 ||
      shards == 0 || prefix.empty() != connect_mode ||
      (shard_index >= 0 && static_cast<uint64_t>(shard_index) >= shards)) {
    Usage();
    return 2;
  }
  if (!tools::CheckReporterIdentity(identity, &identity_error)) {
    std::fprintf(stderr, "%s\n", identity_error.c_str());
    Usage();
    return 2;
  }
  if (!identity.campaign_key.empty() && !connect_mode) {
    std::fprintf(stderr,
                 "--campaign-key authenticates --connect HELLOs; file mode "
                 "(--out) ships no HELLO to sign\n");
    Usage();
    return 2;
  }

  net::Endpoint endpoint;
  if (connect_mode) {
    auto parsed = net::Endpoint::Parse(connect_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    endpoint = parsed.value();
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto row_count = data::CountCsvDataRows(data_path);
  if (!row_count.ok()) {
    std::fprintf(stderr, "%s\n", row_count.status().ToString().c_str());
    return 1;
  }
  const uint64_t n = row_count.value();
  if (n == 0) {
    std::fprintf(stderr, "dataset is empty\n");
    return 1;
  }

  auto config = api::PipelineConfig::FromSchema(schema.value(), epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  config.value().mechanism = mechanism;
  config.value().oracle = oracle;
  config.value().wire = wire;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto client = pipeline.value().NewClient();
  if (!client.ok()) {
    std::fprintf(stderr, "%s\n", client.status().ToString().c_str());
    return 1;
  }

  // Second pass: stream rows, normalizing each numeric cell from its schema
  // [lo, hi] to the mechanisms' canonical [-1, 1] with the same arithmetic
  // as data::NormalizeNumeric — bit-identical to the materializing pipeline,
  // which the reproduction contract depends on. Rows outside a selected
  // shard are still read (and their RNG rows skipped by index), so the
  // shrink/grow integrity checks keep covering the whole file.
  auto reader = data::CsvRowReader::Open(schema.value(), data_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const uint32_t d = schema.value().num_columns();
  const std::vector<IndexRange> ranges = SplitRange(n, shards);
  // SplitRange never produces empty shards, so fewer rows than --shards
  // yields fewer ranges; a --shard-index beyond them has no users to ship.
  if (shard_index >= 0 && static_cast<size_t>(shard_index) >= ranges.size()) {
    std::fprintf(stderr,
                 "shard %ld is empty: %llu row(s) split into %zu shard(s)\n",
                 shard_index, static_cast<unsigned long long>(n),
                 ranges.size());
    return 1;
  }
  std::vector<double> numeric_row;
  std::vector<uint32_t> category_row;
  MixedTuple tuple(d);
  uint64_t total_bytes = 0;
  size_t shards_shipped = 0;
  const std::string header_bytes = client.value().EncodeHeader();
  std::string buffer;
  for (size_t s = 0; s < ranges.size(); ++s) {
    const bool selected =
        shard_index < 0 || s == static_cast<size_t>(shard_index);
    std::unique_ptr<ShardSink> sink;
    if (selected) {
      if (connect_mode) {
        // Authenticated campaigns sign every shard's HELLO with the same
        // reporter id — the collector's per-(reporter, epoch) charge is
        // idempotent, so N shards spend this user's ε exactly once.
        net::CollectorClientOptions client_options;
        client_options.reporter_id = identity.reporter_id;
        client_options.campaign_key = identity.campaign_key;
        auto connection = net::CollectorClient::Connect(
            endpoint, client.value().header(), /*ordinal=*/s, client_options);
        if (!connection.ok()) {
          std::fprintf(stderr, "shard %zu: %s\n", s,
                       connection.status().ToString().c_str());
          return 1;
        }
        sink = std::make_unique<NetShardSink>(std::move(connection).value(),
                                              ranges[s].end - ranges[s].begin);
      } else {
        sink = std::make_unique<FileShardSink>(ShardPath(prefix, s));
        // The connection HELLOs the header; files carry it inline.
        const Status wrote = sink->Write(header_bytes);
        if (!wrote.ok()) {
          std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
          return 1;
        }
      }
    }
    for (uint64_t row = ranges[s].begin; row < ranges[s].end; ++row) {
      auto more = reader.value().NextRow(&numeric_row, &category_row);
      if (!more.ok()) {
        std::fprintf(stderr, "%s\n", more.status().ToString().c_str());
        return 1;
      }
      if (!more.value()) {
        std::fprintf(stderr, "%s shrank between passes\n", data_path.c_str());
        return 1;
      }
      if (!selected) continue;
      api::RowToTuple(schema.value(), numeric_row, category_row, &tuple);
      Rng rng = api::UserRng(seed, row);
      auto payload = client.value().EncodeReport(tuple, &rng);
      if (!payload.ok()) {
        std::fprintf(stderr, "shard %zu: %s\n", s,
                     payload.status().ToString().c_str());
        return 1;
      }
      buffer.clear();
      const Status framed = stream::AppendFrame(payload.value(), &buffer);
      const Status wrote = framed.ok() ? sink->Write(buffer) : framed;
      if (!wrote.ok()) {
        std::fprintf(stderr, "shard %zu: %s\n", s, wrote.ToString().c_str());
        return 1;
      }
    }
    if (selected) {
      auto finished = sink->Finish();
      if (!finished.ok()) {
        std::fprintf(stderr, "shard %zu: %s\n", s,
                     finished.status().ToString().c_str());
        return 1;
      }
      total_bytes += finished.value();
      ++shards_shipped;
    }
  }
  // The shard boundaries were fixed by the counting pass; rows appearing
  // after it (a still-running exporter?) would otherwise be dropped
  // silently. Symmetric with the shrink check above.
  auto trailing = reader.value().NextRow(&numeric_row, &category_row);
  if (!trailing.ok()) {
    std::fprintf(stderr, "%s\n", trailing.status().ToString().c_str());
    return 1;
  }
  if (trailing.value()) {
    std::fprintf(stderr, "%s grew between passes\n", data_path.c_str());
    return 1;
  }

  const uint64_t reported =
      shard_index < 0
          ? n
          : ranges[static_cast<size_t>(shard_index)].end -
                ranges[static_cast<size_t>(shard_index)].begin;
  std::printf(
      "privatized %llu users under eps = %g (%s stream, mechanism %s, oracle "
      "%s; %u of %u attributes sampled per user)\n",
      static_cast<unsigned long long>(reported), epsilon,
      stream::ReportStreamKindToString(pipeline.value().stream_kind()),
      MechanismKindToString(mechanism), FrequencyOracleKindToString(oracle),
      pipeline.value().k(), d);
  if (connect_mode) {
    std::printf("streamed %zu shard(s) to %s (%llu bytes)\n", shards_shipped,
                endpoint.ToString().c_str(),
                static_cast<unsigned long long>(total_bytes));
  } else {
    std::printf("wrote %zu shard stream(s) to %s.shard-*.ldps (%llu bytes)\n",
                shards_shipped, prefix.c_str(),
                static_cast<unsigned long long>(total_bytes));
  }

  if (!metrics_out.empty()) {
    // Reporter-side telemetry: populated from the run totals (the client
    // has no server session to instrument), same registry JSON shape as
    // the server tools so downstream tooling reads one format.
    obs::MetricsRegistry registry;
    registry.GetCounter("ldp_report_reports_total")->Add(reported);
    registry.GetCounter("ldp_report_bytes_total")->Add(total_bytes);
    registry.GetCounter("ldp_report_shards_shipped_total")
        ->Add(shards_shipped);
    if (!tools::WriteMetricsFile(metrics_out, registry)) return 1;
  }
  return 0;
}
