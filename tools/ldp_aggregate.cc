// ldp_aggregate: the server half of the deployment split. Ingests shard
// inputs — framed report streams written by ldp_report and/or aggregator
// snapshots written by a previous ldp_aggregate --snapshot-out — merges them
// in argument order, and prints ε-LDP estimates with confidence intervals
// for every attribute. The collector configuration (ε, mechanism, oracle) is
// taken from the first input's validated header, so a mismatched client
// population is rejected up front.
//
//   ldp_aggregate --schema FILE [--threads T] [--confidence C]
//                 [--strict] [--max-rejected N] [--snapshot-out FILE]
//                 SHARD...
//
// Streams are ingested concurrently across --threads workers but always
// reduced in argument order, so the output is independent of scheduling:
// shards produced by ldp_report with the same seed reproduce an in-process
// ldp_collect run exactly. With --snapshot-out the merged state is written
// as a snapshot instead of discarded, enabling tree-shaped aggregation
// across server generations.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "aggregate/collector.h"
#include "aggregate/confidence.h"
#include "core/sampled_numeric.h"
#include "data/schema_text.h"
#include "stream/parallel_ingest.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "stream/snapshot.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_aggregate --schema FILE [--threads T] [--confidence C]\n"
      "                     [--strict] [--max-rejected N]\n"
      "                     [--snapshot-out FILE] SHARD...\n"
      "SHARD files are report streams (ldp_report) or snapshots\n"
      "(ldp_aggregate --snapshot-out), merged in argument order.\n");
}

struct ShardInput {
  std::string path;
  bool is_snapshot = false;
};

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read error on '" + path + "'");
  }
  return contents.str();
}

// The collector configuration as recorded in a shard file's preamble.
struct InputConfig {
  double epsilon = 0.0;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
};

Result<InputConfig> PeekConfig(const ShardInput& input) {
  InputConfig config;
  if (input.is_snapshot) {
    std::string bytes;
    LDP_ASSIGN_OR_RETURN(bytes, ReadFile(input.path));
    stream::SnapshotConfig snapshot;
    LDP_ASSIGN_OR_RETURN(snapshot, stream::DecodeSnapshotConfig(bytes));
    config.epsilon = snapshot.epsilon;
    config.mechanism = snapshot.mechanism;
    config.oracle = snapshot.oracle;
    return config;
  }
  std::ifstream in(input.path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + input.path + "'");
  }
  stream::ReportStreamReader reader(&in);
  stream::StreamHeader header;
  LDP_ASSIGN_OR_RETURN(header, reader.ReadHeader());
  config.epsilon = header.epsilon;
  config.mechanism = header.mechanism;
  config.oracle = header.oracle;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  std::string schema_path, snapshot_out;
  double confidence = 0.95;
  unsigned threads = 0;
  stream::ShardIngester::Options ingest_options;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--confidence") {
      confidence = std::strtod(next(), nullptr);
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--strict") {
      ingest_options.strict = true;
    } else if (arg == "--max-rejected") {
      ingest_options.max_rejected = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--snapshot-out") {
      snapshot_out = next();
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
      return 2;
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (schema_path.empty() || shard_paths.empty()) {
    Usage();
    return 2;
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }

  // Classify each input by magic and pull the collector configuration from
  // the first one; every other input is validated against it during decode.
  std::vector<ShardInput> inputs;
  for (const std::string& path : shard_paths) {
    ShardInput input;
    input.path = path;
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
      return 1;
    }
    char magic[4] = {0, 0, 0, 0};
    in.read(magic, 4);
    input.is_snapshot =
        in.gcount() == 4 && stream::LooksLikeSnapshot(std::string(magic, 4));
    inputs.push_back(std::move(input));
  }
  auto config = PeekConfig(inputs.front());
  if (!config.ok()) {
    std::fprintf(stderr, "%s: %s\n", inputs.front().path.c_str(),
                 config.status().ToString().c_str());
    return 1;
  }

  auto mixed_schema = aggregate::ToMixedSchema(schema.value());
  if (!mixed_schema.ok()) {
    std::fprintf(stderr, "%s\n", mixed_schema.status().ToString().c_str());
    return 1;
  }
  auto collector_result = MixedTupleCollector::Create(
      std::move(mixed_schema).value(), config.value().epsilon,
      config.value().mechanism, config.value().oracle);
  if (!collector_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 collector_result.status().ToString().c_str());
    return 1;
  }
  const MixedTupleCollector& collector = collector_result.value();

  // Ingest every input concurrently; the driver reduces in argument order,
  // so the result is independent of scheduling.
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  std::vector<stream::ShardSource> sources;
  sources.reserve(inputs.size());
  for (const ShardInput& input : inputs) {
    sources.push_back(
        input.is_snapshot
            ? stream::SnapshotFileSource(collector, input.path)
            : stream::StreamFileSource(collector, input.path,
                                       ingest_options));
  }
  const auto started = std::chrono::steady_clock::now();
  stream::MultiShardSummary summary;
  auto total_result =
      stream::IngestShardSources(collector, sources, pool.get(), &summary);
  if (!total_result.ok()) {
    std::fprintf(stderr, "%s\n", total_result.status().ToString().c_str());
    return 1;
  }
  MixedAggregator total = std::move(total_result).value();
  const uint64_t total_rejected = summary.total_rejected;
  const uint64_t total_bytes = summary.total_bytes;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  const uint64_t n = total.num_reports();
  const uint32_t d = collector.dimension();
  std::printf(
      "ingested %llu reports from %zu shard(s) (%llu rejected, %llu bytes) "
      "in %.3fs — %.0f reports/s\n",
      static_cast<unsigned long long>(n), inputs.size(),
      static_cast<unsigned long long>(total_rejected),
      static_cast<unsigned long long>(total_bytes), elapsed,
      elapsed > 0.0 ? static_cast<double>(n) / elapsed : 0.0);
  std::printf(
      "eps = %g (mechanism %s, oracle %s; %u of %u attributes per user)\n\n",
      collector.epsilon(), MechanismKindToString(collector.numeric_kind()),
      FrequencyOracleKindToString(collector.categorical_kind()),
      collector.k(), d);

  if (!snapshot_out.empty()) {
    const std::string bytes = stream::EncodeAggregatorSnapshot(total);
    std::ofstream out(snapshot_out, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", snapshot_out.c_str());
      return 1;
    }
    std::printf("wrote merged snapshot to %s (%zu bytes)\n\n",
                snapshot_out.c_str(), bytes.size());
  }

  auto sampled = SampledNumericMechanism::Create(
      collector.numeric_kind(), collector.epsilon(), d);
  std::printf("numeric attribute means (+/- %.0f%% CI, native units):\n",
              confidence * 100.0);
  for (uint32_t col = 0; col < d; ++col) {
    const data::ColumnSpec& spec = schema.value().column(col);
    if (spec.type != data::ColumnType::kNumeric) continue;
    auto mean = total.EstimateMean(col);
    if (!mean.ok()) {
      std::fprintf(stderr, "%s\n", mean.status().ToString().c_str());
      return 1;
    }
    const double mid = (spec.hi + spec.lo) / 2.0;
    const double half = (spec.hi - spec.lo) / 2.0;
    auto interval = aggregate::SampledMeanConfidenceInterval(
        mean.value(), sampled.value(), n, confidence);
    if (!interval.ok()) {
      std::fprintf(stderr, "%s\n", interval.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-20s %12.4f  [%0.4f, %0.4f]\n", spec.name.c_str(),
                mid + half * interval.value().estimate,
                mid + half * interval.value().lo,
                mid + half * interval.value().hi);
  }

  std::printf("\ncategorical attribute frequencies:\n");
  for (uint32_t col = 0; col < d; ++col) {
    const data::ColumnSpec& spec = schema.value().column(col);
    if (spec.type != data::ColumnType::kCategorical) continue;
    auto freqs = total.EstimateFrequencies(col);
    if (!freqs.ok()) {
      std::fprintf(stderr, "%s\n", freqs.status().ToString().c_str());
      return 1;
    }
    std::printf("  %s:", spec.name.c_str());
    for (const double f : freqs.value()) std::printf(" %.4f", f);
    std::printf("\n");
  }
  return 0;
}
