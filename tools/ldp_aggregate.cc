// ldp_aggregate: the server half of the deployment split, an api::Pipeline
// ServerSession at the CLI. Ingests any mix of shard inputs in one
// invocation — framed report streams written by ldp_report (mixed or
// Algorithm-4 numeric), single-epoch aggregator snapshots, and multi-epoch
// session snapshots written by a previous ldp_aggregate --snapshot-out —
// merges them in argument order, and prints ε-LDP estimates with confidence
// intervals for every attribute, per epoch. The pipeline configuration
// (stream kind, ε, mechanism, oracle) is taken from the first input's
// validated preamble, so a mismatched client population is rejected up
// front.
//
//   ldp_aggregate --schema FILE [--threads T] [--confidence C]
//                 [--strict] [--max-rejected N] [--epoch E]
//                 [--snapshot-out FILE] SHARD...
//
// A SHARD argument that is a *directory* is a write-ahead frame log left
// by `ldp_serve --wal-dir` (src/relay/frame_wal.h): its shards replay in
// the exact merge order the crashed collector used, so aggregating a WAL
// directory reproduces that collector's session bit for bit — the offline
// escape hatch when a crashed edge is never restarted.
//
// Report streams and single-epoch snapshots fold into epoch 0; session
// snapshots merge epoch by epoch. --epoch E prints only epoch E's
// estimates (default: every epoch). --threads T gives the ServerSession a
// T-worker ingest pool: inputs decode concurrently within the epoch but are
// always reduced in argument order, so the output is independent of
// scheduling and thread count — shards produced by ldp_report with the same
// seed reproduce an in-process ldp_collect run exactly. With --snapshot-out
// the full session state is written as a session snapshot, enabling
// tree-shaped aggregation across server generations and epochs.

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "data/schema_text.h"
#include "estimate_printer.h"
#include "obs/metrics.h"
#include "relay/frame_wal.h"
#include "tool_flags.h"
#include "stream/parallel_ingest.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "stream/snapshot.h"
#include "util/threadpool.h"

namespace {

using namespace ldp;  // NOLINT: CLI binary

void Usage() {
  std::fprintf(
      stderr,
      "usage: ldp_aggregate --schema FILE [--threads T] [--confidence C]\n"
      "                     [--strict] [--max-rejected N] [--epoch E]\n"
      "                     [--snapshot-out FILE] [--metrics-out FILE]\n"
      "                     [--version] SHARD...\n"
      "SHARD files are report streams (ldp_report), aggregator snapshots,\n"
      "or session snapshots (ldp_aggregate --snapshot-out), merged in\n"
      "argument order; a SHARD directory is an ldp_serve --wal-dir frame\n"
      "log, replayed in its logged merge order. --epoch E prints only\n"
      "epoch E. --metrics-out dumps the run's telemetry registry as JSON\n"
      "at exit.\n");
}

bool IsDirectory(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

// Reads at most the first `limit` bytes — enough for any preamble; snapshot
// files can be huge and are read in full only once, during ingestion.
Result<std::string> ReadFilePrefix(const std::string& path, size_t limit) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::string prefix(limit, '\0');
  in.read(prefix.data(), static_cast<std::streamsize>(limit));
  if (in.bad()) {
    return Status::IoError("read error on '" + path + "'");
  }
  prefix.resize(static_cast<size_t>(in.gcount()));
  return prefix;
}

// The pipeline configuration as recorded in a shard file's preamble, plus
// the epoch count a session snapshot carries.
struct InputConfig {
  stream::ReportStreamKind kind = stream::ReportStreamKind::kMixed;
  double epsilon = 0.0;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  uint32_t epochs = 1;
};

Result<InputConfig> PeekConfig(const std::string& path) {
  InputConfig config;
  if (IsDirectory(path)) {
    relay::WalDirPeek peek;
    LDP_ASSIGN_OR_RETURN(peek, relay::PeekWalDir(path));
    stream::StreamHeader header;
    LDP_ASSIGN_OR_RETURN(header,
                         stream::DecodeStreamHeader(peek.header_bytes));
    config.kind = header.kind;
    config.epsilon = header.epsilon;
    config.mechanism = header.mechanism;
    config.oracle = header.oracle;
    config.epochs = peek.epochs;
    return config;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open '" + path + "'");
  }
  char magic_bytes[4] = {0, 0, 0, 0};
  in.read(magic_bytes, 4);
  if (in.gcount() != 4) {
    return Status::InvalidArgument("input shorter than a magic");
  }
  const uint32_t magic = internal_wire::LoadLittleEndian<uint32_t>(magic_bytes);
  if (magic == stream::kStreamMagic) {
    in.seekg(0);
    stream::ReportStreamReader reader(&in);
    stream::StreamHeader header;
    LDP_ASSIGN_OR_RETURN(header, reader.ReadHeader());
    config.kind = header.kind;
    config.epsilon = header.epsilon;
    config.mechanism = header.mechanism;
    config.oracle = header.oracle;
    return config;
  }
  std::string bytes;
  LDP_ASSIGN_OR_RETURN(bytes, ReadFilePrefix(path, 64));
  if (magic == api::kSessionSnapshotMagic) {
    api::SessionSnapshotConfig session;
    LDP_ASSIGN_OR_RETURN(session, api::DecodeSessionSnapshotConfig(bytes));
    config.kind = session.kind;
    config.epsilon = session.epsilon;
    config.mechanism = session.mechanism;
    config.oracle = session.oracle;
    config.epochs = session.epochs;
    return config;
  }
  stream::SnapshotConfig snapshot;
  LDP_ASSIGN_OR_RETURN(snapshot, stream::DecodeSnapshotConfig(bytes));
  config.kind = snapshot.kind;
  config.epsilon = snapshot.epsilon;
  config.mechanism = snapshot.mechanism;
  config.oracle = snapshot.oracle;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  if (tools::HandleVersionFlag(argc, argv, "ldp_aggregate")) return 0;
  std::string schema_path, snapshot_out, metrics_out;
  double confidence = 0.95;
  unsigned threads = 0;
  long selected_epoch = -1;
  stream::ShardIngester::Options ingest_options;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--schema") {
      schema_path = next();
    } else if (arg == "--confidence") {
      confidence = std::strtod(next(), nullptr);
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--strict") {
      ingest_options.strict = true;
    } else if (arg == "--max-rejected") {
      ingest_options.max_rejected = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--epoch") {
      const char* text = next();
      char* end = nullptr;
      selected_epoch = std::strtol(text, &end, 10);
      if (end == text || *end != '\0' || selected_epoch < 0) {
        Usage();
        return 2;
      }
    } else if (arg == "--snapshot-out") {
      snapshot_out = next();
    } else if (arg == "--metrics-out") {
      metrics_out = next();
    } else if (!arg.empty() && arg[0] == '-') {
      Usage();
      return 2;
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (schema_path.empty() || shard_paths.empty()) {
    Usage();
    return 2;
  }

  auto schema = data::ReadSchemaFile(schema_path);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }

  // Pull the pipeline configuration from the first input (every other input
  // is validated against it during decode) and size the epoch plan to the
  // largest session any input carries.
  auto first = PeekConfig(shard_paths.front());
  if (!first.ok()) {
    std::fprintf(stderr, "%s: %s\n", shard_paths.front().c_str(),
                 first.status().ToString().c_str());
    return 1;
  }
  uint32_t max_epochs = first.value().epochs;
  for (size_t i = 1; i < shard_paths.size(); ++i) {
    auto peeked = PeekConfig(shard_paths[i]);
    if (peeked.ok()) max_epochs = std::max(max_epochs, peeked.value().epochs);
  }

  auto config = api::PipelineConfig::FromSchema(schema.value(),
                                                first.value().epsilon);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  config.value().mechanism = first.value().mechanism;
  config.value().oracle = first.value().oracle;
  config.value().wire =
      first.value().kind == stream::ReportStreamKind::kSampledNumeric
          ? api::WirePreference::kNumeric
          : api::WirePreference::kMixed;
  config.value().plan.epochs = max_epochs;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  obs::MetricsRegistry registry;
  api::ServerSessionOptions session_options;
  session_options.ingest = ingest_options;
  // The session owns the ingest pool: IngestInputs falls back to it, and
  // any future Feed-based transport would decode on the same workers.
  session_options.ingest_threads = threads;
  session_options.metrics = &registry;
  auto server = pipeline.value().NewServer(session_options);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }
  api::ServerSession& session = server.value();

  // Inputs merge in argument order; WAL directories replay inline between
  // the file batches that surround them. A multi-epoch WAL replays relative
  // to the session's current epoch, so pass it first when mixing it with
  // session snapshots that also advance epochs.
  const auto started = std::chrono::steady_clock::now();
  stream::MultiShardSummary summary;
  size_t batch_start = 0;
  auto ingest_batch = [&](size_t end) -> Status {
    if (batch_start == end) return Status::OK();
    const std::vector<std::string> batch(shard_paths.begin() + batch_start,
                                         shard_paths.begin() + end);
    batch_start = end;
    stream::MultiShardSummary part;
    LDP_RETURN_IF_ERROR(session.IngestInputs(batch, nullptr, &part));
    summary.total_reports += part.total_reports;
    summary.total_rejected += part.total_rejected;
    summary.total_bytes += part.total_bytes;
    return Status::OK();
  };
  Status ingested = Status::OK();
  for (size_t i = 0; i < shard_paths.size() && ingested.ok(); ++i) {
    if (!IsDirectory(shard_paths[i])) continue;
    ingested = ingest_batch(i);
    if (!ingested.ok()) break;
    batch_start = i + 1;
    relay::WalReplaySummary walsum;
    ingested = relay::ReplayWalDir(shard_paths[i], &session, nullptr, nullptr,
                                   &walsum);
    if (walsum.shards_corrupt > 0) {
      std::fprintf(stderr, "%s: %llu corrupt shard(s) skipped\n",
                   shard_paths[i].c_str(),
                   static_cast<unsigned long long>(walsum.shards_corrupt));
    }
    std::printf("replayed WAL %s: %llu shard(s), %llu frame(s), %llu bytes\n",
                shard_paths[i].c_str(),
                static_cast<unsigned long long>(walsum.shards_replayed),
                static_cast<unsigned long long>(walsum.frames_replayed),
                static_cast<unsigned long long>(walsum.bytes_replayed));
    summary.total_bytes += walsum.bytes_replayed;
  }
  if (ingested.ok()) ingested = ingest_batch(shard_paths.size());
  if (!ingested.ok()) {
    std::fprintf(stderr, "%s\n", ingested.ToString().c_str());
    return 1;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();

  const uint32_t d = pipeline.value().dimension();
  std::printf(
      "ingested %llu reports from %zu input(s) (%llu rejected, %llu bytes) "
      "in %.3fs — %.0f reports/s\n",
      static_cast<unsigned long long>(summary.total_reports),
      shard_paths.size(),
      static_cast<unsigned long long>(summary.total_rejected),
      static_cast<unsigned long long>(summary.total_bytes), elapsed,
      elapsed > 0.0 ? static_cast<double>(summary.total_reports) / elapsed
                    : 0.0);
  std::printf(
      "%s stream, eps = %g/epoch (mechanism %s, oracle %s; %u of %u "
      "attributes per user); %u epoch(s), eps spent %g\n\n",
      stream::ReportStreamKindToString(pipeline.value().stream_kind()),
      pipeline.value().epsilon(),
      MechanismKindToString(first.value().mechanism),
      FrequencyOracleKindToString(first.value().oracle),
      pipeline.value().k(), d, session.num_epochs(),
      session.epsilon_spent());

  if (!snapshot_out.empty()) {
    const std::string bytes = session.Snapshot();
    std::ofstream out(snapshot_out, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "write error on %s\n", snapshot_out.c_str());
      return 1;
    }
    std::printf("wrote session snapshot to %s (%zu bytes, %u epoch(s))\n\n",
                snapshot_out.c_str(), bytes.size(), session.num_epochs());
  }

  if (!metrics_out.empty() && !tools::WriteMetricsFile(metrics_out, registry)) {
    return 1;
  }

  if (selected_epoch >= 0 &&
      static_cast<uint32_t>(selected_epoch) >= session.num_epochs()) {
    std::fprintf(stderr, "epoch %ld not present (session has %u)\n",
                 selected_epoch, session.num_epochs());
    return 1;
  }

  return tools::PrintSessionEstimates(schema.value(), pipeline.value(),
                                      session, confidence, selected_epoch);
}
