// ldp_generate: writes a synthetic census dataset (CSV + schema sidecar) for
// trying out the collection pipeline without real microdata.
//
//   ldp_generate --dataset br|mx --rows N --out PREFIX [--seed S]
//                [--version]
//
// Produces PREFIX.csv and PREFIX.schema, consumable by ldp_collect.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "data/census.h"
#include "data/csv.h"
#include "data/schema_text.h"
#include "util/build_info.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: ldp_generate --dataset br|mx --rows N --out PREFIX "
               "[--seed S] [--version]\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", ldp::BuildInfoVersionLine("ldp_generate").c_str());
      return 0;
    }
  }
  std::string dataset = "br";
  std::string prefix;
  uint64_t rows = 100000;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--out") {
      prefix = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else {
      Usage();
      return 2;
    }
  }
  if (prefix.empty() || (dataset != "br" && dataset != "mx")) {
    Usage();
    return 2;
  }

  auto table = dataset == "br" ? ldp::data::MakeBrazilCensus(rows, seed)
                               : ldp::data::MakeMexicoCensus(rows, seed);
  if (!table.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  const ldp::Status csv_status =
      ldp::data::WriteCsv(table.value(), prefix + ".csv");
  if (!csv_status.ok()) {
    std::fprintf(stderr, "%s\n", csv_status.ToString().c_str());
    return 1;
  }
  const ldp::Status schema_status =
      ldp::data::WriteSchemaFile(table.value().schema(), prefix + ".schema");
  if (!schema_status.ok()) {
    std::fprintf(stderr, "%s\n", schema_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %llu rows to %s.csv (+ %s.schema)\n",
              static_cast<unsigned long long>(rows), prefix.c_str(),
              prefix.c_str());
  return 0;
}
