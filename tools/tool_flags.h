// Shared CLI flag parsers for the tools. `--oracle`, `--mechanism`, and
// `--stream` must accept exactly the same vocabulary in every binary
// (ldp_collect, ldp_report, ldp_serve); one parser per flag keeps a new
// oracle or mechanism kind from being silently unreachable in one tool.

#ifndef LDP_TOOLS_TOOL_FLAGS_H_
#define LDP_TOOLS_TOOL_FLAGS_H_

#include <string>

#include "api/pipeline.h"
#include "core/mechanism.h"
#include "frequency/frequency_oracle.h"

namespace ldp::tools {

/// "oue" | "grr" | "sue" | "olh" | "he" | "the".
inline bool ParseOracleFlag(const std::string& name,
                            FrequencyOracleKind* kind) {
  if (name == "oue") *kind = FrequencyOracleKind::kOue;
  else if (name == "grr") *kind = FrequencyOracleKind::kGrr;
  else if (name == "sue") *kind = FrequencyOracleKind::kSue;
  else if (name == "olh") *kind = FrequencyOracleKind::kOlh;
  else if (name == "he") *kind = FrequencyOracleKind::kHe;
  else if (name == "the") *kind = FrequencyOracleKind::kThe;
  else return false;
  return true;
}

/// "hm" | "pm".
inline bool ParseMechanismFlag(const std::string& name, MechanismKind* kind) {
  if (name == "hm") *kind = MechanismKind::kHybrid;
  else if (name == "pm") *kind = MechanismKind::kPiecewise;
  else return false;
  return true;
}

/// "auto" | "mixed" | "numeric".
inline bool ParseWireFlag(const std::string& name, api::WirePreference* wire) {
  if (name == "auto") *wire = api::WirePreference::kAuto;
  else if (name == "mixed") *wire = api::WirePreference::kMixed;
  else if (name == "numeric") *wire = api::WirePreference::kNumeric;
  else return false;
  return true;
}

}  // namespace ldp::tools

#endif  // LDP_TOOLS_TOOL_FLAGS_H_
