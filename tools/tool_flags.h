// Shared CLI flag parsers for the tools. `--oracle`, `--mechanism`, and
// `--stream` must accept exactly the same vocabulary in every binary
// (ldp_collect, ldp_report, ldp_serve); one parser per flag keeps a new
// oracle or mechanism kind from being silently unreachable in one tool.

#ifndef LDP_TOOLS_TOOL_FLAGS_H_
#define LDP_TOOLS_TOOL_FLAGS_H_

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "api/pipeline.h"
#include "core/mechanism.h"
#include "frequency/frequency_oracle.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "util/build_info.h"

namespace ldp::tools {

/// Uniform `--version` handling: if the flag is present anywhere on the
/// command line, print the build-info line and return true (callers exit 0).
/// Scanned before normal flag parsing so `ldp_x --version` never trips the
/// required-flag checks.
inline bool HandleVersionFlag(int argc, char** argv, const char* tool_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", BuildInfoVersionLine(tool_name).c_str());
      return true;
    }
  }
  return false;
}

/// Writes the registry's JSON exposition to `path` for `--metrics-out`.
/// Returns false (with a message on stderr) on write failure.
inline bool WriteMetricsFile(const std::string& path,
                             const obs::MetricsRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  const std::string json = obs::ToJson(registry);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "write error on %s\n", path.c_str());
    return false;
  }
  return true;
}

/// "oue" | "grr" | "sue" | "olh" | "he" | "the".
inline bool ParseOracleFlag(const std::string& name,
                            FrequencyOracleKind* kind) {
  if (name == "oue") *kind = FrequencyOracleKind::kOue;
  else if (name == "grr") *kind = FrequencyOracleKind::kGrr;
  else if (name == "sue") *kind = FrequencyOracleKind::kSue;
  else if (name == "olh") *kind = FrequencyOracleKind::kOlh;
  else if (name == "he") *kind = FrequencyOracleKind::kHe;
  else if (name == "the") *kind = FrequencyOracleKind::kThe;
  else return false;
  return true;
}

/// "hm" | "pm".
inline bool ParseMechanismFlag(const std::string& name, MechanismKind* kind) {
  if (name == "hm") *kind = MechanismKind::kHybrid;
  else if (name == "pm") *kind = MechanismKind::kPiecewise;
  else return false;
  return true;
}

/// "auto" | "mixed" | "numeric".
inline bool ParseWireFlag(const std::string& name, api::WirePreference* wire) {
  if (name == "auto") *wire = api::WirePreference::kAuto;
  else if (name == "mixed") *wire = api::WirePreference::kMixed;
  else if (name == "numeric") *wire = api::WirePreference::kNumeric;
  else return false;
  return true;
}

}  // namespace ldp::tools

#endif  // LDP_TOOLS_TOOL_FLAGS_H_
