// Shared CLI flag parsers for the tools. `--oracle`, `--mechanism`,
// `--stream`, and the campaign-identity flags (`--reporter-id`,
// `--campaign-key`, `--node-id`) must accept exactly the same vocabulary in
// every binary (ldp_collect, ldp_report, ldp_serve); one parser per flag
// keeps a new oracle kind — or an identity validation rule — from being
// silently unreachable or different in one tool.

#ifndef LDP_TOOLS_TOOL_FLAGS_H_
#define LDP_TOOLS_TOOL_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "api/pipeline.h"
#include "core/mechanism.h"
#include "frequency/frequency_oracle.h"
#include "net/protocol.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "util/build_info.h"

namespace ldp::tools {

/// Uniform `--version` handling: if the flag is present anywhere on the
/// command line, print the build-info line and return true (callers exit 0).
/// Scanned before normal flag parsing so `ldp_x --version` never trips the
/// required-flag checks.
inline bool HandleVersionFlag(int argc, char** argv, const char* tool_name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", BuildInfoVersionLine(tool_name).c_str());
      return true;
    }
  }
  return false;
}

/// Writes the registry's JSON exposition to `path` for `--metrics-out`.
/// Returns false (with a message on stderr) on write failure.
inline bool WriteMetricsFile(const std::string& path,
                             const obs::MetricsRegistry& registry) {
  std::ofstream out(path, std::ios::trunc);
  const std::string json = obs::ToJson(registry);
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "write error on %s\n", path.c_str());
    return false;
  }
  return true;
}

/// "oue" | "grr" | "sue" | "olh" | "he" | "the".
inline bool ParseOracleFlag(const std::string& name,
                            FrequencyOracleKind* kind) {
  if (name == "oue") *kind = FrequencyOracleKind::kOue;
  else if (name == "grr") *kind = FrequencyOracleKind::kGrr;
  else if (name == "sue") *kind = FrequencyOracleKind::kSue;
  else if (name == "olh") *kind = FrequencyOracleKind::kOlh;
  else if (name == "he") *kind = FrequencyOracleKind::kHe;
  else if (name == "the") *kind = FrequencyOracleKind::kThe;
  else return false;
  return true;
}

/// "hm" | "pm".
inline bool ParseMechanismFlag(const std::string& name, MechanismKind* kind) {
  if (name == "hm") *kind = MechanismKind::kHybrid;
  else if (name == "pm") *kind = MechanismKind::kPiecewise;
  else return false;
  return true;
}

/// The campaign-identity flags (`--reporter-id`, `--campaign-key`,
/// `--node-id`) parsed through one table so the validation rules — the
/// protocol's reporter-id length bound, strict numeric node ids — cannot
/// drift between ldp_report, ldp_serve, and ldp_collect.
struct IdentityFlags {
  std::string reporter_id;   ///< stable per-user id carried in v3 HELLOs
  std::string campaign_key;  ///< shared HMAC secret; enables protocol v3
  uint64_t node_id = 0;      ///< relay edge identity for snapshot folding
};

/// Which identity flags a given tool accepts (OR of these bits).
enum IdentityFlagMask : unsigned {
  kFlagReporterId = 1u << 0,
  kFlagCampaignKey = 1u << 1,
  kFlagNodeId = 1u << 2,
};

/// Consumes `arg` when it is one of the identity flags enabled in `allowed`,
/// pulling the operand through the tool's `next()` callback. Returns false
/// when `arg` is not an enabled identity flag (the caller keeps matching its
/// own flags). On a malformed operand the flag is still consumed and *error
/// says why; callers print it and exit with usage.
template <typename NextFn>
bool ParseIdentityFlag(const std::string& arg, NextFn&& next, unsigned allowed,
                       IdentityFlags* flags, std::string* error) {
  if (arg == "--reporter-id" && (allowed & kFlagReporterId) != 0) {
    const std::string value = next();
    if (value.empty()) {
      *error = "--reporter-id must be non-empty";
    } else if (value.size() > net::kMaxReporterIdBytes) {
      *error = "--reporter-id exceeds the " +
               std::to_string(net::kMaxReporterIdBytes) +
               "-byte protocol bound";
    } else {
      flags->reporter_id = value;
    }
    return true;
  }
  if (arg == "--campaign-key" && (allowed & kFlagCampaignKey) != 0) {
    const std::string value = next();
    if (value.empty()) {
      *error = "--campaign-key must be non-empty";
    } else {
      flags->campaign_key = value;
    }
    return true;
  }
  if (arg == "--node-id" && (allowed & kFlagNodeId) != 0) {
    const char* value = next();
    char* end = nullptr;
    flags->node_id = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
      *error = "--node-id must be a non-negative integer";
    }
    return true;
  }
  return false;
}

/// Reporter-side pairing rule: the campaign key signs HELLOs *for* a
/// reporter id, and an id without the key would leave the wire
/// unauthenticated — both halves must be given together.
inline bool CheckReporterIdentity(const IdentityFlags& flags,
                                  std::string* error) {
  if (flags.campaign_key.empty() == flags.reporter_id.empty()) return true;
  *error = flags.campaign_key.empty()
               ? "--reporter-id requires --campaign-key"
               : "--campaign-key requires --reporter-id";
  return false;
}

/// "auto" | "mixed" | "numeric".
inline bool ParseWireFlag(const std::string& name, api::WirePreference* wire) {
  if (name == "auto") *wire = api::WirePreference::kAuto;
  else if (name == "mixed") *wire = api::WirePreference::kMixed;
  else if (name == "numeric") *wire = api::WirePreference::kNumeric;
  else return false;
  return true;
}

}  // namespace ldp::tools

#endif  // LDP_TOOLS_TOOL_FLAGS_H_
