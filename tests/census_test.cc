#include "data/census.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace ldp::data {
namespace {

TEST(BrazilCensusTest, ShapeMatchesPaperDataset) {
  auto dataset = MakeBrazilCensus(1000, 1);
  ASSERT_TRUE(dataset.ok());
  const Schema& schema = dataset.value().schema();
  EXPECT_EQ(schema.num_columns(), 16u);       // 16 attributes
  EXPECT_EQ(schema.NumNumericColumns(), 6u);  // 6 numeric
  EXPECT_EQ(schema.NumCategoricalColumns(), 10u);
  EXPECT_TRUE(schema.FindColumn(kIncomeColumn).ok());
}

TEST(MexicoCensusTest, ShapeMatchesPaperDataset) {
  auto dataset = MakeMexicoCensus(1000, 1);
  ASSERT_TRUE(dataset.ok());
  const Schema& schema = dataset.value().schema();
  EXPECT_EQ(schema.num_columns(), 19u);       // 19 attributes
  EXPECT_EQ(schema.NumNumericColumns(), 5u);  // 5 numeric
  EXPECT_EQ(schema.NumCategoricalColumns(), 14u);
  EXPECT_TRUE(schema.FindColumn(kIncomeColumn).ok());
}

TEST(CensusTest, DeterministicInSeed) {
  auto a = MakeBrazilCensus(500, 42);
  auto b = MakeBrazilCensus(500, 42);
  auto c = MakeBrazilCensus(500, 43);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a.value().numeric_column(0), b.value().numeric_column(0));
  EXPECT_NE(a.value().numeric_column(0), c.value().numeric_column(0));
}

TEST(CensusTest, ValuesRespectSchemaDomains) {
  auto dataset = MakeMexicoCensus(5000, 2);
  ASSERT_TRUE(dataset.ok());
  const Schema& schema = dataset.value().schema();
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const ColumnSpec& spec = schema.column(col);
    if (spec.type == ColumnType::kNumeric) {
      for (const double x : dataset.value().numeric_column(col)) {
        ASSERT_GE(x, spec.lo) << spec.name;
        ASSERT_LE(x, spec.hi) << spec.name;
      }
    } else {
      for (const uint32_t v : dataset.value().categorical_column(col)) {
        ASSERT_LT(v, spec.domain_size) << spec.name;
      }
    }
  }
}

TEST(CensusTest, IncomeIsRightSkewed) {
  auto dataset = MakeBrazilCensus(50000, 3);
  ASSERT_TRUE(dataset.ok());
  const uint32_t income = dataset.value().schema().FindColumn(kIncomeColumn)
                              .value();
  RunningStats stats;
  for (const double x : dataset.value().numeric_column(income)) stats.Add(x);
  // Log-normal-like: mean well above median territory, long right tail.
  EXPECT_GT(stats.Max(), 5.0 * stats.Mean());
  EXPECT_GT(stats.Mean(), 0.0);
}

TEST(CensusTest, IncomeCorrelatesWithSchooling) {
  // The latent factor must induce a clearly positive correlation, otherwise
  // the regression tasks of Section VI-B would be unlearnable.
  auto dataset = MakeBrazilCensus(50000, 4);
  ASSERT_TRUE(dataset.ok());
  const auto& d = dataset.value();
  const uint32_t income = d.schema().FindColumn(kIncomeColumn).value();
  const uint32_t schooling = d.schema().FindColumn("years_schooling").value();
  RunningStats inc, sch;
  for (uint64_t i = 0; i < d.num_rows(); ++i) {
    inc.Add(d.numeric(i, income));
    sch.Add(d.numeric(i, schooling));
  }
  double cov = 0.0;
  for (uint64_t i = 0; i < d.num_rows(); ++i) {
    cov += (d.numeric(i, income) - inc.Mean()) *
           (d.numeric(i, schooling) - sch.Mean());
  }
  cov /= static_cast<double>(d.num_rows());
  const double corr = cov / (inc.StdDev() * sch.StdDev());
  EXPECT_GT(corr, 0.2);
}

TEST(CensusTest, CategoricalMarginalsAreSkewedAndFull) {
  auto dataset = MakeMexicoCensus(50000, 5);
  ASSERT_TRUE(dataset.ok());
  for (const uint32_t col :
       dataset.value().schema().CategoricalColumnIndices()) {
    auto freqs = dataset.value().ColumnFrequencies(col);
    ASSERT_TRUE(freqs.ok());
    double total = 0.0, max_f = 0.0;
    for (const double f : freqs.value()) {
      total += f;
      max_f = std::max(max_f, f);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    // No category should swallow the entire column.
    EXPECT_LT(max_f, 0.995)
        << dataset.value().schema().column(col).name;
  }
}

TEST(CensusTest, LiteracyCorrelatesWithIncome) {
  // Spot-check that categorical attributes carry income signal (tilts).
  auto dataset = MakeBrazilCensus(50000, 6);
  ASSERT_TRUE(dataset.ok());
  const auto& d = dataset.value();
  const uint32_t income = d.schema().FindColumn(kIncomeColumn).value();
  const uint32_t literacy = d.schema().FindColumn("literacy").value();
  RunningStats literate, illiterate;
  for (uint64_t i = 0; i < d.num_rows(); ++i) {
    (d.category(i, literacy) == 0 ? literate : illiterate)
        .Add(d.numeric(i, income));
  }
  ASSERT_GT(literate.count(), 0u);
  ASSERT_GT(illiterate.count(), 0u);
  EXPECT_GT(literate.Mean(), illiterate.Mean());
}

TEST(CensusTest, ZeroRowsIsValid) {
  auto dataset = MakeBrazilCensus(0, 7);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().num_rows(), 0u);
}

}  // namespace
}  // namespace ldp::data
