#include "ml/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace ldp::ml {
namespace {

// Finite-difference gradient check shared by all loss kinds.
void CheckGradientNumerically(LossKind kind, double lambda,
                              const std::vector<double>& x, double y,
                              const std::vector<double>& beta) {
  const ErmObjective objective(kind, lambda);
  std::vector<double> grad;
  objective.ExampleGradient(x.data(), y, beta, &grad);
  ASSERT_EQ(grad.size(), beta.size());
  const double h = 1e-6;
  for (size_t j = 0; j < beta.size(); ++j) {
    std::vector<double> plus = beta, minus = beta;
    plus[j] += h;
    minus[j] -= h;
    const double numeric =
        (objective.ExampleLoss(x.data(), y, plus) -
         objective.ExampleLoss(x.data(), y, minus)) /
        (2.0 * h);
    EXPECT_NEAR(grad[j], numeric, 1e-4)
        << LossKindToString(kind) << " coordinate " << j;
  }
}

class LossGradientTest : public ::testing::TestWithParam<LossKind> {};

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradientTest,
                         ::testing::Values(LossKind::kSquared,
                                           LossKind::kLogistic,
                                           LossKind::kHinge));

TEST_P(LossGradientTest, GradientMatchesFiniteDifference) {
  // Points chosen away from the hinge kink so the subgradient is a gradient.
  CheckGradientNumerically(GetParam(), 1e-3, {0.5, -0.3, 0.8}, 1.0,
                           {0.2, 0.1, -0.4});
  CheckGradientNumerically(GetParam(), 0.0, {0.9, 0.2, -0.1}, -1.0,
                           {-0.5, 0.3, 0.2});
  CheckGradientNumerically(GetParam(), 0.1, {0.0, 0.0, 0.0}, 1.0,
                           {0.4, -0.2, 0.6});
}

TEST(LossTest, SquaredLossValues) {
  const ErmObjective objective(LossKind::kSquared, 0.0);
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> beta = {0.5, 0.25};
  // score = 1.0, y = 0 → loss 1.
  EXPECT_NEAR(objective.ExampleLoss(x.data(), 0.0, beta), 1.0, 1e-12);
  EXPECT_NEAR(objective.Score(x.data(), beta), 1.0, 1e-12);
}

TEST(LossTest, LogisticLossValues) {
  const ErmObjective objective(LossKind::kLogistic, 0.0);
  const std::vector<double> x = {1.0};
  const std::vector<double> beta = {0.0};
  // score 0 → log(2).
  EXPECT_NEAR(objective.ExampleLoss(x.data(), 1.0, beta), std::log(2.0),
              1e-12);
}

TEST(LossTest, LogisticLossStableAtExtremeScores) {
  const ErmObjective objective(LossKind::kLogistic, 0.0);
  const std::vector<double> x = {1.0};
  const std::vector<double> beta_big = {500.0};
  // Correctly-classified extreme margin: loss → 0 without overflow.
  EXPECT_NEAR(objective.ExampleLoss(x.data(), 1.0, beta_big), 0.0, 1e-12);
  // Misclassified extreme margin: loss ≈ |margin| without overflow.
  const double loss = objective.ExampleLoss(x.data(), -1.0, beta_big);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 500.0, 1e-6);
}

TEST(LossTest, HingeLossValues) {
  const ErmObjective objective(LossKind::kHinge, 0.0);
  const std::vector<double> x = {1.0};
  std::vector<double> beta = {2.0};
  // margin = 2 > 1: no loss, no gradient.
  EXPECT_EQ(objective.ExampleLoss(x.data(), 1.0, beta), 0.0);
  std::vector<double> grad;
  objective.ExampleGradient(x.data(), 1.0, beta, &grad);
  EXPECT_EQ(grad[0], 0.0);
  // margin = -2: loss 3, gradient -y·x.
  EXPECT_EQ(objective.ExampleLoss(x.data(), -1.0, beta), 3.0);
  objective.ExampleGradient(x.data(), -1.0, beta, &grad);
  EXPECT_EQ(grad[0], 1.0);
}

TEST(LossTest, RegularizerAddsLambdaBeta) {
  const ErmObjective with_reg(LossKind::kSquared, 0.5);
  const ErmObjective without_reg(LossKind::kSquared, 0.0);
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> beta = {0.4, -0.6};
  EXPECT_NEAR(with_reg.ExampleLoss(x.data(), 0.0, beta) -
                  without_reg.ExampleLoss(x.data(), 0.0, beta),
              0.25 * (0.16 + 0.36), 1e-12);
  std::vector<double> g1, g0;
  with_reg.ExampleGradient(x.data(), 0.0, beta, &g1);
  without_reg.ExampleGradient(x.data(), 0.0, beta, &g0);
  EXPECT_NEAR(g1[1] - g0[1], 0.5 * -0.6, 1e-12);
}

TEST(ClipGradientTest, ClipsEveryCoordinate) {
  std::vector<double> grad = {-3.0, -1.0, 0.5, 1.0, 7.0};
  ClipGradient(&grad);
  EXPECT_EQ(grad, (std::vector<double>{-1.0, -1.0, 0.5, 1.0, 1.0}));
}

TEST(LossKindTest, Names) {
  EXPECT_STREQ(LossKindToString(LossKind::kSquared), "linear");
  EXPECT_STREQ(LossKindToString(LossKind::kLogistic), "logistic");
  EXPECT_STREQ(LossKindToString(LossKind::kHinge), "svm");
}

}  // namespace
}  // namespace ldp::ml
