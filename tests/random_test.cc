#include "util/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "test_util.h"

namespace ldp {
namespace {

using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;
using ::ldp::testing::VarianceRelTolerance;

constexpr uint64_t kSamples = 200000;

TEST(RngTest, EqualSeedsGiveEqualStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkIsDeterministicAndIndependent) {
  Rng a(7), b(7);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // The fork and the parent produce different streams.
  Rng parent(7);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, Uniform01InRangeAndUniform) {
  Rng rng(11);
  RunningStats stats =
      SampleStats(kSamples, &rng, [](Rng* r) { return r->Uniform01(); });
  EXPECT_GE(stats.Min(), 0.0);
  EXPECT_LT(stats.Max(), 1.0);
  EXPECT_NEAR(stats.Mean(), 0.5, MeanTolerance(stats));
  EXPECT_NEAR(stats.SampleVariance(), 1.0 / 12.0,
              VarianceRelTolerance(kSamples) / 12.0);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(12);
  RunningStats stats = SampleStats(
      kSamples, &rng, [](Rng* r) { return r->Uniform(-3.0, 5.0); });
  EXPECT_GE(stats.Min(), -3.0);
  EXPECT_LT(stats.Max(), 5.0);
  EXPECT_NEAR(stats.Mean(), 1.0, MeanTolerance(stats));
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 3));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, UniformIndexStaysBelowBound) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.UniformIndex(7), 7u);
}

TEST(RngTest, UniformIndexSingleton) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformIndex(1), 0u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(16);
  for (const double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    RunningStats stats = SampleStats(
        50000, &rng, [p](Rng* r) { return r->Bernoulli(p) ? 1.0 : 0.0; });
    EXPECT_NEAR(stats.Mean(), p, MeanTolerance(stats)) << "p=" << p;
  }
}

TEST(RngTest, BernoulliClampsOutOfRangeProbabilities) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(18);
  RunningStats stats =
      SampleStats(kSamples, &rng, [](Rng* r) { return r->Gaussian(); });
  EXPECT_NEAR(stats.Mean(), 0.0, MeanTolerance(stats));
  EXPECT_NEAR(stats.SampleVariance(), 1.0, VarianceRelTolerance(kSamples));
}

TEST(RngTest, GaussianWithParamsMoments) {
  Rng rng(19);
  RunningStats stats = SampleStats(
      kSamples, &rng, [](Rng* r) { return r->Gaussian(2.5, 0.5); });
  EXPECT_NEAR(stats.Mean(), 2.5, MeanTolerance(stats));
  EXPECT_NEAR(stats.SampleVariance(), 0.25,
              0.25 * VarianceRelTolerance(kSamples));
}

TEST(RngTest, ExponentialMoments) {
  Rng rng(20);
  const double lambda = 2.0;
  RunningStats stats = SampleStats(
      kSamples, &rng, [lambda](Rng* r) { return r->Exponential(lambda); });
  EXPECT_GE(stats.Min(), 0.0);
  EXPECT_NEAR(stats.Mean(), 1.0 / lambda, MeanTolerance(stats));
  EXPECT_NEAR(stats.SampleVariance(), 1.0 / (lambda * lambda),
              VarianceRelTolerance(kSamples) / (lambda * lambda));
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(21);
  const double scale = 1.5;
  RunningStats stats = SampleStats(
      kSamples, &rng, [scale](Rng* r) { return r->Laplace(scale); });
  EXPECT_NEAR(stats.Mean(), 0.0, MeanTolerance(stats));
  // Var[Laplace(b)] = 2 b².
  EXPECT_NEAR(stats.SampleVariance(), 2.0 * scale * scale,
              2.0 * scale * scale * VarianceRelTolerance(kSamples));
}

TEST(RngTest, GeometricMatchesFailureCountDistribution) {
  Rng rng(22);
  const double p = 0.3;
  RunningStats stats = SampleStats(kSamples, &rng, [p](Rng* r) {
    return static_cast<double>(r->Geometric(p));
  });
  // E = (1-p)/p, Var = (1-p)/p².
  EXPECT_NEAR(stats.Mean(), (1.0 - p) / p, MeanTolerance(stats));
  EXPECT_NEAR(stats.SampleVariance(), (1.0 - p) / (p * p),
              (1.0 - p) / (p * p) * VarianceRelTolerance(kSamples));
}

TEST(RngTest, GeometricWithCertainSuccessIsZero) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == std::numeric_limits<uint64_t>::max());
  Rng rng(24);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace ldp
