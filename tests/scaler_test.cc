#include "core/scaler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/piecewise.h"
#include "test_util.h"

namespace ldp {
namespace {

TEST(DomainScalerTest, CreateValidatesBounds) {
  EXPECT_TRUE(DomainScaler::Create(0.0, 10.0).ok());
  EXPECT_FALSE(DomainScaler::Create(5.0, 5.0).ok());
  EXPECT_FALSE(DomainScaler::Create(5.0, 1.0).ok());
  EXPECT_FALSE(
      DomainScaler::Create(0.0, std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(DomainScaler::Create(std::nan(""), 1.0).ok());
}

TEST(DomainScalerTest, DefaultIsCanonicalIdentity) {
  const DomainScaler scaler;
  EXPECT_DOUBLE_EQ(scaler.lo(), -1.0);
  EXPECT_DOUBLE_EQ(scaler.hi(), 1.0);
  EXPECT_DOUBLE_EQ(scaler.ToCanonical(0.5), 0.5);
  EXPECT_DOUBLE_EQ(scaler.FromCanonical(-0.25), -0.25);
  EXPECT_DOUBLE_EQ(scaler.VarianceScale(), 1.0);
}

TEST(DomainScalerTest, MapsEndpointsAndMidpoint) {
  auto scaler = DomainScaler::Create(10.0, 30.0);
  ASSERT_TRUE(scaler.ok());
  EXPECT_DOUBLE_EQ(scaler.value().ToCanonical(10.0), -1.0);
  EXPECT_DOUBLE_EQ(scaler.value().ToCanonical(30.0), 1.0);
  EXPECT_DOUBLE_EQ(scaler.value().ToCanonical(20.0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.value().FromCanonical(-1.0), 10.0);
  EXPECT_DOUBLE_EQ(scaler.value().FromCanonical(1.0), 30.0);
  EXPECT_DOUBLE_EQ(scaler.value().FromCanonical(0.0), 20.0);
}

TEST(DomainScalerTest, RoundTripIsIdentityInsideDomain) {
  auto scaler = DomainScaler::Create(-7.5, 3.25);
  ASSERT_TRUE(scaler.ok());
  for (double x = -7.5; x <= 3.25; x += 0.37) {
    EXPECT_NEAR(scaler.value().FromCanonical(scaler.value().ToCanonical(x)),
                x, 1e-12);
  }
}

TEST(DomainScalerTest, ToCanonicalClampsOutOfDomainInputs) {
  auto scaler = DomainScaler::Create(0.0, 1.0);
  ASSERT_TRUE(scaler.ok());
  EXPECT_DOUBLE_EQ(scaler.value().ToCanonical(-5.0), -1.0);
  EXPECT_DOUBLE_EQ(scaler.value().ToCanonical(9.0), 1.0);
}

TEST(DomainScalerTest, FromCanonicalDoesNotClampPerturbedValues) {
  // Perturbed outputs legitimately exceed [-1, 1]; clamping them back would
  // bias the aggregate mean.
  auto scaler = DomainScaler::Create(0.0, 100.0);
  ASSERT_TRUE(scaler.ok());
  EXPECT_DOUBLE_EQ(scaler.value().FromCanonical(1.5), 125.0);
  EXPECT_DOUBLE_EQ(scaler.value().FromCanonical(-2.0), -50.0);
}

TEST(DomainScalerTest, VarianceScaleMatchesAffineMap) {
  auto scaler = DomainScaler::Create(-10.0, 10.0);
  ASSERT_TRUE(scaler.ok());
  EXPECT_DOUBLE_EQ(scaler.value().VarianceScale(), 100.0);
}

TEST(DomainScalerTest, EndToEndUnbiasedPerturbationOnNativeDomain) {
  // Scale → perturb with PM → unscale: the result must be unbiased for the
  // native value with variance VarianceScale() · Var_PM(canonical value).
  auto scaler_result = DomainScaler::Create(0.0, 50.0);
  ASSERT_TRUE(scaler_result.ok());
  const DomainScaler& scaler = scaler_result.value();
  const PiecewiseMechanism mech(1.0);
  const double native = 35.0;
  const double canonical = scaler.ToCanonical(native);
  Rng rng(1);
  RunningStats stats = ldp::testing::SampleStats(
      200000, &rng, [&](Rng* r) {
        return scaler.FromCanonical(mech.Perturb(canonical, r));
      });
  EXPECT_NEAR(stats.Mean(), native, ldp::testing::MeanTolerance(stats, 6.0));
  const double expected_var = scaler.VarianceScale() * mech.Variance(canonical);
  EXPECT_NEAR(stats.SampleVariance(), expected_var,
              expected_var * ldp::testing::VarianceRelTolerance(200000));
}

}  // namespace
}  // namespace ldp
