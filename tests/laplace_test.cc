#include "baselines/laplace.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace ldp {
namespace {

using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;
using ::ldp::testing::VarianceRelTolerance;

constexpr uint64_t kSamples = 200000;

TEST(LaplaceMechanismTest, ScaleIsTwoOverEpsilon) {
  EXPECT_DOUBLE_EQ(LaplaceMechanism(1.0).scale(), 2.0);
  EXPECT_DOUBLE_EQ(LaplaceMechanism(4.0).scale(), 0.5);
}

TEST(LaplaceMechanismTest, VarianceIsInputIndependent) {
  const LaplaceMechanism mech(2.0);
  EXPECT_DOUBLE_EQ(mech.Variance(0.0), 8.0 / 4.0);
  EXPECT_DOUBLE_EQ(mech.Variance(1.0), mech.Variance(-0.7));
  EXPECT_DOUBLE_EQ(mech.WorstCaseVariance(), mech.Variance(0.0));
}

TEST(LaplaceMechanismTest, UnboundedOutput) {
  EXPECT_TRUE(std::isinf(LaplaceMechanism(1.0).OutputBound()));
}

TEST(LaplaceMechanismTest, PerturbIsUnbiased) {
  const LaplaceMechanism mech(1.0);
  Rng rng(1);
  for (const double t : {-1.0, -0.4, 0.0, 0.7, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, MeanTolerance(stats)) << "t=" << t;
  }
}

TEST(LaplaceMechanismTest, EmpiricalVarianceMatchesClosedForm) {
  for (const double eps : {0.5, 1.0, 4.0}) {
    const LaplaceMechanism mech(eps);
    Rng rng(2);
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(0.3, r); });
    EXPECT_NEAR(stats.SampleVariance(), mech.Variance(0.3),
                mech.Variance(0.3) * VarianceRelTolerance(kSamples))
        << "eps=" << eps;
  }
}

TEST(LaplaceMechanismTest, SatisfiesLdpDensityRatio) {
  // The output density at any point x for inputs t, t' differs by at most
  // e^{ε |t - t'| / scale·...}; with scale 2/ε and |t-t'| <= 2, the ratio is
  // bounded by e^ε. Verify on a grid using the closed-form Laplace density.
  const double eps = 1.3;
  const LaplaceMechanism mech(eps);
  const double scale = mech.scale();
  auto pdf = [scale](double t, double x) {
    return std::exp(-std::abs(x - t) / scale) / (2.0 * scale);
  };
  for (double t1 = -1.0; t1 <= 1.0; t1 += 0.25) {
    for (double t2 = -1.0; t2 <= 1.0; t2 += 0.25) {
      for (double x = -6.0; x <= 6.0; x += 0.3) {
        EXPECT_LE(pdf(t1, x) / pdf(t2, x), std::exp(eps) * (1.0 + 1e-12));
      }
    }
  }
}

TEST(LaplaceMechanismTest, NameAndEpsilonAccessors) {
  const LaplaceMechanism mech(0.8);
  EXPECT_STREQ(mech.name(), "Laplace");
  EXPECT_DOUBLE_EQ(mech.epsilon(), 0.8);
}

}  // namespace
}  // namespace ldp
