// Golden-value tests pinning the exact Rng output streams. The header
// promises streams that are "stable across standard-library implementations"
// (every variate transform is implemented in-library); these tests turn that
// promise into a contract — any change to the generator or a transform that
// silently re-randomises all seeded experiments fails here.

#include <gtest/gtest.h>

#include "util/random.h"

namespace ldp {
namespace {

TEST(RngStreamStabilityTest, RawStreamForSeed12345) {
  Rng rng(12345);
  const uint64_t expected[] = {
      10201931350592234856ULL, 3780764549115216544ULL,
      1570246627180645737ULL, 3237956550421933520ULL,
      4899705286669081817ULL};
  for (const uint64_t value : expected) {
    EXPECT_EQ(rng.Next(), value);
  }
}

TEST(RngStreamStabilityTest, Uniform01StreamForSeed7) {
  Rng rng(7);
  const double expected[] = {0.055360436478333108, 0.17211585444811772,
                             0.71757612835865936, 0.42720981929150526};
  for (const double value : expected) {
    EXPECT_DOUBLE_EQ(rng.Uniform01(), value);
  }
}

TEST(RngStreamStabilityTest, GaussianStreamForSeed9) {
  Rng rng(9);
  const double expected[] = {1.9405181386048689, -1.3768098169664282,
                             -0.19267113196997382, 0.24539407558762308};
  for (const double value : expected) {
    EXPECT_DOUBLE_EQ(rng.Gaussian(), value);
  }
}

TEST(RngStreamStabilityTest, LaplaceStreamForSeed11) {
  Rng rng(11);
  const double expected[] = {1.9071244812226409, 1.4237412514975114,
                             3.955153312332528, 0.34683028737913602};
  for (const double value : expected) {
    EXPECT_DOUBLE_EQ(rng.Laplace(1.5), value);
  }
}

TEST(RngStreamStabilityTest, ForkStreamForSeed13) {
  Rng rng(13);
  Rng child = rng.Fork();
  EXPECT_EQ(child.Next(), 17051041119502934183ULL);
  EXPECT_EQ(rng.Next(), 1775008064223230197ULL);
}

}  // namespace
}  // namespace ldp
