// Unified statistical regression net: one parameterized sweep asserting, for
// EVERY scalar mechanism at every probed budget, the three contracts of the
// ScalarMechanism interface — unbiasedness, the closed-form variance, and
// the output bound. Complements the per-mechanism suites with a single net
// that automatically covers mechanisms added later (it iterates the
// MechanismKind factory).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/mechanism.h"
#include "test_util.h"

namespace ldp {
namespace {

using MechanismStatisticsParam = std::tuple<MechanismKind, double>;

class MechanismStatisticsTest
    : public ::testing::TestWithParam<MechanismStatisticsParam> {};

std::string ParamName(
    const ::testing::TestParamInfo<MechanismStatisticsParam>& info) {
  const auto [kind, eps] = info.param;
  return std::string(MechanismKindToString(kind)) + "_eps" +
         std::to_string(static_cast<int>(eps * 10));
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanismsAllBudgets, MechanismStatisticsTest,
    ::testing::Combine(::testing::Values(MechanismKind::kLaplace,
                                         MechanismKind::kScdf,
                                         MechanismKind::kStaircase,
                                         MechanismKind::kDuchi,
                                         MechanismKind::kPiecewise,
                                         MechanismKind::kHybrid),
                       ::testing::Values(0.3, 1.0, 4.0)),
    ParamName);

TEST_P(MechanismStatisticsTest, UnbiasedAtEveryProbedInput) {
  const auto [kind, eps] = GetParam();
  auto mech = MakeScalarMechanism(kind, eps);
  ASSERT_TRUE(mech.ok());
  Rng rng(17);
  for (const double t : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    RunningStats stats = ldp::testing::SampleStats(
        120000, &rng, [&](Rng* r) { return mech.value()->Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, ldp::testing::MeanTolerance(stats, 6.0))
        << "t=" << t;
  }
}

TEST_P(MechanismStatisticsTest, VarianceFormulaMatchesSampler) {
  const auto [kind, eps] = GetParam();
  auto mech = MakeScalarMechanism(kind, eps);
  ASSERT_TRUE(mech.ok());
  Rng rng(18);
  for (const double t : {0.0, 0.7}) {
    // Kurtosis-aware tolerance (see piecewise_test.cc): Var(s²)≈(m₄−σ⁴)/n.
    const uint64_t n = 150000;
    std::vector<double> samples(n);
    for (double& x : samples) x = mech.value()->Perturb(t, &rng);
    double mean = 0.0;
    for (const double x : samples) mean += x;
    mean /= static_cast<double>(n);
    double s2 = 0.0, m4 = 0.0;
    for (const double x : samples) {
      const double d2 = (x - mean) * (x - mean);
      s2 += d2;
      m4 += d2 * d2;
    }
    s2 /= static_cast<double>(n - 1);
    m4 /= static_cast<double>(n);
    const double stderr_s2 =
        std::sqrt(std::max(0.0, m4 - s2 * s2) / static_cast<double>(n));
    // The relative floor covers the O(1/n) bias of the sample variance,
    // which dominates for two-point outputs (Duchi, low-ε HM) where the
    // kurtosis term vanishes at t = 0.
    const double tolerance = 6.0 * stderr_s2 +
                             mech.value()->Variance(t) * 10.0 /
                                 static_cast<double>(n);
    EXPECT_NEAR(s2, mech.value()->Variance(t), tolerance) << "t=" << t;
  }
}

TEST_P(MechanismStatisticsTest, OutputsRespectDeclaredBound) {
  const auto [kind, eps] = GetParam();
  auto mech = MakeScalarMechanism(kind, eps);
  ASSERT_TRUE(mech.ok());
  const double bound = mech.value()->OutputBound();
  Rng rng(19);
  for (const double t : {-1.0, 0.0, 1.0}) {
    for (int i = 0; i < 20000; ++i) {
      const double out = mech.value()->Perturb(t, &rng);
      ASSERT_TRUE(std::isfinite(out));
      ASSERT_LE(std::abs(out), bound * (1.0 + 1e-12));
    }
  }
}

TEST_P(MechanismStatisticsTest, AveragingConcentratesOnTruth) {
  // The aggregator's contract: the mean of many reports approaches the true
  // mean with standard error √(Var/n) — checked at 5σ.
  const auto [kind, eps] = GetParam();
  auto mech = MakeScalarMechanism(kind, eps);
  ASSERT_TRUE(mech.ok());
  Rng rng(20);
  const double t = 0.3;
  const uint64_t n = 80000;
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) sum += mech.value()->Perturb(t, &rng);
  const double estimate = sum / static_cast<double>(n);
  const double sigma =
      std::sqrt(mech.value()->Variance(t) / static_cast<double>(n));
  EXPECT_NEAR(estimate, t, 5.0 * sigma);
}

}  // namespace
}  // namespace ldp
