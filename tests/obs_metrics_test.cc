// obs/metrics.h + obs/exposition.h: counter exactness under concurrent
// writers (the per-thread-sharded slots must never lose an increment),
// histogram log2 bucket boundaries, registry get-or-create identity, and
// golden exposition output in both formats (the snapshot order is
// deterministic, so byte-exact goldens are stable).

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "obs/metrics.h"

namespace ldp::obs {
namespace {

TEST(ObsCounter, ConcurrentAddsAreExact) {
  Counter counter;
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(2.5);
  EXPECT_EQ(gauge.Value(), 2.5);
  gauge.Add(1.5);
  EXPECT_EQ(gauge.Value(), 4.0);
  gauge.Add(-4.0);
  EXPECT_EQ(gauge.Value(), 0.0);
}

TEST(ObsGauge, ConcurrentAddsSumExactly) {
  // Integral deltas stay exact in double arithmetic, so the CAS loop must
  // land every one of them.
  Gauge gauge;
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(gauge.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(ObsHistogram, BucketBoundaries) {
  // Bucket 0 holds only the value 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  // Everything beyond the covered range lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            Histogram::kBuckets - 1);

  // UpperBound is the inclusive `le` of each bucket.
  EXPECT_EQ(Histogram::UpperBound(0), 0u);
  EXPECT_EQ(Histogram::UpperBound(1), 1u);
  EXPECT_EQ(Histogram::UpperBound(2), 3u);
  EXPECT_EQ(Histogram::UpperBound(3), 7u);
  EXPECT_EQ(Histogram::UpperBound(Histogram::kBuckets - 1),
            std::numeric_limits<uint64_t>::max());

  // Every boundary value round-trips: UpperBound(b) falls in bucket b.
  for (unsigned b = 0; b + 1 < Histogram::kBuckets; ++b) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::UpperBound(b)), b) << b;
  }
}

TEST(ObsHistogram, CountSumQuantile) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);

  for (uint64_t v : {0, 1, 2, 4, 100, 100, 100, 5000}) histogram.Observe(v);
  EXPECT_EQ(histogram.Count(), 8u);
  EXPECT_EQ(histogram.Sum(), 0u + 1 + 2 + 4 + 100 + 100 + 100 + 5000);
  EXPECT_EQ(histogram.BucketCount(0), 1u);  // the 0
  EXPECT_EQ(histogram.BucketCount(1), 1u);  // the 1
  EXPECT_EQ(histogram.BucketCount(7), 3u);  // the 100s: [64, 128)

  // Quantiles are monotone in q and bounded by the occupied buckets.
  const double p25 = histogram.Quantile(0.25);
  const double p50 = histogram.Quantile(0.50);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p50, 128.0);    // the median sits in the 100s' bucket or below
  EXPECT_GT(p99, 4096.0);   // the tail reaches the 5000's bucket [4096,8192)
  EXPECT_LE(p99, 8192.0);
}

TEST(ObsRegistry, GetOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total");
  Counter* b = registry.GetCounter("requests_total");
  EXPECT_EQ(a, b);
  Counter* labeled =
      registry.GetCounter("requests_total", {{"path", "/metrics"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled,
            registry.GetCounter("requests_total", {{"path", "/metrics"}}));
  Gauge* gauge = registry.GetGauge("depth");
  EXPECT_EQ(gauge, registry.GetGauge("depth"));
  Histogram* histogram = registry.GetHistogram("latency_us");
  EXPECT_EQ(histogram, registry.GetHistogram("latency_us"));
}

TEST(ObsRegistry, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha", {{"k", "2"}})->Add(2);
  registry.GetCounter("alpha", {{"k", "1"}})->Add(3);
  registry.GetGauge("mid")->Set(7.0);
  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[0].labels, (LabelSet{{"k", "1"}}));
  EXPECT_EQ(samples[0].counter, 3u);
  EXPECT_EQ(samples[1].name, "alpha");
  EXPECT_EQ(samples[1].labels, (LabelSet{{"k", "2"}}));
  EXPECT_EQ(samples[2].name, "mid");
  EXPECT_EQ(samples[3].name, "zeta");
}

TEST(ObsRegistry, ConcurrentGetOrCreateAndWrite) {
  // Hammer the registry's cold path and the counters' hot path at once;
  // every increment must land (run under TSan in CI).
  MetricsRegistry registry;
  constexpr unsigned kThreads = 8;
  constexpr int kIterations = 2000;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < kIterations; ++i) {
        registry.GetCounter("shared_total")->Increment();
        registry.GetCounter("per_thread_total",
                            {{"thread", std::to_string(t)}})
            ->Increment();
        registry.GetHistogram("latency_us")->Observe(i);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(registry.GetCounter("shared_total")->Value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.GetHistogram("latency_us")->Count(),
            static_cast<uint64_t>(kThreads) * kIterations);
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry
                  .GetCounter("per_thread_total",
                              {{"thread", std::to_string(t)}})
                  ->Value(),
              static_cast<uint64_t>(kIterations));
  }
}

TEST(ObsExposition, PrometheusGolden) {
  MetricsRegistry registry;
  registry.GetCounter("ldp_test_requests_total")->Add(3);
  registry.GetCounter("ldp_test_requests_total", {{"path", "/x"}})->Add(2);
  registry.GetGauge("ldp_test_depth")->Set(1.5);
  Histogram* latency = registry.GetHistogram("ldp_test_latency_us");
  latency->Observe(0);
  latency->Observe(3);
  latency->Observe(3);

  const std::string expected =
      "# TYPE ldp_test_depth gauge\n"
      "ldp_test_depth 1.5\n"
      "# TYPE ldp_test_latency_us histogram\n"
      "ldp_test_latency_us_bucket{le=\"0\"} 1\n"
      "ldp_test_latency_us_bucket{le=\"1\"} 1\n"
      "ldp_test_latency_us_bucket{le=\"3\"} 3\n"
      "ldp_test_latency_us_bucket{le=\"+Inf\"} 3\n"
      "ldp_test_latency_us_sum 6\n"
      "ldp_test_latency_us_count 3\n"
      "# TYPE ldp_test_requests_total counter\n"
      "ldp_test_requests_total 3\n"
      "ldp_test_requests_total{path=\"/x\"} 2\n";
  EXPECT_EQ(ToPrometheusText(registry), expected);
}

TEST(ObsExposition, JsonGolden) {
  MetricsRegistry registry;
  registry.GetCounter("ldp_test_requests_total", {{"path", "/x"}})->Add(2);
  registry.GetGauge("ldp_test_depth")->Set(1.5);
  Histogram* latency = registry.GetHistogram("ldp_test_latency_us");
  latency->Observe(3);
  latency->Observe(3);

  const std::string expected =
      "{\"metrics\":["
      "{\"name\":\"ldp_test_depth\",\"type\":\"gauge\",\"value\":1.5},"
      "{\"name\":\"ldp_test_latency_us\",\"type\":\"histogram\","
      "\"count\":2,\"sum\":6,\"p50\":3,\"p90\":4,\"p99\":4,"
      "\"buckets\":[{\"le\":3,\"count\":2}]},"
      "{\"name\":\"ldp_test_requests_total\",\"labels\":{\"path\":\"/x\"},"
      "\"type\":\"counter\",\"value\":2}"
      "]}\n";
  EXPECT_EQ(ToJson(registry), expected);
}

TEST(ObsExposition, JsonEscapeControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ObsMetricsBundles, NullRegistryDisablesEverything) {
  EXPECT_FALSE(IngestMetrics::ForRegistry(nullptr).enabled());
  EXPECT_FALSE(SessionMetrics::ForRegistry(nullptr).enabled());
  EXPECT_FALSE(NetServerMetrics::ForRegistry(nullptr).enabled());
  EXPECT_FALSE(PoolMetrics::ForRegistry(nullptr).enabled());

  MetricsRegistry registry;
  EXPECT_TRUE(IngestMetrics::ForRegistry(&registry).enabled());
  EXPECT_TRUE(SessionMetrics::ForRegistry(&registry).enabled());
  EXPECT_TRUE(NetServerMetrics::ForRegistry(&registry).enabled());
  EXPECT_TRUE(PoolMetrics::ForRegistry(&registry).enabled());
  // Resolving twice lands on the same cells.
  EXPECT_EQ(IngestMetrics::ForRegistry(&registry).accepted,
            IngestMetrics::ForRegistry(&registry).accepted);
}

}  // namespace
}  // namespace ldp::obs
