// In-process collection through the session facade (api::Pipeline::Collect):
// the paper's proposed pipeline and the split-budget baselines, exercised
// over the census generator. These were the aggregate::CollectProposed /
// CollectBaseline wrapper tests before that surface was retired; they now
// target the facade directly.
#include "api/pipeline.h"

#include <gtest/gtest.h>

#include "aggregate/metrics.h"
#include "data/census.h"
#include "data/encode.h"
#include "data/generators.h"

namespace ldp::api {
namespace {

data::Dataset SmallCensus(uint64_t n = 20000) {
  auto census = data::MakeBrazilCensus(n, 7);
  EXPECT_TRUE(census.ok());
  return data::NormalizeNumeric(census.value());
}

// One config-driven collection run: schema from the dataset, then Collect.
Result<CollectionOutput> Collect(const data::Dataset& dataset,
                                 PipelineConfig config, uint64_t seed,
                                 ThreadPool* pool = nullptr) {
  LDP_ASSIGN_OR_RETURN(config.attributes,
                       AttributesFromSchema(dataset.schema()));
  Result<Pipeline> pipeline = Pipeline::Create(std::move(config));
  if (!pipeline.ok()) return pipeline.status();
  return pipeline.value().Collect(dataset, seed, pool);
}

Result<CollectionOutput> CollectProposed(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    MechanismKind numeric_kind = MechanismKind::kHybrid,
    FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr) {
  PipelineConfig config;
  config.epsilon = epsilon;
  config.mechanism = numeric_kind;
  config.oracle = categorical_kind;
  return Collect(dataset, std::move(config), seed, pool);
}

Result<CollectionOutput> CollectBaseline(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    NumericStrategy strategy,
    FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr) {
  PipelineConfig config;
  config.epsilon = epsilon;
  config.oracle = categorical_kind;
  config.baseline = strategy;
  return Collect(dataset, std::move(config), seed, pool);
}

TEST(AttributesFromSchemaTest, MapsColumnTypes) {
  const data::Dataset dataset = SmallCensus(10);
  auto mixed = AttributesFromSchema(dataset.schema());
  ASSERT_TRUE(mixed.ok());
  ASSERT_EQ(mixed.value().size(), 16u);
  EXPECT_EQ(mixed.value()[0].type, AttributeType::kNumeric);
  EXPECT_EQ(mixed.value()[6].type, AttributeType::kCategorical);
  EXPECT_EQ(mixed.value()[6].domain_size,
            dataset.schema().column(6).domain_size);
}

TEST(AttributesFromSchemaTest, RejectsEmptySchema) {
  EXPECT_FALSE(AttributesFromSchema(data::Schema()).ok());
}

TEST(PipelineCollectTest, RequiresNormalizedNumericColumns) {
  auto census = data::MakeBrazilCensus(100, 1);
  ASSERT_TRUE(census.ok());
  auto result = CollectProposed(census.value(), 1.0, 1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PipelineCollectTest, RejectsEmptyDatasetAndBadBudget) {
  data::Dataset empty(SmallCensus(10).schema());
  EXPECT_FALSE(CollectProposed(empty, 1.0, 1).ok());
  EXPECT_FALSE(CollectProposed(SmallCensus(100), 0.0, 1).ok());
}

TEST(PipelineCollectTest, OutputsEstimatesForEveryColumn) {
  const data::Dataset dataset = SmallCensus();
  auto result = CollectProposed(dataset, 4.0, 1);
  ASSERT_TRUE(result.ok());
  const CollectionOutput& out = result.value();
  EXPECT_EQ(out.numeric_columns.size(), 6u);
  EXPECT_EQ(out.categorical_columns.size(), 10u);
  EXPECT_EQ(out.estimated_means.size(), 6u);
  EXPECT_EQ(out.estimated_frequencies.size(), 10u);
  for (size_t c = 0; c < out.categorical_columns.size(); ++c) {
    EXPECT_EQ(out.estimated_frequencies[c].size(),
              out.true_frequencies[c].size());
  }
}

TEST(PipelineCollectTest, EstimatesApproachTruthAtLargeBudget) {
  const data::Dataset dataset = SmallCensus(50000);
  auto result = CollectProposed(dataset, 8.0, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(aggregate::NumericMse(result.value()), 0.01);
  EXPECT_LT(aggregate::CategoricalMse(result.value()), 0.01);
}

TEST(PipelineCollectTest, DeterministicInSeedAndThreadCountInvariant) {
  const data::Dataset dataset = SmallCensus(5000);
  auto serial = CollectProposed(dataset, 1.0, 3);
  auto serial_again = CollectProposed(dataset, 1.0, 3);
  ThreadPool pool(4);
  auto parallel = CollectProposed(dataset, 1.0, 3, MechanismKind::kHybrid,
                                  FrequencyOracleKind::kOue, &pool);
  ASSERT_TRUE(serial.ok() && serial_again.ok() && parallel.ok());
  for (size_t j = 0; j < serial.value().estimated_means.size(); ++j) {
    EXPECT_DOUBLE_EQ(serial.value().estimated_means[j],
                     serial_again.value().estimated_means[j]);
    // Per-user RNGs make results independent of the thread pool.
    EXPECT_NEAR(serial.value().estimated_means[j],
                parallel.value().estimated_means[j], 1e-12);
  }
}

TEST(PipelineCollectTest, DifferentSeedsGiveDifferentNoise) {
  const data::Dataset dataset = SmallCensus(2000);
  auto a = CollectProposed(dataset, 1.0, 1);
  auto b = CollectProposed(dataset, 1.0, 2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value().estimated_means[0], b.value().estimated_means[0]);
}

TEST(PipelineBaselineTest, AllStrategiesProduceEstimates) {
  const data::Dataset dataset = SmallCensus(5000);
  for (const NumericStrategy strategy :
       {NumericStrategy::kLaplaceSplit, NumericStrategy::kScdfSplit,
        NumericStrategy::kStaircaseSplit, NumericStrategy::kDuchiMulti}) {
    auto result = CollectBaseline(dataset, 1.0, 1, strategy);
    ASSERT_TRUE(result.ok()) << NumericStrategyToString(strategy);
    EXPECT_EQ(result.value().estimated_means.size(), 6u);
    EXPECT_EQ(result.value().estimated_frequencies.size(), 10u);
  }
}

TEST(PipelineBaselineTest, NumericOnlyDataset) {
  Rng rng(1);
  auto numeric = data::MakeUniform(4, 20000, &rng);
  ASSERT_TRUE(numeric.ok());
  auto result = CollectBaseline(numeric.value(), 2.0, 1,
                                NumericStrategy::kDuchiMulti);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().estimated_means.size(), 4u);
  EXPECT_TRUE(result.value().estimated_frequencies.empty());
  EXPECT_LT(aggregate::NumericMse(result.value()), 0.05);
}

TEST(PipelineBaselineTest, ParallelMatchesSerialIncludingCategorical) {
  // Regression test: chunk-local support tables must start from zero, not
  // from a racy copy of the partially merged totals.
  const data::Dataset dataset = SmallCensus(8000);
  auto serial =
      CollectBaseline(dataset, 1.0, 5, NumericStrategy::kDuchiMulti);
  ThreadPool pool(4);
  auto parallel = CollectBaseline(dataset, 1.0, 5,
                                  NumericStrategy::kDuchiMulti,
                                  FrequencyOracleKind::kOue, &pool);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  for (size_t j = 0; j < serial.value().estimated_means.size(); ++j) {
    EXPECT_NEAR(serial.value().estimated_means[j],
                parallel.value().estimated_means[j], 1e-12);
  }
  for (size_t c = 0; c < serial.value().estimated_frequencies.size(); ++c) {
    for (size_t v = 0; v < serial.value().estimated_frequencies[c].size();
         ++v) {
      EXPECT_NEAR(serial.value().estimated_frequencies[c][v],
                  parallel.value().estimated_frequencies[c][v], 1e-12);
    }
  }
}

TEST(PipelineBaselineTest, StrategyNames) {
  EXPECT_STREQ(NumericStrategyToString(NumericStrategy::kLaplaceSplit),
               "Laplace");
  EXPECT_STREQ(NumericStrategyToString(NumericStrategy::kScdfSplit), "SCDF");
  EXPECT_STREQ(NumericStrategyToString(NumericStrategy::kStaircaseSplit),
               "Staircase");
  EXPECT_STREQ(NumericStrategyToString(NumericStrategy::kDuchiMulti),
               "Duchi");
}

TEST(ProposedVsBaselineTest, ProposedWinsOnCensusData) {
  // The paper's Fig. 4 headline: the proposed pipeline beats the best-effort
  // split-budget combination on both numeric and categorical error.
  const data::Dataset dataset = SmallCensus(60000);
  const double eps = 1.0;
  // Average over a few seeds to keep this test stable.
  double proposed_num = 0.0, proposed_cat = 0.0;
  double baseline_num = 0.0, baseline_cat = 0.0;
  const int reps = 5;
  for (int rep = 0; rep < reps; ++rep) {
    auto proposed = CollectProposed(dataset, eps, 100 + rep);
    auto baseline =
        CollectBaseline(dataset, eps, 200 + rep, NumericStrategy::kDuchiMulti);
    ASSERT_TRUE(proposed.ok() && baseline.ok());
    proposed_num += aggregate::NumericMse(proposed.value()) / reps;
    proposed_cat += aggregate::CategoricalMse(proposed.value()) / reps;
    baseline_num += aggregate::NumericMse(baseline.value()) / reps;
    baseline_cat += aggregate::CategoricalMse(baseline.value()) / reps;
  }
  EXPECT_LT(proposed_num, baseline_num);
  EXPECT_LT(proposed_cat, baseline_cat);
}

TEST(ProposedTest, PmAndHmBothWork) {
  const data::Dataset dataset = SmallCensus(20000);
  auto pm = CollectProposed(dataset, 1.0, 1, MechanismKind::kPiecewise);
  auto hm = CollectProposed(dataset, 1.0, 1, MechanismKind::kHybrid);
  ASSERT_TRUE(pm.ok() && hm.ok());
  EXPECT_LT(aggregate::NumericMse(pm.value()), 0.1);
  EXPECT_LT(aggregate::NumericMse(hm.value()), 0.1);
}

TEST(ProposedTest, MoreUsersReduceError) {
  // Lemma 5's 1/n decay, checked end-to-end at two population sizes.
  auto census_small = SmallCensus(4000);
  auto census_large = SmallCensus(64000);
  double mse_small = 0.0, mse_large = 0.0;
  const int reps = 5;
  for (int rep = 0; rep < reps; ++rep) {
    auto small = CollectProposed(census_small, 1.0, 300 + rep);
    auto large = CollectProposed(census_large, 1.0, 400 + rep);
    ASSERT_TRUE(small.ok() && large.ok());
    mse_small += aggregate::NumericMse(small.value()) / reps;
    mse_large += aggregate::NumericMse(large.value()) / reps;
  }
  // 16x the users should cut MSE by ~16; allow wide slack for stability.
  EXPECT_LT(mse_large, mse_small / 4.0);
}

}  // namespace
}  // namespace ldp::api
