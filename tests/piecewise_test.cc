#include "core/piecewise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace ldp {
namespace {

using ::ldp::testing::Integrate;
using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;
using ::ldp::testing::VarianceRelTolerance;

constexpr uint64_t kSamples = 200000;

TEST(PiecewiseMechanismTest, OutputRangeMatchesFormula) {
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    const double e_half = std::exp(eps / 2.0);
    EXPECT_DOUBLE_EQ(PiecewiseMechanism(eps).c(),
                     (e_half + 1.0) / (e_half - 1.0));
  }
}

TEST(PiecewiseMechanismTest, CenterPieceGeometry) {
  const PiecewiseMechanism mech(1.0);
  const double c = mech.c();
  // ℓ(t) = (C+1)/2·t − (C−1)/2, r(t) = ℓ(t) + C − 1.
  for (const double t : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    EXPECT_NEAR(mech.CenterLeft(t), (c + 1.0) / 2.0 * t - (c - 1.0) / 2.0,
                1e-12);
    EXPECT_NEAR(mech.CenterRight(t) - mech.CenterLeft(t), c - 1.0, 1e-12);
  }
  // At t = 1 the right piece vanishes: r(1) = C.
  EXPECT_NEAR(mech.CenterRight(1.0), c, 1e-12);
  // At t = -1 the left piece vanishes: ℓ(-1) = -C.
  EXPECT_NEAR(mech.CenterLeft(-1.0), -c, 1e-12);
}

class PiecewisePdfTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, PiecewisePdfTest,
                         ::testing::Values(0.3, 0.61, 1.0, 1.29, 2.0, 4.0,
                                           8.0));

TEST_P(PiecewisePdfTest, DensityIntegratesToOne) {
  const PiecewiseMechanism mech(GetParam());
  for (const double t : {-1.0, -0.5, 0.0, 0.3, 1.0}) {
    const double integral =
        Integrate([&](double x) { return mech.OutputPdf(t, x); }, -mech.c(),
                  mech.c(), 200000);
    // Tolerance is dominated by Simpson error at the two step
    // discontinuities, which grows with the density level (large ε).
    EXPECT_NEAR(integral, 1.0, 1e-3) << "t=" << t;
  }
}

TEST_P(PiecewisePdfTest, DensityRatioBoundedByExpEpsilon) {
  // The ε-LDP property: for every output x and inputs t, t', the density
  // ratio is at most e^ε. The step structure gives max/min = e^ε exactly.
  const double eps = GetParam();
  const PiecewiseMechanism mech(eps);
  const double bound = std::exp(eps) * (1.0 + 1e-12);
  for (double t1 = -1.0; t1 <= 1.0; t1 += 0.25) {
    for (double t2 = -1.0; t2 <= 1.0; t2 += 0.25) {
      for (double x = -mech.c(); x <= mech.c(); x += mech.c() / 50.0) {
        const double p1 = mech.OutputPdf(t1, x);
        const double p2 = mech.OutputPdf(t2, x);
        ASSERT_GT(p2, 0.0);  // support is all of [-C, C]
        EXPECT_LE(p1 / p2, bound);
      }
    }
  }
}

TEST_P(PiecewisePdfTest, CenterProbabilityMatchesFormula) {
  const double eps = GetParam();
  const PiecewiseMechanism mech(eps);
  const double e_half = std::exp(eps / 2.0);
  EXPECT_NEAR(mech.CenterProbability(), e_half / (e_half + 1.0), 1e-12);
  // Cross-check with the pdf: mass of the centre piece = p · (C − 1).
  const double t = 0.2;
  const double mass = Integrate(
      [&](double x) { return mech.OutputPdf(t, x); }, mech.CenterLeft(t),
      mech.CenterRight(t), 10000);
  EXPECT_NEAR(mass, mech.CenterProbability(), 1e-6);
}

TEST_P(PiecewisePdfTest, PerturbIsUnbiased) {
  const PiecewiseMechanism mech(GetParam());
  Rng rng(1);
  for (const double t : {-1.0, -0.3, 0.0, 0.5, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, MeanTolerance(stats, 6.0)) << "t=" << t;
  }
}

TEST_P(PiecewisePdfTest, EmpiricalVarianceMatchesLemma1) {
  // At large ε the rare far-away side pieces give the output heavy kurtosis,
  // so the tolerance must come from the actual fourth moment:
  // Var(s²) ≈ (m₄ − σ⁴)/n.
  const PiecewiseMechanism mech(GetParam());
  Rng rng(2);
  for (const double t : {0.0, 0.5, 1.0}) {
    std::vector<double> samples(kSamples);
    for (double& x : samples) x = mech.Perturb(t, &rng);
    double mean = 0.0;
    for (const double x : samples) mean += x;
    mean /= static_cast<double>(kSamples);
    double s2 = 0.0, m4 = 0.0;
    for (const double x : samples) {
      const double d2 = (x - mean) * (x - mean);
      s2 += d2;
      m4 += d2 * d2;
    }
    s2 /= static_cast<double>(kSamples - 1);
    m4 /= static_cast<double>(kSamples);
    const double stderr_s2 =
        std::sqrt(std::max(0.0, m4 - s2 * s2) / static_cast<double>(kSamples));
    EXPECT_NEAR(s2, mech.Variance(t), 6.0 * stderr_s2 + 1e-9) << "t=" << t;
  }
}

TEST_P(PiecewisePdfTest, OutputStaysWithinC) {
  const PiecewiseMechanism mech(GetParam());
  Rng rng(3);
  for (const double t : {-1.0, 0.0, 1.0}) {
    for (int i = 0; i < 20000; ++i) {
      const double out = mech.Perturb(t, &rng);
      EXPECT_LE(std::abs(out), mech.c() * (1.0 + 1e-12));
    }
  }
}

TEST(PiecewiseMechanismTest, VarianceGrowsWithInputMagnitude) {
  // Lemma 1: Var(t) increases in |t| — PM is best on small-magnitude inputs.
  const PiecewiseMechanism mech(1.0);
  EXPECT_LT(mech.Variance(0.0), mech.Variance(0.5));
  EXPECT_LT(mech.Variance(0.5), mech.Variance(1.0));
  EXPECT_DOUBLE_EQ(mech.Variance(0.5), mech.Variance(-0.5));
}

TEST(PiecewiseMechanismTest, WorstCaseMatchesClosedForm) {
  for (const double eps : {0.5, 1.0, 3.0}) {
    const PiecewiseMechanism mech(eps);
    const double e_half = std::exp(eps / 2.0);
    EXPECT_NEAR(mech.WorstCaseVariance(),
                4.0 * e_half / (3.0 * (e_half - 1.0) * (e_half - 1.0)),
                1e-12);
    EXPECT_NEAR(mech.WorstCaseVariance(), mech.Variance(1.0), 1e-12);
  }
}

TEST(PiecewiseMechanismTest, WorstCaseBeatsLaplaceEverywhere) {
  // Claimed in Section III-B: PM's worst-case variance is strictly below the
  // Laplace mechanism's 8/ε² for every ε.
  for (double eps = 0.05; eps <= 10.0; eps += 0.05) {
    EXPECT_LT(PiecewiseMechanism(eps).WorstCaseVariance(),
              8.0 / (eps * eps))
        << "eps=" << eps;
  }
}

TEST(PiecewiseMechanismTest, VarianceOfMeanShrinksWithUsers) {
  // Lemma 2 sanity: averaging n reports shrinks the error like 1/√n.
  const PiecewiseMechanism mech(1.0);
  Rng rng(4);
  auto mse_of_mean = [&](uint64_t n) {
    const int reps = 300;
    RunningStats err;
    for (int rep = 0; rep < reps; ++rep) {
      double sum = 0.0;
      for (uint64_t i = 0; i < n; ++i) sum += mech.Perturb(0.4, &rng);
      const double diff = sum / static_cast<double>(n) - 0.4;
      err.Add(diff * diff);
    }
    return err.Mean();
  };
  const double mse_small = mse_of_mean(100);
  const double mse_large = mse_of_mean(1600);
  // 16x the users should cut the MSE by ~16 (allow 2x slack).
  EXPECT_LT(mse_large, mse_small / 8.0);
}

}  // namespace
}  // namespace ldp
