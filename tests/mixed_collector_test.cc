#include "core/mixed_collector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/variance.h"
#include "test_util.h"

namespace ldp {
namespace {

std::vector<MixedAttribute> SmallSchema() {
  return {MixedAttribute::Numeric(), MixedAttribute::Categorical(3),
          MixedAttribute::Numeric(), MixedAttribute::Categorical(5)};
}

TEST(MixedTupleCollectorTest, CreateValidatesArguments) {
  EXPECT_FALSE(MixedTupleCollector::Create({}, 1.0).ok());
  EXPECT_FALSE(MixedTupleCollector::Create(SmallSchema(), 0.0).ok());
  EXPECT_FALSE(
      MixedTupleCollector::Create({MixedAttribute::Categorical(1)}, 1.0).ok());
  EXPECT_TRUE(MixedTupleCollector::Create(SmallSchema(), 1.0).ok());
}

TEST(MixedTupleCollectorTest, KFollowsEquation12) {
  auto collector = MixedTupleCollector::Create(SmallSchema(), 7.6);
  ASSERT_TRUE(collector.ok());
  EXPECT_EQ(collector.value().k(), AttributeSampleCount(7.6, 4));
  EXPECT_NEAR(collector.value().per_attribute_epsilon(),
              7.6 / collector.value().k(), 1e-12);
}

TEST(MixedTupleCollectorTest, OraclesOnlyAtCategoricalPositions) {
  auto collector = MixedTupleCollector::Create(SmallSchema(), 1.0);
  ASSERT_TRUE(collector.ok());
  EXPECT_EQ(collector.value().oracle_for(0), nullptr);
  ASSERT_NE(collector.value().oracle_for(1), nullptr);
  EXPECT_EQ(collector.value().oracle_for(1)->domain_size(), 3u);
  EXPECT_EQ(collector.value().oracle_for(2), nullptr);
  ASSERT_NE(collector.value().oracle_for(3), nullptr);
  EXPECT_EQ(collector.value().oracle_for(3)->domain_size(), 5u);
}

TEST(MixedTupleCollectorTest, EqualDomainsShareOneOracle) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Categorical(4), MixedAttribute::Categorical(4)}, 1.0);
  ASSERT_TRUE(collector.ok());
  EXPECT_EQ(collector.value().oracle_for(0), collector.value().oracle_for(1));
}

TEST(MixedTupleCollectorTest, ReportsHaveKEntries) {
  auto collector = MixedTupleCollector::Create(SmallSchema(), 6.0);
  ASSERT_TRUE(collector.ok());
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.5);
  tuple[1] = AttributeValue::Categorical(2);
  tuple[2] = AttributeValue::Numeric(-0.5);
  tuple[3] = AttributeValue::Categorical(4);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const MixedReport report = collector.value().Perturb(tuple, &rng);
    ASSERT_EQ(report.size(), collector.value().k());
    for (const MixedReportEntry& entry : report) {
      EXPECT_LT(entry.attribute, 4u);
      // Categorical entries carry a valid oracle report (an OUE report may
      // legitimately be empty: no bits survived the flips).
      if (entry.attribute == 1 || entry.attribute == 3) {
        const uint32_t domain =
            collector.value().schema()[entry.attribute].domain_size;
        for (const uint32_t bit : entry.categorical_report) {
          EXPECT_LT(bit, domain);
        }
      } else {
        EXPECT_TRUE(entry.categorical_report.empty());
      }
    }
  }
}

// Simulates n users whose tuples realise known means/frequencies and checks
// the aggregator's estimates against the ground truth.
class MixedEndToEndTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, MixedEndToEndTest,
                         ::testing::Values(1.0, 4.0));

TEST_P(MixedEndToEndTest, EstimatesMeansAndFrequencies) {
  const double eps = GetParam();
  auto collector_result = MixedTupleCollector::Create(SmallSchema(), eps);
  ASSERT_TRUE(collector_result.ok());
  const MixedTupleCollector& collector = collector_result.value();
  MixedAggregator aggregator(&collector);

  const uint64_t n = 120000;
  Rng rng(2);
  RunningStats true_mean0, true_mean2;
  std::vector<double> true_freq1(3, 0.0), true_freq3(5, 0.0);
  for (uint64_t i = 0; i < n; ++i) {
    MixedTuple tuple(4);
    tuple[0] = AttributeValue::Numeric(rng.Uniform(-1.0, 1.0));
    tuple[1] = AttributeValue::Categorical(
        rng.Bernoulli(0.6) ? 0u : (rng.Bernoulli(0.5) ? 1u : 2u));
    tuple[2] = AttributeValue::Numeric(rng.Uniform(0.0, 0.5));
    tuple[3] =
        AttributeValue::Categorical(static_cast<uint32_t>(rng.UniformIndex(5)));
    true_mean0.Add(tuple[0].numeric);
    true_mean2.Add(tuple[2].numeric);
    true_freq1[tuple[1].category] += 1.0;
    true_freq3[tuple[3].category] += 1.0;
    aggregator.Add(collector.Perturb(tuple, &rng));
  }
  for (double& f : true_freq1) f /= static_cast<double>(n);
  for (double& f : true_freq3) f /= static_cast<double>(n);

  EXPECT_EQ(aggregator.num_reports(), n);
  // Mean estimates: tolerance from the per-coordinate variance over n users.
  const double coord_sd = std::sqrt(
      (collector.scalar_mechanism().WorstCaseVariance() + 1.0) * 4.0 /
      static_cast<double>(n));
  auto mean0 = aggregator.EstimateMean(0);
  auto mean2 = aggregator.EstimateMean(2);
  ASSERT_TRUE(mean0.ok());
  ASSERT_TRUE(mean2.ok());
  EXPECT_NEAR(mean0.value(), true_mean0.Mean(), 6.0 * coord_sd);
  EXPECT_NEAR(mean2.value(), true_mean2.Mean(), 6.0 * coord_sd);

  auto freq1 = aggregator.EstimateFrequencies(1);
  auto freq3 = aggregator.EstimateFrequencies(3);
  ASSERT_TRUE(freq1.ok());
  ASSERT_TRUE(freq3.ok());
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_NEAR(freq1.value()[v], true_freq1[v], 0.05) << "v=" << v;
  }
  for (size_t v = 0; v < 5; ++v) {
    EXPECT_NEAR(freq3.value()[v], true_freq3[v], 0.05) << "v=" << v;
  }
}

TEST(MixedAggregatorTest, TypeMismatchesAreRejected) {
  auto collector = MixedTupleCollector::Create(SmallSchema(), 1.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  EXPECT_FALSE(aggregator.EstimateMean(1).ok());
  EXPECT_FALSE(aggregator.EstimateFrequencies(0).ok());
  EXPECT_FALSE(aggregator.EstimateMean(99).ok());
  EXPECT_FALSE(aggregator.EstimateFrequencies(99).ok());
}

TEST(MixedAggregatorTest, EmptyAggregatorEstimatesZero) {
  auto collector = MixedTupleCollector::Create(SmallSchema(), 1.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  EXPECT_EQ(aggregator.num_reports(), 0u);
  auto mean = aggregator.EstimateMean(0);
  ASSERT_TRUE(mean.ok());
  EXPECT_EQ(mean.value(), 0.0);
}

TEST(MixedAggregatorTest, MergeMatchesSequentialAggregation) {
  auto collector_result = MixedTupleCollector::Create(SmallSchema(), 2.0);
  ASSERT_TRUE(collector_result.ok());
  const MixedTupleCollector& collector = collector_result.value();

  MixedAggregator merged_a(&collector), merged_b(&collector),
      sequential(&collector);
  Rng rng_split(3), rng_seq(3);
  for (int i = 0; i < 2000; ++i) {
    MixedTuple tuple(4);
    tuple[0] = AttributeValue::Numeric(0.3);
    tuple[1] = AttributeValue::Categorical(1);
    tuple[2] = AttributeValue::Numeric(-0.2);
    tuple[3] = AttributeValue::Categorical(0);
    const MixedReport split_report = collector.Perturb(tuple, &rng_split);
    (i % 2 == 0 ? merged_a : merged_b).Add(split_report);
    sequential.Add(collector.Perturb(tuple, &rng_seq));
  }
  ASSERT_TRUE(merged_a.Merge(merged_b).ok());
  EXPECT_EQ(merged_a.num_reports(), sequential.num_reports());
  EXPECT_NEAR(merged_a.EstimateMean(0).value(),
              sequential.EstimateMean(0).value(), 1e-12);
  const auto f_merged = merged_a.EstimateFrequencies(3).value();
  const auto f_seq = sequential.EstimateFrequencies(3).value();
  for (size_t v = 0; v < f_merged.size(); ++v) {
    EXPECT_NEAR(f_merged[v], f_seq[v], 1e-12);
  }
}

TEST(MixedAggregatorTest, MergeAcceptsCompatibleCollectorInstances) {
  // Two separately constructed collectors with identical configuration —
  // the cross-process sharding case: reports aggregated on one machine must
  // merge into an aggregator built on another.
  auto collector_a = MixedTupleCollector::Create(SmallSchema(), 2.0);
  auto collector_b = MixedTupleCollector::Create(SmallSchema(), 2.0);
  ASSERT_TRUE(collector_a.ok());
  ASSERT_TRUE(collector_b.ok());
  EXPECT_TRUE(collector_a.value().CompatibleWith(collector_b.value()));

  MixedAggregator a(&collector_a.value()), b(&collector_b.value());
  Rng rng(17);
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.1);
  tuple[1] = AttributeValue::Categorical(2);
  tuple[2] = AttributeValue::Numeric(0.9);
  tuple[3] = AttributeValue::Categorical(4);
  for (int i = 0; i < 100; ++i) {
    a.Add(collector_a.value().Perturb(tuple, &rng));
    b.Add(collector_b.value().Perturb(tuple, &rng));
  }
  EXPECT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.num_reports(), 200u);
}

TEST(MixedAggregatorTest, MergeRejectsIncompatibleCollectors) {
  auto collector = MixedTupleCollector::Create(SmallSchema(), 2.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());

  // Different ε.
  auto other_epsilon = MixedTupleCollector::Create(SmallSchema(), 1.0);
  ASSERT_TRUE(other_epsilon.ok());
  MixedAggregator epsilon_agg(&other_epsilon.value());
  EXPECT_EQ(aggregator.Merge(epsilon_agg).code(),
            StatusCode::kFailedPrecondition);

  // Different dimension.
  auto other_dimension = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(3)}, 2.0);
  ASSERT_TRUE(other_dimension.ok());
  MixedAggregator dimension_agg(&other_dimension.value());
  EXPECT_FALSE(aggregator.Merge(dimension_agg).ok());

  // Same shape, different categorical domain (supports sizes differ).
  auto other_domain = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(3),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(7)},
      2.0);
  ASSERT_TRUE(other_domain.ok());
  MixedAggregator domain_agg(&other_domain.value());
  EXPECT_FALSE(aggregator.Merge(domain_agg).ok());

  // Different oracle kind.
  auto other_oracle = MixedTupleCollector::Create(
      SmallSchema(), 2.0, MechanismKind::kHybrid, FrequencyOracleKind::kGrr);
  ASSERT_TRUE(other_oracle.ok());
  MixedAggregator oracle_agg(&other_oracle.value());
  EXPECT_FALSE(aggregator.Merge(oracle_agg).ok());

  // The failed merges must leave the target untouched.
  EXPECT_EQ(aggregator.num_reports(), 0u);
}

TEST(MixedTupleCollectorTest, AllNumericSchemaBehavesLikeAlgorithm4) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Numeric()}, 1.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  Rng rng(4);
  const uint64_t n = 60000;
  for (uint64_t i = 0; i < n; ++i) {
    MixedTuple tuple(2);
    tuple[0] = AttributeValue::Numeric(0.4);
    tuple[1] = AttributeValue::Numeric(-0.6);
    aggregator.Add(collector.value().Perturb(tuple, &rng));
  }
  EXPECT_NEAR(aggregator.EstimateMean(0).value(), 0.4, 0.1);
  EXPECT_NEAR(aggregator.EstimateMean(1).value(), -0.6, 0.1);
}

TEST(MixedTupleCollectorTest, AllCategoricalSchemaEstimatesFrequencies) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Categorical(2), MixedAttribute::Categorical(2)}, 2.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  Rng rng(5);
  const uint64_t n = 60000;
  for (uint64_t i = 0; i < n; ++i) {
    MixedTuple tuple(2);
    tuple[0] = AttributeValue::Categorical(rng.Bernoulli(0.8) ? 1u : 0u);
    tuple[1] = AttributeValue::Categorical(rng.Bernoulli(0.25) ? 1u : 0u);
    aggregator.Add(collector.value().Perturb(tuple, &rng));
  }
  EXPECT_NEAR(aggregator.EstimateFrequencies(0).value()[1], 0.8, 0.05);
  EXPECT_NEAR(aggregator.EstimateFrequencies(1).value()[1], 0.25, 0.05);
}

}  // namespace
}  // namespace ldp
