#include "util/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "test_util.h"

namespace ldp {
namespace {

TEST(SampleWithoutReplacementTest, ReturnsDistinctInRange) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const std::vector<uint32_t> sample = SampleWithoutReplacement(20, 7, &rng);
    ASSERT_EQ(sample.size(), 7u);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (const uint32_t v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(SampleWithoutReplacementTest, FullSampleIsPermutationOfAll) {
  Rng rng(2);
  std::vector<uint32_t> sample = SampleWithoutReplacement(10, 10, &rng);
  std::sort(sample.begin(), sample.end());
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacementTest, MarginalInclusionIsUniform) {
  // Every index should be included with probability k/n.
  Rng rng(3);
  const uint32_t n = 12, k = 4;
  const int trials = 60000;
  std::vector<int> counts(n, 0);
  for (int t = 0; t < trials; ++t) {
    for (const uint32_t v : SampleWithoutReplacement(n, k, &rng)) ++counts[v];
  }
  const double expected = static_cast<double>(trials) * k / n;
  for (uint32_t v = 0; v < n; ++v) {
    EXPECT_NEAR(counts[v], expected, 5.0 * std::sqrt(expected)) << "v=" << v;
  }
}

TEST(SampleWithoutReplacementTest, SingleElementDomain) {
  Rng rng(4);
  const std::vector<uint32_t> sample = SampleWithoutReplacement(1, 1, &rng);
  ASSERT_EQ(sample.size(), 1u);
  EXPECT_EQ(sample[0], 0u);
}

TEST(ShuffleTest, ProducesPermutation) {
  Rng rng(5);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  Shuffle(&items, &rng);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(ShuffleTest, AllPermutationsOfThreeAppear) {
  Rng rng(6);
  std::map<std::vector<int>, int> counts;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> items = {0, 1, 2};
    Shuffle(&items, &rng);
    ++counts[items];
  }
  ASSERT_EQ(counts.size(), 6u);
  for (const auto& [perm, count] : counts) {
    EXPECT_NEAR(count, trials / 6.0, 5.0 * std::sqrt(trials / 6.0));
  }
}

TEST(ShuffleTest, EmptyAndSingletonAreNoOps) {
  Rng rng(7);
  std::vector<int> empty;
  Shuffle(&empty, &rng);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  Shuffle(&one, &rng);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(AliasSamplerTest, NormalizesWeights) {
  AliasSampler sampler({2.0, 6.0, 2.0});
  EXPECT_DOUBLE_EQ(sampler.Probability(0), 0.2);
  EXPECT_DOUBLE_EQ(sampler.Probability(1), 0.6);
  EXPECT_DOUBLE_EQ(sampler.Probability(2), 0.2);
  EXPECT_EQ(sampler.size(), 3u);
}

TEST(AliasSamplerTest, EmpiricalDistributionMatchesWeights) {
  Rng rng(8);
  const std::vector<double> weights = {1.0, 3.0, 0.5, 5.5};
  AliasSampler sampler(weights);
  const int trials = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int t = 0; t < trials; ++t) ++counts[sampler.Sample(&rng)];
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = trials * weights[i] / total_weight;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected)) << "i=" << i;
  }
}

TEST(AliasSamplerTest, ZeroWeightCategoryNeverSampled) {
  Rng rng(9);
  AliasSampler sampler({1.0, 0.0, 1.0});
  for (int t = 0; t < 10000; ++t) EXPECT_NE(sampler.Sample(&rng), 1u);
}

TEST(AliasSamplerTest, SingleCategory) {
  Rng rng(10);
  AliasSampler sampler({3.0});
  for (int t = 0; t < 100; ++t) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(UniformFromTwoIntervalsTest, CoversBothIntervalsProportionally) {
  Rng rng(11);
  // [-4, -2] has length 2, [1, 2] has length 1: expect 2:1 mass split.
  int left = 0, right = 0;
  const int trials = 90000;
  for (int t = 0; t < trials; ++t) {
    const double x = UniformFromTwoIntervals(-4.0, -2.0, 1.0, 2.0, &rng);
    ASSERT_TRUE((x >= -4.0 && x <= -2.0) || (x >= 1.0 && x <= 2.0));
    (x < 0.0 ? left : right) += 1;
  }
  EXPECT_NEAR(static_cast<double>(left) / trials, 2.0 / 3.0, 0.01);
  EXPECT_NEAR(static_cast<double>(right) / trials, 1.0 / 3.0, 0.01);
}

TEST(UniformFromTwoIntervalsTest, DegenerateFirstInterval) {
  Rng rng(12);
  for (int t = 0; t < 1000; ++t) {
    const double x = UniformFromTwoIntervals(0.0, 0.0, 3.0, 4.0, &rng);
    EXPECT_GE(x, 3.0);
    EXPECT_LE(x, 4.0);
  }
}

TEST(UniformFromTwoIntervalsTest, DegenerateSecondInterval) {
  Rng rng(13);
  for (int t = 0; t < 1000; ++t) {
    const double x = UniformFromTwoIntervals(-2.0, -1.0, 5.0, 5.0, &rng);
    EXPECT_GE(x, -2.0);
    EXPECT_LE(x, -1.0);
  }
}

}  // namespace
}  // namespace ldp
