#include "data/encode.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/census.h"

namespace ldp::data {
namespace {

Dataset SmallDataset() {
  auto schema = Schema::Create({ColumnSpec::Numeric("x", 0.0, 10.0),
                                ColumnSpec::Categorical("c", 3),
                                ColumnSpec::Numeric("y", -5.0, 5.0)});
  EXPECT_TRUE(schema.ok());
  Dataset dataset(schema.value());
  dataset.Resize(3);
  dataset.set_numeric(0, 0, 0.0);
  dataset.set_numeric(1, 0, 5.0);
  dataset.set_numeric(2, 0, 10.0);
  dataset.set_category(0, 1, 0);
  dataset.set_category(1, 1, 1);
  dataset.set_category(2, 1, 2);
  dataset.set_numeric(0, 2, -5.0);
  dataset.set_numeric(1, 2, 0.0);
  dataset.set_numeric(2, 2, 2.5);
  return dataset;
}

TEST(NormalizeNumericTest, MapsToCanonicalDomain) {
  const Dataset normalized = NormalizeNumeric(SmallDataset());
  EXPECT_EQ(normalized.schema().column(0).lo, -1.0);
  EXPECT_EQ(normalized.schema().column(0).hi, 1.0);
  EXPECT_DOUBLE_EQ(normalized.numeric(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(normalized.numeric(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(normalized.numeric(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(normalized.numeric(0, 2), -1.0);
  EXPECT_DOUBLE_EQ(normalized.numeric(2, 2), 0.5);
  // Categorical columns pass through untouched.
  EXPECT_EQ(normalized.category(2, 1), 2u);
  EXPECT_EQ(normalized.schema().column(1).domain_size, 3u);
}

TEST(EncodedFeatureCountTest, CountsNumericAndExpandedCategorical) {
  const Dataset dataset = SmallDataset();
  // Label = column 2: remaining features are 1 numeric + (3-1) binary.
  EXPECT_EQ(EncodedFeatureCount(dataset.schema(), 2), 3u);
  // Label = column 1 (categorical): 2 numeric features remain.
  EXPECT_EQ(EncodedFeatureCount(dataset.schema(), 1), 2u);
}

TEST(EncodeFeaturesTest, OneHotDropsLastLevel) {
  const Dataset dataset = SmallDataset();
  auto matrix = EncodeFeatures(dataset, 2);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix.value().num_rows(), 3u);
  ASSERT_EQ(matrix.value().num_cols(), 3u);
  // Row 0: x=0 → -1; c=0 → (1, 0).
  EXPECT_DOUBLE_EQ(matrix.value().at(0, 0), -1.0);
  EXPECT_DOUBLE_EQ(matrix.value().at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(matrix.value().at(0, 2), 0.0);
  // Row 1: x=5 → 0; c=1 → (0, 1).
  EXPECT_DOUBLE_EQ(matrix.value().at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(matrix.value().at(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(matrix.value().at(1, 2), 1.0);
  // Row 2: c=2 (last level) → (0, 0).
  EXPECT_DOUBLE_EQ(matrix.value().at(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(matrix.value().at(2, 2), 0.0);
}

TEST(EncodeFeaturesTest, AllFeatureValuesWithinUnitRange) {
  auto census = MakeBrazilCensus(2000, 1);
  ASSERT_TRUE(census.ok());
  const uint32_t label =
      census.value().schema().FindColumn(kIncomeColumn).value();
  auto matrix = EncodeFeatures(census.value(), label);
  ASSERT_TRUE(matrix.ok());
  for (const double v : matrix.value().values()) {
    ASSERT_GE(v, -1.0);
    ASSERT_LE(v, 1.0);
  }
  // BR: 16 attrs → 5 numeric features + Σ(k_i − 1) binaries = 90 − 1 … the
  // paper's post-encoding dimensionality of 90 includes the label; here the
  // label (numeric) is excluded, so 5 numeric + 34 binary.
  EXPECT_EQ(matrix.value().num_cols(),
            EncodedFeatureCount(census.value().schema(), label));
}

TEST(EncodeFeaturesTest, RejectsBadLabelColumn) {
  EXPECT_FALSE(EncodeFeatures(SmallDataset(), 99).ok());
}

TEST(EncodeNumericLabelTest, NormalizesToCanonical) {
  auto labels = EncodeNumericLabel(SmallDataset(), 0);
  ASSERT_TRUE(labels.ok());
  EXPECT_DOUBLE_EQ(labels.value()[0], -1.0);
  EXPECT_DOUBLE_EQ(labels.value()[1], 0.0);
  EXPECT_DOUBLE_EQ(labels.value()[2], 1.0);
}

TEST(EncodeNumericLabelTest, RejectsCategoricalColumn) {
  EXPECT_FALSE(EncodeNumericLabel(SmallDataset(), 1).ok());
  EXPECT_FALSE(EncodeNumericLabel(SmallDataset(), 9).ok());
}

TEST(EncodeBinaryLabelTest, SplitsAtColumnMean) {
  auto labels = EncodeBinaryLabel(SmallDataset(), 0);
  ASSERT_TRUE(labels.ok());
  // Mean of {0, 5, 10} is 5; only 10 exceeds it.
  EXPECT_EQ(labels.value(), (std::vector<double>{-1.0, -1.0, 1.0}));
}

TEST(EncodeBinaryLabelTest, RejectsCategoricalOrEmpty) {
  EXPECT_FALSE(EncodeBinaryLabel(SmallDataset(), 1).ok());
  auto schema = Schema::Create({ColumnSpec::Numeric("x", 0.0, 1.0)});
  ASSERT_TRUE(schema.ok());
  Dataset empty(schema.value());
  EXPECT_FALSE(EncodeBinaryLabel(empty, 0).ok());
}

TEST(DesignMatrixTest, RowPointerIsContiguous) {
  DesignMatrix matrix(2, 3);
  matrix.set(1, 0, 4.0);
  matrix.set(1, 2, 6.0);
  const double* row = matrix.row(1);
  EXPECT_DOUBLE_EQ(row[0], 4.0);
  EXPECT_DOUBLE_EQ(row[1], 0.0);
  EXPECT_DOUBLE_EQ(row[2], 6.0);
}

}  // namespace
}  // namespace ldp::data
