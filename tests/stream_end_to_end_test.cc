// End-to-end equivalence of the deployment split: privatizing users into
// framed shard streams (the ldp_report path), ingesting the shards
// concurrently and reducing them in order (the ldp_aggregate path) must
// reproduce the in-process Pipeline::Collect simulation BIT FOR BIT — same
// seeds, same chunk boundaries, same estimates, regardless of how many
// threads either side uses.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "api/pipeline.h"
#include "data/census.h"
#include "data/encode.h"
#include "stream/parallel_ingest.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "stream/snapshot.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

constexpr double kEpsilon = 4.0;
constexpr uint64_t kSeed = 123;
constexpr uint64_t kRows = 4000;

data::Dataset MakeData() {
  auto dataset = data::MakeBrazilCensus(kRows, 7);
  EXPECT_TRUE(dataset.ok());
  return data::NormalizeNumeric(dataset.value());
}

// The in-process golden run every deployment shape must reproduce, through
// the session facade (the retired CollectProposed wrapper inlined).
Result<api::CollectionOutput> CollectProposed(const data::Dataset& dataset,
                                              double epsilon, uint64_t seed,
                                              MechanismKind numeric_kind,
                                              FrequencyOracleKind oracle_kind,
                                              ThreadPool* pool) {
  api::PipelineConfig config;
  config.epsilon = epsilon;
  config.mechanism = numeric_kind;
  config.oracle = oracle_kind;
  LDP_ASSIGN_OR_RETURN(config.attributes,
                       api::AttributesFromSchema(dataset.schema()));
  Result<api::Pipeline> pipeline = api::Pipeline::Create(std::move(config));
  if (!pipeline.ok()) return pipeline.status();
  return pipeline.value().Collect(dataset, seed, pool);
}

MixedTupleCollector MakeCollector(const data::Dataset& dataset) {
  auto schema = api::AttributesFromSchema(dataset.schema());
  EXPECT_TRUE(schema.ok());
  auto collector =
      MixedTupleCollector::Create(std::move(schema).value(), kEpsilon);
  EXPECT_TRUE(collector.ok());
  return std::move(collector).value();
}

// The client half: privatizes rows [range.begin, range.end) into one framed
// stream, exactly as tools/ldp_report does.
std::string WriteShard(const data::Dataset& dataset,
                       const MixedTupleCollector& collector,
                       IndexRange range) {
  std::ostringstream out;
  stream::ReportStreamWriter writer(&out,
                                    stream::MakeMixedStreamHeader(collector));
  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  MixedTuple tuple(d);
  for (uint64_t row = range.begin; row < range.end; ++row) {
    for (uint32_t col = 0; col < d; ++col) {
      if (schema.column(col).type == data::ColumnType::kNumeric) {
        tuple[col].numeric = dataset.numeric(row, col);
      } else {
        tuple[col].category = dataset.category(row, col);
      }
    }
    Rng rng = api::UserRng(kSeed, row);
    EXPECT_TRUE(
        writer.WriteMixedReport(collector.Perturb(tuple, &rng), collector)
            .ok());
  }
  return out.str();
}

// Shard streams whose boundaries match a ParallelFor run on `pool_threads`
// workers (ParallelFor splits into threads*4 chunks).
std::vector<std::string> WriteShards(const data::Dataset& dataset,
                                     const MixedTupleCollector& collector,
                                     unsigned pool_threads) {
  std::vector<std::string> shards;
  for (const IndexRange range :
       SplitRange(dataset.num_rows(), pool_threads * 4)) {
    shards.push_back(WriteShard(dataset, collector, range));
  }
  return shards;
}

void ExpectBitIdentical(const MixedAggregator& total,
                        const api::CollectionOutput& expected) {
  for (size_t j = 0; j < expected.numeric_columns.size(); ++j) {
    auto mean = total.EstimateMean(expected.numeric_columns[j]);
    ASSERT_TRUE(mean.ok());
    EXPECT_EQ(mean.value(), expected.estimated_means[j]) << "attribute " << j;
  }
  for (size_t c = 0; c < expected.categorical_columns.size(); ++c) {
    auto freqs = total.EstimateFrequencies(expected.categorical_columns[c]);
    ASSERT_TRUE(freqs.ok());
    ASSERT_EQ(freqs.value().size(), expected.estimated_frequencies[c].size());
    for (size_t v = 0; v < freqs.value().size(); ++v) {
      EXPECT_EQ(freqs.value()[v], expected.estimated_frequencies[c][v])
          << "attribute " << c << " value " << v;
    }
  }
}

TEST(StreamEndToEndTest, ShardedIngestReproducesCollectProposedBitForBit) {
  const data::Dataset dataset = MakeData();
  const MixedTupleCollector collector = MakeCollector(dataset);

  constexpr unsigned kPoolThreads = 2;
  ThreadPool pool(kPoolThreads);
  auto expected = CollectProposed(dataset, kEpsilon, kSeed,
                                             MechanismKind::kHybrid,
                                             FrequencyOracleKind::kOue, &pool);
  ASSERT_TRUE(expected.ok());

  const std::vector<std::string> shards =
      WriteShards(dataset, collector, kPoolThreads);
  ASSERT_GE(shards.size(), 2u);

  // Server reduces the shards with various thread counts — including more
  // ingest workers than shards — and always lands on the same bits.
  for (const unsigned server_threads : {0u, 3u, 16u}) {
    std::unique_ptr<ThreadPool> server_pool;
    if (server_threads > 0) {
      server_pool = std::make_unique<ThreadPool>(server_threads);
    }
    stream::MultiShardSummary summary;
    auto total = stream::IngestShardBuffers(collector, shards,
                                            server_pool.get(),
                                            stream::ShardIngester::Options(),
                                            &summary);
    ASSERT_TRUE(total.ok());
    EXPECT_EQ(total.value().num_reports(), kRows);
    EXPECT_EQ(summary.total_reports, kRows);
    EXPECT_EQ(summary.total_rejected, 0u);
    ExpectBitIdentical(total.value(), expected.value());
  }
}

TEST(StreamEndToEndTest, SnapshotReductionReproducesCollectProposed) {
  const data::Dataset dataset = MakeData();
  const MixedTupleCollector collector = MakeCollector(dataset);

  constexpr unsigned kPoolThreads = 2;
  ThreadPool pool(kPoolThreads);
  auto expected = CollectProposed(dataset, kEpsilon, kSeed,
                                             MechanismKind::kHybrid,
                                             FrequencyOracleKind::kOue, &pool);
  ASSERT_TRUE(expected.ok());

  // Each shard is ingested on its own "machine", snapshotted to bytes,
  // decoded on the reducer, and merged in shard order.
  MixedAggregator total(&collector);
  for (const std::string& shard :
       WriteShards(dataset, collector, kPoolThreads)) {
    stream::ShardIngester ingester(&collector);
    ASSERT_TRUE(ingester.Feed(shard).ok());
    ASSERT_TRUE(ingester.Finish().ok());
    const std::string snapshot =
        stream::EncodeAggregatorSnapshot(ingester.aggregator());
    auto decoded = stream::DecodeAggregatorSnapshot(snapshot, &collector);
    ASSERT_TRUE(decoded.ok());
    ASSERT_TRUE(total.Merge(decoded.value()).ok());
  }
  EXPECT_EQ(total.num_reports(), kRows);
  ExpectBitIdentical(total, expected.value());
}

TEST(StreamEndToEndTest, CollectProposedIsDeterministicPerThreadCount) {
  const data::Dataset dataset = MakeData();
  ThreadPool pool_a(3), pool_b(3);
  auto run_a = CollectProposed(dataset, kEpsilon, kSeed,
                                          MechanismKind::kHybrid,
                                          FrequencyOracleKind::kOue, &pool_a);
  auto run_b = CollectProposed(dataset, kEpsilon, kSeed,
                                          MechanismKind::kHybrid,
                                          FrequencyOracleKind::kOue, &pool_b);
  ASSERT_TRUE(run_a.ok());
  ASSERT_TRUE(run_b.ok());
  EXPECT_EQ(run_a.value().estimated_means, run_b.value().estimated_means);
  EXPECT_EQ(run_a.value().estimated_frequencies,
            run_b.value().estimated_frequencies);
}

TEST(StreamEndToEndTest, CorruptShardDoesNotPoisonTheRun) {
  const data::Dataset dataset = MakeData();
  const MixedTupleCollector collector = MakeCollector(dataset);
  std::vector<std::string> shards = WriteShards(dataset, collector, 1);
  ASSERT_FALSE(shards.empty());
  // Append a garbage frame: the ingest keeps going and reports it rejected.
  std::string garbage;
  ASSERT_TRUE(stream::AppendFrame("garbage payload", &garbage).ok());
  shards.back() += garbage;
  stream::MultiShardSummary summary;
  auto total = stream::IngestShardBuffers(collector, shards, nullptr,
                                          stream::ShardIngester::Options(),
                                          &summary);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value().num_reports(), kRows);
  EXPECT_EQ(summary.total_rejected, 1u);
}

}  // namespace
}  // namespace ldp
