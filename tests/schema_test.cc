#include "data/schema.h"

#include <gtest/gtest.h>

namespace ldp::data {
namespace {

TEST(SchemaTest, CreateValidSchema) {
  auto schema = Schema::Create({ColumnSpec::Numeric("age", 0.0, 100.0),
                                ColumnSpec::Categorical("gender", 2)});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().num_columns(), 2u);
  EXPECT_EQ(schema.value().NumNumericColumns(), 1u);
  EXPECT_EQ(schema.value().NumCategoricalColumns(), 1u);
}

TEST(SchemaTest, RejectsEmptyName) {
  EXPECT_FALSE(Schema::Create({ColumnSpec::Numeric("", 0.0, 1.0)}).ok());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  EXPECT_FALSE(Schema::Create({ColumnSpec::Numeric("x", 0.0, 1.0),
                               ColumnSpec::Categorical("x", 3)})
                   .ok());
}

TEST(SchemaTest, RejectsBadNumericBounds) {
  EXPECT_FALSE(Schema::Create({ColumnSpec::Numeric("x", 1.0, 1.0)}).ok());
  EXPECT_FALSE(Schema::Create({ColumnSpec::Numeric("x", 2.0, 1.0)}).ok());
  EXPECT_FALSE(Schema::Create({ColumnSpec::Numeric(
                                   "x", 0.0,
                                   std::numeric_limits<double>::infinity())})
                   .ok());
}

TEST(SchemaTest, RejectsDegenerateCategoricalDomain) {
  EXPECT_FALSE(Schema::Create({ColumnSpec::Categorical("x", 0)}).ok());
  EXPECT_FALSE(Schema::Create({ColumnSpec::Categorical("x", 1)}).ok());
}

TEST(SchemaTest, EmptySchemaIsAllowed) {
  auto schema = Schema::Create({});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().num_columns(), 0u);
}

TEST(SchemaTest, FindColumnByName) {
  auto schema = Schema::Create({ColumnSpec::Numeric("a", -1.0, 1.0),
                                ColumnSpec::Categorical("b", 4),
                                ColumnSpec::Numeric("c", 0.0, 9.0)});
  ASSERT_TRUE(schema.ok());
  auto idx = schema.value().FindColumn("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(schema.value().FindColumn("missing").ok());
}

TEST(SchemaTest, ColumnIndexLists) {
  auto schema = Schema::Create({ColumnSpec::Numeric("a", -1.0, 1.0),
                                ColumnSpec::Categorical("b", 4),
                                ColumnSpec::Numeric("c", 0.0, 9.0),
                                ColumnSpec::Categorical("d", 2)});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().NumericColumnIndices(),
            (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(schema.value().CategoricalColumnIndices(),
            (std::vector<uint32_t>{1, 3}));
}

TEST(SchemaTest, EqualsComparesStructure) {
  auto a = Schema::Create({ColumnSpec::Numeric("x", 0.0, 1.0)});
  auto b = Schema::Create({ColumnSpec::Numeric("x", 0.0, 1.0)});
  auto c = Schema::Create({ColumnSpec::Numeric("x", 0.0, 2.0)});
  auto d = Schema::Create({ColumnSpec::Categorical("x", 2)});
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_TRUE(a.value().Equals(b.value()));
  EXPECT_FALSE(a.value().Equals(c.value()));
  EXPECT_FALSE(a.value().Equals(d.value()));
  EXPECT_FALSE(a.value().Equals(Schema()));
}

TEST(SchemaTest, ColumnAccessorReturnsSpec) {
  auto schema = Schema::Create({ColumnSpec::Categorical("k", 7)});
  ASSERT_TRUE(schema.ok());
  const ColumnSpec& spec = schema.value().column(0);
  EXPECT_EQ(spec.name, "k");
  EXPECT_EQ(spec.type, ColumnType::kCategorical);
  EXPECT_EQ(spec.domain_size, 7u);
}

}  // namespace
}  // namespace ldp::data
