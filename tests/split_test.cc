#include "data/split.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ldp::data {
namespace {

class KFoldTest : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, KFoldTest,
    ::testing::Combine(::testing::Values(10u, 100u, 1003u),
                       ::testing::Values(2u, 5u, 10u)));

TEST_P(KFoldTest, FoldsPartitionAllRows) {
  const auto [n, folds] = GetParam();
  Rng rng(1);
  auto splits = KFoldSplit(n, folds, &rng);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits.value().size(), folds);

  std::set<uint64_t> all_test_rows;
  for (const Split& split : splits.value()) {
    // Each fold: train + test = everything, disjoint.
    EXPECT_EQ(split.train.size() + split.test.size(), n);
    std::set<uint64_t> train(split.train.begin(), split.train.end());
    std::set<uint64_t> test(split.test.begin(), split.test.end());
    EXPECT_EQ(train.size(), split.train.size());
    EXPECT_EQ(test.size(), split.test.size());
    for (const uint64_t row : test) {
      EXPECT_EQ(train.count(row), 0u);
      EXPECT_TRUE(all_test_rows.insert(row).second)
          << "row in two test folds";
    }
  }
  // Every row appears in exactly one test fold.
  EXPECT_EQ(all_test_rows.size(), n);
}

TEST_P(KFoldTest, FoldSizesAreBalanced) {
  const auto [n, folds] = GetParam();
  Rng rng(2);
  auto splits = KFoldSplit(n, folds, &rng);
  ASSERT_TRUE(splits.ok());
  for (const Split& split : splits.value()) {
    EXPECT_GE(split.test.size(), n / folds);
    EXPECT_LE(split.test.size(), n / folds + 1);
  }
}

TEST(KFoldTest, ValidatesArguments) {
  Rng rng(3);
  EXPECT_FALSE(KFoldSplit(10, 1, &rng).ok());
  EXPECT_FALSE(KFoldSplit(10, 0, &rng).ok());
  EXPECT_FALSE(KFoldSplit(3, 5, &rng).ok());
  EXPECT_TRUE(KFoldSplit(5, 5, &rng).ok());
}

TEST(KFoldTest, LeaveOneOutWhenFoldsEqualRows) {
  Rng rng(4);
  auto splits = KFoldSplit(6, 6, &rng);
  ASSERT_TRUE(splits.ok());
  for (const Split& split : splits.value()) {
    EXPECT_EQ(split.test.size(), 1u);
    EXPECT_EQ(split.train.size(), 5u);
  }
}

TEST(KFoldTest, ShufflesRows) {
  Rng rng(5);
  auto splits = KFoldSplit(1000, 2, &rng);
  ASSERT_TRUE(splits.ok());
  // If unshuffled, fold 0's test set would be exactly {0..499}.
  const std::vector<uint64_t>& test = splits.value()[0].test;
  bool any_large = false;
  for (const uint64_t row : test) any_large |= (row >= 500);
  EXPECT_TRUE(any_large);
}

TEST(TrainTestSplitTest, SplitsByFraction) {
  Rng rng(6);
  auto split = TrainTestSplit(100, 0.25, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split.value().test.size(), 25u);
  EXPECT_EQ(split.value().train.size(), 75u);
  std::set<uint64_t> all;
  for (const uint64_t r : split.value().train) all.insert(r);
  for (const uint64_t r : split.value().test) all.insert(r);
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, ValidatesFraction) {
  Rng rng(7);
  EXPECT_FALSE(TrainTestSplit(100, 0.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplit(100, 1.0, &rng).ok());
  EXPECT_FALSE(TrainTestSplit(100, -0.5, &rng).ok());
  // A fraction that rounds to an empty test set is rejected.
  EXPECT_FALSE(TrainTestSplit(3, 0.1, &rng).ok());
}

TEST(TrainTestSplitTest, DeterministicInSeed) {
  Rng rng_a(8), rng_b(8);
  auto a = TrainTestSplit(50, 0.2, &rng_a);
  auto b = TrainTestSplit(50, 0.2, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().test, b.value().test);
  EXPECT_EQ(a.value().train, b.value().train);
}

}  // namespace
}  // namespace ldp::data
