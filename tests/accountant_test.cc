#include "core/accountant.h"

#include <gtest/gtest.h>

#include <limits>

namespace ldp {
namespace {

TEST(PrivacyAccountantTest, CreateValidatesBudget) {
  EXPECT_TRUE(PrivacyAccountant::Create(1.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Create(0.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Create(-1.0).ok());
  EXPECT_FALSE(
      PrivacyAccountant::Create(std::numeric_limits<double>::infinity())
          .ok());
}

TEST(PrivacyAccountantTest, UnseenUsersHaveFullBudget) {
  auto accountant = PrivacyAccountant::Create(2.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_DOUBLE_EQ(accountant.value().Remaining(42), 2.0);
  EXPECT_DOUBLE_EQ(accountant.value().Spent(42), 0.0);
  EXPECT_EQ(accountant.value().num_charged_users(), 0u);
}

TEST(PrivacyAccountantTest, ChargesAccumulatePerUser) {
  auto accountant = PrivacyAccountant::Create(2.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_TRUE(accountant.value().Charge(1, 0.5).ok());
  EXPECT_TRUE(accountant.value().Charge(1, 0.75).ok());
  EXPECT_TRUE(accountant.value().Charge(2, 1.0).ok());
  EXPECT_DOUBLE_EQ(accountant.value().Spent(1), 1.25);
  EXPECT_DOUBLE_EQ(accountant.value().Remaining(1), 0.75);
  EXPECT_DOUBLE_EQ(accountant.value().Spent(2), 1.0);
  EXPECT_EQ(accountant.value().num_charged_users(), 2u);
}

TEST(PrivacyAccountantTest, RefusesOverdraftWithoutCharging) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_TRUE(accountant.value().Charge(7, 0.8).ok());
  const Status overdraft = accountant.value().Charge(7, 0.3);
  EXPECT_EQ(overdraft.code(), StatusCode::kFailedPrecondition);
  // The failed charge must not have consumed anything.
  EXPECT_DOUBLE_EQ(accountant.value().Spent(7), 0.8);
  // A smaller charge that fits still works.
  EXPECT_TRUE(accountant.value().Charge(7, 0.2).ok());
  EXPECT_NEAR(accountant.value().Remaining(7), 0.0, 1e-12);
}

TEST(PrivacyAccountantTest, RejectsBadCharges) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_EQ(accountant.value().Charge(1, 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.value().Charge(1, -0.5).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.value()
                .Charge(1, std::numeric_limits<double>::quiet_NaN())
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PrivacyAccountantTest, CanChargePredictsChargeOutcome) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_TRUE(accountant.value().CanCharge(3, 1.0));
  EXPECT_FALSE(accountant.value().CanCharge(3, 1.5));
  EXPECT_FALSE(accountant.value().CanCharge(3, -1.0));
  ASSERT_TRUE(accountant.value().Charge(3, 0.6).ok());
  EXPECT_TRUE(accountant.value().CanCharge(3, 0.4));
  EXPECT_FALSE(accountant.value().CanCharge(3, 0.5));
}

TEST(PrivacyAccountantTest, ExactBudgetSpendingIsAllowed) {
  // Spending the budget in several exact slices must not be rejected due to
  // floating-point drift.
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(accountant.value().Charge(9, 0.1).ok()) << "slice " << i;
  }
  EXPECT_NEAR(accountant.value().Remaining(9), 0.0, 1e-9);
  EXPECT_FALSE(accountant.value().Charge(9, 0.01).ok());
}

TEST(PrivacyAccountantTest, SgdSingleParticipationPattern) {
  // The Section V rule: each user powers at most one iteration at the full
  // budget. A second participation must be refused.
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  const double per_iteration = 1.0;
  EXPECT_TRUE(accountant.value().Charge(100, per_iteration).ok());
  EXPECT_FALSE(accountant.value().CanCharge(100, per_iteration));
}

}  // namespace
}  // namespace ldp
