#include "core/accountant.h"

#include <gtest/gtest.h>

#include <limits>

namespace ldp {
namespace {

TEST(PrivacyAccountantTest, CreateValidatesBudget) {
  EXPECT_TRUE(PrivacyAccountant::Create(1.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Create(0.0).ok());
  EXPECT_FALSE(PrivacyAccountant::Create(-1.0).ok());
  EXPECT_FALSE(
      PrivacyAccountant::Create(std::numeric_limits<double>::infinity())
          .ok());
}

TEST(PrivacyAccountantTest, UnseenReportersHaveFullBudget) {
  auto accountant = PrivacyAccountant::Create(2.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_DOUBLE_EQ(accountant.value().Remaining("alice"), 2.0);
  EXPECT_DOUBLE_EQ(accountant.value().Spent("alice"), 0.0);
  EXPECT_EQ(accountant.value().Refusals("alice"), 0u);
  EXPECT_EQ(accountant.value().num_charged_reporters(), 0u);
}

TEST(PrivacyAccountantTest, ChargesAccumulateAcrossEpochsPerReporter) {
  auto accountant = PrivacyAccountant::Create(2.0);
  ASSERT_TRUE(accountant.ok());
  auto first = accountant.value().Charge("alice", 0, 0.5);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().accepted);
  EXPECT_DOUBLE_EQ(first.value().spent, 0.5);
  EXPECT_DOUBLE_EQ(first.value().remaining, 1.5);
  auto second = accountant.value().Charge("alice", 1, 0.75);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().accepted);
  EXPECT_DOUBLE_EQ(second.value().spent, 1.25);
  auto other = accountant.value().Charge("bob", 0, 1.0);
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other.value().accepted);
  EXPECT_DOUBLE_EQ(accountant.value().Spent("alice"), 1.25);
  EXPECT_DOUBLE_EQ(accountant.value().Remaining("alice"), 0.75);
  EXPECT_DOUBLE_EQ(accountant.value().Spent("bob"), 1.0);
  EXPECT_EQ(accountant.value().num_charged_reporters(), 2u);
}

TEST(PrivacyAccountantTest, SameEpochChargesExactlyOnce) {
  // The paper's per-user guarantee: a reporter who reconnects, opens more
  // shards, or arrives via two relay edges in one epoch spends ε once.
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  for (int attempt = 0; attempt < 5; ++attempt) {
    auto outcome = accountant.value().Charge("alice", 0, 1.0);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().accepted);
    EXPECT_DOUBLE_EQ(outcome.value().spent, 1.0);
    EXPECT_EQ(outcome.value().refusals, 0u);
  }
  EXPECT_DOUBLE_EQ(accountant.value().Spent("alice"), 1.0);
}

TEST(PrivacyAccountantTest, RefusesOverdraftWithoutChargingAndCountsIt) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  ASSERT_TRUE(accountant.value().Charge("carol", 0, 0.8).value().accepted);
  auto overdraft = accountant.value().Charge("carol", 1, 0.3);
  ASSERT_TRUE(overdraft.ok());
  EXPECT_FALSE(overdraft.value().accepted);
  EXPECT_EQ(overdraft.value().refusals, 1u);
  // The failed charge must not have consumed anything.
  EXPECT_DOUBLE_EQ(overdraft.value().spent, 0.8);
  EXPECT_DOUBLE_EQ(accountant.value().Spent("carol"), 0.8);
  EXPECT_EQ(accountant.value().Refusals("carol"), 1u);
  EXPECT_EQ(accountant.value().total_refusals(), 1u);
  // A smaller charge that fits still works, in a fresh epoch.
  EXPECT_TRUE(accountant.value().Charge("carol", 2, 0.2).value().accepted);
  EXPECT_NEAR(accountant.value().Remaining("carol"), 0.0, 1e-12);
  // Refusals are per reporter: another id is unaffected.
  EXPECT_EQ(accountant.value().Refusals("dave"), 0u);
}

TEST(PrivacyAccountantTest, RejectsBadChargesAsErrorsNotRefusals) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_EQ(accountant.value().Charge("x", 0, 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.value().Charge("x", 0, -0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(accountant.value()
                .Charge("x", 0, std::numeric_limits<double>::quiet_NaN())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Caller bugs never count as budget refusals.
  EXPECT_EQ(accountant.value().Refusals("x"), 0u);
}

TEST(PrivacyAccountantTest, CanChargePredictsChargeOutcome) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_TRUE(accountant.value().CanCharge("eve", 1.0));
  EXPECT_FALSE(accountant.value().CanCharge("eve", 1.5));
  EXPECT_FALSE(accountant.value().CanCharge("eve", -1.0));
  ASSERT_TRUE(accountant.value().Charge("eve", 0, 0.6).value().accepted);
  EXPECT_TRUE(accountant.value().CanCharge("eve", 0.4));
  EXPECT_FALSE(accountant.value().CanCharge("eve", 0.5));
}

TEST(PrivacyAccountantTest, ExactBudgetSpendingIsAllowed) {
  // Spending the budget in several exact slices must not be rejected due to
  // floating-point drift.
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  for (uint32_t epoch = 0; epoch < 10; ++epoch) {
    auto outcome = accountant.value().Charge("frank", epoch, 0.1);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().accepted) << "slice " << epoch;
  }
  EXPECT_NEAR(accountant.value().Remaining("frank"), 0.0, 1e-9);
  EXPECT_FALSE(accountant.value().Charge("frank", 10, 0.01).value().accepted);
}

TEST(PrivacyAccountantTest, AnonymousReporterIsTheLegacySingleLedger) {
  // The identity-free paths charge kAnonymousReporter; its ledger behaves
  // exactly like the old single-user accountant.
  auto accountant = PrivacyAccountant::Create(2.0);
  ASSERT_TRUE(accountant.ok());
  ASSERT_TRUE(accountant.value()
                  .Charge(kAnonymousReporter, 0, 1.0)
                  .value()
                  .accepted);
  ASSERT_TRUE(accountant.value()
                  .Charge(kAnonymousReporter, 1, 1.0)
                  .value()
                  .accepted);
  EXPECT_DOUBLE_EQ(accountant.value().Spent(kAnonymousReporter), 2.0);
  EXPECT_FALSE(accountant.value()
                   .Charge(kAnonymousReporter, 2, 1.0)
                   .value()
                   .accepted);
}

TEST(PrivacyAccountantTest, SgdSingleParticipationPattern) {
  // The Section V rule: each user powers at most one iteration at the full
  // budget. A second participation (a later epoch) must be refused.
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  EXPECT_TRUE(accountant.value().Charge("user-100", 0, 1.0).value().accepted);
  EXPECT_FALSE(accountant.value().CanCharge("user-100", 1.0));
  EXPECT_FALSE(accountant.value().Charge("user-100", 1, 1.0).value().accepted);
}

TEST(PrivacyAccountantTest, RestoreChargeIsExactAndConflictChecked) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  ASSERT_TRUE(accountant.value().RestoreCharge("alice", 0, 1.0).ok());
  // Idempotent: the same entry restores cleanly (two relay edges both saw
  // alice in epoch 0).
  ASSERT_TRUE(accountant.value().RestoreCharge("alice", 0, 1.0).ok());
  EXPECT_DOUBLE_EQ(accountant.value().Spent("alice"), 1.0);
  // A conflicting spend for the same (reporter, epoch) is corruption.
  EXPECT_EQ(accountant.value().RestoreCharge("alice", 0, 0.5).code(),
            StatusCode::kFailedPrecondition);
  // Restores bypass the lifetime check — the originating edge enforced it.
  ASSERT_TRUE(accountant.value().RestoreCharge("alice", 1, 1.0).ok());
  EXPECT_DOUBLE_EQ(accountant.value().Spent("alice"), 2.0);
}

TEST(PrivacyAccountantTest, MergeUnionsLedgersByReporterAndEpoch) {
  auto left = PrivacyAccountant::Create(4.0);
  auto right = PrivacyAccountant::Create(4.0);
  ASSERT_TRUE(left.ok() && right.ok());
  // Alice reported to both edges in epoch 0 (sharded across edges), and
  // only to the right edge in epoch 1; bob only exists on the right.
  ASSERT_TRUE(left.value().Charge("alice", 0, 1.0).value().accepted);
  ASSERT_TRUE(right.value().Charge("alice", 0, 1.0).value().accepted);
  ASSERT_TRUE(right.value().Charge("alice", 1, 1.0).value().accepted);
  ASSERT_TRUE(right.value().Charge("bob", 0, 1.0).value().accepted);
  right.value().RestoreRefusals("bob", 2);

  ASSERT_TRUE(left.value().MergeFrom(right.value()).ok());
  // Exactly-once across edges: epoch 0 merged, not summed.
  EXPECT_DOUBLE_EQ(left.value().Spent("alice"), 2.0);
  EXPECT_DOUBLE_EQ(left.value().Spent("bob"), 1.0);
  EXPECT_EQ(left.value().Refusals("bob"), 2u);
  EXPECT_EQ(left.value().num_charged_reporters(), 2u);

  // Merging twice stays a no-op (idempotent fold at the relay root).
  ASSERT_TRUE(left.value().MergeFrom(right.value()).ok());
  EXPECT_DOUBLE_EQ(left.value().Spent("alice"), 2.0);
  EXPECT_EQ(left.value().Refusals("bob"), 4u);  // refusal counters do add
}

TEST(PrivacyAccountantTest, LedgersIterateInSortedReporterOrder) {
  auto accountant = PrivacyAccountant::Create(1.0);
  ASSERT_TRUE(accountant.ok());
  ASSERT_TRUE(accountant.value().Charge("zed", 0, 0.1).value().accepted);
  ASSERT_TRUE(accountant.value().Charge("amy", 0, 0.1).value().accepted);
  ASSERT_TRUE(accountant.value().Charge("mia", 0, 0.1).value().accepted);
  std::vector<std::string> order;
  for (const auto& [reporter, ledger] : accountant.value().ledgers()) {
    order.push_back(reporter);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"amy", "mia", "zed"}));
}

}  // namespace
}  // namespace ldp
