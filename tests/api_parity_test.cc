// The redesign contract of the api::Pipeline facade: Pipeline::Collect must
// stay BIT-IDENTICAL to the paper's per-user collection loops. The golden
// behavior is pinned by re-running the original loops inline
// (collector.Perturb + UserRng + chunk-ordered aggregation) and comparing
// every estimated bit against the facade's output.

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "aggregate/estimators.h"
#include "api/pipeline.h"
#include "api/server_session.h"
#include "baselines/duchi_multi_dim.h"
#include "data/census.h"
#include "data/encode.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

constexpr double kEpsilon = 4.0;
constexpr uint64_t kSeed = 99;
constexpr uint64_t kRows = 3000;

data::Dataset MakeData() {
  auto dataset = data::MakeBrazilCensus(kRows, 11);
  EXPECT_TRUE(dataset.ok());
  return data::NormalizeNumeric(dataset.value());
}

// One facade collection run over `dataset` with the schema filled in.
Result<api::CollectionOutput> CollectViaPipeline(const data::Dataset& dataset,
                                                 api::PipelineConfig config,
                                                 ThreadPool* pool = nullptr) {
  LDP_ASSIGN_OR_RETURN(config.attributes,
                       api::AttributesFromSchema(dataset.schema()));
  Result<api::Pipeline> pipeline = api::Pipeline::Create(std::move(config));
  if (!pipeline.ok()) return pipeline.status();
  return pipeline.value().Collect(dataset, kSeed, pool);
}

// The paper's proposed loop, spelled out: one aggregator, rows in order,
// UserRng per row.
MixedAggregator DirectProposed(const data::Dataset& dataset,
                               const MixedTupleCollector& collector) {
  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  MixedAggregator aggregator(&collector);
  MixedTuple tuple(d);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    for (uint32_t col = 0; col < d; ++col) {
      if (schema.column(col).type == data::ColumnType::kNumeric) {
        tuple[col].numeric = dataset.numeric(row, col);
      } else {
        tuple[col].category = dataset.category(row, col);
      }
    }
    Rng rng = api::UserRng(kSeed, row);
    aggregator.Add(collector.Perturb(tuple, &rng));
  }
  return aggregator;
}

TEST(ApiParityTest, PipelineCollectMatchesDirectSimulationBitForBit) {
  const data::Dataset dataset = MakeData();
  auto schema = api::AttributesFromSchema(dataset.schema());
  ASSERT_TRUE(schema.ok());
  auto collector =
      MixedTupleCollector::Create(std::move(schema).value(), kEpsilon);
  ASSERT_TRUE(collector.ok());
  const MixedAggregator direct =
      DirectProposed(dataset, collector.value());

  api::PipelineConfig config;
  config.epsilon = kEpsilon;
  auto output = CollectViaPipeline(dataset, std::move(config));
  ASSERT_TRUE(output.ok());
  for (size_t j = 0; j < output.value().numeric_columns.size(); ++j) {
    auto mean = direct.EstimateMean(output.value().numeric_columns[j]);
    ASSERT_TRUE(mean.ok());
    EXPECT_EQ(output.value().estimated_means[j], mean.value());
  }
  for (size_t c = 0; c < output.value().categorical_columns.size(); ++c) {
    auto freqs =
        direct.EstimateFrequencies(output.value().categorical_columns[c]);
    ASSERT_TRUE(freqs.ok());
    EXPECT_EQ(output.value().estimated_frequencies[c], freqs.value());
  }
}

TEST(ApiParityTest, BaselineCollectMatchesDirectSimulationBitForBit) {
  const data::Dataset dataset = MakeData();
  const data::Schema& schema = dataset.schema();
  const std::vector<uint32_t> numeric_columns = schema.NumericColumnIndices();
  const std::vector<uint32_t> categorical_columns =
      schema.CategoricalColumnIndices();
  const uint32_t dn = static_cast<uint32_t>(numeric_columns.size());
  const uint32_t dc = static_cast<uint32_t>(categorical_columns.size());
  const uint32_t d = dn + dc;
  ASSERT_GT(dn, 0u);
  ASSERT_GT(dc, 0u);

  // The split-budget baseline loop for the Duchi strategy.
  DuchiMultiDimMechanism duchi(kEpsilon * dn / d, dn);
  std::vector<std::unique_ptr<FrequencyOracle>> oracles;
  for (const uint32_t col : categorical_columns) {
    auto oracle =
        MakeFrequencyOracle(FrequencyOracleKind::kOue, kEpsilon / d,
                            schema.column(col).domain_size);
    ASSERT_TRUE(oracle.ok());
    oracles.push_back(std::move(oracle).value());
  }
  aggregate::VectorMeanEstimator means(dn);
  std::vector<std::vector<double>> supports;
  for (const uint32_t col : categorical_columns) {
    supports.emplace_back(schema.column(col).domain_size, 0.0);
  }
  std::vector<double> numeric_tuple(dn, 0.0);
  for (uint64_t row = 0; row < dataset.num_rows(); ++row) {
    Rng rng = api::UserRng(kSeed, row);
    for (uint32_t j = 0; j < dn; ++j) {
      numeric_tuple[j] = dataset.numeric(row, numeric_columns[j]);
    }
    means.Add(duchi.Perturb(numeric_tuple, &rng));
    for (uint32_t c = 0; c < dc; ++c) {
      const uint32_t value = dataset.category(row, categorical_columns[c]);
      oracles[c]->Accumulate(oracles[c]->Perturb(value, &rng), &supports[c]);
    }
  }

  api::PipelineConfig config;
  config.epsilon = kEpsilon;
  config.baseline = api::NumericStrategy::kDuchiMulti;
  auto output = CollectViaPipeline(dataset, std::move(config));
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output.value().estimated_means, means.Estimate());
  for (uint32_t c = 0; c < dc; ++c) {
    EXPECT_EQ(output.value().estimated_frequencies[c],
              oracles[c]->Estimate(supports[c], dataset.num_rows()));
  }
}

TEST(ApiParityTest, FromSchemaConfigMatchesHandBuiltConfig) {
  // PipelineConfig::FromSchema and an explicitly assembled config must
  // describe the same protocol, bit for bit.
  const data::Dataset dataset = MakeData();
  auto config =
      api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  ASSERT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(config.value());
  ASSERT_TRUE(pipeline.ok());
  auto via_from_schema = pipeline.value().Collect(dataset, kSeed);
  api::PipelineConfig by_hand;
  by_hand.epsilon = kEpsilon;
  auto via_hand_built = CollectViaPipeline(dataset, std::move(by_hand));
  ASSERT_TRUE(via_from_schema.ok());
  ASSERT_TRUE(via_hand_built.ok());
  EXPECT_EQ(via_from_schema.value().estimated_means,
            via_hand_built.value().estimated_means);
  EXPECT_EQ(via_from_schema.value().estimated_frequencies,
            via_hand_built.value().estimated_frequencies);
}

TEST(ApiParityTest, PooledCollectStaysBitDeterministic) {
  const data::Dataset dataset = MakeData();
  ThreadPool pool_a(3), pool_b(3);
  api::PipelineConfig config_a;
  config_a.epsilon = kEpsilon;
  api::PipelineConfig config_b = config_a;
  auto a = CollectViaPipeline(dataset, std::move(config_a), &pool_a);
  auto b = CollectViaPipeline(dataset, std::move(config_b), &pool_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().estimated_means, b.value().estimated_means);
  EXPECT_EQ(a.value().estimated_frequencies, b.value().estimated_frequencies);
}

TEST(ApiParityTest, ConfigValidation) {
  // Empty schema.
  api::PipelineConfig empty;
  empty.epsilon = 1.0;
  EXPECT_FALSE(api::Pipeline::Create(empty).ok());

  api::PipelineConfig config;
  config.attributes = {MixedAttribute::Numeric(),
                       MixedAttribute::Categorical(4)};
  config.epsilon = 1.0;

  // Numeric wire on a schema with a categorical attribute.
  config.wire = api::WirePreference::kNumeric;
  EXPECT_FALSE(api::Pipeline::Create(config).ok());
  config.wire = api::WirePreference::kAuto;

  // Bad budgets and plans.
  config.epsilon = 0.0;
  EXPECT_FALSE(api::Pipeline::Create(config).ok());
  config.epsilon = 1.0;
  config.plan.epochs = 0;
  EXPECT_FALSE(api::Pipeline::Create(config).ok());
  config.plan.epochs = 1;
  config.plan.lifetime_budget = -1.0;
  EXPECT_FALSE(api::Pipeline::Create(config).ok());
  config.plan.lifetime_budget = 0.0;

  auto pipeline = api::Pipeline::Create(config);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_EQ(pipeline.value().stream_kind(), stream::ReportStreamKind::kMixed);

  // Baseline pipelines have no wire sessions.
  config.baseline = api::NumericStrategy::kDuchiMulti;
  auto baseline = api::Pipeline::Create(config);
  ASSERT_TRUE(baseline.ok());
  EXPECT_FALSE(baseline.value().NewClient().ok());
  EXPECT_FALSE(baseline.value().NewServer().ok());

  // All-numeric schemas resolve to the numeric stream kind.
  api::PipelineConfig numeric;
  numeric.attributes = {MixedAttribute::Numeric(), MixedAttribute::Numeric()};
  numeric.epsilon = 1.0;
  auto numeric_pipeline = api::Pipeline::Create(numeric);
  ASSERT_TRUE(numeric_pipeline.ok());
  EXPECT_EQ(numeric_pipeline.value().stream_kind(),
            stream::ReportStreamKind::kSampledNumeric);
  EXPECT_NE(numeric_pipeline.value().numeric_mechanism(), nullptr);
}

TEST(ApiParityTest, CollectRejectsMismatchedDataset) {
  const data::Dataset dataset = MakeData();
  api::PipelineConfig config;
  config.attributes = {MixedAttribute::Numeric(),
                       MixedAttribute::Categorical(4)};
  config.epsilon = kEpsilon;
  auto pipeline = api::Pipeline::Create(config);
  ASSERT_TRUE(pipeline.ok());
  EXPECT_FALSE(pipeline.value().Collect(dataset, kSeed).ok());
}

}  // namespace
}  // namespace ldp
