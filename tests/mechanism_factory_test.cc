#include "core/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace ldp {
namespace {

TEST(ValidateEpsilonTest, AcceptsPositiveFinite) {
  EXPECT_TRUE(ValidateEpsilon(0.01).ok());
  EXPECT_TRUE(ValidateEpsilon(8.0).ok());
}

TEST(ValidateEpsilonTest, RejectsNonPositive) {
  EXPECT_FALSE(ValidateEpsilon(0.0).ok());
  EXPECT_FALSE(ValidateEpsilon(-1.0).ok());
}

TEST(ValidateEpsilonTest, RejectsNonFinite) {
  EXPECT_FALSE(ValidateEpsilon(std::numeric_limits<double>::infinity()).ok());
  EXPECT_FALSE(ValidateEpsilon(std::nan("")).ok());
}

TEST(MechanismKindTest, NamesAreStable) {
  EXPECT_STREQ(MechanismKindToString(MechanismKind::kLaplace), "Laplace");
  EXPECT_STREQ(MechanismKindToString(MechanismKind::kScdf), "SCDF");
  EXPECT_STREQ(MechanismKindToString(MechanismKind::kStaircase), "Staircase");
  EXPECT_STREQ(MechanismKindToString(MechanismKind::kDuchi), "Duchi");
  EXPECT_STREQ(MechanismKindToString(MechanismKind::kPiecewise), "PM");
  EXPECT_STREQ(MechanismKindToString(MechanismKind::kHybrid), "HM");
}

class MechanismFactoryTest : public ::testing::TestWithParam<MechanismKind> {};

INSTANTIATE_TEST_SUITE_P(AllKinds, MechanismFactoryTest,
                         ::testing::Values(MechanismKind::kLaplace,
                                           MechanismKind::kScdf,
                                           MechanismKind::kStaircase,
                                           MechanismKind::kDuchi,
                                           MechanismKind::kPiecewise,
                                           MechanismKind::kHybrid));

TEST_P(MechanismFactoryTest, CreatesMatchingMechanism) {
  auto result = MakeScalarMechanism(GetParam(), 1.0);
  ASSERT_TRUE(result.ok());
  const auto& mech = *result.value();
  EXPECT_STREQ(mech.name(), MechanismKindToString(GetParam()));
  EXPECT_DOUBLE_EQ(mech.epsilon(), 1.0);
}

TEST_P(MechanismFactoryTest, RejectsBadEpsilon) {
  EXPECT_FALSE(MakeScalarMechanism(GetParam(), 0.0).ok());
  EXPECT_FALSE(MakeScalarMechanism(GetParam(), -2.0).ok());
  EXPECT_FALSE(MakeScalarMechanism(
                   GetParam(), std::numeric_limits<double>::infinity())
                   .ok());
}

TEST_P(MechanismFactoryTest, PerturbStaysWithinDeclaredBound) {
  auto result = MakeScalarMechanism(GetParam(), 1.5);
  ASSERT_TRUE(result.ok());
  const auto& mech = *result.value();
  const double bound = mech.OutputBound();
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const double out = mech.Perturb(0.4, &rng);
    EXPECT_LE(std::abs(out), bound);
  }
}

TEST_P(MechanismFactoryTest, WorstCaseDominatesPointwiseVariance) {
  auto result = MakeScalarMechanism(GetParam(), 0.8);
  ASSERT_TRUE(result.ok());
  const auto& mech = *result.value();
  for (double t = -1.0; t <= 1.0; t += 0.125) {
    EXPECT_LE(mech.Variance(t), mech.WorstCaseVariance() * (1.0 + 1e-12))
        << "t=" << t;
  }
}

}  // namespace
}  // namespace ldp
