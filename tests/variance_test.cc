// Cross-checks the closed-form variance analysis (core/variance.h) against
// the actual mechanisms, both analytically and via Monte-Carlo simulation of
// Algorithm 4 — the formulas behind Table I, Fig. 1 and Fig. 3.

#include "core/variance.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/duchi_multi_dim.h"
#include "core/hybrid.h"
#include "core/piecewise.h"
#include "core/sampled_numeric.h"
#include "test_util.h"
#include "util/math.h"

namespace ldp {
namespace {

using ::ldp::testing::VarianceRelTolerance;

TEST(OneDimVarianceTest, MatchesMechanismClosedForms) {
  for (const double eps : {0.3, 0.61, 1.0, 1.29, 2.5, 6.0}) {
    const PiecewiseMechanism pm(eps);
    const HybridMechanism hm(eps);
    for (const double t : {-1.0, -0.4, 0.0, 0.7, 1.0}) {
      EXPECT_NEAR(PiecewiseVariance(eps, t), pm.Variance(t), 1e-12);
      EXPECT_NEAR(HybridVariance(eps, t), hm.Variance(t), 1e-12);
      EXPECT_NEAR(DuchiVariance(eps, t), hm.duchi().Variance(t), 1e-12);
    }
    EXPECT_NEAR(PiecewiseWorstCaseVariance(eps), pm.WorstCaseVariance(),
                1e-12);
    EXPECT_NEAR(HybridWorstCaseVariance(eps), hm.WorstCaseVariance(), 1e-9);
    EXPECT_NEAR(DuchiWorstCaseVariance(eps), hm.duchi().WorstCaseVariance(),
                1e-12);
    EXPECT_DOUBLE_EQ(LaplaceVariance(eps), 8.0 / (eps * eps));
  }
}

TEST(AttributeSampleCountTest, MatchesEquation12) {
  // k = max(1, min(d, floor(ε / 2.5))).
  EXPECT_EQ(AttributeSampleCount(1.0, 10), 1u);
  EXPECT_EQ(AttributeSampleCount(2.4, 10), 1u);
  EXPECT_EQ(AttributeSampleCount(2.5, 10), 1u);
  EXPECT_EQ(AttributeSampleCount(5.0, 10), 2u);
  EXPECT_EQ(AttributeSampleCount(7.5, 10), 3u);
  EXPECT_EQ(AttributeSampleCount(25.0, 10), 10u);
  EXPECT_EQ(AttributeSampleCount(100.0, 4), 4u);
  EXPECT_EQ(AttributeSampleCount(0.1, 1), 1u);
}

class SampledVarianceTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, SampledVarianceTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0),
                       ::testing::Values(2u, 5u, 10u, 40u)));

TEST_P(SampledVarianceTest, Corollary2Ordering) {
  // For every d > 1 and ε > 0: MaxVar_HM < MaxVar_PM < MaxVar_Duchi.
  const auto [eps, d] = GetParam();
  const double hm = SampledHybridWorstCaseVariance(eps, d);
  const double pm = SampledPiecewiseWorstCaseVariance(eps, d);
  const double duchi = DuchiMultiWorstCaseVariance(eps, d);
  EXPECT_LT(hm, pm);
  EXPECT_LT(pm, duchi);
}

TEST_P(SampledVarianceTest, MonteCarloMatchesEquation14ForPm) {
  const auto [eps, d] = GetParam();
  auto mech = SampledNumericMechanism::Create(MechanismKind::kPiecewise, eps,
                                              d);
  ASSERT_TRUE(mech.ok());
  const auto& sampled = mech.value();
  std::vector<double> t(d, 0.0);
  t[0] = 0.5;
  Rng rng(1);
  const uint64_t samples = 120000;
  RunningStats coord0, coord1;
  for (uint64_t i = 0; i < samples; ++i) {
    std::vector<double> dense(d, 0.0);
    for (const SampledValue& entry : sampled.Perturb(t, &rng)) {
      dense[entry.attribute] = entry.value;
    }
    coord0.Add(dense[0]);
    coord1.Add(dense[1]);
  }
  const double expected0 = SampledPiecewiseVariance(eps, d, 0.5);
  const double expected1 = SampledPiecewiseVariance(eps, d, 0.0);
  EXPECT_NEAR(coord0.SampleVariance(), expected0,
              expected0 * VarianceRelTolerance(samples, 20.0));
  EXPECT_NEAR(coord1.SampleVariance(), expected1,
              expected1 * VarianceRelTolerance(samples, 20.0));
}

TEST_P(SampledVarianceTest, MonteCarloMatchesEquation15ForHm) {
  const auto [eps, d] = GetParam();
  auto mech =
      SampledNumericMechanism::Create(MechanismKind::kHybrid, eps, d);
  ASSERT_TRUE(mech.ok());
  const auto& sampled = mech.value();
  // t = 0.7 on the probed coordinate exercises the derived (d/k)·B₁² − t²
  // form in the ε/k <= ε* regime — the case where the paper's printed
  // Eq. 15 disagrees with the actual mechanism (see DESIGN.md).
  std::vector<double> t(d, 0.0);
  t[0] = 0.7;
  Rng rng(2);
  const uint64_t samples = 120000;
  RunningStats coord0;
  for (uint64_t i = 0; i < samples; ++i) {
    std::vector<double> dense(d, 0.0);
    for (const SampledValue& entry : sampled.Perturb(t, &rng)) {
      dense[entry.attribute] = entry.value;
    }
    coord0.Add(dense[0]);
  }
  const double expected = SampledHybridVariance(eps, d, 0.7);
  EXPECT_NEAR(coord0.SampleVariance(), expected,
              expected * VarianceRelTolerance(samples, 20.0));
}

TEST_P(SampledVarianceTest, MonteCarloMatchesEquation13ForDuchi) {
  const auto [eps, d] = GetParam();
  const DuchiMultiDimMechanism mech(eps, d);
  std::vector<double> t(d, 0.0);
  t[0] = 0.5;
  Rng rng(3);
  const uint64_t samples = 120000;
  RunningStats coord0;
  for (uint64_t i = 0; i < samples; ++i) {
    coord0.Add(mech.Perturb(t, &rng)[0]);
  }
  const double expected = DuchiMultiVariance(eps, d, 0.5);
  EXPECT_NEAR(coord0.SampleVariance(), expected,
              expected * VarianceRelTolerance(samples, 20.0));
}

TEST(TableOneRegimeTest, MultidimensionalIsAlwaysHmPmDuchi) {
  for (const double eps : {0.1, 0.61, 1.29, 5.0}) {
    EXPECT_EQ(TableOneRegime(eps, 2), "HM < PM < Duchi");
    EXPECT_EQ(TableOneRegime(eps, 40), "HM < PM < Duchi");
  }
}

TEST(TableOneRegimeTest, OneDimensionalRegimesMatchTableOne) {
  EXPECT_EQ(TableOneRegime(2.0, 1), "HM < PM < Duchi");
  EXPECT_EQ(TableOneRegime(EpsilonSharp(), 1), "HM < PM = Duchi");
  EXPECT_EQ(TableOneRegime(1.0, 1), "HM < Duchi < PM");
  EXPECT_EQ(TableOneRegime(0.4, 1), "HM = Duchi < PM");
  EXPECT_EQ(TableOneRegime(EpsilonStar(), 1), "HM = Duchi < PM");
}

TEST(TableOneRegimeTest, RegimesAgreeWithDirectComparison) {
  // The printed regime string must match the actual ordering of the three
  // worst-case variances at every probed budget.
  for (double eps = 0.05; eps <= 8.0; eps += 0.05) {
    const double hm = HybridWorstCaseVariance(eps);
    const double pm = PiecewiseWorstCaseVariance(eps);
    const double duchi = DuchiWorstCaseVariance(eps);
    const std::string regime = TableOneRegime(eps, 1);
    if (regime == "HM < PM < Duchi") {
      EXPECT_LT(hm, pm);
      EXPECT_LT(pm, duchi);
    } else if (regime == "HM < Duchi < PM") {
      EXPECT_LT(hm, duchi);
      EXPECT_LT(duchi, pm);
    } else if (regime == "HM = Duchi < PM") {
      EXPECT_DOUBLE_EQ(hm, duchi);
      EXPECT_LT(duchi, pm);
    } else {
      EXPECT_EQ(regime, "HM < PM = Duchi");
    }
  }
}

TEST(WorstCaseVarianceTest, Figure3RatiosBelowOne) {
  // Fig. 3: the PM/Duchi and HM/Duchi worst-case ratios stay below 1, and
  // HM's is at most ~0.77 for the plotted dimensions.
  for (const uint32_t d : {5u, 10u, 20u, 40u}) {
    for (double eps = 0.1; eps <= 8.0; eps += 0.1) {
      const double duchi = DuchiMultiWorstCaseVariance(eps, d);
      const double pm_ratio =
          SampledPiecewiseWorstCaseVariance(eps, d) / duchi;
      const double hm_ratio = SampledHybridWorstCaseVariance(eps, d) / duchi;
      EXPECT_LT(pm_ratio, 1.0) << "d=" << d << " eps=" << eps;
      EXPECT_LT(hm_ratio, 1.0) << "d=" << d << " eps=" << eps;
      EXPECT_LE(hm_ratio, 0.78) << "d=" << d << " eps=" << eps;
    }
  }
}

TEST(WorstCaseVarianceTest, SampledWorstCaseDominatesPointwise) {
  for (const double eps : {0.5, 2.0, 6.0}) {
    for (const uint32_t d : {3u, 12u}) {
      for (double t = -1.0; t <= 1.0; t += 0.2) {
        EXPECT_LE(SampledPiecewiseVariance(eps, d, t),
                  SampledPiecewiseWorstCaseVariance(eps, d) + 1e-12);
        EXPECT_LE(SampledHybridVariance(eps, d, t),
                  SampledHybridWorstCaseVariance(eps, d) + 1e-12);
        EXPECT_LE(DuchiMultiVariance(eps, d, t),
                  DuchiMultiWorstCaseVariance(eps, d) + 1e-12);
      }
    }
  }
}

}  // namespace
}  // namespace ldp
