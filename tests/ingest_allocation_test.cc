// Proof of the zero-copy ingest contract: once an ingester is warmed up,
// feeding further frames must perform ZERO heap allocations on the accept
// path — no MixedReport materialization, no payload vectors, no staging
// growth. Verified with replaced global operator new/delete that count every
// allocation in the process (each gtest case runs in its own process under
// ctest, so the counter observes only this test).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>

#include "core/mixed_collector.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "util/random.h"

namespace {

std::atomic<uint64_t> g_allocation_count{0};

}  // namespace

// Replaceable global allocation functions (count, then defer to malloc).
// operator new[] and the sized/unsized deletes forward here per the
// standard's default definitions.
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ldp::stream {
namespace {

MixedTupleCollector MakeCollector() {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(8),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(16),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(32)},
      4.0);
  EXPECT_TRUE(collector.ok());
  return std::move(collector).value();
}

std::string MakeStream(const MixedTupleCollector& collector, int reports) {
  std::ostringstream out;
  ReportStreamWriter writer(&out, MakeMixedStreamHeader(collector));
  MixedTuple tuple(collector.dimension());
  for (uint32_t j = 0; j < collector.dimension(); ++j) {
    if (collector.schema()[j].type == AttributeType::kNumeric) {
      tuple[j] = AttributeValue::Numeric(0.5);
    } else {
      tuple[j] = AttributeValue::Categorical(
          j % collector.schema()[j].domain_size);
    }
  }
  // Lead with the worst-case frame (a full unary payload on the widest
  // categorical attribute), so the warm-up phase provably sees the largest
  // staging/scratch demand any later frame can pose.
  MixedReport max_report(1);
  max_report[0].attribute = 5;  // Categorical(32)
  for (uint32_t bit = 0; bit < 32; ++bit) {
    max_report[0].categorical_report.push_back(bit);
  }
  EXPECT_TRUE(writer.WriteMixedReport(max_report, collector).ok());
  Rng rng(21);
  for (int i = 0; i < reports - 1; ++i) {
    EXPECT_TRUE(
        writer.WriteMixedReport(collector.Perturb(tuple, &rng), collector)
            .ok());
  }
  return out.str();
}

TEST(IngestAllocationTest, SteadyStateAcceptPathIsAllocationFree) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 4000);
  ShardIngester ingester(&collector);

  // Warm up: header, staging-ring growth, and scratch sizing all happen on
  // the first chunks.
  constexpr size_t kChunk = 4096;
  const size_t warmup_end = bytes.size() / 2;
  size_t cursor = 0;
  while (cursor < warmup_end) {
    const size_t take = std::min(kChunk, bytes.size() - cursor);
    ASSERT_TRUE(ingester.Feed(bytes.data() + cursor, take).ok());
    cursor += take;
  }
  const uint64_t accepted_before = ingester.stats().accepted;
  ASSERT_GT(accepted_before, 0u);

  // Measured window: every remaining frame must be accepted without a
  // single heap allocation.
  const uint64_t allocations_before =
      g_allocation_count.load(std::memory_order_relaxed);
  while (cursor < bytes.size()) {
    const size_t take = std::min(kChunk, bytes.size() - cursor);
    ingester.Feed(bytes.data() + cursor, take);
    cursor += take;
  }
  const uint64_t allocations_after =
      g_allocation_count.load(std::memory_order_relaxed);

  ASSERT_TRUE(ingester.Finish().ok());
  EXPECT_EQ(ingester.stats().accepted, 4000u);
  EXPECT_GT(ingester.stats().accepted, accepted_before);
  EXPECT_EQ(allocations_after - allocations_before, 0u)
      << "accept path allocated "
      << (allocations_after - allocations_before) << " times for "
      << (ingester.stats().accepted - accepted_before) << " frames";
}

TEST(IngestAllocationTest, ByteAtATimeSteadyStateIsAllocationFree) {
  // The staging ring also reaches a steady state: after the first frames
  // have sized it, even byte-at-a-time feeding (every frame staged and
  // wrapped) allocates nothing.
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 600);
  ShardIngester ingester(&collector);

  const size_t warmup_end = bytes.size() / 2;
  size_t cursor = 0;
  for (; cursor < warmup_end; ++cursor) {
    ASSERT_TRUE(ingester.Feed(bytes.data() + cursor, 1).ok());
  }

  const uint64_t allocations_before =
      g_allocation_count.load(std::memory_order_relaxed);
  for (; cursor < bytes.size(); ++cursor) {
    ingester.Feed(bytes.data() + cursor, 1);
  }
  const uint64_t allocations_after =
      g_allocation_count.load(std::memory_order_relaxed);

  ASSERT_TRUE(ingester.Finish().ok());
  EXPECT_EQ(ingester.stats().accepted, 600u);
  EXPECT_EQ(allocations_after - allocations_before, 0u);
}

}  // namespace
}  // namespace ldp::stream
