#include "data/schema_text.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "data/census.h"

namespace ldp::data {
namespace {

TEST(ParseSchemaTextTest, ParsesBothColumnKinds) {
  auto schema = ParseSchemaText(
      "numeric age 16 95\n"
      "categorical gender 2\n");
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema.value().num_columns(), 2u);
  EXPECT_EQ(schema.value().column(0).name, "age");
  EXPECT_EQ(schema.value().column(0).type, ColumnType::kNumeric);
  EXPECT_DOUBLE_EQ(schema.value().column(0).lo, 16.0);
  EXPECT_DOUBLE_EQ(schema.value().column(0).hi, 95.0);
  EXPECT_EQ(schema.value().column(1).type, ColumnType::kCategorical);
  EXPECT_EQ(schema.value().column(1).domain_size, 2u);
}

TEST(ParseSchemaTextTest, SkipsBlankLinesAndComments) {
  auto schema = ParseSchemaText(
      "# a comment\n"
      "\n"
      "numeric x -1 1\n"
      "   \n"
      "# another\n"
      "categorical c 3\n");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema.value().num_columns(), 2u);
}

TEST(ParseSchemaTextTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseSchemaText("numeric x\n").ok());         // missing bounds
  EXPECT_FALSE(ParseSchemaText("numeric x 0\n").ok());       // missing hi
  EXPECT_FALSE(ParseSchemaText("numeric x a b\n").ok());     // bad numbers
  EXPECT_FALSE(ParseSchemaText("categorical c\n").ok());     // missing domain
  EXPECT_FALSE(ParseSchemaText("categorical c -3\n").ok());  // negative
  EXPECT_FALSE(ParseSchemaText("categorical c x\n").ok());   // non-integer
  EXPECT_FALSE(ParseSchemaText("widget w 1 2\n").ok());      // unknown kind
  EXPECT_FALSE(ParseSchemaText("numeric x 0 1 extra\n").ok());
}

TEST(ParseSchemaTextTest, ErrorsNameTheLine) {
  auto result = ParseSchemaText("numeric x 0 1\nwidget w 1\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ParseSchemaTextTest, ValidatesThroughSchemaCreate) {
  // Structural validation (duplicate names, bad bounds) still applies.
  EXPECT_FALSE(ParseSchemaText("numeric x 0 1\nnumeric x 0 1\n").ok());
  EXPECT_FALSE(ParseSchemaText("numeric x 1 0\n").ok());
  EXPECT_FALSE(ParseSchemaText("categorical c 1\n").ok());
}

TEST(SchemaTextRoundTripTest, CensusSchemasRoundTrip) {
  auto census = MakeBrazilCensus(1, 1);
  ASSERT_TRUE(census.ok());
  const Schema& original = census.value().schema();
  auto parsed = ParseSchemaText(FormatSchemaText(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().Equals(original));
}

TEST(SchemaFileTest, WriteAndReadBack) {
  const std::string path = ::testing::TempDir() + "/ldp_schema_test.schema";
  auto census = MakeMexicoCensus(1, 1);
  ASSERT_TRUE(census.ok());
  ASSERT_TRUE(WriteSchemaFile(census.value().schema(), path).ok());
  auto loaded = ReadSchemaFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().Equals(census.value().schema()));
  std::remove(path.c_str());
}

TEST(SchemaFileTest, MissingFileFails) {
  EXPECT_FALSE(ReadSchemaFile("/nonexistent_dir_xyz/file.schema").ok());
}

}  // namespace
}  // namespace ldp::data
