#include "aggregate/metrics.h"

#include <gtest/gtest.h>

namespace ldp::aggregate {
namespace {

CollectionOutput SampleOutput() {
  CollectionOutput out;
  out.numeric_columns = {0, 2};
  out.true_means = {0.5, -0.5};
  out.estimated_means = {0.6, -0.8};
  out.categorical_columns = {1};
  out.true_frequencies = {{0.2, 0.8}};
  out.estimated_frequencies = {{0.25, 0.7}};
  return out;
}

TEST(MetricsTest, NumericMse) {
  // ((0.1)² + (0.3)²) / 2 = 0.05.
  EXPECT_NEAR(NumericMse(SampleOutput()), 0.05, 1e-12);
}

TEST(MetricsTest, CategoricalMse) {
  // ((0.05)² + (0.1)²) / 2 = 0.00625.
  EXPECT_NEAR(CategoricalMse(SampleOutput()), 0.00625, 1e-12);
}

TEST(MetricsTest, MaxAbsErrors) {
  EXPECT_NEAR(NumericMaxAbsError(SampleOutput()), 0.3, 1e-12);
  EXPECT_NEAR(CategoricalMaxAbsError(SampleOutput()), 0.1, 1e-12);
}

TEST(MetricsTest, EmptyOutputsGiveZero) {
  CollectionOutput out;
  EXPECT_EQ(NumericMse(out), 0.0);
  EXPECT_EQ(CategoricalMse(out), 0.0);
  EXPECT_EQ(NumericMaxAbsError(out), 0.0);
  EXPECT_EQ(CategoricalMaxAbsError(out), 0.0);
}

TEST(MetricsTest, PerfectEstimatesGiveZero) {
  CollectionOutput out = SampleOutput();
  out.estimated_means = out.true_means;
  out.estimated_frequencies = out.true_frequencies;
  EXPECT_EQ(NumericMse(out), 0.0);
  EXPECT_EQ(CategoricalMse(out), 0.0);
}

}  // namespace
}  // namespace ldp::aggregate
