// Cross-cutting ε-LDP property checks: for every scalar mechanism and a grid
// of budgets, verify Definition 1 — the worst-case likelihood ratio between
// any two inputs at any output is at most e^ε. Mechanisms with closed-form
// densities are checked analytically; the discrete/mixture mechanisms via
// their exact output probabilities.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/duchi_one_dim.h"
#include "baselines/laplace.h"
#include "baselines/scdf.h"
#include "baselines/staircase.h"
#include "core/hybrid.h"
#include "core/mechanism.h"
#include "core/piecewise.h"

namespace ldp {
namespace {

constexpr double kSlack = 1.0 + 1e-9;

class PrivacyGridTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, PrivacyGridTest,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 4.0, 8.0));

TEST_P(PrivacyGridTest, PiecewiseMechanismDensityRatio) {
  const double eps = GetParam();
  const PiecewiseMechanism mech(eps);
  const double bound = std::exp(eps) * kSlack;
  for (double t1 = -1.0; t1 <= 1.0001; t1 += 0.125) {
    for (double t2 = -1.0; t2 <= 1.0001; t2 += 0.125) {
      for (double x = -mech.c(); x <= mech.c(); x += mech.c() / 64.0) {
        const double p2 = mech.OutputPdf(t2, x);
        ASSERT_GT(p2, 0.0);
        EXPECT_LE(mech.OutputPdf(t1, x) / p2, bound)
            << "t1=" << t1 << " t2=" << t2 << " x=" << x;
      }
    }
  }
}

TEST_P(PrivacyGridTest, LaplaceMechanismDensityRatio) {
  const double eps = GetParam();
  const LaplaceMechanism mech(eps);
  const double scale = mech.scale();
  auto pdf = [scale](double t, double x) {
    return std::exp(-std::abs(x - t) / scale) / (2.0 * scale);
  };
  const double bound = std::exp(eps) * kSlack;
  for (double t1 = -1.0; t1 <= 1.0001; t1 += 0.25) {
    for (double t2 = -1.0; t2 <= 1.0001; t2 += 0.25) {
      for (double x = -8.0; x <= 8.0; x += 0.21) {
        EXPECT_LE(pdf(t1, x) / pdf(t2, x), bound);
      }
    }
  }
}

TEST_P(PrivacyGridTest, ScdfAndStaircaseDensityRatio) {
  const double eps = GetParam();
  const ScdfMechanism scdf(eps);
  const StaircaseMechanism staircase(eps);
  const double bound = std::exp(eps) * kSlack;
  for (double t1 = -1.0; t1 <= 1.0001; t1 += 0.25) {
    for (double t2 = -1.0; t2 <= 1.0001; t2 += 0.25) {
      for (double x = -12.0; x <= 12.0; x += 0.37) {
        EXPECT_LE(scdf.noise().Pdf(x - t1) / scdf.noise().Pdf(x - t2), bound);
        EXPECT_LE(staircase.noise().Pdf(x - t1) /
                      staircase.noise().Pdf(x - t2),
                  bound);
      }
    }
  }
}

TEST_P(PrivacyGridTest, DuchiOneDimProbabilityRatio) {
  const double eps = GetParam();
  const double e = std::exp(eps);
  auto head = [e](double t) { return (e - 1.0) / (2.0 * e + 2.0) * t + 0.5; };
  for (double t1 = -1.0; t1 <= 1.0001; t1 += 0.125) {
    for (double t2 = -1.0; t2 <= 1.0001; t2 += 0.125) {
      EXPECT_LE(head(t1) / head(t2), e * kSlack);
      EXPECT_LE((1.0 - head(t1)) / (1.0 - head(t2)), e * kSlack);
    }
  }
}

TEST_P(PrivacyGridTest, HybridMechanismMixtureRatio) {
  // HM's output "density" is a mixture of a continuous part (α · PM pdf) and
  // two atoms at ±B_Duchi (weight (1−α) · Duchi pmf). Privacy holds iff both
  // parts individually satisfy the ratio bound — the mixture weights α are
  // input-independent.
  const double eps = GetParam();
  const HybridMechanism mech(eps);
  const double e = std::exp(eps);
  const double bound = e * kSlack;
  auto duchi_head = [e](double t) {
    return (e - 1.0) / (2.0 * e + 2.0) * t + 0.5;
  };
  for (double t1 = -1.0; t1 <= 1.0001; t1 += 0.2) {
    for (double t2 = -1.0; t2 <= 1.0001; t2 += 0.2) {
      // Atom part.
      EXPECT_LE(duchi_head(t1) / duchi_head(t2), bound);
      EXPECT_LE((1.0 - duchi_head(t1)) / (1.0 - duchi_head(t2)), bound);
      // Continuous part.
      if (mech.alpha() > 0.0) {
        const PiecewiseMechanism& pm = mech.piecewise();
        for (double x = -pm.c(); x <= pm.c(); x += pm.c() / 32.0) {
          EXPECT_LE(pm.OutputPdf(t1, x) / pm.OutputPdf(t2, x), bound);
        }
      }
    }
  }
}

TEST_P(PrivacyGridTest, PiecewiseRatioIsTightSomewhere) {
  // The privacy budget should not be wasted: the PM density ratio must reach
  // e^ε for some (t, t', x) — the centre piece vs a side piece.
  const double eps = GetParam();
  const PiecewiseMechanism mech(eps);
  const double x = mech.CenterLeft(1.0) + 1e-9;  // inside centre for t = 1
  const double ratio = mech.OutputPdf(1.0, x) / mech.OutputPdf(-1.0, x);
  EXPECT_NEAR(ratio, std::exp(eps), std::exp(eps) * 1e-9);
}

}  // namespace
}  // namespace ldp
