// End-to-end tests for the socket transport (net/report_server.h +
// net/client.h): loopback campaigns over Unix-domain and TCP sockets must
// reproduce a directly-fed ServerSession byte for byte — snapshots included
// — at every session thread count and regardless of which connection
// finishes first (shards merge in HELLO ordinal order, not completion
// order). Also covers the multi-epoch conversation (CLOSE → ADVANCE_EPOCH
// → re-HELLO on one connection, down to the accountant's refusal) and
// hard-stop abandonment.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "net/client.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "stream/report_stream.h"
#include "stream_corpus_util.h"

namespace ldp {
namespace {

using ldp::testing::kCorpusReports;
using ldp::testing::MakeCorpusPipeline;
using ldp::testing::MakeHonestStream;

net::Endpoint TestUdsEndpoint(const std::string& name) {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kUnix;
  endpoint.path = "/tmp/ldp_test_" + std::to_string(::getpid()) + "_" + name +
                  ".sock";
  return endpoint;
}

net::Endpoint TestTcpEndpoint() {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = 0;  // ephemeral; read back from the server
  return endpoint;
}

// Shard byte streams (header + frames) for `shards` ordinals, different
// report contents per shard.
std::vector<std::string> MakeShardStreams(const api::Pipeline& pipeline,
                                          size_t shards) {
  std::vector<std::string> streams;
  for (size_t s = 0; s < shards; ++s) {
    streams.push_back(MakeHonestStream(pipeline, /*seed=*/700 + s));
  }
  return streams;
}

// The reference: the same shard bytes fed straight into a session, closed
// in ordinal order — what the file-based ldp_aggregate run would compute.
std::string DirectSessionSnapshot(const api::Pipeline& pipeline,
                                  const std::vector<std::string>& streams) {
  auto session = pipeline.NewServer();
  EXPECT_TRUE(session.ok());
  for (const std::string& stream : streams) {
    const size_t shard = session.value().OpenShard();
    EXPECT_TRUE(session.value().Feed(shard, stream).ok());
    EXPECT_TRUE(session.value().CloseShard(shard).ok());
  }
  return session.value().Snapshot();
}

// Runs one racing campaign: every stream on its own connection/thread with
// its index as ordinal, `stagger_ms[i]` of sleep before its CLOSE (to force
// completion orders), against a server session with `ingest_threads`.
// Returns the resulting session snapshot.
std::string RunCampaign(const api::Pipeline& pipeline,
                        const net::Endpoint& endpoint,
                        const std::vector<std::string>& streams,
                        unsigned ingest_threads,
                        const std::vector<int>& stagger_ms) {
  api::ServerSessionOptions session_options;
  session_options.ingest_threads = ingest_threads;
  auto session = pipeline.NewServer(session_options);
  EXPECT_TRUE(session.ok());
  net::ReportServerOptions server_options;
  server_options.acceptors = static_cast<unsigned>(streams.size());
  // The campaigns race real threads; the expected-shards barrier is what
  // makes the snapshot-equality assertions deterministic.
  server_options.expected_shards = streams.size();
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         endpoint, server_options);
  EXPECT_TRUE(server.ok());
  const net::Endpoint resolved = server.value()->endpoint();

  std::vector<std::thread> reporters;
  for (size_t s = 0; s < streams.size(); ++s) {
    reporters.emplace_back([&, s] {
      auto client = net::CollectorClient::Connect(resolved, pipeline.header(),
                                                  /*ordinal=*/s);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      // The stream bytes start with the header the HELLO already carried.
      ASSERT_TRUE(client.value()
                      .Send(streams[s].data() + stream::kStreamHeaderBytes,
                            streams[s].size() - stream::kStreamHeaderBytes)
                      .ok());
      if (stagger_ms[s] > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(stagger_ms[s]));
      }
      auto summary = client.value().Close();
      ASSERT_TRUE(summary.ok()) << summary.status().ToString();
      EXPECT_TRUE(summary.value().status.ok())
          << summary.value().status.ToString();
      EXPECT_EQ(summary.value().stats.accepted, kCorpusReports);
      EXPECT_EQ(summary.value().stats.rejected, 0u);
    });
  }
  for (std::thread& reporter : reporters) reporter.join();
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.connections, streams.size());
  EXPECT_EQ(stats.shards_merged, streams.size());
  EXPECT_EQ(stats.shards_abandoned, 0u);
  EXPECT_EQ(stats.hello_rejected, 0u);
  return session.value().Snapshot();
}

TEST(ReportServerTest, UdsCampaignIsBitIdenticalToDirectSession) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 4);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);
  const std::vector<int> no_stagger(streams.size(), 0);

  for (const unsigned threads : {0u, 2u}) {
    const std::string snapshot =
        RunCampaign(pipeline, TestUdsEndpoint("uds_campaign"), streams,
                    threads, no_stagger);
    EXPECT_EQ(snapshot, reference) << "ingest_threads=" << threads;
  }
}

TEST(ReportServerTest, TcpCampaignIsBitIdenticalToDirectSession) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 3);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);
  const std::string snapshot =
      RunCampaign(pipeline, TestTcpEndpoint(), streams,
                  /*ingest_threads=*/2, std::vector<int>(streams.size(), 0));
  EXPECT_EQ(snapshot, reference);
}

TEST(ReportServerTest, CompletionOrderDoesNotChangeTheSession) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 3);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);
  // Ordinal 0 asks to close LAST: ordinal 2's CLOSE arrives first and must
  // wait for its merge turn. Whatever interleaving the scheduler picks,
  // the session is the ordinal-ordered one.
  const std::string snapshot =
      RunCampaign(pipeline, TestUdsEndpoint("reverse_close"), streams,
                  /*ingest_threads=*/0, /*stagger_ms=*/{120, 60, 0});
  EXPECT_EQ(snapshot, reference);
}

TEST(ReportServerTest, ExpectedShardsBarrierHoldsForLateConnectors) {
  // Ordinal 1 connects, streams, and asks to close BEFORE ordinal 0 has
  // even connected. In ad hoc mode that would merge shard 1 first; with
  // expected_shards the close blocks at the barrier until shard 0 — the
  // late connector — merges, so the session still matches the
  // ordinal-ordered reference bit for bit.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 2);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.acceptors = 2;
  options.expected_shards = 2;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("late_connector"), options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();

  std::thread early([&] {
    auto client = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                                /*ordinal=*/1);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()
                    .Send(streams[1].data() + stream::kStreamHeaderBytes,
                          streams[1].size() - stream::kStreamHeaderBytes)
                    .ok());
    auto summary = client.value().Close();  // blocks on the barrier
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_TRUE(summary.value().status.ok());
  });
  // Give ordinal 1 ample time to reach its CLOSE before 0 exists at all.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto late = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                            /*ordinal=*/0);
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(late.value()
                  .Send(streams[0].data() + stream::kStreamHeaderBytes,
                        streams[0].size() - stream::kStreamHeaderBytes)
                  .ok());
  auto summary = late.value().Close();
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary.value().status.ok());
  early.join();
  server.value()->Stop(/*drain=*/true);

  EXPECT_EQ(session.value().Snapshot(), reference);

  // An ordinal outside the declared fleet is refused at HELLO.
  auto session2 = pipeline.NewServer();
  ASSERT_TRUE(session2.ok());
  auto server2 =
      net::ReportServer::Start(&session2.value(), pipeline.header(),
                               TestUdsEndpoint("fleet_bound"), options);
  ASSERT_TRUE(server2.ok());
  auto outside = net::CollectorClient::Connect(server2.value()->endpoint(),
                                               pipeline.header(),
                                               /*ordinal=*/2);
  EXPECT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), StatusCode::kOutOfRange);
  server2.value()->Stop(/*drain=*/false);
}

TEST(ReportServerTest, BarrierWaitIsExemptFromTheIdleReap) {
  // Ordinal 1 reaches its CLOSE while ordinal 0 stays away for several
  // idle-timeout periods. The wait for the SHARD_CLOSED verdict belongs to
  // the merge scheduler (bounded by merge_turn_timeout_ms, not
  // idle_timeout_ms), so the idle sweep must not reap the connection —
  // the reporter still gets its verdict and the session stays bit-identical
  // to the ordinal-ordered reference.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 2);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.expected_shards = 2;
  options.idle_timeout_ms = 150;  // several sweeps elapse during the wait
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("barrier_idle"), options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();

  std::thread early([&] {
    auto client = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                                /*ordinal=*/1);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value()
                    .Send(streams[1].data() + stream::kStreamHeaderBytes,
                          streams[1].size() - stream::kStreamHeaderBytes)
                    .ok());
    auto summary = client.value().Close();  // barrier wait >> idle timeout
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_TRUE(summary.value().status.ok())
        << summary.value().status.ToString();
  });
  // Hold ordinal 0 back for ~4 idle-timeout periods.
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  auto late = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                            /*ordinal=*/0);
  ASSERT_TRUE(late.ok());
  ASSERT_TRUE(late.value()
                  .Send(streams[0].data() + stream::kStreamHeaderBytes,
                        streams[0].size() - stream::kStreamHeaderBytes)
                  .ok());
  auto summary = late.value().Close();
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary.value().status.ok());
  early.join();
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.shards_merged, 2u);
  EXPECT_EQ(stats.shards_abandoned, 0u);
  EXPECT_EQ(session.value().Snapshot(), reference);
}

TEST(ReportServerTest, ReporterDyingAfterCloseNeverWedgesTheBarrier) {
  // Ordinal 0 sends its whole stream, issues CLOSE_SHARD, and vanishes
  // without ever reading the verdict (its socket closes immediately, so
  // the server's reply flush can fail at any point around the dispatch).
  // Whatever interleaving the server loses — close enqueued with the reply
  // dropped, or the disconnect seen first and the shard abandoned — the
  // ordinal must finish, so ordinal 1's close merges promptly instead of
  // timing out at a wedged frontier.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 2);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.expected_shards = 2;
  // A wedged frontier would discard ordinal 1 at this bound: keep it well
  // under the test timeout but far above the healthy-path latency.
  options.merge_turn_timeout_ms = 2000;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("dying_closer"), options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();

  {
    // Acks enabled, so the server has watermarks to flush at close time.
    net::CollectorClientOptions ack_options;
    ack_options.window_bytes = 1;  // clamped up; enables DATA_ACK batches
    auto doomed = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                                /*ordinal=*/0, ack_options);
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE(doomed.value()
                    .Send(streams[0].data() + stream::kStreamHeaderBytes,
                          streams[0].size() - stream::kStreamHeaderBytes)
                    .ok());
    ASSERT_TRUE(doomed.value().CloseShardBegin(/*channel=*/0).ok());
    // Scope exit closes the socket without awaiting SHARD_CLOSED.
  }

  auto survivor = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                                /*ordinal=*/1);
  ASSERT_TRUE(survivor.ok());
  ASSERT_TRUE(survivor.value()
                  .Send(streams[1].data() + stream::kStreamHeaderBytes,
                        streams[1].size() - stream::kStreamHeaderBytes)
                  .ok());
  auto summary = survivor.value().Close();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary.value().status.ok())
      << summary.value().status.ToString();
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.shards_merged + stats.shards_abandoned, 2u);
  EXPECT_GE(stats.shards_merged, 1u);  // the survivor always merges
  if (stats.shards_merged == 2) {
    EXPECT_EQ(session.value().Snapshot(),
              DirectSessionSnapshot(pipeline, streams));
  }
}

TEST(ReportServerTest, MultiplexedShardsOverOneConnectionAreBitIdentical) {
  // All four shards ride ONE connection as interleaved channels; the
  // event-driven server demultiplexes them and the merge barrier still
  // produces the ordinal-ordered reference byte for byte.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 4);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.expected_shards = streams.size();
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("multiplexed"), options);
  ASSERT_TRUE(server.ok());

  // Small flushes force many interleaved DATA messages per channel.
  net::CollectorClientOptions client_options;
  client_options.flush_bytes = 512;
  auto client =
      net::CollectorClient::Connect(server.value()->endpoint(),
                                    pipeline.header(), /*ordinal=*/0,
                                    client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  std::vector<uint32_t> channels = {0};
  for (size_t s = 1; s < streams.size(); ++s) {
    auto channel = client.value().OpenShard(pipeline.header(), s);
    ASSERT_TRUE(channel.ok()) << channel.status().ToString();
    channels.push_back(channel.value());
  }
  EXPECT_EQ(client.value().open_shards(), streams.size());

  // Interleave: one chunk per shard, round-robin, until all are drained.
  std::vector<size_t> offsets(streams.size(), stream::kStreamHeaderBytes);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (size_t s = 0; s < streams.size(); ++s) {
      if (offsets[s] >= streams[s].size()) continue;
      const size_t take = std::min<size_t>(1024, streams[s].size() - offsets[s]);
      ASSERT_TRUE(client.value()
                      .Send(channels[s], streams[s].data() + offsets[s], take)
                      .ok());
      offsets[s] += take;
      progressed = true;
    }
  }
  // Close in REVERSE ordinal order, pipelined: the verdicts come back in
  // merge (ordinal) order and must still match up by channel.
  for (size_t s = streams.size(); s-- > 0;) {
    ASSERT_TRUE(client.value().CloseShardBegin(channels[s]).ok());
  }
  for (size_t s = 0; s < streams.size(); ++s) {
    auto summary = client.value().AwaitShardClosed(channels[s]);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_TRUE(summary.value().status.ok())
        << summary.value().status.ToString();
    EXPECT_EQ(summary.value().stats.accepted, kCorpusReports);
  }
  EXPECT_EQ(client.value().open_shards(), 0u);
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.connections, 1u);
  EXPECT_EQ(stats.shards_merged, streams.size());
  EXPECT_EQ(stats.shards_abandoned, 0u);
  EXPECT_EQ(session.value().Snapshot(), reference);
}

TEST(ReportServerTest, PollBackendCampaignIsBitIdentical) {
  // The portable poll(2) backend must be behaviorally indistinguishable
  // from epoll — same campaign, same bytes.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 3);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);

  api::ServerSessionOptions session_options;
  auto session = pipeline.NewServer(session_options);
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.poller = net::PollerBackend::kPoll;
  options.acceptors = 2;
  options.expected_shards = streams.size();
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("poll_backend"), options);
  ASSERT_TRUE(server.ok());

  std::vector<std::thread> reporters;
  for (size_t s = 0; s < streams.size(); ++s) {
    reporters.emplace_back([&, s] {
      auto client = net::CollectorClient::Connect(server.value()->endpoint(),
                                                  pipeline.header(), s);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      ASSERT_TRUE(client.value()
                      .Send(streams[s].data() + stream::kStreamHeaderBytes,
                            streams[s].size() - stream::kStreamHeaderBytes)
                      .ok());
      auto summary = client.value().Close();
      ASSERT_TRUE(summary.ok());
      EXPECT_TRUE(summary.value().status.ok());
    });
  }
  for (std::thread& reporter : reporters) reporter.join();
  server.value()->Stop(/*drain=*/true);
  EXPECT_EQ(session.value().Snapshot(), reference);
}

TEST(ReportServerTest, ZeroFlushBytesIsClampedNotAnInfiniteLoop) {
  // Regression: flush_bytes == 0 used to make CollectorClient::Send stage
  // zero bytes per loop iteration and spin forever. It is clamped to 1 at
  // Connect (degenerate one-byte DATA messages, but correct).
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream = MakeHonestStream(pipeline, 830);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("zero_flush"),
                               net::ReportServerOptions());
  ASSERT_TRUE(server.ok());

  net::CollectorClientOptions client_options;
  client_options.flush_bytes = 0;
  auto client = net::CollectorClient::Connect(server.value()->endpoint(),
                                              pipeline.header(),
                                              /*ordinal=*/0, client_options);
  ASSERT_TRUE(client.ok());
  // Send a slice spanning several "buffers" (every byte flushes) plus the
  // remainder; the call must return, and the shard must merge intact.
  ASSERT_TRUE(client.value()
                  .Send(stream.data() + stream::kStreamHeaderBytes,
                        stream.size() - stream::kStreamHeaderBytes)
                  .ok());
  auto summary = client.value().Close();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary.value().status.ok());
  EXPECT_EQ(summary.value().stats.accepted, kCorpusReports);
  server.value()->Stop(/*drain=*/true);
}

TEST(ReportServerTest, NumericStreamCampaignMatchesDirectSession) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/true);
  ASSERT_EQ(pipeline.stream_kind(),
            stream::ReportStreamKind::kSampledNumeric);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 2);
  const std::string reference = DirectSessionSnapshot(pipeline, streams);
  const std::string snapshot =
      RunCampaign(pipeline, TestUdsEndpoint("numeric"), streams,
                  /*ingest_threads=*/2, std::vector<int>(streams.size(), 0));
  EXPECT_EQ(snapshot, reference);
}

TEST(ReportServerTest, MultiEpochCampaignOverOneConnection) {
  // A 2-epoch plan: the same reporter ships a shard per epoch over one
  // connection, advancing the epoch in between; the third advance must be
  // refused by the accountant, over the wire.
  auto schema = data::Schema::Create(
      {data::ColumnSpec::Numeric("income", -1, 1),
       data::ColumnSpec::Categorical("sector", 4),
       data::ColumnSpec::Numeric("age", -1, 1)});
  ASSERT_TRUE(schema.ok());
  auto config = api::PipelineConfig::FromSchema(schema.value(), 4.0);
  ASSERT_TRUE(config.ok());
  config.value().plan.epochs = 2;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());

  const std::string epoch0 = MakeHonestStream(pipeline.value(), 810);
  const std::string epoch1 = MakeHonestStream(pipeline.value(), 811);

  auto session = pipeline.value().NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  // Expected-shards mode: the Reopen below also proves the barrier resets
  // when the epoch advances (ordinal 0 streams again in epoch 1).
  options.expected_shards = 1;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.value().header(),
                               TestUdsEndpoint("epochs"), options);
  ASSERT_TRUE(server.ok());

  auto client = net::CollectorClient::Connect(
      server.value()->endpoint(), pipeline.value().header(), /*ordinal=*/0);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.value().epoch(), 0u);
  ASSERT_TRUE(client.value()
                  .Send(epoch0.data() + stream::kStreamHeaderBytes,
                        epoch0.size() - stream::kStreamHeaderBytes)
                  .ok());
  auto closed = client.value().Close();
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed.value().status.ok());

  auto advanced = client.value().AdvanceEpoch();
  ASSERT_TRUE(advanced.ok()) << advanced.status().ToString();
  EXPECT_EQ(advanced.value(), 1u);

  ASSERT_TRUE(
      client.value().Reopen(pipeline.value().header(), /*ordinal=*/0).ok());
  EXPECT_EQ(client.value().epoch(), 1u);
  ASSERT_TRUE(client.value()
                  .Send(epoch1.data() + stream::kStreamHeaderBytes,
                        epoch1.size() - stream::kStreamHeaderBytes)
                  .ok());
  closed = client.value().Close();
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed.value().status.ok());

  // The plan is exhausted: the wire surfaces the accountant's exact
  // refusal.
  auto refused = client.value().AdvanceEpoch();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  server.value()->Stop(/*drain=*/true);
  EXPECT_EQ(session.value().num_epochs(), 2u);
  auto reports0 = session.value().num_reports(0);
  auto reports1 = session.value().num_reports(1);
  ASSERT_TRUE(reports0.ok());
  ASSERT_TRUE(reports1.ok());
  EXPECT_EQ(reports0.value(), kCorpusReports);
  EXPECT_EQ(reports1.value(), kCorpusReports);

  // Byte-identical to the same two-epoch campaign run directly.
  auto direct = pipeline.value().NewServer();
  ASSERT_TRUE(direct.ok());
  size_t shard = direct.value().OpenShard();
  ASSERT_TRUE(direct.value().Feed(shard, epoch0).ok());
  ASSERT_TRUE(direct.value().CloseShard(shard).ok());
  ASSERT_TRUE(direct.value().AdvanceEpoch().ok());
  shard = direct.value().OpenShard();
  ASSERT_TRUE(direct.value().Feed(shard, epoch1).ok());
  ASSERT_TRUE(direct.value().CloseShard(shard).ok());
  // The refused advance left a refusal count in the wire session's ledger;
  // the v2 snapshot serializes it, so the reference run must refuse too.
  EXPECT_FALSE(direct.value().AdvanceEpoch().ok());
  EXPECT_EQ(session.value().Snapshot(), direct.value().Snapshot());
}

TEST(ReportServerTest, KeyedCampaignChargesReporterOncePerEpoch) {
  // The acceptance pin for per-reporter accounting: alice reconnects three
  // times in one epoch (three connections, three shards), bob once. Every
  // HELLO is authenticated; alice's ledger is charged exactly once, and
  // the session — ledger section included — is bit-identical to feeding
  // the same shards directly with the same reporter ids.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::vector<std::string> streams = MakeShardStreams(pipeline, 4);
  const char* kReporters[] = {"alice", "alice", "bob", "alice"};
  const std::string kKey = "campaign-key-7";

  auto direct = pipeline.NewServer();
  ASSERT_TRUE(direct.ok());
  for (size_t s = 0; s < streams.size(); ++s) {
    auto shard = direct.value().OpenShard(kReporters[s]);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    ASSERT_TRUE(direct.value().Feed(shard.value(), streams[s]).ok());
    ASSERT_TRUE(direct.value().CloseShard(shard.value()).ok());
  }
  const std::string reference = direct.value().Snapshot();

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.campaign_key = kKey;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("keyed_once"), options);
  ASSERT_TRUE(server.ok());

  for (size_t s = 0; s < streams.size(); ++s) {
    net::CollectorClientOptions client_options;
    client_options.reporter_id = kReporters[s];
    client_options.campaign_key = kKey;
    auto client =
        net::CollectorClient::Connect(server.value()->endpoint(),
                                      pipeline.header(), /*ordinal=*/s,
                                      client_options);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client.value()
                    .Send(streams[s].data() + stream::kStreamHeaderBytes,
                          streams[s].size() - stream::kStreamHeaderBytes)
                    .ok());
    auto summary = client.value().Close();
    ASSERT_TRUE(summary.ok());
    EXPECT_TRUE(summary.value().status.ok());
    EXPECT_EQ(summary.value().stats.accepted, kCorpusReports);
  }
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.connections, streams.size());
  EXPECT_EQ(stats.shards_merged, streams.size());
  EXPECT_EQ(stats.hello_rejected, 0u);
  EXPECT_EQ(stats.hello_unauthenticated, 0u);

  // Three alice connections, one charge; the snapshot equality also pins
  // the serialized ledger against the direct run.
  EXPECT_EQ(session.value().accountant().Spent("alice"),
            pipeline.header().epsilon);
  EXPECT_EQ(session.value().accountant().Spent("bob"),
            pipeline.header().epsilon);
  EXPECT_EQ(session.value().accountant().num_charged_reporters(), 3u);
  EXPECT_EQ(session.value().Snapshot(), reference);
}

TEST(ReportServerTest, ImportedLedgerSpendRefusesReporterAtHello) {
  // A reporter's spend can arrive from another collection edge (snapshot
  // merge / relay forwarding) before the reporter ever connects here. If
  // that imported spend exhausts the lifetime budget, the authenticated
  // HELLO must be refused shardless — and the refusal must release the
  // ordinal so the campaign proceeds without the reporter.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string kKey = "campaign-key-7";
  const double epsilon = pipeline.header().epsilon;

  auto put16 = [](std::string* out, uint16_t v) {
    out->push_back(static_cast<char>(v & 0xff));
    out->push_back(static_cast<char>(v >> 8));
  };
  auto put32 = [](std::string* out, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  auto put64 = [&put32](std::string* out, uint64_t v) {
    put32(out, static_cast<uint32_t>(v));
    put32(out, static_cast<uint32_t>(v >> 32));
  };
  auto putf64 = [&put64](std::string* out, double v) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "f64 layout");
    std::memcpy(&bits, &v, sizeof(bits));
    put64(out, bits);
  };

  // Start from a real (empty, anonymous-only) snapshot and splice in a
  // ledger section claiming user-0 already spent the whole budget at a
  // foreign edge's later epochs. First pin the anonymous tail we are about
  // to replace, so a layout change fails loudly here instead of merging
  // garbage.
  auto donor = pipeline.NewServer();
  ASSERT_TRUE(donor.ok());
  std::string snapshot = donor.value().Snapshot();
  std::string anonymous_tail;
  put32(&anonymous_tail, 1);   // one reporter: the anonymous plan
  put16(&anonymous_tail, 0);   // empty id
  put64(&anonymous_tail, 0);   // refusals
  put32(&anonymous_tail, 1);   // one epoch entry
  put32(&anonymous_tail, 0);   // epoch 0
  putf64(&anonymous_tail, epsilon);
  ASSERT_GT(snapshot.size(), anonymous_tail.size());
  ASSERT_EQ(snapshot.substr(snapshot.size() - anonymous_tail.size()),
            anonymous_tail);

  std::string crafted_tail;
  put32(&crafted_tail, 2);  // anonymous plan + user-0, ascending by id
  put16(&crafted_tail, 0);
  put64(&crafted_tail, 0);
  put32(&crafted_tail, 1);
  put32(&crafted_tail, 0);
  putf64(&crafted_tail, epsilon);
  const std::string reporter = "user-0";
  put16(&crafted_tail, static_cast<uint16_t>(reporter.size()));
  crafted_tail.append(reporter);
  put64(&crafted_tail, 0);     // no refusals yet
  put32(&crafted_tail, 1);     // one epoch entry...
  put32(&crafted_tail, 7);     // ...at an epoch this session never opened
  putf64(&crafted_tail, epsilon);  // the whole single-epoch budget
  const std::string crafted =
      snapshot.substr(0, snapshot.size() - anonymous_tail.size()) +
      crafted_tail;

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value().Merge(crafted).ok());
  EXPECT_EQ(session.value().accountant().Spent(reporter), epsilon);

  net::ReportServerOptions options;
  options.campaign_key = kKey;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("ledger_refusal"), options);
  ASSERT_TRUE(server.ok());

  // user-0's tag verifies, but the accountant cannot afford epoch 0: the
  // HELLO is refused before any shard exists.
  net::CollectorClientOptions exhausted;
  exhausted.reporter_id = reporter;
  exhausted.campaign_key = kKey;
  auto refused = net::CollectorClient::Connect(
      server.value()->endpoint(), pipeline.header(), /*ordinal=*/0,
      exhausted);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);

  // The refusal released ordinal 0: a solvent reporter reuses it and the
  // campaign completes around the missing shard.
  const std::string stream = MakeHonestStream(pipeline, 730);
  net::CollectorClientOptions solvent;
  solvent.reporter_id = "user-1";
  solvent.campaign_key = kKey;
  auto client = net::CollectorClient::Connect(
      server.value()->endpoint(), pipeline.header(), /*ordinal=*/0, solvent);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()
                  .Send(stream.data() + stream::kStreamHeaderBytes,
                        stream.size() - stream::kStreamHeaderBytes)
                  .ok());
  auto summary = client.value().Close();
  ASSERT_TRUE(summary.ok());
  EXPECT_TRUE(summary.value().status.ok());
  server.value()->Stop(/*drain=*/true);

  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.hello_rejected, 1u);
  // The tag verified; this was a budget refusal, not an auth failure.
  EXPECT_EQ(stats.hello_unauthenticated, 0u);
  EXPECT_EQ(stats.shards_merged, 1u);
  EXPECT_EQ(session.value().accountant().Refusals(reporter), 1u);
  EXPECT_EQ(session.value().accountant().Spent("user-1"), epsilon);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kCorpusReports);
}

TEST(ReportServerTest, HardStopAbandonsInFlightShards) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream = MakeHonestStream(pipeline, 820);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("hardstop"),
                               net::ReportServerOptions());
  ASSERT_TRUE(server.ok());

  auto client = net::CollectorClient::Connect(
      server.value()->endpoint(), pipeline.header(), /*ordinal=*/0);
  ASSERT_TRUE(client.ok());
  // Ship some frames but never CLOSE; the hard stop must reap the shard.
  ASSERT_TRUE(client.value()
                  .Send(stream.data() + stream::kStreamHeaderBytes,
                        stream.size() - stream::kStreamHeaderBytes)
                  .ok());
  server.value()->Stop(/*drain=*/false);

  // The half-shipped shard contributed nothing.
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.shards_merged, 0u);
  EXPECT_EQ(stats.shards_abandoned, 1u);

  // And the client's next conversation step fails rather than hanging.
  auto summary = client.value().Close();
  EXPECT_FALSE(summary.ok() && summary.value().status.ok());
}

TEST(ReportServerTest, DuplicateActiveOrdinalIsRefused) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.acceptors = 2;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               TestUdsEndpoint("dup_ordinal"), options);
  ASSERT_TRUE(server.ok());

  auto first = net::CollectorClient::Connect(server.value()->endpoint(),
                                             pipeline.header(),
                                             /*ordinal=*/5);
  ASSERT_TRUE(first.ok());
  auto second = net::CollectorClient::Connect(server.value()->endpoint(),
                                              pipeline.header(),
                                              /*ordinal=*/5);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);

  // The ordinal frees up once the first shard closes.
  auto closed = first.value().Close();
  ASSERT_TRUE(closed.ok());
  auto third = net::CollectorClient::Connect(server.value()->endpoint(),
                                             pipeline.header(),
                                             /*ordinal=*/5);
  EXPECT_TRUE(third.ok());
  server.value()->Stop(/*drain=*/false);
}

}  // namespace
}  // namespace ldp
