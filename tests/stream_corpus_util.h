// The PR 4 adversarial stream corpus, shared between the in-process replay
// (stream_fuzz_corpus_test.cc, via ServerSession::Feed) and the socket
// transport replay (net_fault_test.cc, via a real connection): a table of
// truncated, oversized, bit-flipped, and protocol-mismatched mutations of a
// valid stream, each annotated with its exact expected outcome. Keeping one
// table guarantees the transport edge enforces the same failure policy as
// the direct ingest path.

#ifndef LDP_TESTS_STREAM_CORPUS_UTIL_H_
#define LDP_TESTS_STREAM_CORPUS_UTIL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>

#include "api/pipeline.h"
#include "core/wire.h"
#include "data/schema.h"
#include "stream/report_stream.h"

namespace ldp::testing {

inline constexpr double kCorpusEpsilon = 4.0;
inline constexpr uint64_t kCorpusReports = 40;

// Stream header field offsets (stream/report_stream.h layout).
inline constexpr size_t kCorpusMagicOffset = 0;
inline constexpr size_t kCorpusVersionOffset = 4;
inline constexpr size_t kCorpusEpsilonOffset = 9;
inline constexpr size_t kCorpusSchemaHashOffset = 25;

enum class CorpusOutcome {
  /// Framing/header violation: the shard fails at Feed or CloseShard and
  /// contributes nothing to the epoch.
  kPoisoned,
  /// Payload violations only: the shard closes cleanly, `rejected` counts
  /// the corrupt frames, every honest frame is accepted.
  kRejects,
};

struct CorpusCase {
  const char* name;
  CorpusOutcome outcome;
  /// Frames whose payload is rejected (kRejects cases).
  uint64_t expected_rejected;
  /// Honest frames still accepted by the shard's *stats* (poisoned shards
  /// accept frames pre-poison too — they just never reach the epoch).
  uint64_t expected_accepted;
  /// Whether the mutation corrupts the stream *header* (the first
  /// kStreamHeaderBytes). The socket transport negotiates the header in
  /// HELLO, so these cases must be refused at HELLO time.
  bool mutates_header;
  std::string (*mutate)(const std::string& honest);
};

// --- mutations -------------------------------------------------------------

inline std::string CorpusTruncatedHeader(const std::string& honest) {
  return honest.substr(0, stream::kStreamHeaderBytes / 2);
}

inline std::string CorpusBadMagic(const std::string& honest) {
  std::string bytes = honest;
  bytes[kCorpusMagicOffset] =
      static_cast<char>(bytes[kCorpusMagicOffset] ^ 0x01);
  return bytes;
}

inline std::string CorpusBadVersion(const std::string& honest) {
  std::string bytes = honest;
  bytes[kCorpusVersionOffset] = static_cast<char>(0xFF);
  bytes[kCorpusVersionOffset + 1] = static_cast<char>(0xFF);
  return bytes;
}

inline std::string CorpusSchemaHashFlip(const std::string& honest) {
  std::string bytes = honest;
  bytes[kCorpusSchemaHashOffset] =
      static_cast<char>(bytes[kCorpusSchemaHashOffset] ^ 0xFF);
  return bytes;
}

inline std::string CorpusEpsilonMismatch(const std::string& honest) {
  std::string bytes = honest;
  const double wrong = kCorpusEpsilon + 1.0;
  uint64_t bits = 0;
  std::memcpy(&bits, &wrong, sizeof(bits));
  for (size_t i = 0; i < 8; ++i) {
    bytes[kCorpusEpsilonOffset + i] = static_cast<char>(bits >> (8 * i));
  }
  return bytes;
}

inline std::string CorpusOversizedFirstFrameLength(const std::string& honest) {
  std::string bytes = honest;
  const uint32_t hostile = stream::kMaxFrameBytes + 1;
  for (size_t i = 0; i < 4; ++i) {
    bytes[stream::kStreamHeaderBytes + i] =
        static_cast<char>(hostile >> (8 * i));
  }
  return bytes;
}

inline std::string CorpusTruncatedFinalFrame(const std::string& honest) {
  return honest.substr(0, honest.size() - 3);
}

inline std::string CorpusTrailingPartialLengthPrefix(
    const std::string& honest) {
  return honest + std::string(2, '\x05');
}

// Overwrites the first frame's first entry attribute index with 0xFFFFFFFF
// — a "bit-flip" guaranteed to fail range validation whatever the schema.
inline std::string CorpusBitFlippedAttribute(const std::string& honest) {
  std::string bytes = honest;
  // header | u32 frame length | u16 entry_count | u32 attribute ...
  const size_t attribute_offset = stream::kStreamHeaderBytes + 4 + 2;
  for (size_t i = 0; i < 4; ++i) {
    bytes[attribute_offset + i] = static_cast<char>(0xFF);
  }
  return bytes;
}

// Shortens the first frame's payload by one byte (fixing the length prefix
// so the framing stays intact): the payload decode is what fails.
inline std::string CorpusTruncatedFirstPayload(const std::string& honest) {
  const char* data = honest.data() + stream::kStreamHeaderBytes;
  const uint32_t length = internal_wire::LoadLittleEndian<uint32_t>(data);
  EXPECT_GT(length, 0u);
  std::string bytes = honest.substr(0, stream::kStreamHeaderBytes);
  const uint32_t shortened = length - 1;
  for (size_t i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>(shortened >> (8 * i)));
  }
  bytes.append(honest, stream::kStreamHeaderBytes + 4, shortened);
  bytes.append(honest, stream::kStreamHeaderBytes + 4 + length,
               std::string::npos);
  return bytes;
}

inline std::string CorpusZeroLengthFrameInserted(const std::string& honest) {
  std::string bytes = honest.substr(0, stream::kStreamHeaderBytes);
  bytes.append(4, '\0');  // u32 length 0, empty payload
  bytes.append(honest, stream::kStreamHeaderBytes, std::string::npos);
  return bytes;
}

inline std::string CorpusGarbageFrameAppended(const std::string& honest) {
  std::string bytes = honest;
  EXPECT_TRUE(stream::AppendFrame(std::string(5, '\xFF'), &bytes).ok());
  return bytes;
}

inline constexpr CorpusCase kStreamCorpus[] = {
    {"truncated-header", CorpusOutcome::kPoisoned, 0, 0, true,
     CorpusTruncatedHeader},
    {"bad-magic", CorpusOutcome::kPoisoned, 0, 0, true, CorpusBadMagic},
    {"bad-version", CorpusOutcome::kPoisoned, 0, 0, true, CorpusBadVersion},
    {"schema-hash-flip", CorpusOutcome::kPoisoned, 0, 0, true,
     CorpusSchemaHashFlip},
    {"epsilon-mismatch", CorpusOutcome::kPoisoned, 0, 0, true,
     CorpusEpsilonMismatch},
    {"oversized-frame-length", CorpusOutcome::kPoisoned, 0, 0, false,
     CorpusOversizedFirstFrameLength},
    {"truncated-final-frame", CorpusOutcome::kPoisoned, 0, kCorpusReports - 1,
     false, CorpusTruncatedFinalFrame},
    {"trailing-partial-length", CorpusOutcome::kPoisoned, 0, kCorpusReports,
     false, CorpusTrailingPartialLengthPrefix},
    {"bit-flipped-attribute", CorpusOutcome::kRejects, 1, kCorpusReports - 1,
     false, CorpusBitFlippedAttribute},
    {"truncated-first-payload", CorpusOutcome::kRejects, 1,
     kCorpusReports - 1, false, CorpusTruncatedFirstPayload},
    {"zero-length-frame", CorpusOutcome::kRejects, 1, kCorpusReports, false,
     CorpusZeroLengthFrameInserted},
    {"garbage-frame-appended", CorpusOutcome::kRejects, 1, kCorpusReports,
     false, CorpusGarbageFrameAppended},
};

// --- fixtures --------------------------------------------------------------

/// The corpus pipeline: a 3-attribute mixed schema (or 2-attribute numeric)
/// at kCorpusEpsilon.
inline api::Pipeline MakeCorpusPipeline(bool numeric) {
  auto schema =
      numeric
          ? data::Schema::Create({data::ColumnSpec::Numeric("a", -1, 1),
                                  data::ColumnSpec::Numeric("b", -1, 1)})
          : data::Schema::Create(
                {data::ColumnSpec::Numeric("income", -1, 1),
                 data::ColumnSpec::Categorical("sector", 4),
                 data::ColumnSpec::Numeric("age", -1, 1)});
  EXPECT_TRUE(schema.ok());
  auto config =
      api::PipelineConfig::FromSchema(schema.value(), kCorpusEpsilon);
  EXPECT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline).value();
}

/// One honest shard stream (header + kCorpusReports frames) for the corpus
/// pipeline.
inline std::string MakeHonestStream(const api::Pipeline& pipeline,
                                    uint64_t seed) {
  auto client = pipeline.NewClient();
  EXPECT_TRUE(client.ok());
  std::string bytes = client.value().EncodeHeader();
  for (uint64_t row = 0; row < kCorpusReports; ++row) {
    Rng rng = api::UserRng(seed, row);
    Result<std::string> payload = [&]() -> Result<std::string> {
      if (pipeline.stream_kind() ==
          stream::ReportStreamKind::kSampledNumeric) {
        return client.value().EncodeReport(std::vector<double>{0.5, -0.5},
                                           &rng);
      }
      MixedTuple tuple(3);
      tuple[0] = AttributeValue::Numeric(0.25);
      tuple[1] = AttributeValue::Categorical(row % 4);
      tuple[2] = AttributeValue::Numeric(-0.75);
      return client.value().EncodeReport(tuple, &rng);
    }();
    EXPECT_TRUE(payload.ok());
    EXPECT_TRUE(stream::AppendFrame(payload.value(), &bytes).ok());
  }
  return bytes;
}

}  // namespace ldp::testing

#endif  // LDP_TESTS_STREAM_CORPUS_UTIL_H_
