#include "util/math.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/variance.h"

namespace ldp {
namespace {

TEST(LogBinomialTest, MatchesSmallExactValues) {
  EXPECT_NEAR(LogBinomial(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-10);
  EXPECT_NEAR(LogBinomial(10, 5), std::log(252.0), 1e-10);
  EXPECT_NEAR(LogBinomial(20, 0), 0.0, 1e-10);
  EXPECT_NEAR(LogBinomial(20, 20), 0.0, 1e-10);
}

TEST(LogBinomialTest, LargeArgumentsStayFinite) {
  const double log_c = LogBinomial(4000000, 2000000);
  EXPECT_TRUE(std::isfinite(log_c));
  // C(n, n/2) ~ 2^n / sqrt(pi n / 2).
  const double approx = 4000000 * std::log(2.0) -
                        0.5 * std::log(M_PI * 4000000 / 2.0);
  EXPECT_NEAR(log_c, approx, 1.0);
}

TEST(BinomialCoefficientTest, SmallExactValues) {
  EXPECT_EQ(static_cast<double>(BinomialCoefficient(6, 3)), 20.0);
  EXPECT_EQ(static_cast<double>(BinomialCoefficient(10, 1)), 10.0);
  EXPECT_EQ(static_cast<double>(BinomialCoefficient(10, 10)), 1.0);
  EXPECT_NEAR(static_cast<double>(BinomialCoefficient(52, 5)), 2598960.0,
              1e-3);
}

TEST(EpsilonStarTest, MatchesPaperValue) {
  // The paper states ε* ≈ 0.61.
  EXPECT_NEAR(EpsilonStar(), 0.61, 0.005);
}

TEST(EpsilonStarTest, IsTheHmRegimeBoundary) {
  // ε* is where the two branches of HM's worst-case variance (Eq. 8) meet:
  // just below ε*, pure Duchi is optimal; just above, the mixture wins.
  const double eps = EpsilonStar();
  const double below = HybridWorstCaseVariance(eps - 1e-6);
  const double at = DuchiWorstCaseVariance(eps - 1e-6);
  EXPECT_DOUBLE_EQ(below, at);
  // Continuity at the boundary: the two Eq. 8 branches agree at ε*.
  EXPECT_NEAR(HybridWorstCaseVariance(eps + 1e-9),
              HybridWorstCaseVariance(eps - 1e-9), 1e-6);
}

TEST(EpsilonSharpTest, MatchesPaperValue) {
  // The paper states ε# ≈ 1.29.
  EXPECT_NEAR(EpsilonSharp(), 1.29, 0.005);
}

TEST(EpsilonSharpTest, IsThePmDuchiCrossing) {
  // ε# is defined as the budget where PM's and Duchi's worst-case variances
  // are equal.
  const double eps = EpsilonSharp();
  EXPECT_NEAR(PiecewiseWorstCaseVariance(eps), DuchiWorstCaseVariance(eps),
              1e-9);
  // PM is strictly worse below and strictly better above.
  EXPECT_GT(PiecewiseWorstCaseVariance(eps - 0.1),
            DuchiWorstCaseVariance(eps - 0.1));
  EXPECT_LT(PiecewiseWorstCaseVariance(eps + 0.1),
            DuchiWorstCaseVariance(eps + 0.1));
}

TEST(SigmoidTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(1.0), 1.0 / (1.0 + std::exp(-1.0)), 1e-12);
  EXPECT_NEAR(Sigmoid(-1.0), 1.0 - Sigmoid(1.0), 1e-12);
}

TEST(SigmoidTest, SaturatesWithoutOverflow) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(Sigmoid(710.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-710.0)));
}

TEST(ClampTest, ClampsBothSides) {
  EXPECT_EQ(Clamp(5.0, -1.0, 1.0), 1.0);
  EXPECT_EQ(Clamp(-5.0, -1.0, 1.0), -1.0);
  EXPECT_EQ(Clamp(0.25, -1.0, 1.0), 0.25);
  EXPECT_EQ(Clamp(1.0, 1.0, 1.0), 1.0);
}

TEST(BisectTest, FindsSimpleRoot) {
  const double root =
      Bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0, 1e-12);
  EXPECT_NEAR(root, std::sqrt(2.0), 1e-10);
}

TEST(BisectTest, HandlesRootAtEndpoint) {
  EXPECT_DOUBLE_EQ(Bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(BisectTest, RecoversEpsilonSharpNumerically) {
  // Cross-check the closed form against a direct numeric solve of
  // MaxVarPM(ε) = MaxVarDuchi(ε).
  const double root = Bisect(
      [](double eps) {
        return PiecewiseWorstCaseVariance(eps) - DuchiWorstCaseVariance(eps);
      },
      0.5, 3.0, 1e-12);
  EXPECT_NEAR(root, EpsilonSharp(), 1e-9);
}

TEST(BisectTest, RecoversEpsilonStarNumerically) {
  // ε* solves: the optimal-α mixture's variance at t=0 equals Duchi's worst
  // case, i.e. the point below which α = 0 becomes optimal. Equivalently it
  // is the root of d/dα MaxVar at α=0, which reduces to
  // MaxVarHM(first branch)(ε) = MaxVarDuchi(ε).
  const double root = Bisect(
      [](double eps) {
        const double e_half = std::exp(eps / 2.0);
        const double e_full = std::exp(eps);
        const double mixture =
            (e_half + 3.0) / (3.0 * e_half * (e_half - 1.0)) +
            (e_full + 1.0) * (e_full + 1.0) /
                (e_half * (e_full - 1.0) * (e_full - 1.0));
        return mixture - DuchiWorstCaseVariance(eps);
      },
      0.3, 1.0, 1e-12);
  EXPECT_NEAR(root, EpsilonStar(), 1e-9);
}

}  // namespace
}  // namespace ldp
