#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace ldp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_TRUE(status.message().empty());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(StatusTest, NonOkStatusIsNotOk) {
  EXPECT_FALSE(Status::Internal("boom").ok());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const std::string text = Status::InvalidArgument("bad arg").ToString();
  EXPECT_NE(text.find("InvalidArgument"), std::string::npos);
  EXPECT_NE(text.find("bad arg"), std::string::npos);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeToStringNamesEveryCode) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

Status FailsWhenNegative(int x) {
  LDP_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                            : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsWhenNegative(3).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallsBack) {
  EXPECT_EQ(Result<int>(7).value_or(0), 7);
  EXPECT_EQ(Result<int>(Status::Internal("x")).value_or(13), 13);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  int half = 0;
  LDP_ASSIGN_OR_RETURN(half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagatesAndAssigns) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ldp
