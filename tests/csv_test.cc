#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ldp::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ldp_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  Schema TestSchema() {
    auto schema = Schema::Create({ColumnSpec::Numeric("x", -1.0, 1.0),
                                  ColumnSpec::Categorical("c", 3)});
    EXPECT_TRUE(schema.ok());
    return schema.value();
  }

  std::string path_;
};

TEST_F(CsvTest, RoundTripPreservesData) {
  Dataset dataset(TestSchema());
  dataset.Resize(3);
  dataset.set_numeric(0, 0, -0.123456789012345);
  dataset.set_numeric(1, 0, 0.5);
  dataset.set_numeric(2, 0, 1.0);
  dataset.set_category(0, 1, 2);
  dataset.set_category(2, 1, 1);
  ASSERT_TRUE(WriteCsv(dataset, path_).ok());

  auto loaded = ReadCsv(TestSchema(), path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(loaded.value().numeric(i, 0), dataset.numeric(i, 0));
    EXPECT_EQ(loaded.value().category(i, 1), dataset.category(i, 1));
  }
}

TEST_F(CsvTest, EmptyDatasetRoundTrips) {
  Dataset dataset(TestSchema());
  ASSERT_TRUE(WriteCsv(dataset, path_).ok());
  auto loaded = ReadCsv(TestSchema(), path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), 0u);
}

TEST_F(CsvTest, ReadRejectsMissingFile) {
  EXPECT_FALSE(ReadCsv(TestSchema(), path_ + ".does_not_exist").ok());
}

TEST_F(CsvTest, ReadRejectsWrongHeaderNames) {
  WriteFile("x,wrong\n0.5,1\n");
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, ReadRejectsWrongColumnCount) {
  WriteFile("x,c\n0.5,1,9\n");
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
  WriteFile("x,c\n0.5\n");
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, ReadRejectsUnparseableNumeric) {
  WriteFile("x,c\nnot_a_number,1\n");
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
  WriteFile("x,c\n0.5extra,1\n");
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, ReadRejectsOutOfDomainCategorical) {
  WriteFile("x,c\n0.5,3\n");  // domain is {0,1,2}
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
  WriteFile("x,c\n0.5,-1\n");
  EXPECT_FALSE(ReadCsv(TestSchema(), path_).ok());
}

TEST_F(CsvTest, ReadSkipsBlankLines) {
  WriteFile("x,c\n0.5,1\n\n-0.25,2\n");
  auto loaded = ReadCsv(TestSchema(), path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), 2u);
  EXPECT_DOUBLE_EQ(loaded.value().numeric(1, 0), -0.25);
}

TEST_F(CsvTest, WriteFailsOnUnwritablePath) {
  Dataset dataset(TestSchema());
  EXPECT_FALSE(WriteCsv(dataset, "/nonexistent_dir_xyz/file.csv").ok());
}

TEST_F(CsvTest, RowReaderStreamsWhatReadCsvMaterializes) {
  const Schema schema = TestSchema();
  WriteFile("x,c\n0.25,2\n\n-1,0\n0.75,1\n");  // blank line is skipped

  auto table = ReadCsv(schema, path_);
  ASSERT_TRUE(table.ok());

  auto reader = CsvRowReader::Open(schema, path_);
  ASSERT_TRUE(reader.ok());
  std::vector<double> numeric;
  std::vector<uint32_t> category;
  uint64_t row = 0;
  for (;;) {
    auto more = reader.value().NextRow(&numeric, &category);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    ASSERT_EQ(numeric.size(), schema.num_columns());
    ASSERT_EQ(category.size(), schema.num_columns());
    EXPECT_DOUBLE_EQ(numeric[0], table.value().numeric(row, 0));
    EXPECT_EQ(category[1], table.value().category(row, 1));
    ++row;
  }
  EXPECT_EQ(row, table.value().num_rows());
  EXPECT_EQ(reader.value().rows_read(), table.value().num_rows());
}

TEST_F(CsvTest, RowReaderValidatesHeaderAndCells) {
  const Schema schema = TestSchema();
  WriteFile("x,WRONG\n0.25,2\n");
  EXPECT_FALSE(CsvRowReader::Open(schema, path_).ok());

  WriteFile("x,c\n0.25,7\n");  // categorical code out of range
  auto reader = CsvRowReader::Open(schema, path_);
  ASSERT_TRUE(reader.ok());
  std::vector<double> numeric;
  std::vector<uint32_t> category;
  EXPECT_FALSE(reader.value().NextRow(&numeric, &category).ok());

  WriteFile("x,c\nnot_a_number,1\n");
  auto bad_numeric = CsvRowReader::Open(schema, path_);
  ASSERT_TRUE(bad_numeric.ok());
  EXPECT_FALSE(bad_numeric.value().NextRow(&numeric, &category).ok());

  EXPECT_FALSE(CsvRowReader::Open(schema, "/nonexistent_xyz.csv").ok());
}

}  // namespace
}  // namespace ldp::data
