#include "baselines/duchi_one_dim.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace ldp {
namespace {

using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;
using ::ldp::testing::VarianceRelTolerance;

constexpr uint64_t kSamples = 200000;

TEST(DuchiOneDimTest, BoundMatchesFormula) {
  for (const double eps : {0.5, 1.0, 2.0}) {
    const double e = std::exp(eps);
    EXPECT_DOUBLE_EQ(DuchiOneDimMechanism(eps).bound(),
                     (e + 1.0) / (e - 1.0));
  }
}

TEST(DuchiOneDimTest, OutputIsTwoPoint) {
  const DuchiOneDimMechanism mech(1.0);
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double out = mech.Perturb(0.3, &rng);
    EXPECT_TRUE(out == mech.bound() || out == -mech.bound());
  }
}

TEST(DuchiOneDimTest, HeadProbabilityMatchesEquation3) {
  // Pr[t* = B] = (e^ε-1)/(2e^ε+2)·t + 1/2.
  const double eps = 1.2;
  const DuchiOneDimMechanism mech(eps);
  const double e = std::exp(eps);
  Rng rng(2);
  for (const double t : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    const double expected = (e - 1.0) / (2.0 * e + 2.0) * t + 0.5;
    RunningStats stats = SampleStats(kSamples, &rng, [&](Rng* r) {
      return mech.Perturb(t, r) > 0.0 ? 1.0 : 0.0;
    });
    EXPECT_NEAR(stats.Mean(), expected, MeanTolerance(stats)) << "t=" << t;
  }
}

TEST(DuchiOneDimTest, PerturbIsUnbiased) {
  const DuchiOneDimMechanism mech(0.7);
  Rng rng(3);
  for (const double t : {-1.0, -0.25, 0.0, 0.6, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, MeanTolerance(stats)) << "t=" << t;
  }
}

TEST(DuchiOneDimTest, VarianceMatchesEquation4) {
  const DuchiOneDimMechanism mech(1.0);
  const double b = mech.bound();
  EXPECT_DOUBLE_EQ(mech.Variance(0.0), b * b);
  EXPECT_DOUBLE_EQ(mech.Variance(1.0), b * b - 1.0);
  EXPECT_DOUBLE_EQ(mech.WorstCaseVariance(), b * b);
  // Variance decreases as |t| grows — the opposite of PM (Section III-B).
  EXPECT_GT(mech.Variance(0.1), mech.Variance(0.9));
}

TEST(DuchiOneDimTest, EmpiricalVarianceMatchesClosedForm) {
  const DuchiOneDimMechanism mech(2.0);
  Rng rng(4);
  for (const double t : {0.0, 0.5, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.SampleVariance(), mech.Variance(t),
                mech.Variance(t) * VarianceRelTolerance(kSamples) + 1e-6)
        << "t=" << t;
  }
}

TEST(DuchiOneDimTest, SatisfiesLdpOnOutputProbabilities) {
  // Discrete outputs: check Pr[out | t] / Pr[out | t'] <= e^ε for all pairs.
  const double eps = 0.9;
  const DuchiOneDimMechanism mech(eps);
  const double e = std::exp(eps);
  auto head_prob = [&](double t) {
    return (e - 1.0) / (2.0 * e + 2.0) * t + 0.5;
  };
  for (double t1 = -1.0; t1 <= 1.0; t1 += 0.1) {
    for (double t2 = -1.0; t2 <= 1.0; t2 += 0.1) {
      EXPECT_LE(head_prob(t1) / head_prob(t2), e * (1.0 + 1e-12));
      EXPECT_LE((1.0 - head_prob(t1)) / (1.0 - head_prob(t2)),
                e * (1.0 + 1e-12));
    }
  }
}

TEST(DuchiOneDimTest, WorstCaseVarianceAlwaysAboveOne) {
  // Because |t*| = B > 1, Var at t=0 exceeds 1 regardless of ε — the paper's
  // criticism of this mechanism at large ε.
  for (const double eps : {0.5, 2.0, 8.0, 20.0}) {
    EXPECT_GT(DuchiOneDimMechanism(eps).WorstCaseVariance(), 1.0);
  }
}

TEST(DuchiOneDimTest, NameAndEpsilon) {
  const DuchiOneDimMechanism mech(1.0);
  EXPECT_STREQ(mech.name(), "Duchi");
  EXPECT_DOUBLE_EQ(mech.epsilon(), 1.0);
  EXPECT_DOUBLE_EQ(mech.OutputBound(), mech.bound());
}

}  // namespace
}  // namespace ldp
