#include "core/sampled_numeric.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/variance.h"
#include "test_util.h"

namespace ldp {
namespace {

using ::ldp::testing::MeanTolerance;

TEST(SampledNumericTest, CreateValidatesArguments) {
  EXPECT_FALSE(
      SampledNumericMechanism::Create(MechanismKind::kHybrid, 1.0, 0).ok());
  EXPECT_FALSE(
      SampledNumericMechanism::Create(MechanismKind::kHybrid, 0.0, 4).ok());
  EXPECT_FALSE(
      SampledNumericMechanism::Create(MechanismKind::kHybrid, -1.0, 4).ok());
  EXPECT_TRUE(
      SampledNumericMechanism::Create(MechanismKind::kHybrid, 1.0, 4).ok());
}

TEST(SampledNumericTest, CreateWithSampleCountValidatesK) {
  EXPECT_FALSE(SampledNumericMechanism::CreateWithSampleCount(
                   MechanismKind::kPiecewise, 1.0, 4, 0)
                   .ok());
  EXPECT_FALSE(SampledNumericMechanism::CreateWithSampleCount(
                   MechanismKind::kPiecewise, 1.0, 4, 5)
                   .ok());
  auto ok = SampledNumericMechanism::CreateWithSampleCount(
      MechanismKind::kPiecewise, 1.0, 4, 3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().k(), 3u);
  EXPECT_NEAR(ok.value().per_attribute_epsilon(), 1.0 / 3.0, 1e-12);
}

TEST(SampledNumericTest, DefaultKFollowsEquation12) {
  for (const double eps : {0.5, 2.6, 5.1, 12.5, 100.0}) {
    for (const uint32_t d : {1u, 3u, 10u}) {
      auto mech =
          SampledNumericMechanism::Create(MechanismKind::kHybrid, eps, d);
      ASSERT_TRUE(mech.ok());
      EXPECT_EQ(mech.value().k(), AttributeSampleCount(eps, d))
          << "eps=" << eps << " d=" << d;
    }
  }
}

TEST(SampledNumericTest, ReportHasExactlyKDistinctAttributes) {
  auto mech = SampledNumericMechanism::CreateWithSampleCount(
      MechanismKind::kHybrid, 6.0, 10, 3);
  ASSERT_TRUE(mech.ok());
  Rng rng(1);
  const std::vector<double> t(10, 0.1);
  for (int i = 0; i < 500; ++i) {
    const SampledNumericReport report = mech.value().Perturb(t, &rng);
    ASSERT_EQ(report.size(), 3u);
    std::set<uint32_t> attrs;
    for (const SampledValue& entry : report) {
      EXPECT_LT(entry.attribute, 10u);
      attrs.insert(entry.attribute);
    }
    EXPECT_EQ(attrs.size(), 3u);
  }
}

TEST(SampledNumericTest, SampledAttributesAreUniform) {
  auto mech = SampledNumericMechanism::CreateWithSampleCount(
      MechanismKind::kPiecewise, 5.0, 8, 2);
  ASSERT_TRUE(mech.ok());
  Rng rng(2);
  const std::vector<double> t(8, 0.0);
  std::vector<int> counts(8, 0);
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    for (const SampledValue& entry : mech.value().Perturb(t, &rng)) {
      ++counts[entry.attribute];
    }
  }
  const double expected = trials * 2.0 / 8.0;
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(counts[j], expected, 5.0 * std::sqrt(expected)) << "j=" << j;
  }
}

TEST(SampledNumericTest, DenseReportIsUnbiased) {
  const uint32_t d = 6;
  auto mech = SampledNumericMechanism::Create(MechanismKind::kHybrid, 2.0, d);
  ASSERT_TRUE(mech.ok());
  const std::vector<double> t = {-0.9, -0.3, 0.0, 0.25, 0.6, 1.0};
  Rng rng(3);
  std::vector<RunningStats> stats(d);
  const uint64_t samples = 200000;
  for (uint64_t i = 0; i < samples; ++i) {
    const std::vector<double> dense = mech.value().PerturbDense(t, &rng);
    for (uint32_t j = 0; j < d; ++j) stats[j].Add(dense[j]);
  }
  for (uint32_t j = 0; j < d; ++j) {
    EXPECT_NEAR(stats[j].Mean(), t[j], MeanTolerance(stats[j], 6.0))
        << "coordinate " << j;
  }
}

TEST(SampledNumericTest, DenseAndSparseAgree) {
  auto mech = SampledNumericMechanism::Create(MechanismKind::kPiecewise, 1.0,
                                              5);
  ASSERT_TRUE(mech.ok());
  const std::vector<double> t = {0.1, 0.2, 0.3, 0.4, 0.5};
  // Same seed → same sampling and noise; dense must equal scattered sparse.
  Rng rng_sparse(7), rng_dense(7);
  const SampledNumericReport sparse = mech.value().Perturb(t, &rng_sparse);
  const std::vector<double> dense = mech.value().PerturbDense(t, &rng_dense);
  std::vector<double> scattered(5, 0.0);
  for (const SampledValue& entry : sparse) {
    scattered[entry.attribute] = entry.value;
  }
  EXPECT_EQ(scattered, dense);
}

TEST(SampledNumericTest, ScaledValuesStayWithinScaledMechanismBound) {
  auto mech =
      SampledNumericMechanism::Create(MechanismKind::kPiecewise, 1.0, 4);
  ASSERT_TRUE(mech.ok());
  const double limit = 4.0 / mech.value().k() *
                       mech.value().scalar_mechanism().OutputBound();
  Rng rng(4);
  const std::vector<double> t = {1.0, -1.0, 0.5, 0.0};
  for (int i = 0; i < 5000; ++i) {
    for (const SampledValue& entry : mech.value().Perturb(t, &rng)) {
      EXPECT_LE(std::abs(entry.value), limit * (1.0 + 1e-12));
    }
  }
}

TEST(SampledNumericTest, CoordinateVarianceMatchesClosedForms) {
  for (const double eps : {1.0, 4.0, 8.0}) {
    for (const uint32_t d : {2u, 10u}) {
      auto pm =
          SampledNumericMechanism::Create(MechanismKind::kPiecewise, eps, d);
      auto hm = SampledNumericMechanism::Create(MechanismKind::kHybrid, eps, d);
      ASSERT_TRUE(pm.ok());
      ASSERT_TRUE(hm.ok());
      for (const double t : {0.0, 0.5, 1.0}) {
        EXPECT_NEAR(pm.value().CoordinateVariance(t),
                    SampledPiecewiseVariance(eps, d, t), 1e-9);
        EXPECT_NEAR(hm.value().CoordinateVariance(t),
                    SampledHybridVariance(eps, d, t), 1e-9);
      }
      EXPECT_NEAR(pm.value().WorstCaseCoordinateVariance(),
                  SampledPiecewiseWorstCaseVariance(eps, d), 1e-9);
      EXPECT_NEAR(hm.value().WorstCaseCoordinateVariance(),
                  SampledHybridWorstCaseVariance(eps, d), 1e-9);
    }
  }
}

TEST(SampledNumericTest, Equation12KIsNearOptimalInMeasuredVariance) {
  // The design-choice check behind the k-ablation: the Eq.-12 k should be at
  // least as good (in worst-case coordinate variance) as any other k, up to
  // the coarse granularity of the formula.
  const double eps = 7.5;
  const uint32_t d = 10;
  auto best = SampledNumericMechanism::Create(MechanismKind::kPiecewise, eps,
                                              d);
  ASSERT_TRUE(best.ok());
  const double chosen = best.value().WorstCaseCoordinateVariance();
  double optimal = chosen;
  for (uint32_t k = 1; k <= d; ++k) {
    auto swept = SampledNumericMechanism::CreateWithSampleCount(
        MechanismKind::kPiecewise, eps, d, k);
    ASSERT_TRUE(swept.ok());
    optimal = std::min(optimal, swept.value().WorstCaseCoordinateVariance());
  }
  EXPECT_LE(chosen, optimal * 1.25);
}

}  // namespace
}  // namespace ldp
