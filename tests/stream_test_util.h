// Shared driver for the concurrent-session test harness: round-robin
// chunked shard feeding with deterministic pseudo-random chunk boundaries,
// so frame boundaries straddle Feed calls and every shard's strand stays
// busy at once. Used by concurrent_session_test.cc (honest streams) and
// stream_fuzz_corpus_test.cc (hostile mutants).

#ifndef LDP_TESTS_STREAM_TEST_UTIL_H_
#define LDP_TESTS_STREAM_TEST_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/server_session.h"
#include "util/status.h"

namespace ldp::testing {

/// A tiny deterministic chunk-size generator (LCG, upper bits).
inline uint64_t NextLcg(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

/// Feeds streams[i] into session shard ids[i], all shards interleaved
/// round-robin in pseudo-random chunks of 1..max_chunk bytes. Returns the
/// first non-OK Feed status (hostile streams turn sticky mid-way; honest
/// callers assert OK) while always feeding every stream to its end.
inline Status FeedShardsInterleaved(
    api::ServerSession* session, const std::vector<size_t>& ids,
    const std::vector<const std::string*>& streams, uint64_t chunk_seed,
    size_t max_chunk = 1024) {
  Status first_error = Status::OK();
  std::vector<size_t> offsets(streams.size(), 0);
  uint64_t lcg = chunk_seed;
  for (bool progressed = true; progressed;) {
    progressed = false;
    for (size_t s = 0; s < streams.size(); ++s) {
      const size_t left = streams[s]->size() - offsets[s];
      if (left == 0) continue;
      const size_t take =
          std::min<size_t>(left, 1 + NextLcg(&lcg) % max_chunk);
      const Status fed =
          session->Feed(ids[s], streams[s]->data() + offsets[s], take);
      if (!fed.ok() && first_error.ok()) first_error = fed;
      offsets[s] += take;
      progressed = true;
    }
  }
  return first_error;
}

}  // namespace ldp::testing

#endif  // LDP_TESTS_STREAM_TEST_UTIL_H_
