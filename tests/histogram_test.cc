#include "frequency/histogram.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "frequency/oue.h"
#include "test_util.h"

namespace ldp {
namespace {

TEST(FrequencyEstimatorTest, StartsEmpty) {
  const OueOracle oracle(1.0, 4);
  FrequencyEstimator estimator(&oracle);
  EXPECT_EQ(estimator.count(), 0u);
  EXPECT_EQ(estimator.support().size(), 4u);
  const std::vector<double> est = estimator.RawEstimate();
  EXPECT_EQ(est, (std::vector<double>{0.0, 0.0, 0.0, 0.0}));
}

TEST(FrequencyEstimatorTest, AccumulatesSupportCounts) {
  const OueOracle oracle(1.0, 3);
  FrequencyEstimator estimator(&oracle);
  estimator.Add({0, 2});
  estimator.Add({1});
  EXPECT_EQ(estimator.count(), 2u);
  EXPECT_EQ(estimator.support()[0], 1.0);
  EXPECT_EQ(estimator.support()[1], 1.0);
  EXPECT_EQ(estimator.support()[2], 1.0);
}

TEST(FrequencyEstimatorTest, ClampedEstimateStaysInUnitInterval) {
  const OueOracle oracle(0.5, 8);
  Rng rng(1);
  FrequencyEstimator estimator(&oracle);
  // Few reports → raw estimates will stray outside [0, 1].
  for (int i = 0; i < 20; ++i) estimator.Add(oracle.Perturb(0, &rng));
  for (const double f : estimator.ClampedEstimate()) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(FrequencyEstimatorTest, ProjectedEstimateIsADistribution) {
  const OueOracle oracle(0.5, 8);
  Rng rng(2);
  FrequencyEstimator estimator(&oracle);
  for (int i = 0; i < 50; ++i) {
    estimator.Add(oracle.Perturb(static_cast<uint32_t>(i % 8), &rng));
  }
  const std::vector<double> projected = estimator.ProjectedEstimate();
  double total = 0.0;
  for (const double f : projected) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ProjectOntoSimplexTest, DistributionIsFixedPoint) {
  const std::vector<double> p = {0.2, 0.5, 0.3};
  const std::vector<double> projected = ProjectOntoSimplex(p);
  for (size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(projected[i], p[i], 1e-12);
  }
}

TEST(ProjectOntoSimplexTest, UniformShiftIsRemoved) {
  // Projection of p + c·1 equals projection of p when p is a distribution.
  const std::vector<double> shifted = {0.2 + 0.7, 0.5 + 0.7, 0.3 + 0.7};
  const std::vector<double> projected = ProjectOntoSimplex(shifted);
  EXPECT_NEAR(projected[0], 0.2, 1e-12);
  EXPECT_NEAR(projected[1], 0.5, 1e-12);
  EXPECT_NEAR(projected[2], 0.3, 1e-12);
}

TEST(ProjectOntoSimplexTest, NegativeEntriesAreZeroedOut) {
  const std::vector<double> projected = ProjectOntoSimplex({1.4, -0.5, 0.3});
  EXPECT_EQ(projected[1], 0.0);
  EXPECT_NEAR(std::accumulate(projected.begin(), projected.end(), 0.0), 1.0,
              1e-12);
}

TEST(ProjectOntoSimplexTest, SingletonProjectsToOne) {
  EXPECT_EQ(ProjectOntoSimplex({-3.0}), std::vector<double>{1.0});
  EXPECT_EQ(ProjectOntoSimplex({42.0}), std::vector<double>{1.0});
}

class SimplexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(SimplexPropertyTest, ProjectionIsValidAndIdempotent) {
  Rng rng(GetParam());
  const size_t k = 2 + rng.UniformIndex(20);
  std::vector<double> v(k);
  for (double& x : v) x = rng.Uniform(-2.0, 2.0);
  const std::vector<double> p = ProjectOntoSimplex(v);
  double total = 0.0;
  for (const double f : p) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Idempotence.
  const std::vector<double> p2 = ProjectOntoSimplex(p);
  for (size_t i = 0; i < k; ++i) EXPECT_NEAR(p2[i], p[i], 1e-9);
}

TEST_P(SimplexPropertyTest, ProjectionMinimisesEuclideanDistance) {
  // Compare against random candidate points on the simplex: none may be
  // closer to v than the projection.
  Rng rng(GetParam() + 100);
  const size_t k = 4;
  std::vector<double> v(k);
  for (double& x : v) x = rng.Uniform(-1.5, 1.5);
  const std::vector<double> p = ProjectOntoSimplex(v);
  auto dist2 = [&](const std::vector<double>& q) {
    double s = 0.0;
    for (size_t i = 0; i < k; ++i) s += (q[i] - v[i]) * (q[i] - v[i]);
    return s;
  };
  const double projected_dist = dist2(p);
  for (int trial = 0; trial < 2000; ++trial) {
    // Random simplex point via normalised exponentials.
    std::vector<double> q(k);
    double total = 0.0;
    for (double& x : q) {
      x = rng.Exponential(1.0);
      total += x;
    }
    for (double& x : q) x /= total;
    EXPECT_GE(dist2(q), projected_dist - 1e-9);
  }
}

TEST(EstimateFrequenciesTest, EndToEndMatchesManualAccumulation) {
  const OueOracle oracle(1.0, 4);
  const std::vector<uint32_t> values = {0, 1, 2, 3, 0, 0};
  Rng rng_a(9), rng_b(9);
  const std::vector<double> via_helper =
      EstimateFrequencies(oracle, values, &rng_a);
  FrequencyEstimator estimator(&oracle);
  for (const uint32_t v : values) estimator.Add(oracle.Perturb(v, &rng_b));
  const std::vector<double> manual = estimator.RawEstimate();
  for (size_t v = 0; v < 4; ++v) {
    EXPECT_DOUBLE_EQ(via_helper[v], manual[v]);
  }
}

}  // namespace
}  // namespace ldp
