#include "ml/evaluate.h"

#include <gtest/gtest.h>

#include "ml/sgd.h"
#include "util/random.h"

namespace ldp::ml {
namespace {

TEST(MisclassificationRateTest, CountsSignDisagreements) {
  data::DesignMatrix features(4, 1);
  features.set(0, 0, 1.0);
  features.set(1, 0, -1.0);
  features.set(2, 0, 0.5);
  features.set(3, 0, -0.5);
  const std::vector<double> labels = {1.0, -1.0, -1.0, -1.0};
  const std::vector<double> beta = {1.0};  // predicts sign(x)
  // Rows 0, 1, 3 are right; row 2 is wrong.
  EXPECT_NEAR(MisclassificationRate(features, labels, beta), 0.25, 1e-12);
}

TEST(MisclassificationRateTest, ZeroScoreCountsAsPositive) {
  data::DesignMatrix features(1, 1);
  features.set(0, 0, 0.0);
  EXPECT_EQ(MisclassificationRate(features, {1.0}, {5.0}), 0.0);
  EXPECT_EQ(MisclassificationRate(features, {-1.0}, {5.0}), 1.0);
}

TEST(RegressionMseTest, ComputesResidualMse) {
  data::DesignMatrix features(2, 1);
  features.set(0, 0, 1.0);
  features.set(1, 0, 2.0);
  const std::vector<double> labels = {1.5, 1.0};
  const std::vector<double> beta = {1.0};
  // Residuals: -0.5 and 1.0 → MSE = (0.25 + 1) / 2.
  EXPECT_NEAR(RegressionMse(features, labels, beta), 0.625, 1e-12);
}

TEST(TakeRowsTest, ExtractsRowsInOrder) {
  data::DesignMatrix features(3, 2);
  for (uint64_t i = 0; i < 3; ++i) {
    features.set(i, 0, static_cast<double>(i));
    features.set(i, 1, 10.0 * static_cast<double>(i));
  }
  const data::DesignMatrix taken = TakeRows(features, {2, 0});
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_EQ(taken.at(0, 0), 2.0);
  EXPECT_EQ(taken.at(0, 1), 20.0);
  EXPECT_EQ(taken.at(1, 0), 0.0);
}

TEST(TakeLabelsTest, ExtractsValues) {
  EXPECT_EQ(TakeLabels({1.0, 2.0, 3.0}, {2, 2, 0}),
            (std::vector<double>{3.0, 3.0, 1.0}));
}

TEST(CrossValidateTest, ValidatesInputs) {
  data::DesignMatrix features(10, 1);
  std::vector<double> labels(5, 1.0);
  Rng rng(1);
  auto trainer = [](const data::DesignMatrix&, const std::vector<double>&)
      -> Result<std::vector<double>> { return std::vector<double>{0.0}; };
  EXPECT_FALSE(CrossValidate(features, labels, 5, 1,
                             EvalMetric::kMisclassification, trainer, &rng)
                   .ok());
  std::vector<double> ok_labels(10, 1.0);
  EXPECT_FALSE(CrossValidate(features, ok_labels, 5, 0,
                             EvalMetric::kMisclassification, trainer, &rng)
                   .ok());
  EXPECT_FALSE(CrossValidate(features, ok_labels, 1, 1,
                             EvalMetric::kMisclassification, trainer, &rng)
                   .ok());
}

TEST(CrossValidateTest, RunsFoldsTimesRepeats) {
  data::DesignMatrix features(20, 1);
  std::vector<double> labels(20, 1.0);
  Rng rng(2);
  int calls = 0;
  auto trainer = [&calls](const data::DesignMatrix& x,
                          const std::vector<double>& y)
      -> Result<std::vector<double>> {
    ++calls;
    EXPECT_EQ(x.num_rows(), 16u);  // 4/5 of 20
    EXPECT_EQ(y.size(), 16u);
    return std::vector<double>{1.0};
  };
  auto result = CrossValidate(features, labels, 5, 3,
                              EvalMetric::kMisclassification, trainer, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, 15);
  EXPECT_EQ(result.value().fold_metrics.size(), 15u);
}

TEST(CrossValidateTest, PropagatesTrainerFailure) {
  data::DesignMatrix features(10, 1);
  std::vector<double> labels(10, 1.0);
  Rng rng(3);
  auto trainer = [](const data::DesignMatrix&, const std::vector<double>&)
      -> Result<std::vector<double>> {
    return Status::Internal("trainer exploded");
  };
  auto result = CrossValidate(features, labels, 5, 1,
                              EvalMetric::kMisclassification, trainer, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(CrossValidateTest, EndToEndWithRealTrainerOnEasyData) {
  Rng data_rng(4);
  const uint64_t n = 2000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  for (uint64_t i = 0; i < n; ++i) {
    const double x0 = data_rng.Uniform(-1.0, 1.0);
    const double x1 = data_rng.Uniform(-1.0, 1.0);
    features.set(i, 0, x0);
    features.set(i, 1, x1);
    labels[i] = (x0 - x1 >= 0.0) ? 1.0 : -1.0;
  }
  Rng cv_rng(5);
  auto trainer = [](const data::DesignMatrix& x, const std::vector<double>& y)
      -> Result<std::vector<double>> {
    SgdOptions options;
    options.num_iterations = 800;
    options.seed = 6;
    return TrainSgd(x, y, LossKind::kLogistic, options);
  };
  auto result = CrossValidate(features, labels, 5, 1,
                              EvalMetric::kMisclassification, trainer,
                              &cv_rng);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().mean, 0.1);
  EXPECT_GE(result.value().stddev, 0.0);
}

}  // namespace
}  // namespace ldp::ml
