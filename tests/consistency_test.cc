// Post-processing consistency: the simplex-projected frequency estimates of
// the mixed aggregator, and the error ordering raw vs projected on sparse
// histograms.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/mixed_collector.h"
#include "frequency/histogram.h"
#include "frequency/oue.h"
#include "util/random.h"

namespace ldp {
namespace {

TEST(MixedProjectedFrequenciesTest, ProjectionYieldsDistribution) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Categorical(6), MixedAttribute::Numeric()}, 0.5);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    MixedTuple tuple(2);
    tuple[0] = AttributeValue::Categorical(
        static_cast<uint32_t>(rng.UniformIndex(6)));
    tuple[1] = AttributeValue::Numeric(0.0);
    aggregator.Add(collector.value().Perturb(tuple, &rng));
  }
  auto projected = aggregator.EstimateFrequenciesProjected(0);
  ASSERT_TRUE(projected.ok());
  double total = 0.0;
  for (const double f : projected.value()) {
    EXPECT_GE(f, 0.0);
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MixedProjectedFrequenciesTest, RejectsNumericAttribute) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Categorical(3), MixedAttribute::Numeric()}, 1.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  EXPECT_FALSE(aggregator.EstimateFrequenciesProjected(1).ok());
  EXPECT_FALSE(aggregator.EstimateFrequenciesProjected(7).ok());
}

TEST(MixedProjectedFrequenciesTest, AgreesWithManualProjection) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Categorical(4)}, 1.0);
  ASSERT_TRUE(collector.ok());
  MixedAggregator aggregator(&collector.value());
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    MixedTuple tuple(1);
    tuple[0] = AttributeValue::Categorical(i % 4 == 0 ? 0u : 1u);
    aggregator.Add(collector.value().Perturb(tuple, &rng));
  }
  const auto raw = aggregator.EstimateFrequencies(0);
  const auto projected = aggregator.EstimateFrequenciesProjected(0);
  ASSERT_TRUE(raw.ok() && projected.ok());
  const std::vector<double> manual = ProjectOntoSimplex(raw.value());
  for (size_t v = 0; v < manual.size(); ++v) {
    EXPECT_DOUBLE_EQ(projected.value()[v], manual[v]);
  }
}

TEST(ProjectionErrorTest, ProjectionBeatsRawOnSparseSkewedHistograms) {
  // On a heavily skewed histogram with few reports, the projected estimate's
  // L2 error should beat the raw unbiased estimate's on average — the reason
  // the post-processing exists.
  const uint32_t domain = 20;
  const OueOracle oracle(0.5, domain);
  std::vector<double> truth(domain, 0.0);
  truth[0] = 0.7;
  truth[1] = 0.3;
  Rng rng(3);
  double raw_error = 0.0, projected_error = 0.0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    FrequencyEstimator estimator(&oracle);
    for (int i = 0; i < 150; ++i) {
      estimator.Add(oracle.Perturb(rng.Bernoulli(0.7) ? 0u : 1u, &rng));
    }
    const auto raw = estimator.RawEstimate();
    const auto projected = estimator.ProjectedEstimate();
    for (uint32_t v = 0; v < domain; ++v) {
      raw_error += (raw[v] - truth[v]) * (raw[v] - truth[v]);
      projected_error +=
          (projected[v] - truth[v]) * (projected[v] - truth[v]);
    }
  }
  EXPECT_LT(projected_error, raw_error);
}

}  // namespace
}  // namespace ldp
