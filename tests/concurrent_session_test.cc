// Determinism and stress harness for concurrent intra-epoch ingest in
// api::ServerSession: a session with an ingest pool must reproduce the
// serial session — and the in-process Pipeline::Collect run — bit for bit at
// every thread count, under interleaved chunked feeds, multiple producer
// threads, and repeated runs; and the PrivacyAccountant must stay exact when
// AdvanceEpoch races other session calls. The TSan CI job runs this file to
// verify the absence of data races, so test bodies deliberately share
// nothing beyond the session under test.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "data/census.h"
#include "data/encode.h"
#include "stream/report_stream.h"
#include "stream_test_util.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

constexpr double kEpsilon = 4.0;
constexpr uint64_t kRows = 1000;
constexpr uint64_t kSeed = 77;
// Shard boundaries mirror a kPoolThreads-pooled run's ParallelFor chunks
// (threads x 4), the repo's bit-reproduction contract for sharded ingestion.
constexpr unsigned kPoolThreads = 2;
constexpr size_t kShards = kPoolThreads * 4;

data::Dataset MakeData() {
  auto dataset = data::MakeBrazilCensus(kRows, 3);
  EXPECT_TRUE(dataset.ok());
  return data::NormalizeNumeric(dataset.value());
}

api::Pipeline MakePipeline(const data::Dataset& dataset, uint32_t epochs) {
  auto config = api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  EXPECT_TRUE(config.ok());
  config.value().plan.epochs = epochs;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline).value();
}

api::ServerSession MakeServer(const api::Pipeline& pipeline,
                              unsigned ingest_threads) {
  api::ServerSessionOptions options;
  options.ingest_threads = ingest_threads;
  auto server = pipeline.NewServer(options);
  EXPECT_TRUE(server.ok());
  return std::move(server).value();
}

// One epoch's worth of shard streams whose boundaries split the population
// `num_shards` ways.
std::vector<std::string> WriteShards(const data::Dataset& dataset,
                                     const api::ClientSession& client,
                                     uint64_t seed, size_t num_shards) {
  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  std::vector<std::string> shards;
  for (const IndexRange range : SplitRange(dataset.num_rows(), num_shards)) {
    std::string shard = client.EncodeHeader();
    MixedTuple tuple(d);
    for (uint64_t row = range.begin; row < range.end; ++row) {
      for (uint32_t col = 0; col < d; ++col) {
        if (schema.column(col).type == data::ColumnType::kNumeric) {
          tuple[col].numeric = dataset.numeric(row, col);
        } else {
          tuple[col].category = dataset.category(row, col);
        }
      }
      Rng rng = api::UserRng(seed, row);
      auto payload = client.EncodeReport(tuple, &rng);
      EXPECT_TRUE(payload.ok());
      EXPECT_TRUE(stream::AppendFrame(payload.value(), &shard).ok());
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

using ldp::testing::FeedShardsInterleaved;
using ldp::testing::NextLcg;

// Reference path: every shard fed as one chunk, closed immediately.
void FeedWholeShards(api::ServerSession* session,
                     const std::vector<std::string>& shards) {
  for (const std::string& bytes : shards) {
    const size_t shard = session->OpenShard();
    ASSERT_TRUE(session->Feed(shard, bytes).ok());
    ASSERT_TRUE(session->CloseShard(shard).ok());
  }
}

// Adversarially interleaved path: all shards open at once, fed round-robin
// in pseudo-random chunk sizes (so frame boundaries straddle chunks), closed
// in shard-id order. One producer thread.
void FeedInterleaved(api::ServerSession* session,
                     const std::vector<std::string>& shards,
                     uint64_t chunk_seed) {
  std::vector<size_t> ids;
  std::vector<const std::string*> streams;
  ids.reserve(shards.size());
  for (const std::string& shard : shards) {
    ids.push_back(session->OpenShard());
    streams.push_back(&shard);
  }
  ASSERT_TRUE(
      FeedShardsInterleaved(session, ids, streams, chunk_seed).ok());
  for (const size_t id : ids) {
    ASSERT_TRUE(session->CloseShard(id).ok());
  }
}

void ExpectSameEstimates(const api::ServerSession& a,
                         const api::ServerSession& b, uint32_t epoch) {
  auto ea = a.Estimate(epoch);
  auto eb = b.Estimate(epoch);
  ASSERT_TRUE(ea.ok() && eb.ok());
  EXPECT_EQ(ea.value().num_reports, eb.value().num_reports);
  EXPECT_EQ(ea.value().means, eb.value().means);
  EXPECT_EQ(ea.value().frequencies, eb.value().frequencies);
}

TEST(ConcurrentSessionTest, SnapshotsAreBitIdenticalToSerialAtAnyThreadCount) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, kShards);

  api::ServerSession reference = MakeServer(pipeline, 0);
  FeedWholeShards(&reference, shards);
  const std::string reference_snapshot = reference.Snapshot();

  for (const unsigned threads : {1u, 2u, 8u}) {
    api::ServerSession session = MakeServer(pipeline, threads);
    FeedInterleaved(&session, shards, /*chunk_seed=*/1000 + threads);
    EXPECT_EQ(session.Snapshot(), reference_snapshot)
        << "ingest_threads=" << threads;
    ExpectSameEstimates(session, reference, 0);
  }
}

TEST(ConcurrentSessionTest, MatchesInProcessCollectBitForBit) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());

  ThreadPool pool(kPoolThreads);
  auto expected = pipeline.Collect(dataset, kSeed, &pool);
  ASSERT_TRUE(expected.ok());

  api::ServerSession session = MakeServer(pipeline, 8);
  FeedInterleaved(&session, WriteShards(dataset, client.value(), kSeed,
                                        kShards),
                  /*chunk_seed=*/9);
  for (size_t j = 0; j < expected.value().numeric_columns.size(); ++j) {
    auto mean = session.EstimateMean(expected.value().numeric_columns[j], 0);
    ASSERT_TRUE(mean.ok());
    EXPECT_EQ(mean.value(), expected.value().estimated_means[j]);
  }
  for (size_t c = 0; c < expected.value().categorical_columns.size(); ++c) {
    auto freqs = session.EstimateFrequencies(
        expected.value().categorical_columns[c], 0);
    ASSERT_TRUE(freqs.ok());
    EXPECT_EQ(freqs.value(), expected.value().estimated_frequencies[c]);
  }
}

TEST(ConcurrentSessionTest, MultipleProducerThreadsReproduceTheSerialRun) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, kShards);

  api::ServerSession reference = MakeServer(pipeline, 0);
  FeedWholeShards(&reference, shards);

  api::ServerSession session = MakeServer(pipeline, 4);
  std::vector<size_t> ids;
  ids.reserve(shards.size());
  for (size_t s = 0; s < shards.size(); ++s) {
    ids.push_back(session.OpenShard());
  }
  // Each producer owns a disjoint pair of shards (per-shard call order must
  // be externally defined), feeding them in interleaved small chunks.
  constexpr size_t kProducers = 4;
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([p, &session, &ids, &shards] {
      const size_t per_producer = shards.size() / kProducers;
      std::vector<size_t> mine;
      std::vector<const std::string*> streams;
      for (size_t i = 0; i < per_producer; ++i) {
        mine.push_back(ids[p * per_producer + i]);
        streams.push_back(&shards[p * per_producer + i]);
      }
      EXPECT_TRUE(FeedShardsInterleaved(&session, mine, streams,
                                        /*chunk_seed=*/555 + p,
                                        /*max_chunk=*/512)
                      .ok());
    });
  }
  for (std::thread& producer : producers) producer.join();
  for (const size_t id : ids) {
    ASSERT_TRUE(session.CloseShard(id).ok());
  }

  EXPECT_EQ(session.Snapshot(), reference.Snapshot());
  ExpectSameEstimates(session, reference, 0);
}

TEST(ConcurrentSessionTest, RepeatedRunsAreSchedulingIndependent) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, kShards);

  // Different chunkings, different runs, same pool size: the snapshot may
  // depend on none of it.
  std::string first;
  for (int run = 0; run < 3; ++run) {
    api::ServerSession session = MakeServer(pipeline, 8);
    FeedInterleaved(&session, shards, /*chunk_seed=*/7000 + run);
    if (run == 0) {
      first = session.Snapshot();
    } else {
      EXPECT_EQ(session.Snapshot(), first) << "run " << run;
    }
  }
}

TEST(ConcurrentSessionTest, NumericStreamsAreBitIdenticalToSerial) {
  // The Algorithm-4 numeric stream kind goes through its own frame decoder
  // and aggregator; the concurrency contract must hold there too.
  auto schema = data::Schema::Create({data::ColumnSpec::Numeric("x", -1, 1),
                                      data::ColumnSpec::Numeric("y", -1, 1),
                                      data::ColumnSpec::Numeric("z", -1, 1)});
  ASSERT_TRUE(schema.ok());
  auto config = api::PipelineConfig::FromSchema(schema.value(), kEpsilon);
  ASSERT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_EQ(pipeline.value().stream_kind(),
            stream::ReportStreamKind::kSampledNumeric);
  auto client = pipeline.value().NewClient();
  ASSERT_TRUE(client.ok());

  std::vector<std::string> shards;
  for (const IndexRange range : SplitRange(600, 4)) {
    std::string shard = client.value().EncodeHeader();
    for (uint64_t row = range.begin; row < range.end; ++row) {
      Rng rng = api::UserRng(kSeed, row);
      auto payload = client.value().EncodeReport(
          std::vector<double>{0.5, -0.25, 0.125}, &rng);
      ASSERT_TRUE(payload.ok());
      ASSERT_TRUE(stream::AppendFrame(payload.value(), &shard).ok());
    }
    shards.push_back(std::move(shard));
  }

  api::ServerSession reference = MakeServer(pipeline.value(), 0);
  FeedWholeShards(&reference, shards);
  api::ServerSession session = MakeServer(pipeline.value(), 4);
  FeedInterleaved(&session, shards, /*chunk_seed=*/17);
  EXPECT_EQ(session.Snapshot(), reference.Snapshot());
  ExpectSameEstimates(session, reference, 0);
}

TEST(ConcurrentSessionTest, AccountantIsExactUnderConcurrentAdvance) {
  const data::Dataset dataset = MakeData();
  constexpr uint32_t kPlannedEpochs = 4;
  const api::Pipeline pipeline = MakePipeline(dataset, kPlannedEpochs);
  api::ServerSession session = MakeServer(pipeline, 4);

  // Epoch 0 is charged at session creation; exactly kPlannedEpochs - 1 more
  // advances can succeed no matter how many threads race for them.
  std::atomic<int> advanced{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> contenders;
  for (int t = 0; t < 8; ++t) {
    contenders.emplace_back([&session, &advanced, &refused] {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const Status status = session.AdvanceEpoch();
        if (status.ok()) {
          advanced.fetch_add(1);
        } else {
          EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
          refused.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& contender : contenders) contender.join();

  EXPECT_EQ(advanced.load(), static_cast<int>(kPlannedEpochs) - 1);
  EXPECT_EQ(refused.load(), 8 * 8 - (static_cast<int>(kPlannedEpochs) - 1));
  EXPECT_EQ(session.num_epochs(), kPlannedEpochs);
  // The spend is exact — no double charge and no partial charge leaked from
  // a refused advance.
  EXPECT_EQ(session.epsilon_spent(), kPlannedEpochs * kEpsilon);
  EXPECT_FALSE(session.AdvanceEpoch().ok());
}

TEST(ConcurrentSessionTest, AdvanceEpochIsRefusedWhileFeedsAreInFlight) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 2);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, 1);

  api::ServerSession session = MakeServer(pipeline, 2);
  const size_t shard = session.OpenShard();
  ASSERT_TRUE(session.Feed(shard, shards[0]).ok());
  // The shard is open (its chunks may still be decoding on the pool):
  // advancing must refuse and charge nothing.
  EXPECT_FALSE(session.AdvanceEpoch().ok());
  EXPECT_EQ(session.epsilon_spent(), kEpsilon);
  ASSERT_TRUE(session.CloseShard(shard).ok());
  EXPECT_TRUE(session.AdvanceEpoch().ok());
  EXPECT_EQ(session.epsilon_spent(), 2 * kEpsilon);
}

TEST(ConcurrentSessionTest, ShardStatsIsADrainPoint) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, 1);

  api::ServerSession session = MakeServer(pipeline, 4);
  const size_t shard = session.OpenShard();
  ASSERT_TRUE(session.Feed(shard, shards[0]).ok());
  // Immediately after the (asynchronous) Feed returns, the stats must
  // already cover every byte fed — ShardStats drains the shard's queue.
  auto stats = session.ShardStats(shard);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().accepted, kRows);
  EXPECT_EQ(stats.value().bytes, shards[0].size());
  ASSERT_TRUE(session.CloseShard(shard).ok());
}

TEST(ConcurrentSessionTest, AsyncFramingErrorPoisonsOnlyItsShard) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, 2);

  api::ServerSession reference = MakeServer(pipeline, 0);
  FeedWholeShards(&reference, shards);

  api::ServerSession session = MakeServer(pipeline, 4);
  const size_t honest0 = session.OpenShard();
  const size_t poisoned = session.OpenShard();
  const size_t honest1 = session.OpenShard();
  ASSERT_TRUE(session.Feed(honest0, shards[0]).ok());
  ASSERT_TRUE(
      session.Feed(poisoned, std::string(64, 'x')).ok());  // bad magic
  ASSERT_TRUE(session.Feed(honest1, shards[1]).ok());

  // After the drain the worker-side framing error is sticky: later feeds
  // are refused without enqueueing.
  ASSERT_TRUE(session.ShardStats(poisoned).ok());
  EXPECT_FALSE(session.Feed(poisoned, std::string("more")).ok());
  EXPECT_FALSE(session.CloseShard(poisoned).ok());
  ASSERT_TRUE(session.CloseShard(honest0).ok());
  ASSERT_TRUE(session.CloseShard(honest1).ok());

  // The poisoned shard contributed nothing: totals equal the honest run.
  EXPECT_EQ(session.Snapshot(), reference.Snapshot());
  ExpectSameEstimates(session, reference, 0);
}

TEST(ConcurrentSessionTest, BackpressureBoundPreservesResultsWithoutDeadlock) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, kShards);

  api::ServerSession reference = MakeServer(pipeline, 0);
  FeedWholeShards(&reference, shards);

  // A bound far below the shard size forces Feed to block on the decoding
  // workers constantly; results must be unaffected and nothing may wedge.
  api::ServerSessionOptions options;
  options.ingest_threads = 2;
  options.max_pending_feed_bytes = 512;
  auto server = pipeline.NewServer(options);
  ASSERT_TRUE(server.ok());
  FeedInterleaved(&server.value(), shards, /*chunk_seed=*/31);
  EXPECT_EQ(server.value().Snapshot(), reference.Snapshot());
  ExpectSameEstimates(server.value(), reference, 0);
}

TEST(ConcurrentSessionTest, FeedAfterCloseFails) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteShards(dataset, client.value(), kSeed, 1);

  api::ServerSession session = MakeServer(pipeline, 2);
  const size_t shard = session.OpenShard();
  ASSERT_TRUE(session.Feed(shard, shards[0]).ok());
  ASSERT_TRUE(session.CloseShard(shard).ok());
  EXPECT_FALSE(session.Feed(shard, shards[0]).ok());
  EXPECT_FALSE(session.CloseShard(shard).ok());
}

}  // namespace
}  // namespace ldp
