#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"
#include "util/math.h"

namespace ldp {
namespace {

using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;
using ::ldp::testing::VarianceRelTolerance;

constexpr uint64_t kSamples = 200000;

TEST(HybridMechanismTest, OptimalAlphaMatchesEquation7) {
  // α = 1 − e^{−ε/2} above ε*, 0 below.
  EXPECT_DOUBLE_EQ(HybridMechanism::OptimalAlpha(0.3), 0.0);
  EXPECT_DOUBLE_EQ(HybridMechanism::OptimalAlpha(EpsilonStar()), 0.0);
  const double eps = 2.0;
  EXPECT_DOUBLE_EQ(HybridMechanism::OptimalAlpha(eps),
                   1.0 - std::exp(-eps / 2.0));
  EXPECT_GT(HybridMechanism::OptimalAlpha(EpsilonStar() + 1e-6), 0.0);
}

TEST(HybridMechanismTest, DefaultConstructorUsesOptimalAlpha) {
  const HybridMechanism mech(1.5);
  EXPECT_DOUBLE_EQ(mech.alpha(), HybridMechanism::OptimalAlpha(1.5));
}

TEST(HybridMechanismTest, BelowEpsilonStarReducesToDuchi) {
  const HybridMechanism mech(0.4);
  EXPECT_DOUBLE_EQ(mech.alpha(), 0.0);
  // All outputs are two-point (Duchi) outputs.
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double out = mech.Perturb(0.2, &rng);
    EXPECT_TRUE(out == mech.duchi().bound() || out == -mech.duchi().bound());
  }
  EXPECT_DOUBLE_EQ(mech.OutputBound(), mech.duchi().bound());
}

TEST(HybridMechanismTest, AboveEpsilonStarMixesBothComponents) {
  const HybridMechanism mech(2.0);
  Rng rng(2);
  int two_point = 0, continuous = 0;
  const double b = mech.duchi().bound();
  for (int i = 0; i < 20000; ++i) {
    const double out = mech.Perturb(0.0, &rng);
    if (out == b || out == -b) {
      ++two_point;
    } else {
      ++continuous;
    }
  }
  EXPECT_GT(two_point, 0);
  EXPECT_GT(continuous, 0);
  // The PM share should be close to α.
  EXPECT_NEAR(static_cast<double>(continuous) / 20000.0, mech.alpha(), 0.02);
}

class HybridBudgetTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, HybridBudgetTest,
                         ::testing::Values(0.3, 0.61, 1.0, 1.29, 2.0, 4.0));

TEST_P(HybridBudgetTest, PerturbIsUnbiased) {
  const HybridMechanism mech(GetParam());
  Rng rng(3);
  for (const double t : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, MeanTolerance(stats, 6.0)) << "t=" << t;
  }
}

TEST_P(HybridBudgetTest, EmpiricalVarianceMatchesMixtureFormula) {
  const HybridMechanism mech(GetParam());
  Rng rng(4);
  for (const double t : {0.0, 0.6, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.SampleVariance(), mech.Variance(t),
                mech.Variance(t) * VarianceRelTolerance(kSamples))
        << "t=" << t;
  }
}

TEST_P(HybridBudgetTest, WorstCaseMatchesEquation8) {
  const double eps = GetParam();
  const HybridMechanism mech(eps);
  EXPECT_NEAR(mech.WorstCaseVariance(),
              HybridMechanism::OptimalWorstCaseVariance(eps), 1e-9);
}

TEST_P(HybridBudgetTest, OutputStaysWithinBound) {
  const HybridMechanism mech(GetParam());
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LE(std::abs(mech.Perturb(0.7, &rng)),
              mech.OutputBound() * (1.0 + 1e-12));
  }
}

TEST(HybridMechanismTest, OptimalAlphaCancelsInputDependence) {
  // With α = 1 − e^{−ε/2} the t² coefficients of the two components cancel,
  // so the mixture variance is the same for every input.
  const HybridMechanism mech(2.0);
  EXPECT_NEAR(mech.Variance(0.0), mech.Variance(1.0), 1e-12);
  EXPECT_NEAR(mech.Variance(0.3), mech.Variance(-0.8), 1e-12);
}

TEST(HybridMechanismTest, Corollary1AboveEpsilonStar) {
  // For ε > ε*: MaxVar_HM < min(MaxVar_PM, MaxVar_Duchi).
  for (const double eps : {0.65, 1.0, 1.29, 2.0, 4.0, 8.0}) {
    const HybridMechanism hm(eps);
    EXPECT_LT(hm.WorstCaseVariance(), hm.piecewise().WorstCaseVariance())
        << "eps=" << eps;
    EXPECT_LT(hm.WorstCaseVariance(), hm.duchi().WorstCaseVariance())
        << "eps=" << eps;
  }
}

TEST(HybridMechanismTest, Corollary1BelowEpsilonStar) {
  // For ε <= ε*: MaxVar_HM = MaxVar_Duchi < MaxVar_PM. Note ε* ≈ 0.6092, so
  // 0.61 (the paper's rounded value) is already *above* the threshold.
  for (const double eps : {0.2, 0.4, 0.609}) {
    const HybridMechanism hm(eps);
    EXPECT_DOUBLE_EQ(hm.WorstCaseVariance(), hm.duchi().WorstCaseVariance());
    EXPECT_LT(hm.WorstCaseVariance(), hm.piecewise().WorstCaseVariance())
        << "eps=" << eps;
  }
}

TEST(HybridMechanismTest, ExplicitAlphaOverride) {
  const HybridMechanism pure_pm(2.0, 1.0);
  const HybridMechanism pure_duchi(2.0, 0.0);
  EXPECT_DOUBLE_EQ(pure_pm.alpha(), 1.0);
  EXPECT_NEAR(pure_pm.Variance(0.5), pure_pm.piecewise().Variance(0.5),
              1e-12);
  EXPECT_NEAR(pure_duchi.Variance(0.5), pure_duchi.duchi().Variance(0.5),
              1e-12);
}

TEST(HybridMechanismTest, OptimalAlphaMinimisesWorstCase) {
  // Lemma 3: sweeping α on a grid never beats the closed-form optimum.
  for (const double eps : {0.4, 0.8, 1.5, 3.0}) {
    const double optimal_worst = HybridMechanism(eps).WorstCaseVariance();
    for (double alpha = 0.0; alpha <= 1.0; alpha += 0.05) {
      const HybridMechanism swept(eps, alpha);
      EXPECT_GE(swept.WorstCaseVariance(), optimal_worst - 1e-9)
          << "eps=" << eps << " alpha=" << alpha;
    }
  }
}

TEST(HybridMechanismTest, NameAndEpsilon) {
  const HybridMechanism mech(1.0);
  EXPECT_STREQ(mech.name(), "HM");
  EXPECT_DOUBLE_EQ(mech.epsilon(), 1.0);
}

}  // namespace
}  // namespace ldp
