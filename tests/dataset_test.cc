#include "data/dataset.h"

#include <gtest/gtest.h>

namespace ldp::data {
namespace {

Schema TwoColumnSchema() {
  auto schema = Schema::Create({ColumnSpec::Numeric("x", -1.0, 1.0),
                                ColumnSpec::Categorical("c", 3)});
  EXPECT_TRUE(schema.ok());
  return schema.value();
}

TEST(DatasetTest, StartsEmpty) {
  Dataset dataset(TwoColumnSchema());
  EXPECT_EQ(dataset.num_rows(), 0u);
}

TEST(DatasetTest, ResizeAndCellAccess) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(3);
  EXPECT_EQ(dataset.num_rows(), 3u);
  // New cells start zeroed.
  EXPECT_EQ(dataset.numeric(0, 0), 0.0);
  EXPECT_EQ(dataset.category(0, 1), 0u);
  dataset.set_numeric(1, 0, 0.5);
  dataset.set_category(1, 1, 2);
  EXPECT_EQ(dataset.numeric(1, 0), 0.5);
  EXPECT_EQ(dataset.category(1, 1), 2u);
}

TEST(DatasetTest, ColumnViews) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(2);
  dataset.set_numeric(0, 0, 0.25);
  dataset.set_numeric(1, 0, -0.75);
  dataset.set_category(0, 1, 1);
  EXPECT_EQ(dataset.numeric_column(0), (std::vector<double>{0.25, -0.75}));
  EXPECT_EQ(dataset.categorical_column(1), (std::vector<uint32_t>{1, 0}));
}

TEST(DatasetTest, ColumnMeanAndValidation) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(4);
  for (uint64_t i = 0; i < 4; ++i) {
    dataset.set_numeric(i, 0, static_cast<double>(i) / 4.0);
  }
  auto mean = dataset.ColumnMean(0);
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(mean.value(), (0.0 + 0.25 + 0.5 + 0.75) / 4.0, 1e-12);
  EXPECT_FALSE(dataset.ColumnMean(1).ok());   // categorical
  EXPECT_FALSE(dataset.ColumnMean(9).ok());   // out of range
}

TEST(DatasetTest, ColumnMeanFailsOnEmptyDataset) {
  Dataset dataset(TwoColumnSchema());
  EXPECT_FALSE(dataset.ColumnMean(0).ok());
}

TEST(DatasetTest, ColumnFrequencies) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(5);
  dataset.set_category(0, 1, 0);
  dataset.set_category(1, 1, 1);
  dataset.set_category(2, 1, 1);
  dataset.set_category(3, 1, 2);
  dataset.set_category(4, 1, 1);
  auto freqs = dataset.ColumnFrequencies(1);
  ASSERT_TRUE(freqs.ok());
  EXPECT_NEAR(freqs.value()[0], 0.2, 1e-12);
  EXPECT_NEAR(freqs.value()[1], 0.6, 1e-12);
  EXPECT_NEAR(freqs.value()[2], 0.2, 1e-12);
  EXPECT_FALSE(dataset.ColumnFrequencies(0).ok());  // numeric
}

TEST(DatasetTest, TakeSelectsRowsInOrder) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(4);
  for (uint64_t i = 0; i < 4; ++i) {
    dataset.set_numeric(i, 0, static_cast<double>(i));
    dataset.set_category(i, 1, static_cast<uint32_t>(i % 3));
  }
  const Dataset taken = dataset.Take({3, 0, 3});
  EXPECT_EQ(taken.num_rows(), 3u);
  EXPECT_EQ(taken.numeric(0, 0), 3.0);
  EXPECT_EQ(taken.numeric(1, 0), 0.0);
  EXPECT_EQ(taken.numeric(2, 0), 3.0);
  EXPECT_EQ(taken.category(0, 1), 0u);
  EXPECT_TRUE(taken.schema().Equals(dataset.schema()));
}

TEST(DatasetTest, TakeEmptySelection) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(2);
  const Dataset taken = dataset.Take({});
  EXPECT_EQ(taken.num_rows(), 0u);
}

TEST(DatasetTest, SelectColumnsReordersAndSubsets) {
  auto schema = Schema::Create({ColumnSpec::Numeric("a", -1.0, 1.0),
                                ColumnSpec::Categorical("b", 2),
                                ColumnSpec::Numeric("c", 0.0, 2.0)});
  ASSERT_TRUE(schema.ok());
  Dataset dataset(schema.value());
  dataset.Resize(2);
  dataset.set_numeric(0, 0, 0.1);
  dataset.set_numeric(0, 2, 1.5);
  dataset.set_category(1, 1, 1);
  auto selected = dataset.SelectColumns({2, 1});
  ASSERT_TRUE(selected.ok());
  EXPECT_EQ(selected.value().schema().num_columns(), 2u);
  EXPECT_EQ(selected.value().schema().column(0).name, "c");
  EXPECT_EQ(selected.value().numeric(0, 0), 1.5);
  EXPECT_EQ(selected.value().category(1, 1), 1u);
  EXPECT_FALSE(dataset.SelectColumns({5}).ok());
}

TEST(DatasetTest, ShrinkingResizeDropsRows) {
  Dataset dataset(TwoColumnSchema());
  dataset.Resize(5);
  dataset.set_numeric(4, 0, 1.0);
  dataset.Resize(2);
  EXPECT_EQ(dataset.num_rows(), 2u);
  dataset.Resize(5);
  // Regrown cells are zero again.
  EXPECT_EQ(dataset.numeric(4, 0), 0.0);
}

}  // namespace
}  // namespace ldp::data
