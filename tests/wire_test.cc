#include "core/wire.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace ldp {
namespace {

SampledNumericMechanism MakeNumericMechanism() {
  auto mech = SampledNumericMechanism::CreateWithSampleCount(
      MechanismKind::kHybrid, 4.0, 6, 2);
  EXPECT_TRUE(mech.ok());
  return std::move(mech).value();
}

MixedTupleCollector MakeMixedCollector() {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(4),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(6)},
      6.0);
  EXPECT_TRUE(collector.ok());
  return std::move(collector).value();
}

TEST(SampledNumericWireTest, RoundTripsRealReports) {
  const SampledNumericMechanism mech = MakeNumericMechanism();
  Rng rng(1);
  const std::vector<double> tuple = {0.1, -0.5, 0.9, 0.0, -1.0, 1.0};
  for (int i = 0; i < 200; ++i) {
    const SampledNumericReport report = mech.Perturb(tuple, &rng);
    auto decoded =
        DecodeSampledNumericReport(EncodeSampledNumericReport(report), mech);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), report.size());
    for (size_t j = 0; j < report.size(); ++j) {
      EXPECT_EQ(decoded.value()[j].attribute, report[j].attribute);
      EXPECT_DOUBLE_EQ(decoded.value()[j].value, report[j].value);
    }
  }
}

TEST(SampledNumericWireTest, RejectsTruncation) {
  const SampledNumericMechanism mech = MakeNumericMechanism();
  Rng rng(2);
  const std::string bytes = EncodeSampledNumericReport(
      mech.Perturb({0.0, 0.0, 0.0, 0.0, 0.0, 0.0}, &rng));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DecodeSampledNumericReport(bytes.substr(0, cut), mech).ok())
        << "cut=" << cut;
  }
}

TEST(SampledNumericWireTest, RejectsTrailingBytes) {
  const SampledNumericMechanism mech = MakeNumericMechanism();
  Rng rng(3);
  std::string bytes = EncodeSampledNumericReport(
      mech.Perturb({0.0, 0.0, 0.0, 0.0, 0.0, 0.0}, &rng));
  bytes.push_back('x');
  EXPECT_FALSE(DecodeSampledNumericReport(bytes, mech).ok());
}

TEST(SampledNumericWireTest, RejectsWrongEntryCount) {
  const SampledNumericMechanism mech = MakeNumericMechanism();
  const SampledNumericReport too_few = {{0, 0.5}};
  EXPECT_FALSE(
      DecodeSampledNumericReport(EncodeSampledNumericReport(too_few), mech)
          .ok());
}

TEST(SampledNumericWireTest, RejectsOutOfRangeAttributeAndValue) {
  const SampledNumericMechanism mech = MakeNumericMechanism();
  const SampledNumericReport bad_attribute = {{0, 0.5}, {99, 0.5}};
  EXPECT_FALSE(DecodeSampledNumericReport(
                   EncodeSampledNumericReport(bad_attribute), mech)
                   .ok());
  const SampledNumericReport bad_value = {{0, 0.5}, {1, 1e9}};
  EXPECT_FALSE(
      DecodeSampledNumericReport(EncodeSampledNumericReport(bad_value), mech)
          .ok());
  const SampledNumericReport nan_value = {{0, 0.5}, {1, std::nan("")}};
  EXPECT_FALSE(
      DecodeSampledNumericReport(EncodeSampledNumericReport(nan_value), mech)
          .ok());
}

TEST(SampledNumericWireTest, RejectsDuplicateAttributes) {
  const SampledNumericMechanism mech = MakeNumericMechanism();
  const SampledNumericReport duplicated = {{3, 0.5}, {3, -0.5}};
  EXPECT_FALSE(
      DecodeSampledNumericReport(EncodeSampledNumericReport(duplicated), mech)
          .ok());
}

TEST(MixedWireTest, RoundTripsRealReports) {
  const MixedTupleCollector collector = MakeMixedCollector();
  Rng rng(4);
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.3);
  tuple[1] = AttributeValue::Categorical(2);
  tuple[2] = AttributeValue::Numeric(-0.9);
  tuple[3] = AttributeValue::Categorical(5);
  for (int i = 0; i < 300; ++i) {
    const MixedReport report = collector.Perturb(tuple, &rng);
    auto decoded = DecodeMixedReport(EncodeMixedReport(report, collector),
                                     collector);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), report.size());
    for (size_t j = 0; j < report.size(); ++j) {
      EXPECT_EQ(decoded.value()[j].attribute, report[j].attribute);
      EXPECT_DOUBLE_EQ(decoded.value()[j].numeric_value,
                       report[j].numeric_value);
      EXPECT_EQ(decoded.value()[j].categorical_report,
                report[j].categorical_report);
    }
  }
}

TEST(MixedWireTest, RoundTripsEmptyCategoricalReports) {
  // An OUE report with no set bits must survive the round trip as
  // categorical, not be mistaken for a numeric entry.
  const MixedTupleCollector collector = MakeMixedCollector();
  MixedReport report;
  MixedReportEntry numeric_entry;
  numeric_entry.attribute = 0;
  numeric_entry.numeric_value = 0.0;  // ambiguous without schema tagging
  MixedReportEntry empty_categorical;
  empty_categorical.attribute = 1;
  report.push_back(numeric_entry);
  report.push_back(empty_categorical);
  auto decoded =
      DecodeMixedReport(EncodeMixedReport(report, collector), collector);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value()[1].categorical_report.empty());
}

TEST(MixedWireTest, RejectsTruncationEverywhere) {
  const MixedTupleCollector collector = MakeMixedCollector();
  Rng rng(5);
  MixedTuple tuple(4);
  tuple[1] = AttributeValue::Categorical(1);
  tuple[3] = AttributeValue::Categorical(2);
  const std::string bytes =
      EncodeMixedReport(collector.Perturb(tuple, &rng), collector);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeMixedReport(bytes.substr(0, cut), collector).ok());
  }
}

TEST(MixedWireTest, RejectsKindSchemaMismatch) {
  const MixedTupleCollector collector = MakeMixedCollector();
  // Hand-craft: numeric entry pointing at categorical attribute 1.
  MixedReport bad;
  MixedReportEntry entry;
  entry.attribute = 1;  // categorical in the schema
  entry.numeric_value = 0.25;
  bad.push_back(entry);
  MixedReportEntry other;
  other.attribute = 0;
  bad.push_back(other);
  // Encode with a lying schema by building bytes via a collector whose
  // attribute 1 is numeric — simplest: flip the entries' attributes.
  const std::string bytes = EncodeMixedReport(bad, collector);
  // EncodeMixedReport consults the schema, so it writes entry 1 as
  // categorical; craft the mismatch manually instead.
  std::string crafted;
  crafted.push_back(2);  // count lo
  crafted.push_back(0);  // count hi
  // entry: attribute 1 (categorical) tagged numeric
  crafted.append(std::string("\x01\x00\x00\x00", 4));
  crafted.push_back(0);  // kNumericEntry
  crafted.append(8, '\0');
  // entry: attribute 0 (numeric) tagged categorical
  crafted.append(std::string(4, '\0'));
  crafted.push_back(1);  // kCategoricalEntry
  crafted.push_back(0);
  crafted.push_back(0);
  EXPECT_FALSE(DecodeMixedReport(crafted, collector).ok());
  (void)bytes;
}

TEST(MixedWireTest, RejectsUnknownEntryKind) {
  const MixedTupleCollector collector = MakeMixedCollector();
  std::string crafted;
  crafted.push_back(2);
  crafted.push_back(0);
  crafted.append(std::string(4, '\0'));  // attribute 0
  crafted.push_back(7);                  // bogus kind
  EXPECT_FALSE(DecodeMixedReport(crafted, collector).ok());
}

TEST(MixedWireTest, RejectsOutOfRangeAttribute) {
  const MixedTupleCollector collector = MakeMixedCollector();
  std::string crafted;
  crafted.push_back(2);
  crafted.push_back(0);
  crafted.append(std::string("\x63\x00\x00\x00", 4));  // attribute 99
  crafted.push_back(0);                                // numeric kind
  crafted.append(8, '\0');
  EXPECT_FALSE(DecodeMixedReport(crafted, collector).ok());
}

TEST(MixedWireTest, RejectsOversizedEntryCount) {
  const MixedTupleCollector collector = MakeMixedCollector();
  // entry_count of 0xffff: far more entries than k; must be rejected before
  // any payload is trusted (and without attempting a 64k-entry reserve).
  std::string crafted;
  crafted.push_back(static_cast<char>(0xff));
  crafted.push_back(static_cast<char>(0xff));
  EXPECT_FALSE(DecodeMixedReport(crafted, collector).ok());

  const SampledNumericMechanism mech = MakeNumericMechanism();
  EXPECT_FALSE(DecodeSampledNumericReport(crafted, mech).ok());
}

TEST(MixedWireTest, RejectsOversizedCategoricalPayload) {
  const MixedTupleCollector collector = MakeMixedCollector();
  // Categorical entry for attribute 1 (domain 4) claiming 0xffff payload
  // words: the unary-report validation must reject it even if the bytes
  // were all present.
  std::string crafted;
  crafted.push_back(2);
  crafted.push_back(0);
  crafted.append(std::string("\x01\x00\x00\x00", 4));  // attribute 1
  crafted.push_back(1);                                // categorical kind
  crafted.push_back(static_cast<char>(0xff));
  crafted.push_back(static_cast<char>(0xff));
  EXPECT_FALSE(DecodeMixedReport(crafted, collector).ok());
}

TEST(MixedWireTest, RejectsCategoricalPayloadOutsideTheDomain) {
  const MixedTupleCollector collector = MakeMixedCollector();
  // A "set bit" index of 9 in a domain of 4: without validation the
  // server-side Accumulate would write out of bounds.
  MixedReport report;
  MixedReportEntry entry;
  entry.attribute = 1;
  entry.categorical_report = {9};
  report.push_back(entry);
  MixedReportEntry numeric_entry;
  numeric_entry.attribute = 0;
  report.push_back(numeric_entry);
  EXPECT_FALSE(
      DecodeMixedReport(EncodeMixedReport(report, collector), collector)
          .ok());
  // Duplicate bits would double-count support; also rejected.
  report[0].categorical_report = {2, 2};
  EXPECT_FALSE(
      DecodeMixedReport(EncodeMixedReport(report, collector), collector)
          .ok());
  // In-range strictly increasing bits pass.
  report[0].categorical_report = {1, 3};
  EXPECT_TRUE(
      DecodeMixedReport(EncodeMixedReport(report, collector), collector)
          .ok());
}

TEST(MixedWireTest, RejectsOutOfBoundNumericValue) {
  const MixedTupleCollector collector = MakeMixedCollector();
  MixedReport report;
  MixedReportEntry entry;
  entry.attribute = 0;
  entry.numeric_value = 1e12;  // far beyond (d/k) * OutputBound for HM
  report.push_back(entry);
  MixedReportEntry other;
  other.attribute = 2;
  report.push_back(other);
  EXPECT_FALSE(
      DecodeMixedReport(EncodeMixedReport(report, collector), collector)
          .ok());
}

// Sink that records the delivered entries as a MixedReport, for comparing
// the streaming decoder against the materializing one.
class RecordingSink final : public MixedReportSink {
 public:
  void OnReportBegin(uint32_t entry_count) override {
    ++reports_begun_;
    last_entry_count_ = entry_count;
  }
  void OnNumericEntry(uint32_t attribute, double value) override {
    MixedReportEntry entry;
    entry.attribute = attribute;
    entry.numeric_value = value;
    entries_.push_back(std::move(entry));
  }
  void OnCategoricalEntry(uint32_t attribute,
                          const FrequencyOracle::Report& payload) override {
    MixedReportEntry entry;
    entry.attribute = attribute;
    entry.categorical_report = payload;
    entries_.push_back(std::move(entry));
  }

  int reports_begun_ = 0;
  uint32_t last_entry_count_ = 0;
  MixedReport entries_;
};

TEST(MixedFrameDecoderTest, StreamsExactlyWhatMaterializingDecodeReturns) {
  const MixedTupleCollector collector = MakeMixedCollector();
  MixedFrameDecoder decoder(&collector);
  Rng rng(7);
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.3);
  tuple[1] = AttributeValue::Categorical(2);
  tuple[2] = AttributeValue::Numeric(-0.9);
  tuple[3] = AttributeValue::Categorical(5);
  for (int i = 0; i < 200; ++i) {
    const std::string bytes =
        EncodeMixedReport(collector.Perturb(tuple, &rng), collector);
    RecordingSink sink;
    ASSERT_TRUE(decoder.DecodeInto(bytes.data(), bytes.size(), &sink).ok());
    auto materialized = DecodeMixedReport(bytes, collector);
    ASSERT_TRUE(materialized.ok());
    EXPECT_EQ(sink.reports_begun_, 1);
    EXPECT_EQ(sink.last_entry_count_, collector.k());
    ASSERT_EQ(sink.entries_.size(), materialized.value().size());
    for (size_t j = 0; j < sink.entries_.size(); ++j) {
      EXPECT_EQ(sink.entries_[j].attribute,
                materialized.value()[j].attribute);
      EXPECT_EQ(sink.entries_[j].numeric_value,
                materialized.value()[j].numeric_value);
      EXPECT_EQ(sink.entries_[j].categorical_report,
                materialized.value()[j].categorical_report);
    }
  }
}

TEST(MixedFrameDecoderTest, SinkSeesNothingOnAnyMalformedFrame) {
  // All-or-nothing delivery: a frame that fails validation anywhere — even
  // on its last entry — must reach the sink with zero callbacks, or a
  // streamed aggregate would be corrupted by partial reports.
  const MixedTupleCollector collector = MakeMixedCollector();
  MixedFrameDecoder decoder(&collector);
  Rng rng(8);
  MixedTuple tuple(4);
  tuple[1] = AttributeValue::Categorical(1);
  tuple[3] = AttributeValue::Categorical(4);
  const std::string good =
      EncodeMixedReport(collector.Perturb(tuple, &rng), collector);

  // Every truncation point, including cuts inside the final entry.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    RecordingSink sink;
    EXPECT_FALSE(decoder.DecodeInto(good.data(), cut, &sink).ok());
    EXPECT_EQ(sink.reports_begun_, 0) << "cut=" << cut;
    EXPECT_TRUE(sink.entries_.empty()) << "cut=" << cut;
  }

  // A duplicate-attribute report (fails on the second entry).
  MixedReport duplicated;
  MixedReportEntry entry;
  entry.attribute = 0;
  entry.numeric_value = 0.25;
  duplicated.push_back(entry);
  duplicated.push_back(entry);
  const std::string bytes = EncodeMixedReport(duplicated, collector);
  RecordingSink sink;
  EXPECT_FALSE(decoder.DecodeInto(bytes.data(), bytes.size(), &sink).ok());
  EXPECT_EQ(sink.reports_begun_, 0);
  EXPECT_TRUE(sink.entries_.empty());

  // The decoder stays usable after rejections.
  RecordingSink recovered;
  ASSERT_TRUE(
      decoder.DecodeInto(good.data(), good.size(), &recovered).ok());
  EXPECT_EQ(recovered.reports_begun_, 1);
}

TEST(MixedFrameDecoderTest, OneShotWrapperMatchesPersistentDecoder) {
  const MixedTupleCollector collector = MakeMixedCollector();
  Rng rng(9);
  MixedTuple tuple(4);
  tuple[1] = AttributeValue::Categorical(3);
  tuple[3] = AttributeValue::Categorical(0);
  const std::string bytes =
      EncodeMixedReport(collector.Perturb(tuple, &rng), collector);
  RecordingSink sink;
  ASSERT_TRUE(
      DecodeMixedReportInto(bytes.data(), bytes.size(), collector, &sink)
          .ok());
  EXPECT_EQ(sink.reports_begun_, 1);
  EXPECT_EQ(sink.entries_.size(), collector.k());
}

TEST(MixedWireTest, EncodedSizeMatchesThePrecomputedReserve) {
  // EncodeMixedReport reserves the exact encoded size up front; the formula
  // and the writer must agree or serialization reallocates mid-report.
  const MixedTupleCollector collector = MakeMixedCollector();
  Rng rng(10);
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.5);
  tuple[1] = AttributeValue::Categorical(2);
  tuple[2] = AttributeValue::Numeric(-0.25);
  tuple[3] = AttributeValue::Categorical(1);
  for (int i = 0; i < 100; ++i) {
    const MixedReport report = collector.Perturb(tuple, &rng);
    size_t expected = 2;
    for (const MixedReportEntry& entry : report) {
      const bool numeric =
          collector.schema()[entry.attribute].type == AttributeType::kNumeric;
      expected += 4 + 1 + (numeric ? 8 : 2 + 4 * entry.categorical_report.size());
    }
    EXPECT_EQ(EncodeMixedReport(report, collector).size(), expected);
  }
}

TEST(MixedWireTest, EncodingIsCompact) {
  // k entries at ~13 bytes each (numeric) — sanity-check the size claim.
  const MixedTupleCollector collector = MakeMixedCollector();
  Rng rng(6);
  MixedTuple tuple(4);
  tuple[1] = AttributeValue::Categorical(0);
  tuple[3] = AttributeValue::Categorical(0);
  const MixedReport report = collector.Perturb(tuple, &rng);
  const std::string bytes = EncodeMixedReport(report, collector);
  EXPECT_LE(bytes.size(), 2 + collector.k() * (4 + 1 + 2 + 6 * 4 + 8));
}

}  // namespace
}  // namespace ldp
