// End-to-end tests for the distributed collection tier (relay/forwarder.h
// + ReportServer snapshot ingest): a two-tier campaign — edge collectors
// forwarding cumulative session snapshots to a root — must reproduce the
// flat single-node run and the tree-shaped file-based merge bit for bit;
// a dead upstream costs only retries (the next acked snapshot subsumes
// everything); and hostile SNAPSHOT frames are refused without touching
// the root's session.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "relay/forwarder.h"
#include "stream/report_stream.h"
#include "stream_corpus_util.h"

namespace ldp {
namespace {

using ldp::testing::kCorpusReports;
using ldp::testing::MakeCorpusPipeline;
using ldp::testing::MakeHonestStream;

net::Endpoint RelayUdsEndpoint(const std::string& name) {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kUnix;
  endpoint.path = "/tmp/ldp_relay_" + std::to_string(::getpid()) + "_" +
                  name + ".sock";
  return endpoint;
}

// Forwarder options for tests: an idle background cadence so the only
// snapshot that matters is the deterministic final flush.
relay::RelayForwarderOptions QuietForwarder(uint64_t node_id) {
  relay::RelayForwarderOptions options;
  options.node_id = node_id;
  options.interval_ms = 60000;
  options.retry_backoff_ms = 10;
  options.max_backoff_ms = 50;
  options.flush_timeout_ms = 10000;
  return options;
}

// Ships `stream` to `endpoint` as ordinal `ordinal` over a CollectorClient
// connection and closes the shard cleanly.
void ReportStream(const net::Endpoint& endpoint,
                  const stream::StreamHeader& header,
                  const std::string& stream, uint64_t ordinal) {
  auto client = net::CollectorClient::Connect(endpoint, header, ordinal);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()
                  .Send(stream.data() + stream::kStreamHeaderBytes,
                        stream.size() - stream::kStreamHeaderBytes)
                  .ok());
  auto summary = client.value().Close();
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  EXPECT_TRUE(summary.value().status.ok());
}

Status SendRawMessage(net::Socket* socket, net::MessageType type,
                      const std::string& payload) {
  std::string wire;
  LDP_RETURN_IF_ERROR(net::AppendMessage(type, payload, &wire));
  return socket->SendAll(wire);
}

struct RawReply {
  net::MessageType type = net::MessageType::kError;
  std::string payload;
  bool eof = false;
};

Result<RawReply> ReadRawReply(net::Socket* socket) {
  RawReply reply;
  char prefix[net::kMessageHeaderBytes];
  Result<bool> got = socket->RecvAll(prefix, sizeof(prefix));
  if (!got.ok()) return got.status();
  if (!got.value()) {
    reply.eof = true;
    return reply;
  }
  Result<net::MessageHeader> header =
      net::DecodeMessageHeader(prefix, sizeof(prefix));
  if (!header.ok()) return header.status();
  reply.type = header.value().type;
  reply.payload.resize(header.value().payload_length);
  if (!reply.payload.empty()) {
    Result<bool> body =
        socket->RecvAll(reply.payload.data(), reply.payload.size());
    if (!body.ok()) return body.status();
    if (!body.value()) return Status::IoError("eof mid-reply");
  }
  return reply;
}

// Sends one raw SNAPSHOT payload on a fresh connection and returns the
// reply (kSnapshotOk or kError — a refusal also hangs up).
RawReply SendSnapshotPayload(const net::Endpoint& endpoint,
                             const std::string& payload) {
  auto socket = net::ConnectSocket(endpoint);
  EXPECT_TRUE(socket.ok()) << socket.status().ToString();
  EXPECT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kSnapshot,
                             payload)
                  .ok());
  auto reply = ReadRawReply(&socket.value());
  EXPECT_TRUE(reply.ok()) << reply.status().ToString();
  return reply.value();
}

TEST(RelayTest, OneEdgeRelayIsBitIdenticalToTheFlatRun) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  std::vector<std::string> streams;
  for (uint64_t s = 0; s < 3; ++s) {
    streams.push_back(MakeHonestStream(pipeline, 1000 + s));
  }
  // The flat reference: all shards fed into one session in ordinal order.
  auto flat = pipeline.NewServer();
  ASSERT_TRUE(flat.ok());
  for (const std::string& stream : streams) {
    const size_t shard = flat.value().OpenShard();
    ASSERT_TRUE(flat.value().Feed(shard, stream).ok());
    ASSERT_TRUE(flat.value().CloseShard(shard).ok());
  }
  const std::string reference = flat.value().Snapshot();

  // Root tier: accepts relay snapshots, serves no reporters here.
  auto root_session = pipeline.NewServer();
  ASSERT_TRUE(root_session.ok());
  net::ReportServerOptions root_options;
  root_options.accept_snapshots = true;
  auto root = net::ReportServer::Start(&root_session.value(),
                                       pipeline.header(),
                                       RelayUdsEndpoint("root1"),
                                       root_options);
  ASSERT_TRUE(root.ok());

  // Edge tier: a normal collector plus a forwarder pointed at the root.
  auto edge_session = pipeline.NewServer();
  ASSERT_TRUE(edge_session.ok());
  net::ReportServerOptions edge_options;
  edge_options.expected_shards = streams.size();
  auto edge = net::ReportServer::Start(&edge_session.value(),
                                       pipeline.header(),
                                       RelayUdsEndpoint("edge1"),
                                       edge_options);
  ASSERT_TRUE(edge.ok());
  auto forwarder = relay::RelayForwarder::Start(
      &edge_session.value(), root.value()->endpoint(), QuietForwarder(0));
  ASSERT_TRUE(forwarder.ok()) << forwarder.status().ToString();

  for (uint64_t s = 0; s < streams.size(); ++s) {
    ReportStream(edge.value()->endpoint(), pipeline.header(), streams[s], s);
  }

  // The ldp_serve drain order: local ingest first, then the final flush
  // (the root must still be accepting), then the root drains and folds.
  edge.value()->Stop(/*drain=*/true);
  ASSERT_TRUE(forwarder.value()->Stop(/*final_flush=*/true).ok());
  root.value()->Stop(/*drain=*/true);
  ASSERT_TRUE(root.value()->FoldRelaySnapshots().ok());

  const net::ReportServerStats stats = root.value()->stats();
  EXPECT_GE(stats.snapshots_accepted, 1u);
  EXPECT_EQ(stats.snapshots_refused, 0u);
  EXPECT_EQ(stats.nodes_folded, 1u);
  const relay::RelayForwarderStats fstats = forwarder.value()->stats();
  EXPECT_GE(fstats.snapshots_forwarded, 1u);
  EXPECT_GT(fstats.bytes_forwarded, 0u);

  EXPECT_EQ(root_session.value().Snapshot(), reference);
  auto reports = root_session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), streams.size() * kCorpusReports);
}

TEST(RelayTest, TwoEdgesFoldInNodeIdOrderMatchingTheTreeReference) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream0 = MakeHonestStream(pipeline, 1100);
  const std::string stream1 = MakeHonestStream(pipeline, 1101);

  // Edge sessions, fed directly (the transport edge is covered above).
  auto edge0 = pipeline.NewServer();
  auto edge1 = pipeline.NewServer();
  ASSERT_TRUE(edge0.ok() && edge1.ok());
  size_t shard = edge0.value().OpenShard();
  ASSERT_TRUE(edge0.value().Feed(shard, stream0).ok());
  ASSERT_TRUE(edge0.value().CloseShard(shard).ok());
  shard = edge1.value().OpenShard();
  ASSERT_TRUE(edge1.value().Feed(shard, stream1).ok());
  ASSERT_TRUE(edge1.value().CloseShard(shard).ok());

  // The tree-shaped reference: `ldp_aggregate edge0.ldpe edge1.ldpe`.
  auto tree = pipeline.NewServer();
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree.value().Merge(edge0.value().Snapshot()).ok());
  ASSERT_TRUE(tree.value().Merge(edge1.value().Snapshot()).ok());
  const std::string reference = tree.value().Snapshot();

  auto root_session = pipeline.NewServer();
  ASSERT_TRUE(root_session.ok());
  net::ReportServerOptions root_options;
  root_options.accept_snapshots = true;
  root_options.acceptors = 2;
  auto root = net::ReportServer::Start(&root_session.value(),
                                       pipeline.header(),
                                       RelayUdsEndpoint("root2"),
                                       root_options);
  ASSERT_TRUE(root.ok());

  // Node 1 flushes FIRST: arrival order must not matter, only node id.
  auto fwd1 = relay::RelayForwarder::Start(
      &edge1.value(), root.value()->endpoint(), QuietForwarder(1));
  auto fwd0 = relay::RelayForwarder::Start(
      &edge0.value(), root.value()->endpoint(), QuietForwarder(0));
  ASSERT_TRUE(fwd1.ok() && fwd0.ok());
  ASSERT_TRUE(fwd1.value()->Stop(/*final_flush=*/true).ok());
  ASSERT_TRUE(fwd0.value()->Stop(/*final_flush=*/true).ok());

  root.value()->Stop(/*drain=*/true);
  ASSERT_TRUE(root.value()->FoldRelaySnapshots().ok());
  EXPECT_EQ(root.value()->stats().nodes_folded, 2u);
  EXPECT_EQ(root_session.value().Snapshot(), reference);
}

TEST(RelayTest, UpstreamDeathMidCampaignCostsOnlyRetries) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream0 = MakeHonestStream(pipeline, 1200);
  const std::string stream1 = MakeHonestStream(pipeline, 1201);
  const net::Endpoint endpoint = RelayUdsEndpoint("root_restart");

  auto reference_session = pipeline.NewServer();
  ASSERT_TRUE(reference_session.ok());
  for (const std::string& stream : {stream0, stream1}) {
    const size_t shard = reference_session.value().OpenShard();
    ASSERT_TRUE(reference_session.value().Feed(shard, stream).ok());
    ASSERT_TRUE(reference_session.value().CloseShard(shard).ok());
  }

  auto edge_session = pipeline.NewServer();
  ASSERT_TRUE(edge_session.ok());
  size_t shard = edge_session.value().OpenShard();
  ASSERT_TRUE(edge_session.value().Feed(shard, stream0).ok());
  ASSERT_TRUE(edge_session.value().CloseShard(shard).ok());

  // A fast-cadence forwarder so the mid-campaign snapshot and the retry
  // storm both happen while we watch.
  relay::RelayForwarderOptions options = QuietForwarder(0);
  options.interval_ms = 20;

  net::ReportServerOptions root_options;
  root_options.accept_snapshots = true;
  auto root1_session = pipeline.NewServer();
  ASSERT_TRUE(root1_session.ok());
  auto root1 = net::ReportServer::Start(&root1_session.value(),
                                        pipeline.header(), endpoint,
                                        root_options);
  ASSERT_TRUE(root1.ok());
  auto forwarder = relay::RelayForwarder::Start(&edge_session.value(),
                                                endpoint, options);
  ASSERT_TRUE(forwarder.ok());

  // Wait until the first tier-crossing snapshot lands...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (root1.value()->stats().snapshots_accepted == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no snapshot reached the first root";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // ...then the root dies mid-campaign, taking its stored snapshots with
  // it. Everything it held is re-earned by the cumulative final flush.
  root1.value()->Stop(/*drain=*/false);
  root1.value().reset();

  // The edge keeps collecting against a dead upstream.
  shard = edge_session.value().OpenShard();
  ASSERT_TRUE(edge_session.value().Feed(shard, stream1).ok());
  ASSERT_TRUE(edge_session.value().CloseShard(shard).ok());
  while (forwarder.value()->stats().forward_failures == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "forwarder never noticed the dead upstream";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // A replacement root on the same endpoint; the final flush retries its
  // way in, and the fold reproduces the full campaign.
  auto root2_session = pipeline.NewServer();
  ASSERT_TRUE(root2_session.ok());
  auto root2 = net::ReportServer::Start(&root2_session.value(),
                                        pipeline.header(), endpoint,
                                        root_options);
  ASSERT_TRUE(root2.ok());
  ASSERT_TRUE(forwarder.value()->Stop(/*final_flush=*/true).ok());
  root2.value()->Stop(/*drain=*/true);
  ASSERT_TRUE(root2.value()->FoldRelaySnapshots().ok());

  const relay::RelayForwarderStats fstats = forwarder.value()->stats();
  EXPECT_GE(fstats.forward_failures, 1u);
  EXPECT_GE(fstats.reconnects, 2u);
  EXPECT_EQ(root2_session.value().Snapshot(),
            reference_session.value().Snapshot());
}

TEST(RelayTest, RetriesAndStaleSequencesAreIdempotent) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream0 = MakeHonestStream(pipeline, 1300);
  const std::string stream1 = MakeHonestStream(pipeline, 1301);

  auto partial = pipeline.NewServer();
  auto full = pipeline.NewServer();
  ASSERT_TRUE(partial.ok() && full.ok());
  size_t shard = partial.value().OpenShard();
  ASSERT_TRUE(partial.value().Feed(shard, stream0).ok());
  ASSERT_TRUE(partial.value().CloseShard(shard).ok());
  for (const std::string& stream : {stream0, stream1}) {
    shard = full.value().OpenShard();
    ASSERT_TRUE(full.value().Feed(shard, stream).ok());
    ASSERT_TRUE(full.value().CloseShard(shard).ok());
  }

  auto root_session = pipeline.NewServer();
  ASSERT_TRUE(root_session.ok());
  net::ReportServerOptions root_options;
  root_options.accept_snapshots = true;
  auto root = net::ReportServer::Start(&root_session.value(),
                                       pipeline.header(),
                                       RelayUdsEndpoint("idempotent"),
                                       root_options);
  ASSERT_TRUE(root.ok());

  auto send = [&](uint64_t seq, const std::string& bytes) {
    net::SnapshotMessage snap;
    snap.node = 0;
    snap.seq = seq;
    snap.snapshot_bytes = bytes;
    const RawReply reply = SendSnapshotPayload(root.value()->endpoint(),
                                               net::EncodeSnapshot(snap));
    EXPECT_EQ(reply.type, net::MessageType::kSnapshotOk);
    auto ok = net::DecodeSnapshotOk(reply.payload);
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().seq, seq);
  };
  // The full snapshot lands at seq 2, a duplicate retry of it is re-acked,
  // and a STALE seq-1 retry (the partial state) arrives last; highest seq
  // must win regardless of arrival order. Only the first arrival counts as
  // accepted — the equal-seq retry and the stale seq-1 are acked (so the
  // relay stops retrying) but tallied as stale, never as fresh progress.
  send(2, full.value().Snapshot());
  send(2, full.value().Snapshot());
  send(1, partial.value().Snapshot());

  root.value()->Stop(/*drain=*/true);
  ASSERT_TRUE(root.value()->FoldRelaySnapshots().ok());
  EXPECT_EQ(root.value()->stats().snapshots_accepted, 1u);
  EXPECT_EQ(root.value()->stats().snapshots_stale, 2u);
  EXPECT_EQ(root.value()->stats().nodes_folded, 1u);
  EXPECT_EQ(root_session.value().Snapshot(), full.value().Snapshot());
}

TEST(RelayTest, HostileSnapshotFramesAreRefusedWithoutTouchingTheSession) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const api::Pipeline numeric = MakeCorpusPipeline(/*numeric=*/true);

  // A collector that did NOT opt into relay ingest refuses even a
  // well-formed snapshot.
  auto closed_session = pipeline.NewServer();
  ASSERT_TRUE(closed_session.ok());
  auto closed_root = net::ReportServer::Start(
      &closed_session.value(), pipeline.header(),
      RelayUdsEndpoint("no_snapshots"), net::ReportServerOptions());
  ASSERT_TRUE(closed_root.ok());
  auto well_formed_session = pipeline.NewServer();
  ASSERT_TRUE(well_formed_session.ok());
  net::SnapshotMessage well_formed;
  well_formed.node = 1;
  well_formed.seq = 1;
  well_formed.snapshot_bytes = well_formed_session.value().Snapshot();
  RawReply reply = SendSnapshotPayload(closed_root.value()->endpoint(),
                                       net::EncodeSnapshot(well_formed));
  EXPECT_EQ(reply.type, net::MessageType::kError);
  closed_root.value()->Stop(/*drain=*/false);
  EXPECT_EQ(closed_root.value()->stats().snapshots_refused, 1u);

  // A relay-enabled root against the hostile-payload table. Every case is
  // refused on its own connection; none leaves a trace in the session.
  auto root_session = pipeline.NewServer();
  ASSERT_TRUE(root_session.ok());
  net::ReportServerOptions root_options;
  root_options.accept_snapshots = true;
  auto root = net::ReportServer::Start(&root_session.value(),
                                       pipeline.header(),
                                       RelayUdsEndpoint("hostile"),
                                       root_options);
  ASSERT_TRUE(root.ok());

  net::SnapshotMessage mismatched = well_formed;
  mismatched.snapshot_bytes = numeric.NewServer().value().Snapshot();
  net::SnapshotMessage garbage_body = well_formed;
  garbage_body.snapshot_bytes = "not a session snapshot at all";
  const std::string honest_wire = net::EncodeSnapshot(well_formed);
  const struct {
    const char* name;
    std::string payload;
  } kHostile[] = {
      {"unparseable-payload", std::string("\xFF\xFF garbage")},
      {"truncated-fixed-fields", honest_wire.substr(0, 7)},
      {"truncated-snapshot-body",
       honest_wire.substr(0, honest_wire.size() - 3)},
      {"trailing-garbage", honest_wire + "zz"},
      {"wrong-pipeline-config", net::EncodeSnapshot(mismatched)},
      {"garbage-snapshot-body", net::EncodeSnapshot(garbage_body)},
  };
  for (const auto& hostile : kHostile) {
    reply = SendSnapshotPayload(root.value()->endpoint(), hostile.payload);
    EXPECT_EQ(reply.type, net::MessageType::kError) << hostile.name;
  }

  // SNAPSHOT while this connection's shard is open is a protocol breach.
  {
    auto socket = net::ConnectSocket(root.value()->endpoint());
    ASSERT_TRUE(socket.ok());
    net::HelloMessage hello;
    hello.ordinal = 0;
    hello.header_bytes =
        stream::EncodeStreamHeader(pipeline.header());
    ASSERT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kHello,
                               net::EncodeHello(hello))
                    .ok());
    auto ok = ReadRawReply(&socket.value());
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value().type, net::MessageType::kHelloOk);
    ASSERT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kSnapshot,
                               honest_wire)
                    .ok());
    auto breach = ReadRawReply(&socket.value());
    ASSERT_TRUE(breach.ok());
    EXPECT_EQ(breach.value().type, net::MessageType::kError);
  }

  root.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = root.value()->stats();
  EXPECT_EQ(stats.snapshots_refused, 6u);
  EXPECT_EQ(stats.snapshots_accepted, 0u);
  ASSERT_TRUE(root.value()->FoldRelaySnapshots().ok());
  EXPECT_EQ(root.value()->stats().nodes_folded, 0u);
  auto reports = root_session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

}  // namespace
}  // namespace ldp
