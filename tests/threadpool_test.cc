#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

namespace ldp {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenZeroRequested) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ThreadPoolTest, SerialQueuePreservesFifoPerKey) {
  ThreadPool pool(4);
  constexpr uint64_t kKeys = 8;
  constexpr int kTasksPerKey = 200;
  std::vector<std::vector<int>> order(kKeys);
  for (int i = 0; i < kTasksPerKey; ++i) {
    for (uint64_t key = 0; key < kKeys; ++key) {
      // No lock in the task body: FIFO-per-key means tasks sharing a key
      // never run concurrently, which TSan verifies.
      pool.SubmitSerial(key, [&order, key, i] { order[key].push_back(i); });
    }
  }
  for (uint64_t key = 0; key < kKeys; ++key) pool.WaitSerial(key);
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_EQ(order[key].size(), static_cast<size_t>(kTasksPerKey));
    for (int i = 0; i < kTasksPerKey; ++i) {
      ASSERT_EQ(order[key][i], i) << "key " << key;
    }
  }
}

TEST(ThreadPoolTest, WaitSerialOnUnusedKeyReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitSerial(42);  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, WaitCoversSerialTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.SubmitSerial(static_cast<uint64_t>(i % 5),
                      [&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SerialKeysRunConcurrentlyOnDistinctWorkers) {
  // Two keys, each submitting a task that waits for the other key's task to
  // start: completes only if distinct keys really occupy distinct workers.
  ThreadPool pool(2);
  std::mutex mutex;
  std::condition_variable cv;
  int started = 0;
  for (uint64_t key = 0; key < 2; ++key) {
    pool.SubmitSerial(key, [&] {
      std::unique_lock<std::mutex> lock(mutex);
      ++started;
      cv.notify_all();
      cv.wait(lock, [&] { return started == 2; });
    });
  }
  pool.Wait();
  EXPECT_EQ(started, 2);
}

TEST(ThreadPoolTest, SerialQueueSurvivesDrainAndResubmit) {
  ThreadPool pool(2);
  std::vector<int> seen;
  pool.SubmitSerial(7, [&seen] { seen.push_back(1); });
  pool.WaitSerial(7);
  // The drained key was reclaimed internally; resubmitting must start a
  // fresh FIFO, not lose tasks.
  pool.SubmitSerial(7, [&seen] { seen.push_back(2); });
  pool.SubmitSerial(7, [&seen] { seen.push_back(3); });
  pool.WaitSerial(7);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const uint64_t n = 100000;
  std::vector<std::atomic<int>> touched(n);
  ParallelFor(&pool, n, [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  uint64_t sum = 0;
  ParallelFor(nullptr, 10, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    EXPECT_EQ(chunk, 0u);
    for (uint64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45u);
}

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](unsigned, uint64_t, uint64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(SplitRangeTest, CoversRangeContiguously) {
  for (const uint64_t n : {1ull, 7ull, 100ull, 4001ull}) {
    for (const uint64_t chunks : {1ull, 2ull, 8ull, 64ull, 5000ull}) {
      const std::vector<IndexRange> ranges = SplitRange(n, chunks);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(ranges.size(), std::min(n, chunks));
      EXPECT_EQ(ranges.front().begin, 0u);
      EXPECT_EQ(ranges.back().end, n);
      for (size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_LT(ranges[i].begin, ranges[i].end);
        if (i > 0) EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
      }
    }
  }
  EXPECT_TRUE(SplitRange(0, 4).empty());
}

TEST(SplitRangeTest, MatchesParallelForChunking) {
  // The contract the stream sharding tools rely on: ParallelFor on a pool
  // of T threads visits exactly the ranges SplitRange(n, 4T) produces, in
  // chunk-index order.
  ThreadPool pool(3);
  const uint64_t n = 1001;
  const std::vector<IndexRange> expected =
      SplitRange(n, pool.num_threads() * 4);
  EXPECT_EQ(ParallelForChunkCount(&pool, n), expected.size());
  std::vector<IndexRange> seen(expected.size());
  ParallelFor(&pool, n, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    seen[chunk] = {begin, end};
  });
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(seen[i].begin, expected[i].begin);
    EXPECT_EQ(seen[i].end, expected[i].end);
  }
}

TEST(ParallelForTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  const uint64_t n = 1 << 18;
  std::vector<double> values(n);
  for (uint64_t i = 0; i < n; ++i) values[i] = std::sin(0.001 * i);
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);

  std::mutex mutex;
  double parallel = 0.0;
  ParallelFor(&pool, n, [&](unsigned, uint64_t begin, uint64_t end) {
    double local = 0.0;
    for (uint64_t i = begin; i < end; ++i) local += values[i];
    std::lock_guard<std::mutex> lock(mutex);
    parallel += local;
  });
  EXPECT_NEAR(parallel, serial, 1e-6);
}

}  // namespace
}  // namespace ldp
