#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

namespace ldp {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenWhenZeroRequested) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const uint64_t n = 100000;
  std::vector<std::atomic<int>> touched(n);
  ParallelFor(&pool, n, [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  uint64_t sum = 0;
  ParallelFor(nullptr, 10, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    EXPECT_EQ(chunk, 0u);
    for (uint64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 45u);
}

TEST(ParallelForTest, EmptyRangeInvokesNothing) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ParallelFor(&pool, 0, [&](unsigned, uint64_t, uint64_t) { calls++; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(SplitRangeTest, CoversRangeContiguously) {
  for (const uint64_t n : {1ull, 7ull, 100ull, 4001ull}) {
    for (const uint64_t chunks : {1ull, 2ull, 8ull, 64ull, 5000ull}) {
      const std::vector<IndexRange> ranges = SplitRange(n, chunks);
      ASSERT_FALSE(ranges.empty());
      EXPECT_LE(ranges.size(), std::min(n, chunks));
      EXPECT_EQ(ranges.front().begin, 0u);
      EXPECT_EQ(ranges.back().end, n);
      for (size_t i = 0; i < ranges.size(); ++i) {
        EXPECT_LT(ranges[i].begin, ranges[i].end);
        if (i > 0) EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
      }
    }
  }
  EXPECT_TRUE(SplitRange(0, 4).empty());
}

TEST(SplitRangeTest, MatchesParallelForChunking) {
  // The contract the stream sharding tools rely on: ParallelFor on a pool
  // of T threads visits exactly the ranges SplitRange(n, 4T) produces, in
  // chunk-index order.
  ThreadPool pool(3);
  const uint64_t n = 1001;
  const std::vector<IndexRange> expected =
      SplitRange(n, pool.num_threads() * 4);
  EXPECT_EQ(ParallelForChunkCount(&pool, n), expected.size());
  std::vector<IndexRange> seen(expected.size());
  ParallelFor(&pool, n, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    seen[chunk] = {begin, end};
  });
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(seen[i].begin, expected[i].begin);
    EXPECT_EQ(seen[i].end, expected[i].end);
  }
}

TEST(ParallelForTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  const uint64_t n = 1 << 18;
  std::vector<double> values(n);
  for (uint64_t i = 0; i < n; ++i) values[i] = std::sin(0.001 * i);
  const double serial = std::accumulate(values.begin(), values.end(), 0.0);

  std::mutex mutex;
  double parallel = 0.0;
  ParallelFor(&pool, n, [&](unsigned, uint64_t begin, uint64_t end) {
    double local = 0.0;
    for (uint64_t i = begin; i < end; ++i) local += values[i];
    std::lock_guard<std::mutex> lock(mutex);
    parallel += local;
  });
  EXPECT_NEAR(parallel, serial, 1e-6);
}

}  // namespace
}  // namespace ldp
