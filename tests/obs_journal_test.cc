// obs/journal.h: ring-buffer retention (oldest-first order, overwrite
// accounting), concurrent recording, and the two dump formats.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/journal.h"

namespace ldp::obs {
namespace {

TEST(ObsJournal, RecordsInOrder) {
  EventJournal journal(64);
  journal.Record(EventKind::kServerStart);
  journal.Record(EventKind::kShardOpen, /*a=*/3, /*b=*/0);
  journal.Record(EventKind::kShardClose, /*a=*/3, /*b=*/0);
  const std::vector<Event> events = journal.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, EventKind::kServerStart);
  EXPECT_EQ(events[1].kind, EventKind::kShardOpen);
  EXPECT_EQ(events[1].a, 3u);
  EXPECT_EQ(events[2].kind, EventKind::kShardClose);
  EXPECT_EQ(journal.recorded(), 3u);
  EXPECT_EQ(journal.dropped(), 0u);
  // Timestamps are monotone in record order.
  EXPECT_LE(events[0].steady_ns, events[1].steady_ns);
  EXPECT_LE(events[1].steady_ns, events[2].steady_ns);
}

TEST(ObsJournal, RingOverwritesOldest) {
  EventJournal journal(16);  // the constructor's minimum
  for (uint64_t i = 0; i < 40; ++i) {
    journal.Record(EventKind::kEpochAdvance, /*a=*/i);
  }
  EXPECT_EQ(journal.recorded(), 40u);
  EXPECT_EQ(journal.dropped(), 40u - journal.capacity());
  const std::vector<Event> events = journal.Events();
  ASSERT_EQ(events.size(), journal.capacity());
  // The retained window is the most recent events, oldest first.
  EXPECT_EQ(events.front().a, 40u - journal.capacity());
  EXPECT_EQ(events.back().a, 39u);
}

TEST(ObsJournal, CapacityIsClamped) {
  EventJournal journal(1);
  EXPECT_GE(journal.capacity(), 16u);
}

TEST(ObsJournal, ConcurrentRecordLosesNothingBelowCapacity) {
  EventJournal journal(4096);
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> writers;
  for (unsigned t = 0; t < kThreads; ++t) {
    writers.emplace_back([&journal, t] {
      for (int i = 0; i < kPerThread; ++i) {
        journal.Record(EventKind::kShardOpen, /*a=*/t, /*b=*/
                       static_cast<uint64_t>(i));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(journal.recorded(), kThreads * kPerThread);
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(journal.Events().size(), kThreads * kPerThread);
}

TEST(ObsJournal, EventKindNames) {
  EXPECT_STREQ(EventKindToString(EventKind::kShardOpen), "shard_open");
  EXPECT_STREQ(EventKindToString(EventKind::kHelloRefuse), "hello_refuse");
  EXPECT_STREQ(EventKindToString(EventKind::kAccountantRefuse),
               "accountant_refuse");
  EXPECT_STREQ(EventKindToString(EventKind::kMergeExit), "merge_exit");
}

TEST(ObsJournal, JsonLinesShape) {
  EventJournal journal(64);
  journal.Record(EventKind::kShardOpen, /*a=*/1, /*b=*/2);
  journal.Record(EventKind::kMergeEnter, /*a=*/0);
  const std::string lines = journal.ToJsonLines();
  // One line per event, each a flat JSON object.
  size_t newlines = 0;
  for (const char c : lines) newlines += (c == '\n');
  EXPECT_EQ(newlines, 2u);
  EXPECT_EQ(lines.find("{\"event\":\"shard_open\",\"wall_ns\":"), 0u);
  EXPECT_NE(lines.find("\"a\":1,\"b\":2}"), std::string::npos);
  EXPECT_NE(lines.find("{\"event\":\"merge_enter\""), std::string::npos);
}

TEST(ObsJournal, ChromeTraceShape) {
  EventJournal journal(64);
  journal.Record(EventKind::kServerStart);
  journal.Record(EventKind::kShardOpen, /*a=*/5);
  const std::string trace = journal.ToChromeTrace();
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("\"name\":\"server_start\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"shard_open\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\":5"), std::string::npos);
  EXPECT_EQ(trace.back(), '\n');
}

}  // namespace
}  // namespace ldp::obs
