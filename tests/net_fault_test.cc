// Socket fault injection for the transport edge: the PR 4 adversarial
// stream corpus (stream_corpus_util.h) replayed over real loopback
// connections, plus the failure modes only a socket can produce —
// mid-frame disconnects, slow-loris partial messages, hostile control
// length prefixes, and HELLO schema mismatches. The contract: every fault
// rejects, poisons, or abandons exactly the offending connection's shard,
// while an honest connection served concurrently completes with exact
// counts — and the epoch holds precisely the honest contributions.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "stream/report_stream.h"
#include "stream_corpus_util.h"

namespace ldp {
namespace {

using ldp::testing::CorpusOutcome;
using ldp::testing::kCorpusReports;
using ldp::testing::kStreamCorpus;
using ldp::testing::MakeCorpusPipeline;
using ldp::testing::MakeHonestStream;

net::Endpoint FaultUdsEndpoint(const std::string& name) {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kUnix;
  endpoint.path = "/tmp/ldp_fault_" + std::to_string(::getpid()) + "_" +
                  name + ".sock";
  return endpoint;
}

// --- a raw protocol speaker (no CollectorClient conveniences) --------------

Status SendRawMessage(net::Socket* socket, net::MessageType type,
                      const std::string& payload) {
  std::string wire;
  LDP_RETURN_IF_ERROR(net::AppendMessage(type, payload, &wire));
  return socket->SendAll(wire);
}

// DATA payloads carry a u32 channel prefix since protocol v2; these raw
// speakers always use the connection's first channel (id 0).
std::string OnChannelZero(const std::string& frames) {
  std::string payload(net::kDataChannelPrefixBytes, '\0');
  payload.append(frames);
  return payload;
}

std::string CloseChannelZero() {
  net::CloseShardMessage close;
  close.channel = 0;
  return net::EncodeCloseShard(close);
}

struct RawReply {
  net::MessageType type = net::MessageType::kError;
  std::string payload;
  bool eof = false;
};

Result<RawReply> ReadRawReply(net::Socket* socket) {
  RawReply reply;
  char prefix[net::kMessageHeaderBytes];
  Result<bool> got = socket->RecvAll(prefix, sizeof(prefix));
  if (!got.ok()) return got.status();
  if (!got.value()) {
    reply.eof = true;
    return reply;
  }
  Result<net::MessageHeader> header =
      net::DecodeMessageHeader(prefix, sizeof(prefix));
  if (!header.ok()) return header.status();
  reply.type = header.value().type;
  reply.payload.resize(header.value().payload_length);
  if (!reply.payload.empty()) {
    Result<bool> body =
        socket->RecvAll(reply.payload.data(), reply.payload.size());
    if (!body.ok()) return body.status();
    if (!body.value()) return Status::IoError("eof mid-reply");
  }
  return reply;
}

// The verdict one hostile (or honest) stream earns over the wire.
struct WireVerdict {
  bool refused_at_hello = false;
  bool poisoned = false;  // ERROR mid-stream or SHARD_CLOSED with error
  uint64_t accepted = 0;
  uint64_t rejected = 0;
};

// Plays one whole stream (header + frames) through a raw connection: HELLO
// carries the stream's first kStreamHeaderBytes (or fewer, for truncated
// headers), DATA the rest, then CLOSE_SHARD. Chunked sends keep frame
// boundaries straddling DATA messages.
Result<WireVerdict> PlayStream(const net::Endpoint& endpoint,
                               const std::string& bytes, uint64_t ordinal) {
  WireVerdict verdict;
  Result<net::Socket> socket = net::ConnectSocket(endpoint);
  if (!socket.ok()) return socket.status();
  net::HelloMessage hello;
  hello.ordinal = ordinal;
  hello.header_bytes =
      bytes.substr(0, std::min(bytes.size(),
                               static_cast<size_t>(
                                   stream::kStreamHeaderBytes)));
  LDP_RETURN_IF_ERROR(SendRawMessage(&socket.value(), net::MessageType::kHello,
                                     net::EncodeHello(hello)));
  RawReply reply;
  LDP_ASSIGN_OR_RETURN(reply, ReadRawReply(&socket.value()));
  if (reply.eof) return Status::IoError("collector hung up at HELLO");
  if (reply.type == net::MessageType::kError) {
    verdict.refused_at_hello = true;
    return verdict;
  }
  if (reply.type != net::MessageType::kHelloOk) {
    return Status::InvalidArgument("unexpected HELLO reply");
  }

  // Ship the frames in smallish chunks; the server may poison the shard
  // and hang up mid-way, which is a verdict, not a test error.
  for (size_t offset = hello.header_bytes.size(); offset < bytes.size();
       offset += 4096) {
    const size_t take = std::min<size_t>(4096, bytes.size() - offset);
    const Status sent =
        SendRawMessage(&socket.value(), net::MessageType::kData,
                       OnChannelZero(bytes.substr(offset, take)));
    if (!sent.ok()) {
      verdict.poisoned = true;
      return verdict;
    }
  }
  const Status closing = SendRawMessage(
      &socket.value(), net::MessageType::kCloseShard, CloseChannelZero());
  if (!closing.ok()) {
    verdict.poisoned = true;
    return verdict;
  }
  LDP_ASSIGN_OR_RETURN(reply, ReadRawReply(&socket.value()));
  if (reply.eof) {
    verdict.poisoned = true;
    return verdict;
  }
  if (reply.type == net::MessageType::kError) {
    verdict.poisoned = true;
    return verdict;
  }
  if (reply.type != net::MessageType::kShardClosed) {
    return Status::InvalidArgument("unexpected CLOSE reply");
  }
  net::ShardClosedMessage closed;
  LDP_ASSIGN_OR_RETURN(closed, net::DecodeShardClosed(reply.payload));
  verdict.poisoned = closed.code != 0;
  verdict.accepted = closed.stats.accepted;
  verdict.rejected = closed.stats.rejected;
  return verdict;
}

TEST(NetFaultTest, CorpusOverRealSocketsMatchesDirectOutcomes) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/910);

  for (const unsigned threads : {0u, 2u}) {
    api::ServerSessionOptions session_options;
    session_options.ingest_threads = threads;
    auto session = pipeline.NewServer(session_options);
    ASSERT_TRUE(session.ok());
    net::ReportServerOptions server_options;
    server_options.acceptors = 2;
    auto server = net::ReportServer::Start(
        &session.value(), pipeline.header(),
        FaultUdsEndpoint("corpus_t" + std::to_string(threads)),
        server_options);
    ASSERT_TRUE(server.ok());
    const net::Endpoint endpoint = server.value()->endpoint();

    // An honest reporter runs concurrently with every hostile replay; it
    // must be completely unaffected.
    std::thread honest_reporter([&] {
      auto verdict = PlayStream(endpoint, honest, /*ordinal=*/1000);
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      EXPECT_FALSE(verdict.value().refused_at_hello);
      EXPECT_FALSE(verdict.value().poisoned);
      EXPECT_EQ(verdict.value().accepted, kCorpusReports);
      EXPECT_EQ(verdict.value().rejected, 0u);
    });

    uint64_t expected_epoch_reports = kCorpusReports;  // the honest shard
    uint64_t ordinal = 0;
    for (const auto& corpus_case : kStreamCorpus) {
      SCOPED_TRACE(corpus_case.name);
      const std::string mutant = corpus_case.mutate(honest);
      auto verdict = PlayStream(endpoint, mutant, ordinal++);
      ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
      if (corpus_case.mutates_header) {
        // Over the wire, header corruption is caught at HELLO: the shard
        // never opens at all.
        EXPECT_TRUE(verdict.value().refused_at_hello);
      } else if (corpus_case.outcome == CorpusOutcome::kPoisoned) {
        EXPECT_FALSE(verdict.value().refused_at_hello);
        EXPECT_TRUE(verdict.value().poisoned);
      } else {
        EXPECT_FALSE(verdict.value().refused_at_hello);
        EXPECT_FALSE(verdict.value().poisoned);
        EXPECT_EQ(verdict.value().rejected, corpus_case.expected_rejected);
        EXPECT_EQ(verdict.value().accepted, corpus_case.expected_accepted);
        expected_epoch_reports += corpus_case.expected_accepted;
      }
    }
    honest_reporter.join();
    server.value()->Stop(/*drain=*/true);

    auto reports = session.value().num_reports(0);
    ASSERT_TRUE(reports.ok());
    EXPECT_EQ(reports.value(), expected_epoch_reports)
        << "ingest_threads=" << threads;
  }
}

TEST(NetFaultTest, MidFrameDisconnectAbandonsOnlyThatShard) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/920);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.acceptors = 2;
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("midframe"),
                                         options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();

  {
    // HELLO, ship half the stream (cutting inside a frame), vanish.
    Result<net::Socket> socket = net::ConnectSocket(endpoint);
    ASSERT_TRUE(socket.ok());
    net::HelloMessage hello;
    hello.ordinal = 0;
    hello.header_bytes = honest.substr(0, stream::kStreamHeaderBytes);
    ASSERT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kHello,
                               net::EncodeHello(hello))
                    .ok());
    auto reply = ReadRawReply(&socket.value());
    ASSERT_TRUE(reply.ok());
    ASSERT_EQ(reply.value().type, net::MessageType::kHelloOk);
    const size_t half = honest.size() / 2;
    ASSERT_TRUE(
        SendRawMessage(&socket.value(), net::MessageType::kData,
                       OnChannelZero(honest.substr(
                           stream::kStreamHeaderBytes,
                           half - stream::kStreamHeaderBytes)))
            .ok());
    // Socket destructor: abrupt disconnect, no CLOSE_SHARD.
  }

  // An honest shard on a fresh connection is untouched by the wreckage.
  auto verdict = PlayStream(endpoint, honest, /*ordinal=*/1);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.value().poisoned);
  EXPECT_EQ(verdict.value().accepted, kCorpusReports);

  server.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.shards_abandoned, 1u);
  EXPECT_EQ(stats.shards_merged, 1u);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  // Even the complete frames of the aborted upload contributed nothing.
  EXPECT_EQ(reports.value(), kCorpusReports);
}

TEST(NetFaultTest, SlowLorisPartialMessageIsReapedByIdleTimeout) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/930);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.acceptors = 2;
  options.idle_timeout_ms = 150;
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("slowloris"),
                                         options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();

  // Loris #1: 3 of 5 header-prefix bytes, then silence.
  Result<net::Socket> loris = net::ConnectSocket(endpoint);
  ASSERT_TRUE(loris.ok());
  ASSERT_TRUE(loris.value().SendAll("\x01\x10\x00", 3).ok());

  // Loris #2 drips one byte per interval — each recv succeeds, so a
  // per-recv timeout alone would never fire; the whole-message deadline
  // must reap it anyway.
  Result<net::Socket> dripper = net::ConnectSocket(endpoint);
  ASSERT_TRUE(dripper.ok());
  std::thread drip([&] {
    for (int i = 0; i < 12; ++i) {
      if (!dripper.value().SendAll("\x01", 1).ok()) return;  // reaped
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
    }
  });

  // Honest reporters keep being served while the loris squats one slot.
  auto verdict = PlayStream(endpoint, honest, /*ordinal=*/0);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(verdict.value().poisoned);
  EXPECT_EQ(verdict.value().accepted, kCorpusReports);

  // The timeout reaps both lorises: their slots serve honest traffic
  // again (the dripper dies mid-drip despite never idling per recv).
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  drip.join();
  auto verdict2 = PlayStream(endpoint, honest, /*ordinal=*/1);
  ASSERT_TRUE(verdict2.ok());
  EXPECT_EQ(verdict2.value().accepted, kCorpusReports);

  // Stop(drain) must not hang on the reaped connections.
  server.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_GE(stats.protocol_errors, 2u);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 2 * kCorpusReports);
}

TEST(NetFaultTest, OversizedControlLengthPrefixKillsOnlyThatConnection) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/940);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.acceptors = 2;
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("oversized"),
                                         options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();

  {
    // Valid HELLO, then a DATA prefix claiming a ~4 GiB payload: the
    // server must refuse the length up front (never buffer it) and
    // abandon the shard.
    Result<net::Socket> socket = net::ConnectSocket(endpoint);
    ASSERT_TRUE(socket.ok());
    net::HelloMessage hello;
    hello.ordinal = 0;
    hello.header_bytes = honest.substr(0, stream::kStreamHeaderBytes);
    ASSERT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kHello,
                               net::EncodeHello(hello))
                    .ok());
    auto ok = ReadRawReply(&socket.value());
    ASSERT_TRUE(ok.ok());
    ASSERT_EQ(ok.value().type, net::MessageType::kHelloOk);
    const char hostile[net::kMessageHeaderBytes] = {
        0x02, '\xFF', '\xFF', '\xFF', '\xFF'};  // DATA, length 0xFFFFFFFF
    ASSERT_TRUE(socket.value().SendAll(hostile, sizeof(hostile)).ok());
    auto reply = ReadRawReply(&socket.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().type, net::MessageType::kError);
  }

  auto verdict = PlayStream(endpoint, honest, /*ordinal=*/1);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.value().accepted, kCorpusReports);

  server.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.shards_abandoned, 1u);
  EXPECT_GE(stats.protocol_errors, 1u);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kCorpusReports);
}

// Sends one HELLO on a fresh connection and returns the server's reply.
Result<RawReply> SendLoneHello(const net::Endpoint& endpoint,
                               const net::HelloMessage& hello) {
  Result<net::Socket> socket = net::ConnectSocket(endpoint);
  if (!socket.ok()) return socket.status();
  LDP_RETURN_IF_ERROR(SendRawMessage(&socket.value(), net::MessageType::kHello,
                                     net::EncodeHello(hello)));
  return ReadRawReply(&socket.value());
}

// Expects `reply` to be the auth gate's FailedPrecondition refusal.
void ExpectAuthRefusal(const Result<RawReply>& reply) {
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_FALSE(reply.value().eof);
  ASSERT_EQ(reply.value().type, net::MessageType::kError);
  auto error = net::DecodeErrorMessage(reply.value().payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(net::StatusFromWire(error.value().code, error.value().message)
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(NetFaultTest, KeyedServerRefusesForgedAndReplayedHellos) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/960);
  const std::string key = "fault-test-campaign-key";

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.campaign_key = key;
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("authgate"),
                                         options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();
  const std::string header_bytes =
      honest.substr(0, stream::kStreamHeaderBytes);

  net::HelloMessage valid;
  valid.ordinal = 0;
  valid.reporter_id = "user-0";
  valid.header_bytes = header_bytes;
  valid.auth_tag = net::ComputeHelloTag(key, valid.reporter_id,
                                        valid.channel, /*epoch=*/0,
                                        header_bytes);

  // A legacy v2 (unauthenticated) HELLO against the keyed server.
  {
    net::HelloMessage v2;
    v2.ordinal = 0;
    v2.header_bytes = header_bytes;
    ExpectAuthRefusal(SendLoneHello(endpoint, v2));
  }
  // One flipped bit anywhere in the tag.
  {
    net::HelloMessage flipped = valid;
    flipped.auth_tag[7] ^= 0x01;
    ExpectAuthRefusal(SendLoneHello(endpoint, flipped));
  }
  // A valid tag replayed onto a different channel.
  {
    net::HelloMessage cross_channel = valid;
    cross_channel.channel = 1;
    ExpectAuthRefusal(SendLoneHello(endpoint, cross_channel));
  }
  // A tag minted for a different epoch (the server is at epoch 0).
  {
    net::HelloMessage cross_epoch = valid;
    cross_epoch.auth_tag = net::ComputeHelloTag(
        key, valid.reporter_id, valid.channel, /*epoch=*/1, header_bytes);
    ExpectAuthRefusal(SendLoneHello(endpoint, cross_epoch));
  }
  // A tag minted under a different key.
  {
    net::HelloMessage wrong_key = valid;
    wrong_key.auth_tag = net::ComputeHelloTag(
        "not-the-key", valid.reporter_id, valid.channel, /*epoch=*/0,
        header_bytes);
    ExpectAuthRefusal(SendLoneHello(endpoint, wrong_key));
  }
  // A tag vouching for a different identity than the HELLO claims.
  {
    net::HelloMessage stolen = valid;
    stolen.reporter_id = "user-1";
    ExpectAuthRefusal(SendLoneHello(endpoint, stolen));
  }

  // The honest authenticated reporter is served through the wreckage —
  // via the real client, covering its v3 HELLO path too.
  net::CollectorClientOptions client_options;
  client_options.reporter_id = "user-0";
  client_options.campaign_key = key;
  auto client = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                              /*ordinal=*/0, client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value()
                  .Send(honest.data() + stream::kStreamHeaderBytes,
                        honest.size() - stream::kStreamHeaderBytes)
                  .ok());
  auto closed = client.value().Close();
  ASSERT_TRUE(closed.ok());
  EXPECT_TRUE(closed.value().status.ok()) << closed.value().status.ToString();
  EXPECT_EQ(closed.value().stats.accepted, kCorpusReports);

  server.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.hello_unauthenticated, 6u);
  EXPECT_EQ(stats.hello_rejected, 6u);
  EXPECT_EQ(stats.shards_merged, 1u);
  // None of the six refused HELLOs reached the session: no shard beyond
  // the honest one ever opened, and only its reports exist.
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kCorpusReports);
  EXPECT_EQ(session.value().accountant().num_charged_reporters(), 2u)
      << "anonymous plan ledger + user-0, nobody else";
  EXPECT_EQ(session.value().accountant().Spent("user-0"),
            pipeline.header().epsilon);
}

TEST(NetFaultTest, KeylessServerRefusesAuthenticatedHello) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/970);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("keyless"),
                                         net::ReportServerOptions());
  ASSERT_TRUE(server.ok());

  // A v3 HELLO at a keyless collector: skipping verification silently
  // would teach reporters their ids are being honored when they are not.
  net::HelloMessage hello;
  hello.ordinal = 0;
  hello.reporter_id = "user-0";
  hello.auth_tag = net::ComputeHelloTag("some-key", hello.reporter_id,
                                        hello.channel, /*epoch=*/0,
                                        honest.substr(
                                            0, stream::kStreamHeaderBytes));
  hello.header_bytes = honest.substr(0, stream::kStreamHeaderBytes);
  ExpectAuthRefusal(SendLoneHello(server.value()->endpoint(), hello));

  // The same client with no identity options connects fine (v2 path).
  auto client = net::CollectorClient::Connect(server.value()->endpoint(),
                                              pipeline.header(),
                                              /*ordinal=*/0);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().Close().ok());

  server.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.hello_unauthenticated, 1u);
  EXPECT_EQ(stats.hello_rejected, 1u);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(NetFaultTest, MalformedIdentitySectionPoisonsOnlyThatConnection) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/980);
  const std::string key = "fault-test-campaign-key";

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions options;
  options.campaign_key = key;
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("badid"),
                                         options);
  ASSERT_TRUE(server.ok());
  const net::Endpoint endpoint = server.value()->endpoint();
  const std::string header_bytes =
      honest.substr(0, stream::kStreamHeaderBytes);

  net::HelloMessage valid;
  valid.ordinal = 0;
  valid.reporter_id = "user-0";
  valid.header_bytes = header_bytes;
  valid.auth_tag = net::ComputeHelloTag(key, valid.reporter_id,
                                        valid.channel, /*epoch=*/0,
                                        header_bytes);
  const std::string wire = net::EncodeHello(valid);
  constexpr size_t kFixed = 2 + 4 + 4 + 8;

  // Truncated mid-identity: the payload ends inside the reporter id.
  {
    Result<net::Socket> socket = net::ConnectSocket(endpoint);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kHello,
                               wire.substr(0, kFixed + 2 + 3))
                    .ok());
    auto reply = ReadRawReply(&socket.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().type, net::MessageType::kError);
  }
  // Oversized id length field backed by a huge payload.
  {
    std::string oversized = wire;
    const uint16_t lying = net::kMaxReporterIdBytes + 1;
    oversized[kFixed] = static_cast<char>(lying & 0xFF);
    oversized[kFixed + 1] = static_cast<char>(lying >> 8);
    oversized.append(1024, 'x');
    Result<net::Socket> socket = net::ConnectSocket(endpoint);
    ASSERT_TRUE(socket.ok());
    ASSERT_TRUE(SendRawMessage(&socket.value(), net::MessageType::kHello,
                               oversized)
                    .ok());
    auto reply = ReadRawReply(&socket.value());
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply.value().type, net::MessageType::kError);
  }

  // The wreckage took nothing else down.
  net::CollectorClientOptions client_options;
  client_options.reporter_id = "user-0";
  client_options.campaign_key = key;
  auto client = net::CollectorClient::Connect(endpoint, pipeline.header(),
                                              /*ordinal=*/0, client_options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE(client.value().Close().ok());

  server.value()->Stop(/*drain=*/true);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(NetFaultTest, HelloSchemaHashMismatchIsRefusedBeforeAnyReport) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, /*seed=*/950);

  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         FaultUdsEndpoint("hashmismatch"),
                                         net::ReportServerOptions());
  ASSERT_TRUE(server.ok());

  // CollectorClient surfaces the server's FailedPrecondition verbatim.
  stream::StreamHeader wrong = pipeline.header();
  wrong.schema_hash ^= 0xFF;
  auto refused = net::CollectorClient::Connect(server.value()->endpoint(),
                                               wrong, /*ordinal=*/0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.status().message().find("schema hash"),
            std::string::npos);

  server.value()->Stop(/*drain=*/true);
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.hello_rejected, 1u);
  auto reports = session.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

}  // namespace
}  // namespace ldp
