#include "baselines/duchi_multi_dim.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "test_util.h"
#include "util/math.h"

namespace ldp {
namespace {

using ::ldp::testing::MeanTolerance;

TEST(DuchiMultiDimTest, CdMatchesEquation9ForSmallD) {
  // Odd d: 2^{d-1} / C(d-1, (d-1)/2).
  EXPECT_NEAR(DuchiMultiDimMechanism::ComputeCd(1), 1.0, 1e-12);
  EXPECT_NEAR(DuchiMultiDimMechanism::ComputeCd(3), 4.0 / 2.0, 1e-12);
  EXPECT_NEAR(DuchiMultiDimMechanism::ComputeCd(5), 16.0 / 6.0, 1e-12);
  // Even d: (2^{d-1} + C(d, d/2)/2) / C(d-1, d/2).
  EXPECT_NEAR(DuchiMultiDimMechanism::ComputeCd(2), (2.0 + 1.0) / 1.0, 1e-12);
  EXPECT_NEAR(DuchiMultiDimMechanism::ComputeCd(4), (8.0 + 3.0) / 3.0, 1e-12);
  EXPECT_NEAR(DuchiMultiDimMechanism::ComputeCd(6), (32.0 + 10.0) / 10.0,
              1e-12);
}

TEST(DuchiMultiDimTest, CdGrowsLikeSqrtD) {
  // C_d = Θ(√d); check the ratio C_d/√d stays within constant factors.
  // C_d → √(πd/2) ≈ 1.25√d for odd d; even d adds a +1 correction, so the
  // ratio peaks around 1.6 at small even d and settles near 1.25.
  for (const uint32_t d : {10u, 50u, 200u, 1000u}) {
    const double ratio =
        DuchiMultiDimMechanism::ComputeCd(d) / std::sqrt(static_cast<double>(d));
    EXPECT_GT(ratio, 0.8) << "d=" << d;
    EXPECT_LT(ratio, 1.7) << "d=" << d;
  }
}

TEST(DuchiMultiDimTest, OutputCoordinatesAreAllPlusMinusB) {
  const DuchiMultiDimMechanism mech(1.0, 8);
  Rng rng(1);
  const std::vector<double> t(8, 0.25);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> out = mech.Perturb(t, &rng);
    ASSERT_EQ(out.size(), 8u);
    for (const double v : out) {
      EXPECT_TRUE(v == mech.bound() || v == -mech.bound());
    }
  }
}

TEST(DuchiMultiDimTest, PerturbIsComponentwiseUnbiased) {
  const uint32_t d = 6;
  const DuchiMultiDimMechanism mech(1.5, d);
  const std::vector<double> t = {-0.8, -0.3, 0.0, 0.2, 0.6, 1.0};
  Rng rng(2);
  const uint64_t samples = 150000;
  std::vector<RunningStats> stats(d);
  for (uint64_t i = 0; i < samples; ++i) {
    const std::vector<double> out = mech.Perturb(t, &rng);
    for (uint32_t j = 0; j < d; ++j) stats[j].Add(out[j]);
  }
  for (uint32_t j = 0; j < d; ++j) {
    EXPECT_NEAR(stats[j].Mean(), t[j], MeanTolerance(stats[j], 6.0))
        << "coordinate " << j;
  }
}

TEST(DuchiMultiDimTest, DimensionOneReducesToTwoPointMechanism) {
  const double eps = 1.0;
  const DuchiMultiDimMechanism mech(eps, 1);
  // C_1 = 1, so B = (e^ε+1)/(e^ε-1), exactly the 1-D mechanism's bound.
  const double e = std::exp(eps);
  EXPECT_NEAR(mech.bound(), (e + 1.0) / (e - 1.0), 1e-12);
  Rng rng(3);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.Add(mech.Perturb({0.5}, &rng)[0]);
  }
  EXPECT_NEAR(stats.Mean(), 0.5, MeanTolerance(stats, 6.0));
}

TEST(DuchiMultiDimTest, SatisfiesLdpByExhaustiveEnumeration) {
  // For small d the full output distribution Pr[t* | t] can be estimated to
  // high precision analytically: condition on v (2^d equally structured
  // outcomes) and on the T+/T- choice. Instead of Monte Carlo we compute the
  // exact distribution by enumerating v and the uniform choice within each
  // half-space, then check max-ratio <= e^ε over a grid of input pairs.
  const double eps = 1.0;
  const uint32_t d = 3;
  const DuchiMultiDimMechanism mech(eps, d);
  const double e_eps = std::exp(eps);

  auto output_distribution = [&](const std::vector<double>& t) {
    std::map<std::vector<int>, double> dist;
    const uint32_t num_v = 1u << d;
    // |T+| = |{s : <s,v> >= 0}|; for odd d there are 2^{d-1} such s per v.
    const double half_count = std::pow(2.0, static_cast<double>(d - 1));
    for (uint32_t vbits = 0; vbits < num_v; ++vbits) {
      double pv = 1.0;
      std::vector<int> v(d);
      for (uint32_t j = 0; j < d; ++j) {
        v[j] = (vbits >> j) & 1 ? 1 : -1;
        pv *= (v[j] == 1) ? 0.5 + 0.5 * t[j] : 0.5 - 0.5 * t[j];
      }
      // Enumerate all sign vectors s ∈ {-1,1}^d and their half-space.
      for (uint32_t sbits = 0; sbits < num_v; ++sbits) {
        std::vector<int> s(d);
        int dot = 0;
        for (uint32_t j = 0; j < d; ++j) {
          s[j] = (sbits >> j) & 1 ? 1 : -1;
          dot += s[j] * v[j];
        }
        double p_select = 0.0;
        if (dot >= 0) p_select += e_eps / (e_eps + 1.0) / half_count;
        if (dot <= 0) p_select += 1.0 / (e_eps + 1.0) / half_count;
        dist[s] += pv * p_select;
      }
    }
    return dist;
  };

  const std::vector<std::vector<double>> inputs = {
      {0.0, 0.0, 0.0}, {1.0, -1.0, 0.5}, {-1.0, -1.0, -1.0},
      {0.3, 0.7, -0.2}, {1.0, 1.0, 1.0}};
  for (const auto& t1 : inputs) {
    const auto d1 = output_distribution(t1);
    // Sanity: distribution sums to 1.
    double total = 0.0;
    for (const auto& [s, p] : d1) total += p;
    ASSERT_NEAR(total, 1.0, 1e-9);
    for (const auto& t2 : inputs) {
      const auto d2 = output_distribution(t2);
      for (const auto& [s, p1] : d1) {
        const double p2 = d2.at(s);
        if (p2 > 0.0) {
          EXPECT_LE(p1 / p2, e_eps * (1.0 + 1e-9));
        }
      }
    }
  }
}

TEST(DuchiMultiDimTest, EmpiricalDistributionMatchesAlgorithmSpec) {
  // d = 2 exercises the even case where T+ and T- share the dot = 0 boundary.
  // Compare the implementation's empirical output distribution against the
  // exact distribution of Algorithm 3 computed by enumeration.
  const double eps = 1.0;
  const uint32_t d = 2;
  const DuchiMultiDimMechanism mech(eps, d);
  const double e_eps = std::exp(eps);
  const std::vector<double> t = {0.6, -0.2};

  // Exact: enumerate v and s; |T+| = |T-| = C(2,1) + C(2,2) = 3.
  std::map<std::vector<int>, double> exact;
  const double half_count = 3.0;
  for (uint32_t vbits = 0; vbits < 4; ++vbits) {
    double pv = 1.0;
    std::vector<int> v(d);
    for (uint32_t j = 0; j < d; ++j) {
      v[j] = (vbits >> j) & 1 ? 1 : -1;
      pv *= (v[j] == 1) ? 0.5 + 0.5 * t[j] : 0.5 - 0.5 * t[j];
    }
    for (uint32_t sbits = 0; sbits < 4; ++sbits) {
      std::vector<int> s(d);
      int dot = 0;
      for (uint32_t j = 0; j < d; ++j) {
        s[j] = (sbits >> j) & 1 ? 1 : -1;
        dot += s[j] * v[j];
      }
      double p_select = 0.0;
      if (dot >= 0) p_select += e_eps / (e_eps + 1.0) / half_count;
      if (dot <= 0) p_select += 1.0 / (e_eps + 1.0) / half_count;
      exact[s] += pv * p_select;
    }
  }

  Rng rng(5);
  const int samples = 400000;
  std::map<std::vector<int>, int> counts;
  for (int i = 0; i < samples; ++i) {
    const std::vector<double> out = mech.Perturb(t, &rng);
    std::vector<int> signs(d);
    for (uint32_t j = 0; j < d; ++j) signs[j] = out[j] > 0.0 ? 1 : -1;
    ++counts[signs];
  }
  for (const auto& [signs, p] : exact) {
    const double empirical = static_cast<double>(counts[signs]) / samples;
    const double stderr_p = std::sqrt(p * (1.0 - p) / samples);
    EXPECT_NEAR(empirical, p, 5.0 * stderr_p + 1e-9);
  }
}

TEST(DuchiMultiDimTest, CoordinateVarianceFormula) {
  const DuchiMultiDimMechanism mech(1.0, 4);
  const double b = mech.bound();
  EXPECT_DOUBLE_EQ(mech.CoordinateVariance(0.0), b * b);
  EXPECT_DOUBLE_EQ(mech.CoordinateVariance(0.5), b * b - 0.25);
  EXPECT_DOUBLE_EQ(mech.WorstCaseCoordinateVariance(), b * b);
}

TEST(DuchiMultiDimTest, EmpiricalCoordinateVarianceMatchesEquation13) {
  const uint32_t d = 4;
  const DuchiMultiDimMechanism mech(2.0, d);
  const std::vector<double> t = {0.0, 0.4, -0.6, 1.0};
  Rng rng(4);
  const uint64_t samples = 150000;
  std::vector<RunningStats> stats(d);
  for (uint64_t i = 0; i < samples; ++i) {
    const std::vector<double> out = mech.Perturb(t, &rng);
    for (uint32_t j = 0; j < d; ++j) stats[j].Add(out[j]);
  }
  for (uint32_t j = 0; j < d; ++j) {
    const double expected = mech.CoordinateVariance(t[j]);
    EXPECT_NEAR(stats[j].SampleVariance(), expected,
                expected * ldp::testing::VarianceRelTolerance(samples))
        << "coordinate " << j;
  }
}

}  // namespace
}  // namespace ldp
