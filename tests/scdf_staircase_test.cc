// Tests for the two piecewise-constant-noise baselines (SCDF and Staircase)
// and the shared PiecewiseConstantNoise machinery.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/piecewise_constant_noise.h"
#include "baselines/scdf.h"
#include "baselines/staircase.h"
#include "test_util.h"

namespace ldp {
namespace {

using ::ldp::testing::Integrate;
using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;
using ::ldp::testing::VarianceRelTolerance;

constexpr uint64_t kSamples = 200000;

class PiecewiseConstantNoiseTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, PiecewiseConstantNoiseTest,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

TEST_P(PiecewiseConstantNoiseTest, ScdfDensityIntegratesToOne) {
  const double eps = GetParam();
  const ScdfMechanism mech(eps);
  const auto& noise = mech.noise();
  // Integrate far enough into the tails that the truncated mass is tiny.
  const double integral = Integrate([&](double x) { return noise.Pdf(x); },
                                    -80.0 / eps, 80.0 / eps, 400000);
  // Tolerance is dominated by Simpson error at the step discontinuities.
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST_P(PiecewiseConstantNoiseTest, StaircaseDensityIntegratesToOne) {
  const double eps = GetParam();
  const StaircaseMechanism mech(eps);
  const auto& noise = mech.noise();
  const double integral = Integrate([&](double x) { return noise.Pdf(x); },
                                    -80.0 / eps, 80.0 / eps, 400000);
  // Tolerance is dominated by Simpson error at the step discontinuities.
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST_P(PiecewiseConstantNoiseTest, SamplesMatchDensityVariance) {
  const double eps = GetParam();
  const StaircaseMechanism mech(eps);
  Rng rng(1);
  RunningStats stats = SampleStats(
      kSamples, &rng, [&](Rng* r) { return mech.noise().Sample(r); });
  EXPECT_NEAR(stats.Mean(), 0.0, MeanTolerance(stats));
  EXPECT_NEAR(stats.SampleVariance(), mech.noise().Variance(),
              mech.noise().Variance() * VarianceRelTolerance(kSamples, 20.0));
}

TEST_P(PiecewiseConstantNoiseTest, DensityRatioBoundedForUnitShift) {
  // ε-LDP for inputs in [-1, 1] (diameter 2) needs
  // pdf(x) / pdf(x + 2) <= e^ε for all x; the step structure guarantees it.
  const double eps = GetParam();
  const ScdfMechanism scdf(eps);
  const StaircaseMechanism staircase(eps);
  for (const PiecewiseConstantNoise* noise :
       {&scdf.noise(), &staircase.noise()}) {
    for (double x = -20.0; x <= 20.0; x += 0.01) {
      const double ratio = noise->Pdf(x) / noise->Pdf(x + 2.0);
      EXPECT_LE(ratio, std::exp(eps) * (1.0 + 1e-9)) << "x=" << x;
    }
  }
}

TEST_P(PiecewiseConstantNoiseTest, MechanismLdpRatioOnShiftedInputs) {
  // Full mechanism check: output t + noise; density at x given t is
  // Pdf(x - t). Ratio across any t, t' in [-1, 1] must be <= e^ε.
  const double eps = GetParam();
  const ScdfMechanism mech(eps);
  for (double t1 = -1.0; t1 <= 1.0; t1 += 0.5) {
    for (double t2 = -1.0; t2 <= 1.0; t2 += 0.5) {
      for (double x = -10.0; x <= 10.0; x += 0.17) {
        const double ratio =
            mech.noise().Pdf(x - t1) / mech.noise().Pdf(x - t2);
        EXPECT_LE(ratio, std::exp(eps) * (1.0 + 1e-9));
      }
    }
  }
}

TEST(ScdfMechanismTest, PerturbIsUnbiased) {
  const ScdfMechanism mech(1.0);
  Rng rng(2);
  for (const double t : {-1.0, 0.0, 0.6}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, MeanTolerance(stats)) << "t=" << t;
  }
}

TEST(StaircaseMechanismTest, PerturbIsUnbiased) {
  const StaircaseMechanism mech(1.0);
  Rng rng(3);
  for (const double t : {-0.8, 0.0, 1.0}) {
    RunningStats stats = SampleStats(
        kSamples, &rng, [&](Rng* r) { return mech.Perturb(t, r); });
    EXPECT_NEAR(stats.Mean(), t, MeanTolerance(stats)) << "t=" << t;
  }
}

TEST(ScdfMechanismTest, VarianceIsInputIndependentAndUnbounded) {
  const ScdfMechanism mech(1.5);
  EXPECT_DOUBLE_EQ(mech.Variance(0.0), mech.Variance(0.9));
  EXPECT_DOUBLE_EQ(mech.WorstCaseVariance(), mech.Variance(0.0));
  EXPECT_TRUE(std::isinf(mech.OutputBound()));
  EXPECT_STREQ(mech.name(), "SCDF");
}

TEST(StaircaseMechanismTest, VarianceIsInputIndependentAndUnbounded) {
  const StaircaseMechanism mech(1.5);
  EXPECT_DOUBLE_EQ(mech.Variance(-0.3), mech.Variance(0.3));
  EXPECT_TRUE(std::isinf(mech.OutputBound()));
  EXPECT_STREQ(mech.name(), "Staircase");
}

TEST(ScdfMechanismTest, CentralWidthStaysWithinLdpBound) {
  // m <= 1 is required for ε-LDP with diameter-2 inputs.
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    EXPECT_LE(ScdfMechanism::ComputeM(eps), 1.0 + 1e-12) << "eps=" << eps;
    EXPECT_GT(ScdfMechanism::ComputeM(eps), 0.0);
  }
}

TEST(StaircaseMechanismTest, CentralWidthStaysWithinLdpBound) {
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    EXPECT_LE(StaircaseMechanism::ComputeM(eps), 1.0 + 1e-12);
    EXPECT_GT(StaircaseMechanism::ComputeM(eps), 0.0);
  }
}

TEST(ScdfStaircaseTest, BothBeatLaplaceVarianceAtSmallBudget) {
  // The motivation for these variants: tighter noise than Laplace's 8/ε² at
  // small ε.
  for (const double eps : {0.25, 0.5, 1.0}) {
    const double laplace = 8.0 / (eps * eps);
    EXPECT_LT(ScdfMechanism(eps).WorstCaseVariance(), laplace);
    EXPECT_LT(StaircaseMechanism(eps).WorstCaseVariance(), laplace);
  }
}

}  // namespace
}  // namespace ldp
