// Unit tests for the transport-agnostic pieces of src/net: endpoint spec
// parsing and the length-prefixed control-message codec — roundtrips, field
// bounds, and the hostile prefixes the connection loop must refuse
// (unknown types, oversized lengths, truncated payload structures).

#include <gtest/gtest.h>

#include <string>

#include "net/protocol.h"
#include "net/socket.h"
#include "stream/report_stream.h"
#include "util/status.h"

namespace ldp {
namespace {

TEST(NetProtocolTest, EndpointParseRoundTrips) {
  auto tcp = net::Endpoint::Parse("tcp:collector.example.org:7611");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp.value().kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp.value().host, "collector.example.org");
  EXPECT_EQ(tcp.value().port, 7611);
  EXPECT_EQ(tcp.value().ToString(), "tcp:collector.example.org:7611");

  auto uds = net::Endpoint::Parse("unix:/var/run/ldp.sock");
  ASSERT_TRUE(uds.ok());
  EXPECT_EQ(uds.value().kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(uds.value().path, "/var/run/ldp.sock");
  EXPECT_EQ(uds.value().ToString(), "unix:/var/run/ldp.sock");

  // IPv6 hosts contain colons and must be bracketed so the port is
  // unambiguous; ToString re-brackets for a clean round trip.
  auto v6 = net::Endpoint::Parse("tcp:[::1]:80");
  ASSERT_TRUE(v6.ok());
  EXPECT_EQ(v6.value().host, "::1");
  EXPECT_EQ(v6.value().port, 80);
  EXPECT_EQ(v6.value().ToString(), "tcp:[::1]:80");

  auto v6_full = net::Endpoint::Parse("tcp:[fe80::a:b]:7611");
  ASSERT_TRUE(v6_full.ok());
  EXPECT_EQ(v6_full.value().host, "fe80::a:b");
  EXPECT_EQ(v6_full.value().port, 7611);
}

TEST(NetProtocolTest, EndpointParseRejectsAmbiguousIpv6) {
  // Unbracketed multi-colon hosts are ambiguous — "tcp:::1:80" could be
  // host "::1" port 80 or host ":" port... — so they are refused outright
  // rather than guessed at.
  EXPECT_FALSE(net::Endpoint::Parse("tcp:::1:80").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:fe80::1:80").ok());
  // Malformed bracket forms.
  EXPECT_FALSE(net::Endpoint::Parse("tcp:[::1]80").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:[::1]:").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:[]:80").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:[::1:80").ok());
}

TEST(NetProtocolTest, EndpointParseRejectsMalformedSpecs) {
  EXPECT_FALSE(net::Endpoint::Parse("").ok());
  EXPECT_FALSE(net::Endpoint::Parse("http:host:1").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:hostonly").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:notaport").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:70000").ok());
  EXPECT_FALSE(net::Endpoint::Parse("unix:").ok());
}

TEST(NetProtocolTest, EndpointParsePortIsStrictlyDigits) {
  // strtoul-style parsing would tolerate all of these; the strict parser
  // refuses anything that is not 1-5 bare digits in range.
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host: 80").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:+80").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:-80").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:80 ").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:80x").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:0x50").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:008080").ok());  // 6 digits
  EXPECT_FALSE(net::Endpoint::Parse("tcp:host:65536").ok());
  EXPECT_FALSE(net::Endpoint::Parse("tcp:[::1]:+80").ok());

  // Boundary values that must still parse.
  auto max_port = net::Endpoint::Parse("tcp:host:65535");
  ASSERT_TRUE(max_port.ok());
  EXPECT_EQ(max_port.value().port, 65535);
  auto padded = net::Endpoint::Parse("tcp:host:00080");
  ASSERT_TRUE(padded.ok());
  EXPECT_EQ(padded.value().port, 80);
  // Port 0 parses (it is a valid *bind* spec: "pick a free port")...
  auto wildcard = net::Endpoint::Parse("tcp:host:0");
  ASSERT_TRUE(wildcard.ok());
  EXPECT_EQ(wildcard.value().port, 0);
  // ...but is refused as a *connect* target, where it can only be a
  // never-resolved endpoint.
  const auto refused = net::ConnectSocket(wildcard.value());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

TEST(NetProtocolTest, MessageHeaderRoundTripsAndBounds) {
  std::string wire;
  ASSERT_TRUE(
      net::AppendMessage(net::MessageType::kData, "abc", &wire).ok());
  ASSERT_EQ(wire.size(), net::kMessageHeaderBytes + 3);
  auto header =
      net::DecodeMessageHeader(wire.data(), net::kMessageHeaderBytes);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().type, net::MessageType::kData);
  EXPECT_EQ(header.value().payload_length, 3u);

  // Unknown type byte.
  std::string bogus = wire.substr(0, net::kMessageHeaderBytes);
  bogus[0] = '\x7F';
  EXPECT_FALSE(
      net::DecodeMessageHeader(bogus.data(), bogus.size()).ok());

  // A hostile length prefix above the bound must be rejected before any
  // buffering happens.
  std::string oversized = wire.substr(0, net::kMessageHeaderBytes);
  const uint32_t hostile = net::kMaxMessagePayload + 1;
  for (size_t i = 0; i < 4; ++i) {
    oversized[1 + i] = static_cast<char>(hostile >> (8 * i));
  }
  EXPECT_FALSE(
      net::DecodeMessageHeader(oversized.data(), oversized.size()).ok());

  // And AppendMessage refuses to produce one.
  std::string big(net::kMaxMessagePayload + 1, 'x');
  std::string out;
  EXPECT_FALSE(net::AppendMessage(net::MessageType::kData, big, &out).ok());
}

TEST(NetProtocolTest, HelloRoundTripsAndChecksVersion) {
  stream::StreamHeader header;
  header.kind = stream::ReportStreamKind::kMixed;
  header.epsilon = 4.0;
  header.dimension = 3;
  header.k = 1;
  header.schema_hash = 0xDEADBEEFCAFEF00DULL;

  // An unauthenticated HELLO stays on the legacy v2 layout — byte-identical
  // to the pre-identity release, so keyless fleets interoperate unchanged.
  net::HelloMessage hello;
  hello.ordinal = 17;
  hello.header_bytes = stream::EncodeStreamHeader(header);
  auto decoded = net::DecodeHello(net::EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, net::kLegacyProtocolVersion);
  EXPECT_EQ(decoded.value().ordinal, 17u);
  EXPECT_EQ(decoded.value().header_bytes, hello.header_bytes);
  EXPECT_TRUE(decoded.value().reporter_id.empty());
  EXPECT_TRUE(decoded.value().auth_tag.empty());

  // A future protocol version is refused, not guessed at.
  std::string wire = net::EncodeHello(hello);
  wire[0] = '\x63';
  EXPECT_FALSE(net::DecodeHello(wire).ok());

  // Truncated fixed fields.
  EXPECT_FALSE(net::DecodeHello(wire.substr(0, 5)).ok());
}

TEST(NetProtocolTest, AuthenticatedHelloRoundTripsV3) {
  stream::StreamHeader header;
  header.kind = stream::ReportStreamKind::kMixed;
  header.epsilon = 4.0;
  header.dimension = 3;
  header.k = 1;
  header.schema_hash = 7;

  net::HelloMessage hello;
  hello.channel = 5;
  hello.ordinal = 2;
  hello.reporter_id = "user-42";
  hello.header_bytes = stream::EncodeStreamHeader(header);
  hello.auth_tag = net::ComputeHelloTag("campaign-secret", hello.reporter_id,
                                        hello.channel, /*epoch=*/1,
                                        hello.header_bytes);
  ASSERT_EQ(hello.auth_tag.size(), net::kHelloAuthTagBytes);

  auto decoded = net::DecodeHello(net::EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, net::kProtocolVersion);
  EXPECT_EQ(decoded.value().channel, 5u);
  EXPECT_EQ(decoded.value().ordinal, 2u);
  EXPECT_EQ(decoded.value().reporter_id, "user-42");
  EXPECT_EQ(decoded.value().auth_tag, hello.auth_tag);
  EXPECT_EQ(decoded.value().header_bytes, hello.header_bytes);
}

TEST(NetProtocolTest, HelloRefusesHostileIdentityForms) {
  net::HelloMessage hello;
  hello.reporter_id = "user-42";
  hello.auth_tag.assign(net::kHelloAuthTagBytes, '\x5A');
  hello.header_bytes = "hdr";
  const std::string wire = net::EncodeHello(hello);

  // Truncations anywhere inside the identity section: mid id-length field,
  // mid id, mid tag.
  constexpr size_t kFixed = 2 + 4 + 4 + 8;  // version, channel, flags, ordinal
  EXPECT_FALSE(net::DecodeHello(wire.substr(0, kFixed + 1)).ok());
  EXPECT_FALSE(net::DecodeHello(wire.substr(0, kFixed + 2 + 3)).ok());
  EXPECT_FALSE(
      net::DecodeHello(
          wire.substr(0, kFixed + 2 + hello.reporter_id.size() + 10))
          .ok());

  // A v3 HELLO with a zero-length reporter id is malformed — anonymous
  // clients must speak v2 instead.
  std::string empty_id = wire;
  empty_id[kFixed] = 0;
  empty_id[kFixed + 1] = 0;
  EXPECT_FALSE(net::DecodeHello(empty_id).ok());

  // An id length above the protocol bound is refused before any allocation
  // could happen, even when the payload is long enough to back it.
  std::string oversized = wire;
  const uint16_t lying = net::kMaxReporterIdBytes + 1;
  oversized[kFixed] = static_cast<char>(lying & 0xFF);
  oversized[kFixed + 1] = static_cast<char>(lying >> 8);
  oversized.append(512, 'x');
  EXPECT_FALSE(net::DecodeHello(oversized).ok());

  // The longest legal id still round-trips.
  net::HelloMessage max_id;
  max_id.reporter_id.assign(net::kMaxReporterIdBytes, 'r');
  max_id.auth_tag.assign(net::kHelloAuthTagBytes, '\x01');
  max_id.header_bytes = "hdr";
  auto decoded = net::DecodeHello(net::EncodeHello(max_id));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().reporter_id, max_id.reporter_id);
}

TEST(NetProtocolTest, HelloTagBindsEveryField) {
  // The HMAC tag must change when any bound field changes — otherwise a
  // captured tag could be replayed onto another channel, epoch, identity,
  // or stream header, or verified under a different campaign key.
  const std::string base =
      net::ComputeHelloTag("key", "user-1", /*channel=*/0, /*epoch=*/0, "hdr");
  EXPECT_EQ(base.size(), net::kHelloAuthTagBytes);
  // Deterministic: same inputs, same tag.
  EXPECT_EQ(base,
            net::ComputeHelloTag("key", "user-1", 0, 0, "hdr"));
  EXPECT_NE(base, net::ComputeHelloTag("KEY", "user-1", 0, 0, "hdr"));
  EXPECT_NE(base, net::ComputeHelloTag("key", "user-2", 0, 0, "hdr"));
  EXPECT_NE(base, net::ComputeHelloTag("key", "user-1", 1, 0, "hdr"));
  EXPECT_NE(base, net::ComputeHelloTag("key", "user-1", 0, 1, "hdr"));
  EXPECT_NE(base, net::ComputeHelloTag("key", "user-1", 0, 0, "hdr2"));
  // Length-delimited canonicalization: shifting bytes between the id and
  // the header must not collide.
  EXPECT_NE(net::ComputeHelloTag("key", "ab", 0, 0, "c"),
            net::ComputeHelloTag("key", "a", 0, 0, "bc"));
}

TEST(NetProtocolTest, RepliesRoundTrip) {
  net::HelloOkMessage ok;
  ok.shard = 42;
  ok.epoch = 3;
  ok.resume_offset = 0xABCDEF0123ULL;
  auto ok_decoded = net::DecodeHelloOk(net::EncodeHelloOk(ok));
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_EQ(ok_decoded.value().shard, 42u);
  EXPECT_EQ(ok_decoded.value().epoch, 3u);
  EXPECT_EQ(ok_decoded.value().resume_offset, 0xABCDEF0123ULL);
  EXPECT_FALSE(net::DecodeHelloOk("short").ok());
  EXPECT_FALSE(
      net::DecodeHelloOk(net::EncodeHelloOk(ok) + "junk").ok());

  net::ShardClosedMessage closed;
  closed.code = static_cast<uint8_t>(StatusCode::kFailedPrecondition);
  closed.stats.bytes = 1234;
  closed.stats.frames = 50;
  closed.stats.accepted = 48;
  closed.stats.rejected = 2;
  closed.message = "stream ended inside a frame";
  auto closed_decoded =
      net::DecodeShardClosed(net::EncodeShardClosed(closed));
  ASSERT_TRUE(closed_decoded.ok());
  EXPECT_EQ(closed_decoded.value().code, closed.code);
  EXPECT_EQ(closed_decoded.value().stats.bytes, 1234u);
  EXPECT_EQ(closed_decoded.value().stats.frames, 50u);
  EXPECT_EQ(closed_decoded.value().stats.accepted, 48u);
  EXPECT_EQ(closed_decoded.value().stats.rejected, 2u);
  EXPECT_EQ(closed_decoded.value().message, closed.message);

  net::EpochAdvancedMessage epoch;
  epoch.code = 0;
  epoch.epoch = 6;
  auto epoch_decoded =
      net::DecodeEpochAdvanced(net::EncodeEpochAdvanced(epoch));
  ASSERT_TRUE(epoch_decoded.ok());
  EXPECT_EQ(epoch_decoded.value().epoch, 6u);
}

TEST(NetProtocolTest, MultiplexingFieldsRoundTrip) {
  // HELLO carries the channel id and flag bits that multiplex many shards
  // over one connection.
  net::HelloMessage hello;
  hello.channel = 0xC0FFEE;
  hello.flags = net::kHelloFlagDataAcks;
  hello.ordinal = 9;
  hello.header_bytes = "hdr";
  auto hello_decoded = net::DecodeHello(net::EncodeHello(hello));
  ASSERT_TRUE(hello_decoded.ok());
  EXPECT_EQ(hello_decoded.value().channel, 0xC0FFEEu);
  EXPECT_EQ(hello_decoded.value().flags, net::kHelloFlagDataAcks);
  EXPECT_EQ(hello_decoded.value().ordinal, 9u);

  // HELLO_OK and SHARD_CLOSED echo the channel so replies can be matched
  // out of order.
  net::HelloOkMessage ok;
  ok.channel = 0xC0FFEE;
  ok.shard = 5;
  auto ok_decoded = net::DecodeHelloOk(net::EncodeHelloOk(ok));
  ASSERT_TRUE(ok_decoded.ok());
  EXPECT_EQ(ok_decoded.value().channel, 0xC0FFEEu);

  net::ShardClosedMessage closed;
  closed.channel = 3;
  closed.code = 0;
  auto closed_decoded = net::DecodeShardClosed(net::EncodeShardClosed(closed));
  ASSERT_TRUE(closed_decoded.ok());
  EXPECT_EQ(closed_decoded.value().channel, 3u);

  net::CloseShardMessage close;
  close.channel = 7;
  auto close_decoded = net::DecodeCloseShard(net::EncodeCloseShard(close));
  ASSERT_TRUE(close_decoded.ok());
  EXPECT_EQ(close_decoded.value().channel, 7u);
  EXPECT_FALSE(net::DecodeCloseShard("abc").ok());  // truncated
  EXPECT_FALSE(
      net::DecodeCloseShard(net::EncodeCloseShard(close) + "x").ok());
}

TEST(NetProtocolTest, DataAckRoundTripsAndRefusesHostileForms) {
  net::DataAckMessage ack;
  ack.entries.push_back({0, 1024});
  ack.entries.push_back({17, 0xDEADBEEFULL});
  const std::string wire = net::EncodeDataAck(ack);
  auto decoded = net::DecodeDataAck(wire);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().entries.size(), 2u);
  EXPECT_EQ(decoded.value().entries[0].channel, 0u);
  EXPECT_EQ(decoded.value().entries[0].bytes, 1024u);
  EXPECT_EQ(decoded.value().entries[1].channel, 17u);
  EXPECT_EQ(decoded.value().entries[1].bytes, 0xDEADBEEFULL);

  // Truncated entry list, trailing garbage, and an entry count that
  // promises more entries than the payload holds.
  EXPECT_FALSE(net::DecodeDataAck(wire.substr(0, wire.size() - 1)).ok());
  EXPECT_FALSE(net::DecodeDataAck(wire + "x").ok());
  std::string lying = wire;
  lying[0] = '\x7F';  // count 2 -> 127
  EXPECT_FALSE(net::DecodeDataAck(lying).ok());

  net::DataAckMessage empty;
  auto empty_decoded = net::DecodeDataAck(net::EncodeDataAck(empty));
  ASSERT_TRUE(empty_decoded.ok());
  EXPECT_TRUE(empty_decoded.value().entries.empty());
}

TEST(NetProtocolTest, SnapshotRoundTripsAndRefusesHostileForms) {
  net::SnapshotMessage snap;
  snap.node = 7;
  snap.seq = 19;
  snap.epoch = 2;
  snap.snapshot_bytes = "LDPE-pretend-session-bytes";
  const std::string wire = net::EncodeSnapshot(snap);
  auto decoded = net::DecodeSnapshot(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().version, net::kProtocolVersion);
  EXPECT_EQ(decoded.value().node, 7u);
  EXPECT_EQ(decoded.value().seq, 19u);
  EXPECT_EQ(decoded.value().epoch, 2u);
  EXPECT_EQ(decoded.value().snapshot_bytes, snap.snapshot_bytes);

  // A future protocol version is refused, not guessed at.
  std::string future = wire;
  future[0] = '\x63';
  EXPECT_FALSE(net::DecodeSnapshot(future).ok());

  // Truncated fixed fields, truncated length-prefixed body, and trailing
  // garbage after the body are all framing violations.
  EXPECT_FALSE(net::DecodeSnapshot(wire.substr(0, 9)).ok());
  EXPECT_FALSE(net::DecodeSnapshot(wire.substr(0, wire.size() - 1)).ok());
  EXPECT_FALSE(net::DecodeSnapshot(wire + "x").ok());

  // A snapshot length prefix claiming more bytes than the payload holds.
  net::SnapshotMessage empty = snap;
  empty.snapshot_bytes.clear();
  std::string lying = net::EncodeSnapshot(empty);
  lying[lying.size() - 4] = '\x40';  // body length 0 -> 64, no body follows
  EXPECT_FALSE(net::DecodeSnapshot(lying).ok());

  net::SnapshotOkMessage ack;
  ack.node = 7;
  ack.seq = 19;
  auto ack_decoded = net::DecodeSnapshotOk(net::EncodeSnapshotOk(ack));
  ASSERT_TRUE(ack_decoded.ok());
  EXPECT_EQ(ack_decoded.value().node, 7u);
  EXPECT_EQ(ack_decoded.value().seq, 19u);
  EXPECT_FALSE(net::DecodeSnapshotOk("short").ok());
  EXPECT_FALSE(
      net::DecodeSnapshotOk(net::EncodeSnapshotOk(ack) + "!").ok());
}

TEST(NetProtocolTest, ErrorsCarryStatusAcrossTheWire) {
  const Status refusal = Status::FailedPrecondition(
      "stream schema hash does not match the collector's protocol");
  auto decoded = net::DecodeErrorMessage(net::EncodeError(refusal));
  ASSERT_TRUE(decoded.ok());
  const Status rebuilt =
      net::StatusFromWire(decoded.value().code, decoded.value().message);
  EXPECT_EQ(rebuilt.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(rebuilt.message(), refusal.message());

  // Unknown status codes from a hostile peer collapse to kInternal.
  EXPECT_EQ(net::StatusFromWire(250, "x").code(), StatusCode::kInternal);
  EXPECT_TRUE(net::StatusFromWire(0, "").ok());
}

TEST(NetProtocolTest, HeaderCompatibilityNamesTheFirstMismatch) {
  stream::StreamHeader expected;
  expected.kind = stream::ReportStreamKind::kMixed;
  expected.mechanism = MechanismKind::kHybrid;
  expected.oracle = FrequencyOracleKind::kOue;
  expected.epsilon = 4.0;
  expected.dimension = 3;
  expected.k = 1;
  expected.schema_hash = 99;

  EXPECT_TRUE(stream::CheckHeadersCompatible(expected, expected).ok());

  stream::StreamHeader wrong = expected;
  wrong.schema_hash = 100;
  const Status hash = stream::CheckHeadersCompatible(expected, wrong);
  EXPECT_EQ(hash.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(hash.message().find("schema hash"), std::string::npos);

  wrong = expected;
  wrong.epsilon = 5.0;
  EXPECT_NE(stream::CheckHeadersCompatible(expected, wrong)
                .message()
                .find("epsilon"),
            std::string::npos);

  wrong = expected;
  wrong.kind = stream::ReportStreamKind::kSampledNumeric;
  EXPECT_FALSE(stream::CheckHeadersCompatible(expected, wrong).ok());

  wrong = expected;
  wrong.oracle = FrequencyOracleKind::kGrr;
  EXPECT_FALSE(stream::CheckHeadersCompatible(expected, wrong).ok());

  wrong = expected;
  wrong.k = 2;
  EXPECT_FALSE(stream::CheckHeadersCompatible(expected, wrong).ok());
}

}  // namespace
}  // namespace ldp
