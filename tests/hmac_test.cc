// Pins the dependency-free SHA-256 / HMAC-SHA256 implementation to the
// published test vectors: FIPS 180-4 for the hash (empty, "abc", the
// two-block message, and a million 'a's through the incremental path) and
// RFC 4231 test cases 1-7 for the HMAC (covering short keys, the
// 131-byte key that must be hashed down, and truncated-output case 5's
// full-length tag). A constant-time-equality check rounds out the surface
// the authenticated-HELLO verifier depends on.

#include "util/hmac.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace ldp {
namespace {

std::string ToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const unsigned char b = static_cast<unsigned char>(c);
    hex.push_back(kDigits[b >> 4]);
    hex.push_back(kDigits[b & 0xf]);
  }
  return hex;
}

TEST(Sha256Test, Fips180Vectors) {
  EXPECT_EQ(
      ToHex(util::Sha256Digest("")),
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(
      ToHex(util::Sha256Digest("abc")),
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      ToHex(util::Sha256Digest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  // The FIPS long-message vector: one million 'a's, fed in uneven chunks so
  // the buffered/unbuffered compression paths both run.
  util::Sha256 hasher;
  const std::string chunk(997, 'a');  // prime-sized: exercises misalignment
  size_t remaining = 1000000;
  while (remaining > 0) {
    const size_t take = std::min(remaining, chunk.size());
    hasher.Update(chunk.data(), take);
    remaining -= take;
  }
  uint8_t digest[util::kSha256DigestBytes];
  hasher.Finish(digest);
  EXPECT_EQ(
      ToHex(std::string(reinterpret_cast<const char*>(digest),
                        util::kSha256DigestBytes)),
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacSha256Test, Rfc4231Vectors) {
  // Case 1: 20-byte 0x0b key, "Hi There".
  EXPECT_EQ(
      ToHex(util::HmacSha256(std::string(20, '\x0b'), "Hi There")),
      "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // Case 2: text key shorter than the block size.
  EXPECT_EQ(
      ToHex(util::HmacSha256("Jefe", "what do ya want for nothing?")),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Case 3: 20-byte 0xaa key, 50 bytes of 0xdd.
  EXPECT_EQ(
      ToHex(util::HmacSha256(std::string(20, '\xaa'), std::string(50, '\xdd'))),
      "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
  // Case 4: the 25-byte 0x01..0x19 key, 50 bytes of 0xcd.
  std::string counting_key;
  for (int i = 1; i <= 25; ++i) counting_key.push_back(static_cast<char>(i));
  EXPECT_EQ(
      ToHex(util::HmacSha256(counting_key, std::string(50, '\xcd'))),
      "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
  // Case 5 (RFC truncates to 128 bits; the full tag's prefix must match).
  EXPECT_EQ(ToHex(util::HmacSha256(std::string(20, '\x0c'),
                                   "Test With Truncation"))
                .substr(0, 32),
            "a3b6167473100ee06e0c796c2955552b");
  // Case 6: 131-byte key (hashed down to one block first).
  EXPECT_EQ(
      ToHex(util::HmacSha256(
          std::string(131, '\xaa'),
          "Test Using Larger Than Block-Size Key - Hash Key First")),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
  // Case 7: 131-byte key and a long message.
  EXPECT_EQ(
      ToHex(util::HmacSha256(
          std::string(131, '\xaa'),
          "This is a test using a larger than block-size key and a larger "
          "than block-size data. The key needs to be hashed before being "
          "used by the HMAC algorithm.")),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256Test, DistinctKeysDistinctTags) {
  const std::string message = "campaign HELLO bytes";
  EXPECT_NE(util::HmacSha256("key-a", message),
            util::HmacSha256("key-b", message));
  EXPECT_NE(util::HmacSha256("key-a", message),
            util::HmacSha256("key-a", message + "x"));
  EXPECT_EQ(util::HmacSha256("key-a", message).size(),
            util::kSha256DigestBytes);
}

TEST(ConstantTimeEqualTest, ComparesContentNotTiming) {
  EXPECT_TRUE(util::ConstantTimeEqual("", ""));
  EXPECT_TRUE(util::ConstantTimeEqual("same-bytes", "same-bytes"));
  EXPECT_FALSE(util::ConstantTimeEqual("same-bytes", "same-bytez"));
  EXPECT_FALSE(util::ConstantTimeEqual("short", "longer string"));
  // A flipped bit anywhere must fail, including in the first byte.
  std::string tag = util::HmacSha256("k", "m");
  std::string flipped = tag;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x01);
  EXPECT_FALSE(util::ConstantTimeEqual(tag, flipped));
  flipped = tag;
  flipped[tag.size() - 1] = static_cast<char>(flipped[tag.size() - 1] ^ 0x80);
  EXPECT_FALSE(util::ConstantTimeEqual(tag, flipped));
}

}  // namespace
}  // namespace ldp
