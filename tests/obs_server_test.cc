// obs/metrics_server.h end to end, plus the two contracts that make the
// telemetry subsystem trustworthy:
//
//  1. A live scrape during a socket campaign reports *exact* campaign
//     counts — reports accepted, shards merged, HELLOs accepted/refused —
//     equal to what the reporters shipped, not approximations.
//  2. Telemetry never perturbs results: identically-fed sessions with and
//     without a registry/journal produce bit-identical snapshots.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "net/client.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "obs/exposition.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "stream/report_stream.h"
#include "stream_corpus_util.h"

namespace ldp {
namespace {

using ldp::testing::kCorpusReports;
using ldp::testing::MakeCorpusPipeline;
using ldp::testing::MakeHonestStream;

net::Endpoint TcpEphemeral() {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kTcp;
  endpoint.host = "127.0.0.1";
  endpoint.port = 0;
  return endpoint;
}

net::Endpoint UdsEndpoint(const std::string& name) {
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kUnix;
  endpoint.path = "/tmp/ldp_obs_test_" + std::to_string(::getpid()) + "_" +
                  name + ".sock";
  return endpoint;
}

// One HTTP/1.0 GET: full response (status line + headers + body).
std::string HttpGet(const net::Endpoint& endpoint, const std::string& path) {
  auto socket = net::ConnectSocket(endpoint);
  EXPECT_TRUE(socket.ok()) << socket.status().ToString();
  if (!socket.ok()) return "";
  EXPECT_TRUE(socket.value().SendAll("GET " + path + " HTTP/1.0\r\n\r\n").ok());
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(socket.value().fd(), buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  return response;
}

std::string HttpBody(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

// Value of an unlabeled counter/gauge sample line in Prometheus text.
uint64_t ScrapedValue(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    if (text.compare(pos, needle.size(), needle) == 0) {
      return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
    }
    pos = end + 1;
  }
  ADD_FAILURE() << "metric not scraped: " << name << "\n" << text;
  return ~uint64_t{0};
}

TEST(ObsServer, ServesAllRoutesOverTcp) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ldp_test_scrapes_total")->Add(7);
  obs::EventJournal journal(64);
  journal.Record(obs::EventKind::kServerStart);

  auto server = obs::MetricsServer::Start(TcpEphemeral(), &registry, &journal);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const net::Endpoint endpoint = server.value()->endpoint();
  ASSERT_NE(endpoint.port, 0u);

  const std::string metrics = HttpGet(endpoint, "/metrics");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_EQ(ScrapedValue(HttpBody(metrics), "ldp_test_scrapes_total"), 7u);

  // The JSON route serves exactly the shared serializer's bytes — the same
  // bytes --metrics-out files and ldp_serve's exit stats carry.
  EXPECT_EQ(HttpBody(HttpGet(endpoint, "/metrics.json")),
            obs::ToJson(registry));
  EXPECT_EQ(HttpBody(HttpGet(endpoint, "/journal")), journal.ToJsonLines());
  EXPECT_EQ(HttpBody(HttpGet(endpoint, "/trace")), journal.ToChromeTrace());
  EXPECT_EQ(HttpBody(HttpGet(endpoint, "/healthz")), "ok\n");
  EXPECT_NE(HttpGet(endpoint, "/nope").find("404"), std::string::npos);

  server.value()->Stop();
}

TEST(ObsServer, ServesOverUnixDomainSocket) {
  obs::MetricsRegistry registry;
  registry.GetCounter("ldp_test_scrapes_total")->Add(3);
  auto server = obs::MetricsServer::Start(UdsEndpoint("routes"), &registry,
                                          /*journal=*/nullptr);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(ScrapedValue(HttpBody(HttpGet(server.value()->endpoint(),
                                          "/metrics")),
                         "ldp_test_scrapes_total"),
            3u);
  // Journal routes 404 when no journal is wired.
  EXPECT_NE(HttpGet(server.value()->endpoint(), "/journal").find("404"),
            std::string::npos);
  server.value()->Stop();
}

TEST(ObsServer, ScrapedCountersMatchCampaignExactly) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  constexpr size_t kShards = 3;
  std::vector<std::string> streams;
  for (size_t s = 0; s < kShards; ++s) {
    streams.push_back(MakeHonestStream(pipeline, /*seed=*/900 + s));
  }

  obs::MetricsRegistry registry;
  obs::EventJournal journal(1024);
  api::ServerSessionOptions session_options;
  session_options.metrics = &registry;
  session_options.journal = &journal;
  auto session = pipeline.NewServer(session_options);
  ASSERT_TRUE(session.ok());
  net::ReportServerOptions server_options;
  server_options.expected_shards = kShards;
  server_options.metrics = &registry;
  server_options.journal = &journal;
  auto server =
      net::ReportServer::Start(&session.value(), pipeline.header(),
                               UdsEndpoint("campaign"), server_options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const net::Endpoint collector = server.value()->endpoint();

  auto scrape = obs::MetricsServer::Start(TcpEphemeral(), &registry, &journal);
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();

  // The campaign: kShards honest reporters, sequential (no barrier stalls).
  for (size_t s = 0; s < kShards; ++s) {
    auto client = net::CollectorClient::Connect(collector, pipeline.header(),
                                                /*ordinal=*/s);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    ASSERT_TRUE(client.value()
                    .Send(streams[s].data() + stream::kStreamHeaderBytes,
                          streams[s].size() - stream::kStreamHeaderBytes)
                    .ok());
    auto summary = client.value().Close();
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_TRUE(summary.value().status.ok());
    EXPECT_EQ(summary.value().stats.accepted, kCorpusReports);
  }
  // Plus one reporter whose HELLO must be refused (ε mismatch).
  stream::StreamHeader wrong = pipeline.header();
  wrong.epsilon += 1.0;
  auto refused = net::CollectorClient::Connect(collector, wrong,
                                               /*ordinal=*/0);
  EXPECT_FALSE(refused.ok());

  // Live scrape, campaign still running: counts must be exact, not
  // eventually-consistent — every counter publish happens before the
  // CLOSE/refusal replies the reporters already saw.
  const std::string text =
      HttpBody(HttpGet(scrape.value()->endpoint(), "/metrics"));
  EXPECT_EQ(ScrapedValue(text, "ldp_ingest_reports_accepted_total"),
            kShards * kCorpusReports);
  EXPECT_EQ(ScrapedValue(text, "ldp_ingest_reports_rejected_total"), 0u);
  EXPECT_EQ(ScrapedValue(text, "ldp_net_connections_total"), kShards + 1);
  EXPECT_EQ(ScrapedValue(text, "ldp_net_hello_accepted_total"), kShards);
  EXPECT_EQ(ScrapedValue(text, "ldp_net_hello_refused_total"), 1u);
  EXPECT_EQ(ScrapedValue(text, "ldp_net_shards_merged_total"), kShards);
  EXPECT_EQ(ScrapedValue(text, "ldp_net_shards_abandoned_total"), 0u);
  EXPECT_EQ(ScrapedValue(text, "ldp_session_shards_opened_total"), kShards);
  EXPECT_EQ(ScrapedValue(text, "ldp_session_shards_closed_total"), kShards);

  // The server-side stats agree with the scrape (one source of truth).
  const net::ReportServerStats stats = server.value()->stats();
  EXPECT_EQ(stats.connections, kShards + 1);
  EXPECT_EQ(stats.shards_merged, kShards);
  EXPECT_EQ(stats.hello_rejected, 1u);

  // The journal saw the campaign's control-plane story.
  bool saw_refuse = false, saw_merge_exit = false;
  for (const obs::Event& event : journal.Events()) {
    saw_refuse |= event.kind == obs::EventKind::kHelloRefuse;
    saw_merge_exit |= event.kind == obs::EventKind::kMergeExit;
  }
  EXPECT_TRUE(saw_refuse);
  EXPECT_TRUE(saw_merge_exit);

  scrape.value()->Stop();
  server.value()->Stop(/*drain=*/true);
}

TEST(ObsServer, SnapshotBitIdenticalWithTelemetry) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  std::vector<std::string> streams;
  for (size_t s = 0; s < 4; ++s) {
    streams.push_back(MakeHonestStream(pipeline, /*seed=*/300 + s));
  }

  auto run = [&](bool telemetry) -> std::string {
    obs::MetricsRegistry registry;
    obs::EventJournal journal(256);
    api::ServerSessionOptions options;
    options.ingest_threads = 2;
    if (telemetry) {
      options.metrics = &registry;
      options.journal = &journal;
    }
    auto session = pipeline.NewServer(options);
    EXPECT_TRUE(session.ok());
    for (const std::string& stream : streams) {
      const size_t shard = session.value().OpenShard();
      EXPECT_TRUE(session.value().Feed(shard, stream).ok());
      EXPECT_TRUE(session.value().CloseShard(shard).ok());
    }
    if (telemetry) {
      // Sanity: the instrumentation actually ran in this configuration.
      EXPECT_EQ(
          registry.GetCounter("ldp_ingest_reports_accepted_total")->Value(),
          4 * kCorpusReports);
      EXPECT_GT(journal.recorded(), 0u);
    }
    return session.value().Snapshot();
  };

  const std::string with_telemetry = run(true);
  const std::string without_telemetry = run(false);
  EXPECT_EQ(with_telemetry, without_telemetry);
}

}  // namespace
}  // namespace ldp
