#include "frequency/olh.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frequency/histogram.h"
#include "test_util.h"

namespace ldp {
namespace {

TEST(OlhOracleTest, HashRangeIsRoundExpEpsilonPlusOne) {
  EXPECT_EQ(OlhOracle(1.0, 10).hash_range(),
            static_cast<uint32_t>(std::lround(std::exp(1.0))) + 1);
  EXPECT_EQ(OlhOracle(2.0, 10).hash_range(),
            static_cast<uint32_t>(std::lround(std::exp(2.0))) + 1);
  // Tiny budgets still get at least 2 buckets.
  EXPECT_GE(OlhOracle(0.05, 10).hash_range(), 2u);
}

TEST(OlhOracleTest, PMatchesGrrOverBuckets) {
  const double eps = 1.5;
  const OlhOracle oracle(eps, 10);
  const double e = std::exp(eps);
  const double g = oracle.hash_range();
  EXPECT_NEAR(oracle.p(), e / (e + g - 1.0), 1e-12);
  EXPECT_NEAR(oracle.q(), 1.0 / g, 1e-12);
}

TEST(OlhHashTest, IsDeterministic) {
  for (uint32_t v = 0; v < 50; ++v) {
    EXPECT_EQ(OlhOracle::HashToBucket(12345, v, 7),
              OlhOracle::HashToBucket(12345, v, 7));
  }
}

TEST(OlhHashTest, BucketsAreNearUniform) {
  const uint32_t range = 5;
  std::vector<int> counts(range, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[OlhOracle::HashToBucket(static_cast<uint64_t>(i) * 2654435761u,
                                     42, range)];
  }
  for (uint32_t b = 0; b < range; ++b) {
    EXPECT_NEAR(counts[b], trials / static_cast<double>(range),
                5.0 * std::sqrt(trials / static_cast<double>(range)));
  }
}

TEST(OlhOracleTest, ReportLayoutIsSeedAndBucket) {
  const OlhOracle oracle(1.0, 6);
  Rng rng(1);
  const auto report = oracle.Perturb(3, &rng);
  ASSERT_EQ(report.size(), 3u);
  EXPECT_LT(report[2], oracle.hash_range());
}

TEST(OlhOracleTest, ReportedBucketMatchesHashWithProbabilityP) {
  const OlhOracle oracle(1.0, 6);
  Rng rng(2);
  const int trials = 60000;
  int kept = 0;
  for (int i = 0; i < trials; ++i) {
    const auto report = oracle.Perturb(2, &rng);
    const uint64_t seed = static_cast<uint64_t>(report[0]) |
                          (static_cast<uint64_t>(report[1]) << 32);
    if (OlhOracle::HashToBucket(seed, 2, oracle.hash_range()) == report[2]) {
      ++kept;
    }
  }
  EXPECT_NEAR(kept / static_cast<double>(trials), oracle.p(), 0.01);
}

TEST(OlhOracleTest, SatisfiesLdpOnBucketReports) {
  // Given the (public) seed, the report is GRR over g buckets: the
  // probability ratio for any output bucket across inputs is at most
  // p / ((1-p)/(g-1)) = e^ε.
  const double eps = 1.1;
  const OlhOracle oracle(eps, 12);
  const double worst = oracle.p() /
                       ((1.0 - oracle.p()) / (oracle.hash_range() - 1.0));
  EXPECT_NEAR(worst, std::exp(eps), 1e-9);
}

class OlhEndToEndTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Budgets, OlhEndToEndTest,
                         ::testing::Values(0.5, 1.0, 2.0));

TEST_P(OlhEndToEndTest, FrequencyEstimatesAreUnbiased) {
  const double eps = GetParam();
  const OlhOracle oracle(eps, 8);
  Rng rng(3);
  const uint64_t n = 60000;
  std::vector<uint32_t> values;
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(rng.Bernoulli(0.5) ? 0u
                                        : static_cast<uint32_t>(
                                              rng.UniformIndex(8)));
  }
  std::vector<double> truth(8, 0.5 / 8.0);
  truth[0] += 0.5;
  const std::vector<double> est = EstimateFrequencies(oracle, values, &rng);
  const double tolerance =
      6.0 * std::sqrt(oracle.EstimateVariance(truth[0], n)) + 0.01;
  for (uint32_t v = 0; v < 8; ++v) {
    EXPECT_NEAR(est[v], truth[v], tolerance) << "v=" << v;
  }
}

TEST(OlhOracleTest, VarianceComparableToOue) {
  // With g = e^ε + 1 OLH matches OUE's variance; integer rounding of g keeps
  // it within a small factor.
  const double eps = 1.0;
  const OlhOracle olh(eps, 20);
  const double e = std::exp(eps);
  const double oue_var = 4.0 * e / (1000.0 * (e - 1.0) * (e - 1.0));
  EXPECT_NEAR(olh.EstimateVariance(0.0, 1000), oue_var, oue_var * 0.25);
}

}  // namespace
}  // namespace ldp
