#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ldp {
namespace {

TEST(RunningStatsTest, EmptyAccumulator) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.PopulationVariance(), 0.0);
  EXPECT_EQ(stats.SampleVariance(), 0.0);
  EXPECT_TRUE(std::isinf(stats.Min()));
  EXPECT_TRUE(std::isinf(stats.Max()));
}

TEST(RunningStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 4.0, -2.0, 8.0, 3.5};
  RunningStats stats;
  for (const double x : xs) stats.Add(x);
  double mean = 0.0;
  for (const double x : xs) mean += x;
  mean /= xs.size();
  double ss = 0.0;
  for (const double x : xs) ss += (x - mean) * (x - mean);
  EXPECT_EQ(stats.count(), xs.size());
  EXPECT_NEAR(stats.Mean(), mean, 1e-12);
  EXPECT_NEAR(stats.PopulationVariance(), ss / xs.size(), 1e-12);
  EXPECT_NEAR(stats.SampleVariance(), ss / (xs.size() - 1), 1e-12);
  EXPECT_NEAR(stats.StdDev(), std::sqrt(ss / (xs.size() - 1)), 1e-12);
  EXPECT_NEAR(stats.StdError(),
              std::sqrt(ss / (xs.size() - 1) / xs.size()), 1e-12);
  EXPECT_EQ(stats.Min(), -2.0);
  EXPECT_EQ(stats.Max(), 8.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_EQ(stats.Mean(), 3.0);
  EXPECT_EQ(stats.SampleVariance(), 0.0);
  EXPECT_EQ(stats.PopulationVariance(), 0.0);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  RunningStats left, right, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0;
    (i < 40 ? left : right).Add(x);
    all.Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.SampleVariance(), all.SampleVariance(), 1e-9);
  EXPECT_EQ(left.Min(), all.Min());
  EXPECT_EQ(left.Max(), all.Max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats stats, empty;
  stats.Add(1.0);
  stats.Add(2.0);
  stats.Merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_NEAR(stats.Mean(), 1.5, 1e-12);
  empty.Merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.Mean(), 1.5, 1e-12);
}

TEST(RunningStatsTest, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose all precision at offset 1e9.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.Add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(stats.PopulationVariance(), 0.25, 1e-6);
}

TEST(VectorMetricsTest, MeanOf) {
  EXPECT_EQ(MeanOf({}), 0.0);
  EXPECT_NEAR(MeanOf({1.0, 2.0, 6.0}), 3.0, 1e-12);
}

TEST(VectorMetricsTest, MeanSquaredError) {
  EXPECT_NEAR(MeanSquaredError({1.0, 2.0}, {0.0, 4.0}), (1.0 + 4.0) / 2.0,
              1e-12);
  EXPECT_EQ(MeanSquaredError({3.0}, {3.0}), 0.0);
}

TEST(VectorMetricsTest, MeanAbsoluteError) {
  EXPECT_NEAR(MeanAbsoluteError({1.0, -2.0}, {0.0, 2.0}), (1.0 + 4.0) / 2.0,
              1e-12);
}

TEST(VectorMetricsTest, MaxAbsoluteError) {
  EXPECT_NEAR(MaxAbsoluteError({1.0, -2.0, 5.0}, {0.0, 2.0, 5.5}), 4.0,
              1e-12);
}

}  // namespace
}  // namespace ldp
