// SUE and OUE (unary-encoding oracles).

#include <gtest/gtest.h>

#include <cmath>

#include "frequency/histogram.h"
#include "frequency/oue.h"
#include "frequency/sue.h"
#include "test_util.h"

namespace ldp {
namespace {

TEST(OueOracleTest, ProbabilitiesMatchFormulas) {
  const double eps = 1.4;
  const OueOracle oracle(eps, 6);
  EXPECT_DOUBLE_EQ(oracle.p(), 0.5);
  EXPECT_NEAR(oracle.q(), 1.0 / (std::exp(eps) + 1.0), 1e-12);
}

TEST(SueOracleTest, ProbabilitiesMatchFormulas) {
  const double eps = 1.4;
  const SueOracle oracle(eps, 6);
  const double e_half = std::exp(eps / 2.0);
  EXPECT_NEAR(oracle.p(), e_half / (e_half + 1.0), 1e-12);
  EXPECT_NEAR(oracle.q(), 1.0 - oracle.p(), 1e-12);
}

TEST(UnaryEncodingTest, PerBitFlipProbabilitiesSatisfyLdp) {
  // The whole-report privacy loss of unary encoding is driven by the single
  // differing bit pair: ratio = p(1−q) / (q(1−p)) must be <= e^ε.
  for (const double eps : {0.5, 1.0, 2.0, 4.0}) {
    const OueOracle oue(eps, 4);
    const SueOracle sue(eps, 4);
    EXPECT_LE(oue.p() * (1.0 - oue.q()) / (oue.q() * (1.0 - oue.p())),
              std::exp(eps) * (1.0 + 1e-9))
        << "OUE eps=" << eps;
    EXPECT_LE(sue.p() * (1.0 - sue.q()) / (sue.q() * (1.0 - sue.p())),
              std::exp(eps) * (1.0 + 1e-9))
        << "SUE eps=" << eps;
  }
}

TEST(UnaryEncodingTest, SueRatioIsExactlyExpEpsilon) {
  // SUE's symmetric choice meets the privacy bound with equality.
  const double eps = 1.3;
  const SueOracle sue(eps, 5);
  EXPECT_NEAR(sue.p() * (1.0 - sue.q()) / (sue.q() * (1.0 - sue.p())),
              std::exp(eps), 1e-9);
}

TEST(UnaryEncodingTest, OueRatioIsExactlyExpEpsilon) {
  const double eps = 1.3;
  const OueOracle oue(eps, 5);
  EXPECT_NEAR(oue.p() * (1.0 - oue.q()) / (oue.q() * (1.0 - oue.p())),
              std::exp(eps), 1e-9);
}

TEST(OueOracleTest, BitInclusionRatesMatchPq) {
  const OueOracle oracle(1.0, 5);
  Rng rng(1);
  const int trials = 100000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < trials; ++i) {
    for (const uint32_t bit : oracle.Perturb(3, &rng)) {
      ASSERT_LT(bit, 5u);
      ++counts[bit];
    }
  }
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), oracle.p(), 0.01);
  for (const int v : {0, 1, 2, 4}) {
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), oracle.q(), 0.01);
  }
}

TEST(OueOracleTest, ReportBitsAreSortedAndUnique) {
  const OueOracle oracle(0.5, 16);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const auto report = oracle.Perturb(7, &rng);
    for (size_t j = 1; j < report.size(); ++j) {
      EXPECT_LT(report[j - 1], report[j]);
    }
  }
}

TEST(UnaryEncodingTest, PerturbDispatchesOnQ) {
  // Small q (large ε): geometric gap skipping; the dispatch must be
  // stream-identical to PerturbSkip. Large q (small ε): dense per-bit.
  const OueOracle sparse(3.0, 16);  // q ≈ 0.047 <= 0.2
  ASSERT_LE(sparse.q(), UnaryEncodingOracle::kSkipSamplingMaxQ);
  Rng a(42), b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sparse.Perturb(5, &a), sparse.PerturbSkip(5, &b));
  }
  const OueOracle dense(1.0, 16);  // q ≈ 0.269 > 0.2
  ASSERT_GT(dense.q(), UnaryEncodingOracle::kSkipSamplingMaxQ);
  Rng c(43), d(43);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(dense.Perturb(5, &c), dense.PerturbPerBit(5, &d));
  }
}

TEST(UnaryEncodingTest, SkipSamplingReportsAreSortedUniqueAndInDomain) {
  const OueOracle oracle(4.0, 64);
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto report = oracle.PerturbSkip(31, &rng);
    for (size_t j = 0; j < report.size(); ++j) {
      ASSERT_LT(report[j], 64u);
      if (j > 0) ASSERT_LT(report[j - 1], report[j]);
    }
    ASSERT_TRUE(oracle.ValidateReport(report).ok());
  }
}

// Chi-square goodness of fit of a sampler's report distribution against the
// exact per-pattern probabilities Π p/(1−p), q/(1−q). Small domain so every
// one of the 2^d patterns is a cell.
double ReportPatternChiSquare(
    const UnaryEncodingOracle& oracle, uint32_t value, int trials,
    uint64_t seed,
    FrequencyOracle::Report (UnaryEncodingOracle::*sample)(uint32_t, Rng*)
        const) {
  const uint32_t d = oracle.domain_size();
  std::vector<int> counts(1u << d, 0);
  Rng rng(seed);
  for (int i = 0; i < trials; ++i) {
    uint32_t pattern = 0;
    for (const uint32_t bit : (oracle.*sample)(value, &rng)) {
      pattern |= 1u << bit;
    }
    ++counts[pattern];
  }
  double chi_square = 0.0;
  for (uint32_t pattern = 0; pattern < counts.size(); ++pattern) {
    double probability = 1.0;
    for (uint32_t bit = 0; bit < d; ++bit) {
      const double on = (bit == value) ? oracle.p() : oracle.q();
      probability *= (pattern & (1u << bit)) ? on : 1.0 - on;
    }
    const double expected = probability * trials;
    chi_square += (counts[pattern] - expected) * (counts[pattern] - expected) /
                  expected;
  }
  return chi_square;
}

TEST(UnaryEncodingTest, GeometricSkipMatchesPerBitDistributionChiSquare) {
  // ε = 2 ⇒ q ≈ 0.119: the dispatch uses the skip path, and every pattern
  // cell still gets enough mass for the chi-square approximation. 2^5 − 1 =
  // 31 degrees of freedom; the 99.9th percentile is ≈ 61.1. Both samplers
  // must fit the analytic distribution (seeds are fixed, so this is
  // deterministic).
  const OueOracle oracle(2.0, 5);
  ASSERT_LE(oracle.q(), UnaryEncodingOracle::kSkipSamplingMaxQ);
  const int trials = 200000;
  const double skip_fit = ReportPatternChiSquare(
      oracle, 3, trials, 1234, &UnaryEncodingOracle::PerturbSkip);
  const double per_bit_fit = ReportPatternChiSquare(
      oracle, 3, trials, 5678, &UnaryEncodingOracle::PerturbPerBit);
  EXPECT_LT(skip_fit, 61.1);
  EXPECT_LT(per_bit_fit, 61.1);
}

TEST(UnaryEncodingTest, SkipSamplingMarginalRatesMatchPq) {
  // Large sparse domain — the regime the sublinear sampler exists for.
  const double eps = 4.0;
  const uint32_t d = 256;
  const OueOracle oracle(eps, d);
  Rng rng(12);
  const int trials = 40000;
  std::vector<int> counts(d, 0);
  double total_bits = 0.0;
  for (int i = 0; i < trials; ++i) {
    for (const uint32_t bit : oracle.PerturbSkip(7, &rng)) {
      ++counts[bit];
    }
  }
  for (const int c : counts) total_bits += c;
  EXPECT_NEAR(counts[7] / static_cast<double>(trials), oracle.p(), 0.01);
  // Mean inclusion rate over the other d−1 bits.
  const double other_rate = (total_bits - counts[7]) /
                            (static_cast<double>(trials) * (d - 1));
  EXPECT_NEAR(other_rate, oracle.q(), 0.001);
}

class UnaryEndToEndTest
    : public ::testing::TestWithParam<std::tuple<double, uint32_t>> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, UnaryEndToEndTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 4.0),
                       ::testing::Values(2u, 8u, 32u)));

TEST_P(UnaryEndToEndTest, OueFrequencyEstimatesAreUnbiased) {
  const auto [eps, k] = GetParam();
  const OueOracle oracle(eps, k);
  Rng rng(3);
  const uint64_t n = 60000;
  // Skewed truth: value 0 holds 60%, the rest uniform.
  std::vector<uint32_t> values;
  std::vector<double> truth(k, 0.4 / (k - 1));
  truth[0] = 0.6;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.6)) {
      values.push_back(0);
    } else {
      values.push_back(1 + static_cast<uint32_t>(rng.UniformIndex(k - 1)));
    }
  }
  const std::vector<double> est = EstimateFrequencies(oracle, values, &rng);
  const double tolerance =
      6.0 * std::sqrt(oracle.EstimateVariance(0.6, n)) + 0.01;
  for (uint32_t v = 0; v < k; ++v) {
    EXPECT_NEAR(est[v], truth[v], tolerance) << "v=" << v;
  }
}

TEST(OueVsSueTest, OueHasLowerVarianceAtSmallFrequencies) {
  // The whole point of OUE: at f ≈ 0 its estimate variance
  // 4e^ε/(n(e^ε−1)²) beats SUE's.
  for (const double eps : {0.5, 1.0, 2.0}) {
    const OueOracle oue(eps, 10);
    const SueOracle sue(eps, 10);
    EXPECT_LT(oue.EstimateVariance(0.0, 1000),
              sue.EstimateVariance(0.0, 1000))
        << "eps=" << eps;
  }
}

TEST(OueOracleTest, VarianceAtZeroMatchesPaperFormula) {
  const double eps = 1.0;
  const uint64_t n = 1000;
  const OueOracle oracle(eps, 4);
  const double e = std::exp(eps);
  EXPECT_NEAR(oracle.EstimateVariance(0.0, n),
              4.0 * e / (n * (e - 1.0) * (e - 1.0)), 1e-12);
}

TEST(SueOracleTest, EndToEndEstimatesAreUnbiased) {
  const SueOracle oracle(1.0, 4);
  Rng rng(4);
  std::vector<uint32_t> values;
  const uint64_t n = 80000;
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(static_cast<uint32_t>(rng.UniformIndex(4)));
  }
  const std::vector<double> est = EstimateFrequencies(oracle, values, &rng);
  for (uint32_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(est[v], 0.25, 0.03) << "v=" << v;
  }
}

}  // namespace
}  // namespace ldp
