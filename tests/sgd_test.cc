#include "ml/sgd.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/evaluate.h"
#include "util/random.h"

namespace ldp::ml {
namespace {

// y = 0.8 x0 − 0.4 x1 + tiny noise: linear regression must recover the
// coefficients.
void FillLinearProblem(data::DesignMatrix* features,
                       std::vector<double>* labels, uint64_t n, Rng* rng) {
  for (uint64_t i = 0; i < n; ++i) {
    const double x0 = rng->Uniform(-1.0, 1.0);
    const double x1 = rng->Uniform(-1.0, 1.0);
    features->set(i, 0, x0);
    features->set(i, 1, x1);
    (*labels)[i] = 0.8 * x0 - 0.4 * x1 + rng->Gaussian(0.0, 0.01);
  }
}

// A linearly separable classification problem: sign(x0 + x1).
void FillSeparableProblem(data::DesignMatrix* features,
                          std::vector<double>* labels, uint64_t n, Rng* rng) {
  for (uint64_t i = 0; i < n; ++i) {
    const double x0 = rng->Uniform(-1.0, 1.0);
    const double x1 = rng->Uniform(-1.0, 1.0);
    features->set(i, 0, x0);
    features->set(i, 1, x1);
    (*labels)[i] = (x0 + x1 >= 0.0) ? 1.0 : -1.0;
  }
}

TEST(TrainSgdTest, ValidatesInputs) {
  data::DesignMatrix features(0, 2);
  std::vector<double> labels;
  EXPECT_FALSE(TrainSgd(features, labels, LossKind::kSquared, {}).ok());

  data::DesignMatrix some(3, 2);
  std::vector<double> wrong_size(2, 0.0);
  EXPECT_FALSE(TrainSgd(some, wrong_size, LossKind::kSquared, {}).ok());

  std::vector<double> ok_labels(3, 0.0);
  SgdOptions bad;
  bad.num_iterations = 0;
  EXPECT_FALSE(TrainSgd(some, ok_labels, LossKind::kSquared, bad).ok());
  bad = {};
  bad.batch_size = 0;
  EXPECT_FALSE(TrainSgd(some, ok_labels, LossKind::kSquared, bad).ok());
  bad = {};
  bad.learning_rate = 0.0;
  EXPECT_FALSE(TrainSgd(some, ok_labels, LossKind::kSquared, bad).ok());
}

TEST(TrainSgdTest, RecoversLinearRegressionCoefficients) {
  Rng rng(1);
  const uint64_t n = 5000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillLinearProblem(&features, &labels, n, &rng);

  SgdOptions options;
  options.num_iterations = 4000;
  options.batch_size = 32;
  options.learning_rate = 0.5;
  options.lambda = 1e-5;
  options.seed = 2;
  auto beta = TrainSgd(features, labels, LossKind::kSquared, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR(beta.value()[0], 0.8, 0.05);
  EXPECT_NEAR(beta.value()[1], -0.4, 0.05);
  EXPECT_LT(RegressionMse(features, labels, beta.value()), 0.005);
}

TEST(TrainSgdTest, LogisticSeparatesLinearlySeparableData) {
  Rng rng(3);
  const uint64_t n = 4000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillSeparableProblem(&features, &labels, n, &rng);

  SgdOptions options;
  options.num_iterations = 3000;
  options.seed = 4;
  auto beta = TrainSgd(features, labels, LossKind::kLogistic, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_LT(MisclassificationRate(features, labels, beta.value()), 0.05);
}

TEST(TrainSgdTest, HingeSeparatesLinearlySeparableData) {
  Rng rng(5);
  const uint64_t n = 4000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillSeparableProblem(&features, &labels, n, &rng);

  SgdOptions options;
  options.num_iterations = 3000;
  options.seed = 6;
  auto beta = TrainSgd(features, labels, LossKind::kHinge, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_LT(MisclassificationRate(features, labels, beta.value()), 0.05);
}

TEST(TrainSgdTest, DeterministicInSeed) {
  Rng rng(7);
  const uint64_t n = 500;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillLinearProblem(&features, &labels, n, &rng);
  SgdOptions options;
  options.num_iterations = 100;
  options.seed = 9;
  auto a = TrainSgd(features, labels, LossKind::kSquared, options);
  auto b = TrainSgd(features, labels, LossKind::kSquared, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(TrainSgdTest, StrongRegularizationShrinksModel) {
  Rng rng(8);
  const uint64_t n = 2000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillLinearProblem(&features, &labels, n, &rng);
  SgdOptions weak, strong;
  weak.lambda = 0.0;
  weak.seed = strong.seed = 10;
  strong.lambda = 10.0;
  auto beta_weak = TrainSgd(features, labels, LossKind::kSquared, weak);
  auto beta_strong = TrainSgd(features, labels, LossKind::kSquared, strong);
  ASSERT_TRUE(beta_weak.ok() && beta_strong.ok());
  const double norm_weak = std::abs(beta_weak.value()[0]) +
                           std::abs(beta_weak.value()[1]);
  const double norm_strong = std::abs(beta_strong.value()[0]) +
                             std::abs(beta_strong.value()[1]);
  EXPECT_LT(norm_strong, norm_weak / 2.0);
}

}  // namespace
}  // namespace ldp::ml
