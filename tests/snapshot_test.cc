#include "stream/snapshot.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/report_stream.h"
#include "util/random.h"

namespace ldp::stream {
namespace {

MixedTupleCollector MakeCollector(double epsilon = 6.0) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(4),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(6)},
      epsilon);
  EXPECT_TRUE(collector.ok());
  return std::move(collector).value();
}

MixedTuple SampleTuple() {
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.5);
  tuple[1] = AttributeValue::Categorical(1);
  tuple[2] = AttributeValue::Numeric(-0.25);
  tuple[3] = AttributeValue::Categorical(3);
  return tuple;
}

MixedAggregator FillAggregator(const MixedTupleCollector& collector,
                               int reports, uint64_t seed) {
  MixedAggregator aggregator(&collector);
  Rng rng(seed);
  for (int i = 0; i < reports; ++i) {
    aggregator.Add(collector.Perturb(SampleTuple(), &rng));
  }
  return aggregator;
}

void ExpectSameState(const MixedAggregator& a, const MixedAggregator& b) {
  EXPECT_EQ(a.num_reports(), b.num_reports());
  EXPECT_EQ(a.attribute_report_counts(), b.attribute_report_counts());
  EXPECT_EQ(a.numeric_sums(), b.numeric_sums());
  EXPECT_EQ(a.supports(), b.supports());
}

TEST(SnapshotTest, RoundTripsExactly) {
  const MixedTupleCollector collector = MakeCollector();
  const MixedAggregator original = FillAggregator(collector, 500, 11);
  const std::string bytes = EncodeAggregatorSnapshot(original);
  EXPECT_TRUE(LooksLikeSnapshot(bytes));
  auto decoded = DecodeAggregatorSnapshot(bytes, &collector);
  ASSERT_TRUE(decoded.ok());
  ExpectSameState(original, decoded.value());
  // Estimates are a pure function of the state: bit-identical too.
  EXPECT_EQ(original.EstimateMean(0).value(),
            decoded.value().EstimateMean(0).value());
  EXPECT_EQ(original.EstimateFrequencies(1).value(),
            decoded.value().EstimateFrequencies(1).value());
}

TEST(SnapshotTest, ConfigRoundTrips) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes =
      EncodeAggregatorSnapshot(FillAggregator(collector, 10, 1));
  auto config = DecodeSnapshotConfig(bytes);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().mechanism, collector.numeric_kind());
  EXPECT_EQ(config.value().oracle, collector.categorical_kind());
  EXPECT_EQ(config.value().epsilon, collector.epsilon());
  EXPECT_EQ(config.value().dimension, collector.dimension());
  EXPECT_EQ(config.value().k, collector.k());
  EXPECT_EQ(config.value().schema_hash, CollectorSchemaHash(collector));
}

TEST(SnapshotTest, MergeIsCommutative) {
  const MixedTupleCollector collector = MakeCollector();
  const MixedAggregator a = FillAggregator(collector, 300, 21);
  const MixedAggregator b = FillAggregator(collector, 200, 22);
  MixedAggregator ab = a;
  ASSERT_TRUE(ab.Merge(b).ok());
  MixedAggregator ba = b;
  ASSERT_TRUE(ba.Merge(a).ok());
  // Double addition is commutative, so the merged states match bit for bit.
  ExpectSameState(ab, ba);
}

TEST(SnapshotTest, MergeIsAssociativeOnEstimates) {
  const MixedTupleCollector collector = MakeCollector();
  const MixedAggregator a = FillAggregator(collector, 100, 31);
  const MixedAggregator b = FillAggregator(collector, 150, 32);
  const MixedAggregator c = FillAggregator(collector, 200, 33);

  MixedAggregator left = a;   // (a + b) + c
  ASSERT_TRUE(left.Merge(b).ok());
  ASSERT_TRUE(left.Merge(c).ok());
  MixedAggregator bc = b;     // a + (b + c)
  ASSERT_TRUE(bc.Merge(c).ok());
  MixedAggregator right = a;
  ASSERT_TRUE(right.Merge(bc).ok());

  // Counts and integer-valued supports associate exactly; floating-point
  // numeric sums associate to within rounding.
  EXPECT_EQ(left.num_reports(), right.num_reports());
  EXPECT_EQ(left.attribute_report_counts(), right.attribute_report_counts());
  EXPECT_EQ(left.supports(), right.supports());
  for (size_t j = 0; j < left.numeric_sums().size(); ++j) {
    EXPECT_NEAR(left.numeric_sums()[j], right.numeric_sums()[j], 1e-9);
  }
}

TEST(SnapshotTest, SnapshotMergeMatchesDirectMerge) {
  const MixedTupleCollector collector = MakeCollector();
  const MixedAggregator a = FillAggregator(collector, 250, 41);
  const MixedAggregator b = FillAggregator(collector, 350, 42);

  MixedAggregator direct = a;
  ASSERT_TRUE(direct.Merge(b).ok());

  auto a2 = DecodeAggregatorSnapshot(EncodeAggregatorSnapshot(a), &collector);
  auto b2 = DecodeAggregatorSnapshot(EncodeAggregatorSnapshot(b), &collector);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(b2.ok());
  MixedAggregator via_snapshots = std::move(a2).value();
  ASSERT_TRUE(via_snapshots.Merge(b2.value()).ok());
  ExpectSameState(direct, via_snapshots);
}

TEST(SnapshotTest, RejectsTruncationEverywhere) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes =
      EncodeAggregatorSnapshot(FillAggregator(collector, 40, 51));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        DecodeAggregatorSnapshot(bytes.substr(0, cut), &collector).ok())
        << cut;
  }
}

TEST(SnapshotTest, RejectsTrailingGarbage) {
  const MixedTupleCollector collector = MakeCollector();
  std::string bytes =
      EncodeAggregatorSnapshot(FillAggregator(collector, 40, 52));
  bytes.push_back('x');
  EXPECT_FALSE(DecodeAggregatorSnapshot(bytes, &collector).ok());
}

TEST(SnapshotTest, RejectsForeignCollector) {
  const MixedTupleCollector collector = MakeCollector(6.0);
  const std::string bytes =
      EncodeAggregatorSnapshot(FillAggregator(collector, 40, 53));
  // Different ε.
  const MixedTupleCollector other_epsilon = MakeCollector(5.0);
  EXPECT_FALSE(DecodeAggregatorSnapshot(bytes, &other_epsilon).ok());
  // Different schema (domain size changed).
  auto other_schema = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(5),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(6)},
      6.0);
  ASSERT_TRUE(other_schema.ok());
  EXPECT_FALSE(DecodeAggregatorSnapshot(bytes, &other_schema.value()).ok());
}

TEST(SnapshotTest, RejectsBadMagicAndVersion) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string good =
      EncodeAggregatorSnapshot(FillAggregator(collector, 4, 54));
  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeAggregatorSnapshot(bad_magic, &collector).ok());
  EXPECT_FALSE(LooksLikeSnapshot(bad_magic));
  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_FALSE(DecodeAggregatorSnapshot(bad_version, &collector).ok());
}

TEST(FromPartsTest, ValidatesShapesAndValues) {
  const MixedTupleCollector collector = MakeCollector();
  const uint32_t d = collector.dimension();
  std::vector<uint64_t> counts(d, 5);
  std::vector<double> sums(d, 0.0);
  std::vector<std::vector<double>> supports(d);
  supports[1].assign(4, 1.0);
  supports[3].assign(6, 1.0);

  EXPECT_TRUE(MixedAggregator::FromParts(&collector, 10, counts, sums,
                                         supports)
                  .ok());
  // Wrong vector lengths.
  EXPECT_FALSE(MixedAggregator::FromParts(
                   &collector, 10, std::vector<uint64_t>(d - 1, 0), sums,
                   supports)
                   .ok());
  // Support size not matching the domain.
  auto bad_supports = supports;
  bad_supports[1].push_back(0.0);
  EXPECT_FALSE(MixedAggregator::FromParts(&collector, 10, counts, sums,
                                          bad_supports)
                   .ok());
  // Support present at a numeric position.
  bad_supports = supports;
  bad_supports[0].assign(2, 0.0);
  EXPECT_FALSE(MixedAggregator::FromParts(&collector, 10, counts, sums,
                                          bad_supports)
                   .ok());
  // Attribute count exceeding the total.
  auto bad_counts = counts;
  bad_counts[2] = 11;
  EXPECT_FALSE(MixedAggregator::FromParts(&collector, 10, bad_counts, sums,
                                          supports)
                   .ok());
  // Non-finite sums.
  auto bad_sums = sums;
  bad_sums[0] = std::nan("");
  EXPECT_FALSE(MixedAggregator::FromParts(&collector, 10, counts, bad_sums,
                                          supports)
                   .ok());
}

}  // namespace
}  // namespace ldp::stream
