// The Algorithm-4 numeric stream path: the zero-copy frame decoder, the
// NumericAggregator and its snapshot codec, numeric ShardIngester streams,
// and the headline parity contract — a sharded numeric run through
// api::ServerSession reproduces the in-process Pipeline::Collect simulation
// BIT FOR BIT on an all-numeric schema (the mixed collector and Algorithm 4
// draw the same randomness there), while adversarial frames are rejected
// without aborting the stream.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/numeric_aggregator.h"
#include "core/wire.h"
#include "data/dataset.h"
#include "stream/aggregator_handle.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "stream/snapshot.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

// The retired CollectProposed wrapper, inlined over the session facade.
Result<api::CollectionOutput> CollectProposed(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    MechanismKind numeric_kind = MechanismKind::kHybrid,
    FrequencyOracleKind oracle_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr) {
  api::PipelineConfig config;
  config.epsilon = epsilon;
  config.mechanism = numeric_kind;
  config.oracle = oracle_kind;
  LDP_ASSIGN_OR_RETURN(config.attributes,
                       api::AttributesFromSchema(dataset.schema()));
  Result<api::Pipeline> pipeline =
      api::Pipeline::Create(std::move(config));
  if (!pipeline.ok()) return pipeline.status();
  return pipeline.value().Collect(dataset, seed, pool);
}


constexpr double kEpsilon = 8.0;  // k = 3 of 4: multi-entry reports
constexpr uint32_t kDimension = 4;
constexpr uint64_t kSeed = 7;
constexpr uint64_t kRows = 2000;

data::Dataset MakeNumericData() {
  std::vector<data::ColumnSpec> columns;
  for (uint32_t j = 0; j < kDimension; ++j) {
    columns.push_back(
        data::ColumnSpec::Numeric("x" + std::to_string(j), -1.0, 1.0));
  }
  auto schema = data::Schema::Create(std::move(columns));
  EXPECT_TRUE(schema.ok());
  data::Dataset dataset(schema.value());
  dataset.Resize(kRows);
  Rng rng(42);
  for (uint64_t row = 0; row < kRows; ++row) {
    for (uint32_t j = 0; j < kDimension; ++j) {
      dataset.set_numeric(row, j, rng.Uniform(-1.0, 1.0));
    }
  }
  return dataset;
}

SampledNumericMechanism MakeMechanism() {
  auto mechanism = SampledNumericMechanism::Create(MechanismKind::kHybrid,
                                                   kEpsilon, kDimension);
  EXPECT_TRUE(mechanism.ok());
  return std::move(mechanism).value();
}

TEST(NumericFrameDecoderTest, MatchesMaterializingDecoder) {
  const SampledNumericMechanism mechanism = MakeMechanism();
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const SampledNumericReport report =
        mechanism.Perturb({0.5, -0.25, 0.0, 1.0}, &rng);
    const std::string bytes = EncodeSampledNumericReport(report);
    auto decoded = DecodeSampledNumericReport(bytes, mechanism);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), report.size());
    for (size_t e = 0; e < report.size(); ++e) {
      EXPECT_EQ(decoded.value()[e].attribute, report[e].attribute);
      EXPECT_EQ(decoded.value()[e].value, report[e].value);
    }
  }
}

TEST(NumericFrameDecoderTest, SinkSeesNothingOnInvalidFrames) {
  const SampledNumericMechanism mechanism = MakeMechanism();
  NumericAggregator aggregator(&mechanism);
  NumericFrameDecoder decoder(&mechanism);
  Rng rng(2);
  const std::string good = EncodeSampledNumericReport(
      mechanism.Perturb({0.5, -0.25, 0.0, 1.0}, &rng));

  // Truncations at every cut never reach the sink.
  for (size_t cut = 0; cut < good.size(); ++cut) {
    EXPECT_FALSE(
        decoder.DecodeInto(good.data(), cut, &aggregator).ok());
  }
  // Trailing bytes, wrong entry count, out-of-range pieces.
  std::string trailing = good;
  trailing.push_back('\0');
  EXPECT_FALSE(
      decoder.DecodeInto(trailing.data(), trailing.size(), &aggregator).ok());
  const std::string too_few =
      EncodeSampledNumericReport({{0, 0.5}});
  EXPECT_FALSE(
      decoder.DecodeInto(too_few.data(), too_few.size(), &aggregator).ok());
  const std::string bad_attribute =
      EncodeSampledNumericReport({{0, 0.5}, {99, 0.5}, {1, 0.5}});
  EXPECT_FALSE(decoder
                   .DecodeInto(bad_attribute.data(), bad_attribute.size(),
                               &aggregator)
                   .ok());
  const std::string bad_value =
      EncodeSampledNumericReport({{0, 0.5}, {1, 1e9}, {2, 0.5}});
  EXPECT_FALSE(
      decoder.DecodeInto(bad_value.data(), bad_value.size(), &aggregator)
          .ok());
  const std::string duplicate =
      EncodeSampledNumericReport({{0, 0.5}, {0, 0.5}, {1, 0.5}});
  EXPECT_FALSE(
      decoder.DecodeInto(duplicate.data(), duplicate.size(), &aggregator)
          .ok());
  EXPECT_EQ(aggregator.num_reports(), 0u);

  // And the good frame still decodes afterwards.
  EXPECT_TRUE(decoder.DecodeInto(good.data(), good.size(), &aggregator).ok());
  EXPECT_EQ(aggregator.num_reports(), 1u);
}

TEST(NumericAggregatorTest, SnapshotRoundTripsAndValidates) {
  const SampledNumericMechanism mechanism = MakeMechanism();
  NumericAggregator aggregator(&mechanism);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    aggregator.Add(mechanism.Perturb({0.25, 0.5, -0.75, 0.0}, &rng));
  }
  const std::string bytes =
      stream::EncodeNumericAggregatorSnapshot(aggregator, MechanismKind::kHybrid);
  EXPECT_TRUE(stream::LooksLikeNumericSnapshot(bytes));
  EXPECT_FALSE(stream::LooksLikeSnapshot(bytes));

  auto decoded = stream::DecodeNumericAggregatorSnapshot(
      bytes, &mechanism, MechanismKind::kHybrid);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().num_reports(), aggregator.num_reports());
  EXPECT_EQ(decoded.value().sums(), aggregator.sums());
  EXPECT_EQ(decoded.value().attribute_report_counts(),
            aggregator.attribute_report_counts());

  // The generic config peek tags the kind.
  auto config = stream::DecodeSnapshotConfig(bytes);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().kind, stream::ReportStreamKind::kSampledNumeric);

  // Mismatched mechanism kind, truncation, and cross-kind decodes fail.
  EXPECT_FALSE(stream::DecodeNumericAggregatorSnapshot(
                   bytes, &mechanism, MechanismKind::kPiecewise)
                   .ok());
  EXPECT_FALSE(stream::DecodeNumericAggregatorSnapshot(
                   bytes.substr(0, bytes.size() - 1), &mechanism,
                   MechanismKind::kHybrid)
                   .ok());
  auto other = SampledNumericMechanism::Create(MechanismKind::kHybrid,
                                               kEpsilon, kDimension + 1);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(stream::DecodeNumericAggregatorSnapshot(
                   bytes, &other.value(), MechanismKind::kHybrid)
                   .ok());
}

// Writes rows [range.begin, range.end) as one framed numeric stream via the
// client session.
std::string WriteNumericShard(const data::Dataset& dataset,
                              const api::ClientSession& client,
                              IndexRange range) {
  std::string shard = client.EncodeHeader();
  std::vector<double> row(dataset.schema().num_columns(), 0.0);
  for (uint64_t r = range.begin; r < range.end; ++r) {
    for (uint32_t j = 0; j < row.size(); ++j) {
      row[j] = dataset.numeric(r, j);
    }
    Rng rng = api::UserRng(kSeed, r);
    auto payload = client.EncodeReport(row, &rng);
    EXPECT_TRUE(payload.ok());
    EXPECT_TRUE(stream::AppendFrame(payload.value(), &shard).ok());
  }
  return shard;
}

TEST(NumericStreamTest, ShardedServerSessionReproducesCollectProposed) {
  const data::Dataset dataset = MakeNumericData();
  // Shard boundaries mirror the pooled run's ParallelFor chunks (threads×4),
  // and shards merge in order — the same bit-reproduction contract the mixed
  // stream path has had since PR 1.
  constexpr unsigned kPoolThreads = 2;
  ThreadPool pool(kPoolThreads);
  auto expected = CollectProposed(dataset, kEpsilon, kSeed,
                                             MechanismKind::kHybrid,
                                             FrequencyOracleKind::kOue, &pool);
  ASSERT_TRUE(expected.ok());

  auto config = api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  ASSERT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());
  ASSERT_EQ(pipeline.value().stream_kind(),
            stream::ReportStreamKind::kSampledNumeric);
  auto client = pipeline.value().NewClient();
  ASSERT_TRUE(client.ok());
  auto server = pipeline.value().NewServer();
  ASSERT_TRUE(server.ok());

  // >= 2 shards, fed byte-at-a-time boundaries via 1000-byte chunks, closed
  // in order.
  const std::vector<IndexRange> ranges =
      SplitRange(kRows, kPoolThreads * 4);
  ASSERT_GE(ranges.size(), 2u);
  for (const IndexRange& range : ranges) {
    const std::string bytes =
        WriteNumericShard(dataset, client.value(), range);
    const size_t shard = server.value().OpenShard();
    for (size_t offset = 0; offset < bytes.size(); offset += 1000) {
      const size_t take = std::min<size_t>(1000, bytes.size() - offset);
      ASSERT_TRUE(
          server.value().Feed(shard, bytes.data() + offset, take).ok());
    }
    ASSERT_TRUE(server.value().CloseShard(shard).ok());
  }

  auto reports = server.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kRows);
  for (size_t j = 0; j < expected.value().numeric_columns.size(); ++j) {
    auto mean = server.value().EstimateMean(
        expected.value().numeric_columns[j], 0);
    ASSERT_TRUE(mean.ok());
    EXPECT_EQ(mean.value(), expected.value().estimated_means[j])
        << "attribute " << j;
  }
}

TEST(NumericStreamTest, TwoEpochNumericSessionMatchesCollectAndSumsEpsilon) {
  const data::Dataset dataset = MakeNumericData();
  auto config = api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  ASSERT_TRUE(config.ok());
  config.value().plan.epochs = 2;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());
  auto client = pipeline.value().NewClient();
  ASSERT_TRUE(client.ok());
  auto server = pipeline.value().NewServer();
  ASSERT_TRUE(server.ok());
  api::ServerSession& session = server.value();

  constexpr unsigned kPoolThreads = 2;
  constexpr uint64_t kEpochSeeds[] = {kSeed, kSeed + 1};
  const std::vector<IndexRange> ranges =
      SplitRange(kRows, kPoolThreads * 4);
  ASSERT_GE(ranges.size(), 2u);
  for (uint32_t epoch = 0; epoch < 2; ++epoch) {
    if (epoch > 0) {
      ASSERT_TRUE(session.AdvanceEpoch().ok());
    }
    for (const IndexRange& range : ranges) {
      std::string shard_bytes = client.value().EncodeHeader();
      std::vector<double> row(kDimension, 0.0);
      for (uint64_t r = range.begin; r < range.end; ++r) {
        for (uint32_t j = 0; j < kDimension; ++j) {
          row[j] = dataset.numeric(r, j);
        }
        Rng rng = api::UserRng(kEpochSeeds[epoch], r);
        auto payload = client.value().EncodeReport(row, &rng);
        ASSERT_TRUE(payload.ok());
        ASSERT_TRUE(stream::AppendFrame(payload.value(), &shard_bytes).ok());
      }
      const size_t shard = session.OpenShard();
      ASSERT_TRUE(session.Feed(shard, shard_bytes).ok());
      ASSERT_TRUE(session.CloseShard(shard).ok());
    }
  }

  // The accountant reports the summed spend of both epochs, and a third
  // epoch is refused.
  EXPECT_EQ(session.epsilon_spent(), 2 * kEpsilon);
  EXPECT_FALSE(session.AdvanceEpoch().ok());

  ThreadPool pool(kPoolThreads);
  for (uint32_t epoch = 0; epoch < 2; ++epoch) {
    auto expected = CollectProposed(
        dataset, kEpsilon, kEpochSeeds[epoch], MechanismKind::kHybrid,
        FrequencyOracleKind::kOue, &pool);
    ASSERT_TRUE(expected.ok());
    auto reports = session.num_reports(epoch);
    ASSERT_TRUE(reports.ok());
    EXPECT_EQ(reports.value(), kRows);
    for (size_t j = 0; j < expected.value().numeric_columns.size(); ++j) {
      auto mean = session.EstimateMean(
          expected.value().numeric_columns[j], epoch);
      ASSERT_TRUE(mean.ok());
      EXPECT_EQ(mean.value(), expected.value().estimated_means[j])
          << "epoch " << epoch << " attribute " << j;
    }
  }
}

TEST(NumericStreamTest, AdversarialFramesRejectedWithoutAbortingTheStream) {
  const data::Dataset dataset = MakeNumericData();
  auto config = api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  ASSERT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());
  auto client = pipeline.value().NewClient();
  ASSERT_TRUE(client.ok());

  std::string shard =
      WriteNumericShard(dataset, client.value(), IndexRange{0, 100});
  // A truncated numeric payload (half a report) framed as a whole frame, and
  // a frame that is a mixed-report payload rather than a numeric one: both
  // must bump `rejected` and leave the stream alive.
  Rng rng(5);
  const std::string good = EncodeSampledNumericReport(
      pipeline.value().numeric_mechanism()->Perturb({0.1, 0.2, 0.3, 0.4},
                                                    &rng));
  ASSERT_TRUE(
      stream::AppendFrame(good.substr(0, good.size() / 2), &shard).ok());
  ASSERT_TRUE(stream::AppendFrame("not a numeric report", &shard).ok());
  ASSERT_TRUE(stream::AppendFrame(good, &shard).ok());

  stream::ShardIngester ingester(pipeline.value().numeric_mechanism(),
                                 MechanismKind::kHybrid);
  ASSERT_TRUE(ingester.Feed(shard).ok());
  ASSERT_TRUE(ingester.Finish().ok());
  EXPECT_EQ(ingester.stats().accepted, 101u);
  EXPECT_EQ(ingester.stats().rejected, 2u);
  EXPECT_EQ(ingester.numeric_aggregator().num_reports(), 101u);
}

TEST(NumericStreamTest, WrongStreamKindHeaderIsRejectedUpFront) {
  const data::Dataset dataset = MakeNumericData();
  auto schema = api::AttributesFromSchema(dataset.schema());
  ASSERT_TRUE(schema.ok());
  auto collector =
      MixedTupleCollector::Create(std::move(schema).value(), kEpsilon);
  ASSERT_TRUE(collector.ok());
  const SampledNumericMechanism mechanism = MakeMechanism();

  // A mixed-kind stream fed to a numeric ingester (and vice versa) fails
  // header validation before any frame is decoded.
  const std::string mixed_header = stream::EncodeStreamHeader(
      stream::MakeMixedStreamHeader(collector.value()));
  stream::ShardIngester numeric_ingester(&mechanism, MechanismKind::kHybrid);
  EXPECT_FALSE(numeric_ingester.Feed(mixed_header).ok());

  const std::string numeric_header = stream::EncodeStreamHeader(
      stream::MakeNumericStreamHeader(mechanism, MechanismKind::kHybrid));
  stream::ShardIngester mixed_ingester(&collector.value());
  EXPECT_FALSE(mixed_ingester.Feed(numeric_header).ok());
}

TEST(NumericStreamTest, HandleDriverIngestsNumericShardsInParallel) {
  const data::Dataset dataset = MakeNumericData();
  auto config = api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  ASSERT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());
  auto client = pipeline.value().NewClient();
  ASSERT_TRUE(client.ok());

  constexpr unsigned kPoolThreads = 2;
  std::vector<std::string> shards;
  for (const IndexRange& range : SplitRange(kRows, kPoolThreads * 4)) {
    shards.push_back(WriteNumericShard(dataset, client.value(), range));
  }
  const stream::NumericAggregatorHandle prototype(
      pipeline.value().numeric_mechanism(), MechanismKind::kHybrid);
  std::vector<stream::HandleShardSource> sources;
  for (size_t s = 0; s < shards.size(); ++s) {
    sources.push_back(stream::HandleStreamBufferSource(
        prototype, "shard " + std::to_string(s), &shards[s],
        stream::ShardIngester::Options()));
  }
  ThreadPool pool(3);
  stream::MultiShardSummary summary;
  auto total =
      stream::IngestHandleSources(prototype, sources, &pool, &summary);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value()->num_reports(), kRows);
  EXPECT_EQ(summary.total_reports, kRows);
  EXPECT_EQ(summary.total_rejected, 0u);

  ThreadPool collect_pool(kPoolThreads);
  auto expected = CollectProposed(dataset, kEpsilon, kSeed,
                                             MechanismKind::kHybrid,
                                             FrequencyOracleKind::kOue,
                                             &collect_pool);
  ASSERT_TRUE(expected.ok());
  for (size_t j = 0; j < expected.value().numeric_columns.size(); ++j) {
    auto mean =
        total.value()->EstimateMean(expected.value().numeric_columns[j]);
    ASSERT_TRUE(mean.ok());
    EXPECT_EQ(mean.value(), expected.value().estimated_means[j]);
  }
}

}  // namespace
}  // namespace ldp
