// Kill-point tests for the write-ahead frame log (relay/frame_wal.h). Each
// test drives the ShardDurabilityHook exactly the way ReportServer does
// (record first, session call second), "crashes" by abandoning the log
// mid-conversation, and then replays the directory into a fresh session.
// The contract under test: replay reconstructs the pre-crash session bit
// for bit — same Snapshot(), same merge order — a torn tail at EOF is
// truncated away, and a CRC-corrupt record poisons only its own shard.

#include <gtest/gtest.h>
#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "net/client.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "relay/frame_wal.h"
#include "stream/report_stream.h"
#include "stream_corpus_util.h"

namespace ldp {
namespace {

using ldp::testing::kCorpusReports;
using ldp::testing::MakeCorpusPipeline;
using ldp::testing::MakeHonestStream;

// A fresh, empty WAL directory per test.
std::string TestWalDir(const std::string& name) {
  const std::string dir =
      "/tmp/ldp_wal_test_" + std::to_string(::getpid()) + "_" + name;
  DIR* handle = ::opendir(dir.c_str());
  if (handle != nullptr) {
    while (dirent* entry = ::readdir(handle)) {
      const std::string file = entry->d_name;
      if (file == "." || file == "..") continue;
      ::unlink((dir + "/" + file).c_str());
    }
    ::closedir(handle);
  }
  return dir;
}

std::vector<std::string> ListWalFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* handle = ::opendir(dir.c_str());
  EXPECT_NE(handle, nullptr);
  while (dirent* entry = ::readdir(handle)) {
    const std::string file = entry->d_name;
    if (file.rfind("wal-", 0) == 0) files.push_back(dir + "/" + file);
  }
  ::closedir(handle);
  std::sort(files.begin(), files.end());
  return files;
}

size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.is_open()) << path;
  return static_cast<size_t>(in.tellg());
}

// One logged shard conversation, hook-before-session like ReportServer.
void PlayShard(relay::FrameWal* wal, api::ServerSession* session,
               const std::string& stream, uint64_t ordinal,
               size_t* shard_out = nullptr) {
  const std::string header = stream.substr(0, stream::kStreamHeaderBytes);
  const size_t shard = session->OpenShard();
  wal->OnShardOpen(shard, ordinal, session->current_epoch(),
                   /*reporter_id=*/"", header);
  ASSERT_TRUE(session->Feed(shard, header).ok());
  const char* data = stream.data() + stream::kStreamHeaderBytes;
  const size_t size = stream.size() - stream::kStreamHeaderBytes;
  // Two DATA messages, splitting inside a frame: replay must reassemble.
  const size_t half = size / 2;
  wal->OnShardData(shard, data, half);
  ASSERT_TRUE(session->Feed(shard, data, half).ok());
  wal->OnShardData(shard, data + half, size - half);
  ASSERT_TRUE(session->Feed(shard, data + half, size - half).ok());
  if (shard_out != nullptr) *shard_out = shard;
}

TEST(WalTest, Crc32MatchesTheIeeeCheckValue) {
  EXPECT_EQ(relay::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(relay::Crc32("", 0), 0u);
  // Chaining via the seed equals one pass over the concatenation.
  const uint32_t first = relay::Crc32("12345", 5);
  EXPECT_EQ(relay::Crc32("6789", 4, first), 0xCBF43926u);
}

TEST(WalTest, ReplayReproducesTheSessionExactly) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  std::vector<std::string> streams;
  for (uint64_t s = 0; s < 3; ++s) {
    streams.push_back(MakeHonestStream(pipeline, 900 + s));
  }
  const std::string dir = TestWalDir("replay_exact");

  auto logged = pipeline.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(empty.shards_replayed, 0u);

  // Merge in NON-ordinal order (1, 0, 2): close_seq, not the file name,
  // must carry the merge order through the crash.
  std::vector<size_t> shards(3);
  for (uint64_t s = 0; s < 3; ++s) {
    PlayShard(wal.value().get(), &logged.value(), streams[s], s, &shards[s]);
  }
  for (const size_t s : {1, 0, 2}) {
    wal.value()->OnShardClose(shards[s]);
    ASSERT_TRUE(logged.value().CloseShard(shards[s]).ok());
  }
  const std::string reference = logged.value().Snapshot();
  wal.value().reset();  // "crash": every record is already on disk

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 3u);
  EXPECT_EQ(summary.shards_resumed, 0u);
  EXPECT_EQ(summary.shards_corrupt, 0u);
  EXPECT_EQ(summary.truncated_tails, 0u);
  EXPECT_EQ(summary.frames_replayed, 6u);  // two DATA records per shard
  EXPECT_EQ(summary.completed_ordinals.size(), 3u);
  EXPECT_TRUE(summary.resume_shards.empty());
  EXPECT_EQ(replayed.value().Snapshot(), reference);
  auto reports = replayed.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 3 * kCorpusReports);
}

TEST(WalTest, OpenShardBecomesAResumeEntryWithExactDurableBytes) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string closed_stream = MakeHonestStream(pipeline, 910);
  const std::string open_stream = MakeHonestStream(pipeline, 911);
  const std::string dir = TestWalDir("resume");

  auto logged = pipeline.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok());

  size_t done = 0;
  PlayShard(wal.value().get(), &logged.value(), closed_stream, 0, &done);
  wal.value()->OnShardClose(done);
  ASSERT_TRUE(logged.value().CloseShard(done).ok());

  // Ordinal 1 crashes mid-shard: header plus a partial DATA chunk that
  // ends inside a frame.
  const std::string header =
      open_stream.substr(0, stream::kStreamHeaderBytes);
  const char* data = open_stream.data() + stream::kStreamHeaderBytes;
  const size_t total = open_stream.size() - stream::kStreamHeaderBytes;
  const size_t partial = total / 3 + 1;
  const size_t open_shard = logged.value().OpenShard();
  wal.value()->OnShardOpen(open_shard, /*ordinal=*/1,
                           logged.value().current_epoch(),
                           /*reporter_id=*/"", header);
  ASSERT_TRUE(logged.value().Feed(open_shard, header).ok());
  wal.value()->OnShardData(open_shard, data, partial);
  ASSERT_TRUE(logged.value().Feed(open_shard, data, partial).ok());
  wal.value().reset();  // crash with ordinal 1 open

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 1u);
  EXPECT_EQ(summary.shards_resumed, 1u);
  ASSERT_EQ(summary.resume_shards.count(1), 1u);
  EXPECT_EQ(summary.resume_shards.at(1).durable_bytes, partial);
  EXPECT_EQ(summary.completed_ordinals.count(0), 1u);
  EXPECT_EQ(summary.completed_ordinals.count(1), 0u);

  // Finishing the resumed shard from the durable offset lands exactly
  // where an uninterrupted run would have.
  const size_t resumed = summary.resume_shards.at(1).shard;
  ASSERT_TRUE(
      replayed.value().Feed(resumed, data + partial, total - partial).ok());
  ASSERT_TRUE(replayed.value().CloseShard(resumed).ok());

  auto direct = pipeline.NewServer();
  ASSERT_TRUE(direct.ok());
  for (const std::string& stream : {closed_stream, open_stream}) {
    const size_t shard = direct.value().OpenShard();
    ASSERT_TRUE(direct.value().Feed(shard, stream).ok());
    ASSERT_TRUE(direct.value().CloseShard(shard).ok());
  }
  EXPECT_EQ(replayed.value().Snapshot(), direct.value().Snapshot());
}

TEST(WalTest, TornTailIsTruncatedAndTheShardStillResumes) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream = MakeHonestStream(pipeline, 920);
  const std::string dir = TestWalDir("torn_tail");

  auto logged = pipeline.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok());
  PlayShard(wal.value().get(), &logged.value(), stream, /*ordinal=*/0);
  wal.value().reset();

  // The crash interrupted a record write: a dangling record header claiming
  // payload that never made it to disk.
  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  const size_t intact = FileSize(files[0]);
  {
    std::ofstream out(files[0],
                      std::ios::binary | std::ios::app | std::ios::ate);
    const char torn[] = {0x02, 0x40, 0x00, 0x00, 0x00};  // DATA, len 64
    out.write(torn, sizeof(torn));
  }
  ASSERT_EQ(FileSize(files[0]), intact + 5);

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.truncated_tails, 1u);
  EXPECT_EQ(summary.shards_corrupt, 0u);
  EXPECT_EQ(summary.shards_resumed, 1u);
  ASSERT_EQ(summary.resume_shards.count(0), 1u);
  EXPECT_EQ(summary.resume_shards.at(0).durable_bytes,
            stream.size() - stream::kStreamHeaderBytes);
  // The tail is gone from disk, so a second replay sees a clean file.
  EXPECT_EQ(FileSize(files[0]), intact);
}

TEST(WalTest, CorruptRecordPoisonsOnlyItsShard) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string poisoned_stream = MakeHonestStream(pipeline, 930);
  const std::string honest_stream = MakeHonestStream(pipeline, 931);
  const std::string dir = TestWalDir("corrupt");

  auto logged = pipeline.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok());
  size_t shard = 0;
  PlayShard(wal.value().get(), &logged.value(), poisoned_stream, 0, &shard);
  wal.value()->OnShardClose(shard);
  ASSERT_TRUE(logged.value().CloseShard(shard).ok());
  PlayShard(wal.value().get(), &logged.value(), honest_stream, 1, &shard);
  wal.value()->OnShardClose(shard);
  ASSERT_TRUE(logged.value().CloseShard(shard).ok());
  wal.value().reset();

  // Flip one byte inside ordinal 0's logged header record payload: the
  // record is complete, so this is corruption, not a torn tail.
  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), 2u);  // sorted: e00000-o00000 first
  {
    const std::streamoff offset = static_cast<std::streamoff>(
        relay::kWalFileHeaderBytes + relay::kWalRecordHeaderBytes + 3);
    std::fstream out(files[0],
                     std::ios::binary | std::ios::in | std::ios::out);
    char byte = 0;
    out.seekg(offset);
    out.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0xFF);
    out.seekp(offset);
    out.write(&byte, 1);
    ASSERT_TRUE(out.good());
  }

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_corrupt, 1u);
  EXPECT_EQ(summary.shards_replayed, 1u);
  EXPECT_EQ(summary.truncated_tails, 0u);
  EXPECT_EQ(summary.completed_ordinals.count(0), 0u);
  EXPECT_EQ(summary.completed_ordinals.count(1), 1u);

  // The epoch holds exactly the honest shard's contribution.
  auto direct = pipeline.NewServer();
  ASSERT_TRUE(direct.ok());
  const size_t only = direct.value().OpenShard();
  ASSERT_TRUE(direct.value().Feed(only, honest_stream).ok());
  ASSERT_TRUE(direct.value().CloseShard(only).ok());
  EXPECT_EQ(replayed.value().Snapshot(), direct.value().Snapshot());
}

TEST(WalTest, AbandonedShardReplaysToNothing) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string abandoned_stream = MakeHonestStream(pipeline, 940);
  const std::string kept_stream = MakeHonestStream(pipeline, 941);
  const std::string dir = TestWalDir("abandon");

  auto logged = pipeline.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok());
  size_t shard = 0;
  PlayShard(wal.value().get(), &logged.value(), abandoned_stream, 0, &shard);
  wal.value()->OnShardAbandon(shard);
  ASSERT_TRUE(logged.value().AbandonShard(shard).ok());
  PlayShard(wal.value().get(), &logged.value(), kept_stream, 1, &shard);
  wal.value()->OnShardClose(shard);
  ASSERT_TRUE(logged.value().CloseShard(shard).ok());
  const std::string reference = logged.value().Snapshot();
  wal.value().reset();

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 1u);
  EXPECT_EQ(summary.shards_resumed, 0u);
  EXPECT_EQ(summary.shards_corrupt, 0u);
  EXPECT_EQ(replayed.value().Snapshot(), reference);
  auto reports = replayed.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kCorpusReports);
}

TEST(WalTest, ReopeningTheLogContinuesGenerationsAndCloseOrder) {
  // A restart that keeps collecting: FrameWal::Open replays, adopts the
  // resumable shard file, and new appends land after the old records —
  // a second crash/replay must see one continuous history.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream = MakeHonestStream(pipeline, 950);
  const std::string dir = TestWalDir("reopen");
  const std::string header = stream.substr(0, stream::kStreamHeaderBytes);
  const char* data = stream.data() + stream::kStreamHeaderBytes;
  const size_t total = stream.size() - stream::kStreamHeaderBytes;
  const size_t partial = total / 2;

  {
    auto logged = pipeline.NewServer();
    ASSERT_TRUE(logged.ok());
    relay::WalReplaySummary empty;
    auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                     relay::FrameWal::Options(), &empty);
    ASSERT_TRUE(wal.ok());
    const size_t shard = logged.value().OpenShard();
    wal.value()->OnShardOpen(shard, /*ordinal=*/0,
                             logged.value().current_epoch(),
                             /*reporter_id=*/"", header);
    ASSERT_TRUE(logged.value().Feed(shard, header).ok());
    wal.value()->OnShardData(shard, data, partial);
    ASSERT_TRUE(logged.value().Feed(shard, data, partial).ok());
  }  // first crash

  {
    auto restarted = pipeline.NewServer();
    ASSERT_TRUE(restarted.ok());
    relay::WalReplaySummary summary;
    auto wal = relay::FrameWal::Open(dir, &restarted.value(),
                                     relay::FrameWal::Options(), &summary);
    ASSERT_TRUE(wal.ok());
    ASSERT_EQ(summary.shards_resumed, 1u);
    const net::ResumedShard resumed = summary.resume_shards.at(0);
    EXPECT_EQ(resumed.durable_bytes, partial);
    // The reporter reconnects and ships only what was not yet durable.
    wal.value()->OnShardData(resumed.shard, data + partial, total - partial);
    ASSERT_TRUE(restarted.value()
                    .Feed(resumed.shard, data + partial, total - partial)
                    .ok());
    wal.value()->OnShardClose(resumed.shard);
    ASSERT_TRUE(restarted.value().CloseShard(resumed.shard).ok());
  }  // second crash, after the close record

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 1u);
  EXPECT_EQ(summary.shards_resumed, 0u);

  auto direct = pipeline.NewServer();
  ASSERT_TRUE(direct.ok());
  const size_t shard = direct.value().OpenShard();
  ASSERT_TRUE(direct.value().Feed(shard, stream).ok());
  ASSERT_TRUE(direct.value().CloseShard(shard).ok());
  EXPECT_EQ(replayed.value().Snapshot(), direct.value().Snapshot());
}

TEST(WalTest, ServerResumeHandshakeContinuesACrashedCampaign) {
  // The full wire loop: a crashed collector's WAL is replayed behind a
  // restarted ReportServer; the reporter's HELLO re-attaches to the
  // replayed shard, HELLO_OK tells it how many bytes are already durable,
  // and shipping only the remainder completes the campaign exactly.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string done_stream = MakeHonestStream(pipeline, 970);
  const std::string cut_stream = MakeHonestStream(pipeline, 971);
  const std::string dir = TestWalDir("net_resume");
  const std::string header =
      cut_stream.substr(0, stream::kStreamHeaderBytes);
  const char* data = cut_stream.data() + stream::kStreamHeaderBytes;
  const size_t total = cut_stream.size() - stream::kStreamHeaderBytes;
  const size_t partial = total / 2 + 7;

  {  // The crashed run: ordinal 0 closed, ordinal 1 cut mid-stream.
    auto logged = pipeline.NewServer();
    ASSERT_TRUE(logged.ok());
    relay::WalReplaySummary empty;
    auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                     relay::FrameWal::Options(), &empty);
    ASSERT_TRUE(wal.ok());
    size_t shard = 0;
    PlayShard(wal.value().get(), &logged.value(), done_stream, 0, &shard);
    wal.value()->OnShardClose(shard);
    ASSERT_TRUE(logged.value().CloseShard(shard).ok());
    const size_t cut = logged.value().OpenShard();
    wal.value()->OnShardOpen(cut, /*ordinal=*/1,
                             logged.value().current_epoch(),
                             /*reporter_id=*/"", header);
    ASSERT_TRUE(logged.value().Feed(cut, header).ok());
    wal.value()->OnShardData(cut, data, partial);
    ASSERT_TRUE(logged.value().Feed(cut, data, partial).ok());
  }

  // The restarted collector, WAL wired into the server options the way
  // ldp_serve --wal-dir does it.
  auto session = pipeline.NewServer();
  ASSERT_TRUE(session.ok());
  relay::WalReplaySummary summary;
  auto wal = relay::FrameWal::Open(dir, &session.value(),
                                   relay::FrameWal::Options(), &summary);
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ(summary.shards_resumed, 1u);
  net::ReportServerOptions options;
  options.expected_shards = 2;
  options.wal = wal.value().get();
  options.resume_shards = summary.resume_shards;
  options.completed_ordinals = summary.completed_ordinals;
  net::Endpoint endpoint;
  endpoint.kind = net::Endpoint::Kind::kUnix;
  endpoint.path = dir + ".sock";
  auto server = net::ReportServer::Start(&session.value(), pipeline.header(),
                                         endpoint, options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // The pre-crash-completed ordinal is refused as a duplicate.
  auto replayed_dup = net::CollectorClient::Connect(
      server.value()->endpoint(), pipeline.header(), /*ordinal=*/0);
  EXPECT_FALSE(replayed_dup.ok());

  auto client = net::CollectorClient::Connect(server.value()->endpoint(),
                                              pipeline.header(),
                                              /*ordinal=*/1);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client.value().resume_offset(), partial);
  // Ship only the remainder, as ldp_report's sink does with the offset.
  ASSERT_TRUE(client.value().Send(data + partial, total - partial).ok());
  auto closed = client.value().Close();
  ASSERT_TRUE(closed.ok()) << closed.status().ToString();
  EXPECT_TRUE(closed.value().status.ok());
  server.value()->Stop(/*drain=*/true);

  auto direct = pipeline.NewServer();
  ASSERT_TRUE(direct.ok());
  for (const std::string& stream : {done_stream, cut_stream}) {
    const size_t shard = direct.value().OpenShard();
    ASSERT_TRUE(direct.value().Feed(shard, stream).ok());
    ASSERT_TRUE(direct.value().CloseShard(shard).ok());
  }
  EXPECT_EQ(session.value().Snapshot(), direct.value().Snapshot());
}

TEST(WalTest, HeaderMismatchAgainstExpectedPoisonsTheShard) {
  const api::Pipeline mixed = MakeCorpusPipeline(/*numeric=*/false);
  const api::Pipeline numeric = MakeCorpusPipeline(/*numeric=*/true);
  const std::string stream = MakeHonestStream(numeric, 960);
  const std::string dir = TestWalDir("expected");

  auto logged = numeric.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok());
  size_t shard = 0;
  PlayShard(wal.value().get(), &logged.value(), stream, 0, &shard);
  wal.value()->OnShardClose(shard);
  ASSERT_TRUE(logged.value().CloseShard(shard).ok());
  wal.value().reset();

  // Replaying under the wrong collector protocol refuses the shard rather
  // than feeding incompatible bytes.
  auto replayed = mixed.NewServer();
  ASSERT_TRUE(replayed.ok());
  const stream::StreamHeader expected = mixed.header();
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), &expected, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 0u);
  EXPECT_EQ(summary.shards_corrupt, 1u);
  auto reports = replayed.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(WalTest, ReplayRestoresTheReporterLedgerExactly) {
  // The reporter id rides in the v2 kHeader record so replay re-charges
  // the same (reporter, epoch) cell the live run charged. After the crash
  // the restored session must match the pre-crash one bit for bit — the
  // v2 snapshot embeds the ledger section, so equality pins the spend.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string dir = TestWalDir("reporter_ledger");
  const std::vector<std::string> streams = {MakeHonestStream(pipeline, 920),
                                            MakeHonestStream(pipeline, 921)};

  auto logged = pipeline.NewServer();
  ASSERT_TRUE(logged.ok());
  relay::WalReplaySummary empty;
  auto wal = relay::FrameWal::Open(dir, &logged.value(),
                                   relay::FrameWal::Options(), &empty);
  ASSERT_TRUE(wal.ok());
  // alice ships both shards: charged once, logged twice.
  for (uint64_t s = 0; s < streams.size(); ++s) {
    const std::string header =
        streams[s].substr(0, stream::kStreamHeaderBytes);
    auto opened = logged.value().OpenShard("alice");
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    const size_t shard = opened.value();
    wal.value()->OnShardOpen(shard, s, logged.value().current_epoch(),
                             /*reporter_id=*/"alice", header);
    ASSERT_TRUE(logged.value().Feed(shard, streams[s]).ok());
    wal.value()->OnShardData(shard,
                             streams[s].data() + stream::kStreamHeaderBytes,
                             streams[s].size() - stream::kStreamHeaderBytes);
    wal.value()->OnShardClose(shard);
    ASSERT_TRUE(logged.value().CloseShard(shard).ok());
  }
  EXPECT_EQ(logged.value().accountant().Spent("alice"),
            pipeline.header().epsilon);
  const std::string reference = logged.value().Snapshot();
  wal.value().reset();  // crash

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 2u);
  EXPECT_EQ(replayed.value().accountant().Spent("alice"),
            pipeline.header().epsilon);
  EXPECT_EQ(replayed.value().accountant().num_charged_reporters(), 2u);
  EXPECT_EQ(replayed.value().Snapshot(), reference);

  // Replay-after-replay is idempotent, not a double spend.
  relay::WalReplaySummary again;
  auto twice = pipeline.NewServer();
  ASSERT_TRUE(twice.ok());
  ASSERT_TRUE(
      relay::ReplayWalDir(dir, &twice.value(), nullptr, nullptr, &again)
          .ok());
  EXPECT_EQ(twice.value().accountant().Spent("alice"),
            pipeline.header().epsilon);
}

TEST(WalTest, LegacyV1LogReplaysAsTheAnonymousReporter) {
  // A log written before reporter ids existed: version 1 in the file
  // header, kHeader payload = bare stream-header bytes. Craft one byte by
  // byte (framing documented in relay/frame_wal.h) and replay it.
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string stream = MakeHonestStream(pipeline, 930);
  const std::string dir = TestWalDir("legacy_v1");
  ::mkdir(dir.c_str(), 0755);

  auto put16 = [](std::string* out, uint16_t v) {
    out->push_back(static_cast<char>(v & 0xff));
    out->push_back(static_cast<char>(v >> 8));
  };
  auto put32 = [](std::string* out, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  auto put64 = [&put32](std::string* out, uint64_t v) {
    put32(out, static_cast<uint32_t>(v));
    put32(out, static_cast<uint32_t>(v >> 32));
  };
  auto append_record = [&](std::string* out, uint8_t type,
                           const std::string& payload) {
    std::string head;
    head.push_back(static_cast<char>(type));
    put32(&head, static_cast<uint32_t>(payload.size()));
    uint32_t crc = relay::Crc32(head.data(), head.size());
    crc = relay::Crc32(payload.data(), payload.size(), crc);
    out->append(head);
    put32(out, crc);
    out->append(payload);
  };

  std::string file;
  put32(&file, relay::kWalMagic);
  put16(&file, relay::kWalLegacyVersion);
  put32(&file, 0);  // epoch
  put64(&file, 0);  // ordinal
  append_record(&file, /*kHeader=*/1,
                stream.substr(0, stream::kStreamHeaderBytes));
  append_record(&file, /*kData=*/2,
                stream.substr(stream::kStreamHeaderBytes));
  std::string close_payload;
  put64(&close_payload, 1);  // close_seq
  append_record(&file, /*kClose=*/3, close_payload);
  {
    std::ofstream out(dir + "/wal-e00000-o00000-g00001.ldpw",
                      std::ios::binary);
    ASSERT_TRUE(out.is_open());
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
  }

  auto replayed = pipeline.NewServer();
  ASSERT_TRUE(replayed.ok());
  relay::WalReplaySummary summary;
  ASSERT_TRUE(relay::ReplayWalDir(dir, &replayed.value(), nullptr, nullptr,
                                  &summary)
                  .ok());
  EXPECT_EQ(summary.shards_replayed, 1u);
  EXPECT_EQ(summary.shards_corrupt, 0u);
  auto reports = replayed.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kCorpusReports);
  // No identity in the log: only the anonymous plan ledger exists.
  EXPECT_EQ(replayed.value().accountant().num_charged_reporters(), 1u);
}

}  // namespace
}  // namespace ldp
