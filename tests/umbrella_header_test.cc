// The umbrella header must be self-contained and expose the whole public
// surface; this test compiles against it alone and runs a miniature
// end-to-end flow touching each subsystem.

#include "ldp.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeaderTest, EndToEndThroughEverySubsystem) {
  ldp::Rng rng(1);

  // core + baselines
  auto mech = ldp::MakeScalarMechanism(ldp::MechanismKind::kHybrid, 1.0);
  ASSERT_TRUE(mech.ok());
  const double noisy = mech.value()->Perturb(0.5, &rng);
  EXPECT_LE(std::abs(noisy), mech.value()->OutputBound());

  // frequency
  auto oracle = ldp::MakeFrequencyOracle(ldp::FrequencyOracleKind::kOue, 1.0,
                                         4);
  ASSERT_TRUE(oracle.ok());
  ldp::FrequencyEstimator estimator(oracle.value().get());
  estimator.Add(oracle.value()->Perturb(2, &rng));
  EXPECT_EQ(estimator.count(), 1u);

  // data
  auto census = ldp::data::MakeBrazilCensus(50, 2);
  ASSERT_TRUE(census.ok());
  const ldp::data::Dataset normalized =
      ldp::data::NormalizeNumeric(census.value());

  // api facade + aggregate metrics
  auto config = ldp::api::PipelineConfig::FromSchema(normalized.schema(), 1.0);
  ASSERT_TRUE(config.ok());
  auto pipeline = ldp::api::Pipeline::Create(std::move(config).value());
  ASSERT_TRUE(pipeline.ok());
  auto output = pipeline.value().Collect(normalized, 3);
  ASSERT_TRUE(output.ok());
  EXPECT_GE(ldp::aggregate::NumericMse(output.value()), 0.0);

  // ml
  const uint32_t label =
      census.value().schema().FindColumn(ldp::data::kIncomeColumn).value();
  auto features = ldp::data::EncodeFeatures(census.value(), label);
  auto labels = ldp::data::EncodeBinaryLabel(census.value(), label);
  ASSERT_TRUE(features.ok() && labels.ok());
  ldp::ml::LdpSgdOptions options;
  options.perturber = ldp::ml::GradientPerturber::kNonPrivate;
  options.group_size = 10;
  auto beta = ldp::ml::TrainLdpSgd(features.value(), labels.value(),
                                   ldp::ml::LossKind::kLogistic, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_EQ(beta.value().size(), features.value().num_cols());
}

}  // namespace
