// Shared helpers for the test suite: Monte-Carlo moment estimation with
// sample-size-aware tolerances, and small numeric utilities.

#ifndef LDP_TESTS_TEST_UTIL_H_
#define LDP_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "util/random.h"
#include "util/stats.h"

namespace ldp::testing {

/// Draws `n` samples from `sample` and returns their running statistics.
inline RunningStats SampleStats(uint64_t n, Rng* rng,
                                const std::function<double(Rng*)>& sample) {
  RunningStats stats;
  for (uint64_t i = 0; i < n; ++i) stats.Add(sample(rng));
  return stats;
}

/// A z-test-style tolerance for a Monte-Carlo mean: `sigmas` standard errors
/// plus a small absolute floor for exact-zero cases.
inline double MeanTolerance(const RunningStats& stats, double sigmas = 5.0) {
  return sigmas * stats.StdError() + 1e-9;
}

/// Relative-error tolerance for a Monte-Carlo variance estimate: the
/// variance of the sample variance is ~ (kurtosis-ish)·σ⁴/n; a generous
/// multiple of 1/√n covers all distributions used in these tests.
inline double VarianceRelTolerance(uint64_t n, double factor = 12.0) {
  return factor / std::sqrt(static_cast<double>(n));
}

/// Numerically integrates `f` over [lo, hi] with the composite Simpson rule
/// (`intervals` must be even). Used to validate closed-form densities.
inline double Integrate(const std::function<double(double)>& f, double lo,
                        double hi, int intervals = 20000) {
  const double h = (hi - lo) / intervals;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < intervals; ++i) {
    sum += f(lo + i * h) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace ldp::testing

#endif  // LDP_TESTS_TEST_UTIL_H_
