// Adversarial frame corpus for the stream stack, replayed through
// api::ServerSession::Feed serially AND concurrently (the corpus table
// itself lives in stream_corpus_util.h, shared with the socket-transport
// replay in net_fault_test.cc): truncated, oversized, bit-flipped, and
// protocol-mismatched mutations of valid mixed and numeric streams. The
// contract under attack: payload-level corruption only advances the
// `rejected` counter (honest frames in the same shard still count),
// framing/header-level corruption poisons exactly its own shard (which
// then contributes nothing), and a concurrent session produces
// byte-identical snapshots and stats to the serial one even on hostile
// input. The TSan CI job runs this file too.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/mixed_collector.h"
#include "stream/report_stream.h"
#include "stream_corpus_util.h"
#include "stream_test_util.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

using ldp::testing::kStreamCorpus;
using ldp::testing::MakeCorpusPipeline;
using ldp::testing::MakeHonestStream;
using Outcome = ldp::testing::CorpusOutcome;
using CorpusCase = ldp::testing::CorpusCase;

constexpr uint64_t kReports = ldp::testing::kCorpusReports;
constexpr uint64_t kSeed = 33;

using ldp::testing::FeedShardsInterleaved;

// Feeds `bytes` into shard `shard` in pseudo-random chunks, ignoring the
// per-call status (poisoned shards return sticky errors mid-way; the close
// status is the verdict that matters).
void FeedChunked(api::ServerSession* session, size_t shard,
                 const std::string& bytes, uint64_t chunk_seed) {
  (void)FeedShardsInterleaved(session, {shard}, {&bytes}, chunk_seed,
                              /*max_chunk=*/256);
}

struct ShardVerdict {
  Status close_status;
  stream::ShardIngester::Stats stats;
};

// Replays the full corpus plus two honest shards into one session, all
// shards interleaved, and returns per-corpus-case verdicts (honest shards
// are asserted inline).
std::vector<ShardVerdict> ReplayCorpus(api::ServerSession* session,
                                       const std::vector<std::string>& mutants,
                                       const std::string& honest,
                                       uint64_t chunk_seed) {
  const size_t n = mutants.size();
  std::vector<size_t> ids(n + 2);
  for (size_t i = 0; i < n + 2; ++i) ids[i] = session->OpenShard();

  // Interleave every shard's chunks round-robin so hostile bytes decode
  // concurrently with honest ones; hostile sticky errors are expected.
  std::vector<const std::string*> streams;
  for (const std::string& mutant : mutants) streams.push_back(&mutant);
  streams.push_back(&honest);
  streams.push_back(&honest);
  (void)FeedShardsInterleaved(session, ids, streams, chunk_seed,
                              /*max_chunk=*/256);

  std::vector<ShardVerdict> verdicts(n);
  for (size_t i = 0; i < n; ++i) {
    auto stats = session->ShardStats(ids[i]);
    EXPECT_TRUE(stats.ok());
    verdicts[i].stats = stats.value();
    verdicts[i].close_status = session->CloseShard(ids[i]);
  }
  // Honest shards close cleanly whatever the corpus did around them.
  for (size_t i = n; i < n + 2; ++i) {
    auto stats = session->ShardStats(ids[i]);
    EXPECT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().accepted, kReports);
    EXPECT_EQ(stats.value().rejected, 0u);
    EXPECT_TRUE(session->CloseShard(ids[i]).ok());
  }
  return verdicts;
}

void CheckVerdicts(const std::vector<ShardVerdict>& verdicts) {
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const CorpusCase& test_case = kStreamCorpus[i];
    const ShardVerdict& verdict = verdicts[i];
    if (test_case.outcome == Outcome::kPoisoned) {
      EXPECT_FALSE(verdict.close_status.ok()) << test_case.name;
    } else {
      EXPECT_TRUE(verdict.close_status.ok())
          << test_case.name << ": " << verdict.close_status.ToString();
    }
    EXPECT_EQ(verdict.stats.rejected, test_case.expected_rejected)
        << test_case.name;
    EXPECT_EQ(verdict.stats.accepted, test_case.expected_accepted)
        << test_case.name;
  }
}

TEST(StreamFuzzCorpusTest, CorpusOutcomesAreExactAndConcurrencyInvariant) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, kSeed);
  std::vector<std::string> mutants;
  for (const CorpusCase& test_case : kStreamCorpus) {
    mutants.push_back(test_case.mutate(honest));
  }

  api::ServerSessionOptions serial;
  auto serial_server = pipeline.NewServer(serial);
  ASSERT_TRUE(serial_server.ok());
  const std::vector<ShardVerdict> serial_verdicts =
      ReplayCorpus(&serial_server.value(), mutants, honest, /*chunk_seed=*/1);
  CheckVerdicts(serial_verdicts);
  // Only the two honest shards and the non-poisoned mutants reached the
  // epoch: corrupt frames are rejected, poisoned shards contribute nothing.
  uint64_t expected_epoch_reports = 2 * kReports;
  for (const CorpusCase& test_case : kStreamCorpus) {
    if (test_case.outcome == Outcome::kRejects) {
      expected_epoch_reports += test_case.expected_accepted;
    }
  }
  auto serial_reports = serial_server.value().num_reports(0);
  ASSERT_TRUE(serial_reports.ok());
  EXPECT_EQ(serial_reports.value(), expected_epoch_reports);

  for (const unsigned threads : {2u, 8u}) {
    api::ServerSessionOptions options;
    options.ingest_threads = threads;
    auto server = pipeline.NewServer(options);
    ASSERT_TRUE(server.ok());
    const std::vector<ShardVerdict> verdicts = ReplayCorpus(
        &server.value(), mutants, honest, /*chunk_seed=*/100 + threads);
    CheckVerdicts(verdicts);
    for (size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].close_status.code(),
                serial_verdicts[i].close_status.code())
          << kStreamCorpus[i].name;
      EXPECT_EQ(verdicts[i].stats.accepted, serial_verdicts[i].stats.accepted)
          << kStreamCorpus[i].name;
      EXPECT_EQ(verdicts[i].stats.rejected, serial_verdicts[i].stats.rejected)
          << kStreamCorpus[i].name;
      EXPECT_EQ(verdicts[i].stats.frames, serial_verdicts[i].stats.frames)
          << kStreamCorpus[i].name;
    }
    // The whole epoch state — honest totals included — is byte-identical
    // to the serial replay.
    EXPECT_EQ(server.value().Snapshot(), serial_server.value().Snapshot())
        << "ingest_threads=" << threads;
  }
}

TEST(StreamFuzzCorpusTest, RejectionBudgetPoisonsGarbageHeavyShards) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, kSeed);
  // Three corrupt frames, budget of two: the shard must fail even though
  // each rejection alone is tolerable.
  std::string hostile = honest;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stream::AppendFrame(std::string(4, '\xEE'), &hostile).ok());
  }
  api::ServerSessionOptions options;
  options.ingest_threads = 2;
  options.ingest.max_rejected = 2;
  auto server = pipeline.NewServer(options);
  ASSERT_TRUE(server.ok());
  const size_t shard = server.value().OpenShard();
  FeedChunked(&server.value(), shard, hostile, /*chunk_seed=*/3);
  EXPECT_FALSE(server.value().CloseShard(shard).ok());
  auto reports = server.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(StreamFuzzCorpusTest, StrictModePoisonsOnFirstRejectedPayload) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/false);
  const std::string honest = MakeHonestStream(pipeline, kSeed);
  api::ServerSessionOptions options;
  options.ingest_threads = 2;
  options.ingest.strict = true;
  auto server = pipeline.NewServer(options);
  ASSERT_TRUE(server.ok());
  const size_t shard = server.value().OpenShard();
  FeedChunked(&server.value(), shard, ldp::testing::CorpusBitFlippedAttribute(honest),
              /*chunk_seed=*/4);
  EXPECT_FALSE(server.value().CloseShard(shard).ok());
  auto reports = server.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(StreamFuzzCorpusTest, NumericStreamCorpusBehavesLikeMixed) {
  const api::Pipeline pipeline = MakeCorpusPipeline(/*numeric=*/true);
  ASSERT_EQ(pipeline.stream_kind(), stream::ReportStreamKind::kSampledNumeric);
  const std::string honest = MakeHonestStream(pipeline, kSeed);

  // The numeric frame decoder has its own validation path; replay the
  // header/framing/payload corpus classes against it.
  const struct {
    const char* name;
    Outcome outcome;
    uint64_t expected_rejected;
    std::string bytes;
  } kNumericCases[] = {
      {"schema-hash-flip", Outcome::kPoisoned, 0, ldp::testing::CorpusSchemaHashFlip(honest)},
      {"epsilon-mismatch", Outcome::kPoisoned, 0, ldp::testing::CorpusEpsilonMismatch(honest)},
      {"oversized-frame-length", Outcome::kPoisoned, 0,
       ldp::testing::CorpusOversizedFirstFrameLength(honest)},
      {"truncated-final-frame", Outcome::kPoisoned, 0,
       ldp::testing::CorpusTruncatedFinalFrame(honest)},
      {"bit-flipped-attribute", Outcome::kRejects, 1,
       ldp::testing::CorpusBitFlippedAttribute(honest)},
      {"zero-length-frame", Outcome::kRejects, 1,
       ldp::testing::CorpusZeroLengthFrameInserted(honest)},
  };

  for (const unsigned threads : {0u, 4u}) {
    api::ServerSessionOptions options;
    options.ingest_threads = threads;
    auto server = pipeline.NewServer(options);
    ASSERT_TRUE(server.ok());
    for (const auto& test_case : kNumericCases) {
      const size_t shard = server.value().OpenShard();
      FeedChunked(&server.value(), shard, test_case.bytes,
                  /*chunk_seed=*/50 + threads);
      const Status closed = server.value().CloseShard(shard);
      auto stats = server.value().ShardStats(shard);
      ASSERT_TRUE(stats.ok());
      if (test_case.outcome == Outcome::kPoisoned) {
        EXPECT_FALSE(closed.ok()) << test_case.name;
      } else {
        EXPECT_TRUE(closed.ok()) << test_case.name;
        EXPECT_EQ(stats.value().rejected, test_case.expected_rejected)
            << test_case.name;
      }
    }
    // Only the kRejects shards contributed, minus their corrupt frames.
    auto reports = server.value().num_reports(0);
    ASSERT_TRUE(reports.ok());
    EXPECT_EQ(reports.value(), (kReports - 1) + kReports);
  }
}

}  // namespace
}  // namespace ldp
