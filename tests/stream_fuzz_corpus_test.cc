// Adversarial frame corpus for the stream stack, replayed through
// api::ServerSession::Feed serially AND concurrently: a table of truncated,
// oversized, bit-flipped, and protocol-mismatched mutations of valid mixed
// and numeric streams. The contract under attack: payload-level corruption
// only advances the `rejected` counter (honest frames in the same shard
// still count), framing/header-level corruption poisons exactly its own
// shard (which then contributes nothing), and a concurrent session produces
// byte-identical snapshots and stats to the serial one even on hostile
// input. The TSan CI job runs this file too.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "core/mixed_collector.h"
#include "core/wire.h"
#include "stream/report_stream.h"
#include "stream_test_util.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

constexpr double kEpsilon = 4.0;
constexpr uint64_t kReports = 40;
constexpr uint64_t kSeed = 33;

// Stream header field offsets (stream/report_stream.h layout).
constexpr size_t kMagicOffset = 0;
constexpr size_t kVersionOffset = 4;
constexpr size_t kEpsilonOffset = 9;
constexpr size_t kSchemaHashOffset = 25;

enum class Outcome {
  /// Framing/header violation: the shard fails at Feed or CloseShard and
  /// contributes nothing to the epoch.
  kPoisoned,
  /// Payload violations only: the shard closes cleanly, `rejected` counts
  /// the corrupt frames, every honest frame is accepted.
  kRejects,
};

struct CorpusCase {
  const char* name;
  Outcome outcome;
  /// Frames whose payload is rejected (kRejects cases).
  uint64_t expected_rejected;
  /// Honest frames still accepted by the shard's *stats* (poisoned shards
  /// accept frames pre-poison too — they just never reach the epoch).
  uint64_t expected_accepted;
  std::string (*mutate)(const std::string& honest);
};

// --- mutations -------------------------------------------------------------

std::string TruncatedHeader(const std::string& honest) {
  return honest.substr(0, stream::kStreamHeaderBytes / 2);
}

std::string BadMagic(const std::string& honest) {
  std::string bytes = honest;
  bytes[kMagicOffset] = static_cast<char>(bytes[kMagicOffset] ^ 0x01);
  return bytes;
}

std::string BadVersion(const std::string& honest) {
  std::string bytes = honest;
  bytes[kVersionOffset] = static_cast<char>(0xFF);
  bytes[kVersionOffset + 1] = static_cast<char>(0xFF);
  return bytes;
}

std::string SchemaHashFlip(const std::string& honest) {
  std::string bytes = honest;
  bytes[kSchemaHashOffset] = static_cast<char>(bytes[kSchemaHashOffset] ^ 0xFF);
  return bytes;
}

std::string EpsilonMismatch(const std::string& honest) {
  std::string bytes = honest;
  const double wrong = kEpsilon + 1.0;
  uint64_t bits = 0;
  std::memcpy(&bits, &wrong, sizeof(bits));
  for (size_t i = 0; i < 8; ++i) {
    bytes[kEpsilonOffset + i] = static_cast<char>(bits >> (8 * i));
  }
  return bytes;
}

std::string OversizedFirstFrameLength(const std::string& honest) {
  std::string bytes = honest;
  const uint32_t hostile = stream::kMaxFrameBytes + 1;
  for (size_t i = 0; i < 4; ++i) {
    bytes[stream::kStreamHeaderBytes + i] =
        static_cast<char>(hostile >> (8 * i));
  }
  return bytes;
}

std::string TruncatedFinalFrame(const std::string& honest) {
  return honest.substr(0, honest.size() - 3);
}

std::string TrailingPartialLengthPrefix(const std::string& honest) {
  return honest + std::string(2, '\x05');
}

// Overwrites the first frame's first entry attribute index with 0xFFFFFFFF
// — a "bit-flip" guaranteed to fail range validation whatever the schema.
std::string BitFlippedAttribute(const std::string& honest) {
  std::string bytes = honest;
  // header | u32 frame length | u16 entry_count | u32 attribute ...
  const size_t attribute_offset = stream::kStreamHeaderBytes + 4 + 2;
  for (size_t i = 0; i < 4; ++i) {
    bytes[attribute_offset + i] = static_cast<char>(0xFF);
  }
  return bytes;
}

// Shortens the first frame's payload by one byte (fixing the length prefix
// so the framing stays intact): the payload decode is what fails.
std::string TruncatedFirstPayload(const std::string& honest) {
  const char* data = honest.data() + stream::kStreamHeaderBytes;
  const uint32_t length = internal_wire::LoadLittleEndian<uint32_t>(data);
  EXPECT_GT(length, 0u);
  std::string bytes = honest.substr(0, stream::kStreamHeaderBytes);
  const uint32_t shortened = length - 1;
  for (size_t i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<char>(shortened >> (8 * i)));
  }
  bytes.append(honest, stream::kStreamHeaderBytes + 4, shortened);
  bytes.append(honest, stream::kStreamHeaderBytes + 4 + length,
               std::string::npos);
  return bytes;
}

std::string ZeroLengthFrameInserted(const std::string& honest) {
  std::string bytes = honest.substr(0, stream::kStreamHeaderBytes);
  bytes.append(4, '\0');  // u32 length 0, empty payload
  bytes.append(honest, stream::kStreamHeaderBytes, std::string::npos);
  return bytes;
}

std::string GarbageFrameAppended(const std::string& honest) {
  std::string bytes = honest;
  EXPECT_TRUE(stream::AppendFrame(std::string(5, '\xFF'), &bytes).ok());
  return bytes;
}

const CorpusCase kCorpus[] = {
    {"truncated-header", Outcome::kPoisoned, 0, 0, TruncatedHeader},
    {"bad-magic", Outcome::kPoisoned, 0, 0, BadMagic},
    {"bad-version", Outcome::kPoisoned, 0, 0, BadVersion},
    {"schema-hash-flip", Outcome::kPoisoned, 0, 0, SchemaHashFlip},
    {"epsilon-mismatch", Outcome::kPoisoned, 0, 0, EpsilonMismatch},
    {"oversized-frame-length", Outcome::kPoisoned, 0, 0,
     OversizedFirstFrameLength},
    {"truncated-final-frame", Outcome::kPoisoned, 0, kReports - 1,
     TruncatedFinalFrame},
    {"trailing-partial-length", Outcome::kPoisoned, 0, kReports,
     TrailingPartialLengthPrefix},
    {"bit-flipped-attribute", Outcome::kRejects, 1, kReports - 1,
     BitFlippedAttribute},
    {"truncated-first-payload", Outcome::kRejects, 1, kReports - 1,
     TruncatedFirstPayload},
    {"zero-length-frame", Outcome::kRejects, 1, kReports,
     ZeroLengthFrameInserted},
    {"garbage-frame-appended", Outcome::kRejects, 1, kReports,
     GarbageFrameAppended},
};

// --- fixtures --------------------------------------------------------------

api::Pipeline MakePipeline(bool numeric) {
  auto schema =
      numeric
          ? data::Schema::Create({data::ColumnSpec::Numeric("a", -1, 1),
                                  data::ColumnSpec::Numeric("b", -1, 1)})
          : data::Schema::Create(
                {data::ColumnSpec::Numeric("income", -1, 1),
                 data::ColumnSpec::Categorical("sector", 4),
                 data::ColumnSpec::Numeric("age", -1, 1)});
  EXPECT_TRUE(schema.ok());
  auto config = api::PipelineConfig::FromSchema(schema.value(), kEpsilon);
  EXPECT_TRUE(config.ok());
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline).value();
}

// One honest shard stream of kReports perturbed reports.
std::string HonestStream(const api::Pipeline& pipeline, uint64_t seed) {
  auto client = pipeline.NewClient();
  EXPECT_TRUE(client.ok());
  std::string bytes = client.value().EncodeHeader();
  for (uint64_t row = 0; row < kReports; ++row) {
    Rng rng = api::UserRng(seed, row);
    Result<std::string> payload =
        [&]() -> Result<std::string> {
      if (pipeline.stream_kind() ==
          stream::ReportStreamKind::kSampledNumeric) {
        return client.value().EncodeReport(std::vector<double>{0.5, -0.5},
                                           &rng);
      }
      MixedTuple tuple(3);
      tuple[0] = AttributeValue::Numeric(0.25);
      tuple[1] = AttributeValue::Categorical(row % 4);
      tuple[2] = AttributeValue::Numeric(-0.75);
      return client.value().EncodeReport(tuple, &rng);
    }();
    EXPECT_TRUE(payload.ok());
    EXPECT_TRUE(stream::AppendFrame(payload.value(), &bytes).ok());
  }
  return bytes;
}

using ldp::testing::FeedShardsInterleaved;

// Feeds `bytes` into shard `shard` in pseudo-random chunks, ignoring the
// per-call status (poisoned shards return sticky errors mid-way; the close
// status is the verdict that matters).
void FeedChunked(api::ServerSession* session, size_t shard,
                 const std::string& bytes, uint64_t chunk_seed) {
  (void)FeedShardsInterleaved(session, {shard}, {&bytes}, chunk_seed,
                              /*max_chunk=*/256);
}

struct ShardVerdict {
  Status close_status;
  stream::ShardIngester::Stats stats;
};

// Replays the full corpus plus two honest shards into one session, all
// shards interleaved, and returns per-corpus-case verdicts (honest shards
// are asserted inline).
std::vector<ShardVerdict> ReplayCorpus(api::ServerSession* session,
                                       const std::vector<std::string>& mutants,
                                       const std::string& honest,
                                       uint64_t chunk_seed) {
  const size_t n = mutants.size();
  std::vector<size_t> ids(n + 2);
  for (size_t i = 0; i < n + 2; ++i) ids[i] = session->OpenShard();

  // Interleave every shard's chunks round-robin so hostile bytes decode
  // concurrently with honest ones; hostile sticky errors are expected.
  std::vector<const std::string*> streams;
  for (const std::string& mutant : mutants) streams.push_back(&mutant);
  streams.push_back(&honest);
  streams.push_back(&honest);
  (void)FeedShardsInterleaved(session, ids, streams, chunk_seed,
                              /*max_chunk=*/256);

  std::vector<ShardVerdict> verdicts(n);
  for (size_t i = 0; i < n; ++i) {
    auto stats = session->ShardStats(ids[i]);
    EXPECT_TRUE(stats.ok());
    verdicts[i].stats = stats.value();
    verdicts[i].close_status = session->CloseShard(ids[i]);
  }
  // Honest shards close cleanly whatever the corpus did around them.
  for (size_t i = n; i < n + 2; ++i) {
    auto stats = session->ShardStats(ids[i]);
    EXPECT_TRUE(stats.ok());
    EXPECT_EQ(stats.value().accepted, kReports);
    EXPECT_EQ(stats.value().rejected, 0u);
    EXPECT_TRUE(session->CloseShard(ids[i]).ok());
  }
  return verdicts;
}

void CheckVerdicts(const std::vector<ShardVerdict>& verdicts) {
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const CorpusCase& test_case = kCorpus[i];
    const ShardVerdict& verdict = verdicts[i];
    if (test_case.outcome == Outcome::kPoisoned) {
      EXPECT_FALSE(verdict.close_status.ok()) << test_case.name;
    } else {
      EXPECT_TRUE(verdict.close_status.ok())
          << test_case.name << ": " << verdict.close_status.ToString();
    }
    EXPECT_EQ(verdict.stats.rejected, test_case.expected_rejected)
        << test_case.name;
    EXPECT_EQ(verdict.stats.accepted, test_case.expected_accepted)
        << test_case.name;
  }
}

TEST(StreamFuzzCorpusTest, CorpusOutcomesAreExactAndConcurrencyInvariant) {
  const api::Pipeline pipeline = MakePipeline(/*numeric=*/false);
  const std::string honest = HonestStream(pipeline, kSeed);
  std::vector<std::string> mutants;
  for (const CorpusCase& test_case : kCorpus) {
    mutants.push_back(test_case.mutate(honest));
  }

  api::ServerSessionOptions serial;
  auto serial_server = pipeline.NewServer(serial);
  ASSERT_TRUE(serial_server.ok());
  const std::vector<ShardVerdict> serial_verdicts =
      ReplayCorpus(&serial_server.value(), mutants, honest, /*chunk_seed=*/1);
  CheckVerdicts(serial_verdicts);
  // Only the two honest shards and the non-poisoned mutants reached the
  // epoch: corrupt frames are rejected, poisoned shards contribute nothing.
  uint64_t expected_epoch_reports = 2 * kReports;
  for (const CorpusCase& test_case : kCorpus) {
    if (test_case.outcome == Outcome::kRejects) {
      expected_epoch_reports += test_case.expected_accepted;
    }
  }
  auto serial_reports = serial_server.value().num_reports(0);
  ASSERT_TRUE(serial_reports.ok());
  EXPECT_EQ(serial_reports.value(), expected_epoch_reports);

  for (const unsigned threads : {2u, 8u}) {
    api::ServerSessionOptions options;
    options.ingest_threads = threads;
    auto server = pipeline.NewServer(options);
    ASSERT_TRUE(server.ok());
    const std::vector<ShardVerdict> verdicts = ReplayCorpus(
        &server.value(), mutants, honest, /*chunk_seed=*/100 + threads);
    CheckVerdicts(verdicts);
    for (size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].close_status.code(),
                serial_verdicts[i].close_status.code())
          << kCorpus[i].name;
      EXPECT_EQ(verdicts[i].stats.accepted, serial_verdicts[i].stats.accepted)
          << kCorpus[i].name;
      EXPECT_EQ(verdicts[i].stats.rejected, serial_verdicts[i].stats.rejected)
          << kCorpus[i].name;
      EXPECT_EQ(verdicts[i].stats.frames, serial_verdicts[i].stats.frames)
          << kCorpus[i].name;
    }
    // The whole epoch state — honest totals included — is byte-identical
    // to the serial replay.
    EXPECT_EQ(server.value().Snapshot(), serial_server.value().Snapshot())
        << "ingest_threads=" << threads;
  }
}

TEST(StreamFuzzCorpusTest, RejectionBudgetPoisonsGarbageHeavyShards) {
  const api::Pipeline pipeline = MakePipeline(/*numeric=*/false);
  const std::string honest = HonestStream(pipeline, kSeed);
  // Three corrupt frames, budget of two: the shard must fail even though
  // each rejection alone is tolerable.
  std::string hostile = honest;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(stream::AppendFrame(std::string(4, '\xEE'), &hostile).ok());
  }
  api::ServerSessionOptions options;
  options.ingest_threads = 2;
  options.ingest.max_rejected = 2;
  auto server = pipeline.NewServer(options);
  ASSERT_TRUE(server.ok());
  const size_t shard = server.value().OpenShard();
  FeedChunked(&server.value(), shard, hostile, /*chunk_seed=*/3);
  EXPECT_FALSE(server.value().CloseShard(shard).ok());
  auto reports = server.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(StreamFuzzCorpusTest, StrictModePoisonsOnFirstRejectedPayload) {
  const api::Pipeline pipeline = MakePipeline(/*numeric=*/false);
  const std::string honest = HonestStream(pipeline, kSeed);
  api::ServerSessionOptions options;
  options.ingest_threads = 2;
  options.ingest.strict = true;
  auto server = pipeline.NewServer(options);
  ASSERT_TRUE(server.ok());
  const size_t shard = server.value().OpenShard();
  FeedChunked(&server.value(), shard, BitFlippedAttribute(honest),
              /*chunk_seed=*/4);
  EXPECT_FALSE(server.value().CloseShard(shard).ok());
  auto reports = server.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
}

TEST(StreamFuzzCorpusTest, NumericStreamCorpusBehavesLikeMixed) {
  const api::Pipeline pipeline = MakePipeline(/*numeric=*/true);
  ASSERT_EQ(pipeline.stream_kind(), stream::ReportStreamKind::kSampledNumeric);
  const std::string honest = HonestStream(pipeline, kSeed);

  // The numeric frame decoder has its own validation path; replay the
  // header/framing/payload corpus classes against it.
  const struct {
    const char* name;
    Outcome outcome;
    uint64_t expected_rejected;
    std::string bytes;
  } kNumericCases[] = {
      {"schema-hash-flip", Outcome::kPoisoned, 0, SchemaHashFlip(honest)},
      {"epsilon-mismatch", Outcome::kPoisoned, 0, EpsilonMismatch(honest)},
      {"oversized-frame-length", Outcome::kPoisoned, 0,
       OversizedFirstFrameLength(honest)},
      {"truncated-final-frame", Outcome::kPoisoned, 0,
       TruncatedFinalFrame(honest)},
      {"bit-flipped-attribute", Outcome::kRejects, 1,
       BitFlippedAttribute(honest)},
      {"zero-length-frame", Outcome::kRejects, 1,
       ZeroLengthFrameInserted(honest)},
  };

  for (const unsigned threads : {0u, 4u}) {
    api::ServerSessionOptions options;
    options.ingest_threads = threads;
    auto server = pipeline.NewServer(options);
    ASSERT_TRUE(server.ok());
    for (const auto& test_case : kNumericCases) {
      const size_t shard = server.value().OpenShard();
      FeedChunked(&server.value(), shard, test_case.bytes,
                  /*chunk_seed=*/50 + threads);
      const Status closed = server.value().CloseShard(shard);
      auto stats = server.value().ShardStats(shard);
      ASSERT_TRUE(stats.ok());
      if (test_case.outcome == Outcome::kPoisoned) {
        EXPECT_FALSE(closed.ok()) << test_case.name;
      } else {
        EXPECT_TRUE(closed.ok()) << test_case.name;
        EXPECT_EQ(stats.value().rejected, test_case.expected_rejected)
            << test_case.name;
      }
    }
    // Only the kRejects shards contributed, minus their corrupt frames.
    auto reports = server.value().num_reports(0);
    ASSERT_TRUE(reports.ok());
    EXPECT_EQ(reports.value(), (kReports - 1) + kReports);
  }
}

}  // namespace
}  // namespace ldp
