#include "aggregate/estimators.h"

#include <gtest/gtest.h>

namespace ldp::aggregate {
namespace {

TEST(VectorMeanEstimatorTest, EmptyEstimatesZero) {
  VectorMeanEstimator estimator(3);
  EXPECT_EQ(estimator.count(), 0u);
  EXPECT_EQ(estimator.dimension(), 3u);
  EXPECT_EQ(estimator.Estimate(), (std::vector<double>{0.0, 0.0, 0.0}));
}

TEST(VectorMeanEstimatorTest, DenseReportsAverage) {
  VectorMeanEstimator estimator(2);
  estimator.Add({1.0, -2.0});
  estimator.Add({3.0, 2.0});
  EXPECT_EQ(estimator.count(), 2u);
  EXPECT_EQ(estimator.Estimate(), (std::vector<double>{2.0, 0.0}));
}

TEST(VectorMeanEstimatorTest, SparseReportsZeroPadUnsampled) {
  VectorMeanEstimator estimator(3);
  estimator.AddSparse({SampledValue{0, 3.0}});
  estimator.AddSparse({SampledValue{2, 6.0}});
  estimator.AddSparse({SampledValue{0, 3.0}, SampledValue{2, 0.0}});
  // Attribute 0: (3 + 0 + 3)/3 = 2; attribute 1: 0; attribute 2: 2.
  EXPECT_EQ(estimator.Estimate(), (std::vector<double>{2.0, 0.0, 2.0}));
}

TEST(VectorMeanEstimatorTest, MixedDenseAndSparse) {
  VectorMeanEstimator estimator(2);
  estimator.Add({2.0, 4.0});
  estimator.AddSparse({SampledValue{1, 2.0}});
  EXPECT_EQ(estimator.Estimate(), (std::vector<double>{1.0, 3.0}));
}

TEST(VectorMeanEstimatorTest, MergeMatchesSequential) {
  VectorMeanEstimator a(2), b(2), all(2);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> report = {static_cast<double>(i), 1.0};
    (i % 2 == 0 ? a : b).Add(report);
    all.Add(report);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.Estimate(), all.Estimate());
}

TEST(VectorMeanEstimatorTest, MergeWithEmpty) {
  VectorMeanEstimator a(1), empty(1);
  a.Add({5.0});
  a.Merge(empty);
  EXPECT_EQ(a.Estimate(), std::vector<double>{5.0});
}

}  // namespace
}  // namespace ldp::aggregate
