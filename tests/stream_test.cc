#include "stream/report_stream.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/wire.h"
#include "stream/shard_ingester.h"
#include "util/random.h"

namespace ldp::stream {
namespace {

MixedTupleCollector MakeCollector(double epsilon = 6.0) {
  auto collector = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(4),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(6)},
      epsilon);
  EXPECT_TRUE(collector.ok());
  return std::move(collector).value();
}

MixedTuple SampleTuple() {
  MixedTuple tuple(4);
  tuple[0] = AttributeValue::Numeric(0.3);
  tuple[1] = AttributeValue::Categorical(2);
  tuple[2] = AttributeValue::Numeric(-0.7);
  tuple[3] = AttributeValue::Categorical(5);
  return tuple;
}

// A complete in-memory stream with `reports` perturbed reports.
std::string MakeStream(const MixedTupleCollector& collector, int reports,
                       uint64_t seed = 1) {
  std::ostringstream out;
  ReportStreamWriter writer(&out, MakeMixedStreamHeader(collector));
  Rng rng(seed);
  for (int i = 0; i < reports; ++i) {
    EXPECT_TRUE(
        writer.WriteMixedReport(collector.Perturb(SampleTuple(), &rng),
                                collector)
            .ok());
  }
  return out.str();
}

TEST(StreamHeaderTest, RoundTrips) {
  const MixedTupleCollector collector = MakeCollector();
  const StreamHeader header = MakeMixedStreamHeader(collector);
  const std::string bytes = EncodeStreamHeader(header);
  EXPECT_EQ(bytes.size(), kStreamHeaderBytes);
  auto decoded = DecodeStreamHeader(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, ReportStreamKind::kMixed);
  EXPECT_EQ(decoded.value().mechanism, collector.numeric_kind());
  EXPECT_EQ(decoded.value().oracle, collector.categorical_kind());
  EXPECT_EQ(decoded.value().epsilon, collector.epsilon());
  EXPECT_EQ(decoded.value().dimension, collector.dimension());
  EXPECT_EQ(decoded.value().k, collector.k());
  EXPECT_EQ(decoded.value().schema_hash, CollectorSchemaHash(collector));
  EXPECT_TRUE(ValidateMixedStreamHeader(decoded.value(), collector).ok());
}

TEST(StreamHeaderTest, NumericHeaderRoundTrips) {
  auto mechanism =
      SampledNumericMechanism::Create(MechanismKind::kPiecewise, 2.0, 8);
  ASSERT_TRUE(mechanism.ok());
  const StreamHeader header =
      MakeNumericStreamHeader(mechanism.value(), MechanismKind::kPiecewise);
  auto decoded = DecodeStreamHeader(EncodeStreamHeader(header));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().kind, ReportStreamKind::kSampledNumeric);
  EXPECT_EQ(decoded.value().mechanism, MechanismKind::kPiecewise);
  EXPECT_EQ(decoded.value().dimension, 8u);
  EXPECT_EQ(decoded.value().schema_hash,
            NumericSchemaHash(mechanism.value(), MechanismKind::kPiecewise));
}

TEST(StreamHeaderTest, RejectsTruncation) {
  const std::string bytes =
      EncodeStreamHeader(MakeMixedStreamHeader(MakeCollector()));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DecodeStreamHeader(bytes.substr(0, cut)).ok()) << cut;
  }
}

TEST(StreamHeaderTest, RejectsBadMagicVersionAndEnums) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string good =
      EncodeStreamHeader(MakeMixedStreamHeader(collector));

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_FALSE(DecodeStreamHeader(bad_magic).ok());

  std::string bad_version = good;
  bad_version[4] = 99;
  EXPECT_FALSE(DecodeStreamHeader(bad_version).ok());

  std::string bad_kind = good;
  bad_kind[6] = 42;
  EXPECT_FALSE(DecodeStreamHeader(bad_kind).ok());

  std::string bad_mechanism = good;
  bad_mechanism[7] = 42;
  EXPECT_FALSE(DecodeStreamHeader(bad_mechanism).ok());

  std::string bad_oracle = good;
  bad_oracle[8] = 42;
  EXPECT_FALSE(DecodeStreamHeader(bad_oracle).ok());
}

TEST(StreamHeaderTest, RejectsInconsistentGeometry) {
  StreamHeader header = MakeMixedStreamHeader(MakeCollector());
  header.k = header.dimension + 1;  // k > d
  EXPECT_FALSE(DecodeStreamHeader(EncodeStreamHeader(header)).ok());
  header.k = 0;
  EXPECT_FALSE(DecodeStreamHeader(EncodeStreamHeader(header)).ok());
  header = MakeMixedStreamHeader(MakeCollector());
  header.epsilon = 0.0;
  EXPECT_FALSE(DecodeStreamHeader(EncodeStreamHeader(header)).ok());
}

TEST(StreamHeaderTest, ValidationCatchesEveryMismatch) {
  const MixedTupleCollector collector = MakeCollector(6.0);
  StreamHeader header = MakeMixedStreamHeader(collector);

  StreamHeader wrong = header;
  wrong.kind = ReportStreamKind::kSampledNumeric;
  EXPECT_FALSE(ValidateMixedStreamHeader(wrong, collector).ok());

  wrong = header;
  wrong.epsilon = 5.0;
  EXPECT_FALSE(ValidateMixedStreamHeader(wrong, collector).ok());

  wrong = header;
  wrong.mechanism = MechanismKind::kPiecewise;
  EXPECT_FALSE(ValidateMixedStreamHeader(wrong, collector).ok());

  wrong = header;
  wrong.oracle = FrequencyOracleKind::kGrr;
  EXPECT_FALSE(ValidateMixedStreamHeader(wrong, collector).ok());

  wrong = header;
  wrong.schema_hash ^= 1;
  EXPECT_FALSE(ValidateMixedStreamHeader(wrong, collector).ok());

  // A collector over a different schema must be rejected via the hash even
  // when ε, d and k all agree.
  auto other = MixedTupleCollector::Create(
      {MixedAttribute::Numeric(), MixedAttribute::Categorical(5),
       MixedAttribute::Numeric(), MixedAttribute::Categorical(6)},
      6.0);
  ASSERT_TRUE(other.ok());
  ASSERT_EQ(other.value().k(), collector.k());
  EXPECT_FALSE(ValidateMixedStreamHeader(header, other.value()).ok());
  EXPECT_NE(CollectorSchemaHash(collector),
            CollectorSchemaHash(other.value()));
}

TEST(ReportStreamTest, WriterReaderRoundTrip) {
  const MixedTupleCollector collector = MakeCollector();
  std::ostringstream sink;
  ReportStreamWriter writer(&sink, MakeMixedStreamHeader(collector));
  Rng rng(3);
  std::vector<MixedReport> reports;
  for (int i = 0; i < 50; ++i) {
    reports.push_back(collector.Perturb(SampleTuple(), &rng));
    ASSERT_TRUE(writer.WriteMixedReport(reports.back(), collector).ok());
  }
  EXPECT_EQ(writer.frames_written(), 50u);

  std::istringstream source(sink.str());
  ReportStreamReader reader(&source);
  auto header = reader.ReadHeader();
  ASSERT_TRUE(header.ok());
  ASSERT_TRUE(ValidateMixedStreamHeader(header.value(), collector).ok());
  std::string payload;
  for (int i = 0; i < 50; ++i) {
    auto frame = reader.NextFrame(&payload);
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame.value());
    auto decoded = DecodeMixedReport(payload, collector);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().size(), reports[i].size());
    for (size_t j = 0; j < reports[i].size(); ++j) {
      EXPECT_EQ(decoded.value()[j].attribute, reports[i][j].attribute);
      EXPECT_EQ(decoded.value()[j].numeric_value,
                reports[i][j].numeric_value);
      EXPECT_EQ(decoded.value()[j].categorical_report,
                reports[i][j].categorical_report);
    }
  }
  auto eof = reader.NextFrame(&payload);
  ASSERT_TRUE(eof.ok());
  EXPECT_FALSE(eof.value());
}

TEST(ReportStreamTest, ReaderRequiresHeaderFirst) {
  std::istringstream source("anything");
  ReportStreamReader reader(&source);
  std::string payload;
  EXPECT_FALSE(reader.NextFrame(&payload).ok());
}

TEST(ReportStreamTest, ReaderRejectsOversizedAndPartialFrames) {
  const MixedTupleCollector collector = MakeCollector();
  std::string bytes = MakeStream(collector, 1);

  // Oversized frame length after the valid report.
  std::string oversized = bytes;
  oversized += std::string("\xff\xff\xff\xff", 4);
  std::istringstream source(oversized);
  ReportStreamReader reader(&source);
  ASSERT_TRUE(reader.ReadHeader().ok());
  std::string payload;
  ASSERT_TRUE(reader.NextFrame(&payload).value());
  EXPECT_FALSE(reader.NextFrame(&payload).ok());

  // Truncated mid-frame.
  std::istringstream truncated(bytes.substr(0, bytes.size() - 3));
  ReportStreamReader truncated_reader(&truncated);
  ASSERT_TRUE(truncated_reader.ReadHeader().ok());
  EXPECT_FALSE(truncated_reader.NextFrame(&payload).ok());
}

TEST(ShardIngesterTest, IngestsWholeStream) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 200);
  ShardIngester ingester(&collector);
  ASSERT_TRUE(ingester.Feed(bytes).ok());
  ASSERT_TRUE(ingester.Finish().ok());
  EXPECT_TRUE(ingester.header_seen());
  EXPECT_EQ(ingester.stats().frames, 200u);
  EXPECT_EQ(ingester.stats().accepted, 200u);
  EXPECT_EQ(ingester.stats().rejected, 0u);
  EXPECT_EQ(ingester.stats().bytes, bytes.size());
  EXPECT_EQ(ingester.aggregator().num_reports(), 200u);
}

TEST(ShardIngesterTest, ByteAtATimeFeedMatchesWholeBuffer) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 64);

  ShardIngester whole(&collector);
  ASSERT_TRUE(whole.Feed(bytes).ok());
  ASSERT_TRUE(whole.Finish().ok());

  ShardIngester dribble(&collector);
  for (const char byte : bytes) {
    ASSERT_TRUE(dribble.Feed(&byte, 1).ok());
  }
  ASSERT_TRUE(dribble.Finish().ok());

  EXPECT_EQ(whole.aggregator().num_reports(),
            dribble.aggregator().num_reports());
  EXPECT_EQ(whole.aggregator().numeric_sums(),
            dribble.aggregator().numeric_sums());
  EXPECT_EQ(whole.aggregator().supports(), dribble.aggregator().supports());
  EXPECT_EQ(whole.aggregator().attribute_report_counts(),
            dribble.aggregator().attribute_report_counts());
}

TEST(ShardIngesterTest, EveryChunkingMatchesWholeBufferAcrossRingWraps) {
  // Chunk sizes that are coprime to the frame sizes force every possible
  // item/chunk phase, repeatedly staging partial items in the ring and
  // marching its read head around the wrap boundary. A long stream makes
  // the head lap the (small, power-of-two) ring many times for each chunk
  // size. All of them must reproduce the one-shot Feed bit for bit.
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 400);

  ShardIngester whole(&collector);
  ASSERT_TRUE(whole.Feed(bytes).ok());
  ASSERT_TRUE(whole.Finish().ok());
  ASSERT_EQ(whole.stats().accepted, 400u);

  for (const size_t chunk : {2u, 3u, 5u, 7u, 11u, 13u, 17u, 26u, 31u, 64u,
                             127u, 255u, 1000u}) {
    ShardIngester chunked(&collector);
    for (size_t cursor = 0; cursor < bytes.size(); cursor += chunk) {
      const size_t take = std::min(chunk, bytes.size() - cursor);
      ASSERT_TRUE(chunked.Feed(bytes.data() + cursor, take).ok())
          << "chunk size " << chunk;
    }
    ASSERT_TRUE(chunked.Finish().ok()) << "chunk size " << chunk;
    EXPECT_EQ(chunked.stats().accepted, whole.stats().accepted)
        << "chunk size " << chunk;
    EXPECT_EQ(chunked.stats().bytes, whole.stats().bytes);
    EXPECT_EQ(chunked.aggregator().num_reports(),
              whole.aggregator().num_reports());
    EXPECT_EQ(chunked.aggregator().numeric_sums(),
              whole.aggregator().numeric_sums());
    EXPECT_EQ(chunked.aggregator().supports(), whole.aggregator().supports());
    EXPECT_EQ(chunked.aggregator().attribute_report_counts(),
              whole.aggregator().attribute_report_counts());
  }
}

TEST(ShardIngesterTest, VisitorDecodeMatchesMaterializingDecodeBitForBit) {
  // The zero-copy ingest path streams entries straight into the aggregator
  // (MixedFrameDecoder -> MixedReportSink); decoding every frame into a
  // MixedReport and Add()ing it must produce bit-identical aggregates.
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 250);

  ShardIngester streamed(&collector);
  ASSERT_TRUE(streamed.Feed(bytes).ok());
  ASSERT_TRUE(streamed.Finish().ok());

  MixedAggregator materialized(&collector);
  std::istringstream source(bytes);
  ReportStreamReader reader(&source);
  ASSERT_TRUE(reader.ReadHeader().ok());
  std::string payload;
  for (;;) {
    auto frame = reader.NextFrame(&payload);
    ASSERT_TRUE(frame.ok());
    if (!frame.value()) break;
    auto report = DecodeMixedReport(payload, collector);
    ASSERT_TRUE(report.ok());
    materialized.Add(report.value());
  }

  EXPECT_EQ(streamed.aggregator().num_reports(), materialized.num_reports());
  EXPECT_EQ(streamed.aggregator().numeric_sums(),
            materialized.numeric_sums());
  EXPECT_EQ(streamed.aggregator().supports(), materialized.supports());
  EXPECT_EQ(streamed.aggregator().attribute_report_counts(),
            materialized.attribute_report_counts());
}

TEST(ShardIngesterTest, MatchesStreamlessAggregation) {
  const MixedTupleCollector collector = MakeCollector();
  MixedAggregator direct(&collector);
  std::ostringstream sink;
  ReportStreamWriter writer(&sink, MakeMixedStreamHeader(collector));
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const MixedReport report = collector.Perturb(SampleTuple(), &rng);
    direct.Add(report);
    ASSERT_TRUE(writer.WriteMixedReport(report, collector).ok());
  }
  ShardIngester ingester(&collector);
  ASSERT_TRUE(ingester.Feed(sink.str()).ok());
  ASSERT_TRUE(ingester.Finish().ok());
  EXPECT_EQ(ingester.aggregator().num_reports(), direct.num_reports());
  EXPECT_EQ(ingester.aggregator().numeric_sums(), direct.numeric_sums());
  EXPECT_EQ(ingester.aggregator().supports(), direct.supports());
}

TEST(ShardIngesterTest, RejectsMismatchedHeader) {
  const MixedTupleCollector collector = MakeCollector(6.0);
  const MixedTupleCollector other = MakeCollector(5.0);
  const std::string bytes = MakeStream(other, 5);
  ShardIngester ingester(&collector);
  EXPECT_FALSE(ingester.Feed(bytes).ok());
  EXPECT_EQ(ingester.stats().accepted, 0u);
  // Poisoned: every later call reports the same failure.
  EXPECT_FALSE(ingester.Feed(bytes).ok());
  EXPECT_FALSE(ingester.Finish().ok());
}

TEST(ShardIngesterTest, SkipsMalformedFramesByDefault) {
  const MixedTupleCollector collector = MakeCollector();
  std::string bytes = MakeStream(collector, 3);
  // Append a frame whose payload is garbage (valid framing, bad report).
  std::string garbage_frame;
  ASSERT_TRUE(AppendFrame("not a report", &garbage_frame).ok());
  bytes += garbage_frame;
  const std::string more = MakeStream(collector, 2, 77);
  bytes += more.substr(kStreamHeaderBytes);  // splice the 2 extra frames

  ShardIngester ingester(&collector);
  ASSERT_TRUE(ingester.Feed(bytes).ok());
  ASSERT_TRUE(ingester.Finish().ok());
  EXPECT_EQ(ingester.stats().frames, 6u);
  EXPECT_EQ(ingester.stats().accepted, 5u);
  EXPECT_EQ(ingester.stats().rejected, 1u);
  EXPECT_EQ(ingester.aggregator().num_reports(), 5u);
}

TEST(ShardIngesterTest, StrictModeFailsOnMalformedFrame) {
  const MixedTupleCollector collector = MakeCollector();
  std::string bytes = MakeStream(collector, 3);
  std::string garbage_frame;
  ASSERT_TRUE(AppendFrame("junk", &garbage_frame).ok());
  bytes += garbage_frame;

  ShardIngester::Options options;
  options.strict = true;
  ShardIngester ingester(&collector, options);
  Status status = ingester.Feed(bytes);
  if (status.ok()) status = ingester.Finish();
  EXPECT_FALSE(status.ok());
}

TEST(ShardIngesterTest, RejectionBudgetPoisonsTheStream) {
  const MixedTupleCollector collector = MakeCollector();
  std::string bytes = MakeStream(collector, 1);
  for (int i = 0; i < 3; ++i) {
    std::string garbage_frame;
    ASSERT_TRUE(AppendFrame("junk", &garbage_frame).ok());
    bytes += garbage_frame;
  }
  ShardIngester::Options options;
  options.max_rejected = 1;
  ShardIngester ingester(&collector, options);
  Status status = ingester.Feed(bytes);
  if (status.ok()) status = ingester.Finish();
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(ingester.stats().rejected, 2u);  // budget + the one over it
}

TEST(ShardIngesterTest, RejectsOversizedFrameLength) {
  const MixedTupleCollector collector = MakeCollector();
  std::string bytes = MakeStream(collector, 1);
  bytes += std::string("\xff\xff\xff\xff", 4);  // 4 GiB frame "length"
  ShardIngester ingester(&collector);
  EXPECT_FALSE(ingester.Feed(bytes).ok());
}

TEST(ShardIngesterTest, FinishRejectsTruncatedStreams) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 4);
  // A stream cut anywhere strictly inside the header must fail Finish.
  for (size_t cut = 0; cut < kStreamHeaderBytes; ++cut) {
    ShardIngester ingester(&collector);
    ASSERT_TRUE(ingester.Feed(bytes.data(), cut).ok());
    EXPECT_FALSE(ingester.Finish().ok()) << cut;
  }
  // A cut mid-frame:
  ShardIngester ingester(&collector);
  ASSERT_TRUE(ingester.Feed(bytes.data(), bytes.size() - 2).ok());
  EXPECT_FALSE(ingester.Finish().ok());
  // Header-only stream is a valid (empty) shard.
  ShardIngester empty(&collector);
  ASSERT_TRUE(empty.Feed(bytes.data(), kStreamHeaderBytes).ok());
  EXPECT_TRUE(empty.Finish().ok());
  EXPECT_EQ(empty.aggregator().num_reports(), 0u);
}

TEST(ShardIngesterTest, IngestStreamFromIstream) {
  const MixedTupleCollector collector = MakeCollector();
  const std::string bytes = MakeStream(collector, 128);
  std::istringstream source(bytes);
  ShardIngester ingester(&collector);
  ASSERT_TRUE(ingester.IngestStream(source).ok());
  EXPECT_EQ(ingester.aggregator().num_reports(), 128u);
}

}  // namespace
}  // namespace ldp::stream
