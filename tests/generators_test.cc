#include "data/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace ldp::data {
namespace {

using ::ldp::testing::Integrate;
using ::ldp::testing::MeanTolerance;
using ::ldp::testing::SampleStats;

TEST(MakeNumericSchemaTest, NamesAndBounds) {
  const Schema schema = MakeNumericSchema(3);
  EXPECT_EQ(schema.num_columns(), 3u);
  EXPECT_EQ(schema.column(0).name, "x0");
  EXPECT_EQ(schema.column(2).name, "x2");
  for (uint32_t j = 0; j < 3; ++j) {
    EXPECT_EQ(schema.column(j).type, ColumnType::kNumeric);
    EXPECT_EQ(schema.column(j).lo, -1.0);
    EXPECT_EQ(schema.column(j).hi, 1.0);
  }
}

TEST(TruncatedGaussianTest, RespectsBoundsAndMoments) {
  Rng rng(1);
  auto dataset = MakeTruncatedGaussian(4, 50000, 0.0, 0.25, &rng);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().num_rows(), 50000u);
  for (uint32_t col = 0; col < 4; ++col) {
    RunningStats stats;
    for (const double x : dataset.value().numeric_column(col)) {
      ASSERT_GE(x, -1.0);
      ASSERT_LE(x, 1.0);
      stats.Add(x);
    }
    // σ = 1/4 means truncation at ±4σ barely matters: mean ≈ 0, var ≈ 1/16.
    EXPECT_NEAR(stats.Mean(), 0.0, MeanTolerance(stats, 6.0));
    EXPECT_NEAR(stats.SampleVariance(), 1.0 / 16.0, 0.002);
  }
}

TEST(TruncatedGaussianTest, ShiftedMeanIsTruncatedUpward) {
  Rng rng(2);
  auto dataset = MakeTruncatedGaussian(1, 50000, 1.0, 0.25, &rng);
  ASSERT_TRUE(dataset.ok());
  RunningStats stats;
  for (const double x : dataset.value().numeric_column(0)) stats.Add(x);
  // Mass above 1 is cut, so the realised mean sits below 1.
  EXPECT_LT(stats.Mean(), 1.0);
  EXPECT_GT(stats.Mean(), 0.8);
  EXPECT_LE(stats.Max(), 1.0);
}

TEST(TruncatedGaussianTest, ValidatesParameters) {
  Rng rng(3);
  EXPECT_FALSE(MakeTruncatedGaussian(0, 10, 0.0, 0.25, &rng).ok());
  EXPECT_FALSE(MakeTruncatedGaussian(2, 10, 5.0, 0.25, &rng).ok());
  EXPECT_FALSE(MakeTruncatedGaussian(2, 10, 0.0, 0.0, &rng).ok());
  EXPECT_FALSE(MakeTruncatedGaussian(2, 10, 0.0, 11.0, &rng).ok());
}

TEST(UniformTest, MomentsMatch) {
  Rng rng(4);
  auto dataset = MakeUniform(2, 100000, &rng);
  ASSERT_TRUE(dataset.ok());
  for (uint32_t col = 0; col < 2; ++col) {
    RunningStats stats;
    for (const double x : dataset.value().numeric_column(col)) {
      ASSERT_GE(x, -1.0);
      ASSERT_LT(x, 1.0);
      stats.Add(x);
    }
    EXPECT_NEAR(stats.Mean(), 0.0, MeanTolerance(stats, 6.0));
    EXPECT_NEAR(stats.SampleVariance(), 1.0 / 3.0, 0.01);
  }
}

TEST(PowerLawTest, MatchesAnalyticMoments) {
  // pdf ∝ (x+2)^{-10} on [-1, 1] — the paper's Fig. 6b distribution.
  const double c = 2.0, gamma = 10.0;
  auto pdf_unnorm = [&](double x) { return std::pow(x + c, -gamma); };
  const double z = Integrate(pdf_unnorm, -1.0, 1.0, 200000);
  const double expected_mean =
      Integrate([&](double x) { return x * pdf_unnorm(x); }, -1.0, 1.0,
                200000) /
      z;
  Rng rng(5);
  auto dataset = MakePowerLaw(1, 200000, c, gamma, &rng);
  ASSERT_TRUE(dataset.ok());
  RunningStats stats;
  for (const double x : dataset.value().numeric_column(0)) {
    ASSERT_GE(x, -1.0);
    ASSERT_LE(x, 1.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.Mean(), expected_mean, MeanTolerance(stats, 6.0));
  // Heavy skew towards -1.
  EXPECT_LT(stats.Mean(), -0.5);
}

TEST(PowerLawTest, ValidatesParameters) {
  Rng rng(6);
  EXPECT_FALSE(MakePowerLaw(2, 10, 1.0, 10.0, &rng).ok());   // offset <= 1
  EXPECT_FALSE(MakePowerLaw(2, 10, 2.0, 1.0, &rng).ok());    // exponent <= 1
  EXPECT_FALSE(MakePowerLaw(0, 10, 2.0, 10.0, &rng).ok());   // dimension 0
  EXPECT_TRUE(MakePowerLaw(2, 10, 2.0, 10.0, &rng).ok());
}

TEST(GeneratorsTest, DeterministicInSeed) {
  Rng rng_a(7), rng_b(7);
  auto a = MakeUniform(3, 100, &rng_a);
  auto b = MakeUniform(3, 100, &rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint32_t col = 0; col < 3; ++col) {
    EXPECT_EQ(a.value().numeric_column(col), b.value().numeric_column(col));
  }
}

TEST(SampleHelpersTest, SingleDraws) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double g = SampleTruncatedGaussian(0.5, 0.25, &rng);
    EXPECT_GE(g, -1.0);
    EXPECT_LE(g, 1.0);
    const double p = SamplePowerLaw(2.0, 10.0, &rng);
    EXPECT_GE(p, -1.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace ldp::data
