// HE and THE (histogram-encoding oracles).

#include "frequency/histogram_encoding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frequency/histogram.h"
#include "frequency/oue.h"
#include "test_util.h"

namespace ldp {
namespace {

TEST(HeOracleTest, NoiseScaleIsTwoOverEpsilon) {
  EXPECT_DOUBLE_EQ(HeOracle(1.0, 4).noise_scale(), 2.0);
  EXPECT_DOUBLE_EQ(HeOracle(4.0, 4).noise_scale(), 0.5);
}

TEST(HeOracleTest, ReportPacksFullNoisyHistogram) {
  const HeOracle oracle(1.0, 5);
  Rng rng(1);
  const auto report = oracle.Perturb(2, &rng);
  ASSERT_EQ(report.size(), 5u);
  // Unpacking recovers values near the one-hot vector (within noise).
  std::vector<double> support(5, 0.0);
  oracle.Accumulate(report, &support);
  for (uint32_t v = 0; v < 5; ++v) {
    EXPECT_LT(std::abs(support[v] - (v == 2 ? 1.0 : 0.0)), 40.0);
  }
}

TEST(HeOracleTest, FixedPointRoundTripIsTight) {
  // Packing then unpacking must round-trip to within one quantum.
  const HeOracle oracle(1.0, 3);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const auto report = oracle.Perturb(0, &rng);
    std::vector<double> support(3, 0.0);
    oracle.Accumulate(report, &support);
    for (const double value : support) {
      // Any unpacked value is a multiple of the quantum within rounding.
      const double quantum = 1.0 / HeOracle::kFixedPointScale;
      const double remainder =
          std::abs(value / quantum - std::llround(value / quantum));
      EXPECT_LT(remainder, 1e-6);
    }
  }
}

TEST(HeOracleTest, EndToEndEstimatesAreUnbiased) {
  const HeOracle oracle(1.0, 4);
  Rng rng(3);
  const uint64_t n = 60000;
  std::vector<uint32_t> values;
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(rng.Bernoulli(0.4) ? 0u : 3u);
  }
  const std::vector<double> est = EstimateFrequencies(oracle, values, &rng);
  const double tolerance = 6.0 * std::sqrt(oracle.EstimateVariance(0.4, n));
  EXPECT_NEAR(est[0], 0.4, tolerance);
  EXPECT_NEAR(est[3], 0.6, tolerance);
  EXPECT_NEAR(est[1], 0.0, tolerance);
}

TEST(HeOracleTest, EmpiricalVarianceMatchesFormula) {
  const HeOracle oracle(2.0, 3);
  const double f = 0.5;
  const uint64_t n = 500;
  Rng rng(4);
  RunningStats estimates;
  for (int rep = 0; rep < 400; ++rep) {
    FrequencyEstimator estimator(&oracle);
    for (uint64_t i = 0; i < n; ++i) {
      estimator.Add(oracle.Perturb(rng.Bernoulli(f) ? 0u : 1u, &rng));
    }
    estimates.Add(estimator.RawEstimate()[0]);
  }
  const double expected = oracle.EstimateVariance(f, n);
  EXPECT_NEAR(estimates.SampleVariance(), expected,
              expected * ldp::testing::VarianceRelTolerance(400, 3.0));
}

TEST(TheOracleTest, OptimalThetaIsInsideItsRange) {
  for (const double eps : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double theta = TheOracle::OptimalTheta(eps);
    EXPECT_GT(theta, 0.5) << "eps=" << eps;
    EXPECT_LT(theta, 1.0) << "eps=" << eps;
  }
}

TEST(TheOracleTest, OptimalThetaBeatsNearbyThetas) {
  const double eps = 1.0;
  const double optimal = TheOracle::OptimalTheta(eps);
  const TheOracle best(eps, 8, optimal);
  for (const double theta : {0.55, 0.65, 0.75, 0.85, 0.95}) {
    const TheOracle swept(eps, 8, theta);
    EXPECT_GE(swept.EstimateVariance(0.0, 1000),
              best.EstimateVariance(0.0, 1000) - 1e-12)
        << "theta=" << theta;
  }
}

TEST(TheOracleTest, SupportProbabilitiesMatchLaplaceTails) {
  const double eps = 1.0;
  const double theta = 0.7;
  const TheOracle oracle(eps, 4, theta);
  const double b = 2.0 / eps;
  // p = Pr[1 + Lap > θ] with θ − 1 < 0.
  EXPECT_NEAR(oracle.p(), 1.0 - 0.5 * std::exp((theta - 1.0) / b), 1e-12);
  // q = Pr[Lap > θ] with θ > 0.
  EXPECT_NEAR(oracle.q(), 0.5 * std::exp(-theta / b), 1e-12);
  EXPECT_GT(oracle.p(), oracle.q());
}

TEST(TheOracleTest, BitRatesMatchPq) {
  const TheOracle oracle(1.0, 5);
  Rng rng(5);
  const int trials = 100000;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < trials; ++i) {
    for (const uint32_t bit : oracle.Perturb(1, &rng)) ++counts[bit];
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), oracle.p(), 0.01);
  for (const int v : {0, 2, 3, 4}) {
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), oracle.q(), 0.01);
  }
}

TEST(TheOracleTest, EndToEndEstimatesAreUnbiased) {
  const TheOracle oracle(1.0, 6);
  Rng rng(6);
  const uint64_t n = 80000;
  std::vector<uint32_t> values;
  for (uint64_t i = 0; i < n; ++i) {
    values.push_back(rng.Bernoulli(0.7) ? 2u : 5u);
  }
  const std::vector<double> est = EstimateFrequencies(oracle, values, &rng);
  const double tolerance =
      6.0 * std::sqrt(oracle.EstimateVariance(0.7, n)) + 0.005;
  EXPECT_NEAR(est[2], 0.7, tolerance);
  EXPECT_NEAR(est[5], 0.3, tolerance);
  EXPECT_NEAR(est[0], 0.0, tolerance);
}

TEST(TheOracleTest, TheBeatsHeOnVariance) {
  // The thresholding step discards the Laplace tails, so THE's estimate
  // variance at small frequencies beats HE's (Wang et al.'s observation).
  for (const double eps : {0.5, 1.0, 2.0}) {
    const HeOracle he(eps, 8);
    const TheOracle the(eps, 8);
    EXPECT_LT(the.EstimateVariance(0.0, 1000), he.EstimateVariance(0.0, 1000))
        << "eps=" << eps;
  }
}

TEST(HistogramEncodingFactoryTest, CreatesBothKinds) {
  auto he = MakeFrequencyOracle(FrequencyOracleKind::kHe, 1.0, 4);
  auto the = MakeFrequencyOracle(FrequencyOracleKind::kThe, 1.0, 4);
  ASSERT_TRUE(he.ok());
  ASSERT_TRUE(the.ok());
  EXPECT_STREQ(he.value()->name(), "HE");
  EXPECT_STREQ(the.value()->name(), "THE");
}

TEST(HistogramEncodingTest, OueStillBeatsBothAtSmallFrequencies) {
  // Context for the paper's choice of OUE in Section IV-C.
  const double eps = 1.0;
  const OueOracle oue(eps, 8);
  const HeOracle he(eps, 8);
  const TheOracle the(eps, 8);
  EXPECT_LT(oue.EstimateVariance(0.0, 1000), he.EstimateVariance(0.0, 1000));
  EXPECT_LT(oue.EstimateVariance(0.0, 1000), the.EstimateVariance(0.0, 1000));
}

}  // namespace
}  // namespace ldp
