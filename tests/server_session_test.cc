// Multi-epoch ServerSession behavior: per-epoch aggregates that reproduce
// the in-process pipeline bit for bit across >= 2 shards, privacy accounting
// that sums ε across epochs and refuses over-plan collection, and session
// snapshots that round-trip and merge epoch-aligned.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/pipeline.h"
#include "api/server_session.h"
#include "data/census.h"
#include "data/encode.h"
#include "stream/report_stream.h"
#include "util/threadpool.h"

namespace ldp {
namespace {

constexpr double kEpsilon = 4.0;
constexpr uint64_t kRows = 1500;
// One distinct master seed per collection epoch, as a deployment would use.
constexpr uint64_t kEpochSeeds[] = {101, 202};
// Shard boundaries mirror a kPoolThreads-pooled run's ParallelFor chunks
// (threads×4), the repo's bit-reproduction contract for sharded ingestion.
constexpr unsigned kPoolThreads = 2;
constexpr size_t kShards = kPoolThreads * 4;

data::Dataset MakeData() {
  auto dataset = data::MakeBrazilCensus(kRows, 3);
  EXPECT_TRUE(dataset.ok());
  return data::NormalizeNumeric(dataset.value());
}

api::Pipeline MakePipeline(const data::Dataset& dataset, uint32_t epochs) {
  auto config = api::PipelineConfig::FromSchema(dataset.schema(), kEpsilon);
  EXPECT_TRUE(config.ok());
  config.value().plan.epochs = epochs;
  auto pipeline = api::Pipeline::Create(std::move(config).value());
  EXPECT_TRUE(pipeline.ok());
  return std::move(pipeline).value();
}

// One epoch's worth of shard streams whose boundaries split the population
// `num_shards` ways.
std::vector<std::string> WriteEpochShards(const data::Dataset& dataset,
                                          const api::ClientSession& client,
                                          uint64_t seed, size_t num_shards) {
  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  std::vector<std::string> shards;
  for (const IndexRange range : SplitRange(dataset.num_rows(), num_shards)) {
    std::string shard = client.EncodeHeader();
    MixedTuple tuple(d);
    for (uint64_t row = range.begin; row < range.end; ++row) {
      for (uint32_t col = 0; col < d; ++col) {
        if (schema.column(col).type == data::ColumnType::kNumeric) {
          tuple[col].numeric = dataset.numeric(row, col);
        } else {
          tuple[col].category = dataset.category(row, col);
        }
      }
      Rng rng = api::UserRng(seed, row);
      auto payload = client.EncodeReport(tuple, &rng);
      EXPECT_TRUE(payload.ok());
      EXPECT_TRUE(stream::AppendFrame(payload.value(), &shard).ok());
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

void FeedEpoch(api::ServerSession* session,
               const std::vector<std::string>& shards) {
  for (const std::string& bytes : shards) {
    const size_t shard = session->OpenShard();
    ASSERT_TRUE(session->Feed(shard, bytes).ok());
    ASSERT_TRUE(session->CloseShard(shard).ok());
  }
}

void ExpectEpochMatchesCollect(const api::ServerSession& session,
                               uint32_t epoch,
                               const api::CollectionOutput& expected) {
  for (size_t j = 0; j < expected.numeric_columns.size(); ++j) {
    auto mean =
        session.EstimateMean(expected.numeric_columns[j], epoch);
    ASSERT_TRUE(mean.ok());
    EXPECT_EQ(mean.value(), expected.estimated_means[j]);
  }
  for (size_t c = 0; c < expected.categorical_columns.size(); ++c) {
    auto freqs =
        session.EstimateFrequencies(expected.categorical_columns[c], epoch);
    ASSERT_TRUE(freqs.ok());
    EXPECT_EQ(freqs.value(), expected.estimated_frequencies[c]);
  }
}

TEST(ServerSessionTest, TwoEpochShardedRunMatchesCollectAndSumsEpsilon) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 2);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  auto server = pipeline.NewServer();
  ASSERT_TRUE(server.ok());
  api::ServerSession& session = server.value();

  EXPECT_EQ(session.current_epoch(), 0u);
  EXPECT_EQ(session.epsilon_spent(), kEpsilon);

  FeedEpoch(&session, WriteEpochShards(dataset, client.value(),
                                       kEpochSeeds[0], kShards));
  ASSERT_TRUE(session.AdvanceEpoch().ok());
  EXPECT_EQ(session.current_epoch(), 1u);
  FeedEpoch(&session, WriteEpochShards(dataset, client.value(),
                                       kEpochSeeds[1], kShards));

  // The accountant reports the summed spend of both epochs.
  EXPECT_EQ(session.epsilon_spent(), 2 * kEpsilon);
  EXPECT_EQ(session.accountant().lifetime_budget(), 2 * kEpsilon);

  // Each epoch is bit-identical to the single-process pipeline at its seed.
  ThreadPool pool(kPoolThreads);
  for (uint32_t epoch = 0; epoch < 2; ++epoch) {
    auto expected =
        pipeline.Collect(dataset, kEpochSeeds[epoch], &pool);
    ASSERT_TRUE(expected.ok());
    auto reports = session.num_reports(epoch);
    ASSERT_TRUE(reports.ok());
    EXPECT_EQ(reports.value(), kRows);
    ExpectEpochMatchesCollect(session, epoch, expected.value());
  }

  // The plan is exhausted: a third epoch would exceed the lifetime budget.
  EXPECT_FALSE(session.AdvanceEpoch().ok());
  EXPECT_EQ(session.num_epochs(), 2u);
  EXPECT_EQ(session.epsilon_spent(), 2 * kEpsilon);
}

TEST(ServerSessionTest, AdvanceRequiresClosedShards) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 3);
  auto server = pipeline.NewServer();
  ASSERT_TRUE(server.ok());
  const size_t shard = server.value().OpenShard();
  EXPECT_FALSE(server.value().AdvanceEpoch().ok());
  ASSERT_TRUE(server.value().Feed(shard, std::string()).ok());
  // Closing an empty shard fails (no header) but frees the slot...
  EXPECT_FALSE(server.value().CloseShard(shard).ok());
  // ...so the epoch can advance, and the failed shard contributed nothing.
  EXPECT_TRUE(server.value().AdvanceEpoch().ok());
  auto reports = server.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), 0u);
  // Shard ids are never reused across epochs: the stale epoch-0 id errors
  // instead of feeding a fresh shard, and new shards get fresh ids.
  EXPECT_FALSE(server.value().Feed(shard, std::string("x")).ok());
  EXPECT_GT(server.value().OpenShard(), shard);
}

TEST(ServerSessionTest, SessionSnapshotRoundTripsAndMergesEpochAligned) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 2);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());

  const std::vector<std::string> epoch0 =
      WriteEpochShards(dataset, client.value(), kEpochSeeds[0], 2);
  const std::vector<std::string> epoch1 =
      WriteEpochShards(dataset, client.value(), kEpochSeeds[1], 2);

  // Reference: one session that saw everything.
  auto reference = pipeline.NewServer();
  ASSERT_TRUE(reference.ok());
  FeedEpoch(&reference.value(), epoch0);
  ASSERT_TRUE(reference.value().AdvanceEpoch().ok());
  FeedEpoch(&reference.value(), epoch1);

  // Split deployment: two shard servers, each owning half of every epoch's
  // shards, snapshot their sessions; a reducer merges them.
  auto left = pipeline.NewServer();
  auto right = pipeline.NewServer();
  ASSERT_TRUE(left.ok() && right.ok());
  FeedEpoch(&left.value(), {epoch0[0]});
  ASSERT_TRUE(left.value().AdvanceEpoch().ok());
  FeedEpoch(&left.value(), {epoch1[0]});
  FeedEpoch(&right.value(), {epoch0[1]});
  ASSERT_TRUE(right.value().AdvanceEpoch().ok());
  FeedEpoch(&right.value(), {epoch1[1]});

  auto reducer = pipeline.NewServer();
  ASSERT_TRUE(reducer.ok());
  ASSERT_TRUE(reducer.value().Merge(left.value().Snapshot()).ok());
  ASSERT_TRUE(reducer.value().Merge(right.value().Snapshot()).ok());
  EXPECT_EQ(reducer.value().num_epochs(), 2u);
  EXPECT_EQ(reducer.value().epsilon_spent(), 2 * kEpsilon);

  for (uint32_t epoch = 0; epoch < 2; ++epoch) {
    auto expected_reports = reference.value().num_reports(epoch);
    auto merged_reports = reducer.value().num_reports(epoch);
    ASSERT_TRUE(expected_reports.ok() && merged_reports.ok());
    EXPECT_EQ(merged_reports.value(), expected_reports.value());
    auto expected = reference.value().Estimate(epoch);
    auto merged = reducer.value().Estimate(epoch);
    ASSERT_TRUE(expected.ok() && merged.ok());
    EXPECT_EQ(merged.value().means, expected.value().means);
    EXPECT_EQ(merged.value().frequencies, expected.value().frequencies);
  }

  // Corrupt / mismatched session snapshots are rejected without mutating
  // the reducer.
  std::string corrupt = left.value().Snapshot();
  corrupt.resize(corrupt.size() / 2);
  EXPECT_FALSE(reducer.value().Merge(corrupt).ok());
  EXPECT_EQ(reducer.value().num_epochs(), 2u);
}

TEST(ServerSessionTest, SessionSnapshotMergeRespectsTheLifetimeBudget) {
  const data::Dataset dataset = MakeData();
  // The donor runs two epochs; the receiver's plan affords only one.
  const api::Pipeline two_epochs = MakePipeline(dataset, 2);
  auto client = two_epochs.NewClient();
  ASSERT_TRUE(client.ok());
  auto donor = two_epochs.NewServer();
  ASSERT_TRUE(donor.ok());
  FeedEpoch(&donor.value(),
            WriteEpochShards(dataset, client.value(), kEpochSeeds[0], 2));
  ASSERT_TRUE(donor.value().AdvanceEpoch().ok());
  FeedEpoch(&donor.value(),
            WriteEpochShards(dataset, client.value(), kEpochSeeds[1], 2));

  const api::Pipeline one_epoch = MakePipeline(dataset, 1);
  auto receiver = one_epoch.NewServer();
  ASSERT_TRUE(receiver.ok());
  EXPECT_FALSE(receiver.value().Merge(donor.value().Snapshot()).ok());
  EXPECT_EQ(receiver.value().num_epochs(), 1u);
  EXPECT_EQ(receiver.value().epsilon_spent(), kEpsilon);
}

TEST(ServerSessionTest, ReporterLedgersRoundTripThroughSnapshotMerge) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 2);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());

  // Epoch 0: alice ships two shards (one charge), bob one; epoch 1: alice
  // alone. The ledger after this run is the object under test.
  const std::vector<std::string> epoch0 =
      WriteEpochShards(dataset, client.value(), kEpochSeeds[0], 3);
  const std::vector<std::string> epoch1 =
      WriteEpochShards(dataset, client.value(), kEpochSeeds[1], 1);
  const char* kEpoch0Reporters[] = {"alice", "alice", "bob"};

  auto donor = pipeline.NewServer();
  ASSERT_TRUE(donor.ok());
  for (size_t s = 0; s < epoch0.size(); ++s) {
    auto shard = donor.value().OpenShard(kEpoch0Reporters[s]);
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    ASSERT_TRUE(donor.value().Feed(shard.value(), epoch0[s]).ok());
    ASSERT_TRUE(donor.value().CloseShard(shard.value()).ok());
  }
  // Two alice shards in one epoch charge her ledger once.
  EXPECT_EQ(donor.value().accountant().Spent("alice"), kEpsilon);
  ASSERT_TRUE(donor.value().AdvanceEpoch().ok());
  {
    auto shard = donor.value().OpenShard("alice");
    ASSERT_TRUE(shard.ok());
    ASSERT_TRUE(donor.value().Feed(shard.value(), epoch1[0]).ok());
    ASSERT_TRUE(donor.value().CloseShard(shard.value()).ok());
  }
  EXPECT_EQ(donor.value().accountant().Spent("alice"), 2 * kEpsilon);
  EXPECT_EQ(donor.value().accountant().Spent("bob"), kEpsilon);
  // anonymous plan + alice + bob
  EXPECT_EQ(donor.value().accountant().num_charged_reporters(), 3u);

  const std::string snapshot = donor.value().Snapshot();
  auto restored = pipeline.NewServer();
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored.value().Merge(snapshot).ok());
  EXPECT_EQ(restored.value().accountant().Spent("alice"), 2 * kEpsilon);
  EXPECT_EQ(restored.value().accountant().Spent("bob"), kEpsilon);
  EXPECT_EQ(restored.value().accountant().Refusals("alice"), 0u);
  // The v2 snapshot embeds the ledger section, so bit-equality here pins
  // the whole restored state — aggregates and accounting both.
  EXPECT_EQ(restored.value().Snapshot(), snapshot);

  // A snapshot truncated inside the ledger section mutates nothing.
  auto untouched = pipeline.NewServer();
  ASSERT_TRUE(untouched.ok());
  std::string torn = snapshot;
  torn.resize(torn.size() - 5);
  EXPECT_FALSE(untouched.value().Merge(torn).ok());
  EXPECT_EQ(untouched.value().accountant().Spent("alice"), 0.0);
  EXPECT_EQ(untouched.value().num_epochs(), 1u);
}

TEST(ServerSessionTest, MergedEdgesChargeAReporterOncePerEpoch) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  const std::vector<std::string> shards =
      WriteEpochShards(dataset, client.value(), kEpochSeeds[0], 2);

  // alice reports through two different collection edges in one epoch (a
  // reconnect that landed on another shard server). Each edge charges her
  // once; the reducer's union must not sum the two charges.
  auto left = pipeline.NewServer();
  auto right = pipeline.NewServer();
  ASSERT_TRUE(left.ok() && right.ok());
  auto left_shard = left.value().OpenShard("alice");
  ASSERT_TRUE(left_shard.ok());
  ASSERT_TRUE(left.value().Feed(left_shard.value(), shards[0]).ok());
  ASSERT_TRUE(left.value().CloseShard(left_shard.value()).ok());
  auto right_shard = right.value().OpenShard("alice");
  ASSERT_TRUE(right_shard.ok());
  ASSERT_TRUE(right.value().Feed(right_shard.value(), shards[1]).ok());
  ASSERT_TRUE(right.value().CloseShard(right_shard.value()).ok());

  auto reducer = pipeline.NewServer();
  ASSERT_TRUE(reducer.ok());
  ASSERT_TRUE(reducer.value().Merge(left.value().Snapshot()).ok());
  ASSERT_TRUE(reducer.value().Merge(right.value().Snapshot()).ok());
  EXPECT_EQ(reducer.value().accountant().Spent("alice"), kEpsilon);
  auto reports = reducer.value().num_reports(0);
  ASSERT_TRUE(reports.ok());
  EXPECT_EQ(reports.value(), kRows);
}

TEST(ServerSessionTest, LegacyV1SnapshotStillMerges) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto client = pipeline.NewClient();
  ASSERT_TRUE(client.ok());
  auto donor = pipeline.NewServer();
  ASSERT_TRUE(donor.ok());
  FeedEpoch(&donor.value(),
            WriteEpochShards(dataset, client.value(), kEpochSeeds[0], 1));

  // Fabricate the bytes a pre-ledger release would have written: version 1
  // in the preamble and no trailing ledger section. The donor is fully
  // anonymous, so its ledger section has a fixed shape we can strip: u32
  // reporter count, u16 empty id, u64 refusals, u32 entry count, and one
  // (u32 epoch, f64 spent) entry.
  std::string v1 = donor.value().Snapshot();
  constexpr size_t kAnonymousLedgerBytes = 4 + 2 + 8 + 4 + (4 + 8);
  ASSERT_GT(v1.size(), kAnonymousLedgerBytes);
  v1.resize(v1.size() - kAnonymousLedgerBytes);
  v1[4] = static_cast<char>(api::kSessionSnapshotLegacyVersion);
  v1[5] = 0;

  auto receiver = pipeline.NewServer();
  ASSERT_TRUE(receiver.ok());
  ASSERT_TRUE(receiver.value().Merge(v1).ok());
  auto merged = receiver.value().num_reports(0);
  auto expected = donor.value().num_reports(0);
  ASSERT_TRUE(merged.ok() && expected.ok());
  EXPECT_EQ(merged.value(), expected.value());
  // Only the anonymous plan ledger exists: v1 edges never carried ids.
  EXPECT_EQ(receiver.value().accountant().num_charged_reporters(), 1u);
  auto estimates = receiver.value().Estimate(0);
  auto reference = donor.value().Estimate(0);
  ASSERT_TRUE(estimates.ok() && reference.ok());
  EXPECT_EQ(estimates.value().means, reference.value().means);
}

TEST(ServerSessionTest, EstimateChecksEpochBounds) {
  const data::Dataset dataset = MakeData();
  const api::Pipeline pipeline = MakePipeline(dataset, 1);
  auto server = pipeline.NewServer();
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server.value().num_reports(1).ok());
  EXPECT_FALSE(server.value().EstimateMean(0, 1).ok());
  EXPECT_FALSE(server.value().Estimate(1).ok());
  EXPECT_TRUE(server.value().Estimate(0).ok());
}

}  // namespace
}  // namespace ldp
