// Factory, GRR, and the shared debiasing helpers.

#include "frequency/frequency_oracle.h"

#include <gtest/gtest.h>

#include <cmath>

#include "frequency/grr.h"
#include "frequency/histogram.h"
#include "test_util.h"

namespace ldp {
namespace {

TEST(FrequencyOracleFactoryTest, RejectsBadArguments) {
  EXPECT_FALSE(MakeFrequencyOracle(FrequencyOracleKind::kOue, 0.0, 4).ok());
  EXPECT_FALSE(MakeFrequencyOracle(FrequencyOracleKind::kOue, -1.0, 4).ok());
  EXPECT_FALSE(MakeFrequencyOracle(FrequencyOracleKind::kOue, 1.0, 1).ok());
  EXPECT_FALSE(MakeFrequencyOracle(FrequencyOracleKind::kOue, 1.0, 0).ok());
}

TEST(FrequencyOracleFactoryTest, CreatesEveryKind) {
  for (const auto kind :
       {FrequencyOracleKind::kGrr, FrequencyOracleKind::kSue,
        FrequencyOracleKind::kOue, FrequencyOracleKind::kOlh}) {
    auto oracle = MakeFrequencyOracle(kind, 1.0, 6);
    ASSERT_TRUE(oracle.ok());
    EXPECT_STREQ(oracle.value()->name(), FrequencyOracleKindToString(kind));
    EXPECT_EQ(oracle.value()->domain_size(), 6u);
    EXPECT_DOUBLE_EQ(oracle.value()->epsilon(), 1.0);
  }
}

TEST(DebiasSupportCountsTest, InvertsTheSupportExpectation) {
  // With μ = f p + (1-f) q and support = n μ, the estimate must recover f.
  const double p = 0.7, q = 0.2, f = 0.35;
  const uint64_t n = 10000;
  const double mu = f * p + (1.0 - f) * q;
  const std::vector<double> support = {mu * n};
  const std::vector<double> est =
      internal_frequency::DebiasSupportCounts(support, n, p, q);
  ASSERT_EQ(est.size(), 1u);
  EXPECT_NEAR(est[0], f, 1e-12);
}

TEST(DebiasSupportCountsTest, ZeroReportsGiveZeroEstimates) {
  const std::vector<double> est =
      internal_frequency::DebiasSupportCounts({0.0, 0.0}, 0, 0.7, 0.2);
  EXPECT_EQ(est, (std::vector<double>{0.0, 0.0}));
}

TEST(SupportEstimateVarianceTest, MatchesBernoulliFormula) {
  const double p = 0.6, q = 0.1, f = 0.2;
  const uint64_t n = 5000;
  const double mu = f * p + (1.0 - f) * q;
  const double expected = mu * (1.0 - mu) / (n * (p - q) * (p - q));
  EXPECT_NEAR(internal_frequency::SupportEstimateVariance(f, n, p, q),
              expected, 1e-15);
  EXPECT_EQ(internal_frequency::SupportEstimateVariance(f, 0, p, q), 0.0);
}

TEST(GrrOracleTest, ProbabilitiesMatchFormulas) {
  const double eps = 1.2;
  const uint32_t k = 5;
  const GrrOracle oracle(eps, k);
  const double e = std::exp(eps);
  EXPECT_NEAR(oracle.p(), e / (e + k - 1.0), 1e-12);
  EXPECT_NEAR(oracle.q(), 1.0 / (e + k - 1.0), 1e-12);
  // p + (k-1) q = 1: the report distribution is a distribution.
  EXPECT_NEAR(oracle.p() + (k - 1) * oracle.q(), 1.0, 1e-12);
}

TEST(GrrOracleTest, SatisfiesLdpRatio) {
  const double eps = 0.9;
  const GrrOracle oracle(eps, 8);
  // Worst ratio is reporting value v when the input was v vs anything else.
  EXPECT_NEAR(oracle.p() / oracle.q(), std::exp(eps), 1e-9);
}

TEST(GrrOracleTest, ReportDistributionMatchesPq) {
  const GrrOracle oracle(1.0, 4);
  Rng rng(1);
  const int trials = 120000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < trials; ++i) {
    const auto report = oracle.Perturb(2, &rng);
    ASSERT_EQ(report.size(), 1u);
    ASSERT_LT(report[0], 4u);
    ++counts[report[0]];
  }
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), oracle.p(), 0.01);
  for (const int v : {0, 1, 3}) {
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), oracle.q(), 0.01);
  }
}

TEST(GrrOracleTest, EndToEndFrequencyEstimationIsUnbiased) {
  const GrrOracle oracle(1.0, 3);
  Rng rng(2);
  // True frequencies 0.5 / 0.3 / 0.2.
  std::vector<uint32_t> values;
  const uint64_t n = 150000;
  for (uint64_t i = 0; i < n; ++i) {
    const double u = rng.Uniform01();
    values.push_back(u < 0.5 ? 0u : (u < 0.8 ? 1u : 2u));
  }
  const std::vector<double> est = EstimateFrequencies(oracle, values, &rng);
  ASSERT_EQ(est.size(), 3u);
  EXPECT_NEAR(est[0], 0.5, 0.03);
  EXPECT_NEAR(est[1], 0.3, 0.03);
  EXPECT_NEAR(est[2], 0.2, 0.03);
  // Raw GRR estimates sum to exactly 1: Σ (c_v/n − q)/(p−q) with Σc_v = n.
  EXPECT_NEAR(est[0] + est[1] + est[2], 1.0, 1e-9);
}

TEST(GrrOracleTest, EmpiricalVarianceMatchesFormula) {
  const GrrOracle oracle(1.0, 4);
  const double f = 0.4;
  const uint64_t n = 2000;
  Rng rng(3);
  RunningStats err;
  for (int rep = 0; rep < 400; ++rep) {
    FrequencyEstimator estimator(&oracle);
    for (uint64_t i = 0; i < n; ++i) {
      estimator.Add(oracle.Perturb(rng.Bernoulli(f) ? 0u : 1u, &rng));
    }
    err.Add(estimator.RawEstimate()[0]);
  }
  const double expected = oracle.EstimateVariance(f, n);
  EXPECT_NEAR(err.SampleVariance(), expected,
              expected * ldp::testing::VarianceRelTolerance(400, 3.0));
}

TEST(GrrOracleTest, BinaryDomainReducesToRandomizedResponse) {
  const double eps = 1.0;
  const GrrOracle oracle(eps, 2);
  const double e = std::exp(eps);
  EXPECT_NEAR(oracle.p(), e / (e + 1.0), 1e-12);  // Warner's classic RR
  EXPECT_NEAR(oracle.q(), 1.0 / (e + 1.0), 1e-12);
}

}  // namespace
}  // namespace ldp
