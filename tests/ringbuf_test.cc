#include "util/ringbuf.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>

#include "util/random.h"

namespace ldp {
namespace {

TEST(RingBufferTest, StartsEmpty) {
  RingBuffer ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.capacity(), 0u);
}

TEST(RingBufferTest, CapacityIsAlwaysAPowerOfTwo) {
  for (const size_t request : {1u, 63u, 64u, 65u, 1000u, 4096u}) {
    RingBuffer ring(request);
    EXPECT_GE(ring.capacity(), request);
    EXPECT_EQ(ring.capacity() & (ring.capacity() - 1), 0u) << request;
  }
  RingBuffer grown;
  grown.Append(std::string(100, 'x').data(), 100);
  EXPECT_GE(grown.capacity(), 100u);
  EXPECT_EQ(grown.capacity() & (grown.capacity() - 1), 0u);
}

TEST(RingBufferTest, AppendConsumeRoundTrip) {
  RingBuffer ring;
  const std::string bytes = "hello, ring";
  ring.Append(bytes.data(), bytes.size());
  EXPECT_EQ(ring.size(), bytes.size());
  std::string scratch;
  EXPECT_EQ(std::string(ring.Contiguous(bytes.size(), &scratch), bytes.size()),
            bytes);
  ring.Consume(5);
  EXPECT_EQ(ring.size(), bytes.size() - 5);
  EXPECT_EQ(std::string(ring.Contiguous(ring.size(), &scratch), ring.size()),
            bytes.substr(5));
}

TEST(RingBufferTest, WrappedReadGoesThroughScratch) {
  RingBuffer ring(8);
  const size_t capacity = ring.capacity();
  // March the head to 3 bytes before the physical end, then store a payload
  // that must wrap.
  const std::string filler(capacity - 3, 'f');
  ring.Append(filler.data(), filler.size());
  ring.Consume(filler.size());
  const std::string payload = "abcdef";
  ring.Append(payload.data(), payload.size());
  ASSERT_EQ(ring.size(), payload.size());
  EXPECT_EQ(ring.FirstSpan().size, 3u);   // up to the physical end
  EXPECT_EQ(ring.SecondSpan().size, 3u);  // wrapped remainder
  std::string scratch;
  const char* read = ring.Contiguous(payload.size(), &scratch);
  EXPECT_EQ(std::string(read, payload.size()), payload);
  EXPECT_EQ(read, scratch.data());  // assembled, not in place
}

TEST(RingBufferTest, ContiguousReadIsInPlace) {
  RingBuffer ring(16);
  const std::string payload = "0123456789";
  ring.Append(payload.data(), payload.size());
  std::string scratch;
  const char* read = ring.Contiguous(payload.size(), &scratch);
  EXPECT_TRUE(scratch.empty());
  EXPECT_EQ(std::string(read, payload.size()), payload);
}

TEST(RingBufferTest, GrowthLinearisesWrappedContent) {
  RingBuffer ring(8);
  const size_t capacity = ring.capacity();
  const std::string filler(capacity - 2, 'f');
  ring.Append(filler.data(), filler.size());
  ring.Consume(filler.size());
  // Wrap, then force a growth while wrapped.
  const std::string first = "abcd";
  ring.Append(first.data(), first.size());
  const std::string second(3 * capacity, 'z');
  ring.Append(second.data(), second.size());
  ASSERT_EQ(ring.size(), first.size() + second.size());
  std::string scratch;
  const std::string read(ring.Contiguous(ring.size(), &scratch), ring.size());
  EXPECT_EQ(read, first + second);
}

TEST(RingBufferTest, ClearKeepsCapacity) {
  RingBuffer ring(64);
  const size_t capacity = ring.capacity();
  ring.Append("data", 4);
  ring.Clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), capacity);
}

TEST(RingBufferTest, RandomisedFifoEquivalence) {
  // The ring must behave exactly like a byte FIFO across arbitrary
  // interleavings of appends and consumes, including wraps and growth.
  Rng rng(99);
  RingBuffer ring(16);
  std::deque<char> model;
  std::string scratch;
  uint8_t next_byte = 0;
  for (int step = 0; step < 5000; ++step) {
    if (rng.Bernoulli(0.55)) {
      const size_t count = 1 + rng.UniformIndex(37);
      std::string bytes;
      for (size_t i = 0; i < count; ++i) {
        bytes.push_back(static_cast<char>(next_byte));
        model.push_back(static_cast<char>(next_byte));
        ++next_byte;
      }
      ring.Append(bytes.data(), bytes.size());
    } else if (!model.empty()) {
      const size_t count = 1 + rng.UniformIndex(model.size());
      const char* read = ring.Contiguous(count, &scratch);
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(read[i], model[i]) << "step " << step << " byte " << i;
      }
      ring.Consume(count);
      model.erase(model.begin(), model.begin() + static_cast<long>(count));
    }
    ASSERT_EQ(ring.size(), model.size());
  }
}

}  // namespace
}  // namespace ldp
