#include "ml/ldp_sgd.h"

#include <gtest/gtest.h>

#include "ml/evaluate.h"
#include "util/random.h"

namespace ldp::ml {
namespace {

// Linearly separable labels sign(x0 + x1) over [-1, 1]².
void FillSeparable(data::DesignMatrix* features, std::vector<double>* labels,
                   uint64_t n, Rng* rng) {
  for (uint64_t i = 0; i < n; ++i) {
    const double x0 = rng->Uniform(-1.0, 1.0);
    const double x1 = rng->Uniform(-1.0, 1.0);
    features->set(i, 0, x0);
    features->set(i, 1, x1);
    (*labels)[i] = (x0 + x1 >= 0.0) ? 1.0 : -1.0;
  }
}

TEST(AutoGroupSizeTest, ScalesWithDimensionAndBudget) {
  // Θ(d log d / ε²), clamped to keep at least ~10 iterations.
  const uint32_t small = AutoGroupSize(1000000, 10, 1.0);
  const uint32_t large_d = AutoGroupSize(1000000, 100, 1.0);
  const uint32_t large_eps = AutoGroupSize(1000000, 10, 4.0);
  EXPECT_GT(large_d, small);
  EXPECT_LE(large_eps, small);
  // Small populations still leave several iterations.
  EXPECT_LE(AutoGroupSize(1000, 100, 0.5), 100u);
  EXPECT_GE(AutoGroupSize(1000, 100, 0.5), 1u);
}

TEST(GradientPerturberTest, Names) {
  EXPECT_STREQ(GradientPerturberToString(GradientPerturber::kNonPrivate),
               "Non-private");
  EXPECT_STREQ(GradientPerturberToString(GradientPerturber::kLaplaceSplit),
               "Laplace");
  EXPECT_STREQ(GradientPerturberToString(GradientPerturber::kDuchiMulti),
               "Duchi");
  EXPECT_STREQ(GradientPerturberToString(GradientPerturber::kPiecewiseSampled),
               "PM");
  EXPECT_STREQ(GradientPerturberToString(GradientPerturber::kHybridSampled),
               "HM");
}

TEST(TrainLdpSgdTest, ValidatesInputs) {
  data::DesignMatrix features(10, 2);
  std::vector<double> labels(10, 1.0);
  LdpSgdOptions options;
  options.epsilon = 0.0;
  EXPECT_FALSE(TrainLdpSgd(features, labels, LossKind::kHinge, options).ok());
  options = {};
  options.group_size = 100;  // exceeds population
  EXPECT_FALSE(TrainLdpSgd(features, labels, LossKind::kHinge, options).ok());
  options = {};
  options.learning_rate = -1.0;
  EXPECT_FALSE(TrainLdpSgd(features, labels, LossKind::kHinge, options).ok());
  std::vector<double> mismatched(5, 1.0);
  EXPECT_FALSE(TrainLdpSgd(features, mismatched, LossKind::kHinge, {}).ok());
}

TEST(TrainLdpSgdTest, NonPrivateLearnsSeparableData) {
  Rng rng(1);
  const uint64_t n = 20000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillSeparable(&features, &labels, n, &rng);
  LdpSgdOptions options;
  options.perturber = GradientPerturber::kNonPrivate;
  options.group_size = 200;
  options.seed = 2;
  auto beta = TrainLdpSgd(features, labels, LossKind::kLogistic, options);
  ASSERT_TRUE(beta.ok());
  EXPECT_LT(MisclassificationRate(features, labels, beta.value()), 0.05);
}

class LdpSgdPerturberTest
    : public ::testing::TestWithParam<GradientPerturber> {};

INSTANTIATE_TEST_SUITE_P(Perturbers, LdpSgdPerturberTest,
                         ::testing::Values(GradientPerturber::kLaplaceSplit,
                                           GradientPerturber::kDuchiMulti,
                                           GradientPerturber::kPiecewiseSampled,
                                           GradientPerturber::kHybridSampled));

TEST_P(LdpSgdPerturberTest, LearnsSeparableDataUnderPrivacy) {
  Rng rng(3);
  const uint64_t n = 40000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillSeparable(&features, &labels, n, &rng);
  LdpSgdOptions options;
  options.perturber = GetParam();
  options.epsilon = 2.0;
  options.seed = 4;
  auto beta = TrainLdpSgd(features, labels, LossKind::kHinge, options);
  ASSERT_TRUE(beta.ok());
  // Under ε = 2 with 40k users, every mechanism should beat random guessing
  // decisively on this easy problem.
  EXPECT_LT(MisclassificationRate(features, labels, beta.value()), 0.25)
      << GradientPerturberToString(GetParam());
}

TEST_P(LdpSgdPerturberTest, DeterministicInSeed) {
  Rng rng(5);
  const uint64_t n = 2000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillSeparable(&features, &labels, n, &rng);
  LdpSgdOptions options;
  options.perturber = GetParam();
  options.epsilon = 1.0;
  options.group_size = 100;
  options.seed = 6;
  auto a = TrainLdpSgd(features, labels, LossKind::kLogistic, options);
  auto b = TrainLdpSgd(features, labels, LossKind::kLogistic, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value(), b.value());
}

TEST(TrainLdpSgdTest, HigherBudgetGivesBetterModels) {
  Rng rng(7);
  const uint64_t n = 40000;
  data::DesignMatrix features(n, 2);
  std::vector<double> labels(n);
  FillSeparable(&features, &labels, n, &rng);

  auto error_at = [&](double eps) {
    double total = 0.0;
    const int reps = 3;
    for (int rep = 0; rep < reps; ++rep) {
      LdpSgdOptions options;
      options.perturber = GradientPerturber::kHybridSampled;
      options.epsilon = eps;
      options.seed = 10 + rep;
      auto beta = TrainLdpSgd(features, labels, LossKind::kLogistic, options);
      EXPECT_TRUE(beta.ok());
      total += MisclassificationRate(features, labels, beta.value());
    }
    return total / reps;
  };
  // ε = 4 should clearly beat ε = 0.25 on average.
  EXPECT_LT(error_at(4.0), error_at(0.25) + 0.02);
}

TEST(TrainLdpSgdTest, ProposedBeatsLaplaceSplitOnHighDimensionalData) {
  // The Fig. 9–11 headline on a synthetic high-dimensional task: Algorithm 4
  // gradients (HM) beat per-coordinate Laplace at equal budget.
  Rng rng(8);
  const uint64_t n = 30000;
  const uint32_t d = 30;
  data::DesignMatrix features(n, d);
  std::vector<double> labels(n);
  for (uint64_t i = 0; i < n; ++i) {
    double score = 0.0;
    for (uint32_t j = 0; j < d; ++j) {
      const double x = rng.Uniform(-1.0, 1.0);
      features.set(i, j, x);
      score += (j < 3 ? 1.0 : 0.0) * x;  // only 3 informative features
    }
    labels[i] = score >= 0.0 ? 1.0 : -1.0;
  }
  auto run = [&](GradientPerturber perturber) {
    double total = 0.0;
    const int reps = 3;
    for (int rep = 0; rep < reps; ++rep) {
      LdpSgdOptions options;
      options.perturber = perturber;
      options.epsilon = 1.0;
      options.seed = 20 + rep;
      auto beta = TrainLdpSgd(features, labels, LossKind::kLogistic, options);
      EXPECT_TRUE(beta.ok());
      total += MisclassificationRate(features, labels, beta.value());
    }
    return total / reps;
  };
  EXPECT_LT(run(GradientPerturber::kHybridSampled),
            run(GradientPerturber::kLaplaceSplit));
}

}  // namespace
}  // namespace ldp::ml
