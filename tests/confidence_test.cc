#include "aggregate/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/hybrid.h"
#include "frequency/oue.h"
#include "util/random.h"
#include "util/stats.h"

namespace ldp::aggregate {
namespace {

TEST(NormalQuantileTest, MatchesStandardValues) {
  EXPECT_NEAR(NormalQuantile(0.95), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.99), 2.575829, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.6827), 1.0, 1e-3);
}

TEST(MeanConfidenceIntervalTest, ValidatesArguments) {
  const HybridMechanism mech(1.0);
  EXPECT_FALSE(MeanConfidenceInterval(0.0, mech, 0, 0.95).ok());
  EXPECT_FALSE(MeanConfidenceInterval(0.0, mech, 100, 0.0).ok());
  EXPECT_FALSE(MeanConfidenceInterval(0.0, mech, 100, 1.0).ok());
  EXPECT_TRUE(MeanConfidenceInterval(0.0, mech, 100, 0.95).ok());
}

TEST(MeanConfidenceIntervalTest, WidthMatchesWorstCaseVariance) {
  const HybridMechanism mech(1.0);
  const uint64_t n = 10000;
  auto interval = MeanConfidenceInterval(0.3, mech, n, 0.95);
  ASSERT_TRUE(interval.ok());
  const double expected =
      1.959964 * std::sqrt(mech.WorstCaseVariance() / n);
  EXPECT_NEAR(interval.value().HalfWidth(), expected, 1e-6);
  EXPECT_DOUBLE_EQ(interval.value().estimate, 0.3);
  EXPECT_NEAR(interval.value().lo, 0.3 - expected, 1e-6);
  EXPECT_NEAR(interval.value().hi, 0.3 + expected, 1e-6);
}

TEST(MeanConfidenceIntervalTest, WidthShrinksWithUsersAndConfidence) {
  const HybridMechanism mech(1.0);
  auto narrow = MeanConfidenceInterval(0.0, mech, 40000, 0.95);
  auto wide = MeanConfidenceInterval(0.0, mech, 10000, 0.95);
  auto confident = MeanConfidenceInterval(0.0, mech, 10000, 0.999);
  ASSERT_TRUE(narrow.ok() && wide.ok() && confident.ok());
  EXPECT_NEAR(narrow.value().HalfWidth(), wide.value().HalfWidth() / 2.0,
              1e-9);
  EXPECT_GT(confident.value().HalfWidth(), wide.value().HalfWidth());
}

TEST(MeanConfidenceIntervalTest, EmpiricalCoverageAtLeastNominal) {
  // The interval uses the worst-case variance, so coverage must be >= 95%.
  const HybridMechanism mech(1.0);
  const uint64_t n = 2000;
  const double truth = 0.4;
  Rng rng(1);
  int covered = 0;
  const int reps = 400;
  for (int rep = 0; rep < reps; ++rep) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) sum += mech.Perturb(truth, &rng);
    const double estimate = sum / static_cast<double>(n);
    auto interval = MeanConfidenceInterval(estimate, mech, n, 0.95);
    ASSERT_TRUE(interval.ok());
    if (truth >= interval.value().lo && truth <= interval.value().hi) {
      ++covered;
    }
  }
  EXPECT_GE(covered, static_cast<int>(reps * 0.93));
}

TEST(SampledMeanConfidenceIntervalTest, UsesCoordinateVariance) {
  auto mech = SampledNumericMechanism::Create(MechanismKind::kHybrid, 1.0, 8);
  ASSERT_TRUE(mech.ok());
  const uint64_t n = 5000;
  auto interval = SampledMeanConfidenceInterval(0.1, mech.value(), n, 0.95);
  ASSERT_TRUE(interval.ok());
  const double expected =
      1.959964 *
      std::sqrt(mech.value().WorstCaseCoordinateVariance() / n);
  EXPECT_NEAR(interval.value().HalfWidth(), expected, 1e-6);
}

TEST(FrequencyConfidenceIntervalTest, UsesOracleVariance) {
  const OueOracle oracle(1.0, 8);
  const uint64_t n = 20000;
  auto interval = FrequencyConfidenceInterval(0.25, oracle, n, 0.95);
  ASSERT_TRUE(interval.ok());
  const double expected =
      1.959964 * std::sqrt(oracle.EstimateVariance(0.25, n));
  EXPECT_NEAR(interval.value().HalfWidth(), expected, 1e-6);
}

TEST(FrequencyConfidenceIntervalTest, ClampsEstimateForVarianceEvaluation) {
  // A raw estimate of -0.02 must not crash the variance formula.
  const OueOracle oracle(1.0, 8);
  auto interval = FrequencyConfidenceInterval(-0.02, oracle, 1000, 0.95);
  ASSERT_TRUE(interval.ok());
  EXPECT_LT(interval.value().lo, interval.value().hi);
}

TEST(FrequencyConfidenceIntervalTest, EmpiricalCoverage) {
  const OueOracle oracle(1.0, 4);
  const uint64_t n = 3000;
  const double truth = 0.3;
  Rng rng(2);
  int covered = 0;
  const int reps = 300;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> support(4, 0.0);
    for (uint64_t i = 0; i < n; ++i) {
      oracle.Accumulate(
          oracle.Perturb(rng.Bernoulli(truth) ? 0u : 2u, &rng), &support);
    }
    const double estimate = oracle.Estimate(support, n)[0];
    auto interval = FrequencyConfidenceInterval(estimate, oracle, n, 0.95);
    ASSERT_TRUE(interval.ok());
    if (truth >= interval.value().lo && truth <= interval.value().hi) {
      ++covered;
    }
  }
  // Nominal 95% with Monte-Carlo slack.
  EXPECT_GE(covered, static_cast<int>(reps * 0.90));
}

}  // namespace
}  // namespace ldp::aggregate
