// Whole-pipeline integration tests: census generation → normalisation →
// ε-LDP collection → estimation, and the full LDP-SGD learning workflow on
// census data — the flows behind Figs. 4 and 9–11.

#include <gtest/gtest.h>

#include "api/pipeline.h"
#include "aggregate/metrics.h"
#include "data/census.h"
#include "data/encode.h"
#include "data/split.h"
#include "ml/evaluate.h"
#include "ml/ldp_sgd.h"

namespace ldp {
namespace {

// The retired CollectProposed wrapper, inlined over the session facade.
Result<api::CollectionOutput> CollectProposed(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    MechanismKind numeric_kind = MechanismKind::kHybrid,
    FrequencyOracleKind oracle_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr) {
  api::PipelineConfig config;
  config.epsilon = epsilon;
  config.mechanism = numeric_kind;
  config.oracle = oracle_kind;
  LDP_ASSIGN_OR_RETURN(config.attributes,
                       api::AttributesFromSchema(dataset.schema()));
  Result<api::Pipeline> pipeline =
      api::Pipeline::Create(std::move(config));
  if (!pipeline.ok()) return pipeline.status();
  return pipeline.value().Collect(dataset, seed, pool);
}


TEST(EndToEndCollectionTest, CensusPipelineRecoverStatistics) {
  auto census = data::MakeMexicoCensus(40000, 1);
  ASSERT_TRUE(census.ok());
  const data::Dataset normalized = data::NormalizeNumeric(census.value());

  auto output = CollectProposed(normalized, 4.0, 2);
  ASSERT_TRUE(output.ok());
  // Every numeric mean within loose absolute error; frequencies too.
  EXPECT_LT(aggregate::NumericMaxAbsError(output.value()), 0.2);
  EXPECT_LT(aggregate::CategoricalMaxAbsError(output.value()), 0.2);
}

TEST(EndToEndCollectionTest, EpsilonMonotonicity) {
  // Fig. 4's x-axis behaviour: error decreases as ε grows.
  auto census = data::MakeBrazilCensus(30000, 3);
  ASSERT_TRUE(census.ok());
  const data::Dataset normalized = data::NormalizeNumeric(census.value());
  double previous = 1e9;
  for (const double eps : {0.5, 2.0, 8.0}) {
    double mse = 0.0;
    const int reps = 5;
    for (int rep = 0; rep < reps; ++rep) {
      auto output =
          CollectProposed(normalized, eps, 10 * rep + 1);
      ASSERT_TRUE(output.ok());
      mse += aggregate::NumericMse(output.value()) / reps;
    }
    EXPECT_LT(mse, previous * 1.05) << "eps=" << eps;
    previous = mse;
  }
}

TEST(EndToEndLearningTest, LogisticRegressionOnCensus) {
  // Train an income classifier under ε-LDP and compare against non-private:
  // the private model must clearly beat chance and sit within a reasonable
  // gap of the non-private reference (Fig. 9's qualitative content).
  auto census = data::MakeBrazilCensus(30000, 4);
  ASSERT_TRUE(census.ok());
  const uint32_t label_col =
      census.value().schema().FindColumn(data::kIncomeColumn).value();
  auto features = data::EncodeFeatures(census.value(), label_col);
  auto labels = data::EncodeBinaryLabel(census.value(), label_col);
  ASSERT_TRUE(features.ok() && labels.ok());

  ml::LdpSgdOptions non_private;
  non_private.perturber = ml::GradientPerturber::kNonPrivate;
  non_private.group_size = 200;
  non_private.seed = 5;
  auto beta_np = ml::TrainLdpSgd(features.value(), labels.value(),
                                 ml::LossKind::kLogistic, non_private);
  ASSERT_TRUE(beta_np.ok());
  const double error_np = ml::MisclassificationRate(
      features.value(), labels.value(), beta_np.value());
  EXPECT_LT(error_np, 0.35);

  ml::LdpSgdOptions private_options;
  private_options.perturber = ml::GradientPerturber::kHybridSampled;
  private_options.epsilon = 4.0;
  private_options.seed = 6;
  auto beta_hm = ml::TrainLdpSgd(features.value(), labels.value(),
                                 ml::LossKind::kLogistic, private_options);
  ASSERT_TRUE(beta_hm.ok());
  const double error_hm = ml::MisclassificationRate(
      features.value(), labels.value(), beta_hm.value());
  EXPECT_LT(error_hm, 0.45);
  EXPECT_LT(error_np, error_hm + 0.05);
}

TEST(EndToEndLearningTest, LinearRegressionOnCensus) {
  auto census = data::MakeMexicoCensus(30000, 7);
  ASSERT_TRUE(census.ok());
  const uint32_t label_col =
      census.value().schema().FindColumn(data::kIncomeColumn).value();
  auto features = data::EncodeFeatures(census.value(), label_col);
  auto labels = data::EncodeNumericLabel(census.value(), label_col);
  ASSERT_TRUE(features.ok() && labels.ok());

  // Baseline MSE of the zero model (predicting 0 for every row).
  const double zero_mse = ml::RegressionMse(
      features.value(), labels.value(),
      std::vector<double>(features.value().num_cols(), 0.0));

  ml::LdpSgdOptions options;
  options.perturber = ml::GradientPerturber::kHybridSampled;
  options.epsilon = 4.0;
  options.seed = 8;
  auto beta = ml::TrainLdpSgd(features.value(), labels.value(),
                              ml::LossKind::kSquared, options);
  ASSERT_TRUE(beta.ok());
  const double mse =
      ml::RegressionMse(features.value(), labels.value(), beta.value());
  // The learned model must explain some variance despite the noise.
  EXPECT_LT(mse, zero_mse);
}

TEST(EndToEndLearningTest, CrossValidatedSvmOnCensusSubsample) {
  auto census = data::MakeBrazilCensus(6000, 9);
  ASSERT_TRUE(census.ok());
  const uint32_t label_col =
      census.value().schema().FindColumn(data::kIncomeColumn).value();
  auto features = data::EncodeFeatures(census.value(), label_col);
  auto labels = data::EncodeBinaryLabel(census.value(), label_col);
  ASSERT_TRUE(features.ok() && labels.ok());

  Rng rng(10);
  auto trainer = [](const data::DesignMatrix& x,
                    const std::vector<double>& y)
      -> Result<std::vector<double>> {
    ml::LdpSgdOptions options;
    options.perturber = ml::GradientPerturber::kHybridSampled;
    options.epsilon = 4.0;
    options.group_size = 250;
    options.seed = 11;
    return ml::TrainLdpSgd(x, y, ml::LossKind::kHinge, options);
  };
  auto result =
      ml::CrossValidate(features.value(), labels.value(), 3, 1,
                        ml::EvalMetric::kMisclassification, trainer, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().fold_metrics.size(), 3u);
  EXPECT_LT(result.value().mean, 0.5);
}

TEST(EndToEndTest, DimensionalitySubsetsStillCollectCorrectly) {
  // Fig. 8's machinery: restrict the MX schema to its first q columns.
  auto census = data::MakeMexicoCensus(20000, 12);
  ASSERT_TRUE(census.ok());
  const data::Dataset normalized = data::NormalizeNumeric(census.value());
  std::vector<uint32_t> first_ten(10);
  for (uint32_t j = 0; j < 10; ++j) first_ten[j] = j;
  auto subset = normalized.SelectColumns(first_ten);
  ASSERT_TRUE(subset.ok());
  auto output = CollectProposed(subset.value(), 1.0, 13);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output.value().numeric_columns.size() +
                output.value().categorical_columns.size(),
            10u);
}

}  // namespace
}  // namespace ldp
