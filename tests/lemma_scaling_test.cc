// Empirical verification of the paper's accuracy guarantees:
//  - Lemma 2: for one attribute, |Z − X| = O(√log(1/β) / (ε √n));
//  - Lemma 5: for Algorithm 4, max_j |Z_j − X_j| = O(√(d log(d/β)) / (ε √n)).
// The tests check the scaling empirically: multiplying n by 4 should halve
// the error; doubling ε should halve it; and the max-error should grow at
// most ~√(d log d) in d. Everything is averaged over repetitions to keep the
// assertions statistically stable.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hybrid.h"
#include "core/sampled_numeric.h"
#include "util/random.h"
#include "util/stats.h"

namespace ldp {
namespace {

// Mean absolute estimation error of a 1-D HM mean estimate.
double OneDimMeanError(double epsilon, uint64_t n, int reps, Rng* rng) {
  const HybridMechanism mech(epsilon);
  RunningStats errors;
  for (int rep = 0; rep < reps; ++rep) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) sum += mech.Perturb(0.25, rng);
    errors.Add(std::abs(sum / static_cast<double>(n) - 0.25));
  }
  return errors.Mean();
}

// Mean max-coordinate error of an Algorithm 4 (HM) tuple collection.
double MaxCoordinateError(double epsilon, uint32_t d, uint64_t n, int reps,
                          Rng* rng) {
  auto mech = SampledNumericMechanism::Create(MechanismKind::kHybrid, epsilon,
                                              d);
  EXPECT_TRUE(mech.ok());
  const std::vector<double> truth(d, 0.25);
  RunningStats errors;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> sums(d, 0.0);
    for (uint64_t i = 0; i < n; ++i) {
      for (const SampledValue& entry : mech.value().Perturb(truth, rng)) {
        sums[entry.attribute] += entry.value;
      }
    }
    double worst = 0.0;
    for (uint32_t j = 0; j < d; ++j) {
      worst = std::max(worst,
                       std::abs(sums[j] / static_cast<double>(n) - 0.25));
    }
    errors.Add(worst);
  }
  return errors.Mean();
}

TEST(Lemma2ScalingTest, ErrorHalvesWhenUsersQuadruple) {
  Rng rng(1);
  const double e_small = OneDimMeanError(1.0, 2000, 60, &rng);
  const double e_large = OneDimMeanError(1.0, 32000, 60, &rng);
  // 16x users → 4x smaller error; allow [2.5x, 6.5x].
  const double ratio = e_small / e_large;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.5);
}

TEST(Lemma2ScalingTest, ErrorScalesInverselyWithEpsilon) {
  // In the small-ε regime the error behaves like 1/ε.
  Rng rng(2);
  const double e_tight = OneDimMeanError(0.25, 8000, 60, &rng);
  const double e_loose = OneDimMeanError(1.0, 8000, 60, &rng);
  const double ratio = e_tight / e_loose;
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

TEST(Lemma5ScalingTest, MaxErrorHalvesWhenUsersQuadruple) {
  Rng rng(3);
  const double e_small = MaxCoordinateError(1.0, 8, 4000, 30, &rng);
  const double e_large = MaxCoordinateError(1.0, 8, 64000, 30, &rng);
  const double ratio = e_small / e_large;  // expect ~4
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.5);
}

TEST(Lemma5ScalingTest, MaxErrorGrowsSublinearlyInDimension) {
  // Lemma 5 predicts growth ~√(d log d): from d=4 to d=16 that is a factor
  // of ~2.6; a split-budget approach would grow ~4x (linearly). Accept
  // anything clearly below linear and above constant.
  Rng rng(4);
  const double e_small = MaxCoordinateError(1.0, 4, 20000, 30, &rng);
  const double e_large = MaxCoordinateError(1.0, 16, 20000, 30, &rng);
  const double ratio = e_large / e_small;
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 3.8);
}

TEST(Lemma5ScalingTest, ErrorMatchesVariancePrediction) {
  // The measured max error should sit near the Gaussian-approximation
  // prediction E[max_j |N(0, σ²/n)|] ≈ σ/√n · √(2 log d) (within a small
  // constant), where σ² is the per-coordinate variance.
  Rng rng(5);
  const double eps = 1.0;
  const uint32_t d = 8;
  const uint64_t n = 50000;
  auto mech = SampledNumericMechanism::Create(MechanismKind::kHybrid, eps, d);
  ASSERT_TRUE(mech.ok());
  const double sigma = std::sqrt(mech.value().CoordinateVariance(0.25) /
                                 static_cast<double>(n));
  const double predicted = sigma * std::sqrt(2.0 * std::log(d));
  const double measured = MaxCoordinateError(eps, d, n, 30, &rng);
  EXPECT_GT(measured, predicted / 3.0);
  EXPECT_LT(measured, predicted * 3.0);
}

}  // namespace
}  // namespace ldp
