// Table-driven coverage of the shared CLI flag parsers (tools/tool_flags.h).
// The tools all parse `--oracle`/`--mechanism`/`--stream` and the campaign
// identity flags through these helpers; the tables here pin the exact
// vocabulary and validation rules so a drift in any one binary would have to
// change a shared parser and fail this test.

#include "tool_flags.h"

#include <gtest/gtest.h>

#include <string>

namespace ldp::tools {
namespace {

constexpr unsigned kAllIdentityFlags =
    kFlagReporterId | kFlagCampaignKey | kFlagNodeId;

struct IdentityCase {
  const char* flag;
  std::string value;
  unsigned allowed;
  bool consumed;  // recognized as an enabled identity flag
  bool valid;     // no validation error
};

TEST(IdentityFlagTest, Table) {
  const std::string max_id(net::kMaxReporterIdBytes, 'a');
  const IdentityCase kCases[] = {
      {"--reporter-id", "user-7", kAllIdentityFlags, true, true},
      {"--reporter-id", max_id, kAllIdentityFlags, true, true},
      {"--reporter-id", max_id + "a", kAllIdentityFlags, true, false},
      {"--reporter-id", "", kAllIdentityFlags, true, false},
      // A tool that does not enable the flag must leave it unparsed.
      {"--reporter-id", "user-7", kFlagCampaignKey | kFlagNodeId, false, true},
      {"--campaign-key", "hunter2", kAllIdentityFlags, true, true},
      {"--campaign-key", "", kAllIdentityFlags, true, false},
      {"--campaign-key", "hunter2", kFlagReporterId, false, true},
      {"--node-id", "42", kAllIdentityFlags, true, true},
      {"--node-id", "0", kAllIdentityFlags, true, true},
      {"--node-id", "4x2", kAllIdentityFlags, true, false},
      {"--node-id", "", kAllIdentityFlags, true, false},
      {"--node-id", "42", kFlagReporterId | kFlagCampaignKey, false, true},
      // Non-identity flags never match, whatever is enabled.
      {"--oracle", "oue", kAllIdentityFlags, false, true},
      {"--schema", "s.schema", kAllIdentityFlags, false, true},
  };
  for (const IdentityCase& c : kCases) {
    SCOPED_TRACE(std::string(c.flag) + "=" + c.value);
    IdentityFlags flags;
    std::string error;
    bool value_taken = false;
    auto next = [&]() -> const char* {
      value_taken = true;
      return c.value.c_str();
    };
    const bool consumed =
        ParseIdentityFlag(c.flag, next, c.allowed, &flags, &error);
    EXPECT_EQ(consumed, c.consumed);
    EXPECT_EQ(value_taken, c.consumed);  // operand pulled iff flag matched
    EXPECT_EQ(error.empty(), c.valid) << error;
  }
}

TEST(IdentityFlagTest, StoresParsedValues) {
  IdentityFlags flags;
  std::string error;
  const char* reporter = "user-7";
  const char* key = "hunter2";
  const char* node = "17";
  EXPECT_TRUE(ParseIdentityFlag(
      "--reporter-id", [&] { return reporter; }, kAllIdentityFlags, &flags,
      &error));
  EXPECT_TRUE(ParseIdentityFlag(
      "--campaign-key", [&] { return key; }, kAllIdentityFlags, &flags,
      &error));
  EXPECT_TRUE(ParseIdentityFlag(
      "--node-id", [&] { return node; }, kAllIdentityFlags, &flags, &error));
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(flags.reporter_id, "user-7");
  EXPECT_EQ(flags.campaign_key, "hunter2");
  EXPECT_EQ(flags.node_id, 17u);
}

TEST(IdentityFlagTest, ReporterIdentityPairingRule) {
  struct PairCase {
    const char* reporter_id;
    const char* campaign_key;
    bool ok;
  };
  const PairCase kCases[] = {
      {"", "", true},             // unauthenticated run
      {"user-7", "hunter2", true},  // authenticated run
      {"user-7", "", false},      // id with nothing to sign it
      {"", "hunter2", false},     // key with nobody to sign for
  };
  for (const PairCase& c : kCases) {
    SCOPED_TRACE(std::string("id=") + c.reporter_id + " key=" +
                 c.campaign_key);
    IdentityFlags flags;
    flags.reporter_id = c.reporter_id;
    flags.campaign_key = c.campaign_key;
    std::string error;
    EXPECT_EQ(CheckReporterIdentity(flags, &error), c.ok);
    EXPECT_EQ(error.empty(), c.ok) << error;
  }
}

TEST(VocabularyFlagTest, OracleTable) {
  struct OracleCase {
    const char* name;
    bool ok;
    FrequencyOracleKind kind;
  };
  const OracleCase kCases[] = {
      {"oue", true, FrequencyOracleKind::kOue},
      {"grr", true, FrequencyOracleKind::kGrr},
      {"sue", true, FrequencyOracleKind::kSue},
      {"olh", true, FrequencyOracleKind::kOlh},
      {"he", true, FrequencyOracleKind::kHe},
      {"the", true, FrequencyOracleKind::kThe},
      {"OUE", false, FrequencyOracleKind::kOue},
      {"", false, FrequencyOracleKind::kOue},
      {"rappor", false, FrequencyOracleKind::kOue},
  };
  for (const OracleCase& c : kCases) {
    SCOPED_TRACE(c.name);
    FrequencyOracleKind kind = FrequencyOracleKind::kOue;
    EXPECT_EQ(ParseOracleFlag(c.name, &kind), c.ok);
    if (c.ok) EXPECT_EQ(kind, c.kind);
  }
}

TEST(VocabularyFlagTest, MechanismAndWireTables) {
  MechanismKind mechanism = MechanismKind::kHybrid;
  EXPECT_TRUE(ParseMechanismFlag("hm", &mechanism));
  EXPECT_EQ(mechanism, MechanismKind::kHybrid);
  EXPECT_TRUE(ParseMechanismFlag("pm", &mechanism));
  EXPECT_EQ(mechanism, MechanismKind::kPiecewise);
  EXPECT_FALSE(ParseMechanismFlag("laplace", &mechanism));

  api::WirePreference wire = api::WirePreference::kAuto;
  EXPECT_TRUE(ParseWireFlag("auto", &wire));
  EXPECT_EQ(wire, api::WirePreference::kAuto);
  EXPECT_TRUE(ParseWireFlag("mixed", &wire));
  EXPECT_EQ(wire, api::WirePreference::kMixed);
  EXPECT_TRUE(ParseWireFlag("numeric", &wire));
  EXPECT_EQ(wire, api::WirePreference::kNumeric);
  EXPECT_FALSE(ParseWireFlag("binary", &wire));
}

}  // namespace
}  // namespace ldp::tools
