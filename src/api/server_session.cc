#include "api/server_session.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

#include "core/wire.h"
#include "obs/journal.h"
#include "stream/snapshot.h"
#include "util/check.h"

namespace ldp::api {

namespace {

using internal_api::PipelineState;
using internal_wire::PutF64;
using internal_wire::PutU16;
using internal_wire::PutU32;
using internal_wire::PutU64;
using internal_wire::PutU8;
using internal_wire::Reader;

// Matches core/accountant.cc kSlack: absorbs floating-point drift when the
// plan spends exactly the lifetime budget.
constexpr double kBudgetSlack = 1e-12;

// Distinct reporter ids that get their own labeled metric series before new
// ids collapse into {reporter="_other"} — keeps a campaign with millions of
// reporters from exploding the exposition.
constexpr size_t kMaxLabeledReporters = 8;

// Exposition-safe label value: reporter ids are opaque bytes, label values
// must stay printable.
std::string SanitizeReporterLabel(const std::string& reporter_id) {
  std::string label = reporter_id;
  for (char& c : label) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                      c == '-';
    if (!safe) c = '_';
  }
  return label;
}

// Parses and validates the fixed-size session preamble, leaving `reader`
// positioned at the first epoch section.
Result<SessionSnapshotConfig> ReadSessionPreamble(Reader* reader) {
  uint32_t magic = 0;
  LDP_ASSIGN_OR_RETURN(magic, reader->U32());
  if (magic != kSessionSnapshotMagic) {
    return Status::InvalidArgument("not a session snapshot (bad magic)");
  }
  uint16_t version = 0;
  LDP_ASSIGN_OR_RETURN(version, reader->U16());
  if (version != kSessionSnapshotVersion &&
      version != kSessionSnapshotLegacyVersion) {
    return Status::InvalidArgument("unsupported session snapshot version");
  }
  uint8_t kind = 0, mechanism = 0, oracle = 0;
  LDP_ASSIGN_OR_RETURN(kind, reader->U8());
  LDP_ASSIGN_OR_RETURN(mechanism, reader->U8());
  LDP_ASSIGN_OR_RETURN(oracle, reader->U8());
  if (kind > static_cast<uint8_t>(stream::ReportStreamKind::kSampledNumeric)) {
    return Status::InvalidArgument("unknown stream kind in session snapshot");
  }
  if (mechanism > static_cast<uint8_t>(MechanismKind::kHybrid)) {
    return Status::InvalidArgument(
        "unknown mechanism kind in session snapshot");
  }
  if (oracle > static_cast<uint8_t>(FrequencyOracleKind::kThe)) {
    return Status::InvalidArgument("unknown oracle kind in session snapshot");
  }
  SessionSnapshotConfig config;
  config.version = version;
  config.kind = static_cast<stream::ReportStreamKind>(kind);
  config.mechanism = static_cast<MechanismKind>(mechanism);
  config.oracle = static_cast<FrequencyOracleKind>(oracle);
  LDP_ASSIGN_OR_RETURN(config.schema_hash, reader->U64());
  LDP_ASSIGN_OR_RETURN(config.epsilon, reader->F64());
  LDP_ASSIGN_OR_RETURN(config.epochs, reader->U32());
  if (config.epochs == 0) {
    return Status::InvalidArgument("session snapshot carries no epochs");
  }
  return config;
}

// Sums the num_reports fields of a session snapshot's epoch sections by
// reading only the fixed-offset preambles (stats display; the actual merge
// re-validates everything).
uint64_t SessionSnapshotReportCount(const std::string& bytes) {
  Reader reader(bytes.data(), bytes.size());
  Result<SessionSnapshotConfig> preamble = ReadSessionPreamble(&reader);
  if (!preamble.ok()) return 0;
  uint64_t total = 0;
  for (uint32_t e = 0; e < preamble.value().epochs; ++e) {
    const Result<uint64_t> size = reader.U64();
    if (!size.ok()) return total;
    const char* inner = reader.TakeBytes(size.value());
    if (inner == nullptr) return total;
    // Inner aggregator snapshot: magic u32, version u16, two kind bytes,
    // hash u64, ε f64, dimension u32, k u32, then num_reports u64.
    Reader inner_reader(inner, size.value());
    if (inner_reader.TakeBytes(4 + 2 + 1 + 1 + 8 + 8 + 4 + 4) == nullptr) {
      return total;
    }
    const Result<uint64_t> reports = inner_reader.U64();
    if (reports.ok()) total += reports.value();
  }
  return total;
}

}  // namespace

Result<SessionSnapshotConfig> DecodeSessionSnapshotConfig(
    const std::string& bytes) {
  Reader reader(bytes.data(), bytes.size());
  return ReadSessionPreamble(&reader);
}

bool LooksLikeSessionSnapshot(const std::string& bytes) {
  if (bytes.size() < 4) return false;
  Reader reader(bytes.data(), bytes.size());
  const Result<uint32_t> magic = reader.U32();
  return magic.ok() && magic.value() == kSessionSnapshotMagic;
}

Result<ServerSession> Pipeline::NewServer() const {
  return NewServer(ServerSessionOptions());
}

Result<ServerSession> Pipeline::NewServer(ServerSessionOptions options) const {
  if (state_->config.baseline.has_value()) {
    return Status::FailedPrecondition(
        "baseline pipelines are simulation-only and have no wire sessions");
  }
  Result<PrivacyAccountant> accountant =
      PrivacyAccountant::Create(state_->lifetime_budget);
  if (!accountant.ok()) return accountant.status();
  // Opening a session opens epoch 0: its budget is committed to the
  // population (the anonymous plan ledger) up front.
  Result<ChargeOutcome> charged = accountant.value().Charge(
      kAnonymousReporter, /*epoch=*/0, state_->config.epsilon);
  if (!charged.ok()) return charged.status();
  if (!charged.value().accepted) {
    return Status::FailedPrecondition(
        "charge would exceed the user's lifetime budget");
  }
  return ServerSession(state_, std::move(accountant).value(),
                       std::move(options));
}

ServerSession::ServerSession(
    std::shared_ptr<const internal_api::PipelineState> state,
    PrivacyAccountant accountant, ServerSessionOptions options)
    : state_(std::move(state)),
      accountant_(std::move(accountant)),
      options_(std::move(options)),
      mutex_(std::make_unique<std::mutex>()) {
  epochs_.push_back(NewEpochAggregate());
  // A zero bound would make the backpressure wait unsatisfiable (nothing
  // would ever be queued for workers to consume).
  options_.max_pending_feed_bytes =
      std::max<size_t>(1, options_.max_pending_feed_bytes);
  // Resolve telemetry handles once; every shard ingester shares the same
  // counter bundle, and the owned pool reports through the same registry.
  metrics_ = obs::SessionMetrics::ForRegistry(options_.metrics);
  options_.ingest.metrics = obs::IngestMetrics::ForRegistry(options_.metrics);
  if (metrics_.enabled()) {
    metrics_.epochs_opened->Increment();  // epoch 0, charged by NewServer
    metrics_.epsilon_spent->Set(accountant_.Spent(kAnonymousReporter));
  }
  if (options_.ingest_threads >= 2) {
    pool_ = std::make_unique<ThreadPool>(
        options_.ingest_threads,
        obs::PoolMetrics::ForRegistry(options_.metrics));
  }
}

std::unique_ptr<stream::AggregatorHandle> ServerSession::NewEpochAggregate()
    const {
  if (state_->kind == stream::ReportStreamKind::kSampledNumeric) {
    return std::make_unique<stream::NumericAggregatorHandle>(
        &*state_->numeric, state_->config.mechanism);
  }
  return std::make_unique<stream::MixedAggregatorHandle>(&*state_->collector);
}

Status ServerSession::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(*mutex_);
  return AdvanceEpochLocked();
}

Status ServerSession::AdvanceEpochLocked() {
  if (open_shards_ > 0) {
    return Status::FailedPrecondition(
        "close every shard before advancing the epoch");
  }
  const Result<ChargeOutcome> charged =
      accountant_.Charge(kAnonymousReporter,
                         static_cast<uint32_t>(epochs_.size()),
                         state_->config.epsilon);
  if (!charged.ok()) return charged.status();
  if (!charged.value().accepted) {
    if (metrics_.enabled()) metrics_.budget_refusals->Increment();
    if (options_.journal != nullptr) {
      options_.journal->Record(obs::EventKind::kAccountantRefuse,
                               epochs_.size() - 1);
    }
    return Status::FailedPrecondition(
        "charge would exceed the user's lifetime budget");
  }
  epochs_.push_back(NewEpochAggregate());
  if (metrics_.enabled()) {
    metrics_.epochs_opened->Increment();
    metrics_.epsilon_spent->Set(accountant_.Spent(kAnonymousReporter));
  }
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kEpochAdvance, epochs_.size() - 1);
  }
  // Closed shards stay as tombstones so shard ids are never reused: a stale
  // id held across the epoch boundary gets "already closed", not somebody
  // else's shard.
  return Status::OK();
}

double ServerSession::epsilon_spent() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return accountant_.Spent(kAnonymousReporter);
}

ServerSession::ReporterMetricHandles ServerSession::ReporterMetrics(
    const std::string& reporter_id) {
  ReporterMetricHandles handles;
  if (options_.metrics == nullptr) return handles;
  std::string label = SanitizeReporterLabel(reporter_id);
  if (labeled_reporters_.count(label) == 0) {
    if (labeled_reporters_.size() >= kMaxLabeledReporters) {
      label = "_other";
    } else {
      labeled_reporters_.insert(label);
    }
  }
  handles.refusals = options_.metrics->GetCounter(
      "ldp_session_budget_refusals_total", {{"reporter", label}});
  handles.spent = options_.metrics->GetGauge(
      "ldp_session_reporter_epsilon_spent", {{"reporter", label}});
  return handles;
}

size_t ServerSession::OpenShard() {
  std::lock_guard<std::mutex> lock(*mutex_);
  return OpenShardLocked();
}

Result<size_t> ServerSession::OpenShard(const std::string& reporter_id) {
  std::lock_guard<std::mutex> lock(*mutex_);
  if (!reporter_id.empty()) {
    // Charge the reporter's own ledger before anything opens. Idempotent
    // per (reporter, epoch): reconnects and extra shards within the epoch
    // are already paid for.
    const Result<ChargeOutcome> charged = accountant_.Charge(
        reporter_id, static_cast<uint32_t>(epochs_.size()) - 1,
        state_->config.epsilon);
    if (!charged.ok()) return charged.status();
    const ReporterMetricHandles handles = ReporterMetrics(reporter_id);
    if (!charged.value().accepted) {
      if (metrics_.enabled()) metrics_.budget_refusals->Increment();
      if (handles.refusals != nullptr) handles.refusals->Increment();
      if (options_.journal != nullptr) {
        options_.journal->Record(obs::EventKind::kAccountantRefuse,
                                 epochs_.size() - 1);
      }
      return Status::FailedPrecondition(
          "reporter's lifetime budget cannot afford this epoch");
    }
    if (handles.spent != nullptr) handles.spent->Set(charged.value().spent);
  }
  return OpenShardLocked();
}

size_t ServerSession::OpenShardLocked() {
  ShardState shard;
  shard.ingester = std::make_unique<stream::ShardIngester>(
      NewEpochAggregate(), options_.ingest);
  if (pool_ != nullptr) {
    shard.async = std::make_shared<AsyncShardState>();
  }
  shards_.push_back(std::move(shard));
  ++open_shards_;
  const size_t id = shards_.size() - 1;
  if (metrics_.enabled()) metrics_.shards_opened->Increment();
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kShardOpen, id,
                             epochs_.size() - 1);
  }
  return id;
}

void ServerSession::DrainShard(size_t shard) const {
  if (pool_ != nullptr) pool_->WaitSerial(shard);
}

Status ServerSession::Feed(size_t shard, const char* data, size_t size) {
  // pool_ is immutable after construction, so the mode check needs no lock.
  if (pool_ == nullptr) {
    std::lock_guard<std::mutex> lock(*mutex_);
    return FeedLocked(shard, data, size);
  }
  // Concurrent path: the chunk copy — what lets the caller reuse its buffer
  // immediately — happens before the session lock, so producers feeding
  // different shards only serialize on the O(1) enqueue, not the memcpy.
  std::string chunk(data, size);
  // Grab the shard's flow-control block (and fail fast on a bad id).
  std::shared_ptr<AsyncShardState> async;
  {
    std::lock_guard<std::mutex> lock(*mutex_);
    if (shard >= shards_.size()) {
      return Status::OutOfRange("unknown shard id");
    }
    if (shards_[shard].ingester == nullptr) {
      return Status::FailedPrecondition("shard is already closed");
    }
    async = shards_[shard].async;
  }
  // Backpressure, outside every session lock so other shards keep flowing:
  // wait until the shard's queued bytes drop below the bound (workers only
  // consume, so the wait always terminates — a drain or poisoned stream
  // empties the queue quickly).
  {
    std::unique_lock<std::mutex> flow(async->mutex);
    const bool would_block =
        async->pending_bytes >= options_.max_pending_feed_bytes;
    // Only an actual block is worth two clock reads; the common non-blocked
    // Feed stays untimed.
    const uint64_t wait_started_ns =
        would_block && metrics_.enabled() ? obs::SteadyNowNs() : 0;
    async->capacity.wait(flow, [&] {
      return async->pending_bytes < options_.max_pending_feed_bytes;
    });
    if (wait_started_ns != 0) {
      metrics_.backpressure_wait_us->Observe(
          (obs::SteadyNowNs() - wait_started_ns) / 1000);
    }
    // Surface a previously recorded worker-side framing error (sticky,
    // like the synchronous Feed).
    if (!async->status.ok()) return async->status;
  }
  std::lock_guard<std::mutex> lock(*mutex_);
  // Re-validate: the shard may have been closed while we waited.
  ShardState& state = shards_[shard];
  if (state.ingester == nullptr) {
    return Status::FailedPrecondition("shard is already closed");
  }
  stream::ShardIngester* ingester = state.ingester.get();
  obs::Gauge* pending_gauge = metrics_.pending_feed_bytes;
  {
    std::lock_guard<std::mutex> flow(async->mutex);
    if (!async->status.ok()) return async->status;
    async->pending_bytes += chunk.size();
  }
  if (pending_gauge != nullptr) {
    pending_gauge->Add(static_cast<double>(chunk.size()));
  }
  // Enqueue on the shard's serial queue — per-shard FIFO keeps the byte
  // stream intact.
  pool_->SubmitSerial(
      shard, [ingester, async, pending_gauge, chunk = std::move(chunk)] {
        const Status fed = ingester->Feed(chunk.data(), chunk.size());
        if (pending_gauge != nullptr) {
          pending_gauge->Add(-static_cast<double>(chunk.size()));
        }
        std::lock_guard<std::mutex> flow(async->mutex);
        if (!fed.ok() && async->status.ok()) async->status = fed;
        async->pending_bytes -= chunk.size();
        async->capacity.notify_all();
      });
  return Status::OK();
}

Status ServerSession::FeedLocked(size_t shard, const char* data, size_t size) {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("unknown shard id");
  }
  ShardState& state = shards_[shard];
  if (state.ingester == nullptr) {
    return Status::FailedPrecondition("shard is already closed");
  }
  return state.ingester->Feed(data, size);
}

Status ServerSession::CloseShard(size_t shard) {
  // Close latency covers the queued-chunk drain plus the ordered merge —
  // the interval a merge-barrier caller actually waits on.
  const uint64_t close_started_ns =
      metrics_.enabled() ? obs::SteadyNowNs() : 0;
  std::unique_lock<std::mutex> lock(*mutex_);
  if (shard >= shards_.size()) {
    return Status::OutOfRange("unknown shard id");
  }
  // Detach the ingester first: racing Feed calls on this shard now get
  // "already closed" instead of enqueueing behind the drain, so after
  // DrainShard the ingester is quiescent and owned by this thread. The
  // shard still counts as open (AdvanceEpoch keeps refusing) until the
  // merge below commits.
  std::unique_ptr<stream::ShardIngester> ingester =
      std::move(shards_[shard].ingester);
  if (ingester == nullptr) {
    return Status::FailedPrecondition("shard is already closed");
  }
  if (pool_ != nullptr) {
    // Drain without the session lock: other shards' producers keep
    // enqueueing while this shard's backlog decodes.
    lock.unlock();
    DrainShard(shard);
    lock.lock();
  }
  // Finish() reports any framing error a worker hit (the ingester's status
  // is sticky).
  const Status finished = ingester->Finish();
  shards_[shard].final_stats = ingester->stats();
  // A failed shard contributes nothing: its aggregate is discarded so one
  // poisoned stream cannot corrupt the epoch.
  Status merged = Status::OK();
  if (finished.ok()) {
    merged = epochs_.back()->Merge(ingester->handle());
  }
  --open_shards_;
  if (metrics_.enabled()) {
    metrics_.shards_closed->Increment();
    metrics_.close_wait_us->Observe(
        (obs::SteadyNowNs() - close_started_ns) / 1000);
  }
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kShardClose, shard,
                             epochs_.size() - 1);
  }
  if (!finished.ok()) return finished;
  return merged;
}

Result<stream::ShardIngester::Stats> ServerSession::AbandonShard(
    size_t shard) {
  std::unique_lock<std::mutex> lock(*mutex_);
  if (shard >= shards_.size()) {
    return Status::OutOfRange("unknown shard id");
  }
  // Detach-then-drain, exactly like CloseShard: racing Feed calls get
  // "already closed", and after the drain the ingester is quiescent.
  std::unique_ptr<stream::ShardIngester> ingester =
      std::move(shards_[shard].ingester);
  if (ingester == nullptr) {
    return Status::FailedPrecondition("shard is already closed");
  }
  if (pool_ != nullptr) {
    lock.unlock();
    DrainShard(shard);
    lock.lock();
  }
  shards_[shard].final_stats = ingester->stats();
  --open_shards_;
  if (metrics_.enabled()) metrics_.shards_abandoned->Increment();
  if (options_.journal != nullptr) {
    options_.journal->Record(obs::EventKind::kShardAbandon, shard,
                             epochs_.size() - 1);
  }
  return shards_[shard].final_stats;
}

Result<stream::ShardIngester::Stats> ServerSession::ShardStats(
    size_t shard) const {
  std::unique_lock<std::mutex> lock(*mutex_);
  if (shard >= shards_.size()) {
    return Status::OutOfRange("unknown shard id");
  }
  if (shards_[shard].ingester == nullptr) {
    return shards_[shard].final_stats;
  }
  if (pool_ != nullptr) {
    // Drain without the session lock (other shards keep flowing), then
    // re-check: the shard may have been closed while unlocked.
    lock.unlock();
    DrainShard(shard);
    lock.lock();
    if (shards_[shard].ingester == nullptr) {
      return shards_[shard].final_stats;
    }
  }
  return shards_[shard].ingester->stats();
}

Status ServerSession::IngestStream(std::istream& in) {
  const size_t shard = OpenShard();
  // Routed through the public Feed so a concurrent session decodes file
  // chunks on its pool; each call takes the session mutex independently.
  std::string chunk(64 * 1024, '\0');
  Status fed = Status::OK();
  while (in.good() && fed.ok()) {
    in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
    const auto got = static_cast<size_t>(in.gcount());
    if (got == 0) break;
    fed = Feed(shard, chunk.data(), got);
  }
  if (in.bad()) fed = Status::IoError("read error on report stream");
  if (!fed.ok()) {
    (void)AbandonShard(shard);
    return fed;
  }
  return CloseShard(shard);
}

Status ServerSession::IngestInputs(const std::vector<std::string>& paths,
                                   ThreadPool* pool,
                                   stream::MultiShardSummary* summary) {
  if (paths.empty()) {
    return Status::InvalidArgument("no inputs to ingest");
  }
  // Holds the session mutex end to end: inputs load on pool workers that
  // never touch session state, and the ordered merge below must see a
  // stable epoch table.
  std::lock_guard<std::mutex> lock(*mutex_);
  if (pool == nullptr) pool = pool_.get();
  // Phase 1, concurrent: every input is loaded into either a shard-sized
  // aggregate (report streams, single-epoch snapshots — via the shared
  // stream/parallel_ingest.h loaders) or its raw bytes (session snapshots,
  // whose epoch-aligned merge must stay ordered).
  struct Loaded {
    Status status = Status::OK();
    std::unique_ptr<stream::AggregatorHandle> handle;  // stream or snapshot
    std::string session_bytes;                         // session snapshot
    stream::ShardIngester::Stats stats;
    bool is_session = false;
  };
  const size_t n = paths.size();
  std::vector<Loaded> loaded(n);
  std::vector<stream::HandleShardSource> sources(n);
  const stream::AggregatorHandle& prototype = *epochs_.back();
  for (size_t i = 0; i < n; ++i) {
    std::ifstream in(paths[i], std::ios::binary);
    if (!in.is_open()) {
      loaded[i].status = Status::IoError("cannot open input file");
      continue;
    }
    char magic_bytes[4] = {0, 0, 0, 0};
    in.read(magic_bytes, 4);
    if (in.gcount() != 4) {
      loaded[i].status = Status::InvalidArgument("input shorter than a magic");
      continue;
    }
    const uint32_t magic =
        internal_wire::LoadLittleEndian<uint32_t>(magic_bytes);
    if (magic == stream::kStreamMagic) {
      sources[i] = stream::HandleStreamFileSource(prototype, paths[i],
                                                  options_.ingest);
    } else if (magic == stream::kSnapshotMagic ||
               magic == stream::kNumericSnapshotMagic) {
      sources[i] = stream::HandleSnapshotFileSource(prototype, paths[i]);
    } else if (magic == kSessionSnapshotMagic) {
      loaded[i].is_session = true;
    } else {
      loaded[i].status = Status::InvalidArgument(
          "input is neither a report stream nor a snapshot");
    }
  }
  ParallelFor(pool, n, [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      Loaded& input = loaded[i];
      if (!input.status.ok()) continue;
      if (input.is_session) {
        std::ifstream in(paths[i], std::ios::binary);
        std::ostringstream contents;
        contents << in.rdbuf();
        if (!in.is_open() || in.bad()) {
          input.status = Status::IoError("read error on input file");
          continue;
        }
        input.session_bytes = contents.str();
        input.stats.bytes = input.session_bytes.size();
        input.stats.accepted =
            SessionSnapshotReportCount(input.session_bytes);
        continue;
      }
      Result<std::unique_ptr<stream::AggregatorHandle>> handle =
          sources[i].load(&input.stats);
      if (handle.ok()) {
        input.handle = std::move(handle).value();
      } else {
        input.status = handle.status();
      }
    }
  });

  stream::MultiShardSummary local_summary;
  for (size_t i = 0; i < n; ++i) {
    stream::ShardIngestOutcome outcome;
    outcome.source = paths[i];
    outcome.status = loaded[i].status;
    outcome.stats = loaded[i].stats;
    local_summary.total_reports += outcome.stats.accepted;
    local_summary.total_rejected += outcome.stats.rejected;
    local_summary.total_bytes += outcome.stats.bytes;
    local_summary.shards.push_back(std::move(outcome));
  }
  if (summary != nullptr) *summary = local_summary;

  for (size_t i = 0; i < n; ++i) {
    if (!loaded[i].status.ok()) {
      return Status(loaded[i].status.code(),
                    "input '" + paths[i] + "': " + loaded[i].status.message());
    }
  }

  // Phase 2, ordered: merge in argument order. Plain inputs land in the
  // epoch that was current at the call; session snapshots align by epoch.
  stream::AggregatorHandle* target = epochs_.back().get();
  for (size_t i = 0; i < n; ++i) {
    Status merged = Status::OK();
    if (loaded[i].handle != nullptr) {
      merged = target->Merge(*loaded[i].handle);
    } else {
      merged = MergeLocked(loaded[i].session_bytes);
    }
    if (!merged.ok()) {
      return Status(merged.code(),
                    "input '" + paths[i] + "': " + merged.message());
    }
  }
  return Status::OK();
}

Status ServerSession::Merge(const std::string& snapshot_bytes) {
  std::lock_guard<std::mutex> lock(*mutex_);
  return MergeLocked(snapshot_bytes);
}

Status ServerSession::MergeLocked(const std::string& snapshot_bytes) {
  if (!LooksLikeSessionSnapshot(snapshot_bytes)) {
    return epochs_.back()->MergeEncodedSnapshot(snapshot_bytes);
  }
  Reader reader(snapshot_bytes.data(), snapshot_bytes.size());
  SessionSnapshotConfig peer;
  LDP_ASSIGN_OR_RETURN(peer, ReadSessionPreamble(&reader));
  if (peer.kind != state_->kind) {
    return Status::FailedPrecondition(
        "session snapshot stream kind does not match the pipeline");
  }
  if (peer.mechanism != state_->header.mechanism ||
      peer.oracle != state_->header.oracle) {
    return Status::FailedPrecondition(
        "session snapshot mechanism/oracle kinds do not match the pipeline");
  }
  if (peer.schema_hash != state_->header.schema_hash) {
    return Status::FailedPrecondition(
        "session snapshot schema hash does not match the pipeline");
  }
  if (peer.epsilon != state_->config.epsilon) {
    return Status::FailedPrecondition(
        "session snapshot epsilon does not match the pipeline");
  }
  const uint32_t peer_epochs = peer.epochs;

  // Cheap refusals first (nothing decoded yet), then stage every epoch
  // section so a malformed snapshot mutates nothing, then commit.
  if (peer_epochs > epochs_.size()) {
    if (open_shards_ > 0) {
      return Status::FailedPrecondition(
          "close every shard before merging a longer session");
    }
    const double extra =
        static_cast<double>(peer_epochs - epochs_.size()) *
        state_->config.epsilon;
    if (accountant_.Remaining(kAnonymousReporter) + kBudgetSlack < extra) {
      return Status::FailedPrecondition(
          "merging the session would exceed the lifetime budget");
    }
  }
  std::vector<std::unique_ptr<stream::AggregatorHandle>> staged;
  staged.reserve(peer_epochs);
  for (uint32_t e = 0; e < peer_epochs; ++e) {
    uint64_t inner_size = 0;
    LDP_ASSIGN_OR_RETURN(inner_size, reader.U64());
    const char* inner = reader.TakeBytes(inner_size);
    if (inner == nullptr) {
      return Status::InvalidArgument("truncated session snapshot epoch");
    }
    std::unique_ptr<stream::AggregatorHandle> handle = NewEpochAggregate();
    LDP_RETURN_IF_ERROR(
        handle->MergeEncodedSnapshot(std::string(inner, inner_size)));
    staged.push_back(std::move(handle));
  }
  // Stage the per-reporter ledger section (v2) before anything commits, so
  // a truncated snapshot mutates nothing.
  struct StagedLedger {
    std::string reporter;
    uint64_t refusals = 0;
    std::vector<std::pair<uint32_t, double>> entries;
  };
  std::vector<StagedLedger> staged_ledgers;
  if (peer.version >= kSessionSnapshotVersion) {
    uint32_t num_reporters = 0;
    LDP_ASSIGN_OR_RETURN(num_reporters, reader.U32());
    staged_ledgers.reserve(
        std::min<size_t>(num_reporters, 1u << 16));
    for (uint32_t r = 0; r < num_reporters; ++r) {
      StagedLedger ledger;
      uint16_t id_length = 0;
      LDP_ASSIGN_OR_RETURN(id_length, reader.U16());
      const char* id = reader.TakeBytes(id_length);
      if (id == nullptr) {
        return Status::InvalidArgument(
            "truncated reporter ledger in session snapshot");
      }
      ledger.reporter.assign(id, id_length);
      LDP_ASSIGN_OR_RETURN(ledger.refusals, reader.U64());
      uint32_t num_entries = 0;
      LDP_ASSIGN_OR_RETURN(num_entries, reader.U32());
      // 12 bytes per entry bounds a hostile count against the payload.
      if (num_entries > (snapshot_bytes.size() / 12) + 1) {
        return Status::InvalidArgument(
            "reporter ledger entry count exceeds snapshot size");
      }
      ledger.entries.reserve(num_entries);
      for (uint32_t i = 0; i < num_entries; ++i) {
        uint32_t epoch = 0;
        double spent = 0.0;
        LDP_ASSIGN_OR_RETURN(epoch, reader.U32());
        LDP_ASSIGN_OR_RETURN(spent, reader.F64());
        ledger.entries.emplace_back(epoch, spent);
      }
      staged_ledgers.push_back(std::move(ledger));
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after session snapshot");
  }
  for (uint32_t e = 0; e < peer_epochs; ++e) {
    if (e >= epochs_.size()) LDP_RETURN_IF_ERROR(AdvanceEpochLocked());
    LDP_RETURN_IF_ERROR(epochs_[e]->Merge(*staged[e]));
  }
  // Union the peer's ledgers by (reporter, epoch): a reporter both edges
  // saw in an epoch is restored once, not summed — the exactly-once
  // guarantee across relay edges. Refusal counters add.
  for (const StagedLedger& ledger : staged_ledgers) {
    for (const auto& [epoch, spent] : ledger.entries) {
      LDP_RETURN_IF_ERROR(
          accountant_.RestoreCharge(ledger.reporter, epoch, spent));
    }
    accountant_.RestoreRefusals(ledger.reporter, ledger.refusals);
  }
  return Status::OK();
}

std::string ServerSession::Snapshot() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::string out;
  PutU32(&out, kSessionSnapshotMagic);
  PutU16(&out, kSessionSnapshotVersion);
  PutU8(&out, static_cast<uint8_t>(state_->kind));
  PutU8(&out, static_cast<uint8_t>(state_->header.mechanism));
  PutU8(&out, static_cast<uint8_t>(state_->header.oracle));
  PutU64(&out, state_->header.schema_hash);
  PutF64(&out, state_->config.epsilon);
  PutU32(&out, static_cast<uint32_t>(epochs_.size()));
  for (const std::unique_ptr<stream::AggregatorHandle>& epoch : epochs_) {
    const std::string inner = epoch->EncodeSnapshot();
    PutU64(&out, inner.size());
    out.append(inner);
  }
  // v2 ledger section: every reporter's spend history, in ascending id
  // order (std::map iteration), so two sessions that saw the same charges
  // serialize bit-identically.
  const auto& ledgers = accountant_.ledgers();
  PutU32(&out, static_cast<uint32_t>(ledgers.size()));
  for (const auto& [reporter, ledger] : ledgers) {
    PutU16(&out, static_cast<uint16_t>(reporter.size()));
    out.append(reporter);
    PutU64(&out, ledger.refusals);
    PutU32(&out, static_cast<uint32_t>(ledger.epoch_spend.size()));
    for (const auto& [epoch, spent] : ledger.epoch_spend) {
      PutU32(&out, epoch);
      PutF64(&out, spent);
    }
  }
  return out;
}

uint32_t ServerSession::current_epoch() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return static_cast<uint32_t>(epochs_.size()) - 1;
}

uint32_t ServerSession::num_epochs() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return static_cast<uint32_t>(epochs_.size());
}

Status ServerSession::CheckEpoch(uint32_t epoch) const {
  if (epoch >= epochs_.size()) {
    return Status::OutOfRange("epoch has not been opened");
  }
  return Status::OK();
}

Result<uint64_t> ServerSession::num_reports(uint32_t epoch) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  LDP_RETURN_IF_ERROR(CheckEpoch(epoch));
  return epochs_[epoch]->num_reports();
}

Result<double> ServerSession::EstimateMean(uint32_t attribute,
                                           uint32_t epoch) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  LDP_RETURN_IF_ERROR(CheckEpoch(epoch));
  return epochs_[epoch]->EstimateMean(attribute);
}

Result<std::vector<double>> ServerSession::EstimateFrequencies(
    uint32_t attribute, uint32_t epoch) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  LDP_RETURN_IF_ERROR(CheckEpoch(epoch));
  return epochs_[epoch]->EstimateFrequencies(attribute);
}

Result<PipelineEstimates> ServerSession::Estimate(uint32_t epoch) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  LDP_RETURN_IF_ERROR(CheckEpoch(epoch));
  PipelineEstimates estimates;
  estimates.num_reports = epochs_[epoch]->num_reports();
  const std::vector<MixedAttribute>& attributes = state_->config.attributes;
  for (uint32_t j = 0; j < attributes.size(); ++j) {
    if (attributes[j].type == AttributeType::kNumeric) {
      double mean = 0.0;
      LDP_ASSIGN_OR_RETURN(mean, epochs_[epoch]->EstimateMean(j));
      estimates.numeric_attributes.push_back(j);
      estimates.means.push_back(mean);
    } else {
      std::vector<double> freqs;
      LDP_ASSIGN_OR_RETURN(freqs, epochs_[epoch]->EstimateFrequencies(j));
      estimates.categorical_attributes.push_back(j);
      estimates.frequencies.push_back(std::move(freqs));
    }
  }
  return estimates;
}

}  // namespace ldp::api
