// ServerSession: the server half of a Pipeline. Owns the shards currently
// streaming in, one aggregate per collection epoch, and a PrivacyAccountant
// that enforces the config's epoch plan under sequential composition — the
// deployment loop of a real LDP service, where the same population is
// collected from round after round against one lifetime budget.
//
// Surface: Feed (incremental shard bytes), Merge (fold in a peer server's
// snapshot — single-epoch or whole-session), Snapshot (serialise every
// epoch's state for a reducer), Estimate (per-epoch means/frequencies).
//
// Determinism contract: shard aggregates merge into the epoch total in
// CloseShard order (and IngestInputs reduces in argument order), so a
// sharded session whose shard boundaries match util/threadpool.h SplitRange
// reproduces the in-process Pipeline::Collect run bit for bit.
//
// Concurrency: with ServerSessionOptions::ingest_threads >= 2 the session
// owns a util::ThreadPool and Feed becomes asynchronous — each open shard is
// a serial queue keyed by its shard id, so chunks of one shard decode in
// Feed-call order (the stream stays intact) while different shards decode
// concurrently. CloseShard and ShardStats are the drain points: they block
// until the shard's queued chunks are consumed. Because per-shard byte order
// is preserved and shard aggregates still merge on the calling thread in
// CloseShard order, a concurrent session is bit-identical to the serial one
// at every thread count — snapshots and estimates included. The whole public
// surface is additionally thread-safe (one internal mutex), so multiple
// producer threads may feed disjoint shards; calls targeting the *same*
// shard must still be externally ordered, or "per-shard FIFO" has no
// meaning.
//
// Accounting model: every user in the population reports once per epoch, so
// the campaign-plan spend is charged to the anonymous ledger
// (kAnonymousReporter) when an epoch opens (epoch 0 at session creation,
// later ones at AdvanceEpoch). When the lifetime budget cannot afford the
// next epoch, AdvanceEpoch fails and the collection campaign is over. On
// top of that plan ledger, shards opened with an authenticated reporter id
// (OpenShard(reporter_id), fed by protocol v3 HELLOs) charge that
// reporter's own ledger — idempotently per (reporter, epoch), so a
// reconnect, extra shard, or second relay edge never double-spends — and a
// reporter whose lifetime budget cannot afford the epoch is refused before
// a shard opens.

#ifndef LDP_API_SERVER_SESSION_H_
#define LDP_API_SERVER_SESSION_H_

#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/pipeline.h"
#include "core/accountant.h"
#include "obs/metrics.h"
#include "stream/aggregator_handle.h"
#include "stream/parallel_ingest.h"
#include "stream/shard_ingester.h"
#include "util/result.h"
#include "util/threadpool.h"

namespace ldp::obs {
class EventJournal;
}  // namespace ldp::obs

namespace ldp::api {

/// 'LDPE' little-endian — multi-epoch session snapshots. Layout (integers
/// little-endian):
///   u32 magic 'LDPE', u16 version, u8 stream kind, u8 mechanism, u8 oracle,
///   u64 schema_hash, f64 epsilon, u32 num_epochs, then per epoch:
///     u64 size, size bytes of that epoch's aggregator snapshot
///     (stream/snapshot.h 'LDPA' or 'LDPN').
/// Version 2 appends the per-reporter privacy ledger section after the
/// epochs:
///   u32 num_reporters, then per reporter in ascending id order:
///     u16 id_length, id bytes, u64 refusals, u32 num_epoch_entries,
///     then per entry: u32 epoch, f64 epsilon spent.
/// Version 1 snapshots (no ledger section) still merge; their charges are
/// attributed to nobody beyond the anonymous plan ledger.
inline constexpr uint32_t kSessionSnapshotMagic = 0x4550444cu;
inline constexpr uint16_t kSessionSnapshotVersion = 2;
inline constexpr uint16_t kSessionSnapshotLegacyVersion = 1;

/// True when `bytes` starts with the session snapshot magic.
bool LooksLikeSessionSnapshot(const std::string& bytes);

/// The preamble of a session snapshot; together with the attribute schema it
/// is enough to rebuild the pipeline configuration (tools/ldp_aggregate
/// does).
struct SessionSnapshotConfig {
  uint16_t version = kSessionSnapshotVersion;
  stream::ReportStreamKind kind = stream::ReportStreamKind::kMixed;
  MechanismKind mechanism = MechanismKind::kHybrid;
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  double epsilon = 0.0;
  uint64_t schema_hash = 0;
  uint32_t epochs = 0;
};

/// Parses just the session preamble (magic through num_epochs) without
/// decoding any epoch state.
Result<SessionSnapshotConfig> DecodeSessionSnapshotConfig(
    const std::string& bytes);

struct ServerSessionOptions {
  /// Per-shard framing/rejection policy (stream/shard_ingester.h).
  stream::ShardIngester::Options ingest;
  /// Workers decoding open shards concurrently within an epoch. At <= 1 the
  /// session is fully synchronous (the historical behavior); at >= 2 it owns
  /// a ThreadPool and Feed enqueues chunks on the shard's serial queue. The
  /// thread count never changes results — only throughput.
  unsigned ingest_threads = 0;
  /// Backpressure bound for concurrent sessions: Feed blocks (without
  /// holding the session lock) while a shard has at least this many bytes
  /// queued undecoded, so a producer outrunning the pool cannot buffer a
  /// whole shard in memory. One chunk may overshoot the bound; 1
  /// effectively serializes Feed with the decode, and 0 is treated as 1.
  size_t max_pending_feed_bytes = 8u << 20;
  /// Optional telemetry (obs/metrics.h): a non-null registry makes the
  /// session resolve its metric handles there, share ingest counters with
  /// every shard's ingester, and instrument its owned pool. Must outlive
  /// the session. Telemetry is write-only observation — snapshots and
  /// estimates are bit-identical with it on or off.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional campaign event journal (obs/journal.h) receiving shard
  /// open/close/abandon, epoch advance, and accountant refusal events.
  obs::EventJournal* journal = nullptr;
};

class ServerSession {
 public:
  // --- epochs ------------------------------------------------------------

  /// The epoch currently receiving reports (0-based).
  uint32_t current_epoch() const;

  /// Epochs materialized so far (current included).
  uint32_t num_epochs() const;

  /// Closes the current epoch and opens the next, charging its ε to the
  /// accountant. Fails (and opens nothing) while shards are still open, or
  /// when the charge would exceed the lifetime budget.
  Status AdvanceEpoch();

  /// Total per-user ε spent across the epochs opened so far.
  double epsilon_spent() const;

  /// A const view of the accountant's per-reporter ledgers. The reference
  /// stays valid for the session's lifetime, but reading it while another
  /// thread advances epochs or opens identified shards races: take this
  /// view only from a quiescent session (exit stats, post-drain reporting).
  const PrivacyAccountant& accountant() const { return accountant_; }

  // --- feeding the current epoch -----------------------------------------

  /// Opens a new shard (one client report stream) in the current epoch and
  /// returns its id. Ids are never reused, across epochs included: feeding
  /// a shard closed in an earlier epoch fails rather than landing in a new
  /// shard that happened to take the same slot.
  size_t OpenShard();

  /// Opens a shard attributed to an authenticated reporter: charges the
  /// config's ε to `reporter_id`'s ledger for the current epoch before
  /// anything opens. The charge is idempotent per (reporter, epoch) — a
  /// reporter reconnecting or opening several shards in one epoch spends ε
  /// exactly once. Fails with FailedPrecondition (opening nothing, and
  /// counting a refusal against the reporter) when the reporter's lifetime
  /// budget cannot afford the epoch. An empty id is the anonymous shard,
  /// charged to nobody beyond the plan ledger.
  Result<size_t> OpenShard(const std::string& reporter_id);

  /// Feeds `size` bytes of shard `shard`'s stream; chunks may be arbitrary.
  /// Synchronous sessions consume in place and return the shard's sticky
  /// stream status. Concurrent sessions copy the chunk, enqueue it on the
  /// shard's serial queue, and return OK; a framing error discovered on a
  /// worker makes *later* Feed calls on that shard return it, and CloseShard
  /// always reports it.
  Status Feed(size_t shard, const char* data, size_t size);
  Status Feed(size_t shard, const std::string& bytes) {
    return Feed(shard, bytes.data(), bytes.size());
  }

  /// Declares end-of-stream on shard `shard` and folds its aggregate into
  /// the current epoch. Shard aggregates merge in CloseShard order. On a
  /// concurrent session this is a drain point: it blocks until the shard's
  /// queued chunks are decoded (without stalling other shards' Feed
  /// calls), then merges on the calling thread.
  Status CloseShard(size_t shard);

  /// Discards shard `shard` without merging anything: drains its queued
  /// chunks, records final stats, and frees the ingester. The transport
  /// edge calls this when a reporter's connection dies mid-stream — an
  /// aborted upload must contribute nothing, even if it happened to stop on
  /// a frame boundary. Returns the shard's final statistics.
  Result<stream::ShardIngester::Stats> AbandonShard(size_t shard);

  /// Per-shard framing/decoding statistics (valid for open or closed
  /// shards, any epoch). A drain point on concurrent sessions, like
  /// CloseShard, so the stats cover every chunk fed before the call.
  Result<stream::ShardIngester::Stats> ShardStats(size_t shard) const;

  /// Convenience one-shot shard: ingests `in` to completion and folds it in.
  Status IngestStream(std::istream& in);

  /// Ingests a set of shard inputs concurrently on `pool` (falling back to
  /// the session's own ingest pool, then to inline, when null) and merges
  /// them IN ARGUMENT ORDER — report streams and single-epoch snapshots
  /// into the current epoch, session snapshots epoch-aligned. Fails on the
  /// first input (in order) that errors; `summary`, when non-null, is
  /// filled either way.
  Status IngestInputs(const std::vector<std::string>& paths, ThreadPool* pool,
                      stream::MultiShardSummary* summary = nullptr);

  // --- merging -----------------------------------------------------------

  /// Folds a serialized snapshot into the session: an aggregator snapshot
  /// (stream/snapshot.h, mixed or numeric) merges into the current epoch; a
  /// session snapshot merges epoch by epoch, advancing (and charging) this
  /// session as needed to materialize the peer's later epochs.
  Status Merge(const std::string& snapshot_bytes);

  // --- snapshots ----------------------------------------------------------

  /// Serialises every epoch's aggregate as one session snapshot.
  std::string Snapshot() const;

  // --- estimates ----------------------------------------------------------

  /// Reports accumulated in `epoch` (closed shards and merges only).
  Result<uint64_t> num_reports(uint32_t epoch) const;

  /// Unbiased mean estimate of numeric attribute `attribute` in `epoch`.
  Result<double> EstimateMean(uint32_t attribute, uint32_t epoch) const;

  /// Unbiased frequency estimates of categorical attribute `attribute`.
  Result<std::vector<double>> EstimateFrequencies(uint32_t attribute,
                                                  uint32_t epoch) const;

  /// All of `epoch`'s estimates at once.
  Result<PipelineEstimates> Estimate(uint32_t epoch) const;

 private:
  friend class Pipeline;

  /// A concurrent shard's flow-control block: the sticky framing error its
  /// worker tasks surface to later Feed calls, and the queued-byte count
  /// behind Options::max_pending_feed_bytes. Heap-allocated with its own
  /// lock so workers can touch it while the session mutex is held by a
  /// drain (CloseShard), and so its address survives shards_ reallocation.
  struct AsyncShardState {
    std::mutex mutex;
    Status status = Status::OK();
    size_t pending_bytes = 0;
    std::condition_variable capacity;  // signalled as workers consume
  };

  struct ShardState {
    std::unique_ptr<stream::ShardIngester> ingester;  // null once closed
    stream::ShardIngester::Stats final_stats;         // filled at close
    std::shared_ptr<AsyncShardState> async;           // concurrent mode only
  };

  ServerSession(std::shared_ptr<const internal_api::PipelineState> state,
                PrivacyAccountant accountant, ServerSessionOptions options);

  /// A fresh, empty aggregate of the pipeline's stream kind.
  std::unique_ptr<stream::AggregatorHandle> NewEpochAggregate() const;

  Status CheckEpoch(uint32_t epoch) const;

  // The public methods lock mutex_ and delegate to these; Merge recurses
  // into AdvanceEpoch, so both need lock-free bodies.
  Status AdvanceEpochLocked();
  Status FeedLocked(size_t shard, const char* data, size_t size);
  Status MergeLocked(const std::string& snapshot_bytes);
  size_t OpenShardLocked();

  /// Resolves the per-reporter labeled metric handles (refusal counter,
  /// spend gauge) for `reporter_id`, bounding exposition cardinality: after
  /// kMaxLabeledReporters distinct ids, further reporters collapse into the
  /// {reporter="_other"} series. Null handles when telemetry is off.
  struct ReporterMetricHandles {
    obs::Counter* refusals = nullptr;
    obs::Gauge* spent = nullptr;
  };
  ReporterMetricHandles ReporterMetrics(const std::string& reporter_id);

  /// Blocks until shard `shard`'s queued chunks are decoded (no-op on
  /// synchronous sessions). Callers drop mutex_ for the wait so other
  /// shards keep flowing, though holding it would not deadlock — worker
  /// tasks never take it.
  void DrainShard(size_t shard) const;

  std::shared_ptr<const internal_api::PipelineState> state_;
  PrivacyAccountant accountant_;
  ServerSessionOptions options_;
  obs::SessionMetrics metrics_;  // all-null when options_.metrics is null
  /// Reporter ids granted their own labeled metric series (bounded; see
  /// ReporterMetrics).
  std::set<std::string> labeled_reporters_;
  /// Guards everything below plus accountant_. Worker tasks touch only
  /// their shard's ingester and AsyncShardError, never this mutex, so drain
  /// points may hold it while waiting. Heap-allocated to keep the session
  /// movable (Result<ServerSession> moves it); moving a session with feeds
  /// in flight is safe — tasks reference only heap state.
  std::unique_ptr<std::mutex> mutex_;
  std::vector<std::unique_ptr<stream::AggregatorHandle>> epochs_;
  std::vector<ShardState> shards_;  // every shard ever opened (ids stable)
  size_t open_shards_ = 0;
  /// Decodes open shards when options_.ingest_threads >= 2; null otherwise.
  /// Declared last so it is destroyed FIRST: its destructor drains and
  /// joins, so no queued task can outlive the shard table above.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ldp::api

#endif  // LDP_API_SERVER_SESSION_H_
