#include "api/pipeline.h"

#include <cmath>
#include <utility>

#include "aggregate/estimators.h"
#include "api/server_session.h"
#include "baselines/duchi_multi_dim.h"
#include "core/wire.h"
#include "util/check.h"

namespace ldp::api {

// Every simulated user gets her own generator derived from (seed, row), so
// results are identical whether or not a thread pool is used.
Rng UserRng(uint64_t seed, uint64_t row) {
  return Rng(seed ^ ((row + 1) * 0x9e3779b97f4a7c15ULL));
}

namespace {

using internal_api::PipelineState;

Status ValidateNormalized(const data::Schema& schema) {
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric &&
        (spec.lo != -1.0 || spec.hi != 1.0)) {
      return Status::FailedPrecondition(
          "numeric column '" + spec.name +
          "' is not normalised to [-1, 1]; apply data::NormalizeNumeric "
          "first");
    }
  }
  return Status::OK();
}

// Fills the column index lists and the exact means/frequencies.
Status FillGroundTruth(const data::Dataset& dataset, CollectionOutput* out) {
  const data::Schema& schema = dataset.schema();
  out->numeric_columns = schema.NumericColumnIndices();
  out->categorical_columns = schema.CategoricalColumnIndices();
  for (const uint32_t col : out->numeric_columns) {
    double mean = 0.0;
    LDP_ASSIGN_OR_RETURN(mean, dataset.ColumnMean(col));
    out->true_means.push_back(mean);
  }
  for (const uint32_t col : out->categorical_columns) {
    std::vector<double> freqs;
    LDP_ASSIGN_OR_RETURN(freqs, dataset.ColumnFrequencies(col));
    out->true_frequencies.push_back(std::move(freqs));
  }
  return Status::OK();
}

Status ValidateDatasetMatches(const data::Dataset& dataset,
                              const std::vector<MixedAttribute>& attributes) {
  std::vector<MixedAttribute> from_data;
  LDP_ASSIGN_OR_RETURN(from_data, AttributesFromSchema(dataset.schema()));
  bool matches = from_data.size() == attributes.size();
  for (size_t j = 0; matches && j < attributes.size(); ++j) {
    matches = from_data[j].type == attributes[j].type &&
              (attributes[j].type != AttributeType::kCategorical ||
               from_data[j].domain_size == attributes[j].domain_size);
  }
  if (!matches) {
    return Status::InvalidArgument(
        "dataset columns do not match the pipeline's attribute schema");
  }
  return Status::OK();
}

// The paper's proposed pipeline (Algorithm 4 + Section IV-C) over the
// pipeline's collector. One aggregator per chunk, reduced in chunk order
// after the parallel region: results are bit-deterministic for a fixed
// (seed, chunk count) regardless of thread scheduling, and a sharded run
// whose shard boundaries match SplitRange reproduces them exactly.
Result<CollectionOutput> RunProposed(const MixedTupleCollector& collector,
                                     const data::Dataset& dataset,
                                     uint64_t seed, ThreadPool* pool) {
  CollectionOutput out;
  LDP_RETURN_IF_ERROR(FillGroundTruth(dataset, &out));

  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  const uint64_t num_chunks =
      ParallelForChunkCount(pool, dataset.num_rows());
  std::vector<MixedAggregator> chunk_aggregators(num_chunks,
                                                 MixedAggregator(&collector));
  ParallelFor(pool, dataset.num_rows(),
              [&](unsigned chunk, uint64_t begin, uint64_t end) {
                MixedAggregator& local = chunk_aggregators[chunk];
                MixedTuple tuple(d);
                for (uint64_t row = begin; row < end; ++row) {
                  for (uint32_t col = 0; col < d; ++col) {
                    if (schema.column(col).type == data::ColumnType::kNumeric) {
                      tuple[col].numeric = dataset.numeric(row, col);
                    } else {
                      tuple[col].category = dataset.category(row, col);
                    }
                  }
                  Rng rng = UserRng(seed, row);
                  local.Add(collector.Perturb(tuple, &rng));
                }
              });
  MixedAggregator total(&collector);
  for (const MixedAggregator& local : chunk_aggregators) {
    LDP_RETURN_IF_ERROR(total.Merge(local));
  }

  for (const uint32_t col : out.numeric_columns) {
    double mean = 0.0;
    LDP_ASSIGN_OR_RETURN(mean, total.EstimateMean(col));
    out.estimated_means.push_back(mean);
  }
  for (const uint32_t col : out.categorical_columns) {
    std::vector<double> freqs;
    LDP_ASSIGN_OR_RETURN(freqs, total.EstimateFrequencies(col));
    out.estimated_frequencies.push_back(std::move(freqs));
  }
  return out;
}

// The split-budget baseline of Section VI-A: dn·ε/d to the numeric group
// (Duchi's Algorithm 3 or per-attribute scalar mechanisms at ε/d each),
// dc·ε/d to the categorical group (one oracle per attribute at ε/d each).
Result<CollectionOutput> RunBaseline(const data::Dataset& dataset,
                                     double epsilon, uint64_t seed,
                                     NumericStrategy strategy,
                                     FrequencyOracleKind categorical_kind,
                                     ThreadPool* pool) {
  CollectionOutput out;
  LDP_RETURN_IF_ERROR(FillGroundTruth(dataset, &out));

  const uint32_t dn = static_cast<uint32_t>(out.numeric_columns.size());
  const uint32_t dc = static_cast<uint32_t>(out.categorical_columns.size());
  const uint32_t d = dn + dc;
  const double per_attribute_epsilon = epsilon / d;
  const double numeric_group_epsilon = epsilon * dn / d;
  const uint64_t n = dataset.num_rows();

  // Numeric group machinery.
  std::unique_ptr<ScalarMechanism> scalar;
  std::unique_ptr<DuchiMultiDimMechanism> duchi;
  if (dn > 0) {
    if (strategy == NumericStrategy::kDuchiMulti) {
      duchi = std::make_unique<DuchiMultiDimMechanism>(numeric_group_epsilon,
                                                       dn);
    } else {
      MechanismKind kind = MechanismKind::kLaplace;
      if (strategy == NumericStrategy::kScdfSplit) kind = MechanismKind::kScdf;
      if (strategy == NumericStrategy::kStaircaseSplit) {
        kind = MechanismKind::kStaircase;
      }
      LDP_ASSIGN_OR_RETURN(scalar,
                           MakeScalarMechanism(kind, per_attribute_epsilon));
    }
  }

  // Categorical group machinery: one oracle per categorical column.
  std::vector<std::unique_ptr<FrequencyOracle>> oracles;
  for (const uint32_t col : out.categorical_columns) {
    std::unique_ptr<FrequencyOracle> oracle;
    LDP_ASSIGN_OR_RETURN(
        oracle, MakeFrequencyOracle(categorical_kind, per_attribute_epsilon,
                                    dataset.schema().column(col).domain_size));
    oracles.push_back(std::move(oracle));
  }

  std::vector<size_t> support_sizes;
  for (const uint32_t col : out.categorical_columns) {
    support_sizes.push_back(dataset.schema().column(col).domain_size);
  }
  // Per-chunk accumulators reduced in chunk order after the parallel region,
  // mirroring the proposed path: bit-deterministic for a fixed chunk count.
  const uint64_t num_chunks = ParallelForChunkCount(pool, n);
  std::vector<aggregate::VectorMeanEstimator> chunk_means(
      num_chunks, aggregate::VectorMeanEstimator(dn));
  std::vector<std::vector<std::vector<double>>> chunk_supports(num_chunks);
  for (auto& supports : chunk_supports) {
    for (const size_t size : support_sizes) {
      supports.emplace_back(size, 0.0);
    }
  }
  ParallelFor(pool, n, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    aggregate::VectorMeanEstimator& local_means = chunk_means[chunk];
    std::vector<std::vector<double>>& local_supports = chunk_supports[chunk];
    std::vector<double> numeric_tuple(dn, 0.0);
    std::vector<double> dense(dn, 0.0);
    for (uint64_t row = begin; row < end; ++row) {
      Rng rng = UserRng(seed, row);
      if (dn > 0) {
        for (uint32_t j = 0; j < dn; ++j) {
          numeric_tuple[j] = dataset.numeric(row, out.numeric_columns[j]);
        }
        if (duchi != nullptr) {
          dense = duchi->Perturb(numeric_tuple, &rng);
        } else {
          for (uint32_t j = 0; j < dn; ++j) {
            dense[j] = scalar->Perturb(numeric_tuple[j], &rng);
          }
        }
        local_means.Add(dense);
      }
      for (uint32_t c = 0; c < dc; ++c) {
        const uint32_t value = dataset.category(row, out.categorical_columns[c]);
        oracles[c]->Accumulate(oracles[c]->Perturb(value, &rng),
                               &local_supports[c]);
      }
    }
  });
  aggregate::VectorMeanEstimator total_means(dn);
  std::vector<std::vector<double>> total_supports;
  for (const size_t size : support_sizes) {
    total_supports.emplace_back(size, 0.0);
  }
  for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    total_means.Merge(chunk_means[chunk]);
    for (uint32_t c = 0; c < dc; ++c) {
      for (size_t v = 0; v < total_supports[c].size(); ++v) {
        total_supports[c][v] += chunk_supports[chunk][c][v];
      }
    }
  }

  out.estimated_means = total_means.Estimate();
  for (uint32_t c = 0; c < dc; ++c) {
    out.estimated_frequencies.push_back(
        oracles[c]->Estimate(total_supports[c], n));
  }
  return out;
}

}  // namespace

const char* NumericStrategyToString(NumericStrategy strategy) {
  switch (strategy) {
    case NumericStrategy::kLaplaceSplit:
      return "Laplace";
    case NumericStrategy::kScdfSplit:
      return "SCDF";
    case NumericStrategy::kStaircaseSplit:
      return "Staircase";
    case NumericStrategy::kDuchiMulti:
      return "Duchi";
  }
  return "unknown";
}

Result<std::vector<MixedAttribute>> AttributesFromSchema(
    const data::Schema& schema) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("schema has no columns");
  }
  std::vector<MixedAttribute> mixed;
  mixed.reserve(schema.num_columns());
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric) {
      mixed.push_back(MixedAttribute::Numeric());
    } else {
      mixed.push_back(MixedAttribute::Categorical(spec.domain_size));
    }
  }
  return mixed;
}

void RowToTuple(const data::Schema& schema,
                const std::vector<double>& numeric_row,
                const std::vector<uint32_t>& category_row, MixedTuple* tuple) {
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric) {
      const double mid = (spec.hi + spec.lo) / 2.0;
      const double half_width = (spec.hi - spec.lo) / 2.0;
      (*tuple)[col].numeric = (numeric_row[col] - mid) / half_width;
    } else {
      (*tuple)[col].category = category_row[col];
    }
  }
}

Result<PipelineConfig> PipelineConfig::FromSchema(const data::Schema& schema,
                                                  double epsilon) {
  PipelineConfig config;
  LDP_ASSIGN_OR_RETURN(config.attributes, AttributesFromSchema(schema));
  config.epsilon = epsilon;
  return config;
}

Result<Pipeline> Pipeline::Create(PipelineConfig config) {
  if (config.plan.epochs == 0) {
    return Status::InvalidArgument("epoch plan must cover at least one epoch");
  }
  if (config.plan.lifetime_budget != 0.0 &&
      !(std::isfinite(config.plan.lifetime_budget) &&
        config.plan.lifetime_budget > 0.0)) {
    return Status::InvalidArgument(
        "lifetime budget must be positive and finite (or 0 for the plan "
        "default)");
  }

  bool has_categorical = false;
  for (const MixedAttribute& attribute : config.attributes) {
    has_categorical |= attribute.type == AttributeType::kCategorical;
  }
  if (config.wire == WirePreference::kNumeric && has_categorical) {
    return Status::InvalidArgument(
        "numeric streams require an all-numeric schema");
  }

  auto state = std::make_shared<PipelineState>();
  state->kind = config.wire == WirePreference::kMixed || has_categorical
                    ? stream::ReportStreamKind::kMixed
                    : stream::ReportStreamKind::kSampledNumeric;

  Result<MixedTupleCollector> collector = MixedTupleCollector::Create(
      config.attributes, config.epsilon, config.mechanism, config.oracle);
  if (!collector.ok()) return collector.status();
  state->collector.emplace(std::move(collector).value());

  if (state->kind == stream::ReportStreamKind::kSampledNumeric) {
    Result<SampledNumericMechanism> numeric = SampledNumericMechanism::Create(
        config.mechanism, config.epsilon,
        static_cast<uint32_t>(config.attributes.size()));
    if (!numeric.ok()) return numeric.status();
    state->numeric.emplace(std::move(numeric).value());
    state->header =
        stream::MakeNumericStreamHeader(*state->numeric, config.mechanism);
  } else {
    state->header = stream::MakeMixedStreamHeader(*state->collector);
  }

  state->lifetime_budget =
      config.plan.lifetime_budget != 0.0
          ? config.plan.lifetime_budget
          : static_cast<double>(config.plan.epochs) * config.epsilon;
  state->config = std::move(config);
  return Pipeline(std::move(state));
}

Result<CollectionOutput> Pipeline::Collect(const data::Dataset& dataset,
                                           uint64_t seed,
                                           ThreadPool* pool) const {
  LDP_RETURN_IF_ERROR(ValidateNormalized(dataset.schema()));
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  LDP_RETURN_IF_ERROR(
      ValidateDatasetMatches(dataset, state_->config.attributes));
  if (state_->config.baseline.has_value()) {
    return RunBaseline(dataset, state_->config.epsilon, seed,
                       *state_->config.baseline, state_->config.oracle, pool);
  }
  return RunProposed(*state_->collector, dataset, seed, pool);
}

Result<ClientSession> Pipeline::NewClient() const {
  if (state_->config.baseline.has_value()) {
    return Status::FailedPrecondition(
        "baseline pipelines are simulation-only and have no wire sessions");
  }
  return ClientSession(state_);
}

const PipelineConfig& Pipeline::config() const { return state_->config; }

stream::ReportStreamKind Pipeline::stream_kind() const { return state_->kind; }

const stream::StreamHeader& Pipeline::header() const { return state_->header; }

double Pipeline::epsilon() const { return state_->config.epsilon; }

uint32_t Pipeline::dimension() const {
  return static_cast<uint32_t>(state_->config.attributes.size());
}

uint32_t Pipeline::k() const { return state_->collector->k(); }

const MixedTupleCollector& Pipeline::mixed_collector() const {
  return *state_->collector;
}

const SampledNumericMechanism* Pipeline::numeric_mechanism() const {
  return state_->numeric.has_value() ? &*state_->numeric : nullptr;
}

stream::StreamHeader ClientSession::header() const { return state_->header; }

std::string ClientSession::EncodeHeader() const {
  return stream::EncodeStreamHeader(state_->header);
}

stream::ReportStreamKind ClientSession::stream_kind() const {
  return state_->kind;
}

uint32_t ClientSession::k() const { return state_->collector->k(); }

uint32_t ClientSession::dimension() const {
  return state_->collector->dimension();
}

Result<std::string> ClientSession::EncodeReport(const MixedTuple& row,
                                                Rng* rng) const {
  if (row.size() != state_->collector->dimension()) {
    return Status::InvalidArgument(
        "row must carry one value per schema attribute");
  }
  if (state_->kind == stream::ReportStreamKind::kMixed) {
    return EncodeMixedReport(state_->collector->Perturb(row, rng),
                             *state_->collector);
  }
  std::vector<double> numeric_row(row.size(), 0.0);
  for (size_t j = 0; j < row.size(); ++j) {
    numeric_row[j] = row[j].numeric;
  }
  return EncodeSampledNumericReport(state_->numeric->Perturb(numeric_row, rng));
}

Result<std::string> ClientSession::EncodeReport(const std::vector<double>& row,
                                                Rng* rng) const {
  if (row.size() != state_->collector->dimension()) {
    return Status::InvalidArgument(
        "row must carry one value per schema attribute");
  }
  if (state_->kind == stream::ReportStreamKind::kSampledNumeric) {
    return EncodeSampledNumericReport(state_->numeric->Perturb(row, rng));
  }
  MixedTuple tuple(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    if (state_->config.attributes[j].type != AttributeType::kNumeric) {
      return Status::InvalidArgument(
          "pure-numeric rows require an all-numeric schema");
    }
    tuple[j].numeric = row[j];
  }
  return EncodeMixedReport(state_->collector->Perturb(tuple, rng),
                           *state_->collector);
}

Status ClientSession::WriteReport(stream::ReportStreamWriter* writer,
                                  const MixedTuple& row, Rng* rng) const {
  std::string payload;
  LDP_ASSIGN_OR_RETURN(payload, EncodeReport(row, rng));
  return writer->WriteFrame(payload);
}

Status ClientSession::WriteReport(stream::ReportStreamWriter* writer,
                                  const std::vector<double>& row,
                                  Rng* rng) const {
  std::string payload;
  LDP_ASSIGN_OR_RETURN(payload, EncodeReport(row, rng));
  return writer->WriteFrame(payload);
}

}  // namespace ldp::api
