// The library's session facade: one config-driven entry point for every
// collection path in the paper and every deployment shape in the repo.
//
// A PipelineConfig names the full protocol — attribute schema, per-epoch
// budget ε, scalar mechanism and frequency oracle kinds, wire stream kind,
// an optional split-budget baseline strategy, and the epoch plan — and a
// Pipeline built from it hands out the three ways to run that protocol:
//
//   - Pipeline::Collect     in-process simulation over a Dataset (the old
//                           CollectProposed / CollectBaseline free functions
//                           are thin wrappers over this, bit for bit);
//   - Pipeline::NewClient   a ClientSession that perturbs rows — mixed or
//                           pure-numeric — and encodes them as wire frames
//                           for the framed report-stream format;
//   - Pipeline::NewServer   a ServerSession that owns shards, epochs and a
//                           PrivacyAccountant, and exposes Feed / Merge /
//                           Snapshot / Estimate (api/server_session.h).
//
// The pipeline resolves which stream kind its sessions speak: Section IV-C
// mixed streams whenever the schema has a categorical attribute, and the
// Algorithm-4 numeric stream kind for all-numeric schemas (overridable via
// PipelineConfig::wire). On an all-numeric schema the two paths draw the
// same randomness and accumulate the same doubles in the same order, so the
// choice never changes the estimates — only the bytes on the wire.

#ifndef LDP_API_PIPELINE_H_
#define LDP_API_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/mechanism.h"
#include "core/mixed_collector.h"
#include "core/sampled_numeric.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "frequency/frequency_oracle.h"
#include "stream/report_stream.h"
#include "util/random.h"
#include "util/result.h"
#include "util/threadpool.h"

namespace ldp::api {

namespace internal_api {
struct PipelineState;  // shared protocol objects behind Pipeline + sessions
}  // namespace internal_api

/// Ground truth and LDP estimates from one in-process collection run.
struct CollectionOutput {
  /// Schema indices of the numeric columns, in schema order.
  std::vector<uint32_t> numeric_columns;
  /// Schema indices of the categorical columns, in schema order.
  std::vector<uint32_t> categorical_columns;
  /// Exact and estimated means, parallel to numeric_columns.
  std::vector<double> true_means;
  std::vector<double> estimated_means;
  /// Exact and estimated value frequencies, parallel to categorical_columns.
  std::vector<std::vector<double>> true_frequencies;
  std::vector<std::vector<double>> estimated_frequencies;
};

/// How a split-budget baseline pipeline handles the numeric attribute group.
enum class NumericStrategy {
  kLaplaceSplit,    ///< Laplace mechanism per attribute at ε/d each.
  kScdfSplit,       ///< SCDF per attribute at ε/d each.
  kStaircaseSplit,  ///< Staircase per attribute at ε/d each.
  kDuchiMulti,      ///< Duchi et al.'s Algorithm 3 at the group budget.
};

/// Human-readable strategy name ("Laplace", "SCDF", "Staircase", "Duchi").
const char* NumericStrategyToString(NumericStrategy strategy);

/// The per-user generator used by every collection pipeline: user `row`
/// under master seed `seed` always draws from the same stream, whether the
/// simulation runs single-threaded, pooled, or sharded across processes
/// (ldp_report derives client-side randomness the same way, which is what
/// makes sharded ingestion reproduce an in-process run exactly).
Rng UserRng(uint64_t seed, uint64_t row);

/// Builds the collection-attribute schema for a tabular data schema (numeric
/// columns must be normalised to [-1, 1] before collecting).
Result<std::vector<MixedAttribute>> AttributesFromSchema(
    const data::Schema& schema);

/// Normalises one streamed CSV row (the data::CsvRowReader output vectors)
/// into a canonical tuple: each numeric cell is mapped from its schema
/// [lo, hi] to the mechanisms' [-1, 1] with the same arithmetic as
/// data::NormalizeNumeric — the bit-exact reproduction contract between the
/// streaming tools and the materializing pipeline depends on this being the
/// one shared implementation. `tuple` must be sized to the schema's column
/// count.
void RowToTuple(const data::Schema& schema,
                const std::vector<double>& numeric_row,
                const std::vector<uint32_t>& category_row, MixedTuple* tuple);

/// Which wire stream kind the pipeline's sessions speak.
enum class WirePreference {
  kAuto,     ///< Numeric streams iff the schema is all-numeric.
  kMixed,    ///< Section IV-C mixed streams (any schema).
  kNumeric,  ///< Algorithm-4 numeric streams (all-numeric schemas only).
};

/// The multi-round collection plan a ServerSession enforces.
struct EpochPlan {
  /// Planned collection rounds; each epoch spends the config's ε per user.
  uint32_t epochs = 1;
  /// Per-user lifetime ε cap across epochs (sequential composition). 0
  /// means "exactly the plan": epochs × ε.
  double lifetime_budget = 0.0;
};

/// Everything that defines one collection deployment.
struct PipelineConfig {
  /// The attribute schema of the tuples being collected.
  std::vector<MixedAttribute> attributes;
  /// The per-epoch privacy budget every user enjoys.
  double epsilon = 1.0;
  /// Scalar mechanism for numeric attributes (HM in the paper).
  MechanismKind mechanism = MechanismKind::kHybrid;
  /// Frequency oracle for categorical attributes (OUE in the paper).
  FrequencyOracleKind oracle = FrequencyOracleKind::kOue;
  /// Wire stream kind for the client/server sessions.
  WirePreference wire = WirePreference::kAuto;
  /// When set, Collect runs the split-budget baseline of Section VI-A
  /// instead of the paper's sampled collector. Baseline configs are
  /// simulation-only: they have no wire protocol, so NewClient / NewServer
  /// fail.
  std::optional<NumericStrategy> baseline;
  /// Multi-epoch plan enforced by ServerSession's PrivacyAccountant.
  EpochPlan plan;

  /// Convenience: a config whose attributes mirror `schema`'s columns.
  static Result<PipelineConfig> FromSchema(const data::Schema& schema,
                                           double epsilon);
};

/// Per-epoch estimates a ServerSession serves (the server-side counterpart
/// of CollectionOutput, without ground truth).
struct PipelineEstimates {
  /// Attribute indices, in schema order.
  std::vector<uint32_t> numeric_attributes;
  std::vector<uint32_t> categorical_attributes;
  /// Estimated means, parallel to numeric_attributes.
  std::vector<double> means;
  /// Estimated frequencies, parallel to categorical_attributes.
  std::vector<std::vector<double>> frequencies;
  /// Reports the estimates are computed over.
  uint64_t num_reports = 0;
};

/// The client half of a pipeline: perturbs one user's row on her device and
/// encodes nothing but the privatized report. Copyable and cheap; share one
/// per thread with one Rng per thread.
class ClientSession {
 public:
  /// The stream header every shard written by this client must start with.
  stream::StreamHeader header() const;

  /// The serialized header bytes (convenience for callers framing by hand).
  std::string EncodeHeader() const;

  /// Perturbs one full row and encodes it as a frame payload (no length
  /// prefix; pair with stream::AppendFrame or ReportStreamWriter). Numeric
  /// coordinates must be in [-1, 1], categorical ones within their domains.
  Result<std::string> EncodeReport(const MixedTuple& row, Rng* rng) const;

  /// Pure-numeric overload: one value per attribute. Fails on schemas with
  /// categorical attributes.
  Result<std::string> EncodeReport(const std::vector<double>& row,
                                   Rng* rng) const;

  /// Perturbs `row` and appends it to `writer` as one frame.
  Status WriteReport(stream::ReportStreamWriter* writer, const MixedTuple& row,
                     Rng* rng) const;
  Status WriteReport(stream::ReportStreamWriter* writer,
                     const std::vector<double>& row, Rng* rng) const;

  /// The stream kind reports are encoded as.
  stream::ReportStreamKind stream_kind() const;

  /// The number of attributes each report carries (Eq. 12).
  uint32_t k() const;

  uint32_t dimension() const;

 private:
  friend class Pipeline;
  explicit ClientSession(
      std::shared_ptr<const internal_api::PipelineState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const internal_api::PipelineState> state_;
};

class ServerSession;
struct ServerSessionOptions;

/// The session facade. Copyable (copies share the immutable protocol
/// objects); all methods are const and thread-safe.
class Pipeline {
 public:
  /// Validates `config` and builds the protocol objects. Fails on an empty
  /// schema, a bad budget, a categorical attribute with fewer than 2 values,
  /// an all-categorical schema asked for numeric streams, or a zero-epoch
  /// plan.
  static Result<Pipeline> Create(PipelineConfig config);

  /// Runs the configured collection in process over `dataset`, whose numeric
  /// columns must already be normalised to [-1, 1] (see
  /// data::NormalizeNumeric) and whose column types must match the config's
  /// attributes. Deterministic in `seed`; `pool` optionally shards users
  /// across threads (results then depend on the pool's thread count as chunk
  /// summation order differs).
  Result<CollectionOutput> Collect(const data::Dataset& dataset, uint64_t seed,
                                   ThreadPool* pool = nullptr) const;

  /// Builds a client session. Fails for baseline configs (no wire protocol).
  Result<ClientSession> NewClient() const;

  /// Builds a server session owning its own epoch state and accountant.
  /// Fails for baseline configs, or when the lifetime budget cannot afford
  /// the first epoch. Callers must include api/server_session.h (it
  /// completes the ServerSession type these signatures name).
  Result<ServerSession> NewServer() const;
  Result<ServerSession> NewServer(ServerSessionOptions options) const;

  /// The validated configuration.
  const PipelineConfig& config() const;

  /// The resolved wire stream kind.
  stream::ReportStreamKind stream_kind() const;

  /// The stream header sessions of this pipeline exchange.
  const stream::StreamHeader& header() const;

  double epsilon() const;
  uint32_t dimension() const;

  /// The number of attributes each user reports (Eq. 12).
  uint32_t k() const;

  /// The Section IV-C collector behind mixed sessions (always present; on
  /// numeric pipelines it backs Collect, whose estimates are bit-identical
  /// to the numeric stream path).
  const MixedTupleCollector& mixed_collector() const;

  /// The Algorithm-4 mechanism behind numeric sessions; null on mixed
  /// pipelines.
  const SampledNumericMechanism* numeric_mechanism() const;

 private:
  explicit Pipeline(std::shared_ptr<const internal_api::PipelineState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const internal_api::PipelineState> state_;
};

namespace internal_api {

/// The immutable protocol objects one Pipeline and all its sessions share.
/// Internal: reach the contents through the Pipeline accessors.
struct PipelineState {
  PipelineConfig config;
  stream::ReportStreamKind kind = stream::ReportStreamKind::kMixed;
  /// Always engaged (backs mixed sessions and Collect).
  std::optional<MixedTupleCollector> collector;
  /// Engaged when kind == kSampledNumeric.
  std::optional<SampledNumericMechanism> numeric;
  stream::StreamHeader header;
  /// The resolved per-user lifetime budget (plan.lifetime_budget, or
  /// epochs × ε when unset).
  double lifetime_budget = 0.0;
};

}  // namespace internal_api

}  // namespace ldp::api

#endif  // LDP_API_PIPELINE_H_
