// Umbrella header: the library's public API in one include.
//
//   #include "ldp.h"
//
// Pulls in the session facade (api::Pipeline — the recommended entry point
// for collection: one config covers mixed + numeric tuples, in-process
// simulation, wire sessions, streaming shards, and multi-epoch privacy
// accounting), the scalar mechanisms (PM, HM and the baselines), the
// multidimensional collectors (Algorithm 4 and the Section IV-C mixed
// collector), the frequency oracles, the dataset/encoding substrate, the
// network transport (net::ReportServer / net::CollectorClient — the
// TCP/UDS collector edge), the telemetry subsystem (obs::MetricsRegistry,
// obs::EventJournal and the obs::MetricsServer scrape endpoint), and the
// LDP-SGD trainer. Individual headers remain includable on their own for
// faster builds.

#ifndef LDP_LDP_H_
#define LDP_LDP_H_

#include "aggregate/confidence.h"
#include "api/pipeline.h"
#include "api/server_session.h"
#include "aggregate/estimators.h"
#include "aggregate/metrics.h"
#include "baselines/duchi_multi_dim.h"
#include "baselines/duchi_one_dim.h"
#include "baselines/laplace.h"
#include "baselines/scdf.h"
#include "baselines/staircase.h"
#include "core/accountant.h"
#include "core/hybrid.h"
#include "core/mechanism.h"
#include "core/mixed_collector.h"
#include "core/numeric_aggregator.h"
#include "core/piecewise.h"
#include "core/sampled_numeric.h"
#include "core/scaler.h"
#include "core/variance.h"
#include "core/wire.h"
#include "data/census.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/encode.h"
#include "data/generators.h"
#include "data/schema.h"
#include "data/split.h"
#include "frequency/frequency_oracle.h"
#include "frequency/grr.h"
#include "frequency/histogram_encoding.h"
#include "frequency/histogram.h"
#include "frequency/olh.h"
#include "frequency/oue.h"
#include "frequency/sue.h"
#include "ml/evaluate.h"
#include "ml/ldp_sgd.h"
#include "ml/loss.h"
#include "ml/sgd.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/report_server.h"
#include "net/socket.h"
#include "obs/exposition.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "stream/aggregator_handle.h"
#include "stream/parallel_ingest.h"
#include "stream/report_stream.h"
#include "stream/shard_ingester.h"
#include "stream/snapshot.h"
#include "util/build_info.h"
#include "util/random.h"
#include "util/result.h"
#include "util/sampling.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/threadpool.h"

#endif  // LDP_LDP_H_
