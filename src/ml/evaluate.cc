#include "ml/evaluate.h"

#include <cmath>

#include "data/split.h"
#include "util/check.h"
#include "util/stats.h"

namespace ldp::ml {

namespace {

double Score(const data::DesignMatrix& features, uint64_t row,
             const std::vector<double>& beta) {
  LDP_DCHECK(features.num_cols() == beta.size());
  const double* x = features.row(row);
  double score = 0.0;
  for (size_t j = 0; j < beta.size(); ++j) score += x[j] * beta[j];
  return score;
}

}  // namespace

double MisclassificationRate(const data::DesignMatrix& features,
                             const std::vector<double>& labels,
                             const std::vector<double>& beta) {
  LDP_CHECK(features.num_rows() == labels.size());
  if (features.num_rows() == 0) return 0.0;
  uint64_t wrong = 0;
  for (uint64_t row = 0; row < features.num_rows(); ++row) {
    const double predicted = Score(features, row, beta) >= 0.0 ? 1.0 : -1.0;
    if (predicted != labels[row]) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(features.num_rows());
}

double RegressionMse(const data::DesignMatrix& features,
                     const std::vector<double>& labels,
                     const std::vector<double>& beta) {
  LDP_CHECK(features.num_rows() == labels.size());
  if (features.num_rows() == 0) return 0.0;
  double sum = 0.0;
  for (uint64_t row = 0; row < features.num_rows(); ++row) {
    const double residual = Score(features, row, beta) - labels[row];
    sum += residual * residual;
  }
  return sum / static_cast<double>(features.num_rows());
}

data::DesignMatrix TakeRows(const data::DesignMatrix& features,
                            const std::vector<uint64_t>& indices) {
  data::DesignMatrix out(indices.size(), features.num_cols());
  for (uint64_t i = 0; i < indices.size(); ++i) {
    LDP_DCHECK(indices[i] < features.num_rows());
    const double* src = features.row(indices[i]);
    for (uint32_t j = 0; j < features.num_cols(); ++j) {
      out.set(i, j, src[j]);
    }
  }
  return out;
}

std::vector<double> TakeLabels(const std::vector<double>& labels,
                               const std::vector<uint64_t>& indices) {
  std::vector<double> out;
  out.reserve(indices.size());
  for (const uint64_t i : indices) {
    LDP_DCHECK(i < labels.size());
    out.push_back(labels[i]);
  }
  return out;
}

Result<CrossValidationResult> CrossValidate(
    const data::DesignMatrix& features, const std::vector<double>& labels,
    uint32_t folds, uint32_t repeats, EvalMetric metric,
    const Trainer& trainer, Rng* rng) {
  if (features.num_rows() != labels.size()) {
    return Status::InvalidArgument("features/labels row count mismatch");
  }
  if (repeats == 0) {
    return Status::InvalidArgument("need at least one repeat");
  }
  CrossValidationResult result;
  RunningStats stats;
  for (uint32_t repeat = 0; repeat < repeats; ++repeat) {
    std::vector<data::Split> splits;
    LDP_ASSIGN_OR_RETURN(splits,
                         data::KFoldSplit(features.num_rows(), folds, rng));
    for (const data::Split& split : splits) {
      const data::DesignMatrix train_x = TakeRows(features, split.train);
      const std::vector<double> train_y = TakeLabels(labels, split.train);
      std::vector<double> beta;
      LDP_ASSIGN_OR_RETURN(beta, trainer(train_x, train_y));
      const data::DesignMatrix test_x = TakeRows(features, split.test);
      const std::vector<double> test_y = TakeLabels(labels, split.test);
      const double value = metric == EvalMetric::kMisclassification
                               ? MisclassificationRate(test_x, test_y, beta)
                               : RegressionMse(test_x, test_y, beta);
      result.fold_metrics.push_back(value);
      stats.Add(value);
    }
  }
  result.mean = stats.Mean();
  result.stddev = stats.StdDev();
  return result;
}

}  // namespace ldp::ml
