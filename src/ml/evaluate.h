// Model evaluation and the cross-validation harness of Section VI-B:
// misclassification rate for logistic regression / SVM, mean squared error
// for linear regression, and repeated k-fold cross-validation over any
// trainer (the paper uses 10-fold CV repeated 5 times).

#ifndef LDP_ML_EVALUATE_H_
#define LDP_ML_EVALUATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "data/encode.h"
#include "ml/loss.h"
#include "util/random.h"
#include "util/result.h"

namespace ldp::ml {

/// Fraction of rows where sign(xᵀβ) disagrees with the ±1 label (a zero
/// score counts as +1).
double MisclassificationRate(const data::DesignMatrix& features,
                             const std::vector<double>& labels,
                             const std::vector<double>& beta);

/// Mean of (xᵀβ − y)² over all rows.
double RegressionMse(const data::DesignMatrix& features,
                     const std::vector<double>& labels,
                     const std::vector<double>& beta);

/// Rows `indices` of `features` as a new matrix (paired with TakeLabels for
/// fold extraction).
data::DesignMatrix TakeRows(const data::DesignMatrix& features,
                            const std::vector<uint64_t>& indices);

/// Elements `indices` of `labels`.
std::vector<double> TakeLabels(const std::vector<double>& labels,
                               const std::vector<uint64_t>& indices);

/// Which test metric CrossValidate reports.
enum class EvalMetric {
  kMisclassification,
  kMse,
};

/// A trainer maps (training features, training labels) to a model β.
using Trainer = std::function<Result<std::vector<double>>(
    const data::DesignMatrix&, const std::vector<double>&)>;

/// Per-fold metrics and their summary statistics.
struct CrossValidationResult {
  std::vector<double> fold_metrics;
  double mean = 0.0;
  double stddev = 0.0;
};

/// Runs `repeats` rounds of `folds`-fold cross-validation: trains on each
/// fold's training split, evaluates `metric` on its test split. Fails if a
/// split is infeasible or the trainer fails.
Result<CrossValidationResult> CrossValidate(
    const data::DesignMatrix& features, const std::vector<double>& labels,
    uint32_t folds, uint32_t repeats, EvalMetric metric,
    const Trainer& trainer, Rng* rng);

}  // namespace ldp::ml

#endif  // LDP_ML_EVALUATE_H_
