#include "ml/sgd.h"

#include <cmath>

namespace ldp::ml {

Result<std::vector<double>> TrainSgd(const data::DesignMatrix& features,
                                     const std::vector<double>& labels,
                                     LossKind loss,
                                     const SgdOptions& options) {
  if (features.num_rows() == 0) {
    return Status::InvalidArgument("no training examples");
  }
  if (features.num_rows() != labels.size()) {
    return Status::InvalidArgument("features/labels row count mismatch");
  }
  if (options.num_iterations == 0 || options.batch_size == 0) {
    return Status::InvalidArgument("iterations and batch size must be >= 1");
  }
  if (!(options.learning_rate > 0.0)) {
    return Status::InvalidArgument("learning rate must be positive");
  }

  const ErmObjective objective(loss, options.lambda);
  const uint32_t d = features.num_cols();
  std::vector<double> beta(d, 0.0);
  std::vector<double> gradient(d, 0.0);
  std::vector<double> batch_gradient(d, 0.0);
  Rng rng(options.seed);
  for (uint32_t t = 1; t <= options.num_iterations; ++t) {
    batch_gradient.assign(d, 0.0);
    for (uint32_t b = 0; b < options.batch_size; ++b) {
      const uint64_t row = rng.UniformIndex(features.num_rows());
      objective.ExampleGradient(features.row(row), labels[row], beta,
                                &gradient);
      for (uint32_t j = 0; j < d; ++j) batch_gradient[j] += gradient[j];
    }
    const double step = options.learning_rate /
                        std::sqrt(static_cast<double>(t)) /
                        static_cast<double>(options.batch_size);
    for (uint32_t j = 0; j < d; ++j) beta[j] -= step * batch_gradient[j];
  }
  return beta;
}

}  // namespace ldp::ml
