// Empirical-risk-minimisation losses (Section V): squared loss for linear
// regression, log loss for logistic regression, hinge loss for SVM — each
// with its (sub)gradient and the ℓ2 regulariser (λ/2)‖β‖². Gradients are the
// quantities the LDP-SGD protocol collects from users, after clipping every
// coordinate into [-1, 1].

#ifndef LDP_ML_LOSS_H_
#define LDP_ML_LOSS_H_

#include <cstdint>
#include <vector>

namespace ldp::ml {

/// The three tasks evaluated in the paper.
enum class LossKind {
  kSquared,   ///< Linear regression: (xᵀβ − y)².
  kLogistic,  ///< Logistic regression: log(1 + e^{−y xᵀβ}).
  kHinge,     ///< SVM: max{0, 1 − y xᵀβ}.
};

/// Human-readable loss name ("linear", "logistic", "svm").
const char* LossKindToString(LossKind kind);

/// The regularised per-example objective ℓ'(β; x, y) = ℓ(β; x, y) +
/// (λ/2)‖β‖² and its gradient.
class ErmObjective {
 public:
  /// `lambda` >= 0 is the ℓ2 regularisation weight.
  ErmObjective(LossKind kind, double lambda);

  /// The linear score xᵀβ; class prediction is its sign, regression
  /// prediction its value.
  double Score(const double* x, const std::vector<double>& beta) const;

  /// ℓ'(β; x, y), regulariser included. `x` points at beta.size() doubles.
  double ExampleLoss(const double* x, double y,
                     const std::vector<double>& beta) const;

  /// Writes ∇ℓ'(β; x, y) (a subgradient for the hinge loss) into `grad`,
  /// which is resized to beta.size().
  void ExampleGradient(const double* x, double y,
                       const std::vector<double>& beta,
                       std::vector<double>* grad) const;

  LossKind kind() const { return kind_; }
  double lambda() const { return lambda_; }

 private:
  LossKind kind_;
  double lambda_;
};

/// Clips every coordinate of `grad` into [-1, 1] — the paper's "gradient
/// clipping" step that makes gradients valid mechanism inputs.
void ClipGradient(std::vector<double>* grad);

}  // namespace ldp::ml

#endif  // LDP_ML_LOSS_H_
