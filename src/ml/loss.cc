#include "ml/loss.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ldp::ml {

const char* LossKindToString(LossKind kind) {
  switch (kind) {
    case LossKind::kSquared:
      return "linear";
    case LossKind::kLogistic:
      return "logistic";
    case LossKind::kHinge:
      return "svm";
  }
  return "unknown";
}

ErmObjective::ErmObjective(LossKind kind, double lambda)
    : kind_(kind), lambda_(lambda) {
  LDP_CHECK(lambda >= 0.0);
}

double ErmObjective::Score(const double* x,
                           const std::vector<double>& beta) const {
  double score = 0.0;
  for (size_t j = 0; j < beta.size(); ++j) score += x[j] * beta[j];
  return score;
}

double ErmObjective::ExampleLoss(const double* x, double y,
                                 const std::vector<double>& beta) const {
  const double score = Score(x, beta);
  double loss = 0.0;
  switch (kind_) {
    case LossKind::kSquared: {
      const double residual = score - y;
      loss = residual * residual;
      break;
    }
    case LossKind::kLogistic: {
      // log(1 + e^{-m}) computed stably for large |m|.
      const double margin = y * score;
      loss = margin > 0.0 ? std::log1p(std::exp(-margin))
                          : -margin + std::log1p(std::exp(margin));
      break;
    }
    case LossKind::kHinge:
      loss = std::max(0.0, 1.0 - y * score);
      break;
  }
  double reg = 0.0;
  for (const double b : beta) reg += b * b;
  return loss + 0.5 * lambda_ * reg;
}

void ErmObjective::ExampleGradient(const double* x, double y,
                                   const std::vector<double>& beta,
                                   std::vector<double>* grad) const {
  const size_t d = beta.size();
  grad->assign(d, 0.0);
  const double score = Score(x, beta);
  double scale = 0.0;  // gradient = scale · x + λ β
  switch (kind_) {
    case LossKind::kSquared:
      scale = 2.0 * (score - y);
      break;
    case LossKind::kLogistic:
      scale = -y * Sigmoid(-y * score);
      break;
    case LossKind::kHinge:
      scale = (y * score < 1.0) ? -y : 0.0;
      break;
  }
  for (size_t j = 0; j < d; ++j) {
    (*grad)[j] = scale * x[j] + lambda_ * beta[j];
  }
}

void ClipGradient(std::vector<double>* grad) {
  for (double& g : *grad) g = Clamp(g, -1.0, 1.0);
}

}  // namespace ldp::ml
