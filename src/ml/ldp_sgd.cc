#include "ml/ldp_sgd.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "baselines/duchi_multi_dim.h"
#include "baselines/laplace.h"
#include "core/sampled_numeric.h"
#include "util/check.h"
#include "util/sampling.h"

namespace ldp::ml {

namespace {

// Guardrails for the automatic group size: leave at least this many
// iterations, and never form groups smaller than this.
constexpr uint32_t kMinIterations = 10;
constexpr uint32_t kMinGroupSize = 16;

// Perturbs one clipped gradient; a thin strategy wrapper so the training
// loop is mechanism-agnostic.
class GradientChannel {
 public:
  GradientChannel(GradientPerturber perturber, double epsilon, uint32_t d)
      : perturber_(perturber) {
    switch (perturber_) {
      case GradientPerturber::kNonPrivate:
        break;
      case GradientPerturber::kLaplaceSplit:
        laplace_ = std::make_unique<LaplaceMechanism>(epsilon / d);
        break;
      case GradientPerturber::kDuchiMulti:
        duchi_ = std::make_unique<DuchiMultiDimMechanism>(epsilon, d);
        break;
      case GradientPerturber::kPiecewiseSampled:
      case GradientPerturber::kHybridSampled: {
        const MechanismKind kind =
            perturber_ == GradientPerturber::kPiecewiseSampled
                ? MechanismKind::kPiecewise
                : MechanismKind::kHybrid;
        auto sampled = SampledNumericMechanism::Create(kind, epsilon, d);
        LDP_CHECK(sampled.ok());
        sampled_ = std::make_unique<SampledNumericMechanism>(
            std::move(sampled).value());
        break;
      }
    }
  }

  // Adds the privatized gradient into `sum` (coordinatewise).
  void AccumulatePerturbed(const std::vector<double>& gradient, Rng* rng,
                           std::vector<double>* sum) const {
    switch (perturber_) {
      case GradientPerturber::kNonPrivate:
        for (size_t j = 0; j < gradient.size(); ++j) {
          (*sum)[j] += gradient[j];
        }
        return;
      case GradientPerturber::kLaplaceSplit:
        for (size_t j = 0; j < gradient.size(); ++j) {
          (*sum)[j] += laplace_->Perturb(gradient[j], rng);
        }
        return;
      case GradientPerturber::kDuchiMulti: {
        const std::vector<double> noisy = duchi_->Perturb(gradient, rng);
        for (size_t j = 0; j < noisy.size(); ++j) (*sum)[j] += noisy[j];
        return;
      }
      case GradientPerturber::kPiecewiseSampled:
      case GradientPerturber::kHybridSampled:
        for (const SampledValue& entry : sampled_->Perturb(gradient, rng)) {
          (*sum)[entry.attribute] += entry.value;
        }
        return;
    }
  }

 private:
  GradientPerturber perturber_;
  std::unique_ptr<LaplaceMechanism> laplace_;
  std::unique_ptr<DuchiMultiDimMechanism> duchi_;
  std::unique_ptr<SampledNumericMechanism> sampled_;
};

}  // namespace

const char* GradientPerturberToString(GradientPerturber perturber) {
  switch (perturber) {
    case GradientPerturber::kNonPrivate:
      return "Non-private";
    case GradientPerturber::kLaplaceSplit:
      return "Laplace";
    case GradientPerturber::kDuchiMulti:
      return "Duchi";
    case GradientPerturber::kPiecewiseSampled:
      return "PM";
    case GradientPerturber::kHybridSampled:
      return "HM";
  }
  return "unknown";
}

uint32_t AutoGroupSize(uint64_t num_users, uint32_t dimension,
                       double epsilon) {
  // |G| = Ω(d log d / ε²) makes the gradient noise O(√(d log d)/(ε√|G|))
  // acceptable; cap so at least kMinIterations iterations remain.
  const double theory = static_cast<double>(dimension) *
                        std::log(static_cast<double>(dimension) + 1.0) /
                        (epsilon * epsilon);
  uint64_t group = std::max<uint64_t>(
      kMinGroupSize, static_cast<uint64_t>(std::llround(theory)));
  group = std::min<uint64_t>(group,
                             std::max<uint64_t>(1, num_users / kMinIterations));
  return static_cast<uint32_t>(std::max<uint64_t>(1, group));
}

Result<std::vector<double>> TrainLdpSgd(const data::DesignMatrix& features,
                                        const std::vector<double>& labels,
                                        LossKind loss,
                                        const LdpSgdOptions& options) {
  if (features.num_rows() == 0) {
    return Status::InvalidArgument("no training examples");
  }
  if (features.num_rows() != labels.size()) {
    return Status::InvalidArgument("features/labels row count mismatch");
  }
  if (options.perturber != GradientPerturber::kNonPrivate) {
    LDP_RETURN_IF_ERROR(ValidateEpsilon(options.epsilon));
  }
  if (!(options.learning_rate > 0.0)) {
    return Status::InvalidArgument("learning rate must be positive");
  }
  const uint64_t n = features.num_rows();
  const uint32_t d = features.num_cols();
  const uint32_t group_size =
      options.group_size > 0
          ? options.group_size
          : AutoGroupSize(n, d, options.epsilon);
  if (group_size > n) {
    return Status::InvalidArgument("group size exceeds population");
  }

  const ErmObjective objective(loss, options.lambda);
  const GradientChannel channel(options.perturber, options.epsilon, d);
  Rng rng(options.seed);

  // Disjoint groups: shuffle once, consume group_size users per iteration.
  std::vector<uint64_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  Shuffle(&order, &rng);
  const uint64_t num_iterations = n / group_size;

  std::vector<double> beta(d, 0.0);
  std::vector<double> gradient(d, 0.0);
  std::vector<double> gradient_sum(d, 0.0);
  for (uint64_t t = 1; t <= num_iterations; ++t) {
    gradient_sum.assign(d, 0.0);
    const uint64_t begin = (t - 1) * group_size;
    for (uint64_t i = begin; i < begin + group_size; ++i) {
      const uint64_t row = order[i];
      objective.ExampleGradient(features.row(row), labels[row], beta,
                                &gradient);
      ClipGradient(&gradient);
      channel.AccumulatePerturbed(gradient, &rng, &gradient_sum);
    }
    const double step = options.learning_rate /
                        std::sqrt(static_cast<double>(t)) /
                        static_cast<double>(group_size);
    for (uint32_t j = 0; j < d; ++j) beta[j] -= step * gradient_sum[j];
  }
  return beta;
}

}  // namespace ldp::ml
