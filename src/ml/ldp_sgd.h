// LDP-SGD (Section V): stochastic gradient descent where gradients are
// collected from users under ε-LDP.
//
// Users are shuffled and partitioned into disjoint groups of |G|; each group
// powers exactly one iteration (a user participates at most once, so no
// budget splitting across iterations is needed — Section V shows m > 1
// participations per user only hurts). In iteration t every user of group t
// computes her gradient ∇ℓ'(β_t; x, y), clips each coordinate into [-1, 1],
// perturbs the clipped gradient with a d-dimensional ε-LDP mechanism, and
// submits it; the server averages the noisy gradients and takes the step
// β_{t+1} = β_t − γ_t · mean. Supported perturbers mirror the paper's
// Fig. 9–11 competitors: Algorithm 4 with PM or HM (proposed), Duchi et
// al.'s Algorithm 3, per-coordinate Laplace at ε/d, and a non-private
// passthrough for reference.

#ifndef LDP_ML_LDP_SGD_H_
#define LDP_ML_LDP_SGD_H_

#include <cstdint>
#include <vector>

#include "data/encode.h"
#include "ml/loss.h"
#include "util/result.h"

namespace ldp::ml {

/// How each user's clipped gradient is privatized.
enum class GradientPerturber {
  kNonPrivate,       ///< No noise (the reference line).
  kLaplaceSplit,     ///< Laplace per coordinate at ε/d each.
  kDuchiMulti,       ///< Duchi et al.'s Algorithm 3.
  kPiecewiseSampled, ///< Algorithm 4 with PM.
  kHybridSampled,    ///< Algorithm 4 with HM.
};

/// Human-readable perturber name ("Non-private", "Laplace", "Duchi", "PM",
/// "HM").
const char* GradientPerturberToString(GradientPerturber perturber);

/// Hyperparameters of the LDP trainer.
struct LdpSgdOptions {
  /// Per-user privacy budget ε.
  double epsilon = 1.0;
  /// Gradient privatization scheme.
  GradientPerturber perturber = GradientPerturber::kHybridSampled;
  /// Users per iteration |G|; 0 picks Θ(d log d / ε²) capped to use at least
  /// kMinIterations groups.
  uint32_t group_size = 0;
  /// γ₀ of the learning schedule γ_t = γ₀/√t.
  double learning_rate = 0.5;
  /// ℓ2 regularisation weight λ (the paper uses 1e-4).
  double lambda = 1e-4;
  /// Generator seed; equal seeds give equal models.
  uint64_t seed = 1;
};

/// The group size the trainer uses when options.group_size == 0:
/// clamp(d·ln(d+1)/ε², n/kMinIterations) into [kMinGroupSize, ...], so small
/// populations still get several iterations.
uint32_t AutoGroupSize(uint64_t num_users, uint32_t dimension, double epsilon);

/// Trains β under ε-LDP on (features, labels); every row is one user.
/// Feature coordinates must lie in [-1, 1] (data::EncodeFeatures guarantees
/// this). Fails on empty/mismatched inputs, a bad budget, or a group size
/// exceeding the population.
Result<std::vector<double>> TrainLdpSgd(const data::DesignMatrix& features,
                                        const std::vector<double>& labels,
                                        LossKind loss,
                                        const LdpSgdOptions& options);

}  // namespace ldp::ml

#endif  // LDP_ML_LDP_SGD_H_
