// Non-private mini-batch SGD — the "Non-private" reference line of
// Figs. 9–11 and the template the LDP variant (ml/ldp_sgd.h) instantiates
// with perturbed gradients. Uses the paper's γ_t = γ₀/√t learning schedule.

#ifndef LDP_ML_SGD_H_
#define LDP_ML_SGD_H_

#include <cstdint>
#include <vector>

#include "data/encode.h"
#include "ml/loss.h"
#include "util/random.h"
#include "util/result.h"

namespace ldp::ml {

/// Hyperparameters of the non-private trainer.
struct SgdOptions {
  /// Number of gradient steps.
  uint32_t num_iterations = 2000;
  /// Examples averaged per step (sampled with replacement).
  uint32_t batch_size = 64;
  /// γ₀ of the learning schedule γ_t = γ₀/√t.
  double learning_rate = 0.5;
  /// ℓ2 regularisation weight λ.
  double lambda = 1e-4;
  /// Generator seed; equal seeds give equal models.
  uint64_t seed = 1;
};

/// Trains β by mini-batch SGD on (features, labels). Fails on empty or
/// mismatched inputs or non-positive hyperparameters.
Result<std::vector<double>> TrainSgd(const data::DesignMatrix& features,
                                     const std::vector<double>& labels,
                                     LossKind loss, const SgdOptions& options);

}  // namespace ldp::ml

#endif  // LDP_ML_SGD_H_
