#include "baselines/laplace.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace ldp {

LaplaceMechanism::LaplaceMechanism(double epsilon)
    : epsilon_(epsilon), scale_(2.0 / epsilon) {
  LDP_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                "epsilon must be positive and finite");
}

double LaplaceMechanism::Perturb(double t, Rng* rng) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  return t + rng->Laplace(scale_);
}

double LaplaceMechanism::Variance(double /*t*/) const {
  return 2.0 * scale_ * scale_;  // = 8 / eps^2
}

double LaplaceMechanism::WorstCaseVariance() const { return Variance(0.0); }

double LaplaceMechanism::OutputBound() const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace ldp
