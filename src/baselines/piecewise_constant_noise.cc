#include "baselines/piecewise_constant_noise.h"

#include <cmath>

#include "util/check.h"

namespace ldp {

PiecewiseConstantNoise::PiecewiseConstantNoise(double epsilon, double m,
                                               double a)
    : epsilon_(epsilon), m_(m), a_(a) {
  LDP_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0, "epsilon > 0 required");
  LDP_CHECK_MSG(m > 0.0 && m <= 1.0, "m must be in (0, 1] for eps-LDP");
  LDP_CHECK(a > 0.0);
  decay_ = std::exp(-epsilon_);
  center_mass_ = 2.0 * m_ * a_;
  const double total = center_mass_ + 4.0 * a_ * decay_ / (1.0 - decay_);
  LDP_CHECK_MSG(std::fabs(total - 1.0) < 1e-9,
                "(m, a) do not normalise the density");
  variance_ = ComputeVariance();
}

double PiecewiseConstantNoise::Sample(Rng* rng) const {
  if (rng->Bernoulli(center_mass_)) {
    return rng->Uniform(-m_, m_);
  }
  // Tail: piece j >= 0 carries mass proportional to e^{-(j+1) eps}; the piece
  // index is therefore geometric with success probability 1 - e^{-eps}.
  const auto j = static_cast<double>(rng->Geometric(1.0 - decay_));
  const double lo = m_ + 2.0 * j;
  const double x = rng->Uniform(lo, lo + 2.0);
  return rng->Bernoulli(0.5) ? x : -x;
}

double PiecewiseConstantNoise::Pdf(double x) const {
  const double ax = std::fabs(x);
  if (ax <= m_) return a_;
  const double j = std::floor((ax - m_) / 2.0);
  return a_ * std::exp(-(j + 1.0) * epsilon_);
}

double PiecewiseConstantNoise::ComputeVariance() const {
  // Central piece: a * \int_{-m}^{m} x^2 dx = 2 a m^3 / 3.
  double var = 2.0 * a_ * m_ * m_ * m_ / 3.0;
  // Tails: 2 * sum_j a e^{-(j+1) eps} * \int_{m+2j}^{m+2j+2} x^2 dx.
  double weight = a_ * decay_;
  for (int j = 0;; ++j) {
    const double lo = m_ + 2.0 * static_cast<double>(j);
    const double hi = lo + 2.0;
    const double piece = (hi * hi * hi - lo * lo * lo) / 3.0;
    const double contribution = 2.0 * weight * piece;
    var += contribution;
    if (contribution < 1e-15 * var && j > 2) break;
    weight *= decay_;
    LDP_CHECK_MSG(j < 100000, "variance series failed to converge");
  }
  return var;
}

}  // namespace ldp
