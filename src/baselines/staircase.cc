#include "baselines/staircase.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace ldp {

double StaircaseMechanism::ComputeM(double epsilon) {
  return 2.0 / (1.0 + std::exp(epsilon / 2.0));
}

double StaircaseMechanism::ComputeA(double epsilon) {
  const double e = std::exp(-epsilon);
  const double m = ComputeM(epsilon);
  return (1.0 - e) / (2.0 * m + 4.0 * e - 2.0 * m * e);
}

StaircaseMechanism::StaircaseMechanism(double epsilon)
    : epsilon_(epsilon),
      noise_(epsilon, ComputeM(epsilon), ComputeA(epsilon)) {}

double StaircaseMechanism::Perturb(double t, Rng* rng) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  return t + noise_.Sample(rng);
}

double StaircaseMechanism::Variance(double /*t*/) const {
  return noise_.Variance();
}

double StaircaseMechanism::WorstCaseVariance() const {
  return noise_.Variance();
}

double StaircaseMechanism::OutputBound() const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace ldp
