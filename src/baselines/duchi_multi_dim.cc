#include "baselines/duchi_multi_dim.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ldp {

double DuchiMultiDimMechanism::ComputeCd(uint32_t d) {
  LDP_CHECK(d >= 1);
  // Log-space evaluation keeps this exact for d in the thousands.
  const double ln2 = std::log(2.0);
  if (d % 2 == 1) {
    // 2^{d-1} / C(d-1, (d-1)/2)
    return std::exp(static_cast<double>(d - 1) * ln2 -
                    LogBinomial(d - 1, (d - 1) / 2));
  }
  // (2^{d-1} + C(d, d/2)/2) / C(d-1, d/2)
  const double log_denominator = LogBinomial(d - 1, d / 2);
  const double first =
      std::exp(static_cast<double>(d - 1) * ln2 - log_denominator);
  const double second =
      0.5 * std::exp(LogBinomial(d, d / 2) - log_denominator);
  return first + second;
}

DuchiMultiDimMechanism::DuchiMultiDimMechanism(double epsilon,
                                               uint32_t dimension)
    : epsilon_(epsilon), dimension_(dimension) {
  LDP_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                "epsilon must be positive and finite");
  LDP_CHECK(dimension >= 1);
  const double e = std::exp(epsilon);
  bound_ = (e + 1.0) / (e - 1.0) * ComputeCd(dimension);
  flip_prob_ = e / (e + 1.0);

  // T+ contains the sign vectors agreeing with v on m >= ceil(d/2)
  // coordinates; |{s : agree = m}| = C(d, m). Normalise by the largest
  // binomial to avoid overflow.
  const uint32_t d = dimension_;
  upper_count_offset_ = (d + 1) / 2;  // ceil(d/2)
  const double log_peak = LogBinomial(d, d / 2);
  std::vector<double> weights;
  weights.reserve(d - upper_count_offset_ + 1);
  for (uint32_t m = upper_count_offset_; m <= d; ++m) {
    weights.push_back(std::exp(LogBinomial(d, m) - log_peak));
  }
  upper_count_sampler_ = std::make_unique<AliasSampler>(weights);
}

uint32_t DuchiMultiDimMechanism::SampleAgreementCount(bool positive,
                                                      Rng* rng) const {
  const uint32_t m = upper_count_offset_ + upper_count_sampler_->Sample(rng);
  // T- is the mirror image: s agrees with v on m coordinates iff -s agrees on
  // d - m, so a uniform element of T- has agreement count d - m.
  return positive ? m : dimension_ - m;
}

std::vector<double> DuchiMultiDimMechanism::Perturb(
    const std::vector<double>& t, Rng* rng) const {
  LDP_CHECK(t.size() == dimension_);
  const uint32_t d = dimension_;

  // Step 1: random sign vector v with Pr[v_j = 1] = (1 + t_j) / 2.
  std::vector<int8_t> v(d);
  for (uint32_t j = 0; j < d; ++j) {
    LDP_DCHECK(t[j] >= -1.0 && t[j] <= 1.0);
    v[j] = rng->Bernoulli(0.5 + 0.5 * t[j]) ? 1 : -1;
  }

  // Steps 2-7: return a uniform element of T+ with prob e^eps/(e^eps+1),
  // else a uniform element of T-.
  const bool positive = rng->Bernoulli(flip_prob_);
  const uint32_t agree = SampleAgreementCount(positive, rng);

  std::vector<double> out(d);
  for (uint32_t j = 0; j < d; ++j) out[j] = -bound_ * static_cast<double>(v[j]);
  for (uint32_t j : SampleWithoutReplacement(d, agree, rng)) {
    out[j] = bound_ * static_cast<double>(v[j]);
  }
  return out;
}

}  // namespace ldp
