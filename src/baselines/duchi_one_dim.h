// Duchi et al.'s minimax-optimal mechanism for one numeric value
// (Algorithm 1 of the reproduced paper; Duchi, Jordan, Wainwright, JASA 2018).
// The output is two-point: ±(e^eps + 1)/(e^eps - 1).

#ifndef LDP_BASELINES_DUCHI_ONE_DIM_H_
#define LDP_BASELINES_DUCHI_ONE_DIM_H_

#include "core/mechanism.h"

namespace ldp {

/// Duchi et al. 1-D: unbiased, output in {-B, B} with B = (e^eps+1)/(e^eps-1);
/// Var = B^2 - t^2 (largest at t = 0, never below B^2 - 1 > 1).
class DuchiOneDimMechanism final : public ScalarMechanism {
 public:
  explicit DuchiOneDimMechanism(double epsilon);

  double Perturb(double t, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  const char* name() const override { return "Duchi"; }
  double Variance(double t) const override;
  double WorstCaseVariance() const override;
  double OutputBound() const override { return bound_; }

  /// The two-point magnitude B = (e^eps + 1)/(e^eps - 1).
  double bound() const { return bound_; }

 private:
  double epsilon_;
  double bound_;
  double head_slope_;  // (e^eps - 1) / (2 e^eps + 2)
};

}  // namespace ldp

#endif  // LDP_BASELINES_DUCHI_ONE_DIM_H_
