// SCDF mechanism (Soria-Comas & Domingo-Ferrer, Information Sciences 2013):
// data-independent piecewise-constant noise that is optimal among symmetric
// data-independent distributions for unbounded domains. Parameters (Section
// III-A of the reproduced paper):
//
//   m = 2 (1 - e^{-eps} - eps e^{-eps}) / (eps (1 - e^{-eps})),   a = eps / 4.

#ifndef LDP_BASELINES_SCDF_H_
#define LDP_BASELINES_SCDF_H_

#include "baselines/piecewise_constant_noise.h"
#include "core/mechanism.h"

namespace ldp {

/// SCDF: unbiased, unbounded output, input-independent variance.
class ScdfMechanism final : public ScalarMechanism {
 public:
  explicit ScdfMechanism(double epsilon);

  double Perturb(double t, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  const char* name() const override { return "SCDF"; }
  double Variance(double t) const override;
  double WorstCaseVariance() const override;
  double OutputBound() const override;

  /// The underlying noise distribution (for tests).
  const PiecewiseConstantNoise& noise() const { return noise_; }

  /// The SCDF central-piece half-width m for the given budget.
  static double ComputeM(double epsilon);

 private:
  double epsilon_;
  PiecewiseConstantNoise noise_;
};

}  // namespace ldp

#endif  // LDP_BASELINES_SCDF_H_
