// Shared machinery for the SCDF (Soria-Comas & Domingo-Ferrer) and Staircase
// (Geng et al.) mechanisms. Both add data-independent noise drawn from a
// symmetric piecewise-constant density (Eq. 2 of the reproduced paper):
//
//   pdf(x) = a                      for x in [-m, m]
//   pdf(x) = a * e^{-(j+1) eps}     for |x| in [m + 2j, m + 2(j+1)], j = 0,1,...
//
// The density steps down by a factor e^eps every 2 units (the diameter of the
// input domain [-1, 1]), which yields eps-LDP as long as m <= 1. The two
// mechanisms differ only in their choice of (m, a).

#ifndef LDP_BASELINES_PIECEWISE_CONSTANT_NOISE_H_
#define LDP_BASELINES_PIECEWISE_CONSTANT_NOISE_H_

#include "util/random.h"

namespace ldp {

/// Sampler and analytic moments for the two-parameter piecewise-constant
/// noise family above.
class PiecewiseConstantNoise {
 public:
  /// `epsilon` > 0; `m` in (0, 1]; `a` must normalise the density:
  /// 2 m a + 4 a e^{-eps} / (1 - e^{-eps}) = 1 (checked at construction).
  PiecewiseConstantNoise(double epsilon, double m, double a);

  /// Draws one noise variate.
  double Sample(Rng* rng) const;

  /// Density at x (exact, from the closed form).
  double Pdf(double x) const;

  /// Var of the noise = E[noise^2] (the density is symmetric, mean 0).
  double Variance() const { return variance_; }

  double epsilon() const { return epsilon_; }
  double m() const { return m_; }
  double a() const { return a_; }

 private:
  double ComputeVariance() const;

  double epsilon_;
  double m_;
  double a_;
  double center_mass_;   // probability of the central piece = 2 m a
  double decay_;         // e^{-eps}
  double variance_;
};

}  // namespace ldp

#endif  // LDP_BASELINES_PIECEWISE_CONSTANT_NOISE_H_
