// Duchi et al.'s mechanism for d-dimensional numeric tuples (Algorithm 3 of
// the reproduced paper). Given t ∈ [-1,1]^d it emits a vertex of the cube
// {-B, B}^d, where B = C_d (e^eps + 1)/(e^eps - 1) and C_d (Eq. 9) is chosen
// so every coordinate is an unbiased estimate of the corresponding input.
//
// The sampling step "pick a uniform element of T+ = {s : <s, v> >= 0}" is
// implemented exactly: the number of coordinates of s agreeing with v is
// drawn from the binomial-tail distribution P(m) ∝ C(d, m) restricted to the
// half-space, then the agreeing positions are chosen uniformly without
// replacement. This is O(d) per tuple after O(d) setup.

#ifndef LDP_BASELINES_DUCHI_MULTI_DIM_H_
#define LDP_BASELINES_DUCHI_MULTI_DIM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.h"
#include "util/sampling.h"

namespace ldp {

/// Duchi et al.'s d-dimensional mechanism; every output coordinate is ±B.
class DuchiMultiDimMechanism {
 public:
  /// `epsilon` > 0, `dimension` >= 1.
  DuchiMultiDimMechanism(double epsilon, uint32_t dimension);

  /// Perturbs a tuple with all coordinates in [-1, 1]; the result has every
  /// coordinate equal to +B or -B and is componentwise unbiased.
  std::vector<double> Perturb(const std::vector<double>& t, Rng* rng) const;

  double epsilon() const { return epsilon_; }
  uint32_t dimension() const { return dimension_; }

  /// The output magnitude B (Eq. 10).
  double bound() const { return bound_; }

  /// Per-coordinate output variance for input coordinate value `tj`
  /// (Eq. 13): B^2 - tj^2.
  double CoordinateVariance(double tj) const { return bound_ * bound_ - tj * tj; }

  /// Worst-case per-coordinate variance, attained at tj = 0.
  double WorstCaseCoordinateVariance() const { return bound_ * bound_; }

  /// The combinatorial constant C_d of Eq. 9 (Θ(√d)).
  static double ComputeCd(uint32_t dimension);

 private:
  /// Draws the number of coordinates agreeing with v for a uniform element of
  /// T+ (positive = true) or T- (positive = false).
  uint32_t SampleAgreementCount(bool positive, Rng* rng) const;

  double epsilon_;
  uint32_t dimension_;
  double bound_;
  double flip_prob_;  // e^eps / (e^eps + 1): probability of returning from T+
  // Distribution of the agreement count m over the upper half-space
  // (m = ceil(d/2) .. d, weights C(d, m)); the lower half-space is symmetric.
  std::unique_ptr<AliasSampler> upper_count_sampler_;
  uint32_t upper_count_offset_;
};

}  // namespace ldp

#endif  // LDP_BASELINES_DUCHI_MULTI_DIM_H_
