#include "baselines/duchi_one_dim.h"

#include <cmath>

#include "util/check.h"

namespace ldp {

DuchiOneDimMechanism::DuchiOneDimMechanism(double epsilon) : epsilon_(epsilon) {
  LDP_CHECK_MSG(std::isfinite(epsilon) && epsilon > 0.0,
                "epsilon must be positive and finite");
  const double e = std::exp(epsilon);
  bound_ = (e + 1.0) / (e - 1.0);
  head_slope_ = (e - 1.0) / (2.0 * e + 2.0);
}

double DuchiOneDimMechanism::Perturb(double t, Rng* rng) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  const double head_prob = head_slope_ * t + 0.5;
  return rng->Bernoulli(head_prob) ? bound_ : -bound_;
}

double DuchiOneDimMechanism::Variance(double t) const {
  return bound_ * bound_ - t * t;  // Eq. 4 of the paper
}

double DuchiOneDimMechanism::WorstCaseVariance() const {
  return bound_ * bound_;
}

}  // namespace ldp
