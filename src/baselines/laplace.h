// The classic Laplace mechanism specialised to the LDP setting: a value
// t ∈ [-1, 1] has sensitivity 2, so t* = t + Lap(2/ε) satisfies ε-LDP
// (Dwork et al., TCC 2006; Section III-A of the reproduced paper).

#ifndef LDP_BASELINES_LAPLACE_H_
#define LDP_BASELINES_LAPLACE_H_

#include "core/mechanism.h"

namespace ldp {

/// Laplace mechanism: unbiased, unbounded output, Var = 8/ε² for every input.
class LaplaceMechanism final : public ScalarMechanism {
 public:
  /// Builds the mechanism; `epsilon` must be positive and finite.
  explicit LaplaceMechanism(double epsilon);

  double Perturb(double t, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  const char* name() const override { return "Laplace"; }
  double Variance(double t) const override;
  double WorstCaseVariance() const override;
  double OutputBound() const override;

  /// The Laplace scale parameter 2/ε.
  double scale() const { return scale_; }

 private:
  double epsilon_;
  double scale_;
};

}  // namespace ldp

#endif  // LDP_BASELINES_LAPLACE_H_
