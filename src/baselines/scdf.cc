#include "baselines/scdf.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace ldp {

double ScdfMechanism::ComputeM(double epsilon) {
  const double e = std::exp(-epsilon);
  return 2.0 * (1.0 - e - epsilon * e) / (epsilon * (1.0 - e));
}

ScdfMechanism::ScdfMechanism(double epsilon)
    : epsilon_(epsilon),
      noise_(epsilon, ComputeM(epsilon), epsilon / 4.0) {}

double ScdfMechanism::Perturb(double t, Rng* rng) const {
  LDP_DCHECK(t >= -1.0 && t <= 1.0);
  return t + noise_.Sample(rng);
}

double ScdfMechanism::Variance(double /*t*/) const { return noise_.Variance(); }

double ScdfMechanism::WorstCaseVariance() const { return noise_.Variance(); }

double ScdfMechanism::OutputBound() const {
  return std::numeric_limits<double>::infinity();
}

}  // namespace ldp
