// Staircase mechanism (Geng, Kairouz, Oh, Viswanath, IEEE JSTSP 2015),
// instantiated for sensitivity-2 inputs. Parameters (Section III-A of the
// reproduced paper):
//
//   m = 2 / (1 + e^{eps/2}),
//   a = (1 - e^{-eps}) / (2 m + 4 e^{-eps} - 2 m e^{-eps}).

#ifndef LDP_BASELINES_STAIRCASE_H_
#define LDP_BASELINES_STAIRCASE_H_

#include "baselines/piecewise_constant_noise.h"
#include "core/mechanism.h"

namespace ldp {

/// Staircase: unbiased, unbounded output, input-independent variance. Optimal
/// for unbounded input domains; the optimality does not carry over to the
/// bounded domain [-1, 1] targeted by PM/HM.
class StaircaseMechanism final : public ScalarMechanism {
 public:
  explicit StaircaseMechanism(double epsilon);

  double Perturb(double t, Rng* rng) const override;
  double epsilon() const override { return epsilon_; }
  const char* name() const override { return "Staircase"; }
  double Variance(double t) const override;
  double WorstCaseVariance() const override;
  double OutputBound() const override;

  /// The underlying noise distribution (for tests).
  const PiecewiseConstantNoise& noise() const { return noise_; }

  /// The staircase central-piece half-width m for the given budget.
  static double ComputeM(double epsilon);

  /// The staircase density level a for the given budget.
  static double ComputeA(double epsilon);

 private:
  double epsilon_;
  PiecewiseConstantNoise noise_;
};

}  // namespace ldp

#endif  // LDP_BASELINES_STAIRCASE_H_
