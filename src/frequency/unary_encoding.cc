#include "frequency/unary_encoding.h"

#include <cmath>

#include "util/check.h"

namespace ldp {

UnaryEncodingOracle::UnaryEncodingOracle(double epsilon, uint32_t domain_size,
                                         double p, double q)
    : FrequencyOracle(epsilon, domain_size), p_(p), q_(q) {
  LDP_CHECK(std::isfinite(epsilon) && epsilon > 0.0);
  LDP_CHECK(domain_size >= 2);
  LDP_CHECK(0.0 < q && q < p && p <= 1.0);
}

FrequencyOracle::Report UnaryEncodingOracle::Perturb(uint32_t value,
                                                     Rng* rng) const {
  if (q_ <= kSkipSamplingMaxQ) return PerturbSkip(value, rng);
  return PerturbPerBit(value, rng);
}

FrequencyOracle::Report UnaryEncodingOracle::PerturbPerBit(uint32_t value,
                                                           Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  Report set_bits;
  for (uint32_t bit = 0; bit < domain_size(); ++bit) {
    const double keep_prob = (bit == value) ? p_ : q_;
    if (rng->Bernoulli(keep_prob)) set_bits.push_back(bit);
  }
  return set_bits;
}

FrequencyOracle::Report UnaryEncodingOracle::PerturbSkip(uint32_t value,
                                                         Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  Report set_bits;
  const bool true_bit = rng->Bernoulli(p_);
  bool true_bit_pending = true_bit;
  // The d-1 non-true bits form a virtual array of i.i.d. Bernoulli(q)
  // trials; jump from set bit to set bit by drawing the geometric run of
  // unset bits in between. Virtual position v maps to bit v below `value`
  // and bit v+1 at or above it, so virtual order is bit order.
  const uint64_t virtual_size = domain_size() - 1;
  uint64_t position = 0;
  for (;;) {
    const uint64_t gap = rng->Geometric(q_);
    if (gap >= virtual_size - position) break;  // no further set bit
    position += gap;
    const uint32_t bit = position < value ? static_cast<uint32_t>(position)
                                          : static_cast<uint32_t>(position) + 1;
    if (true_bit_pending && value < bit) {
      set_bits.push_back(value);
      true_bit_pending = false;
    }
    set_bits.push_back(bit);
    if (++position == virtual_size) break;
  }
  if (true_bit_pending) set_bits.push_back(value);
  return set_bits;
}

void UnaryEncodingOracle::Accumulate(const Report& report,
                                     std::vector<double>* support) const {
  LDP_DCHECK(support->size() == domain_size());
  for (const uint32_t bit : report) {
    LDP_DCHECK(bit < domain_size());
    (*support)[bit] += 1.0;
  }
}

Status UnaryEncodingOracle::ValidateReport(const Report& report) const {
  if (report.size() > domain_size()) {
    return Status::InvalidArgument("unary report has more bits than the domain");
  }
  for (size_t i = 0; i < report.size(); ++i) {
    if (report[i] >= domain_size()) {
      return Status::InvalidArgument("unary report bit outside the domain");
    }
    if (i > 0 && report[i] <= report[i - 1]) {
      return Status::InvalidArgument(
          "unary report bits must be strictly increasing");
    }
  }
  return Status::OK();
}

std::vector<double> UnaryEncodingOracle::Estimate(
    const std::vector<double>& support, uint64_t num_reports) const {
  LDP_DCHECK(support.size() == domain_size());
  return internal_frequency::DebiasSupportCounts(support, num_reports, p_, q_);
}

double UnaryEncodingOracle::EstimateVariance(double f,
                                             uint64_t num_reports) const {
  return internal_frequency::SupportEstimateVariance(f, num_reports, p_, q_);
}

}  // namespace ldp
