#include "frequency/unary_encoding.h"

#include <cmath>

#include "util/check.h"

namespace ldp {

UnaryEncodingOracle::UnaryEncodingOracle(double epsilon, uint32_t domain_size,
                                         double p, double q)
    : FrequencyOracle(epsilon, domain_size), p_(p), q_(q) {
  LDP_CHECK(std::isfinite(epsilon) && epsilon > 0.0);
  LDP_CHECK(domain_size >= 2);
  LDP_CHECK(0.0 < q && q < p && p <= 1.0);
}

FrequencyOracle::Report UnaryEncodingOracle::Perturb(uint32_t value,
                                                     Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  Report set_bits;
  for (uint32_t bit = 0; bit < domain_size(); ++bit) {
    const double keep_prob = (bit == value) ? p_ : q_;
    if (rng->Bernoulli(keep_prob)) set_bits.push_back(bit);
  }
  return set_bits;
}

void UnaryEncodingOracle::Accumulate(const Report& report,
                                     std::vector<double>* support) const {
  LDP_DCHECK(support->size() == domain_size());
  for (const uint32_t bit : report) {
    LDP_DCHECK(bit < domain_size());
    (*support)[bit] += 1.0;
  }
}

Status UnaryEncodingOracle::ValidateReport(const Report& report) const {
  if (report.size() > domain_size()) {
    return Status::InvalidArgument("unary report has more bits than the domain");
  }
  for (size_t i = 0; i < report.size(); ++i) {
    if (report[i] >= domain_size()) {
      return Status::InvalidArgument("unary report bit outside the domain");
    }
    if (i > 0 && report[i] <= report[i - 1]) {
      return Status::InvalidArgument(
          "unary report bits must be strictly increasing");
    }
  }
  return Status::OK();
}

std::vector<double> UnaryEncodingOracle::Estimate(
    const std::vector<double>& support, uint64_t num_reports) const {
  LDP_DCHECK(support.size() == domain_size());
  return internal_frequency::DebiasSupportCounts(support, num_reports, p_, q_);
}

double UnaryEncodingOracle::EstimateVariance(double f,
                                             uint64_t num_reports) const {
  return internal_frequency::SupportEstimateVariance(f, num_reports, p_, q_);
}

}  // namespace ldp
