// Optimized unary encoding (Wang et al., USENIX Security 2017) — the paper's
// chosen frequency oracle for categorical attributes in Section IV-C. Keeps
// the true bit with probability p = 1/2 and flips a zero bit on with
// probability q = 1/(e^ε + 1); this asymmetric choice minimises the variance
// term q(1−q)/(p−q)², which dominates when true frequencies are small.

#ifndef LDP_FREQUENCY_OUE_H_
#define LDP_FREQUENCY_OUE_H_

#include "frequency/unary_encoding.h"

namespace ldp {

/// OUE: unary encoding with p = 1/2, q = 1/(e^ε + 1).
class OueOracle final : public UnaryEncodingOracle {
 public:
  OueOracle(double epsilon, uint32_t domain_size);

  const char* name() const override { return "OUE"; }
};

}  // namespace ldp

#endif  // LDP_FREQUENCY_OUE_H_
