#include "frequency/histogram.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/math.h"

namespace ldp {

FrequencyEstimator::FrequencyEstimator(const FrequencyOracle* oracle)
    : oracle_(oracle) {
  LDP_CHECK(oracle != nullptr);
  support_.assign(oracle_->domain_size(), 0.0);
}

void FrequencyEstimator::Add(const FrequencyOracle::Report& report) {
  oracle_->Accumulate(report, &support_);
  ++count_;
}

std::vector<double> FrequencyEstimator::RawEstimate() const {
  return oracle_->Estimate(support_, count_);
}

std::vector<double> FrequencyEstimator::ClampedEstimate() const {
  std::vector<double> estimates = RawEstimate();
  for (double& f : estimates) f = Clamp(f, 0.0, 1.0);
  return estimates;
}

std::vector<double> FrequencyEstimator::ProjectedEstimate() const {
  return ProjectOntoSimplex(RawEstimate());
}

std::vector<double> ProjectOntoSimplex(const std::vector<double>& v) {
  LDP_CHECK(!v.empty());
  // Sort descending, find the largest prefix whose shifted values stay
  // positive, subtract the common shift, clamp the rest to zero.
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double prefix_sum = 0.0;
  double shift = 0.0;
  size_t active = 0;
  for (size_t j = 0; j < sorted.size(); ++j) {
    prefix_sum += sorted[j];
    const double candidate = (prefix_sum - 1.0) / static_cast<double>(j + 1);
    if (sorted[j] - candidate > 0.0) {
      shift = candidate;
      active = j + 1;
    }
  }
  LDP_CHECK(active > 0);
  std::vector<double> projected(v.size());
  for (size_t j = 0; j < v.size(); ++j) {
    projected[j] = std::max(0.0, v[j] - shift);
  }
  return projected;
}

std::vector<double> EstimateFrequencies(const FrequencyOracle& oracle,
                                        const std::vector<uint32_t>& values,
                                        Rng* rng) {
  FrequencyEstimator estimator(&oracle);
  for (const uint32_t value : values) {
    estimator.Add(oracle.Perturb(value, rng));
  }
  return estimator.RawEstimate();
}

}  // namespace ldp
