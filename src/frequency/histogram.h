// Server-side histogram estimation on top of a frequency oracle: accumulates
// reports, produces raw (unbiased) estimates, and offers the two standard
// post-processing steps — clamping to [0, 1] and projection onto the
// probability simplex — that trade a little bias for much lower error on
// sparse histograms.

#ifndef LDP_FREQUENCY_HISTOGRAM_H_
#define LDP_FREQUENCY_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "frequency/frequency_oracle.h"

namespace ldp {

/// Accumulates privatized reports for one categorical attribute and turns
/// them into frequency estimates. Does not own the oracle; the oracle must
/// outlive the estimator.
class FrequencyEstimator {
 public:
  /// `oracle` must be non-null and is borrowed for this object's lifetime.
  explicit FrequencyEstimator(const FrequencyOracle* oracle);

  /// Folds one user's report into the support counts.
  void Add(const FrequencyOracle::Report& report);

  /// Unbiased per-value frequency estimates; entries may fall outside [0,1].
  std::vector<double> RawEstimate() const;

  /// Raw estimates clamped into [0, 1] componentwise (biased, lower error).
  std::vector<double> ClampedEstimate() const;

  /// Euclidean projection of the raw estimates onto the probability simplex
  /// {f : f_v >= 0, Σ f_v = 1} — the standard consistency post-processing.
  std::vector<double> ProjectedEstimate() const;

  /// Number of reports accumulated so far.
  uint64_t count() const { return count_; }

  /// The raw per-value support counts (for inspection/testing).
  const std::vector<double>& support() const { return support_; }

 private:
  const FrequencyOracle* oracle_;
  std::vector<double> support_;
  uint64_t count_ = 0;
};

/// Euclidean projection of an arbitrary vector onto the probability simplex
/// (Duchi et al. 2008 sort-based algorithm, O(k log k)). Exposed for tests
/// and for reuse by the mixed-attribute collector.
std::vector<double> ProjectOntoSimplex(const std::vector<double>& v);

/// Convenience end-to-end simulation: perturbs every value in `values`
/// through `oracle` and returns the raw frequency estimates. Used by tests,
/// benchmarks and examples.
std::vector<double> EstimateFrequencies(const FrequencyOracle& oracle,
                                        const std::vector<uint32_t>& values,
                                        Rng* rng);

}  // namespace ldp

#endif  // LDP_FREQUENCY_HISTOGRAM_H_
