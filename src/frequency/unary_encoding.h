// Shared implementation of unary-encoding frequency oracles (SUE and OUE).
//
// The user one-hot encodes her value into a k-bit vector, then flips each bit
// independently: a 1-bit stays 1 with probability p, a 0-bit becomes 1 with
// probability q. Reporting bit ratios (p, q) with p(1−q) / (q(1−p)) ≤ e^ε
// yields ε-LDP. SUE uses the symmetric choice p = e^{ε/2}/(e^{ε/2}+1),
// q = 1 − p; OUE fixes p = 1/2 and q = 1/(e^ε+1), which minimises the
// estimate variance at small true frequencies (Wang et al. 2017).
//
// Perturb cost: the naive encoding draws one Bernoulli per domain value —
// O(d) RNG work per report, the compute-dominant regime for unary oracles at
// large domains. When q is small the set of flipped-on zero-bits is sparse,
// so Perturb instead samples the gaps between set bits geometrically
// (expected O(q·d + 1) draws); the report distribution is identical (the
// run lengths between successes of i.i.d. Bernoulli(q) trials are i.i.d.
// geometric). Both implementations are exposed so tests can verify the
// statistical equivalence.

#ifndef LDP_FREQUENCY_UNARY_ENCODING_H_
#define LDP_FREQUENCY_UNARY_ENCODING_H_

#include "frequency/frequency_oracle.h"

namespace ldp {

/// Base for SUE/OUE; report payload is the sorted indices of the set bits.
class UnaryEncodingOracle : public FrequencyOracle {
 public:
  /// Above this q the dense per-bit encoder wins: a geometric draw costs a
  /// log() where a Bernoulli costs one compare, so gap skipping only pays
  /// once set bits are expected at least ~5 positions apart.
  static constexpr double kSkipSamplingMaxQ = 0.2;

  /// Dispatches to PerturbSkip when q <= kSkipSamplingMaxQ, else PerturbPerBit.
  Report Perturb(uint32_t value, Rng* rng) const override;

  /// Reference O(d) implementation: one Bernoulli per domain value, in bit
  /// order.
  Report PerturbPerBit(uint32_t value, Rng* rng) const;

  /// Sublinear implementation: one Bernoulli for the true bit, then the
  /// q-probability bits via geometric gap skipping — expected O(q·d + 1)
  /// draws. Identically distributed to PerturbPerBit (different Rng
  /// consumption).
  Report PerturbSkip(uint32_t value, Rng* rng) const;

  void Accumulate(const Report& report,
                  std::vector<double>* support) const override;
  Status ValidateReport(const Report& report) const override;
  std::vector<double> Estimate(const std::vector<double>& support,
                               uint64_t num_reports) const override;
  double EstimateVariance(double f, uint64_t num_reports) const override;

  /// Probability that the true value's bit is reported as 1.
  double p() const { return p_; }

  /// Probability that any other bit is reported as 1.
  double q() const { return q_; }

 protected:
  /// `epsilon` > 0 and finite, `domain_size` >= 2, 0 < q < p <= 1.
  UnaryEncodingOracle(double epsilon, uint32_t domain_size, double p, double q);

 private:
  double p_;
  double q_;
};

}  // namespace ldp

#endif  // LDP_FREQUENCY_UNARY_ENCODING_H_
