#include "frequency/histogram_encoding.h"

#include <cmath>

#include "util/check.h"
#include "util/math.h"

namespace ldp {

namespace {

// Laplace(b) upper tail: Pr[X > x].
double LaplaceUpperTail(double x, double b) {
  if (x >= 0.0) return 0.5 * std::exp(-x / b);
  return 1.0 - 0.5 * std::exp(x / b);
}

}  // namespace

// ---------------------------------------------------------------------------
// HE
// ---------------------------------------------------------------------------

HeOracle::HeOracle(double epsilon, uint32_t domain_size)
    : FrequencyOracle(epsilon, domain_size), noise_scale_(2.0 / epsilon) {
  LDP_CHECK(std::isfinite(epsilon) && epsilon > 0.0);
  LDP_CHECK(domain_size >= 2);
}

FrequencyOracle::Report HeOracle::Perturb(uint32_t value, Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  Report packed(domain_size());
  for (uint32_t v = 0; v < domain_size(); ++v) {
    const double one_hot = (v == value) ? 1.0 : 0.0;
    double noisy = one_hot + rng->Laplace(noise_scale_);
    // Clamp into the packable range; at scale 2/ε this tail is negligible
    // for any practical budget.
    noisy = Clamp(noisy, -kOffset, kOffset);
    packed[v] = static_cast<uint32_t>(
        std::llround((noisy + kOffset) * kFixedPointScale));
  }
  return packed;
}

void HeOracle::Accumulate(const Report& report,
                          std::vector<double>* support) const {
  LDP_DCHECK(report.size() == domain_size());
  LDP_DCHECK(support->size() == domain_size());
  for (uint32_t v = 0; v < domain_size(); ++v) {
    (*support)[v] +=
        static_cast<double>(report[v]) / kFixedPointScale - kOffset;
  }
}

Status HeOracle::ValidateReport(const Report& report) const {
  if (report.size() != domain_size()) {
    return Status::InvalidArgument(
        "HE report must carry one component per domain value");
  }
  return Status::OK();
}

std::vector<double> HeOracle::Estimate(const std::vector<double>& support,
                                       uint64_t num_reports) const {
  LDP_DCHECK(support.size() == domain_size());
  std::vector<double> estimates(domain_size(), 0.0);
  if (num_reports == 0) return estimates;
  for (uint32_t v = 0; v < domain_size(); ++v) {
    estimates[v] = support[v] / static_cast<double>(num_reports);
  }
  return estimates;
}

double HeOracle::EstimateVariance(double f, uint64_t num_reports) const {
  if (num_reports == 0) return 0.0;
  // Per-report component variance: Laplace noise (2 b²) plus the one-hot
  // indicator's own variance f(1-f).
  return (2.0 * noise_scale_ * noise_scale_ + f * (1.0 - f)) /
         static_cast<double>(num_reports);
}

// ---------------------------------------------------------------------------
// THE
// ---------------------------------------------------------------------------

double TheOracle::OptimalTheta(double epsilon) {
  const double b = 2.0 / epsilon;
  auto variance_proxy = [&](double theta) {
    const double p = LaplaceUpperTail(theta - 1.0, b);
    const double q = LaplaceUpperTail(theta, b);
    const double gap = p - q;
    return q * (1.0 - q) / (gap * gap);
  };
  // Ternary search on (0.5, 1): the proxy is unimodal in θ.
  double lo = 0.5, hi = 1.0;
  for (int iter = 0; iter < 200 && hi - lo > 1e-12; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (variance_proxy(m1) < variance_proxy(m2)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return 0.5 * (lo + hi);
}

TheOracle::TheOracle(double epsilon, uint32_t domain_size)
    : TheOracle(epsilon, domain_size, OptimalTheta(epsilon)) {}

TheOracle::TheOracle(double epsilon, uint32_t domain_size, double theta)
    : FrequencyOracle(epsilon, domain_size),
      theta_(theta),
      noise_scale_(2.0 / epsilon) {
  LDP_CHECK(std::isfinite(epsilon) && epsilon > 0.0);
  LDP_CHECK(domain_size >= 2);
  LDP_CHECK_MSG(theta > 0.5 && theta < 1.0, "theta must be in (0.5, 1)");
  p_ = LaplaceUpperTail(theta_ - 1.0, noise_scale_);
  q_ = LaplaceUpperTail(theta_, noise_scale_);
}

FrequencyOracle::Report TheOracle::Perturb(uint32_t value, Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  Report set_bits;
  for (uint32_t v = 0; v < domain_size(); ++v) {
    const double one_hot = (v == value) ? 1.0 : 0.0;
    if (one_hot + rng->Laplace(noise_scale_) > theta_) {
      set_bits.push_back(v);
    }
  }
  return set_bits;
}

void TheOracle::Accumulate(const Report& report,
                           std::vector<double>* support) const {
  LDP_DCHECK(support->size() == domain_size());
  for (const uint32_t bit : report) {
    LDP_DCHECK(bit < domain_size());
    (*support)[bit] += 1.0;
  }
}

Status TheOracle::ValidateReport(const Report& report) const {
  if (report.size() > domain_size()) {
    return Status::InvalidArgument("THE report has more bits than the domain");
  }
  for (size_t i = 0; i < report.size(); ++i) {
    if (report[i] >= domain_size()) {
      return Status::InvalidArgument("THE report bit outside the domain");
    }
    if (i > 0 && report[i] <= report[i - 1]) {
      return Status::InvalidArgument(
          "THE report bits must be strictly increasing");
    }
  }
  return Status::OK();
}

std::vector<double> TheOracle::Estimate(const std::vector<double>& support,
                                        uint64_t num_reports) const {
  LDP_DCHECK(support.size() == domain_size());
  return internal_frequency::DebiasSupportCounts(support, num_reports, p_,
                                                 q_);
}

double TheOracle::EstimateVariance(double f, uint64_t num_reports) const {
  return internal_frequency::SupportEstimateVariance(f, num_reports, p_, q_);
}

}  // namespace ldp
