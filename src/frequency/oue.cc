#include "frequency/oue.h"

#include <cmath>

namespace ldp {

OueOracle::OueOracle(double epsilon, uint32_t domain_size)
    : UnaryEncodingOracle(epsilon, domain_size, /*p=*/0.5,
                          /*q=*/1.0 / (std::exp(epsilon) + 1.0)) {}

}  // namespace ldp
