// Generalized randomized response (k-RR): the direct extension of Warner's
// 1965 randomized response to a k-value domain. The user reports her true
// value with probability p = e^ε / (e^ε + k − 1) and any specific other value
// with probability q = 1 / (e^ε + k − 1). Best-in-class when k < e^ε + 2;
// degrades linearly in k beyond that (OUE/OLH then dominate).

#ifndef LDP_FREQUENCY_GRR_H_
#define LDP_FREQUENCY_GRR_H_

#include "frequency/frequency_oracle.h"

namespace ldp {

/// k-ary randomized response; report payload is the single perturbed value.
class GrrOracle final : public FrequencyOracle {
 public:
  /// `epsilon` > 0 and finite, `domain_size` >= 2 (validated by the factory;
  /// direct construction LDP_CHECKs).
  GrrOracle(double epsilon, uint32_t domain_size);

  Report Perturb(uint32_t value, Rng* rng) const override;
  void Accumulate(const Report& report,
                  std::vector<double>* support) const override;
  Status ValidateReport(const Report& report) const override;
  std::vector<double> Estimate(const std::vector<double>& support,
                               uint64_t num_reports) const override;
  double EstimateVariance(double f, uint64_t num_reports) const override;
  size_t MaxReportSize() const override { return 1; }
  const char* name() const override { return "GRR"; }

  /// Probability of reporting the true value, e^ε / (e^ε + k − 1).
  double p() const { return p_; }

  /// Probability of reporting one specific other value, 1 / (e^ε + k − 1).
  double q() const { return q_; }

 private:
  double p_;
  double q_;
};

}  // namespace ldp

#endif  // LDP_FREQUENCY_GRR_H_
