#include "frequency/sue.h"

#include <cmath>

namespace ldp {

namespace {

double SueP(double epsilon) {
  const double e_half = std::exp(epsilon / 2.0);
  return e_half / (e_half + 1.0);
}

}  // namespace

SueOracle::SueOracle(double epsilon, uint32_t domain_size)
    : UnaryEncodingOracle(epsilon, domain_size, SueP(epsilon),
                          1.0 - SueP(epsilon)) {}

}  // namespace ldp
