// Symmetric unary encoding (basic one-round RAPPOR, Erlingsson et al. 2014):
// unary encoding with the symmetric bit probabilities
// p = e^{ε/2}/(e^{ε/2}+1), q = 1 − p. Included as the classic baseline that
// OUE improves on.

#ifndef LDP_FREQUENCY_SUE_H_
#define LDP_FREQUENCY_SUE_H_

#include "frequency/unary_encoding.h"

namespace ldp {

/// SUE: unary encoding with p = e^{ε/2}/(e^{ε/2}+1), q = 1 − p.
class SueOracle final : public UnaryEncodingOracle {
 public:
  SueOracle(double epsilon, uint32_t domain_size);

  const char* name() const override { return "SUE"; }
};

}  // namespace ldp

#endif  // LDP_FREQUENCY_SUE_H_
