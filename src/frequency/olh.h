// Optimized local hashing (Wang et al., USENIX Security 2017). Each user
// hashes her value into a small domain of g = round(e^ε) + 1 buckets with a
// per-report random hash seed, then runs GRR over the g buckets. The report
// is (seed, perturbed bucket): constant size regardless of k, at the cost of
// an O(k) server-side scan per report. Matches OUE's variance
// 4 e^ε / (n (e^ε − 1)²) when g = e^ε + 1 exactly.

#ifndef LDP_FREQUENCY_OLH_H_
#define LDP_FREQUENCY_OLH_H_

#include "frequency/frequency_oracle.h"

namespace ldp {

/// OLH: per-user random hashing into g buckets followed by GRR on buckets.
/// Report payload: {seed_lo32, seed_hi32, perturbed_bucket}.
class OlhOracle final : public FrequencyOracle {
 public:
  OlhOracle(double epsilon, uint32_t domain_size);

  Report Perturb(uint32_t value, Rng* rng) const override;
  void Accumulate(const Report& report,
                  std::vector<double>* support) const override;
  Status ValidateReport(const Report& report) const override;
  std::vector<double> Estimate(const std::vector<double>& support,
                               uint64_t num_reports) const override;
  double EstimateVariance(double f, uint64_t num_reports) const override;
  size_t MaxReportSize() const override { return 3; }
  const char* name() const override { return "OLH"; }

  /// The hash range g = max(2, round(e^ε) + 1).
  uint32_t hash_range() const { return hash_range_; }

  /// Probability that the hashed bucket is reported unchanged,
  /// e^ε / (e^ε + g − 1).
  double p() const { return p_; }

  /// Probability that a report supports a non-true value, 1/g (a uniformly
  /// hashed wrong value collides with the reported bucket with this rate).
  double q() const { return 1.0 / static_cast<double>(hash_range_); }

  /// The deterministic seeded hash used by both protocol halves: maps
  /// (seed, value) to a bucket in [0, range).
  static uint32_t HashToBucket(uint64_t seed, uint32_t value, uint32_t range);

 private:
  uint32_t hash_range_;
  double p_;
};

}  // namespace ldp

#endif  // LDP_FREQUENCY_OLH_H_
