// Histogram-encoding frequency oracles (Wang et al., USENIX Security 2017):
// the remaining two members of the pure-protocol family alongside
// GRR/SUE/OUE/OLH.
//
//  - HE ("summation with histogram encoding"): the user one-hot encodes her
//    value and adds independent Laplace(2/ε) noise to every component,
//    reporting the full noisy vector; the server averages component v over
//    users to estimate f_v directly. Simple, but the Laplace tails make it
//    strictly worse than OUE.
//  - THE ("thresholding with histogram encoding"): same noisy vector, but
//    each component is reduced to the bit [noisy > θ]. The support
//    probabilities become p = 1 − F(θ − 1), q = 1 − F(θ) for the Laplace CDF
//    F, and the usual debiasing applies. θ ∈ (0.5, 1) trades p against q;
//    the default θ optimises the estimate variance numerically.

#ifndef LDP_FREQUENCY_HISTOGRAM_ENCODING_H_
#define LDP_FREQUENCY_HISTOGRAM_ENCODING_H_

#include "frequency/frequency_oracle.h"

namespace ldp {

/// HE: report payload is the noisy histogram scaled to fixed point (each
/// component stored as round(value · kFixedPointScale) offset to stay
/// non-negative in the uint32 payload).
class HeOracle final : public FrequencyOracle {
 public:
  /// Fixed-point scale used to pack doubles into the uint32 report payload.
  static constexpr double kFixedPointScale = 1024.0 * 1024.0;
  /// Payload offset keeping packed values positive (Laplace tails beyond
  /// ±2047 are clamped; at scale 2/ε this is > 1000σ for any sane ε).
  static constexpr double kOffset = 2048.0;

  HeOracle(double epsilon, uint32_t domain_size);

  Report Perturb(uint32_t value, Rng* rng) const override;
  void Accumulate(const Report& report,
                  std::vector<double>* support) const override;
  Status ValidateReport(const Report& report) const override;
  std::vector<double> Estimate(const std::vector<double>& support,
                               uint64_t num_reports) const override;
  double EstimateVariance(double f, uint64_t num_reports) const override;
  const char* name() const override { return "HE"; }

  /// The Laplace noise scale 2/ε.
  double noise_scale() const { return noise_scale_; }

 private:
  double noise_scale_;
};

/// THE: report payload is the indices whose noisy component exceeded θ.
class TheOracle final : public FrequencyOracle {
 public:
  /// Uses the variance-optimal threshold for the given ε.
  TheOracle(double epsilon, uint32_t domain_size);

  /// Explicit threshold θ ∈ (0.5, 1) (exposed for the threshold ablation).
  TheOracle(double epsilon, uint32_t domain_size, double theta);

  Report Perturb(uint32_t value, Rng* rng) const override;
  void Accumulate(const Report& report,
                  std::vector<double>* support) const override;
  Status ValidateReport(const Report& report) const override;
  std::vector<double> Estimate(const std::vector<double>& support,
                               uint64_t num_reports) const override;
  double EstimateVariance(double f, uint64_t num_reports) const override;
  const char* name() const override { return "THE"; }

  double theta() const { return theta_; }

  /// Pr[bit reported | true value]: 1 − F(θ − 1).
  double p() const { return p_; }

  /// Pr[bit reported | other value]: 1 − F(θ).
  double q() const { return q_; }

  /// The θ minimising the small-frequency estimate variance
  /// 2 e^{εθ/2} / (e^{ε(θ−1/2)} − 1)², found by golden-section search.
  static double OptimalTheta(double epsilon);

 private:
  double theta_;
  double noise_scale_;
  double p_;
  double q_;
};

}  // namespace ldp

#endif  // LDP_FREQUENCY_HISTOGRAM_ENCODING_H_
