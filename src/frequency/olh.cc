#include "frequency/olh.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ldp {

OlhOracle::OlhOracle(double epsilon, uint32_t domain_size)
    : FrequencyOracle(epsilon, domain_size) {
  LDP_CHECK(std::isfinite(epsilon) && epsilon > 0.0);
  LDP_CHECK(domain_size >= 2);
  const double e_eps = std::exp(epsilon);
  hash_range_ = std::max<uint32_t>(
      2, static_cast<uint32_t>(std::lround(e_eps)) + 1);
  p_ = e_eps / (e_eps + static_cast<double>(hash_range_) - 1.0);
}

uint32_t OlhOracle::HashToBucket(uint64_t seed, uint32_t value,
                                 uint32_t range) {
  // SplitMix64 finalizer over the seed/value combination: cheap, stateless,
  // and high-quality enough that bucket collisions behave as uniform.
  uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(value) + 1));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  return static_cast<uint32_t>(z % range);
}

FrequencyOracle::Report OlhOracle::Perturb(uint32_t value, Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  const uint64_t seed = rng->Next();
  uint32_t bucket = HashToBucket(seed, value, hash_range_);
  if (!rng->Bernoulli(p_)) {
    // GRR over the g buckets: uniform among the other g-1.
    uint32_t other = static_cast<uint32_t>(rng->UniformIndex(hash_range_ - 1));
    if (other >= bucket) ++other;
    bucket = other;
  }
  return {static_cast<uint32_t>(seed & 0xffffffffULL),
          static_cast<uint32_t>(seed >> 32), bucket};
}

void OlhOracle::Accumulate(const Report& report,
                           std::vector<double>* support) const {
  LDP_DCHECK(report.size() == 3);
  LDP_DCHECK(support->size() == domain_size());
  const uint64_t seed = static_cast<uint64_t>(report[0]) |
                        (static_cast<uint64_t>(report[1]) << 32);
  const uint32_t bucket = report[2];
  for (uint32_t v = 0; v < domain_size(); ++v) {
    if (HashToBucket(seed, v, hash_range_) == bucket) {
      (*support)[v] += 1.0;
    }
  }
}

Status OlhOracle::ValidateReport(const Report& report) const {
  if (report.size() != 3) {
    return Status::InvalidArgument(
        "OLH report must carry {seed_lo, seed_hi, bucket}");
  }
  if (report[2] >= hash_range_) {
    return Status::InvalidArgument("OLH report bucket outside the hash range");
  }
  return Status::OK();
}

std::vector<double> OlhOracle::Estimate(const std::vector<double>& support,
                                        uint64_t num_reports) const {
  LDP_DCHECK(support.size() == domain_size());
  return internal_frequency::DebiasSupportCounts(support, num_reports, p_,
                                                 q());
}

double OlhOracle::EstimateVariance(double f, uint64_t num_reports) const {
  return internal_frequency::SupportEstimateVariance(f, num_reports, p_, q());
}

}  // namespace ldp
