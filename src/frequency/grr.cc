#include "frequency/grr.h"

#include <cmath>

#include "util/check.h"

namespace ldp {

GrrOracle::GrrOracle(double epsilon, uint32_t domain_size)
    : FrequencyOracle(epsilon, domain_size) {
  LDP_CHECK(std::isfinite(epsilon) && epsilon > 0.0);
  LDP_CHECK(domain_size >= 2);
  const double e_eps = std::exp(epsilon);
  p_ = e_eps / (e_eps + static_cast<double>(domain_size) - 1.0);
  q_ = 1.0 / (e_eps + static_cast<double>(domain_size) - 1.0);
}

FrequencyOracle::Report GrrOracle::Perturb(uint32_t value, Rng* rng) const {
  LDP_DCHECK(value < domain_size());
  if (rng->Bernoulli(p_)) {
    return {value};
  }
  // Uniform over the other k-1 values: draw from [0, k-1) and skip `value`.
  uint32_t other =
      static_cast<uint32_t>(rng->UniformIndex(domain_size() - 1));
  if (other >= value) ++other;
  return {other};
}

void GrrOracle::Accumulate(const Report& report,
                           std::vector<double>* support) const {
  LDP_DCHECK(report.size() == 1);
  LDP_DCHECK(support->size() == domain_size());
  LDP_DCHECK(report[0] < domain_size());
  (*support)[report[0]] += 1.0;
}

Status GrrOracle::ValidateReport(const Report& report) const {
  if (report.size() != 1) {
    return Status::InvalidArgument("GRR report must carry exactly one value");
  }
  if (report[0] >= domain_size()) {
    return Status::InvalidArgument("GRR report value outside the domain");
  }
  return Status::OK();
}

std::vector<double> GrrOracle::Estimate(const std::vector<double>& support,
                                        uint64_t num_reports) const {
  LDP_DCHECK(support.size() == domain_size());
  return internal_frequency::DebiasSupportCounts(support, num_reports, p_, q_);
}

double GrrOracle::EstimateVariance(double f, uint64_t num_reports) const {
  return internal_frequency::SupportEstimateVariance(f, num_reports, p_, q_);
}

}  // namespace ldp
