// Frequency oracles: ε-LDP primitives for a single categorical attribute.
//
// A frequency oracle lets each user submit a randomized report about her
// value v ∈ {0, ..., k-1} such that the aggregator can estimate the frequency
// of every value over the population, while each individual report satisfies
// ε-LDP. This is the categorical counterpart of core/mechanism.h and the
// plug-in point of the paper's Section IV-C: the mixed-attribute collector
// routes each sampled categorical attribute through an oracle at budget ε/k.
//
// The protocol is split into the client half (Perturb) and the server half
// (Accumulate + Estimate) so that simulation harnesses can route reports
// through arbitrary collection topologies. All four oracles from the
// literature are provided: GRR (generalized randomized response), SUE (basic
// RAPPOR), OUE (optimized unary encoding — the paper's choice), and OLH
// (optimized local hashing).

#ifndef LDP_FREQUENCY_FREQUENCY_ORACLE_H_
#define LDP_FREQUENCY_FREQUENCY_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp {

/// Identifies a frequency oracle; used by factories and configs.
enum class FrequencyOracleKind {
  kGrr,  ///< Generalized randomized response (k-RR).
  kSue,  ///< Symmetric unary encoding (basic one-round RAPPOR).
  kOue,  ///< Optimized unary encoding (Wang et al., USENIX Sec. 2017).
  kOlh,  ///< Optimized local hashing (Wang et al., USENIX Sec. 2017).
  kHe,   ///< Histogram encoding: noisy one-hot vector (summation variant).
  kThe,  ///< Histogram encoding with thresholding.
};

/// Human-readable oracle name ("GRR", "SUE", "OUE", "OLH", "HE", "THE").
const char* FrequencyOracleKindToString(FrequencyOracleKind kind);

/// An ε-LDP randomizer for one categorical value with domain {0, ..., k-1}.
///
/// Thread-safety: instances are immutable after construction; Perturb only
/// mutates the caller-supplied Rng, so one instance may be shared across
/// threads as long as each thread owns its Rng.
class FrequencyOracle {
 public:
  /// A single user's privatized report. The encoding is oracle-specific
  /// (GRR: one perturbed value; SUE/OUE: indices of set bits; OLH: packed
  /// 64-bit hash seed plus one hashed value) and only meaningful to the
  /// oracle that produced it.
  using Report = std::vector<uint32_t>;

  virtual ~FrequencyOracle() = default;

  /// Produces the privatized report for true value `value` (< domain_size).
  virtual Report Perturb(uint32_t value, Rng* rng) const = 0;

  /// Folds one report into per-value support counts. `support` must have
  /// domain_size() entries; entry v counts reports consistent with value v.
  /// The report must be well-formed for this oracle (callers ingesting
  /// untrusted bytes run ValidateReport first; reports produced by Perturb
  /// are always well-formed).
  virtual void Accumulate(const Report& report,
                          std::vector<double>* support) const = 0;

  /// Checks that `report` is structurally valid for this oracle — the shape
  /// and value ranges Perturb can actually emit — so that Accumulate cannot
  /// index out of bounds or double-count. This is the server-side guard for
  /// reports arriving over the wire (core/wire.h runs it during decode);
  /// it does not (and cannot) detect a lying client whose report is merely
  /// improbable.
  virtual Status ValidateReport(const Report& report) const = 0;

  /// Turns support counts over `num_reports` reports into unbiased frequency
  /// estimates, one per domain value. Estimates may fall outside [0, 1];
  /// see FrequencyEstimator for clamping / simplex projection.
  virtual std::vector<double> Estimate(const std::vector<double>& support,
                                       uint64_t num_reports) const = 0;

  /// Variance of a single value's frequency estimate when its true frequency
  /// is `f` and `num_reports` reports were collected.
  virtual double EstimateVariance(double f, uint64_t num_reports) const = 0;

  /// Upper bound on the payload length ValidateReport can accept (and Perturb
  /// can emit). The wire decoder rejects longer payloads before buffering a
  /// single element, which both caps decoder scratch memory and lets the
  /// zero-copy ingest path pre-reserve for the worst case. Defaults to the
  /// domain size (unary and histogram encodings); constant-size oracles
  /// override it.
  virtual size_t MaxReportSize() const { return domain_size_; }

  /// Short oracle name for reports.
  virtual const char* name() const = 0;

  /// The privacy budget this instance was built with.
  double epsilon() const { return epsilon_; }

  /// The categorical domain size k.
  uint32_t domain_size() const { return domain_size_; }

 protected:
  FrequencyOracle(double epsilon, uint32_t domain_size)
      : epsilon_(epsilon), domain_size_(domain_size) {}

 private:
  double epsilon_;
  uint32_t domain_size_;
};

/// Creates an oracle of the given kind. Returns InvalidArgument for a
/// non-positive/non-finite budget or a domain with fewer than 2 values.
Result<std::unique_ptr<FrequencyOracle>> MakeFrequencyOracle(
    FrequencyOracleKind kind, double epsilon, uint32_t domain_size);

namespace internal_frequency {

/// Debiases per-value support counts for an oracle where a report supports
/// the user's true value with probability p and any other fixed value with
/// probability q: f̂_v = (support_v / n - q) / (p - q).
std::vector<double> DebiasSupportCounts(const std::vector<double>& support,
                                        uint64_t num_reports, double p,
                                        double q);

/// Variance of the debiased estimator above at true frequency f:
/// μ(1-μ) / (n (p-q)²) with μ = f p + (1-f) q.
double SupportEstimateVariance(double f, uint64_t num_reports, double p,
                               double q);

}  // namespace internal_frequency

}  // namespace ldp

#endif  // LDP_FREQUENCY_FREQUENCY_ORACLE_H_
