#include "frequency/frequency_oracle.h"

#include <cmath>
#include <utility>

#include "frequency/grr.h"
#include "frequency/histogram_encoding.h"
#include "frequency/olh.h"
#include "frequency/oue.h"
#include "frequency/sue.h"

namespace ldp {

const char* FrequencyOracleKindToString(FrequencyOracleKind kind) {
  switch (kind) {
    case FrequencyOracleKind::kGrr:
      return "GRR";
    case FrequencyOracleKind::kSue:
      return "SUE";
    case FrequencyOracleKind::kOue:
      return "OUE";
    case FrequencyOracleKind::kOlh:
      return "OLH";
    case FrequencyOracleKind::kHe:
      return "HE";
    case FrequencyOracleKind::kThe:
      return "THE";
  }
  return "unknown";
}

Result<std::unique_ptr<FrequencyOracle>> MakeFrequencyOracle(
    FrequencyOracleKind kind, double epsilon, uint32_t domain_size) {
  if (!(std::isfinite(epsilon) && epsilon > 0.0)) {
    return Status::InvalidArgument("privacy budget must be finite and > 0");
  }
  if (domain_size < 2) {
    return Status::InvalidArgument("categorical domain needs >= 2 values");
  }
  std::unique_ptr<FrequencyOracle> oracle;
  switch (kind) {
    case FrequencyOracleKind::kGrr:
      oracle = std::make_unique<GrrOracle>(epsilon, domain_size);
      break;
    case FrequencyOracleKind::kSue:
      oracle = std::make_unique<SueOracle>(epsilon, domain_size);
      break;
    case FrequencyOracleKind::kOue:
      oracle = std::make_unique<OueOracle>(epsilon, domain_size);
      break;
    case FrequencyOracleKind::kOlh:
      oracle = std::make_unique<OlhOracle>(epsilon, domain_size);
      break;
    case FrequencyOracleKind::kHe:
      oracle = std::make_unique<HeOracle>(epsilon, domain_size);
      break;
    case FrequencyOracleKind::kThe:
      oracle = std::make_unique<TheOracle>(epsilon, domain_size);
      break;
  }
  if (oracle == nullptr) {
    return Status::InvalidArgument("unknown frequency oracle kind");
  }
  return oracle;
}

namespace internal_frequency {

std::vector<double> DebiasSupportCounts(const std::vector<double>& support,
                                        uint64_t num_reports, double p,
                                        double q) {
  std::vector<double> estimates(support.size(), 0.0);
  if (num_reports == 0) return estimates;
  const double n = static_cast<double>(num_reports);
  const double gap = p - q;
  for (size_t v = 0; v < support.size(); ++v) {
    estimates[v] = (support[v] / n - q) / gap;
  }
  return estimates;
}

double SupportEstimateVariance(double f, uint64_t num_reports, double p,
                               double q) {
  if (num_reports == 0) return 0.0;
  const double mu = f * p + (1.0 - f) * q;
  const double gap = p - q;
  return mu * (1.0 - mu) /
         (static_cast<double>(num_reports) * gap * gap);
}

}  // namespace internal_frequency

}  // namespace ldp
