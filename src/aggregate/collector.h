// End-to-end collection simulations over a Dataset: every row plays one
// user, perturbs her tuple under ε-LDP, and the aggregator estimates the
// mean of every numeric attribute and the value frequencies of every
// categorical attribute. Two pipelines are provided, matching the two sides
// of the paper's Section VI-A comparison:
//
//  - CollectProposed: the paper's solution — Algorithm 4 attribute sampling
//    with PM/HM for numeric attributes and a frequency oracle (OUE) for
//    categorical ones, all under one budget ε without splitting.
//  - CollectBaseline: the best-effort combination of prior work — the budget
//    is split as dn·ε/d to the numeric group and dc·ε/d to the categorical
//    group; numeric attributes are handled by Duchi et al.'s Algorithm 3 or
//    by per-attribute Laplace/SCDF/Staircase at ε/d each, categorical ones by
//    a per-attribute frequency oracle at ε/d each.

#ifndef LDP_AGGREGATE_COLLECTOR_H_
#define LDP_AGGREGATE_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "core/mechanism.h"
#include "core/mixed_collector.h"
#include "data/dataset.h"
#include "frequency/frequency_oracle.h"
#include "util/result.h"
#include "util/threadpool.h"

namespace ldp::aggregate {

/// Ground truth and LDP estimates from one collection run.
struct CollectionOutput {
  /// Schema indices of the numeric columns, in schema order.
  std::vector<uint32_t> numeric_columns;
  /// Schema indices of the categorical columns, in schema order.
  std::vector<uint32_t> categorical_columns;
  /// Exact and estimated means, parallel to numeric_columns.
  std::vector<double> true_means;
  std::vector<double> estimated_means;
  /// Exact and estimated value frequencies, parallel to categorical_columns.
  std::vector<std::vector<double>> true_frequencies;
  std::vector<std::vector<double>> estimated_frequencies;
};

/// How the baseline pipeline handles the numeric attribute group.
enum class NumericStrategy {
  kLaplaceSplit,    ///< Laplace mechanism per attribute at ε/d each.
  kScdfSplit,       ///< SCDF per attribute at ε/d each.
  kStaircaseSplit,  ///< Staircase per attribute at ε/d each.
  kDuchiMulti,      ///< Duchi et al.'s Algorithm 3 at the group budget.
};

/// Human-readable strategy name ("Laplace", "SCDF", "Staircase", "Duchi").
const char* NumericStrategyToString(NumericStrategy strategy);

/// Runs the paper's proposed pipeline over `dataset`, whose numeric columns
/// must already be normalised to [-1, 1] (see data::NormalizeNumeric).
/// Deterministic in `seed`; `pool` optionally shards users across threads
/// (results then depend on the pool's thread count as chunk RNGs differ).
Result<CollectionOutput> CollectProposed(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    MechanismKind numeric_kind = MechanismKind::kHybrid,
    FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr);

/// Runs the split-budget baseline pipeline over `dataset` (numeric columns
/// normalised to [-1, 1]).
Result<CollectionOutput> CollectBaseline(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    NumericStrategy strategy,
    FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr);

/// Builds the core-collector schema for `dataset` (numeric columns must be
/// normalised). Exposed for tests and custom pipelines.
Result<std::vector<MixedAttribute>> ToMixedSchema(const data::Schema& schema);

/// The per-user generator used by every collection pipeline: user `row`
/// under master seed `seed` always draws from the same stream, whether the
/// simulation runs single-threaded, pooled, or sharded across processes
/// (ldp_report derives client-side randomness the same way, which is what
/// makes sharded ingestion reproduce an in-process run exactly).
Rng UserRng(uint64_t seed, uint64_t row);

}  // namespace ldp::aggregate

#endif  // LDP_AGGREGATE_COLLECTOR_H_
