// End-to-end collection simulations over a Dataset: every row plays one
// user, perturbs her tuple under ε-LDP, and the aggregator estimates the
// mean of every numeric attribute and the value frequencies of every
// categorical attribute. Two pipelines are provided, matching the two sides
// of the paper's Section VI-A comparison:
//
//  - CollectProposed: the paper's solution — Algorithm 4 attribute sampling
//    with PM/HM for numeric attributes and a frequency oracle (OUE) for
//    categorical ones, all under one budget ε without splitting.
//  - CollectBaseline: the best-effort combination of prior work — the budget
//    is split as dn·ε/d to the numeric group and dc·ε/d to the categorical
//    group; numeric attributes are handled by Duchi et al.'s Algorithm 3 or
//    by per-attribute Laplace/SCDF/Staircase at ε/d each, categorical ones by
//    a per-attribute frequency oracle at ε/d each.
//
// DEPRECATED surface: these free functions are thin wrappers over the
// session facade in api/pipeline.h — `api::Pipeline::Collect` with a config
// whose `baseline` field selects the pipeline — and produce bit-identical
// output (tested in tests/api_parity_test.cc). Prefer api::Pipeline for new
// code: it also hands out the client/server wire sessions, multi-epoch
// collection, and privacy accounting these wrappers cannot.

#ifndef LDP_AGGREGATE_COLLECTOR_H_
#define LDP_AGGREGATE_COLLECTOR_H_

#include <cstdint>
#include <vector>

#include "api/pipeline.h"
#include "core/mechanism.h"
#include "core/mixed_collector.h"
#include "data/dataset.h"
#include "frequency/frequency_oracle.h"
#include "util/result.h"
#include "util/threadpool.h"

namespace ldp::aggregate {

/// Ground truth and LDP estimates from one collection run.
using CollectionOutput = api::CollectionOutput;

/// How the baseline pipeline handles the numeric attribute group.
using NumericStrategy = api::NumericStrategy;

/// Human-readable strategy name ("Laplace", "SCDF", "Staircase", "Duchi").
/// (A using-declaration rather than a forwarding overload: argument-
/// dependent lookup on api::NumericStrategy already finds the api function,
/// and a second overload would make every unqualified call ambiguous.)
using api::NumericStrategyToString;

/// DEPRECATED: prefer api::Pipeline::Collect. Runs the paper's proposed
/// pipeline over `dataset`, whose numeric columns must already be normalised
/// to [-1, 1] (see data::NormalizeNumeric). Deterministic in `seed`; `pool`
/// optionally shards users across threads (results then depend on the pool's
/// thread count as chunk RNGs differ).
Result<CollectionOutput> CollectProposed(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    MechanismKind numeric_kind = MechanismKind::kHybrid,
    FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr);

/// DEPRECATED: prefer api::Pipeline::Collect with `config.baseline` set.
/// Runs the split-budget baseline pipeline over `dataset` (numeric columns
/// normalised to [-1, 1]).
Result<CollectionOutput> CollectBaseline(
    const data::Dataset& dataset, double epsilon, uint64_t seed,
    NumericStrategy strategy,
    FrequencyOracleKind categorical_kind = FrequencyOracleKind::kOue,
    ThreadPool* pool = nullptr);

/// Builds the core-collector schema for `dataset` (numeric columns must be
/// normalised). Exposed for tests and custom pipelines.
inline Result<std::vector<MixedAttribute>> ToMixedSchema(
    const data::Schema& schema) {
  return api::AttributesFromSchema(schema);
}

/// The per-user generator used by every collection pipeline: user `row`
/// under master seed `seed` always draws from the same stream, whether the
/// simulation runs single-threaded, pooled, or sharded across processes
/// (ldp_report derives client-side randomness the same way, which is what
/// makes sharded ingestion reproduce an in-process run exactly).
inline Rng UserRng(uint64_t seed, uint64_t row) {
  return api::UserRng(seed, row);
}

}  // namespace ldp::aggregate

#endif  // LDP_AGGREGATE_COLLECTOR_H_
