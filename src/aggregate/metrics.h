// Error metrics over CollectionOutput — the quantities plotted in the
// paper's Figs. 4–8: mean squared error of the numeric mean estimates and of
// the categorical frequency estimates.

#ifndef LDP_AGGREGATE_METRICS_H_
#define LDP_AGGREGATE_METRICS_H_

#include "api/pipeline.h"

namespace ldp::aggregate {

/// Ground truth and LDP estimates from one collection run (the facade's
/// output type; aliased here so the metric signatures read naturally).
using CollectionOutput = api::CollectionOutput;

/// Mean over numeric attributes of (estimated mean − true mean)²; 0 when the
/// dataset has no numeric columns.
double NumericMse(const CollectionOutput& output);

/// Mean over every (categorical attribute, value) pair of
/// (estimated frequency − true frequency)²; 0 without categorical columns.
double CategoricalMse(const CollectionOutput& output);

/// Largest |estimated − true| over the numeric means — the max-error form of
/// Lemma 5's guarantee.
double NumericMaxAbsError(const CollectionOutput& output);

/// Largest |estimated − true| over all frequency entries.
double CategoricalMaxAbsError(const CollectionOutput& output);

}  // namespace ldp::aggregate

#endif  // LDP_AGGREGATE_METRICS_H_
