// Confidence intervals for LDP estimates, turning the mechanisms'
// closed-form variances (Lemma 1, Eqs. 4/8/13–15 and the oracle variance
// formulas) into per-estimate error bars. Because every estimator is an
// average of n independent bounded-variance reports, a normal approximation
// is accurate for the population sizes LDP needs anyway — this is the
// practical face of the paper's Lemma 2 / Lemma 5 accuracy guarantees.

#ifndef LDP_AGGREGATE_CONFIDENCE_H_
#define LDP_AGGREGATE_CONFIDENCE_H_

#include <cstdint>

#include "core/mechanism.h"
#include "core/sampled_numeric.h"
#include "frequency/frequency_oracle.h"
#include "util/result.h"

namespace ldp::aggregate {

/// A two-sided interval [lo, hi] around an estimate.
struct ConfidenceInterval {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;

  /// Half-width of the interval.
  double HalfWidth() const { return (hi - lo) / 2.0; }
};

/// The z-score for a two-sided normal interval at `confidence` ∈ (0, 1)
/// (e.g. 0.95 → 1.96), computed by bisection on the normal CDF.
double NormalQuantile(double confidence);

/// Interval for a mean estimated from `num_reports` scalar-mechanism reports.
/// Uses the mechanism's worst-case variance, so the interval is conservative
/// for every input distribution. Fails unless num_reports > 0 and
/// confidence ∈ (0, 1).
Result<ConfidenceInterval> MeanConfidenceInterval(
    double estimate, const ScalarMechanism& mechanism, uint64_t num_reports,
    double confidence);

/// Interval for a per-attribute mean estimated by Algorithm 4 from
/// `num_reports` tuple reports (worst-case per-coordinate variance).
Result<ConfidenceInterval> SampledMeanConfidenceInterval(
    double estimate, const SampledNumericMechanism& mechanism,
    uint64_t num_reports, double confidence);

/// Interval for a value's frequency estimated from `num_reports` oracle
/// reports; uses the oracle's variance at the estimated frequency (clamped
/// into [0, 1] for the variance evaluation).
Result<ConfidenceInterval> FrequencyConfidenceInterval(
    double estimate, const FrequencyOracle& oracle, uint64_t num_reports,
    double confidence);

}  // namespace ldp::aggregate

#endif  // LDP_AGGREGATE_CONFIDENCE_H_
