// Server-side accumulators for numeric report streams. The aggregator's
// estimator in the paper is a plain average over the (implicitly
// zero-padded) reports; these classes implement it incrementally and
// mergeably so simulations can shard users across threads.

#ifndef LDP_AGGREGATE_ESTIMATORS_H_
#define LDP_AGGREGATE_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "core/sampled_numeric.h"

namespace ldp::aggregate {

/// Accumulates per-user numeric report vectors (dense or Algorithm-4 sparse)
/// and estimates the componentwise population means.
class VectorMeanEstimator {
 public:
  /// Estimates means of `dimension` attributes.
  explicit VectorMeanEstimator(uint32_t dimension);

  /// Adds one dense report (size must equal the dimension).
  void Add(const std::vector<double>& report);

  /// Adds one Algorithm-4 sparse report; unsampled attributes count as 0.
  void AddSparse(const SampledNumericReport& report);

  /// Merges another estimator of the same dimension (parallel shards).
  void Merge(const VectorMeanEstimator& other);

  /// The per-attribute mean estimates: sums / count (zeros when empty).
  std::vector<double> Estimate() const;

  /// Number of reports accumulated.
  uint64_t count() const { return count_; }

  uint32_t dimension() const {
    return static_cast<uint32_t>(sums_.size());
  }

 private:
  std::vector<double> sums_;
  uint64_t count_ = 0;
};

}  // namespace ldp::aggregate

#endif  // LDP_AGGREGATE_ESTIMATORS_H_
