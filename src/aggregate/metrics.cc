#include "aggregate/metrics.h"

#include <cmath>

#include "util/check.h"

namespace ldp::aggregate {

double NumericMse(const CollectionOutput& output) {
  LDP_CHECK(output.true_means.size() == output.estimated_means.size());
  if (output.true_means.empty()) return 0.0;
  double sum = 0.0;
  for (size_t j = 0; j < output.true_means.size(); ++j) {
    const double err = output.estimated_means[j] - output.true_means[j];
    sum += err * err;
  }
  return sum / static_cast<double>(output.true_means.size());
}

double CategoricalMse(const CollectionOutput& output) {
  LDP_CHECK(output.true_frequencies.size() ==
            output.estimated_frequencies.size());
  double sum = 0.0;
  size_t entries = 0;
  for (size_t c = 0; c < output.true_frequencies.size(); ++c) {
    LDP_CHECK(output.true_frequencies[c].size() ==
              output.estimated_frequencies[c].size());
    for (size_t v = 0; v < output.true_frequencies[c].size(); ++v) {
      const double err =
          output.estimated_frequencies[c][v] - output.true_frequencies[c][v];
      sum += err * err;
      ++entries;
    }
  }
  return entries == 0 ? 0.0 : sum / static_cast<double>(entries);
}

double NumericMaxAbsError(const CollectionOutput& output) {
  LDP_CHECK(output.true_means.size() == output.estimated_means.size());
  double worst = 0.0;
  for (size_t j = 0; j < output.true_means.size(); ++j) {
    worst = std::max(worst,
                     std::abs(output.estimated_means[j] - output.true_means[j]));
  }
  return worst;
}

double CategoricalMaxAbsError(const CollectionOutput& output) {
  LDP_CHECK(output.true_frequencies.size() ==
            output.estimated_frequencies.size());
  double worst = 0.0;
  for (size_t c = 0; c < output.true_frequencies.size(); ++c) {
    for (size_t v = 0; v < output.true_frequencies[c].size(); ++v) {
      worst = std::max(worst, std::abs(output.estimated_frequencies[c][v] -
                                       output.true_frequencies[c][v]));
    }
  }
  return worst;
}

}  // namespace ldp::aggregate
