#include "aggregate/estimators.h"

#include "util/check.h"

namespace ldp::aggregate {

VectorMeanEstimator::VectorMeanEstimator(uint32_t dimension)
    : sums_(dimension, 0.0) {}

void VectorMeanEstimator::Add(const std::vector<double>& report) {
  LDP_DCHECK(report.size() == sums_.size());
  for (size_t j = 0; j < sums_.size(); ++j) sums_[j] += report[j];
  ++count_;
}

void VectorMeanEstimator::AddSparse(const SampledNumericReport& report) {
  for (const SampledValue& entry : report) {
    LDP_DCHECK(entry.attribute < sums_.size());
    sums_[entry.attribute] += entry.value;
  }
  ++count_;
}

void VectorMeanEstimator::Merge(const VectorMeanEstimator& other) {
  LDP_CHECK(sums_.size() == other.sums_.size());
  for (size_t j = 0; j < sums_.size(); ++j) sums_[j] += other.sums_[j];
  count_ += other.count_;
}

std::vector<double> VectorMeanEstimator::Estimate() const {
  std::vector<double> means(sums_.size(), 0.0);
  if (count_ == 0) return means;
  for (size_t j = 0; j < sums_.size(); ++j) {
    means[j] = sums_[j] / static_cast<double>(count_);
  }
  return means;
}

}  // namespace ldp::aggregate
