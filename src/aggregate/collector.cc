#include "aggregate/collector.h"

#include <memory>
#include <mutex>

#include "aggregate/estimators.h"
#include "baselines/duchi_multi_dim.h"
#include "frequency/histogram.h"
#include "util/check.h"

namespace ldp::aggregate {

namespace {

// Every simulated user gets her own generator derived from (seed, row), so
// results are identical whether or not a thread pool is used.
Rng MakeUserRng(uint64_t seed, uint64_t row) {
  return Rng(seed ^ ((row + 1) * 0x9e3779b97f4a7c15ULL));
}

Status ValidateNormalized(const data::Schema& schema) {
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric &&
        (spec.lo != -1.0 || spec.hi != 1.0)) {
      return Status::FailedPrecondition(
          "numeric column '" + spec.name +
          "' is not normalised to [-1, 1]; apply data::NormalizeNumeric "
          "first");
    }
  }
  return Status::OK();
}

// Fills the column index lists and the exact means/frequencies.
Status FillGroundTruth(const data::Dataset& dataset, CollectionOutput* out) {
  const data::Schema& schema = dataset.schema();
  out->numeric_columns = schema.NumericColumnIndices();
  out->categorical_columns = schema.CategoricalColumnIndices();
  for (const uint32_t col : out->numeric_columns) {
    double mean = 0.0;
    LDP_ASSIGN_OR_RETURN(mean, dataset.ColumnMean(col));
    out->true_means.push_back(mean);
  }
  for (const uint32_t col : out->categorical_columns) {
    std::vector<double> freqs;
    LDP_ASSIGN_OR_RETURN(freqs, dataset.ColumnFrequencies(col));
    out->true_frequencies.push_back(std::move(freqs));
  }
  return Status::OK();
}

}  // namespace

const char* NumericStrategyToString(NumericStrategy strategy) {
  switch (strategy) {
    case NumericStrategy::kLaplaceSplit:
      return "Laplace";
    case NumericStrategy::kScdfSplit:
      return "SCDF";
    case NumericStrategy::kStaircaseSplit:
      return "Staircase";
    case NumericStrategy::kDuchiMulti:
      return "Duchi";
  }
  return "unknown";
}

Result<std::vector<MixedAttribute>> ToMixedSchema(const data::Schema& schema) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("schema has no columns");
  }
  std::vector<MixedAttribute> mixed;
  mixed.reserve(schema.num_columns());
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric) {
      mixed.push_back(MixedAttribute::Numeric());
    } else {
      mixed.push_back(MixedAttribute::Categorical(spec.domain_size));
    }
  }
  return mixed;
}

Result<CollectionOutput> CollectProposed(const data::Dataset& dataset,
                                         double epsilon, uint64_t seed,
                                         MechanismKind numeric_kind,
                                         FrequencyOracleKind categorical_kind,
                                         ThreadPool* pool) {
  LDP_RETURN_IF_ERROR(ValidateNormalized(dataset.schema()));
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::vector<MixedAttribute> mixed_schema;
  LDP_ASSIGN_OR_RETURN(mixed_schema, ToMixedSchema(dataset.schema()));
  Result<MixedTupleCollector> collector_result = MixedTupleCollector::Create(
      std::move(mixed_schema), epsilon, numeric_kind, categorical_kind);
  if (!collector_result.ok()) return collector_result.status();
  const MixedTupleCollector& collector = collector_result.value();

  CollectionOutput out;
  LDP_RETURN_IF_ERROR(FillGroundTruth(dataset, &out));

  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  MixedAggregator total(&collector);
  std::mutex merge_mutex;
  ParallelFor(pool, dataset.num_rows(),
              [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
                MixedAggregator local(&collector);
                MixedTuple tuple(d);
                for (uint64_t row = begin; row < end; ++row) {
                  for (uint32_t col = 0; col < d; ++col) {
                    if (schema.column(col).type == data::ColumnType::kNumeric) {
                      tuple[col].numeric = dataset.numeric(row, col);
                    } else {
                      tuple[col].category = dataset.category(row, col);
                    }
                  }
                  Rng rng = MakeUserRng(seed, row);
                  local.Add(collector.Perturb(tuple, &rng));
                }
                std::lock_guard<std::mutex> lock(merge_mutex);
                total.Merge(local);
              });

  for (const uint32_t col : out.numeric_columns) {
    double mean = 0.0;
    LDP_ASSIGN_OR_RETURN(mean, total.EstimateMean(col));
    out.estimated_means.push_back(mean);
  }
  for (const uint32_t col : out.categorical_columns) {
    std::vector<double> freqs;
    LDP_ASSIGN_OR_RETURN(freqs, total.EstimateFrequencies(col));
    out.estimated_frequencies.push_back(std::move(freqs));
  }
  return out;
}

Result<CollectionOutput> CollectBaseline(const data::Dataset& dataset,
                                         double epsilon, uint64_t seed,
                                         NumericStrategy strategy,
                                         FrequencyOracleKind categorical_kind,
                                         ThreadPool* pool) {
  LDP_RETURN_IF_ERROR(ValidateNormalized(dataset.schema()));
  LDP_RETURN_IF_ERROR(ValidateEpsilon(epsilon));
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  CollectionOutput out;
  LDP_RETURN_IF_ERROR(FillGroundTruth(dataset, &out));

  const uint32_t dn = static_cast<uint32_t>(out.numeric_columns.size());
  const uint32_t dc = static_cast<uint32_t>(out.categorical_columns.size());
  const uint32_t d = dn + dc;
  const double per_attribute_epsilon = epsilon / d;
  const double numeric_group_epsilon = epsilon * dn / d;
  const uint64_t n = dataset.num_rows();

  // Numeric group machinery.
  std::unique_ptr<ScalarMechanism> scalar;
  std::unique_ptr<DuchiMultiDimMechanism> duchi;
  if (dn > 0) {
    if (strategy == NumericStrategy::kDuchiMulti) {
      duchi = std::make_unique<DuchiMultiDimMechanism>(numeric_group_epsilon,
                                                       dn);
    } else {
      MechanismKind kind = MechanismKind::kLaplace;
      if (strategy == NumericStrategy::kScdfSplit) kind = MechanismKind::kScdf;
      if (strategy == NumericStrategy::kStaircaseSplit) {
        kind = MechanismKind::kStaircase;
      }
      LDP_ASSIGN_OR_RETURN(scalar,
                           MakeScalarMechanism(kind, per_attribute_epsilon));
    }
  }

  // Categorical group machinery: one oracle per categorical column.
  std::vector<std::unique_ptr<FrequencyOracle>> oracles;
  for (const uint32_t col : out.categorical_columns) {
    std::unique_ptr<FrequencyOracle> oracle;
    LDP_ASSIGN_OR_RETURN(
        oracle, MakeFrequencyOracle(categorical_kind, per_attribute_epsilon,
                                    dataset.schema().column(col).domain_size));
    oracles.push_back(std::move(oracle));
  }

  VectorMeanEstimator total_means(dn);
  std::vector<std::vector<double>> total_supports;
  for (const uint32_t col : out.categorical_columns) {
    total_supports.emplace_back(dataset.schema().column(col).domain_size, 0.0);
  }
  // Shapes of the per-chunk support tables, captured before the parallel
  // region: chunks must NOT read total_supports, which other chunks merge
  // into concurrently.
  std::vector<size_t> support_sizes;
  support_sizes.reserve(total_supports.size());
  for (const std::vector<double>& support : total_supports) {
    support_sizes.push_back(support.size());
  }
  std::mutex merge_mutex;
  ParallelFor(pool, n, [&](unsigned /*chunk*/, uint64_t begin, uint64_t end) {
    VectorMeanEstimator local_means(dn);
    std::vector<std::vector<double>> local_supports;
    local_supports.reserve(support_sizes.size());
    for (const size_t size : support_sizes) {
      local_supports.emplace_back(size, 0.0);
    }
    std::vector<double> numeric_tuple(dn, 0.0);
    std::vector<double> dense(dn, 0.0);
    for (uint64_t row = begin; row < end; ++row) {
      Rng rng = MakeUserRng(seed, row);
      if (dn > 0) {
        for (uint32_t j = 0; j < dn; ++j) {
          numeric_tuple[j] = dataset.numeric(row, out.numeric_columns[j]);
        }
        if (duchi != nullptr) {
          dense = duchi->Perturb(numeric_tuple, &rng);
        } else {
          for (uint32_t j = 0; j < dn; ++j) {
            dense[j] = scalar->Perturb(numeric_tuple[j], &rng);
          }
        }
        local_means.Add(dense);
      }
      for (uint32_t c = 0; c < dc; ++c) {
        const uint32_t value = dataset.category(row, out.categorical_columns[c]);
        oracles[c]->Accumulate(oracles[c]->Perturb(value, &rng),
                               &local_supports[c]);
      }
    }
    std::lock_guard<std::mutex> lock(merge_mutex);
    total_means.Merge(local_means);
    for (uint32_t c = 0; c < dc; ++c) {
      for (size_t v = 0; v < total_supports[c].size(); ++v) {
        total_supports[c][v] += local_supports[c][v];
      }
    }
  });

  out.estimated_means = total_means.Estimate();
  for (uint32_t c = 0; c < dc; ++c) {
    out.estimated_frequencies.push_back(
        oracles[c]->Estimate(total_supports[c], n));
  }
  return out;
}

}  // namespace ldp::aggregate
