#include "aggregate/collector.h"

#include <utility>

namespace ldp::aggregate {

namespace {

// The shared wrapper body: both legacy entry points are one Pipeline::Create
// + Collect away from the session facade, and stay bit-identical to their
// pre-facade implementations (the facade runs the very same per-chunk loop).
Result<CollectionOutput> CollectViaPipeline(const data::Dataset& dataset,
                                            api::PipelineConfig config,
                                            uint64_t seed, ThreadPool* pool) {
  LDP_ASSIGN_OR_RETURN(config.attributes,
                       api::AttributesFromSchema(dataset.schema()));
  Result<api::Pipeline> pipeline = api::Pipeline::Create(std::move(config));
  if (!pipeline.ok()) return pipeline.status();
  return pipeline.value().Collect(dataset, seed, pool);
}

}  // namespace

Result<CollectionOutput> CollectProposed(const data::Dataset& dataset,
                                         double epsilon, uint64_t seed,
                                         MechanismKind numeric_kind,
                                         FrequencyOracleKind categorical_kind,
                                         ThreadPool* pool) {
  api::PipelineConfig config;
  config.epsilon = epsilon;
  config.mechanism = numeric_kind;
  config.oracle = categorical_kind;
  return CollectViaPipeline(dataset, std::move(config), seed, pool);
}

Result<CollectionOutput> CollectBaseline(const data::Dataset& dataset,
                                         double epsilon, uint64_t seed,
                                         NumericStrategy strategy,
                                         FrequencyOracleKind categorical_kind,
                                         ThreadPool* pool) {
  api::PipelineConfig config;
  config.epsilon = epsilon;
  config.oracle = categorical_kind;
  config.baseline = strategy;
  return CollectViaPipeline(dataset, std::move(config), seed, pool);
}

}  // namespace ldp::aggregate
