#include "aggregate/collector.h"

#include <memory>

#include "aggregate/estimators.h"
#include "baselines/duchi_multi_dim.h"
#include "frequency/histogram.h"
#include "util/check.h"

namespace ldp::aggregate {

// Every simulated user gets her own generator derived from (seed, row), so
// results are identical whether or not a thread pool is used.
Rng UserRng(uint64_t seed, uint64_t row) {
  return Rng(seed ^ ((row + 1) * 0x9e3779b97f4a7c15ULL));
}

namespace {

Status ValidateNormalized(const data::Schema& schema) {
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric &&
        (spec.lo != -1.0 || spec.hi != 1.0)) {
      return Status::FailedPrecondition(
          "numeric column '" + spec.name +
          "' is not normalised to [-1, 1]; apply data::NormalizeNumeric "
          "first");
    }
  }
  return Status::OK();
}

// Fills the column index lists and the exact means/frequencies.
Status FillGroundTruth(const data::Dataset& dataset, CollectionOutput* out) {
  const data::Schema& schema = dataset.schema();
  out->numeric_columns = schema.NumericColumnIndices();
  out->categorical_columns = schema.CategoricalColumnIndices();
  for (const uint32_t col : out->numeric_columns) {
    double mean = 0.0;
    LDP_ASSIGN_OR_RETURN(mean, dataset.ColumnMean(col));
    out->true_means.push_back(mean);
  }
  for (const uint32_t col : out->categorical_columns) {
    std::vector<double> freqs;
    LDP_ASSIGN_OR_RETURN(freqs, dataset.ColumnFrequencies(col));
    out->true_frequencies.push_back(std::move(freqs));
  }
  return Status::OK();
}

}  // namespace

const char* NumericStrategyToString(NumericStrategy strategy) {
  switch (strategy) {
    case NumericStrategy::kLaplaceSplit:
      return "Laplace";
    case NumericStrategy::kScdfSplit:
      return "SCDF";
    case NumericStrategy::kStaircaseSplit:
      return "Staircase";
    case NumericStrategy::kDuchiMulti:
      return "Duchi";
  }
  return "unknown";
}

Result<std::vector<MixedAttribute>> ToMixedSchema(const data::Schema& schema) {
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("schema has no columns");
  }
  std::vector<MixedAttribute> mixed;
  mixed.reserve(schema.num_columns());
  for (uint32_t col = 0; col < schema.num_columns(); ++col) {
    const data::ColumnSpec& spec = schema.column(col);
    if (spec.type == data::ColumnType::kNumeric) {
      mixed.push_back(MixedAttribute::Numeric());
    } else {
      mixed.push_back(MixedAttribute::Categorical(spec.domain_size));
    }
  }
  return mixed;
}

Result<CollectionOutput> CollectProposed(const data::Dataset& dataset,
                                         double epsilon, uint64_t seed,
                                         MechanismKind numeric_kind,
                                         FrequencyOracleKind categorical_kind,
                                         ThreadPool* pool) {
  LDP_RETURN_IF_ERROR(ValidateNormalized(dataset.schema()));
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  std::vector<MixedAttribute> mixed_schema;
  LDP_ASSIGN_OR_RETURN(mixed_schema, ToMixedSchema(dataset.schema()));
  Result<MixedTupleCollector> collector_result = MixedTupleCollector::Create(
      std::move(mixed_schema), epsilon, numeric_kind, categorical_kind);
  if (!collector_result.ok()) return collector_result.status();
  const MixedTupleCollector& collector = collector_result.value();

  CollectionOutput out;
  LDP_RETURN_IF_ERROR(FillGroundTruth(dataset, &out));

  const data::Schema& schema = dataset.schema();
  const uint32_t d = schema.num_columns();
  // One aggregator per chunk, reduced in chunk order after the parallel
  // region: results are bit-deterministic for a fixed (seed, chunk count)
  // regardless of thread scheduling, and a sharded run whose shard
  // boundaries match SplitRange reproduces them exactly.
  const uint64_t num_chunks =
      ParallelForChunkCount(pool, dataset.num_rows());
  std::vector<MixedAggregator> chunk_aggregators(num_chunks,
                                                 MixedAggregator(&collector));
  ParallelFor(pool, dataset.num_rows(),
              [&](unsigned chunk, uint64_t begin, uint64_t end) {
                MixedAggregator& local = chunk_aggregators[chunk];
                MixedTuple tuple(d);
                for (uint64_t row = begin; row < end; ++row) {
                  for (uint32_t col = 0; col < d; ++col) {
                    if (schema.column(col).type == data::ColumnType::kNumeric) {
                      tuple[col].numeric = dataset.numeric(row, col);
                    } else {
                      tuple[col].category = dataset.category(row, col);
                    }
                  }
                  Rng rng = UserRng(seed, row);
                  local.Add(collector.Perturb(tuple, &rng));
                }
              });
  MixedAggregator total(&collector);
  for (const MixedAggregator& local : chunk_aggregators) {
    LDP_RETURN_IF_ERROR(total.Merge(local));
  }

  for (const uint32_t col : out.numeric_columns) {
    double mean = 0.0;
    LDP_ASSIGN_OR_RETURN(mean, total.EstimateMean(col));
    out.estimated_means.push_back(mean);
  }
  for (const uint32_t col : out.categorical_columns) {
    std::vector<double> freqs;
    LDP_ASSIGN_OR_RETURN(freqs, total.EstimateFrequencies(col));
    out.estimated_frequencies.push_back(std::move(freqs));
  }
  return out;
}

Result<CollectionOutput> CollectBaseline(const data::Dataset& dataset,
                                         double epsilon, uint64_t seed,
                                         NumericStrategy strategy,
                                         FrequencyOracleKind categorical_kind,
                                         ThreadPool* pool) {
  LDP_RETURN_IF_ERROR(ValidateNormalized(dataset.schema()));
  LDP_RETURN_IF_ERROR(ValidateEpsilon(epsilon));
  if (dataset.num_rows() == 0) {
    return Status::InvalidArgument("dataset is empty");
  }
  CollectionOutput out;
  LDP_RETURN_IF_ERROR(FillGroundTruth(dataset, &out));

  const uint32_t dn = static_cast<uint32_t>(out.numeric_columns.size());
  const uint32_t dc = static_cast<uint32_t>(out.categorical_columns.size());
  const uint32_t d = dn + dc;
  const double per_attribute_epsilon = epsilon / d;
  const double numeric_group_epsilon = epsilon * dn / d;
  const uint64_t n = dataset.num_rows();

  // Numeric group machinery.
  std::unique_ptr<ScalarMechanism> scalar;
  std::unique_ptr<DuchiMultiDimMechanism> duchi;
  if (dn > 0) {
    if (strategy == NumericStrategy::kDuchiMulti) {
      duchi = std::make_unique<DuchiMultiDimMechanism>(numeric_group_epsilon,
                                                       dn);
    } else {
      MechanismKind kind = MechanismKind::kLaplace;
      if (strategy == NumericStrategy::kScdfSplit) kind = MechanismKind::kScdf;
      if (strategy == NumericStrategy::kStaircaseSplit) {
        kind = MechanismKind::kStaircase;
      }
      LDP_ASSIGN_OR_RETURN(scalar,
                           MakeScalarMechanism(kind, per_attribute_epsilon));
    }
  }

  // Categorical group machinery: one oracle per categorical column.
  std::vector<std::unique_ptr<FrequencyOracle>> oracles;
  for (const uint32_t col : out.categorical_columns) {
    std::unique_ptr<FrequencyOracle> oracle;
    LDP_ASSIGN_OR_RETURN(
        oracle, MakeFrequencyOracle(categorical_kind, per_attribute_epsilon,
                                    dataset.schema().column(col).domain_size));
    oracles.push_back(std::move(oracle));
  }

  std::vector<size_t> support_sizes;
  for (const uint32_t col : out.categorical_columns) {
    support_sizes.push_back(dataset.schema().column(col).domain_size);
  }
  // Per-chunk accumulators reduced in chunk order after the parallel region,
  // mirroring CollectProposed: bit-deterministic for a fixed chunk count.
  const uint64_t num_chunks = ParallelForChunkCount(pool, n);
  std::vector<VectorMeanEstimator> chunk_means(num_chunks,
                                               VectorMeanEstimator(dn));
  std::vector<std::vector<std::vector<double>>> chunk_supports(num_chunks);
  for (auto& supports : chunk_supports) {
    for (const size_t size : support_sizes) {
      supports.emplace_back(size, 0.0);
    }
  }
  ParallelFor(pool, n, [&](unsigned chunk, uint64_t begin, uint64_t end) {
    VectorMeanEstimator& local_means = chunk_means[chunk];
    std::vector<std::vector<double>>& local_supports = chunk_supports[chunk];
    std::vector<double> numeric_tuple(dn, 0.0);
    std::vector<double> dense(dn, 0.0);
    for (uint64_t row = begin; row < end; ++row) {
      Rng rng = UserRng(seed, row);
      if (dn > 0) {
        for (uint32_t j = 0; j < dn; ++j) {
          numeric_tuple[j] = dataset.numeric(row, out.numeric_columns[j]);
        }
        if (duchi != nullptr) {
          dense = duchi->Perturb(numeric_tuple, &rng);
        } else {
          for (uint32_t j = 0; j < dn; ++j) {
            dense[j] = scalar->Perturb(numeric_tuple[j], &rng);
          }
        }
        local_means.Add(dense);
      }
      for (uint32_t c = 0; c < dc; ++c) {
        const uint32_t value = dataset.category(row, out.categorical_columns[c]);
        oracles[c]->Accumulate(oracles[c]->Perturb(value, &rng),
                               &local_supports[c]);
      }
    }
  });
  VectorMeanEstimator total_means(dn);
  std::vector<std::vector<double>> total_supports;
  for (const size_t size : support_sizes) {
    total_supports.emplace_back(size, 0.0);
  }
  for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    total_means.Merge(chunk_means[chunk]);
    for (uint32_t c = 0; c < dc; ++c) {
      for (size_t v = 0; v < total_supports[c].size(); ++v) {
        total_supports[c][v] += chunk_supports[chunk][c][v];
      }
    }
  }

  out.estimated_means = total_means.Estimate();
  for (uint32_t c = 0; c < dc; ++c) {
    out.estimated_frequencies.push_back(
        oracles[c]->Estimate(total_supports[c], n));
  }
  return out;
}

}  // namespace ldp::aggregate
