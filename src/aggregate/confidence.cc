#include "aggregate/confidence.h"

#include <cmath>

#include "util/math.h"

namespace ldp::aggregate {

namespace {

// Standard normal CDF via the complementary error function.
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

Status ValidateArguments(uint64_t num_reports, double confidence) {
  if (num_reports == 0) {
    return Status::InvalidArgument("need at least one report");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::InvalidArgument("confidence must be in (0, 1)");
  }
  return Status::OK();
}

ConfidenceInterval FromVariance(double estimate, double per_report_variance,
                                uint64_t num_reports, double confidence) {
  const double z = NormalQuantile(confidence);
  const double half_width =
      z * std::sqrt(per_report_variance / static_cast<double>(num_reports));
  return ConfidenceInterval{estimate, estimate - half_width,
                            estimate + half_width};
}

}  // namespace

double NormalQuantile(double confidence) {
  // Two-sided: find z with CDF(z) = (1 + confidence) / 2.
  const double target = (1.0 + confidence) / 2.0;
  return Bisect([&](double z) { return NormalCdf(z) - target; }, 0.0, 40.0,
                1e-12);
}

Result<ConfidenceInterval> MeanConfidenceInterval(
    double estimate, const ScalarMechanism& mechanism, uint64_t num_reports,
    double confidence) {
  LDP_RETURN_IF_ERROR(ValidateArguments(num_reports, confidence));
  return FromVariance(estimate, mechanism.WorstCaseVariance(), num_reports,
                      confidence);
}

Result<ConfidenceInterval> SampledMeanConfidenceInterval(
    double estimate, const SampledNumericMechanism& mechanism,
    uint64_t num_reports, double confidence) {
  LDP_RETURN_IF_ERROR(ValidateArguments(num_reports, confidence));
  return FromVariance(estimate, mechanism.WorstCaseCoordinateVariance(),
                      num_reports, confidence);
}

Result<ConfidenceInterval> FrequencyConfidenceInterval(
    double estimate, const FrequencyOracle& oracle, uint64_t num_reports,
    double confidence) {
  LDP_RETURN_IF_ERROR(ValidateArguments(num_reports, confidence));
  const double f = Clamp(estimate, 0.0, 1.0);
  // EstimateVariance already divides by the report count.
  const double z = NormalQuantile(confidence);
  const double half_width =
      z * std::sqrt(oracle.EstimateVariance(f, num_reports));
  return ConfidenceInterval{estimate, estimate - half_width,
                            estimate + half_width};
}

}  // namespace ldp::aggregate
