#include "obs/journal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace ldp::obs {

const char* EventKindToString(EventKind kind) {
  switch (kind) {
    case EventKind::kShardOpen: return "shard_open";
    case EventKind::kShardClose: return "shard_close";
    case EventKind::kShardAbandon: return "shard_abandon";
    case EventKind::kHelloAccept: return "hello_accept";
    case EventKind::kHelloRefuse: return "hello_refuse";
    case EventKind::kEpochAdvance: return "epoch_advance";
    case EventKind::kAccountantRefuse: return "accountant_refuse";
    case EventKind::kMergeEnter: return "merge_enter";
    case EventKind::kMergeExit: return "merge_exit";
    case EventKind::kServerStart: return "server_start";
    case EventKind::kServerStop: return "server_stop";
    case EventKind::kSnapshotForward: return "snapshot_forward";
    case EventKind::kSnapshotAccept: return "snapshot_accept";
    case EventKind::kSnapshotRefuse: return "snapshot_refuse";
    case EventKind::kRelayFold: return "relay_fold";
    case EventKind::kWalReplay: return "wal_replay";
    case EventKind::kWalCorrupt: return "wal_corrupt";
    case EventKind::kAuthRefuse: return "auth_refuse";
  }
  return "unknown";
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(std::max<size_t>(16, capacity)),
      origin_steady_ns_(SteadyNowNs()) {
  ring_.reserve(capacity_);
}

void EventJournal::Record(EventKind kind, uint64_t a, uint64_t b) {
  Event event;
  event.kind = kind;
  event.wall_ns = WallNowNs();
  event.steady_ns = SteadyNowNs();
  event.a = a;
  event.b = b;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_ % capacity_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

std::vector<Event> EventJournal::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Event> events;
  events.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    events = ring_;  // not yet wrapped: insertion order is oldest-first
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      events.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return events;
}

uint64_t EventJournal::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_ - std::min<uint64_t>(recorded_, ring_.size());
}

std::string EventJournal::ToJsonLines() const {
  const std::vector<Event> events = Events();
  std::string out;
  out.reserve(events.size() * 96);
  char line[192];
  for (const Event& event : events) {
    const uint64_t steady_us =
        (event.steady_ns - origin_steady_ns_) / 1000;
    std::snprintf(line, sizeof(line),
                  "{\"event\":\"%s\",\"wall_ns\":%" PRId64
                  ",\"steady_us\":%" PRIu64 ",\"a\":%" PRIu64
                  ",\"b\":%" PRIu64 "}\n",
                  EventKindToString(event.kind), event.wall_ns, steady_us,
                  event.a, event.b);
    out += line;
  }
  return out;
}

std::string EventJournal::ToChromeTrace() const {
  const std::vector<Event> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[224];
  bool first = true;
  for (const Event& event : events) {
    const uint64_t steady_us =
        (event.steady_ns - origin_steady_ns_) / 1000;
    std::snprintf(
        line, sizeof(line),
        "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,"
        "\"tid\":%" PRIu64 ",\"ts\":%" PRIu64
        ",\"args\":{\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}}",
        first ? "" : ",", EventKindToString(event.kind), event.a, steady_us,
        event.a, event.b);
    out += line;
    first = false;
  }
  out += "]}\n";
  return out;
}

}  // namespace ldp::obs
