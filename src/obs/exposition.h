// Serializers from a MetricsRegistry snapshot to the two exposition
// formats: Prometheus text (for GET /metrics scrapes) and JSON (for
// --metrics-out files, /metrics.json, and ldp_serve's exit stats — the
// same serializer everywhere, so live scrapes and exit dumps cannot
// drift). Output order is deterministic (registry snapshot order: name,
// then labels), making golden-output tests possible.

#ifndef LDP_OBS_EXPOSITION_H_
#define LDP_OBS_EXPOSITION_H_

#include <string>

#include "obs/metrics.h"

namespace ldp::obs {

/// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& text);

/// Prometheus text exposition. Counters and gauges render one sample line
/// (preceded by a `# TYPE` comment); histograms render cumulative
/// `_bucket{le="..."}` lines up to the highest occupied bucket, then
/// `{le="+Inf"}`, `_sum`, and `_count`.
std::string ToPrometheusText(const MetricsRegistry& registry);

/// JSON exposition:
/// {"metrics":[{"name":...,"type":"counter","value":N}, ...]}
/// Histogram entries carry count/sum/p50/p90/p99 plus non-empty buckets as
/// [{"le":upper,"count":n}, ...].
std::string ToJson(const MetricsRegistry& registry);

}  // namespace ldp::obs

#endif  // LDP_OBS_EXPOSITION_H_
