// Dependency-free telemetry primitives for the collection pipeline: a
// registry of named, labeled counters, gauges, and log2 latency histograms.
//
// Design constraints, in order of importance:
//
//  1. The ingest hot path (stream::ShardIngester::Feed) is zero-allocation
//     and must stay that way with telemetry enabled. Every mutation here is
//     allocation-free: Counter::Add is one relaxed fetch_add on a
//     thread-local shard, Histogram::Observe is two relaxed fetch_adds,
//     Gauge updates are single atomic stores or CAS loops. Allocation and
//     locking happen only at registration time (get-or-create) and at
//     exposition time (snapshot) — both off the data path.
//
//  2. Telemetry must never perturb results. Nothing in this file feeds back
//     into aggregation; instrumented layers only *write* metrics, so
//     snapshots and estimates are bit-identical with telemetry on or off
//     (proven by ObsServer.SnapshotBitIdenticalWithTelemetry).
//
//  3. Counters are per-thread-sharded across cache-line-padded atomic slots
//     so concurrent writers (pool workers, acceptor threads) never contend
//     on one cache line. Reads sum the shards; totals are exact because
//     every increment lands in exactly one slot.
//
// The registry hands out stable pointers: instrumented layers resolve their
// handles once (cold path, mutex) and thereafter mutate through raw
// pointers with no registry involvement.

#ifndef LDP_OBS_METRICS_H_
#define LDP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ldp::obs {

/// Nanoseconds on the monotonic clock (latency measurement).
uint64_t SteadyNowNs();

/// Nanoseconds since the Unix epoch on the wall clock (event stamping).
int64_t WallNowNs();

/// Monotonically increasing exact counter, per-thread-sharded. Writers pay
/// one relaxed fetch_add on a cache-line-private slot; Value() sums the
/// slots. Sharding trades a slightly stale cross-shard read (fine for
/// exposition) for a contention-free write path.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[ThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr unsigned kShards = 16;

  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };

  /// Round-robin slot assignment, fixed per thread for its lifetime.
  static unsigned ThreadShard();

  Shard shards_[kShards];
};

/// A double-valued instantaneous measurement (queue depth, pending bytes,
/// epsilon spent). Set() is a relaxed store; Add() is a CAS loop — gauge
/// updates happen at chunk/control-plane granularity, never per report.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  void Add(double delta);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of the double
};

/// Fixed-bucket log2 latency histogram. Bucket 0 holds the value 0; bucket
/// b in [1, kBuckets-2] holds values in [2^(b-1), 2^b); the last bucket is
/// the overflow. With microsecond observations the covered range tops out
/// above 2^37 us ≈ 38 hours. Observe() is two relaxed fetch_adds — no
/// allocation, no locking, safe on the hot path.
class Histogram {
 public:
  static constexpr unsigned kBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Index of the bucket `value` falls into.
  static unsigned BucketIndex(uint64_t value);

  /// Inclusive upper bound of bucket `b` (`le` in Prometheus terms); the
  /// last bucket returns UINT64_MAX (+Inf).
  static uint64_t UpperBound(unsigned b);

  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(unsigned b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Approximate quantile (q in [0,1]) by linear interpolation inside the
  /// log2 bucket holding the rank. Returns 0 for an empty histogram.
  double Quantile(double q) const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Sorted (key, value) label pairs; part of a metric's identity.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

/// One exposition row: the frozen state of a metric at snapshot time.
struct MetricSample {
  std::string name;
  LabelSet labels;
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;                 // kCounter
  double gauge = 0.0;                   // kGauge
  uint64_t count = 0;                   // kHistogram
  uint64_t sum = 0;                     // kHistogram
  std::vector<uint64_t> buckets;        // kHistogram, kBuckets entries
};

/// Named metric store. Get-or-create takes a mutex (cold path only); the
/// returned pointers are stable for the registry's lifetime, so every
/// subsequent mutation is lock-free. Identity is (name, sorted labels);
/// requesting an existing name with a different type aborts (programmer
/// error). Snapshot order is deterministic: sorted by name, then labels.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name,
                          const LabelSet& labels = {});

  /// Frozen, deterministically ordered view of every registered metric.
  std::vector<MetricSample> Snapshot() const;

 private:
  struct Entry {
    MetricType type = MetricType::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreate(const std::string& name, const LabelSet& labels,
                     MetricType type);

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, LabelSet>, Entry> entries_;
};

// ---------------------------------------------------------------------------
// Per-layer handle bundles.
//
// Instrumented layers carry one of these structs (all-null by default =
// telemetry off; every update site is guarded by a null check on its
// handle). ForRegistry resolves the bundle against a registry and is the
// single place the metric-name vocabulary lives — README's "Observability"
// section documents exactly these names.

/// stream::ShardIngester — one shared bundle for every shard of a session;
/// the ingester flushes stat deltas once per Feed/Finish call, so the
/// per-frame accept loop touches no atomics at all.
struct IngestMetrics {
  Counter* bytes = nullptr;     ///< ldp_ingest_bytes_total
  Counter* frames = nullptr;    ///< ldp_ingest_frames_total
  Counter* accepted = nullptr;  ///< ldp_ingest_reports_accepted_total
  Counter* rejected = nullptr;  ///< ldp_ingest_reports_rejected_total
  bool enabled() const { return bytes != nullptr; }
  static IngestMetrics ForRegistry(MetricsRegistry* registry);
};

/// api::ServerSession — shard lifecycle, backpressure, budget accounting.
struct SessionMetrics {
  Counter* shards_opened = nullptr;     ///< ldp_session_shards_opened_total
  Counter* shards_closed = nullptr;     ///< ldp_session_shards_closed_total
  Counter* shards_abandoned = nullptr;  ///< ldp_session_shards_abandoned_total
  Counter* epochs_opened = nullptr;     ///< ldp_session_epochs_opened_total
  Counter* budget_refusals = nullptr;   ///< ldp_session_budget_refusals_total
  Gauge* pending_feed_bytes = nullptr;  ///< ldp_session_pending_feed_bytes
  Gauge* epsilon_spent = nullptr;       ///< ldp_session_epsilon_spent
  Histogram* backpressure_wait_us = nullptr;
  ///< ldp_session_backpressure_wait_us
  Histogram* close_wait_us = nullptr;   ///< ldp_session_close_wait_us
  bool enabled() const { return shards_opened != nullptr; }
  static SessionMetrics ForRegistry(MetricsRegistry* registry);
};

/// relay::RelayForwarder — upstream snapshot shipping.
struct RelayMetrics {
  Counter* snapshots_forwarded = nullptr;
  ///< ldp_relay_snapshots_forwarded_total
  Counter* forward_failures = nullptr;
  ///< ldp_relay_forward_failures_total
  Counter* reconnects = nullptr;  ///< ldp_relay_upstream_reconnects_total
  Counter* bytes_forwarded = nullptr;  ///< ldp_relay_bytes_forwarded_total
  Histogram* forward_us = nullptr;     ///< ldp_relay_forward_us
  bool enabled() const { return snapshots_forwarded != nullptr; }
  static RelayMetrics ForRegistry(MetricsRegistry* registry);
};

/// relay::FrameWal — write-ahead frame log appends and crash replay.
struct WalMetrics {
  Counter* records = nullptr;          ///< ldp_wal_records_total
  Counter* bytes = nullptr;            ///< ldp_wal_bytes_total
  Counter* replayed_frames = nullptr;  ///< ldp_wal_replayed_frames_total
  Counter* replayed_bytes = nullptr;   ///< ldp_wal_replayed_bytes_total
  Counter* replayed_shards = nullptr;  ///< ldp_wal_replayed_shards_total
  Counter* resumed_shards = nullptr;   ///< ldp_wal_resumed_shards_total
  Counter* torn_tails = nullptr;       ///< ldp_wal_torn_tails_total
  Counter* corrupt_shards = nullptr;   ///< ldp_wal_corrupt_shards_total
  Histogram* append_us = nullptr;      ///< ldp_wal_append_us
  bool enabled() const { return records != nullptr; }
  static WalMetrics ForRegistry(MetricsRegistry* registry);
};

/// net::ReportServer — connection lifecycle and wire latency.
struct NetServerMetrics {
  Counter* connections = nullptr;      ///< ldp_net_connections_total
  Counter* hello_accepted = nullptr;   ///< ldp_net_hello_accepted_total
  Counter* hello_refused = nullptr;    ///< ldp_net_hello_refused_total
  Counter* hello_unauthenticated = nullptr;
  ///< ldp_net_hello_unauthenticated_total
  Counter* data_messages = nullptr;    ///< ldp_net_data_messages_total
  Counter* slow_loris_reaped = nullptr;
  ///< ldp_net_slow_loris_reaped_total
  Counter* protocol_errors = nullptr;  ///< ldp_net_protocol_errors_total
  Counter* shards_merged = nullptr;    ///< ldp_net_shards_merged_total
  Counter* shards_discarded = nullptr;
  ///< ldp_net_shards_discarded_total
  Counter* shards_abandoned = nullptr;
  ///< ldp_net_shards_abandoned_total
  Counter* snapshots_accepted = nullptr;
  ///< ldp_net_snapshots_accepted_total
  Counter* snapshots_stale = nullptr;
  ///< ldp_net_snapshots_stale_total
  Counter* snapshots_refused = nullptr;
  ///< ldp_net_snapshots_refused_total
  Histogram* data_read_us = nullptr;   ///< ldp_net_data_read_us
  Histogram* merge_barrier_wait_us = nullptr;
  ///< ldp_net_merge_barrier_wait_us
  bool enabled() const { return connections != nullptr; }
  static NetServerMetrics ForRegistry(MetricsRegistry* registry);
};

/// util::ThreadPool — queue depth and task service time.
struct PoolMetrics {
  Gauge* queue_depth = nullptr;   ///< ldp_pool_queue_depth
  Counter* tasks = nullptr;       ///< ldp_pool_tasks_total
  Histogram* task_us = nullptr;   ///< ldp_pool_task_us
  bool enabled() const { return tasks != nullptr; }
  static PoolMetrics ForRegistry(MetricsRegistry* registry);
};

}  // namespace ldp::obs

#endif  // LDP_OBS_METRICS_H_
