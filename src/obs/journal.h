// Bounded ring-buffer campaign event journal. Control-plane events — shard
// lifecycle, HELLO accept/refuse, epoch advance, merge-barrier enter/exit,
// accountant refusals — are rare (per shard / per epoch, never per report),
// so a mutex-protected ring is plenty; the data path never records events.
// Each event carries both a wall-clock timestamp (for correlating with
// external logs) and a steady-clock timestamp (for exact intervals and
// Chrome trace_event rendering). When the ring is full the oldest event is
// overwritten and `dropped()` counts what was lost, so a long campaign can
// run forever with bounded memory and still journal its recent history.

#ifndef LDP_OBS_JOURNAL_H_
#define LDP_OBS_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ldp::obs {

enum class EventKind : uint8_t {
  kShardOpen,
  kShardClose,
  kShardAbandon,
  kHelloAccept,
  kHelloRefuse,
  kEpochAdvance,
  kAccountantRefuse,
  kMergeEnter,
  kMergeExit,
  kServerStart,
  kServerStop,
  kSnapshotForward,
  kSnapshotAccept,
  kSnapshotRefuse,
  kRelayFold,
  kWalReplay,
  kWalCorrupt,
  kAuthRefuse,
};

const char* EventKindToString(EventKind kind);

/// One journaled event. `a` and `b` are kind-specific small integers:
/// shard events carry (shard, epoch), HELLO and merge-barrier events carry
/// (ordinal, 0), epoch events carry (epoch, 0).
struct Event {
  EventKind kind = EventKind::kShardOpen;
  int64_t wall_ns = 0;    ///< Unix-epoch nanoseconds at record time.
  uint64_t steady_ns = 0; ///< Monotonic nanoseconds at record time.
  uint64_t a = 0;
  uint64_t b = 0;
};

/// Fixed-capacity overwrite-oldest event ring. Thread-safe.
class EventJournal {
 public:
  /// `capacity` is clamped to at least 16 events.
  explicit EventJournal(size_t capacity = 8192);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  void Record(EventKind kind, uint64_t a = 0, uint64_t b = 0);

  /// Retained events, oldest first.
  std::vector<Event> Events() const;

  /// Total events ever recorded (retained + overwritten).
  uint64_t recorded() const;

  /// Events lost to ring overwrite.
  uint64_t dropped() const;

  size_t capacity() const { return capacity_; }

  /// One JSON object per line:
  /// {"event":"shard_close","wall_ns":...,"steady_us":...,"a":3,"b":0}
  /// steady_us is relative to the journal's construction.
  std::string ToJsonLines() const;

  /// Chrome trace_event JSON (load via chrome://tracing or Perfetto):
  /// instant events, ts in microseconds since journal construction.
  std::string ToChromeTrace() const;

 private:
  const size_t capacity_;
  const uint64_t origin_steady_ns_;  // construction time, trace epoch
  mutable std::mutex mutex_;
  std::vector<Event> ring_;
  size_t next_ = 0;         // ring slot the next event lands in
  uint64_t recorded_ = 0;
};

}  // namespace ldp::obs

#endif  // LDP_OBS_JOURNAL_H_
