#include "obs/exposition.h"

#include <cinttypes>
#include <cstdio>

namespace ldp::obs {

namespace {

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string FormatLabels(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    out += key + "=\"" + value + "\"";
    first = false;
  }
  out += "}";
  return out;
}

/// Highest occupied bucket index, or 0 if the histogram is empty.
unsigned HighestBucket(const std::vector<uint64_t>& buckets) {
  unsigned highest = 0;
  for (unsigned b = 0; b < buckets.size(); ++b) {
    if (buckets[b] != 0) highest = b;
  }
  return highest;
}

/// Quantile over a frozen bucket array, mirroring Histogram::Quantile so
/// the JSON convenience fields agree with the live histogram.
double QuantileFromBuckets(const std::vector<uint64_t>& buckets, double q) {
  uint64_t total = 0;
  for (const uint64_t count : buckets) total += count;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total) + 0.5);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (unsigned b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (cumulative + buckets[b] >= rank) {
      const double lower =
          b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << (b - 1));
      const double upper =
          b == 0 ? 0.0
                 : (b + 1 >= buckets.size()
                        ? lower * 2.0
                        : static_cast<double>(uint64_t{1} << b));
      const double fraction = static_cast<double>(rank - cumulative) /
                              static_cast<double>(buckets[b]);
      return lower + (upper - lower) * fraction;
    }
    cumulative += buckets[b];
  }
  return 0.0;
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  const std::vector<MetricSample> samples = registry.Snapshot();
  std::string out;
  char line[192];
  std::string last_typed;  // emit one # TYPE per metric name
  for (const MetricSample& sample : samples) {
    if (sample.name != last_typed) {
      out += "# TYPE " + sample.name + " " + TypeName(sample.type) + "\n";
      last_typed = sample.name;
    }
    const std::string labels = FormatLabels(sample.labels);
    switch (sample.type) {
      case MetricType::kCounter:
        std::snprintf(line, sizeof(line), " %" PRIu64 "\n", sample.counter);
        out += sample.name + labels + line;
        break;
      case MetricType::kGauge:
        out += sample.name + labels + " " + FormatDouble(sample.gauge) + "\n";
        break;
      case MetricType::kHistogram: {
        const unsigned highest = HighestBucket(sample.buckets);
        uint64_t cumulative = 0;
        for (unsigned b = 0; b <= highest; ++b) {
          cumulative += sample.buckets[b];
          std::string le = labels.empty() ? "{" : labels;
          if (!labels.empty()) le.pop_back(), le += ",";
          std::snprintf(line, sizeof(line), "le=\"%" PRIu64 "\"} %" PRIu64
                        "\n",
                        Histogram::UpperBound(b), cumulative);
          out += sample.name + "_bucket" + le + line;
        }
        std::string le = labels.empty() ? "{" : labels;
        if (!labels.empty()) le.pop_back(), le += ",";
        std::snprintf(line, sizeof(line), "le=\"+Inf\"} %" PRIu64 "\n",
                      sample.count);
        out += sample.name + "_bucket" + le + line;
        std::snprintf(line, sizeof(line), " %" PRIu64 "\n", sample.sum);
        out += sample.name + "_sum" + labels + line;
        std::snprintf(line, sizeof(line), " %" PRIu64 "\n", sample.count);
        out += sample.name + "_count" + labels + line;
        break;
      }
    }
  }
  return out;
}

std::string ToJson(const MetricsRegistry& registry) {
  const std::vector<MetricSample> samples = registry.Snapshot();
  std::string out = "{\"metrics\":[";
  char buffer[128];
  bool first = true;
  for (const MetricSample& sample : samples) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(sample.name) + "\"";
    if (!sample.labels.empty()) {
      out += ",\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : sample.labels) {
        if (!first_label) out += ",";
        out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
        first_label = false;
      }
      out += "}";
    }
    out += std::string(",\"type\":\"") + TypeName(sample.type) + "\"";
    switch (sample.type) {
      case MetricType::kCounter:
        std::snprintf(buffer, sizeof(buffer), ",\"value\":%" PRIu64,
                      sample.counter);
        out += buffer;
        break;
      case MetricType::kGauge:
        out += ",\"value\":" + FormatDouble(sample.gauge);
        break;
      case MetricType::kHistogram: {
        std::snprintf(buffer, sizeof(buffer),
                      ",\"count\":%" PRIu64 ",\"sum\":%" PRIu64,
                      sample.count, sample.sum);
        out += buffer;
        out += ",\"p50\":" +
               FormatDouble(QuantileFromBuckets(sample.buckets, 0.50));
        out += ",\"p90\":" +
               FormatDouble(QuantileFromBuckets(sample.buckets, 0.90));
        out += ",\"p99\":" +
               FormatDouble(QuantileFromBuckets(sample.buckets, 0.99));
        out += ",\"buckets\":[";
        bool first_bucket = true;
        for (unsigned b = 0; b < sample.buckets.size(); ++b) {
          if (sample.buckets[b] == 0) continue;
          if (!first_bucket) out += ",";
          if (b + 1 >= sample.buckets.size()) {
            std::snprintf(buffer, sizeof(buffer),
                          "{\"le\":\"+Inf\",\"count\":%" PRIu64 "}",
                          sample.buckets[b]);
          } else {
            std::snprintf(buffer, sizeof(buffer),
                          "{\"le\":%" PRIu64 ",\"count\":%" PRIu64 "}",
                          Histogram::UpperBound(b), sample.buckets[b]);
          }
          out += buffer;
          first_bucket = false;
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "]}\n";
  return out;
}

}  // namespace ldp::obs
