#include "obs/metrics_server.h"

#include <sys/socket.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "obs/exposition.h"

namespace ldp::obs {

namespace {

/// Reads until the request-head terminator (or 4 KiB — a scrape request
/// line fits in far less) and returns the request path, or "" on anything
/// that is not a well-formed GET.
std::string ReadRequestPath(net::Socket& socket) {
  std::string request;
  char buffer[1024];
  while (request.size() < 4096 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t got = ::recv(socket.fd(), buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    request.append(buffer, static_cast<size_t>(got));
  }
  if (request.compare(0, 4, "GET ") != 0) return "";
  const size_t path_begin = 4;
  const size_t path_end = request.find_first_of(" \r\n", path_begin);
  if (path_end == std::string::npos) return "";
  std::string path = request.substr(path_begin, path_end - path_begin);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path;
}

void WriteResponse(net::Socket& socket, const char* status,
                   const char* content_type, const std::string& body) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 %s\r\nContent-Type: %s\r\n"
                "Content-Length: %zu\r\nConnection: close\r\n\r\n",
                status, content_type, body.size());
  if (socket.SendAll(head, std::strlen(head)).ok()) {
    (void)socket.SendAll(body);
  }
}

}  // namespace

Result<std::unique_ptr<MetricsServer>> MetricsServer::Start(
    const net::Endpoint& endpoint, const MetricsRegistry* registry,
    const EventJournal* journal) {
  net::Listener listener;
  LDP_ASSIGN_OR_RETURN(listener, net::Listener::Bind(endpoint));
  return std::unique_ptr<MetricsServer>(
      new MetricsServer(std::move(listener), registry, journal));
}

MetricsServer::MetricsServer(net::Listener listener,
                             const MetricsRegistry* registry,
                             const EventJournal* journal)
    : listener_(std::move(listener)), registry_(registry), journal_(journal) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

void MetricsServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  // Wake is sticky (the byte is never drained), so the accept loop's poll
  // returns even if it re-enters. Close only after the join: closing a
  // descriptor another thread is polling hands its number to whoever
  // opens a descriptor next.
  listener_.Wake();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
}

void MetricsServer::AcceptLoop() {
  for (;;) {
    auto accepted = listener_.Accept();
    if (!accepted.ok()) return;
    if (!accepted.value().valid()) return;  // woken for shutdown
    ServeConnection(std::move(accepted).value());
  }
}

void MetricsServer::ServeConnection(net::Socket socket) {
  // A stuck scraper must not wedge the accept loop.
  (void)socket.SetIdleTimeout(5000);
  const std::string path = ReadRequestPath(socket);
  if (path == "/metrics") {
    WriteResponse(socket, "200 OK", "text/plain; version=0.0.4",
                  ToPrometheusText(*registry_));
  } else if (path == "/metrics.json") {
    WriteResponse(socket, "200 OK", "application/json", ToJson(*registry_));
  } else if (path == "/journal" && journal_ != nullptr) {
    WriteResponse(socket, "200 OK", "application/x-ndjson",
                  journal_->ToJsonLines());
  } else if (path == "/trace" && journal_ != nullptr) {
    WriteResponse(socket, "200 OK", "application/json",
                  journal_->ToChromeTrace());
  } else if (path == "/healthz") {
    const bool draining = draining_.load(std::memory_order_relaxed);
    WriteResponse(socket, "200 OK", "text/plain",
                  draining ? "draining\n" : "ok\n");
  } else {
    WriteResponse(socket, "404 Not Found", "text/plain", "not found\n");
  }
}

}  // namespace ldp::obs
