// A minimal HTTP/1.0 GET endpoint serving telemetry scrapes over the
// existing net::Listener/Socket layer (TCP or Unix-domain). One accept
// thread, one request per connection, Connection: close — a scrape target,
// not a web server. Routes:
//
//   /metrics       Prometheus text exposition
//   /metrics.json  JSON exposition (same serializer as --metrics-out and
//                  ldp_serve's exit stats)
//   /journal       campaign event journal as JSON lines
//   /trace         campaign event journal as Chrome trace_event JSON
//   /healthz       "ok", or "draining" once SetDraining(true) — load
//                  balancers can pull a collector out of rotation while it
//                  finishes its drain instead of killing in-flight shards
//
// The server only *reads* the registry/journal (snapshot under their own
// locks), so scrapes never touch the ingest data path.

#ifndef LDP_OBS_METRICS_SERVER_H_
#define LDP_OBS_METRICS_SERVER_H_

#include <atomic>
#include <memory>
#include <thread>

#include "net/socket.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace ldp::obs {

class MetricsServer {
 public:
  /// Binds `endpoint` and starts the accept thread. `registry` must outlive
  /// the server; `journal` may be null (journal routes then return 404).
  static Result<std::unique_ptr<MetricsServer>> Start(
      const net::Endpoint& endpoint, const MetricsRegistry* registry,
      const EventJournal* journal);

  ~MetricsServer() { Stop(); }

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound endpoint (TCP port 0 resolved).
  const net::Endpoint& endpoint() const { return listener_.endpoint(); }

  /// Stops accepting and joins the accept thread (idempotent).
  void Stop();

  /// Flips /healthz between "ok" (false) and "draining" (true). Safe from
  /// any thread; meant to be set right before ReportServer::Stop(drain).
  void SetDraining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }

 private:
  MetricsServer(net::Listener listener, const MetricsRegistry* registry,
                const EventJournal* journal);

  void AcceptLoop();
  void ServeConnection(net::Socket socket);

  net::Listener listener_;
  const MetricsRegistry* registry_;
  const EventJournal* journal_;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  bool stopped_ = false;
};

}  // namespace ldp::obs

#endif  // LDP_OBS_METRICS_SERVER_H_
