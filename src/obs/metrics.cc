#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>

#include "util/check.h"

namespace ldp::obs {

namespace {

// C++17 stand-ins for std::bit_cast / std::bit_width.
uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

unsigned BitWidth(uint64_t value) {
  unsigned width = 0;
  while (value != 0) {
    ++width;
    value >>= 1;
  }
  return width;
}

}  // namespace

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

unsigned Counter::ThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void Gauge::Set(double value) {
  bits_.store(DoubleBits(value), std::memory_order_relaxed);
}

void Gauge::Add(double delta) {
  uint64_t observed = bits_.load(std::memory_order_relaxed);
  for (;;) {
    const uint64_t desired = DoubleBits(BitsDouble(observed) + delta);
    if (bits_.compare_exchange_weak(observed, desired,
                                    std::memory_order_relaxed)) {
      return;
    }
  }
}

double Gauge::Value() const {
  return BitsDouble(bits_.load(std::memory_order_relaxed));
}

unsigned Histogram::BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  return std::min(BitWidth(value), kBuckets - 1);
}

uint64_t Histogram::UpperBound(unsigned b) {
  LDP_CHECK(b < kBuckets);
  if (b + 1 >= kBuckets) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << b) - 1;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (unsigned b = 0; b < kBuckets; ++b) total += BucketCount(b);
  return total;
}

double Histogram::Quantile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    counts[b] = BucketCount(b);
    total += counts[b];
  }
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based, clamped to the population.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t cumulative = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (cumulative + counts[b] >= std::min(rank, total)) {
      // Interpolate linearly inside the bucket by rank position.
      const double lower = b == 0 ? 0.0
                                  : static_cast<double>(uint64_t{1} << (b - 1));
      const double upper =
          b == 0 ? 0.0
                 : (b + 1 >= kBuckets
                        ? lower * 2.0  // overflow bucket: report its floor*2
                        : static_cast<double>(uint64_t{1} << b));
      const double fraction =
          static_cast<double>(std::min(rank, total) - cumulative) /
          static_cast<double>(counts[b]);
      return lower + (upper - lower) * fraction;
    }
    cumulative += counts[b];
  }
  return 0.0;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreate(const std::string& name,
                                                     const LabelSet& labels,
                                                     MetricType type) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[{name, std::move(sorted)}];
  if (entry.counter == nullptr && entry.gauge == nullptr &&
      entry.histogram == nullptr) {
    entry.type = type;
    switch (type) {
      case MetricType::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  LDP_CHECK_MSG(entry.type == type,
                "metric re-registered with a different type");
  return &entry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  return GetOrCreate(name, labels, MetricType::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  return GetOrCreate(name, labels, MetricType::kGauge)->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const LabelSet& labels) {
  return GetOrCreate(name, labels, MetricType::kHistogram)->histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSample> samples;
  samples.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.type = entry.type;
    switch (entry.type) {
      case MetricType::kCounter:
        sample.counter = entry.counter->Value();
        break;
      case MetricType::kGauge:
        sample.gauge = entry.gauge->Value();
        break;
      case MetricType::kHistogram: {
        sample.buckets.resize(Histogram::kBuckets);
        uint64_t count = 0;
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
          sample.buckets[b] = entry.histogram->BucketCount(b);
          count += sample.buckets[b];
        }
        sample.count = count;
        sample.sum = entry.histogram->Sum();
        break;
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;  // std::map iteration order == (name, labels) order
}

IngestMetrics IngestMetrics::ForRegistry(MetricsRegistry* registry) {
  IngestMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.bytes = registry->GetCounter("ldp_ingest_bytes_total");
  metrics.frames = registry->GetCounter("ldp_ingest_frames_total");
  metrics.accepted = registry->GetCounter("ldp_ingest_reports_accepted_total");
  metrics.rejected = registry->GetCounter("ldp_ingest_reports_rejected_total");
  return metrics;
}

SessionMetrics SessionMetrics::ForRegistry(MetricsRegistry* registry) {
  SessionMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.shards_opened =
      registry->GetCounter("ldp_session_shards_opened_total");
  metrics.shards_closed =
      registry->GetCounter("ldp_session_shards_closed_total");
  metrics.shards_abandoned =
      registry->GetCounter("ldp_session_shards_abandoned_total");
  metrics.epochs_opened =
      registry->GetCounter("ldp_session_epochs_opened_total");
  metrics.budget_refusals =
      registry->GetCounter("ldp_session_budget_refusals_total");
  metrics.pending_feed_bytes =
      registry->GetGauge("ldp_session_pending_feed_bytes");
  metrics.epsilon_spent = registry->GetGauge("ldp_session_epsilon_spent");
  metrics.backpressure_wait_us =
      registry->GetHistogram("ldp_session_backpressure_wait_us");
  metrics.close_wait_us = registry->GetHistogram("ldp_session_close_wait_us");
  return metrics;
}

RelayMetrics RelayMetrics::ForRegistry(MetricsRegistry* registry) {
  RelayMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.snapshots_forwarded =
      registry->GetCounter("ldp_relay_snapshots_forwarded_total");
  metrics.forward_failures =
      registry->GetCounter("ldp_relay_forward_failures_total");
  metrics.reconnects =
      registry->GetCounter("ldp_relay_upstream_reconnects_total");
  metrics.bytes_forwarded =
      registry->GetCounter("ldp_relay_bytes_forwarded_total");
  metrics.forward_us = registry->GetHistogram("ldp_relay_forward_us");
  return metrics;
}

WalMetrics WalMetrics::ForRegistry(MetricsRegistry* registry) {
  WalMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.records = registry->GetCounter("ldp_wal_records_total");
  metrics.bytes = registry->GetCounter("ldp_wal_bytes_total");
  metrics.replayed_frames =
      registry->GetCounter("ldp_wal_replayed_frames_total");
  metrics.replayed_bytes = registry->GetCounter("ldp_wal_replayed_bytes_total");
  metrics.replayed_shards =
      registry->GetCounter("ldp_wal_replayed_shards_total");
  metrics.resumed_shards = registry->GetCounter("ldp_wal_resumed_shards_total");
  metrics.torn_tails = registry->GetCounter("ldp_wal_torn_tails_total");
  metrics.corrupt_shards = registry->GetCounter("ldp_wal_corrupt_shards_total");
  metrics.append_us = registry->GetHistogram("ldp_wal_append_us");
  return metrics;
}

NetServerMetrics NetServerMetrics::ForRegistry(MetricsRegistry* registry) {
  NetServerMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.connections = registry->GetCounter("ldp_net_connections_total");
  metrics.hello_accepted =
      registry->GetCounter("ldp_net_hello_accepted_total");
  metrics.hello_refused = registry->GetCounter("ldp_net_hello_refused_total");
  metrics.hello_unauthenticated =
      registry->GetCounter("ldp_net_hello_unauthenticated_total");
  metrics.data_messages = registry->GetCounter("ldp_net_data_messages_total");
  metrics.slow_loris_reaped =
      registry->GetCounter("ldp_net_slow_loris_reaped_total");
  metrics.protocol_errors =
      registry->GetCounter("ldp_net_protocol_errors_total");
  metrics.shards_merged = registry->GetCounter("ldp_net_shards_merged_total");
  metrics.shards_discarded =
      registry->GetCounter("ldp_net_shards_discarded_total");
  metrics.shards_abandoned =
      registry->GetCounter("ldp_net_shards_abandoned_total");
  metrics.snapshots_accepted =
      registry->GetCounter("ldp_net_snapshots_accepted_total");
  metrics.snapshots_stale =
      registry->GetCounter("ldp_net_snapshots_stale_total");
  metrics.snapshots_refused =
      registry->GetCounter("ldp_net_snapshots_refused_total");
  metrics.data_read_us = registry->GetHistogram("ldp_net_data_read_us");
  metrics.merge_barrier_wait_us =
      registry->GetHistogram("ldp_net_merge_barrier_wait_us");
  return metrics;
}

PoolMetrics PoolMetrics::ForRegistry(MetricsRegistry* registry) {
  PoolMetrics metrics;
  if (registry == nullptr) return metrics;
  metrics.queue_depth = registry->GetGauge("ldp_pool_queue_depth");
  metrics.tasks = registry->GetCounter("ldp_pool_tasks_total");
  metrics.task_us = registry->GetHistogram("ldp_pool_task_us");
  return metrics;
}

}  // namespace ldp::obs
