#include "net/protocol.h"

#include "core/wire.h"
#include "util/hmac.h"

namespace ldp::net {

namespace {

using internal_wire::PutU16;
using internal_wire::PutU32;
using internal_wire::PutU64;
using internal_wire::PutU8;
using internal_wire::Reader;

// The trailing free-form field of a payload (error/detail text, header
// bytes): everything after the fixed fields.
std::string TakeRest(const std::string& payload, const Reader& reader) {
  return payload.substr(reader.cursor());
}

}  // namespace

bool IsKnownMessageType(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello:
    case MessageType::kData:
    case MessageType::kCloseShard:
    case MessageType::kAdvanceEpoch:
    case MessageType::kSnapshot:
    case MessageType::kHelloOk:
    case MessageType::kShardClosed:
    case MessageType::kEpochAdvanced:
    case MessageType::kError:
    case MessageType::kSnapshotOk:
    case MessageType::kDataAck:
      return true;
  }
  return false;
}

Status AppendMessage(MessageType type, const std::string& payload,
                     std::string* out) {
  if (payload.size() > kMaxMessagePayload) {
    return Status::InvalidArgument("message payload exceeds bound");
  }
  PutU8(out, static_cast<uint8_t>(type));
  PutU32(out, static_cast<uint32_t>(payload.size()));
  out->append(payload);
  return Status::OK();
}

Result<MessageHeader> DecodeMessageHeader(const char* data, size_t size) {
  if (size != kMessageHeaderBytes) {
    return Status::InvalidArgument("message header must be 5 bytes");
  }
  Reader reader(data, size);
  uint8_t type = 0;
  LDP_ASSIGN_OR_RETURN(type, reader.U8());
  if (!IsKnownMessageType(type)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(type));
  }
  MessageHeader header;
  header.type = static_cast<MessageType>(type);
  LDP_ASSIGN_OR_RETURN(header.payload_length, reader.U32());
  if (header.payload_length > kMaxMessagePayload) {
    return Status::InvalidArgument("message payload length " +
                                   std::to_string(header.payload_length) +
                                   " exceeds bound");
  }
  return header;
}

std::string EncodeHello(const HelloMessage& hello) {
  // An unauthenticated HELLO stays on the v2 layout so a client without a
  // campaign key is byte-identical to the previous release.
  const bool authenticated =
      !hello.reporter_id.empty() || !hello.auth_tag.empty();
  std::string out;
  PutU16(&out, authenticated ? kProtocolVersion : kLegacyProtocolVersion);
  PutU32(&out, hello.channel);
  PutU32(&out, hello.flags);
  PutU64(&out, hello.ordinal);
  if (authenticated) {
    PutU16(&out, static_cast<uint16_t>(hello.reporter_id.size()));
    out.append(hello.reporter_id);
    out.append(hello.auth_tag);
  }
  out.append(hello.header_bytes);
  return out;
}

Result<HelloMessage> DecodeHello(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  HelloMessage hello;
  LDP_ASSIGN_OR_RETURN(hello.version, reader.U16());
  if (hello.version != kProtocolVersion &&
      hello.version != kLegacyProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(hello.version));
  }
  LDP_ASSIGN_OR_RETURN(hello.channel, reader.U32());
  LDP_ASSIGN_OR_RETURN(hello.flags, reader.U32());
  LDP_ASSIGN_OR_RETURN(hello.ordinal, reader.U64());
  if (hello.version == kProtocolVersion) {
    uint16_t id_length = 0;
    LDP_ASSIGN_OR_RETURN(id_length, reader.U16());
    if (id_length == 0) {
      return Status::InvalidArgument("v3 HELLO carries an empty reporter id");
    }
    if (id_length > kMaxReporterIdBytes) {
      return Status::InvalidArgument(
          "reporter id length " + std::to_string(id_length) +
          " exceeds bound " + std::to_string(kMaxReporterIdBytes));
    }
    const char* id_bytes = reader.TakeBytes(id_length);
    if (id_bytes == nullptr) {
      return Status::InvalidArgument("truncated reporter id in HELLO");
    }
    hello.reporter_id.assign(id_bytes, id_length);
    const char* tag_bytes = reader.TakeBytes(kHelloAuthTagBytes);
    if (tag_bytes == nullptr) {
      return Status::InvalidArgument("truncated auth tag in HELLO");
    }
    hello.auth_tag.assign(tag_bytes, kHelloAuthTagBytes);
  }
  hello.header_bytes = TakeRest(payload, reader);
  return hello;
}

std::string ComputeHelloTag(const std::string& campaign_key,
                            const std::string& reporter_id, uint32_t channel,
                            uint32_t epoch, const std::string& header_bytes) {
  // Canonical tag input: a domain-separation label, then every field
  // length-delimited so no two distinct (id, channel, epoch, header) tuples
  // share an encoding.
  std::string canonical("ldp-hello-v3\0", 13);
  PutU16(&canonical, static_cast<uint16_t>(reporter_id.size()));
  canonical.append(reporter_id);
  PutU32(&canonical, channel);
  PutU32(&canonical, epoch);
  PutU32(&canonical, static_cast<uint32_t>(header_bytes.size()));
  canonical.append(header_bytes);
  return util::HmacSha256(campaign_key, canonical);
}

std::string EncodeHelloOk(const HelloOkMessage& ok) {
  std::string out;
  PutU32(&out, ok.channel);
  PutU64(&out, ok.shard);
  PutU32(&out, ok.epoch);
  PutU64(&out, ok.resume_offset);
  return out;
}

Result<HelloOkMessage> DecodeHelloOk(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  HelloOkMessage ok;
  LDP_ASSIGN_OR_RETURN(ok.channel, reader.U32());
  LDP_ASSIGN_OR_RETURN(ok.shard, reader.U64());
  LDP_ASSIGN_OR_RETURN(ok.epoch, reader.U32());
  LDP_ASSIGN_OR_RETURN(ok.resume_offset, reader.U64());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after HELLO_OK");
  }
  return ok;
}

std::string EncodeCloseShard(const CloseShardMessage& close) {
  std::string out;
  PutU32(&out, close.channel);
  return out;
}

Result<CloseShardMessage> DecodeCloseShard(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  CloseShardMessage close;
  LDP_ASSIGN_OR_RETURN(close.channel, reader.U32());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after CLOSE_SHARD");
  }
  return close;
}

std::string EncodeDataAck(const DataAckMessage& ack) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(ack.entries.size()));
  for (const DataAckMessage::Entry& entry : ack.entries) {
    PutU32(&out, entry.channel);
    PutU64(&out, entry.bytes);
  }
  return out;
}

Result<DataAckMessage> DecodeDataAck(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  DataAckMessage ack;
  uint32_t count = 0;
  LDP_ASSIGN_OR_RETURN(count, reader.U32());
  // 12 bytes per entry keeps a hostile count from reserving gigabytes.
  if (count > (payload.size() / 12) + 1) {
    return Status::InvalidArgument("DATA_ACK count exceeds payload");
  }
  ack.entries.resize(count);
  for (DataAckMessage::Entry& entry : ack.entries) {
    LDP_ASSIGN_OR_RETURN(entry.channel, reader.U32());
    LDP_ASSIGN_OR_RETURN(entry.bytes, reader.U64());
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after DATA_ACK");
  }
  return ack;
}

std::string EncodeSnapshot(const SnapshotMessage& snapshot) {
  std::string out;
  PutU16(&out, snapshot.version);
  PutU64(&out, snapshot.node);
  PutU64(&out, snapshot.seq);
  PutU32(&out, snapshot.epoch);
  PutU32(&out, static_cast<uint32_t>(snapshot.snapshot_bytes.size()));
  out.append(snapshot.snapshot_bytes);
  return out;
}

Result<SnapshotMessage> DecodeSnapshot(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  SnapshotMessage snapshot;
  LDP_ASSIGN_OR_RETURN(snapshot.version, reader.U16());
  if (snapshot.version != kProtocolVersion &&
      snapshot.version != kLegacyProtocolVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(snapshot.version));
  }
  LDP_ASSIGN_OR_RETURN(snapshot.node, reader.U64());
  LDP_ASSIGN_OR_RETURN(snapshot.seq, reader.U64());
  LDP_ASSIGN_OR_RETURN(snapshot.epoch, reader.U32());
  uint32_t length = 0;
  LDP_ASSIGN_OR_RETURN(length, reader.U32());
  const char* bytes = reader.TakeBytes(length);
  if (bytes == nullptr) {
    return Status::InvalidArgument("truncated SNAPSHOT payload");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after SNAPSHOT");
  }
  snapshot.snapshot_bytes.assign(bytes, length);
  return snapshot;
}

std::string EncodeSnapshotOk(const SnapshotOkMessage& ok) {
  std::string out;
  PutU64(&out, ok.node);
  PutU64(&out, ok.seq);
  return out;
}

Result<SnapshotOkMessage> DecodeSnapshotOk(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  SnapshotOkMessage ok;
  LDP_ASSIGN_OR_RETURN(ok.node, reader.U64());
  LDP_ASSIGN_OR_RETURN(ok.seq, reader.U64());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after SNAPSHOT_OK");
  }
  return ok;
}

std::string EncodeShardClosed(const ShardClosedMessage& closed) {
  std::string out;
  PutU32(&out, closed.channel);
  PutU8(&out, closed.code);
  PutU64(&out, closed.stats.bytes);
  PutU64(&out, closed.stats.frames);
  PutU64(&out, closed.stats.accepted);
  PutU64(&out, closed.stats.rejected);
  out.append(closed.message);
  return out;
}

Result<ShardClosedMessage> DecodeShardClosed(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  ShardClosedMessage closed;
  LDP_ASSIGN_OR_RETURN(closed.channel, reader.U32());
  LDP_ASSIGN_OR_RETURN(closed.code, reader.U8());
  LDP_ASSIGN_OR_RETURN(closed.stats.bytes, reader.U64());
  LDP_ASSIGN_OR_RETURN(closed.stats.frames, reader.U64());
  LDP_ASSIGN_OR_RETURN(closed.stats.accepted, reader.U64());
  LDP_ASSIGN_OR_RETURN(closed.stats.rejected, reader.U64());
  closed.message = TakeRest(payload, reader);
  return closed;
}

std::string EncodeEpochAdvanced(const EpochAdvancedMessage& advanced) {
  std::string out;
  PutU8(&out, advanced.code);
  PutU32(&out, advanced.epoch);
  out.append(advanced.message);
  return out;
}

Result<EpochAdvancedMessage> DecodeEpochAdvanced(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  EpochAdvancedMessage advanced;
  LDP_ASSIGN_OR_RETURN(advanced.code, reader.U8());
  LDP_ASSIGN_OR_RETURN(advanced.epoch, reader.U32());
  advanced.message = TakeRest(payload, reader);
  return advanced;
}

std::string EncodeError(const Status& status) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(status.code()));
  out.append(status.message());
  return out;
}

Result<ErrorMessage> DecodeErrorMessage(const std::string& payload) {
  Reader reader(payload.data(), payload.size());
  ErrorMessage error;
  LDP_ASSIGN_OR_RETURN(error.code, reader.U8());
  error.message = TakeRest(payload, reader);
  return error;
}

Status StatusFromWire(uint8_t code, const std::string& message) {
  if (code == 0) return Status::OK();
  if (code > static_cast<uint8_t>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("peer sent unknown status code " +
                            std::to_string(code) + ": " + message);
  }
  return Status(static_cast<StatusCode>(code), message);
}

}  // namespace ldp::net
