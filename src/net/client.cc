#include "net/client.h"

#include <algorithm>
#include <utility>

#include "core/wire.h"

namespace ldp::net {

Result<CollectorClient> CollectorClient::Connect(
    const Endpoint& endpoint, const stream::StreamHeader& header,
    uint64_t ordinal, CollectorClientOptions options) {
  // A zero flush threshold would stage zero bytes per iteration and spin
  // forever in Send; the smallest meaningful buffer is one byte.
  options.flush_bytes = std::max<size_t>(options.flush_bytes, 1);
  Result<Socket> socket = ConnectSocket(endpoint);
  if (!socket.ok()) return socket.status();
  CollectorClient client(std::move(socket).value(), options);
  if (options.window_bytes > 0) {
    // The server batches acks up to kDataAckFlushBytes: a window smaller
    // than one batch plus one flush could block for an ack that is still
    // accumulating server-side.
    client.effective_window_ = std::max<uint64_t>(
        options.window_bytes, kDataAckFlushBytes + options.flush_bytes);
  }
  if (options.idle_timeout_ms > 0) {
    LDP_RETURN_IF_ERROR(client.socket_.SetIdleTimeout(options.idle_timeout_ms));
  }
  client.epoch_ = options.epoch;
  const uint32_t channel = client.next_channel_++;
  LDP_RETURN_IF_ERROR(client.Negotiate(header, ordinal, channel));
  client.primary_ = channel;
  return client;
}

Status CollectorClient::Negotiate(const stream::StreamHeader& header,
                                  uint64_t ordinal, uint32_t channel) {
  HelloMessage hello;
  hello.channel = channel;
  hello.ordinal = ordinal;
  if (effective_window_ > 0) hello.flags |= kHelloFlagDataAcks;
  hello.header_bytes = stream::EncodeStreamHeader(header);
  if (!options_.campaign_key.empty()) {
    if (options_.reporter_id.empty()) {
      return Status::InvalidArgument(
          "authenticated campaigns require a non-empty reporter id");
    }
    if (options_.reporter_id.size() > kMaxReporterIdBytes) {
      return Status::InvalidArgument("reporter id exceeds the protocol bound");
    }
    hello.reporter_id = options_.reporter_id;
    hello.auth_tag =
        ComputeHelloTag(options_.campaign_key, options_.reporter_id, channel,
                        epoch_, hello.header_bytes);
  }
  std::string wire;
  LDP_RETURN_IF_ERROR(
      AppendMessage(MessageType::kHello, EncodeHello(hello), &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  std::string payload;
  LDP_ASSIGN_OR_RETURN(payload, AwaitReply(MessageType::kHelloOk, channel));
  HelloOkMessage ok;
  LDP_ASSIGN_OR_RETURN(ok, DecodeHelloOk(payload));
  if (ok.channel != channel) {
    return Status::Internal("collector acknowledged the wrong channel");
  }
  ShardChannel state;
  state.shard = ok.shard;
  state.resume_offset = ok.resume_offset;
  channels_[channel] = std::move(state);
  epoch_ = ok.epoch;
  if (channel == primary_ || channels_.size() == 1) {
    shard_ = ok.shard;
    resume_offset_ = ok.resume_offset;
  }
  return Status::OK();
}

Result<uint32_t> CollectorClient::OpenShard(const stream::StreamHeader& header,
                                            uint64_t ordinal) {
  const uint32_t channel = next_channel_++;
  LDP_RETURN_IF_ERROR(Negotiate(header, ordinal, channel));
  return channel;
}

Status CollectorClient::Reopen(const stream::StreamHeader& header,
                               uint64_t ordinal) {
  if (shard_open()) {
    return Status::FailedPrecondition("close the current shard first");
  }
  const uint32_t channel = next_channel_++;
  LDP_RETURN_IF_ERROR(Negotiate(header, ordinal, channel));
  primary_ = channel;
  shard_ = channels_[channel].shard;
  resume_offset_ = channels_[channel].resume_offset;
  return Status::OK();
}

uint64_t CollectorClient::resume_offset(uint32_t channel) const {
  auto found = channels_.find(channel);
  return found == channels_.end() ? 0 : found->second.resume_offset;
}

Result<std::pair<MessageType, std::string>> CollectorClient::ReadMessage() {
  char prefix[kMessageHeaderBytes];
  Result<bool> got = socket_.RecvAll(prefix, sizeof(prefix));
  if (!got.ok()) return got.status();
  if (!got.value()) {
    return Status::IoError("collector closed the connection");
  }
  Result<MessageHeader> header = DecodeMessageHeader(prefix, sizeof(prefix));
  if (!header.ok()) return header.status();
  std::string payload(header.value().payload_length, '\0');
  if (!payload.empty()) {
    Result<bool> body = socket_.RecvAll(payload.data(), payload.size());
    if (!body.ok()) return body.status();
    if (!body.value()) {
      return Status::IoError("collector closed the connection mid-reply");
    }
  }
  return std::make_pair(header.value().type, std::move(payload));
}

Status CollectorClient::ProcessAck(const std::string& payload) {
  DataAckMessage ack;
  LDP_ASSIGN_OR_RETURN(ack, DecodeDataAck(payload));
  for (const DataAckMessage::Entry& entry : ack.entries) {
    auto found = channels_.find(entry.channel);
    if (found == channels_.end()) continue;  // already awaited and erased
    found->second.acked_bytes =
        std::max(found->second.acked_bytes, entry.bytes);
  }
  return Status::OK();
}

Status CollectorClient::PumpMessage() {
  std::pair<MessageType, std::string> message;
  LDP_ASSIGN_OR_RETURN(message, ReadMessage());
  switch (message.first) {
    case MessageType::kDataAck:
      return ProcessAck(message.second);
    case MessageType::kShardClosed: {
      // Merge-barrier reordering: a verdict landed while this thread was
      // waiting for window room. Stash it for AwaitShardClosed.
      ShardClosedMessage closed;
      LDP_ASSIGN_OR_RETURN(closed, DecodeShardClosed(message.second));
      closed_payloads_[closed.channel] = std::move(message.second);
      return Status::OK();
    }
    case MessageType::kError: {
      ErrorMessage error;
      LDP_ASSIGN_OR_RETURN(error, DecodeErrorMessage(message.second));
      return StatusFromWire(error.code, error.message);
    }
    default:
      return Status::InvalidArgument("unexpected reply type from collector");
  }
}

Result<std::string> CollectorClient::AwaitReply(MessageType expected,
                                                uint32_t want_channel) {
  while (true) {
    std::pair<MessageType, std::string> message;
    LDP_ASSIGN_OR_RETURN(message, ReadMessage());
    if (message.first == MessageType::kDataAck) {
      LDP_RETURN_IF_ERROR(ProcessAck(message.second));
      continue;
    }
    if (message.first == MessageType::kError) {
      ErrorMessage error;
      LDP_ASSIGN_OR_RETURN(error, DecodeErrorMessage(message.second));
      return StatusFromWire(error.code, error.message);
    }
    if (message.first == MessageType::kShardClosed) {
      ShardClosedMessage closed;
      LDP_ASSIGN_OR_RETURN(closed, DecodeShardClosed(message.second));
      if (expected == MessageType::kShardClosed &&
          closed.channel == want_channel) {
        return std::move(message.second);
      }
      closed_payloads_[closed.channel] = std::move(message.second);
      continue;
    }
    if (message.first != expected) {
      return Status::InvalidArgument("unexpected reply type from collector");
    }
    return std::move(message.second);
  }
}

uint64_t CollectorClient::TotalInFlight() const {
  uint64_t in_flight = 0;
  for (const auto& [channel, state] : channels_) {
    in_flight += state.sent_bytes - state.acked_bytes;
  }
  return in_flight;
}

Status CollectorClient::Flush(uint32_t channel, ShardChannel& state) {
  if (state.staged.empty()) return Status::OK();
  if (effective_window_ > 0) {
    // Window full: the next DATA would overrun the bound, so block on the
    // reply stream until acks release room (early verdicts are stashed).
    while (TotalInFlight() + state.staged.size() > effective_window_) {
      LDP_RETURN_IF_ERROR(PumpMessage());
    }
  }
  std::string payload;
  internal_wire::PutU32(&payload, channel);
  payload.append(state.staged);
  std::string wire;
  LDP_RETURN_IF_ERROR(AppendMessage(MessageType::kData, payload, &wire));
  const size_t flushed = state.staged.size();
  state.staged.clear();
  const Status sent = socket_.SendAll(wire);
  if (!sent.ok()) {
    // A send failure usually means the server poisoned the shard and
    // closed the connection; its pending ERROR names the real cause. With
    // acks enabled a DATA_ACK (or an early verdict) may sit ahead of the
    // ERROR in the reply stream, so pump until a verdict surfaces or the
    // read side dies too.
    while (true) {
      Status pending = PumpMessage();
      if (pending.ok()) continue;
      return pending.code() == StatusCode::kIoError ? sent : pending;
    }
  }
  state.sent_bytes += flushed;
  return Status::OK();
}

Status CollectorClient::Send(uint32_t channel, const char* data, size_t size) {
  auto found = channels_.find(channel);
  if (found == channels_.end() || found->second.closing) {
    return Status::FailedPrecondition("no open shard on this connection");
  }
  ShardChannel& state = found->second;
  size_t offset = 0;
  while (offset < size) {
    if (state.staged.size() >= options_.flush_bytes) {
      LDP_RETURN_IF_ERROR(Flush(channel, state));
    }
    const size_t take =
        std::min(size - offset, options_.flush_bytes - state.staged.size());
    state.staged.append(data + offset, take);
    offset += take;
  }
  if (state.staged.size() >= options_.flush_bytes) {
    LDP_RETURN_IF_ERROR(Flush(channel, state));
  }
  return Status::OK();
}

Status CollectorClient::CloseShardBegin(uint32_t channel) {
  auto found = channels_.find(channel);
  if (found == channels_.end()) {
    return Status::FailedPrecondition("no open shard on this connection");
  }
  if (found->second.closing) {
    return Status::FailedPrecondition("shard close already in flight");
  }
  LDP_RETURN_IF_ERROR(Flush(channel, found->second));
  CloseShardMessage close;
  close.channel = channel;
  std::string wire;
  LDP_RETURN_IF_ERROR(
      AppendMessage(MessageType::kCloseShard, EncodeCloseShard(close), &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  found->second.closing = true;
  return Status::OK();
}

Result<ShardCloseSummary> CollectorClient::AwaitShardClosed(uint32_t channel) {
  auto found = channels_.find(channel);
  if (found == channels_.end()) {
    return Status::FailedPrecondition("no open shard on this connection");
  }
  if (!found->second.closing) {
    return Status::FailedPrecondition("CloseShardBegin this channel first");
  }
  std::string payload;
  auto stashed = closed_payloads_.find(channel);
  if (stashed != closed_payloads_.end()) {
    payload = std::move(stashed->second);
    closed_payloads_.erase(stashed);
  } else {
    // The merge verdict may wait at the collector's ordinal barrier until
    // every smaller shard lands — legitimately much longer than the idle
    // timeout — so lift the timeout for this one reply (the collector's
    // own merge-turn bound keeps the wait finite).
    if (options_.idle_timeout_ms > 0) {
      LDP_RETURN_IF_ERROR(socket_.SetIdleTimeout(0));
    }
    Result<std::string> reply = AwaitReply(MessageType::kShardClosed, channel);
    if (options_.idle_timeout_ms > 0) {
      LDP_RETURN_IF_ERROR(socket_.SetIdleTimeout(options_.idle_timeout_ms));
    }
    if (!reply.ok()) return reply.status();
    payload = std::move(reply).value();
  }
  ShardClosedMessage closed;
  LDP_ASSIGN_OR_RETURN(closed, DecodeShardClosed(payload));
  channels_.erase(channel);
  ShardCloseSummary summary;
  summary.status = StatusFromWire(closed.code, closed.message);
  summary.stats = closed.stats;
  return summary;
}

Result<ShardCloseSummary> CollectorClient::CloseShard(uint32_t channel) {
  LDP_RETURN_IF_ERROR(CloseShardBegin(channel));
  return AwaitShardClosed(channel);
}

Result<uint32_t> CollectorClient::AdvanceEpoch() {
  if (!channels_.empty()) {
    return Status::FailedPrecondition(
        "close the current shard before advancing the epoch");
  }
  std::string wire;
  LDP_RETURN_IF_ERROR(AppendMessage(MessageType::kAdvanceEpoch, "", &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  std::string payload;
  LDP_ASSIGN_OR_RETURN(payload,
                       AwaitReply(MessageType::kEpochAdvanced, 0));
  EpochAdvancedMessage advanced;
  LDP_ASSIGN_OR_RETURN(advanced, DecodeEpochAdvanced(payload));
  LDP_RETURN_IF_ERROR(StatusFromWire(advanced.code, advanced.message));
  epoch_ = advanced.epoch;
  return advanced.epoch;
}

}  // namespace ldp::net
