#include "net/client.h"

#include <algorithm>
#include <utility>

namespace ldp::net {

Result<CollectorClient> CollectorClient::Connect(
    const Endpoint& endpoint, const stream::StreamHeader& header,
    uint64_t ordinal, CollectorClientOptions options) {
  Result<Socket> socket = ConnectSocket(endpoint);
  if (!socket.ok()) return socket.status();
  CollectorClient client(std::move(socket).value(), options);
  if (options.idle_timeout_ms > 0) {
    LDP_RETURN_IF_ERROR(client.socket_.SetIdleTimeout(options.idle_timeout_ms));
  }
  LDP_RETURN_IF_ERROR(client.Negotiate(header, ordinal));
  return client;
}

Status CollectorClient::Negotiate(const stream::StreamHeader& header,
                                  uint64_t ordinal) {
  HelloMessage hello;
  hello.ordinal = ordinal;
  hello.header_bytes = stream::EncodeStreamHeader(header);
  std::string wire;
  LDP_RETURN_IF_ERROR(
      AppendMessage(MessageType::kHello, EncodeHello(hello), &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  std::string payload;
  LDP_ASSIGN_OR_RETURN(payload, ReadReply(MessageType::kHelloOk));
  HelloOkMessage ok;
  LDP_ASSIGN_OR_RETURN(ok, DecodeHelloOk(payload));
  shard_ = ok.shard;
  epoch_ = ok.epoch;
  resume_offset_ = ok.resume_offset;
  shard_open_ = true;
  staged_.clear();
  return Status::OK();
}

Status CollectorClient::Reopen(const stream::StreamHeader& header,
                               uint64_t ordinal) {
  if (shard_open_) {
    return Status::FailedPrecondition("close the current shard first");
  }
  return Negotiate(header, ordinal);
}

Result<std::string> CollectorClient::ReadReply(MessageType expected) {
  char prefix[kMessageHeaderBytes];
  Result<bool> got = socket_.RecvAll(prefix, sizeof(prefix));
  if (!got.ok()) return got.status();
  if (!got.value()) {
    return Status::IoError("collector closed the connection");
  }
  Result<MessageHeader> header = DecodeMessageHeader(prefix, sizeof(prefix));
  if (!header.ok()) return header.status();
  std::string payload(header.value().payload_length, '\0');
  if (!payload.empty()) {
    Result<bool> body = socket_.RecvAll(payload.data(), payload.size());
    if (!body.ok()) return body.status();
    if (!body.value()) {
      return Status::IoError("collector closed the connection mid-reply");
    }
  }
  if (header.value().type == MessageType::kError) {
    Result<ErrorMessage> error = DecodeErrorMessage(payload);
    if (!error.ok()) return error.status();
    return StatusFromWire(error.value().code, error.value().message);
  }
  if (header.value().type != expected) {
    return Status::InvalidArgument("unexpected reply type from collector");
  }
  return payload;
}

Status CollectorClient::Flush() {
  if (staged_.empty()) return Status::OK();
  std::string wire;
  LDP_RETURN_IF_ERROR(AppendMessage(MessageType::kData, staged_, &wire));
  staged_.clear();
  const Status sent = socket_.SendAll(wire);
  if (!sent.ok()) {
    // A send failure usually means the server poisoned the shard and
    // closed the connection; its pending ERROR names the real cause.
    Result<std::string> reply = ReadReply(MessageType::kError);
    if (!reply.ok() && reply.status().code() != StatusCode::kIoError) {
      return reply.status();
    }
    return sent;
  }
  return Status::OK();
}

Status CollectorClient::Send(const char* data, size_t size) {
  if (!shard_open_) {
    return Status::FailedPrecondition("no open shard on this connection");
  }
  size_t offset = 0;
  while (offset < size) {
    const size_t take =
        std::min(size - offset, options_.flush_bytes - staged_.size());
    staged_.append(data + offset, take);
    offset += take;
    if (staged_.size() >= options_.flush_bytes) {
      LDP_RETURN_IF_ERROR(Flush());
    }
  }
  return Status::OK();
}

Result<ShardCloseSummary> CollectorClient::Close() {
  if (!shard_open_) {
    return Status::FailedPrecondition("no open shard on this connection");
  }
  LDP_RETURN_IF_ERROR(Flush());
  std::string wire;
  LDP_RETURN_IF_ERROR(AppendMessage(MessageType::kCloseShard, "", &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  // The merge verdict may wait at the collector's ordinal barrier until
  // every smaller shard lands — legitimately much longer than the idle
  // timeout — so lift the timeout for this one reply (the collector's own
  // merge-turn bound keeps the wait finite).
  if (options_.idle_timeout_ms > 0) {
    LDP_RETURN_IF_ERROR(socket_.SetIdleTimeout(0));
  }
  Result<std::string> reply = ReadReply(MessageType::kShardClosed);
  if (options_.idle_timeout_ms > 0) {
    LDP_RETURN_IF_ERROR(socket_.SetIdleTimeout(options_.idle_timeout_ms));
  }
  if (!reply.ok()) return reply.status();
  const std::string payload = std::move(reply).value();
  ShardClosedMessage closed;
  LDP_ASSIGN_OR_RETURN(closed, DecodeShardClosed(payload));
  shard_open_ = false;
  ShardCloseSummary summary;
  summary.status = StatusFromWire(closed.code, closed.message);
  summary.stats = closed.stats;
  return summary;
}

Result<uint32_t> CollectorClient::AdvanceEpoch() {
  if (shard_open_) {
    return Status::FailedPrecondition(
        "close the current shard before advancing the epoch");
  }
  std::string wire;
  LDP_RETURN_IF_ERROR(AppendMessage(MessageType::kAdvanceEpoch, "", &wire));
  LDP_RETURN_IF_ERROR(socket_.SendAll(wire));
  std::string payload;
  LDP_ASSIGN_OR_RETURN(payload, ReadReply(MessageType::kEpochAdvanced));
  EpochAdvancedMessage advanced;
  LDP_ASSIGN_OR_RETURN(advanced, DecodeEpochAdvanced(payload));
  LDP_RETURN_IF_ERROR(StatusFromWire(advanced.code, advanced.message));
  epoch_ = advanced.epoch;
  return advanced.epoch;
}

}  // namespace ldp::net
