// Dependency-free POSIX socket primitives for the report-stream transport:
// an Endpoint spec ("tcp:HOST:PORT" or "unix:PATH"), a move-only RAII Socket
// with whole-buffer send/recv helpers, and a Listener whose accept loop is
// non-blocking and interruptible (poll on the listener plus a wake pipe).
//
// TCP and Unix-domain stream sockets only — the transport needs ordered,
// reliable byte streams, and those two cover both the deployed collector
// (remote reporters over TCP) and the loopback/e2e story (UDS). Everything
// here returns Status instead of throwing, like the rest of the library;
// nothing in this header knows about report streams or sessions.

#ifndef LDP_NET_SOCKET_H_
#define LDP_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace ldp::net {

/// Where a collector listens or a reporter connects.
struct Endpoint {
  enum class Kind { kTcp, kUnix };

  Kind kind = Kind::kTcp;
  /// TCP: numeric address or hostname, and port (0 = ephemeral, resolved
  /// after bind).
  std::string host;
  uint16_t port = 0;
  /// Unix-domain: filesystem path of the socket.
  std::string path;

  /// Parses "tcp:HOST:PORT" or "unix:PATH". IPv6 hosts must be bracketed —
  /// "tcp:[::1]:7611" — and an unbracketed host containing ':' is refused
  /// as ambiguous rather than guessed at.
  static Result<Endpoint> Parse(const std::string& spec);

  /// "tcp:HOST:PORT" (host bracketed when it contains ':') / "unix:PATH";
  /// round-trips through Parse.
  std::string ToString() const;
};

/// A connected stream socket (move-only RAII over the fd).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor now (idempotent).
  void Close();

  /// Bounds every subsequent recv/send (0 restores "wait forever"). A recv
  /// that idles past the bound fails with kDeadlineExceeded — the same code
  /// RecvAll's whole-message deadline uses, so callers distinguish a reap
  /// from an I/O fault by status code, never by message text.
  Status SetIdleTimeout(int milliseconds);

  /// Sends the whole buffer, looping over short writes. SIGPIPE-safe.
  Status SendAll(const void* data, size_t size);
  Status SendAll(const std::string& bytes) {
    return SendAll(bytes.data(), bytes.size());
  }

  /// Receives exactly `size` bytes. Returns true on success, false on a
  /// clean peer close *before the first byte* (end of stream on a message
  /// boundary); EOF mid-buffer and every other failure is an error.
  ///
  /// `deadline_ms > 0` bounds the WHOLE read, not each recv: a peer
  /// dripping one byte per interval resets a per-recv SO_RCVTIMEO forever,
  /// but cannot stretch this deadline — the classic slow-loris. 0 leaves
  /// only the per-recv idle timeout in force.
  Result<bool> RecvAll(void* data, size_t size, int deadline_ms = 0);

  /// Marks the descriptor O_NONBLOCK for use under a readiness loop.
  Status SetNonBlocking();

  /// One non-blocking recv: returns the bytes read, or 0 when the socket
  /// would block. A clean peer close sets *eof (and returns 0). Only real
  /// I/O faults are errors.
  Result<size_t> RecvSome(void* data, size_t size, bool* eof);

  /// One non-blocking send: returns the bytes written, or 0 when the socket
  /// would block. SIGPIPE-safe like SendAll.
  Result<size_t> SendSome(const void* data, size_t size);

 private:
  int fd_ = -1;
};

/// Connects to `endpoint` (TCP via getaddrinfo, so hostnames work).
Result<Socket> ConnectSocket(const Endpoint& endpoint);

/// A bound, listening, non-blocking server socket plus a self-pipe that
/// interrupts Accept from another thread. Accept is safe to call from
/// several threads at once (each accepted connection goes to exactly one
/// caller).
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Binds and listens on `endpoint`. A TCP port of 0 picks an ephemeral
  /// port (read it back from endpoint()); a Unix path is unlinked first
  /// (the collector owns its socket file) and unlinked again on close.
  static Result<Listener> Bind(const Endpoint& endpoint, int backlog = 128);

  /// The bound endpoint, with the resolved TCP port filled in.
  const Endpoint& endpoint() const { return endpoint_; }

  /// Blocks in poll until a connection is ready, then accepts it. Returns
  /// an invalid Socket (valid() == false) when Wake interrupted the wait or
  /// the listener was closed — the caller decides whether to loop.
  Result<Socket> Accept();

  /// Non-blocking accept for readiness loops that poll fd() themselves:
  /// returns an invalid Socket when nothing is pending or a momentary
  /// accept-path failure (fd exhaustion, a dying handshake, a bad fresh fd)
  /// cost one connection. Errors mean the listener itself is broken.
  Result<Socket> TryAccept();

  /// The listening descriptor, for registration in an external poll set.
  int fd() const { return fd_; }

  /// Wakes every thread blocked in Accept (sticky until the listener dies).
  void Wake();

  /// Closes the listening socket (stops new connections; Accept returns).
  void Close();

 private:
  Endpoint endpoint_;
  int fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
};

}  // namespace ldp::net

#endif  // LDP_NET_SOCKET_H_
